// Inference serving front-end: concurrent request intake with dynamic
// micro-batching over QuGeoModel::predict_with.
//
// Many client threads submit single samples; a bounded MPSC ring queue
// absorbs them and one dispatcher thread coalesces consecutive requests
// into QuBatch-sized groups. A group is flushed when it reaches
// `max_batch` requests (size trigger) or when the OLDEST queued request
// has waited `deadline` (latency trigger), whichever comes first — so a
// lone request is never stranded behind a batch that will not fill, and a
// hot queue amortizes circuit compilation, gate dispatch, and the SoA
// batched kernels across the whole group.
//
// Backpressure is explicit and non-blocking: once the queue holds
// `full_threshold` requests, submit() immediately completes the request
// with RequestStatus::kOverloaded instead of queueing (and never blocks
// the producer). Every rejection is counted, so
//   submitted == completed + failed + rejected_overload
//                + rejected_shutdown + pending()
// holds at all times once the numbers are read from a quiesced server —
// no request is ever silently dropped.
//
// Fault tolerance: submit() passes through fault::site("serve.enqueue")
// (an injected fault fails that one request, visibly); each batch
// dispatch passes through fault::site("serve.dispatch") inside a bounded
// retry (ServeConfig::retry), and on retry exhaustion the batch fails as
// a unit with a degradation event recorded via fault::report_degradation.
//
// Observability: ServerStats snapshots throughput counters, queue depth,
// flush-trigger counts, and two fixed-bucket log2 histograms (request
// latency in microseconds, dispatched batch sizes). Histograms use
// preallocated atomic counters — the hot path never allocates.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "core/model.h"
#include "data/dataset.h"

namespace qugeo::serve {

/// Terminal state of one submitted request.
enum class RequestStatus : std::uint8_t {
  kOk,          ///< prediction holds the velocity map
  kOverloaded,  ///< queue at full_threshold: rejected, never queued
  kShutdown,    ///< server no longer accepting requests
  kFailed,      ///< enqueue/dispatch fault after bounded retries
};

/// What a submit() future resolves to. `prediction` is valid only for
/// kOk; `error` carries the failure context otherwise.
struct PredictResult {
  RequestStatus status = RequestStatus::kOk;
  std::vector<Real> prediction;
  std::string error;
};

struct ServeConfig {
  /// Flush a batch as soon as this many requests have coalesced. The
  /// constructor applies the QUGEO_SERVE_BATCH override on top.
  std::size_t max_batch = 16;
  /// Flush once the oldest queued request has waited this long, even if
  /// the batch is short (QUGEO_SERVE_DEADLINE_US; 0 = flush immediately).
  std::chrono::microseconds deadline{500};
  /// Ring capacity; the queue never reallocates after construction.
  std::size_t queue_capacity = 1024;
  /// Reject new requests once the queue holds this many (backpressure);
  /// 0 means queue_capacity.
  std::size_t full_threshold = 0;
  /// Bounded retry for transient dispatch faults (serve.dispatch).
  fault::RetryPolicy retry;
};

/// QUGEO_SERVE_BATCH / QUGEO_SERVE_DEADLINE_US on top of `base`
/// (validated via common/env.h — malformed values throw).
[[nodiscard]] ServeConfig apply_serve_env_overrides(ServeConfig base);

/// Fixed log2 bucket count shared by both histograms: bucket i counts
/// values v with bit_width(v) == i, i.e. v in [2^(i-1), 2^i). 40 buckets
/// cover latencies up to ~2^39 us (~6 days) without saturating.
inline constexpr std::size_t kServeHistogramBuckets = 40;

/// Interpolated quantile (q in [0, 1]) over a log2-bucket snapshot,
/// assuming values uniform within each bucket. Returns 0 on an empty
/// histogram. Exposed so the load bench can difference two snapshots and
/// take the p99 of just the steady-state window.
[[nodiscard]] double histogram_quantile(
    const std::array<std::uint64_t, kServeHistogramBuckets>& buckets, double q);

/// One coherent snapshot of the server's counters. Counters advance in a
/// fixed order (submitted before a terminal count), so a snapshot taken
/// while producers are live can transiently show submitted ahead of the
/// sum; after shutdown() the accounting identity is exact.
struct ServerStats {
  std::uint64_t submitted = 0;          ///< submit() calls observed
  std::uint64_t completed = 0;          ///< resolved kOk
  std::uint64_t failed = 0;             ///< resolved kFailed
  std::uint64_t rejected_overload = 0;  ///< resolved kOverloaded
  std::uint64_t rejected_shutdown = 0;  ///< resolved kShutdown
  std::uint64_t batches_dispatched = 0;
  std::uint64_t flush_size = 0;      ///< batches flushed at max_batch
  std::uint64_t flush_deadline = 0;  ///< batches flushed by the deadline
  std::uint64_t flush_drain = 0;     ///< batches flushed by shutdown drain
  std::size_t queue_depth = 0;       ///< requests queued right now
  std::size_t max_queue_depth = 0;   ///< high-water mark since construction
  std::size_t in_flight = 0;         ///< popped but not yet resolved
  /// Submit-to-resolution latency, microseconds, log2 buckets.
  std::array<std::uint64_t, kServeHistogramBuckets> latency_us_buckets{};
  /// Sizes of dispatched batches, log2 buckets.
  std::array<std::uint64_t, kServeHistogramBuckets> batch_size_buckets{};

  [[nodiscard]] std::uint64_t pending() const {
    return queue_depth + in_flight;
  }
  /// p50 = latency_quantile_us(0.5), p99 = latency_quantile_us(0.99).
  [[nodiscard]] double latency_quantile_us(double q) const {
    return histogram_quantile(latency_us_buckets, q);
  }
};

/// The serving front-end. Thread-safe: any number of threads may call
/// submit() / stats() / shutdown() concurrently. The referenced model
/// must outlive the server and must not be mutated while it serves.
class ModelServer {
 public:
  /// Applies apply_serve_env_overrides(config), validates it, and starts
  /// the dispatcher thread. Throws std::invalid_argument on a malformed
  /// config (max_batch of 0, full_threshold above capacity, ...).
  ModelServer(const core::QuGeoModel& model, ServeConfig config);
  ~ModelServer();
  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// Effective config (after environment overrides).
  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }

  /// Enqueue one sample for prediction. Never blocks: when the queue is
  /// at full_threshold the returned future is already resolved with
  /// kOverloaded (kShutdown after shutdown()). The sample must stay
  /// alive until the future resolves.
  [[nodiscard]] std::future<PredictResult> submit(
      const data::ScaledSample& sample) QUGEO_EXCLUDES(mutex_);

  /// Stop accepting, drain every queued request through the dispatcher,
  /// and join it. Idempotent; also called by the destructor. After it
  /// returns, every future ever handed out is resolved.
  void shutdown() QUGEO_EXCLUDES(mutex_);

  [[nodiscard]] ServerStats stats() const QUGEO_EXCLUDES(mutex_);

 private:
  /// One queued request; slots live in the preallocated ring.
  struct Request {
    const data::ScaledSample* sample = nullptr;
    std::chrono::steady_clock::time_point enqueued;
    std::promise<PredictResult> promise;
  };

  /// Lock-free fixed-bucket histogram (see kServeHistogramBuckets).
  struct Histogram {
    std::array<std::atomic<std::uint64_t>, kServeHistogramBuckets> buckets{};
    void record(std::uint64_t value) noexcept;
    [[nodiscard]] std::array<std::uint64_t, kServeHistogramBuckets> snapshot()
        const noexcept;
  };

  /// Why a batch was flushed (drives the flush_* counters).
  enum class Flush : std::uint8_t { kSize, kDeadline, kDrain };

  void dispatcher_loop() QUGEO_EXCLUDES(mutex_);
  /// Pop up to `n` requests in FIFO order.
  [[nodiscard]] std::vector<Request> take_locked(std::size_t n)
      QUGEO_REQUIRES(mutex_);
  /// Run one coalesced batch through the model and resolve its promises.
  void dispatch_batch(std::vector<Request>& batch, Flush trigger);

  const core::QuGeoModel* model_;
  ServeConfig config_;
  qsim::ExecutionConfig exec_;  ///< model's effective execution config
  std::size_t full_threshold_;  ///< resolved (0 -> queue_capacity)

  mutable Mutex mutex_;
  CondVar work_;  ///< signalled on enqueue and on shutdown
  std::vector<Request> ring_ QUGEO_GUARDED_BY(mutex_);
  std::size_t head_ QUGEO_GUARDED_BY(mutex_) = 0;
  std::size_t size_ QUGEO_GUARDED_BY(mutex_) = 0;
  std::size_t max_depth_ QUGEO_GUARDED_BY(mutex_) = 0;
  bool accepting_ QUGEO_GUARDED_BY(mutex_) = true;
  bool stop_ QUGEO_GUARDED_BY(mutex_) = false;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> flush_size_{0};
  std::atomic<std::uint64_t> flush_deadline_{0};
  std::atomic<std::uint64_t> flush_drain_{0};
  std::atomic<std::size_t> in_flight_{0};
  Histogram latency_us_;
  Histogram batch_sizes_;

  std::thread dispatcher_;
};

}  // namespace qugeo::serve
