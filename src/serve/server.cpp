#include "serve/server.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "common/env.h"

namespace qugeo::serve {

ServeConfig apply_serve_env_overrides(ServeConfig base) {
  base.max_batch = env::parse_env_positive("QUGEO_SERVE_BATCH", base.max_batch);
  base.deadline = std::chrono::microseconds(
      static_cast<std::chrono::microseconds::rep>(env::parse_env_size_t(
          "QUGEO_SERVE_DEADLINE_US",
          static_cast<std::size_t>(base.deadline.count()))));
  return base;
}

double histogram_quantile(
    const std::array<std::uint64_t, kServeHistogramBuckets>& buckets,
    double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets[i]);
    if (next >= target) {
      // Bucket i holds values in [2^(i-1), 2^i) (bucket 0 is exactly 0);
      // interpolate linearly within it.
      const double lo = i == 0 ? 0.0 : static_cast<double>(1ULL << (i - 1));
      const double hi = i == 0 ? 1.0 : static_cast<double>(1ULL << i);
      const double frac =
          (target - cumulative) / static_cast<double>(buckets[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return static_cast<double>(1ULL << (buckets.size() - 1));
}

void ModelServer::Histogram::record(std::uint64_t value) noexcept {
  std::size_t idx = static_cast<std::size_t>(std::bit_width(value));
  if (idx >= kServeHistogramBuckets) idx = kServeHistogramBuckets - 1;
  buckets[idx].fetch_add(1, std::memory_order_relaxed);
}

std::array<std::uint64_t, kServeHistogramBuckets>
ModelServer::Histogram::snapshot() const noexcept {
  std::array<std::uint64_t, kServeHistogramBuckets> out{};
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets[i].load(std::memory_order_relaxed);
  return out;
}

ModelServer::ModelServer(const core::QuGeoModel& model, ServeConfig config)
    : model_(&model),
      config_(apply_serve_env_overrides(std::move(config))),
      exec_(model.execution_config()),
      full_threshold_(config_.full_threshold == 0 ? config_.queue_capacity
                                                  : config_.full_threshold) {
  if (config_.max_batch == 0)
    throw std::invalid_argument("ModelServer: max_batch must be positive");
  if (config_.queue_capacity == 0)
    throw std::invalid_argument("ModelServer: queue_capacity must be positive");
  if (config_.max_batch > config_.queue_capacity)
    throw std::invalid_argument(
        "ModelServer: max_batch exceeds queue_capacity");
  if (full_threshold_ > config_.queue_capacity)
    throw std::invalid_argument(
        "ModelServer: full_threshold exceeds queue_capacity");
  ring_.resize(config_.queue_capacity);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

ModelServer::~ModelServer() { shutdown(); }

std::future<PredictResult> ModelServer::submit(
    const data::ScaledSample& sample) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  std::promise<PredictResult> promise;
  std::future<PredictResult> future = promise.get_future();
  try {
    fault::site("serve.enqueue");
  } catch (const std::exception& e) {
    // Injected intake fault: this request was never queued; it fails
    // individually and visibly while the server keeps serving.
    failed_.fetch_add(1, std::memory_order_relaxed);
    promise.set_value({RequestStatus::kFailed, {},
                       std::string("enqueue fault: ") + e.what()});
    return future;
  }
  const auto now = std::chrono::steady_clock::now();
  {
    MutexLock lk(mutex_);
    if (!accepting_) {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      promise.set_value(
          {RequestStatus::kShutdown, {}, "server is shut down"});
      return future;
    }
    if (size_ >= full_threshold_) {
      // Backpressure: reject immediately rather than blocking the
      // producer; the caller sees kOverloaded and can shed or retry.
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      promise.set_value({RequestStatus::kOverloaded, {},
                         "queue full (" + std::to_string(size_) + "/" +
                             std::to_string(full_threshold_) + ")"});
      return future;
    }
    Request& slot = ring_[(head_ + size_) % ring_.size()];
    slot.sample = &sample;
    slot.enqueued = now;
    slot.promise = std::move(promise);
    ++size_;
    if (size_ > max_depth_) max_depth_ = size_;
  }
  work_.notify_one();
  return future;
}

void ModelServer::shutdown() {
  {
    MutexLock lk(mutex_);
    accepting_ = false;
    stop_ = true;
  }
  work_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::vector<ModelServer::Request> ModelServer::take_locked(std::size_t n) {
  const std::size_t take = std::min(n, size_);
  std::vector<Request> batch;
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(ring_[head_]));
    head_ = (head_ + 1) % ring_.size();
  }
  size_ -= take;
  return batch;
}

void ModelServer::dispatcher_loop() {
  for (;;) {
    std::vector<Request> batch;
    Flush trigger = Flush::kDeadline;
    {
      MutexLock lk(mutex_);
      while (size_ == 0 && !stop_) work_.wait(mutex_);
      if (size_ == 0) return;  // stopping and fully drained
      // Coalesce: hold until the batch fills or the OLDEST request's
      // deadline passes. Shutdown flushes immediately (drain mode), so
      // no request waits out its deadline against a dead server.
      const auto deadline = ring_[head_].enqueued + config_.deadline;
      while (size_ < config_.max_batch && !stop_ &&
             work_.wait_until(mutex_, deadline) != std::cv_status::timeout) {
      }
      trigger = size_ >= config_.max_batch ? Flush::kSize
                : stop_                    ? Flush::kDrain
                                           : Flush::kDeadline;
      batch = take_locked(config_.max_batch);
      in_flight_.fetch_add(batch.size(), std::memory_order_relaxed);
    }
    dispatch_batch(batch, trigger);
  }
}

void ModelServer::dispatch_batch(std::vector<Request>& batch, Flush trigger) {
  std::vector<const data::ScaledSample*> samples;
  samples.reserve(batch.size());
  for (const Request& r : batch) samples.push_back(r.sample);

  std::vector<std::vector<Real>> predictions;
  std::string error;
  bool ok = true;
  try {
    // Transient dispatch faults (serve.dispatch) retry under the
    // configured policy; the model's own execution-level retries are
    // nested inside predict_with and stack with this one.
    predictions = fault::retry_on_transient(
        "serve batch dispatch", config_.retry,
        [&]() -> std::vector<std::vector<Real>> {
          fault::site("serve.dispatch");
          return model_->predict_with(samples, exec_);
        });
  } catch (const std::exception& e) {
    // Retry exhaustion or a fatal execution error: the batch fails as a
    // unit, every waiter learns why, and the degradation is recorded
    // instead of requests silently vanishing.
    ok = false;
    error = e.what();
    fault::report_degradation(
        "serve", "batch of " + std::to_string(batch.size()) +
                     " request(s) failed: " + error);
  }

  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
        now - batch[i].enqueued);
    latency_us_.record(static_cast<std::uint64_t>(
        waited.count() < 0 ? 0 : waited.count()));
    PredictResult result;
    if (ok) {
      result.status = RequestStatus::kOk;
      result.prediction = std::move(predictions[i]);
    } else {
      result.status = RequestStatus::kFailed;
      result.error = error;
    }
    batch[i].promise.set_value(std::move(result));
  }

  (ok ? completed_ : failed_)
      .fetch_add(batch.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_sizes_.record(batch.size());
  switch (trigger) {
    case Flush::kSize: flush_size_.fetch_add(1, std::memory_order_relaxed); break;
    case Flush::kDeadline:
      flush_deadline_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Flush::kDrain:
      flush_drain_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  in_flight_.fetch_sub(batch.size(), std::memory_order_relaxed);
}

ServerStats ModelServer::stats() const {
  ServerStats s;
  {
    MutexLock lk(mutex_);
    s.queue_depth = size_;
    s.max_queue_depth = max_depth_;
  }
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.batches_dispatched = batches_.load(std::memory_order_relaxed);
  s.flush_size = flush_size_.load(std::memory_order_relaxed);
  s.flush_deadline = flush_deadline_.load(std::memory_order_relaxed);
  s.flush_drain = flush_drain_.load(std::memory_order_relaxed);
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  s.latency_us_buckets = latency_us_.snapshot();
  s.batch_size_buckets = batch_sizes_.snapshot();
  return s;
}

}  // namespace qugeo::serve
