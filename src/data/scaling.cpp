#include "data/scaling.h"

#include <cmath>
#include <stdexcept>

namespace qugeo::data {

ScaledDataset Scaler::scale_dataset(const RawDataset& raw,
                                    const ScaleTarget& target) const {
  ScaledDataset out;
  out.scaler_name = name();
  out.nsrc = target.nsrc;
  out.nt = target.nt;
  out.nrec = target.nrec;
  out.vel_rows = target.vel_rows;
  out.vel_cols = target.vel_cols;
  out.samples.reserve(raw.size());
  for (const RawSample& s : raw.samples) out.samples.push_back(scale(s));
  return out;
}

void apply_time_gain(std::vector<Real>& waveform, const ScaleTarget& target) {
  if (target.time_gain_power == Real(0)) return;
  if (waveform.size() != target.nsrc * target.nt * target.nrec)
    throw std::invalid_argument("apply_time_gain: waveform shape mismatch");
  for (std::size_t s = 0; s < target.nsrc; ++s)
    for (std::size_t t = 0; t < target.nt; ++t) {
      const Real gain = std::pow((static_cast<Real>(t) + 1) /
                                     static_cast<Real>(target.nt),
                                 target.time_gain_power);
      for (std::size_t r = 0; r < target.nrec; ++r)
        waveform[(s * target.nt + t) * target.nrec + r] *= gain;
    }
}

std::vector<Real> scale_velocity_map(const seismic::VelocityModel& velocity,
                                     std::size_t rows, std::size_t cols) {
  const seismic::VelocityModel small = velocity.resampled(rows, cols);
  std::vector<Real> out(rows * cols);
  for (std::size_t k = 0; k < out.size(); ++k)
    out[k] = normalize_velocity(small.data()[k]);
  return out;
}

std::vector<Real> nearest_neighbor_waveform(const seismic::SeismicData& seismic,
                                            const ScaleTarget& target) {
  std::vector<Real> out(target.nsrc * target.nt * target.nrec);
  for (std::size_t s = 0; s < target.nsrc; ++s) {
    // Midpoint nearest-neighbour pick along each axis.
    const std::size_t src = target.nsrc == 1
                                ? seismic.nsrc() / 2
                                : s * (seismic.nsrc() - 1) / (target.nsrc - 1);
    for (std::size_t t = 0; t < target.nt; ++t) {
      const std::size_t tt =
          t * seismic.nt() / target.nt + seismic.nt() / (2 * target.nt);
      for (std::size_t r = 0; r < target.nrec; ++r) {
        const std::size_t rr =
            r * seismic.nrec() / target.nrec + seismic.nrec() / (2 * target.nrec);
        out[(s * target.nt + t) * target.nrec + r] = seismic.at(src, tt, rr);
      }
    }
  }
  return out;
}

ScaledSample DSampleScaler::scale(const RawSample& raw) const {
  ScaledSample out;
  out.waveform = nearest_neighbor_waveform(raw.seismic, target_);
  apply_time_gain(out.waveform, target_);
  out.velocity = scale_velocity_map(raw.velocity, target_.vel_rows, target_.vel_cols);
  return out;
}

ForwardModelScaler::ForwardModelScaler(ScaleTarget target,
                                       seismic::Acquisition acq,
                                       std::size_t sim_refine)
    : target_(target), acq_(std::move(acq)), sim_refine_(sim_refine) {
  acq_.num_sources = target_.nsrc;
  acq_.num_receivers = target_.nrec;
  acq_.num_time_samples = target_.nt;
}

ScaledSample ForwardModelScaler::scale(const RawSample& raw) const {
  ScaledSample out;
  const seismic::SeismicData modeled = seismic::physics_guided_remodel(
      raw.velocity, target_.vel_rows, target_.vel_cols, acq_, sim_refine_);
  out.waveform.assign(modeled.data().begin(), modeled.data().end());
  apply_time_gain(out.waveform, target_);
  out.velocity = scale_velocity_map(raw.velocity, target_.vel_rows, target_.vel_cols);
  return out;
}

}  // namespace qugeo::data
