#include "data/dataset.h"

#include <stdexcept>

#include "common/logging.h"

namespace qugeo::data {

RawDataset generate_raw_dataset(std::size_t count,
                                const seismic::FlatVelConfig& vel_cfg,
                                const seismic::Acquisition& acq, Rng& rng) {
  RawDataset ds;
  ds.velocity_config = vel_cfg;
  ds.acquisition = acq;
  ds.samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    RawSample s{seismic::generate_flatvel(vel_cfg, rng), {}};
    s.seismic = seismic::model_shots(s.velocity, acq);
    ds.samples.push_back(std::move(s));
    if ((i + 1) % 25 == 0)
      log_info("generate_raw_dataset: ", i + 1, "/", count, " samples");
  }
  return ds;
}

SplitView split_dataset(std::size_t total, std::size_t train_count) {
  if (train_count > total)
    throw std::invalid_argument("split_dataset: train_count > total");
  SplitView split;
  split.train.reserve(train_count);
  split.test.reserve(total - train_count);
  for (std::size_t i = 0; i < total; ++i)
    (i < train_count ? split.train : split.test).push_back(i);
  return split;
}

}  // namespace qugeo::data
