// Dataset containers for the FWI learning task.
//
// A raw sample pairs a 70x70 velocity map with its 5x1000x70 shot gathers
// (the synthetic stand-in for OpenFWI FlatVel-A; see DESIGN.md). A scaled
// sample is what actually reaches the quantum circuit: a 256-value waveform
// plus an 8x8 velocity map normalized to [0, 1].
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "seismic/forward_modeling.h"
#include "seismic/survey.h"
#include "seismic/velocity_model.h"

namespace qugeo::data {

/// Global velocity normalization constants (m/s), fixed by the FlatVel-A
/// specification so train/test use identical scaling.
inline constexpr Real kVelocityMin = 1500.0;
inline constexpr Real kVelocityMax = 4500.0;

[[nodiscard]] inline Real normalize_velocity(Real v) {
  return (v - kVelocityMin) / (kVelocityMax - kVelocityMin);
}
[[nodiscard]] inline Real denormalize_velocity(Real u) {
  return kVelocityMin + u * (kVelocityMax - kVelocityMin);
}

struct RawSample {
  seismic::VelocityModel velocity;
  seismic::SeismicData seismic;
};

struct RawDataset {
  std::vector<RawSample> samples;
  seismic::FlatVelConfig velocity_config;
  seismic::Acquisition acquisition;

  [[nodiscard]] std::size_t size() const noexcept { return samples.size(); }
};

/// Generate `count` raw samples: draw a FlatVel model, run the full-scale
/// acquisition. Deterministic given the rng seed.
[[nodiscard]] RawDataset generate_raw_dataset(std::size_t count,
                                              const seismic::FlatVelConfig& vel_cfg,
                                              const seismic::Acquisition& acq,
                                              Rng& rng);

/// One quantum-scale training pair.
struct ScaledSample {
  std::vector<Real> waveform;  ///< nsrc*nt*nrec values (source-major)
  std::vector<Real> velocity;  ///< vel_rows*vel_cols values in [0, 1]
};

struct ScaledDataset {
  std::string scaler_name;
  std::size_t nsrc = 1, nt = 32, nrec = 8;
  std::size_t vel_rows = 8, vel_cols = 8;
  std::vector<ScaledSample> samples;

  [[nodiscard]] std::size_t size() const noexcept { return samples.size(); }
  [[nodiscard]] std::size_t waveform_size() const noexcept {
    return nsrc * nt * nrec;
  }
  [[nodiscard]] std::size_t velocity_size() const noexcept {
    return vel_rows * vel_cols;
  }
};

/// Index-based train/test split (first `train_count` samples train, the
/// rest test — the generation order is already random).
struct SplitView {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

[[nodiscard]] SplitView split_dataset(std::size_t total, std::size_t train_count);

}  // namespace qugeo::data
