// Q-D-CNN: the LeNet-like learned data compressor of Sec. 3.1.2.
//
// Training pairs <D, phyD> are built from raw waveforms D and the
// physics-guided Q-D-FW waveforms phyD; the CNN learns to emit
// physics-coherent quantum-scale data from the raw recording alone, so the
// scaler works in deployment where no velocity map exists. Architecture:
// two convolution+ReLU stages and one fully connected layer, exactly the
// shape the paper describes.
#pragma once

#include <memory>

#include "data/scaling.h"
#include "nn/layers.h"

namespace qugeo::data {

struct CnnScalerConfig {
  /// Raw waveform is decimated to [channels=nsrc_in, time_rows, rec_cols]
  /// before entering the CNN (keeps the FC layer a sane size).
  std::size_t input_time_rows = 64;
  std::size_t input_rec_cols = 16;
  std::size_t epochs = 150;
  Real initial_lr = 1e-3;
  std::size_t batch_size = 8;
};

/// Learned compressor; construct via train_cnn_scaler.
class CnnScaler final : public Scaler {
 public:
  [[nodiscard]] ScaledSample scale(const RawSample& raw) const override;
  [[nodiscard]] std::string name() const override { return "Q-D-CNN"; }

  /// Compress a raw waveform (without touching the velocity map).
  [[nodiscard]] std::vector<Real> compress(const seismic::SeismicData& seismic) const;

  [[nodiscard]] std::size_t param_count() const;

 private:
  friend CnnScaler train_cnn_scaler(const RawDataset&, const ScaleTarget&,
                                    const CnnScalerConfig&, Rng&);
  CnnScaler() = default;

  ScaleTarget target_;
  CnnScalerConfig config_;
  Real input_scale_ = 1.0;  ///< 1 / max|raw waveform| over the training set
  std::shared_ptr<nn::Sequential> net_;  // shared so the scaler is copyable
};

/// Train the compressor on `train_set`: inputs are decimated raw waveforms,
/// targets are per-sample L2-normalized Q-D-FW waveforms. Returns the ready
/// scaler. Deterministic given `rng`.
[[nodiscard]] CnnScaler train_cnn_scaler(const RawDataset& train_set,
                                         const ScaleTarget& target,
                                         const CnnScalerConfig& config,
                                         Rng& rng);

}  // namespace qugeo::data
