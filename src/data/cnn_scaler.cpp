#include "data/cnn_scaler.h"

#include <cmath>
#include <stdexcept>

#include "common/logging.h"
#include "common/math_utils.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"

namespace qugeo::data {
namespace {

/// Decimate a raw gather volume to [nsrc_target, rows, cols] (nearest
/// neighbour along each axis), returned as a [1, C, H, W] tensor.
nn::Tensor decimate_raw(const seismic::SeismicData& seismic,
                        std::size_t nsrc_target, std::size_t rows,
                        std::size_t cols, Real input_scale) {
  nn::Tensor x({1, nsrc_target, rows, cols});
  for (std::size_t s = 0; s < nsrc_target; ++s) {
    const std::size_t src = nsrc_target == 1
                                ? seismic.nsrc() / 2
                                : s * (seismic.nsrc() - 1) / (nsrc_target - 1);
    for (std::size_t t = 0; t < rows; ++t) {
      const std::size_t tt = t * seismic.nt() / rows;
      for (std::size_t r = 0; r < cols; ++r) {
        const std::size_t rr = r * seismic.nrec() / cols;
        x.at4(0, s, t, r) = seismic.at(src, tt, rr) * input_scale;
      }
    }
  }
  return x;
}

std::shared_ptr<nn::Sequential> build_net(std::size_t in_ch, std::size_t rows,
                                          std::size_t cols, std::size_t out_dim,
                                          Rng& rng) {
  auto net = std::make_shared<nn::Sequential>();
  net->emplace<nn::Conv2d>(in_ch, 8, 3, 1, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2);
  net->emplace<nn::Conv2d>(8, 8, 3, 1, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2);
  net->emplace<nn::Flatten>();
  const std::size_t flat = 8 * (rows / 4) * (cols / 4);
  net->emplace<nn::Linear>(flat, out_dim, rng);
  return net;
}

}  // namespace

std::vector<Real> CnnScaler::compress(const seismic::SeismicData& seismic) const {
  const nn::Tensor x = decimate_raw(seismic, target_.nsrc, config_.input_time_rows,
                                    config_.input_rec_cols, input_scale_);
  const nn::Tensor y = net_->forward(x);
  return std::vector<Real>(y.data().begin(), y.data().end());
}

ScaledSample CnnScaler::scale(const RawSample& raw) const {
  ScaledSample out;
  out.waveform = compress(raw.seismic);
  out.velocity = scale_velocity_map(raw.velocity, target_.vel_rows, target_.vel_cols);
  return out;
}

std::size_t CnnScaler::param_count() const { return net_->param_count(); }

CnnScaler train_cnn_scaler(const RawDataset& train_set, const ScaleTarget& target,
                           const CnnScalerConfig& config, Rng& rng) {
  if (train_set.size() == 0)
    throw std::invalid_argument("train_cnn_scaler: empty training set");

  CnnScaler scaler;
  scaler.target_ = target;
  scaler.config_ = config;

  // Input normalization: one global scale over the training set.
  Real max_abs = 0;
  for (const RawSample& s : train_set.samples)
    for (Real v : s.seismic.data()) max_abs = std::max(max_abs, std::abs(v));
  scaler.input_scale_ = max_abs > 0 ? Real(1) / max_abs : Real(1);

  const std::size_t out_dim = target.nsrc * target.nt * target.nrec;
  scaler.net_ = build_net(target.nsrc, config.input_time_rows,
                          config.input_rec_cols, out_dim, rng);

  // Targets: physics-guided waveforms, L2-normalized per sample (the
  // quantum encoder normalizes anyway, so this is the natural gauge).
  const ForwardModelScaler reference(target);
  std::vector<nn::Tensor> inputs, targets;
  inputs.reserve(train_set.size());
  targets.reserve(train_set.size());
  for (const RawSample& s : train_set.samples) {
    inputs.push_back(decimate_raw(s.seismic, target.nsrc, config.input_time_rows,
                                  config.input_rec_cols, scaler.input_scale_));
    ScaledSample ref = reference.scale(s);
    normalize_l2(ref.waveform);
    targets.emplace_back(std::vector<std::size_t>{1, out_dim},
                         std::move(ref.waveform));
  }

  nn::Adam opt(scaler.net_->params());
  const nn::CosineAnnealingLr schedule(config.initial_lr, config.epochs);
  const std::size_t n = inputs.size();
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto order = rng.permutation(n);
    Real epoch_loss = 0;
    std::size_t in_batch = 0;
    opt.zero_grad();
    for (std::size_t idx = 0; idx < n; ++idx) {
      const std::size_t i = order[idx];
      const nn::Tensor pred = scaler.net_->forward(inputs[i]);
      const nn::LossResult loss = nn::mse_loss(pred, targets[i]);
      epoch_loss += loss.value;
      (void)scaler.net_->backward(loss.grad);
      if (++in_batch == config.batch_size || idx + 1 == n) {
        opt.step(schedule.lr(epoch));
        opt.zero_grad();
        in_batch = 0;
      }
    }
    if ((epoch + 1) % 50 == 0)
      log_info("train_cnn_scaler: epoch ", epoch + 1, "/", config.epochs,
               " mse=", epoch_loss / static_cast<Real>(n));
  }
  return scaler;
}

}  // namespace qugeo::data
