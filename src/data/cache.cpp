#include "data/cache.h"

#include <sstream>

#include "common/env.h"
#include "common/io.h"
#include "common/logging.h"

namespace qugeo::data {
namespace {

std::filesystem::path wave_path(const std::filesystem::path& base) {
  return base.string() + ".wave.qgt";
}
std::filesystem::path vel_path(const std::filesystem::path& base) {
  return base.string() + ".vel.qgt";
}

}  // namespace

void save_scaled_dataset(const std::filesystem::path& base,
                         const ScaledDataset& ds) {
  const std::size_t n = ds.size();
  std::vector<Real> waves, vels;
  waves.reserve(n * ds.waveform_size());
  vels.reserve(n * ds.velocity_size());
  for (const ScaledSample& s : ds.samples) {
    waves.insert(waves.end(), s.waveform.begin(), s.waveform.end());
    vels.insert(vels.end(), s.velocity.begin(), s.velocity.end());
  }
  const std::size_t wshape[] = {n, ds.nsrc, ds.nt, ds.nrec};
  const std::size_t vshape[] = {n, ds.vel_rows, ds.vel_cols};
  save_tensor(wave_path(base), waves, wshape);
  save_tensor(vel_path(base), vels, vshape);
}

ScaledDataset load_scaled_dataset(const std::filesystem::path& base) {
  const LoadedTensor w = load_tensor(wave_path(base));
  const LoadedTensor v = load_tensor(vel_path(base));
  if (w.shape.size() != 4 || v.shape.size() != 3 || w.shape[0] != v.shape[0])
    throw std::runtime_error("load_scaled_dataset: malformed cache");
  ScaledDataset ds;
  ds.scaler_name = base.filename().string();
  ds.nsrc = w.shape[1];
  ds.nt = w.shape[2];
  ds.nrec = w.shape[3];
  ds.vel_rows = v.shape[1];
  ds.vel_cols = v.shape[2];
  const std::size_t n = w.shape[0];
  const std::size_t wsize = ds.waveform_size();
  const std::size_t vsize = ds.velocity_size();
  ds.samples.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ds.samples[i].waveform.assign(w.data.begin() + static_cast<std::ptrdiff_t>(i * wsize),
                                  w.data.begin() + static_cast<std::ptrdiff_t>((i + 1) * wsize));
    ds.samples[i].velocity.assign(v.data.begin() + static_cast<std::ptrdiff_t>(i * vsize),
                                  v.data.begin() + static_cast<std::ptrdiff_t>((i + 1) * vsize));
  }
  return ds;
}

bool scaled_dataset_exists(const std::filesystem::path& base) {
  return std::filesystem::exists(wave_path(base)) &&
         std::filesystem::exists(vel_path(base));
}

ExperimentDataConfig experiment_config_from_env() {
  ExperimentDataConfig cfg;
  cfg.num_samples = env::parse_env_positive("QUGEO_SAMPLES", cfg.num_samples);
  cfg.train_count = env::parse_env_positive("QUGEO_TRAIN", cfg.train_count);
  cfg.cnn_train_samples =
      env::parse_env_positive("QUGEO_CNN_SAMPLES", cfg.cnn_train_samples);
  // QUGEO_SEED is unsigned by contract: a negative value is rejected
  // loudly instead of wrapping through two's complement (see common/env.h
  // and the docs/ARCHITECTURE.md env table).
  cfg.seed = env::parse_env_u64("QUGEO_SEED", cfg.seed);
  if (cfg.train_count >= cfg.num_samples)
    cfg.train_count = cfg.num_samples * 3 / 4;
  return cfg;
}

std::size_t epochs_from_env(std::size_t fallback) {
  return env::parse_env_positive("QUGEO_EPOCHS", fallback);
}

ExperimentData load_or_build_experiment_data(const ExperimentDataConfig& config) {
  std::filesystem::create_directories(config.cache_dir);
  std::ostringstream tag;
  tag << "n" << config.num_samples << "_c" << config.cnn_train_samples << "_s"
      << config.seed << "_q" << config.target.nsrc << "x" << config.target.nt
      << "x" << config.target.nrec << "_g" << config.target.time_gain_power;
  const auto base = config.cache_dir / tag.str();

  ExperimentData data;
  data.train_count = config.train_count;
  const auto p_ds = base.string() + "_dsample";
  const auto p_fw = base.string() + "_qdfw";
  const auto p_cnn = base.string() + "_qdcnn";
  if (scaled_dataset_exists(p_ds) && scaled_dataset_exists(p_fw) &&
      scaled_dataset_exists(p_cnn)) {
    log_info("experiment data: loading cache ", base.string());
    data.dsample = load_scaled_dataset(p_ds);
    data.qdfw = load_scaled_dataset(p_fw);
    data.qdcnn = load_scaled_dataset(p_cnn);
    data.dsample.scaler_name = "D-Sample";
    data.qdfw.scaler_name = "Q-D-FW";
    data.qdcnn.scaler_name = "Q-D-CNN";
    return data;
  }

  log_info("experiment data: generating ", config.num_samples, "+",
           config.cnn_train_samples, " raw samples (cache miss)");
  Rng rng(config.seed);
  const seismic::FlatVelConfig vel_cfg;
  const seismic::Acquisition acq = seismic::openfwi_acquisition();
  const RawDataset raw =
      generate_raw_dataset(config.num_samples, vel_cfg, acq, rng);
  const RawDataset cnn_raw =
      generate_raw_dataset(config.cnn_train_samples, vel_cfg, acq, rng);

  const auto& t = config.target;
  const DSampleScaler dsample(t);
  const ForwardModelScaler qdfw(t);
  log_info("experiment data: training Q-D-CNN compressor");
  Rng cnn_rng = rng.split();
  const CnnScaler qdcnn = train_cnn_scaler(cnn_raw, t, config.cnn, cnn_rng);

  data.dsample = dsample.scale_dataset(raw, t);
  data.qdfw = qdfw.scale_dataset(raw, t);
  data.qdcnn = qdcnn.scale_dataset(raw, t);

  save_scaled_dataset(p_ds, data.dsample);
  save_scaled_dataset(p_fw, data.qdfw);
  save_scaled_dataset(p_cnn, data.qdcnn);
  log_info("experiment data: cached to ", base.string());
  return data;
}

}  // namespace qugeo::data
