// QuGeoData scalers (Sec. 3.1): three ways of shrinking a raw FWI sample to
// quantum scale.
//
//  * DSampleScaler — the paper's baseline: nearest-neighbour resampling of
//    both the waveform and the velocity map (physically incoherent for the
//    waveform, which is the point of Figure 6).
//  * ForwardModelScaler (Q-D-FW) — physics-guided: downsample the velocity
//    map, re-run forward modelling with the 8 Hz source.
//  * CnnScaler (Q-D-CNN, see cnn_scaler.h) — learned compression that needs
//    no velocity map at inference time.
#pragma once

#include <memory>
#include <string>

#include "data/dataset.h"

namespace qugeo::data {

/// Common interface: map one raw sample to a quantum-scale sample.
class Scaler {
 public:
  virtual ~Scaler() = default;

  [[nodiscard]] virtual ScaledSample scale(const RawSample& raw) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Scale a whole dataset; `target` describes the output shape recorded in
  /// the dataset metadata and must match what scale() produces.
  [[nodiscard]] ScaledDataset scale_dataset(const RawDataset& raw,
                                            const struct ScaleTarget& target) const;
};

/// Target shape shared by all scalers: 256 waveform values and an 8x8 map.
/// The 32-sample time axis keeps the recording Nyquist (16 Hz) above the
/// 8 Hz source the physics-guided scaler uses — exactly why Sec. 3.1.1
/// lowers the wavelet frequency instead of decimating harder.
struct ScaleTarget {
  std::size_t nsrc = 1;
  std::size_t nt = 32;
  std::size_t nrec = 8;
  std::size_t vel_rows = 8;
  std::size_t vel_cols = 8;
  /// Spherical-divergence / attenuation compensation: trace samples are
  /// multiplied by (t/nt)^power before encoding, so late (deep-reflection)
  /// arrivals are not drowned out by the direct wave once the quantum
  /// encoder L2-normalizes the amplitudes. 0 disables. Applied uniformly by
  /// every scaler (a textbook gain-recovery step, not a model advantage).
  Real time_gain_power = 2.0;
};

/// Apply the ScaleTarget's time gain to a (nsrc, nt, nrec) waveform in place.
void apply_time_gain(std::vector<Real>& waveform, const ScaleTarget& target);

/// Nearest-neighbour downsampling of waveform and velocity ("D-Sample").
class DSampleScaler final : public Scaler {
 public:
  explicit DSampleScaler(ScaleTarget target = {}) : target_(target) {}
  [[nodiscard]] ScaledSample scale(const RawSample& raw) const override;
  [[nodiscard]] std::string name() const override { return "D-Sample"; }

 private:
  ScaleTarget target_;
};

/// Physics-guided re-modelling ("Q-D-FW"). Requires the velocity map, so it
/// is a training-time-only scaler (Sec. 3.1.2 motivates the CNN for
/// deployment).
class ForwardModelScaler final : public Scaler {
 public:
  explicit ForwardModelScaler(ScaleTarget target = {},
                              seismic::Acquisition acq = seismic::quantum_acquisition(),
                              std::size_t sim_refine = 8);
  [[nodiscard]] ScaledSample scale(const RawSample& raw) const override;
  [[nodiscard]] std::string name() const override { return "Q-D-FW"; }

 private:
  ScaleTarget target_;
  seismic::Acquisition acq_;
  std::size_t sim_refine_;
};

/// Downsample + normalize only the velocity map (shared by all scalers).
[[nodiscard]] std::vector<Real> scale_velocity_map(
    const seismic::VelocityModel& velocity, std::size_t rows, std::size_t cols);

/// Nearest-neighbour waveform resampling used by D-Sample (exposed for the
/// Figure 6 visualization bench).
[[nodiscard]] std::vector<Real> nearest_neighbor_waveform(
    const seismic::SeismicData& seismic, const ScaleTarget& target);

}  // namespace qugeo::data
