// Experiment-data assembly with on-disk caching.
//
// Raw dataset synthesis (FDTD over hundreds of shots) dominates bench start
// time, so the three scaled datasets are built once per configuration and
// cached as binary tensors; every bench then loads in milliseconds. Scale
// knobs can be overridden via environment variables (QUGEO_SAMPLES,
// QUGEO_TRAIN, QUGEO_EPOCHS, QUGEO_SEED) to move between the fast default
// and the paper-scale setup recorded in EXPERIMENTS.md.
#pragma once

#include <filesystem>

#include "data/cnn_scaler.h"
#include "data/dataset.h"
#include "data/scaling.h"

namespace qugeo::data {

void save_scaled_dataset(const std::filesystem::path& base,
                         const ScaledDataset& ds);

[[nodiscard]] ScaledDataset load_scaled_dataset(const std::filesystem::path& base);

[[nodiscard]] bool scaled_dataset_exists(const std::filesystem::path& base);

/// The corpus every experiment consumes: the same raw samples scaled three
/// ways, plus the train/test split boundary.
struct ExperimentData {
  ScaledDataset dsample;
  ScaledDataset qdfw;
  ScaledDataset qdcnn;
  std::size_t train_count = 0;

  [[nodiscard]] SplitView split() const {
    return split_dataset(dsample.size(), train_count);
  }
};

struct ExperimentDataConfig {
  std::size_t num_samples = 160;      ///< paper: 500
  std::size_t train_count = 120;      ///< paper: 400
  std::size_t cnn_train_samples = 40; ///< paper: 500 separate samples
  std::uint64_t seed = 1234;
  ScaleTarget target;
  CnnScalerConfig cnn;
  std::filesystem::path cache_dir = "qugeo_cache";
};

/// Defaults overridden by QUGEO_SAMPLES / QUGEO_TRAIN / QUGEO_SEED.
[[nodiscard]] ExperimentDataConfig experiment_config_from_env();

/// Build (or load from cache) the three scaled datasets.
[[nodiscard]] ExperimentData load_or_build_experiment_data(
    const ExperimentDataConfig& config);

/// Training epochs for VQC/CNN models: QUGEO_EPOCHS or `fallback`.
[[nodiscard]] std::size_t epochs_from_env(std::size_t fallback = 150);

}  // namespace qugeo::data
