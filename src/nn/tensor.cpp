#include "nn/tensor.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace qugeo::nn {
namespace {

std::size_t shape_numel(const std::vector<std::size_t>& shape) {
  return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                         std::multiplies<>());
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), Real(0)) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<Real> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_numel(shape_))
    throw std::invalid_argument("Tensor: data size does not match shape");
}

Real Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                 std::size_t w) const {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Real& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Real Tensor::at2(std::size_t n, std::size_t f) const {
  return data_[n * shape_[1] + f];
}

Real& Tensor::at2(std::size_t n, std::size_t f) {
  return data_[n * shape_[1] + f];
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  if (shape_numel(new_shape) != numel())
    throw std::invalid_argument("Tensor::reshaped: numel mismatch");
  return Tensor(std::move(new_shape), std::vector<Real>(data_.begin(), data_.end()));
}

void Tensor::fill(Real value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::init_kaiming(Rng& rng, std::size_t fan_in) {
  const Real bound = std::sqrt(Real(6) / static_cast<Real>(fan_in == 0 ? 1 : fan_in));
  rng.fill_uniform(data_, -bound, bound);
}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape));
}

}  // namespace qugeo::nn
