#include "nn/schedule.h"

#include <cmath>

namespace qugeo::nn {

CosineAnnealingLr::CosineAnnealingLr(Real initial_lr, std::size_t total_epochs,
                                     Real min_lr)
    : initial_lr_(initial_lr),
      min_lr_(min_lr),
      total_epochs_(total_epochs == 0 ? 1 : total_epochs) {}

Real CosineAnnealingLr::lr(std::size_t epoch) const noexcept {
  if (epoch >= total_epochs_) return min_lr_;
  const Real t = static_cast<Real>(epoch) / static_cast<Real>(total_epochs_);
  return min_lr_ + (initial_lr_ - min_lr_) * Real(0.5) * (Real(1) + std::cos(kPi * t));
}

}  // namespace qugeo::nn
