// First-order optimizers over Param lists. Adam matches the paper's training
// setup (Adam, lr 0.1, cosine annealing).
#pragma once

#include <vector>

#include "nn/tensor.h"

namespace qugeo::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Apply one update using the current gradients and learning rate.
  virtual void step(Real lr) = 0;

  /// Clear all accumulated gradients.
  void zero_grad();

 protected:
  std::vector<Param*> params_;
};

/// Plain stochastic gradient descent (with optional momentum).
class Sgd final : public Optimizer {
 public:
  explicit Sgd(std::vector<Param*> params, Real momentum = 0);
  void step(Real lr) override;

 private:
  Real momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(std::vector<Param*> params, Real beta1 = 0.9,
                Real beta2 = 0.999, Real eps = 1e-8);
  void step(Real lr) override;

 private:
  Real beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace qugeo::nn
