// First-order optimizers over Param lists, plus the flat-vector Adam the
// VQC trainer uses. Adam matches the paper's training setup (Adam, lr 0.1,
// cosine annealing).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/tensor.h"

namespace qugeo::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Apply one update using the current gradients and learning rate.
  virtual void step(Real lr) = 0;

  /// Clear all accumulated gradients.
  void zero_grad();

 protected:
  std::vector<Param*> params_;
};

/// Plain stochastic gradient descent (with optional momentum).
class Sgd final : public Optimizer {
 public:
  explicit Sgd(std::vector<Param*> params, Real momentum = 0);
  void step(Real lr) override;

 private:
  Real momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(std::vector<Param*> params, Real beta1 = 0.9,
                Real beta2 = 0.999, Real eps = 1e-8);
  void step(Real lr) override;

 private:
  Real beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

/// Adam over one flat parameter vector (the VQC angle table + decoder
/// scale) — the trainer's optimizer. Unlike the Param-list Adam above, its
/// complete state is exposed for checkpointing: persisting {t, m, v} and
/// restoring them resumes training bit-identically (core/serialization
/// packs this into TrainCheckpoint).
class AdamFlat {
 public:
  explicit AdamFlat(std::size_t n) : m_(n, 0), v_(n, 0) {}

  /// One bias-corrected Adam update (beta1 0.9, beta2 0.999, eps 1e-8).
  void step(std::span<Real> params, std::span<const Real> grads, Real lr);

  /// Complete optimizer state; restore() of a state() snapshot resumes
  /// the update sequence bit-identically.
  struct State {
    std::uint64_t t = 0;          ///< update count (bias-correction clock)
    std::vector<Real> m, v;       ///< first/second moment estimates
  };
  [[nodiscard]] State state() const;
  /// Throws std::invalid_argument when the moment sizes do not match the
  /// parameter count this optimizer was built for.
  void restore(const State& state);

 private:
  std::uint64_t t_ = 0;
  std::vector<Real> m_, v_;
};

}  // namespace qugeo::nn
