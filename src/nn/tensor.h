// Minimal dense row-major tensor for the classical NN substrate.
//
// Scope is deliberately narrow: the QuGeo CNNs are tiny (hundreds of
// parameters), so clarity beats BLAS here. Shapes follow the PyTorch
// conventions used by the paper's baselines: [N, C, H, W] for images and
// [N, F] for fully-connected activations.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace qugeo::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::vector<std::size_t> shape, std::vector<Real> data);

  [[nodiscard]] const std::vector<std::size_t>& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::size_t numel() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const { return shape_.at(i); }

  [[nodiscard]] std::span<const Real> data() const noexcept { return data_; }
  [[nodiscard]] std::span<Real> data_mut() noexcept { return data_; }

  [[nodiscard]] Real operator[](std::size_t i) const { return data_[i]; }
  Real& operator[](std::size_t i) { return data_[i]; }

  /// 4-D accessor for [N, C, H, W] tensors.
  [[nodiscard]] Real at4(std::size_t n, std::size_t c, std::size_t h,
                         std::size_t w) const;
  Real& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);

  /// 2-D accessor for [N, F] tensors.
  [[nodiscard]] Real at2(std::size_t n, std::size_t f) const;
  Real& at2(std::size_t n, std::size_t f);

  /// Same data, different shape (numel must match).
  [[nodiscard]] Tensor reshaped(std::vector<std::size_t> new_shape) const;

  void fill(Real value);
  void zero() { fill(0); }

  /// Kaiming-uniform initialization with the given fan-in.
  void init_kaiming(Rng& rng, std::size_t fan_in);

  [[nodiscard]] static Tensor zeros(std::vector<std::size_t> shape);

 private:
  std::vector<std::size_t> shape_;
  std::vector<Real> data_;
};

/// Trainable parameter: value plus accumulated gradient of equal shape.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(std::vector<std::size_t> shape)
      : value(shape), grad(std::move(shape)) {}
  [[nodiscard]] std::size_t numel() const noexcept { return value.numel(); }
};

}  // namespace qugeo::nn
