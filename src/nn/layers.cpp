#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace qugeo::nn {

std::size_t Layer::param_count() {
  std::size_t n = 0;
  for (const Param* p : params()) n += p->numel();
  return n;
}

// ---------------------------------------------------------------- Conv2d --

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}) {
  if (stride == 0) throw std::invalid_argument("Conv2d: stride must be > 0");
  weight_.value.init_kaiming(rng, in_channels * kernel * kernel);
  bias_.value.zero();
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != in_ch_)
    throw std::invalid_argument("Conv2d: expected [N, C_in, H, W]");
  input_ = x;
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const std::size_t ow = (w + 2 * padding_ - kernel_) / stride_ + 1;
  Tensor y({n, out_ch_, oh, ow});
  for (std::size_t b = 0; b < n; ++b)
    for (std::size_t oc = 0; oc < out_ch_; ++oc)
      for (std::size_t i = 0; i < oh; ++i)
        for (std::size_t j = 0; j < ow; ++j) {
          Real acc = bias_.value[oc];
          for (std::size_t ic = 0; ic < in_ch_; ++ic)
            for (std::size_t ki = 0; ki < kernel_; ++ki)
              for (std::size_t kj = 0; kj < kernel_; ++kj) {
                const std::ptrdiff_t ih =
                    static_cast<std::ptrdiff_t>(i * stride_ + ki) -
                    static_cast<std::ptrdiff_t>(padding_);
                const std::ptrdiff_t iw =
                    static_cast<std::ptrdiff_t>(j * stride_ + kj) -
                    static_cast<std::ptrdiff_t>(padding_);
                if (ih < 0 || iw < 0 || ih >= static_cast<std::ptrdiff_t>(h) ||
                    iw >= static_cast<std::ptrdiff_t>(w))
                  continue;
                acc += weight_.value.at4(oc, ic, ki, kj) *
                       x.at4(b, ic, static_cast<std::size_t>(ih),
                             static_cast<std::size_t>(iw));
              }
          y.at4(b, oc, i, j) = acc;
        }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const std::size_t n = input_.dim(0), h = input_.dim(2), w = input_.dim(3);
  const std::size_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  Tensor grad_in(input_.shape());
  for (std::size_t b = 0; b < n; ++b)
    for (std::size_t oc = 0; oc < out_ch_; ++oc)
      for (std::size_t i = 0; i < oh; ++i)
        for (std::size_t j = 0; j < ow; ++j) {
          const Real g = grad_out.at4(b, oc, i, j);
          bias_.grad[oc] += g;
          for (std::size_t ic = 0; ic < in_ch_; ++ic)
            for (std::size_t ki = 0; ki < kernel_; ++ki)
              for (std::size_t kj = 0; kj < kernel_; ++kj) {
                const std::ptrdiff_t ih =
                    static_cast<std::ptrdiff_t>(i * stride_ + ki) -
                    static_cast<std::ptrdiff_t>(padding_);
                const std::ptrdiff_t iw =
                    static_cast<std::ptrdiff_t>(j * stride_ + kj) -
                    static_cast<std::ptrdiff_t>(padding_);
                if (ih < 0 || iw < 0 || ih >= static_cast<std::ptrdiff_t>(h) ||
                    iw >= static_cast<std::ptrdiff_t>(w))
                  continue;
                const auto ihs = static_cast<std::size_t>(ih);
                const auto iws = static_cast<std::size_t>(iw);
                weight_.grad.at4(oc, ic, ki, kj) += g * input_.at4(b, ic, ihs, iws);
                grad_in.at4(b, ic, ihs, iws) += g * weight_.value.at4(oc, ic, ki, kj);
              }
        }
  return grad_in;
}

// ---------------------------------------------------------------- Linear --

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_f_(in_features),
      out_f_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}) {
  weight_.value.init_kaiming(rng, in_features);
  bias_.value.zero();
}

Tensor Linear::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_f_)
    throw std::invalid_argument("Linear: expected [N, in_features]");
  input_ = x;
  const std::size_t n = x.dim(0);
  Tensor y({n, out_f_});
  for (std::size_t b = 0; b < n; ++b)
    for (std::size_t o = 0; o < out_f_; ++o) {
      Real acc = bias_.value[o];
      for (std::size_t i = 0; i < in_f_; ++i)
        acc += weight_.value.at2(o, i) * x.at2(b, i);
      y.at2(b, o) = acc;
    }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const std::size_t n = input_.dim(0);
  Tensor grad_in({n, in_f_});
  for (std::size_t b = 0; b < n; ++b)
    for (std::size_t o = 0; o < out_f_; ++o) {
      const Real g = grad_out.at2(b, o);
      bias_.grad[o] += g;
      for (std::size_t i = 0; i < in_f_; ++i) {
        weight_.grad.at2(o, i) += g * input_.at2(b, i);
        grad_in.at2(b, i) += g * weight_.value.at2(o, i);
      }
    }
  return grad_in;
}

// ------------------------------------------------------------------ ReLU --

Tensor ReLU::forward(const Tensor& x) {
  input_ = x;
  Tensor y = x;
  for (auto& v : y.data_mut())
    if (v < 0) v = 0;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  auto gi = grad_in.data_mut();
  const auto xi = input_.data();
  for (std::size_t k = 0; k < gi.size(); ++k)
    if (xi[k] <= 0) gi[k] = 0;
  return grad_in;
}

// --------------------------------------------------------------- Sigmoid --

Tensor Sigmoid::forward(const Tensor& x) {
  Tensor y = x;
  for (auto& v : y.data_mut()) v = Real(1) / (Real(1) + std::exp(-v));
  output_ = y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  auto gi = grad_in.data_mut();
  const auto yo = output_.data();
  for (std::size_t k = 0; k < gi.size(); ++k)
    gi[k] *= yo[k] * (Real(1) - yo[k]);
  return grad_in;
}

// ------------------------------------------------------------- MaxPool2d --

MaxPool2d::MaxPool2d(std::size_t kernel) : kernel_(kernel) {
  if (kernel == 0) throw std::invalid_argument("MaxPool2d: kernel must be > 0");
}

Tensor MaxPool2d::forward(const Tensor& x) {
  if (x.rank() != 4) throw std::invalid_argument("MaxPool2d: expected 4-D input");
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = h / kernel_, ow = w / kernel_;
  Tensor y({n, c, oh, ow});
  argmax_.assign(y.numel(), 0);
  std::size_t out_idx = 0;
  for (std::size_t b = 0; b < n; ++b)
    for (std::size_t ch = 0; ch < c; ++ch)
      for (std::size_t i = 0; i < oh; ++i)
        for (std::size_t j = 0; j < ow; ++j, ++out_idx) {
          Real best = -std::numeric_limits<Real>::infinity();
          std::size_t best_flat = 0;
          for (std::size_t ki = 0; ki < kernel_; ++ki)
            for (std::size_t kj = 0; kj < kernel_; ++kj) {
              const std::size_t ih = i * kernel_ + ki, iw = j * kernel_ + kj;
              const Real v = x.at4(b, ch, ih, iw);
              if (v > best) {
                best = v;
                best_flat = ((b * c + ch) * h + ih) * w + iw;
              }
            }
          y.at4(b, ch, i, j) = best;
          argmax_[out_idx] = best_flat;
        }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  const auto go = grad_out.data();
  auto gi = grad_in.data_mut();
  for (std::size_t k = 0; k < go.size(); ++k) gi[argmax_[k]] += go[k];
  return grad_in;
}

// --------------------------------------------------------------- Flatten --

Tensor Flatten::forward(const Tensor& x) {
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0);
  return x.reshaped({n, x.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

// ------------------------------------------------------------ Sequential --

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = layers_.size(); i-- > 0;) g = layers_[i]->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_)
    for (Param* p : layer->params()) all.push_back(p);
  return all;
}

}  // namespace qugeo::nn
