// Loss functions returning both the scalar and the gradient w.r.t. the
// prediction, matching Eq. 2 (pixel-wise MSE) in the paper.
#pragma once

#include "nn/tensor.h"

namespace qugeo::nn {

struct LossResult {
  Real value = 0;
  Tensor grad;  ///< dL/d(prediction), same shape as the prediction.
};

/// Mean squared error over all elements: L = mean((pred - target)^2).
[[nodiscard]] LossResult mse_loss(const Tensor& pred, const Tensor& target);

/// Sum-of-squares error (the paper's Eq. 2/3 use an unnormalized sum).
[[nodiscard]] LossResult sse_loss(const Tensor& pred, const Tensor& target);

}  // namespace qugeo::nn
