// Layers with explicit forward/backward passes (reverse-mode autodiff by
// hand — the networks are LeNet-scale so naive loops are the right tool).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace qugeo::nn {

/// Base class for differentiable layers. forward() caches whatever backward()
/// needs; backward() receives dL/d(output) and returns dL/d(input), adding
/// parameter gradients into the layer's Param::grad tensors.
class Layer {
 public:
  virtual ~Layer() = default;

  [[nodiscard]] virtual Tensor forward(const Tensor& x) = 0;
  [[nodiscard]] virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Trainable parameters (empty for stateless layers).
  [[nodiscard]] virtual std::vector<Param*> params() { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Total trainable scalar count.
  [[nodiscard]] std::size_t param_count();
};

/// 2-D convolution over [N, C, H, W] with zero padding.
class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t padding,
         Rng& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "Conv2d"; }

 private:
  std::size_t in_ch_, out_ch_, kernel_, stride_, padding_;
  Param weight_;  // [out, in, k, k]
  Param bias_;    // [out]
  Tensor input_;
};

/// Fully connected layer over [N, F].
class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "Linear"; }

 private:
  std::size_t in_f_, out_f_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor input_;
};

/// Elementwise rectified linear unit.
class ReLU final : public Layer {
 public:
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor input_;
};

/// Elementwise logistic sigmoid (used by decoder heads that must emit
/// values in (0, 1), mirroring the bounded quantum measurements).
class Sigmoid final : public Layer {
 public:
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Sigmoid"; }

 private:
  Tensor output_;
};

/// Max pooling over [N, C, H, W] with square window and equal stride.
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t kernel);

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2d"; }

 private:
  std::size_t kernel_;
  std::vector<std::size_t> argmax_;
  std::vector<std::size_t> in_shape_;
};

/// [N, C, H, W] -> [N, C*H*W].
class Flatten final : public Layer {
 public:
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> in_shape_;
};

/// Ordered container chaining layers; owns them.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Append a layer (builder style).
  Sequential& add(std::unique_ptr<Layer> layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "Sequential"; }
  [[nodiscard]] std::size_t size() const noexcept { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace qugeo::nn
