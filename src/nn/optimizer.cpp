#include "nn/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace qugeo::nn {

void Optimizer::zero_grad() {
  for (Param* p : params_) p->grad.zero();
}

Sgd::Sgd(std::vector<Param*> params, Real momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step(Real lr) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto val = params_[i]->value.data_mut();
    const auto grad = params_[i]->grad.data();
    auto vel = velocity_[i].data_mut();
    for (std::size_t k = 0; k < val.size(); ++k) {
      vel[k] = momentum_ * vel[k] + grad[k];
      val[k] -= lr * vel[k];
    }
  }
}

Adam::Adam(std::vector<Param*> params, Real beta1, Real beta2, Real eps)
    : Optimizer(std::move(params)), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step(Real lr) {
  ++t_;
  const Real bc1 = Real(1) - std::pow(beta1_, static_cast<Real>(t_));
  const Real bc2 = Real(1) - std::pow(beta2_, static_cast<Real>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto val = params_[i]->value.data_mut();
    const auto grad = params_[i]->grad.data();
    auto m = m_[i].data_mut();
    auto v = v_[i].data_mut();
    for (std::size_t k = 0; k < val.size(); ++k) {
      m[k] = beta1_ * m[k] + (Real(1) - beta1_) * grad[k];
      v[k] = beta2_ * v[k] + (Real(1) - beta2_) * grad[k] * grad[k];
      const Real mhat = m[k] / bc1;
      const Real vhat = v[k] / bc2;
      val[k] -= lr * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void AdamFlat::step(std::span<Real> params, std::span<const Real> grads,
                    Real lr) {
  ++t_;
  const Real bc1 = Real(1) - std::pow(Real(0.9), static_cast<Real>(t_));
  const Real bc2 = Real(1) - std::pow(Real(0.999), static_cast<Real>(t_));
  for (std::size_t k = 0; k < params.size(); ++k) {
    m_[k] = Real(0.9) * m_[k] + Real(0.1) * grads[k];
    v_[k] = Real(0.999) * v_[k] + Real(0.001) * grads[k] * grads[k];
    params[k] -= lr * (m_[k] / bc1) / (std::sqrt(v_[k] / bc2) + Real(1e-8));
  }
}

AdamFlat::State AdamFlat::state() const { return {t_, m_, v_}; }

void AdamFlat::restore(const State& state) {
  if (state.m.size() != m_.size() || state.v.size() != v_.size())
    throw std::invalid_argument(
        "AdamFlat::restore: moment size mismatch (checkpoint holds " +
        std::to_string(state.m.size()) + ", optimizer expects " +
        std::to_string(m_.size()) + ")");
  t_ = state.t;
  m_ = state.m;
  v_ = state.v;
}

}  // namespace qugeo::nn
