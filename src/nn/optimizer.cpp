#include "nn/optimizer.h"

#include <cmath>

namespace qugeo::nn {

void Optimizer::zero_grad() {
  for (Param* p : params_) p->grad.zero();
}

Sgd::Sgd(std::vector<Param*> params, Real momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step(Real lr) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto val = params_[i]->value.data_mut();
    const auto grad = params_[i]->grad.data();
    auto vel = velocity_[i].data_mut();
    for (std::size_t k = 0; k < val.size(); ++k) {
      vel[k] = momentum_ * vel[k] + grad[k];
      val[k] -= lr * vel[k];
    }
  }
}

Adam::Adam(std::vector<Param*> params, Real beta1, Real beta2, Real eps)
    : Optimizer(std::move(params)), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step(Real lr) {
  ++t_;
  const Real bc1 = Real(1) - std::pow(beta1_, static_cast<Real>(t_));
  const Real bc2 = Real(1) - std::pow(beta2_, static_cast<Real>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto val = params_[i]->value.data_mut();
    const auto grad = params_[i]->grad.data();
    auto m = m_[i].data_mut();
    auto v = v_[i].data_mut();
    for (std::size_t k = 0; k < val.size(); ++k) {
      m[k] = beta1_ * m[k] + (Real(1) - beta1_) * grad[k];
      v[k] = beta2_ * v[k] + (Real(1) - beta2_) * grad[k] * grad[k];
      const Real mhat = m[k] / bc1;
      const Real vhat = v[k] / bc2;
      val[k] -= lr * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace qugeo::nn
