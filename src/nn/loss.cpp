#include "nn/loss.h"

#include <stdexcept>

namespace qugeo::nn {

LossResult mse_loss(const Tensor& pred, const Tensor& target) {
  if (pred.numel() != target.numel())
    throw std::invalid_argument("mse_loss: size mismatch");
  LossResult r;
  r.grad = Tensor(pred.shape());
  const auto p = pred.data();
  const auto t = target.data();
  auto g = r.grad.data_mut();
  const Real inv_n = Real(1) / static_cast<Real>(pred.numel());
  for (std::size_t k = 0; k < p.size(); ++k) {
    const Real d = p[k] - t[k];
    r.value += d * d * inv_n;
    g[k] = 2 * d * inv_n;
  }
  return r;
}

LossResult sse_loss(const Tensor& pred, const Tensor& target) {
  if (pred.numel() != target.numel())
    throw std::invalid_argument("sse_loss: size mismatch");
  LossResult r;
  r.grad = Tensor(pred.shape());
  const auto p = pred.data();
  const auto t = target.data();
  auto g = r.grad.data_mut();
  for (std::size_t k = 0; k < p.size(); ++k) {
    const Real d = p[k] - t[k];
    r.value += d * d;
    g[k] = 2 * d;
  }
  return r;
}

}  // namespace qugeo::nn
