// Learning-rate schedules. The paper trains every model with an initial lr
// of 0.1 followed by cosine annealing over 500 epochs.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace qugeo::nn {

/// Cosine annealing from `initial_lr` down to `min_lr` over `total_epochs`.
class CosineAnnealingLr {
 public:
  CosineAnnealingLr(Real initial_lr, std::size_t total_epochs, Real min_lr = 0);

  /// Learning rate at 0-based epoch `epoch` (clamped to the final value
  /// beyond total_epochs).
  [[nodiscard]] Real lr(std::size_t epoch) const noexcept;

 private:
  Real initial_lr_, min_lr_;
  std::size_t total_epochs_;
};

/// Constant schedule, for ablations.
class ConstantLr {
 public:
  explicit ConstantLr(Real lr) : lr_(lr) {}
  [[nodiscard]] Real lr(std::size_t /*epoch*/) const noexcept { return lr_; }

 private:
  Real lr_;
};

}  // namespace qugeo::nn
