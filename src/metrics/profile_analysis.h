// Vertical-velocity-profile analysis reproducing the paper's Figures 7b and
// 9b: locate layer interfaces (inflection points) along a depth profile and
// score a prediction's interface recovery and relative layer ordering.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace qugeo::metrics {

/// One detected interface: the row where velocity jumps, and the jump sign
/// (+1 velocity increases with depth, -1 decreases).
struct Interface {
  std::size_t row = 0;
  int direction = 0;
  Real jump = 0;  ///< signed velocity change across the interface
};

/// Detect interfaces as rows where |v[i+1] - v[i]| exceeds `threshold`
/// (in the same units as the profile).
[[nodiscard]] std::vector<Interface> detect_interfaces(
    std::span<const Real> profile, Real threshold);

/// Result of matching predicted interfaces against ground truth.
struct InterfaceScore {
  std::size_t total_true = 0;       ///< interfaces in the ground truth
  std::size_t matched = 0;          ///< predicted within +-tolerance rows
  std::size_t ordering_correct = 0; ///< matched AND jump sign agrees
};

/// Greedy one-to-one matching of predicted to true interfaces within a row
/// tolerance; reproduces the "correct interface prediction" counting of the
/// paper's profile discussion.
[[nodiscard]] InterfaceScore score_interfaces(
    std::span<const Interface> truth, std::span<const Interface> predicted,
    std::size_t row_tolerance);

}  // namespace qugeo::metrics
