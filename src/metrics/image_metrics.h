// Image-quality metrics used throughout the paper's evaluation: SSIM (the
// headline score), MSE, and PSNR. SSIM follows Wang et al. 2004 with the
// skimage-style uniform sliding window, shrunk automatically for the 8x8
// velocity maps.
#pragma once

#include <span>

#include "common/types.h"

namespace qugeo::metrics {

struct SsimOptions {
  std::size_t window = 7;   ///< odd window size; clamped to image dims
  Real k1 = 0.01;
  Real k2 = 0.03;
  /// Dynamic range L of the data. <= 0 means "use max(a,b) - min(a,b)".
  Real data_range = -1.0;
};

/// Mean structural similarity between two images of size rows x cols
/// (row-major). Returns a value in [-1, 1]; 1 means identical.
[[nodiscard]] Real ssim(std::span<const Real> a, std::span<const Real> b,
                        std::size_t rows, std::size_t cols,
                        const SsimOptions& options = {});

/// Mean squared error.
[[nodiscard]] Real mse(std::span<const Real> a, std::span<const Real> b);

/// Mean absolute error.
[[nodiscard]] Real mae(std::span<const Real> a, std::span<const Real> b);

/// Peak signal-to-noise ratio in dB for the given peak value.
[[nodiscard]] Real psnr(std::span<const Real> a, std::span<const Real> b,
                        Real peak);

}  // namespace qugeo::metrics
