#include "metrics/profile_analysis.h"

#include <algorithm>
#include <cmath>

namespace qugeo::metrics {

std::vector<Interface> detect_interfaces(std::span<const Real> profile,
                                         Real threshold) {
  std::vector<Interface> out;
  std::size_t last_jump_row = static_cast<std::size_t>(-2);
  for (std::size_t i = 0; i + 1 < profile.size(); ++i) {
    const Real jump = profile[i + 1] - profile[i];
    if (std::abs(jump) < threshold) continue;
    // Merge contiguous same-direction jump rows (a smeared interface ramp)
    // into a single interface placed at the steepest step.
    if (!out.empty() && last_jump_row + 1 == i &&
        ((jump > 0) == (out.back().direction > 0))) {
      if (std::abs(jump) > std::abs(out.back().jump)) {
        out.back().row = i;
        out.back().jump = jump;
      }
    } else {
      out.push_back({i, jump > 0 ? 1 : -1, jump});
    }
    last_jump_row = i;
  }
  return out;
}

InterfaceScore score_interfaces(std::span<const Interface> truth,
                                std::span<const Interface> predicted,
                                std::size_t row_tolerance) {
  InterfaceScore score;
  score.total_true = truth.size();
  std::vector<bool> used(predicted.size(), false);
  for (const Interface& t : truth) {
    std::size_t best = predicted.size();
    std::size_t best_dist = row_tolerance + 1;
    for (std::size_t j = 0; j < predicted.size(); ++j) {
      if (used[j]) continue;
      const std::size_t dist = t.row > predicted[j].row
                                   ? t.row - predicted[j].row
                                   : predicted[j].row - t.row;
      if (dist < best_dist) {
        best_dist = dist;
        best = j;
      }
    }
    if (best < predicted.size()) {
      used[best] = true;
      ++score.matched;
      if (predicted[best].direction == t.direction) ++score.ordering_correct;
    }
  }
  return score;
}

}  // namespace qugeo::metrics
