#include "metrics/image_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace qugeo::metrics {
namespace {

void check_sizes(std::span<const Real> a, std::span<const Real> b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("metrics: size mismatch or empty input");
}

}  // namespace

Real ssim(std::span<const Real> a, std::span<const Real> b, std::size_t rows,
          std::size_t cols, const SsimOptions& options) {
  check_sizes(a, b);
  if (a.size() != rows * cols)
    throw std::invalid_argument("ssim: rows*cols does not match data size");

  // Shrink the window to fit small images, keeping it odd and >= 1.
  std::size_t win = std::min({options.window, rows, cols});
  if (win % 2 == 0) --win;
  if (win == 0) win = 1;

  Real range = options.data_range;
  if (range <= 0) {
    const auto [amin, amax] = std::minmax_element(a.begin(), a.end());
    const auto [bmin, bmax] = std::minmax_element(b.begin(), b.end());
    range = std::max(*amax, *bmax) - std::min(*amin, *bmin);
    if (range <= 0) range = 1;
  }
  const Real c1 = (options.k1 * range) * (options.k1 * range);
  const Real c2 = (options.k2 * range) * (options.k2 * range);

  const std::size_t n_win = win * win;
  const Real inv_n = Real(1) / static_cast<Real>(n_win);
  // Sample (not population) statistics, matching skimage's default.
  const Real norm = n_win > 1
                        ? static_cast<Real>(n_win) / static_cast<Real>(n_win - 1)
                        : Real(1);

  Real total = 0;
  std::size_t count = 0;
  for (std::size_t r = 0; r + win <= rows; ++r) {
    for (std::size_t c = 0; c + win <= cols; ++c) {
      Real sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
      for (std::size_t i = 0; i < win; ++i) {
        const std::size_t base = (r + i) * cols + c;
        for (std::size_t j = 0; j < win; ++j) {
          const Real va = a[base + j];
          const Real vb = b[base + j];
          sa += va;
          sb += vb;
          saa += va * va;
          sbb += vb * vb;
          sab += va * vb;
        }
      }
      const Real mu_a = sa * inv_n;
      const Real mu_b = sb * inv_n;
      const Real var_a = (saa * inv_n - mu_a * mu_a) * norm;
      const Real var_b = (sbb * inv_n - mu_b * mu_b) * norm;
      const Real cov = (sab * inv_n - mu_a * mu_b) * norm;
      const Real num = (2 * mu_a * mu_b + c1) * (2 * cov + c2);
      const Real den = (mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2);
      total += num / den;
      ++count;
    }
  }
  return count == 0 ? Real(0) : total / static_cast<Real>(count);
}

Real mse(std::span<const Real> a, std::span<const Real> b) {
  check_sizes(a, b);
  Real s = 0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const Real d = a[k] - b[k];
    s += d * d;
  }
  return s / static_cast<Real>(a.size());
}

Real mae(std::span<const Real> a, std::span<const Real> b) {
  check_sizes(a, b);
  Real s = 0;
  for (std::size_t k = 0; k < a.size(); ++k) s += std::abs(a[k] - b[k]);
  return s / static_cast<Real>(a.size());
}

Real psnr(std::span<const Real> a, std::span<const Real> b, Real peak) {
  const Real m = mse(a, b);
  if (m <= 0) return std::numeric_limits<Real>::infinity();
  return 10 * std::log10(peak * peak / m);
}

}  // namespace qugeo::metrics
