// Subsurface velocity models and synthetic generators.
//
// OpenFWI's FlatVel-A family is machine-generated: 70x70 maps of flat rock
// layers with per-layer velocities in [1.5, 4.5] km/s. Because the dataset
// itself is synthetic, regenerating it from the same specification (layered
// media + the acoustic wave equation) is a faithful substitute; see
// DESIGN.md's substitution table.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace qugeo::seismic {

/// Regular 2-D grid: nz depth samples x nx horizontal samples.
struct Grid2D {
  std::size_t nz = 70;
  std::size_t nx = 70;
  Real dz = 10.0;  ///< metres
  Real dx = 10.0;  ///< metres
};

/// Velocity map c(z, x) in m/s, row-major over (z, x).
class VelocityModel {
 public:
  VelocityModel() = default;
  VelocityModel(Grid2D grid, std::vector<Real> velocity);
  /// Constant-velocity model.
  VelocityModel(Grid2D grid, Real velocity);

  [[nodiscard]] const Grid2D& grid() const noexcept { return grid_; }
  [[nodiscard]] std::size_t nz() const noexcept { return grid_.nz; }
  [[nodiscard]] std::size_t nx() const noexcept { return grid_.nx; }
  [[nodiscard]] std::span<const Real> data() const noexcept { return c_; }
  [[nodiscard]] std::span<Real> data_mut() noexcept { return c_; }

  [[nodiscard]] Real at(std::size_t iz, std::size_t ix) const {
    return c_[iz * grid_.nx + ix];
  }
  Real& at(std::size_t iz, std::size_t ix) { return c_[iz * grid_.nx + ix]; }

  [[nodiscard]] Real min_velocity() const;
  [[nodiscard]] Real max_velocity() const;

  /// Nearest-neighbour resample to a new grid size (keeps physical extent).
  [[nodiscard]] VelocityModel resampled(std::size_t new_nz, std::size_t new_nx) const;

 private:
  Grid2D grid_;
  std::vector<Real> c_;
};

/// Generator configuration matching the FlatVel-A specification.
struct FlatVelConfig {
  std::size_t nz = 70;
  std::size_t nx = 70;
  Real dz = 10.0;
  Real dx = 10.0;
  int min_layers = 2;
  int max_layers = 5;
  Real vmin = 1500.0;  ///< m/s
  Real vmax = 4500.0;  ///< m/s
  /// Probability that layer velocities are sorted ascending with depth
  /// (geologically typical compaction trend; FlatVel-A draws freely, so a
  /// fraction of samples end up unsorted).
  Real sorted_fraction = 0.6;
  /// Minimum layer thickness in grid rows.
  std::size_t min_thickness = 6;
};

/// Draw one flat-layered velocity model.
[[nodiscard]] VelocityModel generate_flatvel(const FlatVelConfig& config, Rng& rng);

/// Extension: curved (sinusoidal-interface) layered model in the spirit of
/// OpenFWI's CurveVel family; exercised by the generalized layer-wise
/// decoder discussion in Sec. 3.2.3.
struct CurveVelConfig {
  FlatVelConfig base;
  Real max_amplitude_rows = 5.0;  ///< interface undulation amplitude
  Real min_wavelength_frac = 0.5; ///< min undulation wavelength as fraction of width
};

[[nodiscard]] VelocityModel generate_curvevel(const CurveVelConfig& config, Rng& rng);

/// Row-averaged vertical velocity profile (length nz), used by the paper's
/// Figures 7b/9b interface analysis.
[[nodiscard]] std::vector<Real> vertical_profile(const VelocityModel& model,
                                                 std::size_t ix);

}  // namespace qugeo::seismic
