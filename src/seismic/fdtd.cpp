#include "seismic/fdtd.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/cpu_features.h"
#include "common/parallel.h"
#include "seismic/fdtd_simd.h"

namespace qugeo::seismic {
namespace {

/// Central-difference second-derivative coefficients (c[0] at the center).
struct Stencil {
  std::size_t halo;
  std::array<Real, 5> c;
};

Stencil stencil_for_order(int order) {
  switch (order) {
    case 2:
      return {1, {Real(-2), Real(1), 0, 0, 0}};
    case 4:
      return {2, {Real(-5.0 / 2), Real(4.0 / 3), Real(-1.0 / 12), 0, 0}};
    case 8:
      return {4,
              {Real(-205.0 / 72), Real(8.0 / 5), Real(-1.0 / 5),
               Real(8.0 / 315), Real(-1.0 / 560)}};
    default:
      throw std::invalid_argument("fdtd: space_order must be 2, 4, or 8");
  }
}

/// Compile-time view of the stencil: the inner loop bound becomes a
/// constant the compiler fully unrolls, removing the per-cell
/// `c[k] == 0` early-out test of the runtime-generic version.
template <std::size_t Halo>
std::array<Real, Halo + 1> stencil_coeffs(const Stencil& st) {
  std::array<Real, Halo + 1> c{};
  for (std::size_t k = 0; k <= Halo; ++k) c[k] = st.c[k];
  return c;
}

/// The computational grid = user model padded by the absorbing strip on
/// every absorbing side (sources and receivers stay in the interior, so
/// surface acquisition is not attenuated), plus the stencil halo of zeros.
struct Domain {
  std::size_t nz_c, nx_c;      // computational size (model + sponge pads)
  std::size_t top_pad, side_pad;
  std::size_t halo;
  std::size_t stride;          // allocated row stride (nx_c + 2*halo)

  [[nodiscard]] std::size_t cell(std::size_t iz_c, std::size_t ix_c) const {
    return (iz_c + halo) * stride + ix_c + halo;
  }
};

/// Cerjan damping factor for a pad cell at distance d (1..W) outside the
/// interior; interior cells get 1.
Real cerjan(std::size_t d, Real strength) {
  const Real a = strength * static_cast<Real>(d);
  return std::exp(-a * a);
}

template <std::size_t Halo, typename PerStepFn>
void propagate_impl(const VelocityModel& model, const GridPos& source,
                    const RickerWavelet& wavelet, const FdtdConfig& cfg,
                    const Stencil& st, PerStepFn&& per_step) {
  const std::size_t nz = model.nz(), nx = model.nx();
  const std::array<Real, Halo + 1> stc = stencil_coeffs<Halo>(st);

  Domain dom;
  dom.side_pad = cfg.sponge_width;
  dom.top_pad = cfg.free_surface_top ? 0 : cfg.sponge_width;
  dom.nz_c = nz + dom.top_pad + cfg.sponge_width;
  dom.nx_c = nx + 2 * dom.side_pad;
  dom.halo = st.halo;
  dom.stride = dom.nx_c + 2 * st.halo;

  const std::size_t cells = (dom.nz_c + 2 * st.halo) * dom.stride;
  std::vector<Real> p(cells, 0), p_prev(cells, 0), p_next(cells, 0);

  // Edge-replicated padded velocity and per-cell damping profile.
  std::vector<Real> c2(dom.nz_c * dom.nx_c);
  std::vector<Real> damp_z(dom.nz_c, Real(1)), damp_x(dom.nx_c, Real(1));
  for (std::size_t iz_c = 0; iz_c < dom.nz_c; ++iz_c) {
    const std::size_t iz =
        iz_c < dom.top_pad
            ? 0
            : (iz_c - dom.top_pad >= nz ? nz - 1 : iz_c - dom.top_pad);
    for (std::size_t ix_c = 0; ix_c < dom.nx_c; ++ix_c) {
      const std::size_t ix =
          ix_c < dom.side_pad
              ? 0
              : (ix_c - dom.side_pad >= nx ? nx - 1 : ix_c - dom.side_pad);
      const Real c = model.at(iz, ix);
      c2[iz_c * dom.nx_c + ix_c] = c * c;
    }
    if (iz_c < dom.top_pad)
      damp_z[iz_c] = cerjan(dom.top_pad - iz_c, cfg.sponge_strength);
    else if (iz_c >= dom.top_pad + nz)
      damp_z[iz_c] = cerjan(iz_c - (dom.top_pad + nz) + 1, cfg.sponge_strength);
  }
  for (std::size_t ix_c = 0; ix_c < dom.nx_c; ++ix_c) {
    if (ix_c < dom.side_pad)
      damp_x[ix_c] = cerjan(dom.side_pad - ix_c, cfg.sponge_strength);
    else if (ix_c >= dom.side_pad + nx)
      damp_x[ix_c] = cerjan(ix_c - (dom.side_pad + nx) + 1, cfg.sponge_strength);
  }

  const Real inv_dz2 = Real(1) / (model.grid().dz * model.grid().dz);
  const Real inv_dx2 = Real(1) / (model.grid().dx * model.grid().dx);
  const Real dt2 = cfg.dt * cfg.dt;
  const std::size_t src_cell =
      dom.cell(source.iz + dom.top_pad, source.ix + dom.side_pad);
  const Real src_c2 = model.at(source.iz, source.ix) * model.at(source.iz, source.ix);

  // Rows write disjoint slices of p_next (the stencil only *reads*
  // neighbouring rows of p), so the sweep is row-parallel and the result
  // is independent of the thread count. Small grids stay inline: the
  // chunk grain is sized so a worker gets at least ~64k cell updates.
  const std::size_t row_grain =
      std::max<std::size_t>(1, (std::size_t{1} << 16) / dom.nx_c);

  // SIMD dispatch is decided ONCE, on the calling thread: pool workers do
  // not inherit a caller's thread-local ScopedSimdMode override, so the
  // resolved flag is captured by value into the row lambdas.
  const bool use_avx2 =
      simd::active_level() == simd::SimdLevel::kAvx2;

  for (std::size_t step = 0; step < cfg.nt; ++step) {
    parallel_for_chunked(0, dom.nz_c, row_grain,
                         [&, use_avx2](std::size_t z0, std::size_t z1) {
      for (std::size_t iz_c = z0; iz_c < z1; ++iz_c) {
        const Real* pr = p.data() + dom.cell(iz_c, 0);
        const Real* pp = p_prev.data() + dom.cell(iz_c, 0);
        Real* pn = p_next.data() + dom.cell(iz_c, 0);
        const Real* cc = c2.data() + iz_c * dom.nx_c;
        if (use_avx2) {
          fdtd_row_avx2(Halo, stc.data(), pr, pp, pn, cc, dom.nx_c,
                        dom.stride, inv_dz2, inv_dx2, dt2);
          continue;
        }
        for (std::size_t ix_c = 0; ix_c < dom.nx_c; ++ix_c) {
          const Real* pc = pr + ix_c;  // halo makes +-k and +-k*stride safe
          Real lap = stc[0] * pc[0] * (inv_dz2 + inv_dx2);
          for (std::size_t k = 1; k <= Halo; ++k) {
            const auto kk = static_cast<std::ptrdiff_t>(k);
            const auto ks = static_cast<std::ptrdiff_t>(k * dom.stride);
            lap += stc[k] *
                   ((pc[kk] + pc[-kk]) * inv_dx2 + (pc[ks] + pc[-ks]) * inv_dz2);
          }
          pn[ix_c] = 2 * pc[0] - pp[ix_c] + cc[ix_c] * dt2 * lap;
        }
      }
    });

    p_next[src_cell] += cfg.source_amplitude *
                        wavelet(static_cast<Real>(step) * cfg.dt) * src_c2 * dt2;

    if (cfg.free_surface_top) {
      Real* top = p_next.data() + dom.cell(0, 0);
      for (std::size_t ix_c = 0; ix_c < dom.nx_c; ++ix_c) top[ix_c] = 0;
    }

    // Damp both time levels inside the sponge pads (Cerjan scheme).
    parallel_for_chunked(0, dom.nz_c, row_grain, [&](std::size_t z0, std::size_t z1) {
      for (std::size_t iz_c = z0; iz_c < z1; ++iz_c) {
        const Real wz = damp_z[iz_c];
        Real* pn = p_next.data() + dom.cell(iz_c, 0);
        Real* pr = p.data() + dom.cell(iz_c, 0);
        for (std::size_t ix_c = 0; ix_c < dom.nx_c; ++ix_c) {
          const Real w = wz * damp_x[ix_c];
          if (w != Real(1)) {
            pn[ix_c] *= w;
            pr[ix_c] *= w;
          }
        }
      }
    });

    std::swap(p_prev, p);
    std::swap(p, p_next);

    per_step(step, p, dom);
  }
}

/// Validate the configuration and dispatch to the halo-templated kernel, so
/// each supported order gets a fully unrolled inner loop.
template <typename PerStepFn>
void propagate(const VelocityModel& model, const GridPos& source,
               const RickerWavelet& wavelet, const FdtdConfig& cfg,
               PerStepFn&& per_step) {
  if (source.iz >= model.nz() || source.ix >= model.nx())
    throw std::invalid_argument("fdtd: source outside grid");
  const Stencil st = stencil_for_order(cfg.space_order);
  if (cfg.dt <= 0 || cfg.dt > max_stable_dt(model, cfg.space_order))
    throw std::invalid_argument("fdtd: dt violates the CFL stability bound");
  switch (st.halo) {
    case 1:
      propagate_impl<1>(model, source, wavelet, cfg, st,
                        std::forward<PerStepFn>(per_step));
      return;
    case 2:
      propagate_impl<2>(model, source, wavelet, cfg, st,
                        std::forward<PerStepFn>(per_step));
      return;
    case 4:
      propagate_impl<4>(model, source, wavelet, cfg, st,
                        std::forward<PerStepFn>(per_step));
      return;
    default:
      throw std::logic_error("fdtd: unsupported stencil halo");
  }
}

}  // namespace

Real max_stable_dt(const VelocityModel& model, int space_order) {
  const Stencil st = stencil_for_order(space_order);
  Real coeff_sum = std::abs(st.c[0]);
  for (std::size_t k = 1; k <= st.halo; ++k) coeff_sum += 2 * std::abs(st.c[k]);
  const Real h_min = std::min(model.grid().dz, model.grid().dx);
  const Real c_max = model.max_velocity();
  // 2-D von Neumann bound: c dt sqrt(2 * coeff_sum) / h <= 2.
  return 2 * h_min / (c_max * std::sqrt(2 * coeff_sum));
}

ShotGather simulate_shot(const VelocityModel& model, const GridPos& source,
                         const RickerWavelet& wavelet,
                         const ReceiverLine& receivers,
                         const FdtdConfig& config) {
  for (std::size_t ix : receivers.ix)
    if (receivers.iz >= model.nz() || ix >= model.nx())
      throw std::invalid_argument("fdtd: receiver outside grid");
  const std::size_t every = config.record_every == 0 ? 1 : config.record_every;
  const std::size_t nt_rec = (config.nt + every - 1) / every;
  ShotGather gather(nt_rec, receivers.count());

  propagate(model, source, wavelet, config,
            [&](std::size_t step, const std::vector<Real>& p, const auto& dom) {
              if (step % every != 0) return;
              const std::size_t t = step / every;
              for (std::size_t r = 0; r < receivers.count(); ++r)
                gather.at(t, r) = p[dom.cell(receivers.iz + dom.top_pad,
                                             receivers.ix[r] + dom.side_pad)];
            });
  return gather;
}

std::vector<std::vector<Real>> simulate_wavefield(
    const VelocityModel& model, const GridPos& source,
    const RickerWavelet& wavelet, const FdtdConfig& config,
    const std::vector<std::size_t>& snapshot_steps) {
  std::vector<std::vector<Real>> snaps;
  propagate(model, source, wavelet, config,
            [&](std::size_t step, const std::vector<Real>& p, const auto& dom) {
              for (std::size_t want : snapshot_steps) {
                if (want != step) continue;
                std::vector<Real> frame(model.nz() * model.nx());
                for (std::size_t iz = 0; iz < model.nz(); ++iz)
                  for (std::size_t ix = 0; ix < model.nx(); ++ix)
                    frame[iz * model.nx() + ix] =
                        p[dom.cell(iz + dom.top_pad, ix + dom.side_pad)];
                snaps.push_back(std::move(frame));
              }
            });
  return snaps;
}

}  // namespace qugeo::seismic
