// Source wavelets for acoustic forward modelling. The paper's QuGeoData
// lowers the Ricker peak frequency from 15 Hz to 8 Hz when re-modelling at
// the quantum-scale resolution so no physical information is aliased away.
#pragma once

#include <vector>

#include "common/types.h"

namespace qugeo::seismic {

/// Ricker (Mexican-hat) wavelet: w(t) = (1 - 2 a) exp(-a), a = (pi f (t-t0))^2.
class RickerWavelet {
 public:
  /// @param peak_freq_hz  peak frequency in Hz.
  /// @param delay_s       time shift t0; defaults to 1.5 / f so the wavelet
  ///                      starts near zero amplitude.
  explicit RickerWavelet(Real peak_freq_hz, Real delay_s = -1);

  [[nodiscard]] Real peak_freq() const noexcept { return freq_; }
  [[nodiscard]] Real delay() const noexcept { return delay_; }

  /// Amplitude at time t (seconds).
  [[nodiscard]] Real operator()(Real t) const noexcept;

  /// Sample nt points with spacing dt.
  [[nodiscard]] std::vector<Real> sample(std::size_t nt, Real dt) const;

 private:
  Real freq_;
  Real delay_;
};

}  // namespace qugeo::seismic
