#include "seismic/velocity_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qugeo::seismic {

VelocityModel::VelocityModel(Grid2D grid, std::vector<Real> velocity)
    : grid_(grid), c_(std::move(velocity)) {
  if (c_.size() != grid_.nz * grid_.nx)
    throw std::invalid_argument("VelocityModel: size mismatch");
}

VelocityModel::VelocityModel(Grid2D grid, Real velocity)
    : grid_(grid), c_(grid.nz * grid.nx, velocity) {}

Real VelocityModel::min_velocity() const {
  return *std::min_element(c_.begin(), c_.end());
}

Real VelocityModel::max_velocity() const {
  return *std::max_element(c_.begin(), c_.end());
}

VelocityModel VelocityModel::resampled(std::size_t new_nz,
                                       std::size_t new_nx) const {
  Grid2D g;
  g.nz = new_nz;
  g.nx = new_nx;
  g.dz = grid_.dz * static_cast<Real>(grid_.nz) / static_cast<Real>(new_nz);
  g.dx = grid_.dx * static_cast<Real>(grid_.nx) / static_cast<Real>(new_nx);
  std::vector<Real> out(new_nz * new_nx);
  for (std::size_t iz = 0; iz < new_nz; ++iz) {
    const auto src_z = std::min(
        grid_.nz - 1, iz * grid_.nz / new_nz + grid_.nz / (2 * new_nz));
    for (std::size_t ix = 0; ix < new_nx; ++ix) {
      const auto src_x = std::min(
          grid_.nx - 1, ix * grid_.nx / new_nx + grid_.nx / (2 * new_nx));
      out[iz * new_nx + ix] = at(src_z, src_x);
    }
  }
  return VelocityModel(g, std::move(out));
}

VelocityModel generate_flatvel(const FlatVelConfig& config, Rng& rng) {
  const std::size_t nz = config.nz, nx = config.nx;
  const int n_layers = static_cast<int>(
      rng.uniform_int(config.min_layers, config.max_layers));

  // Draw distinct interface depths with a minimum thickness constraint.
  std::vector<std::size_t> interfaces;  // first row of each new layer
  std::size_t attempts = 0;
  while (interfaces.size() + 1 < static_cast<std::size_t>(n_layers) &&
         attempts++ < 1000) {
    const auto z = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(config.min_thickness),
        static_cast<std::int64_t>(nz - config.min_thickness)));
    bool ok = true;
    for (std::size_t zi : interfaces)
      if (static_cast<std::size_t>(std::llabs(static_cast<long long>(zi) -
                                              static_cast<long long>(z))) <
          config.min_thickness)
        ok = false;
    if (ok) interfaces.push_back(z);
  }
  std::sort(interfaces.begin(), interfaces.end());

  // Per-layer velocities; a fraction of samples follow the compaction trend.
  std::vector<Real> layer_v(interfaces.size() + 1);
  for (Real& v : layer_v) v = rng.uniform(config.vmin, config.vmax);
  if (rng.bernoulli(config.sorted_fraction))
    std::sort(layer_v.begin(), layer_v.end());

  Grid2D grid{nz, nx, config.dz, config.dx};
  std::vector<Real> c(nz * nx);
  std::size_t layer = 0;
  for (std::size_t iz = 0; iz < nz; ++iz) {
    while (layer < interfaces.size() && iz >= interfaces[layer]) ++layer;
    for (std::size_t ix = 0; ix < nx; ++ix) c[iz * nx + ix] = layer_v[layer];
  }
  return VelocityModel(grid, std::move(c));
}

VelocityModel generate_curvevel(const CurveVelConfig& config, Rng& rng) {
  const auto& base = config.base;
  const std::size_t nz = base.nz, nx = base.nx;
  const int n_layers =
      static_cast<int>(rng.uniform_int(base.min_layers, base.max_layers));

  // Flat reference depths, then sinusoidal perturbation per interface.
  std::vector<Real> depths;
  for (int l = 1; l < n_layers; ++l)
    depths.push_back(rng.uniform(static_cast<Real>(base.min_thickness),
                                 static_cast<Real>(nz - base.min_thickness)));
  std::sort(depths.begin(), depths.end());

  struct Curve {
    Real depth, amp, wavelength, phase;
  };
  std::vector<Curve> curves;
  for (Real d : depths) {
    curves.push_back({d, rng.uniform(0, config.max_amplitude_rows),
                      rng.uniform(config.min_wavelength_frac, Real(2)) *
                          static_cast<Real>(nx),
                      rng.uniform(0, 2 * kPi)});
  }

  std::vector<Real> layer_v(curves.size() + 1);
  for (Real& v : layer_v) v = rng.uniform(base.vmin, base.vmax);
  if (rng.bernoulli(base.sorted_fraction))
    std::sort(layer_v.begin(), layer_v.end());

  Grid2D grid{nz, nx, base.dz, base.dx};
  std::vector<Real> c(nz * nx);
  for (std::size_t ix = 0; ix < nx; ++ix) {
    for (std::size_t iz = 0; iz < nz; ++iz) {
      std::size_t layer = 0;
      for (const Curve& cv : curves) {
        const Real boundary =
            cv.depth + cv.amp * std::sin(2 * kPi * static_cast<Real>(ix) /
                                             cv.wavelength +
                                         cv.phase);
        if (static_cast<Real>(iz) >= boundary) ++layer;
      }
      c[iz * nx + ix] = layer_v[std::min(layer, layer_v.size() - 1)];
    }
  }
  return VelocityModel(grid, std::move(c));
}

std::vector<Real> vertical_profile(const VelocityModel& model, std::size_t ix) {
  std::vector<Real> profile(model.nz());
  for (std::size_t iz = 0; iz < model.nz(); ++iz) profile[iz] = model.at(iz, ix);
  return profile;
}

}  // namespace qugeo::seismic
