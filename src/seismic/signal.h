// Trace signal processing: spectra, dominant frequency, bandpass filtering,
// and automatic gain control. Used to verify the 15 Hz -> 8 Hz wavelet
// adjustment quantitatively and as alternatives to the power-law time gain.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace qugeo::seismic {

/// Magnitude spectrum |DFT(x)| for bins 0..n/2 (naive O(n^2) DFT — traces
/// are short).
[[nodiscard]] std::vector<Real> magnitude_spectrum(std::span<const Real> trace);

/// Frequency (Hz) of the largest non-DC spectral bin.
[[nodiscard]] Real dominant_frequency(std::span<const Real> trace, Real dt);

/// Zero-phase bandpass via a windowed-sinc FIR applied forward (linear
/// convolution, edge-truncated). `taps` must be odd.
[[nodiscard]] std::vector<Real> bandpass(std::span<const Real> trace, Real dt,
                                         Real low_hz, Real high_hz,
                                         std::size_t taps = 31);

/// Automatic gain control: scale each sample by the inverse RMS of a
/// centered window (length `window`, odd), an alternative to the power-law
/// time gain of ScaleTarget.
[[nodiscard]] std::vector<Real> agc(std::span<const Real> trace,
                                    std::size_t window, Real epsilon = 1e-10);

}  // namespace qugeo::seismic
