#include "seismic/wavelet.h"

#include <cmath>
#include <stdexcept>

namespace qugeo::seismic {

RickerWavelet::RickerWavelet(Real peak_freq_hz, Real delay_s)
    : freq_(peak_freq_hz),
      delay_(delay_s < 0 ? Real(1.5) / peak_freq_hz : delay_s) {
  if (peak_freq_hz <= 0)
    throw std::invalid_argument("RickerWavelet: frequency must be positive");
}

Real RickerWavelet::operator()(Real t) const noexcept {
  const Real arg = kPi * freq_ * (t - delay_);
  const Real a = arg * arg;
  return (Real(1) - 2 * a) * std::exp(-a);
}

std::vector<Real> RickerWavelet::sample(std::size_t nt, Real dt) const {
  std::vector<Real> w(nt);
  for (std::size_t i = 0; i < nt; ++i) w[i] = (*this)(static_cast<Real>(i) * dt);
  return w;
}

}  // namespace qugeo::seismic
