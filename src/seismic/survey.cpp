#include "seismic/survey.h"

#include <stdexcept>

namespace qugeo::seismic {

ReceiverLine make_receiver_line(std::size_t nx, std::size_t count,
                                std::size_t iz) {
  if (count == 0 || count > nx)
    throw std::invalid_argument("make_receiver_line: bad receiver count");
  ReceiverLine line;
  line.iz = iz;
  line.ix.resize(count);
  for (std::size_t i = 0; i < count; ++i)
    line.ix[i] = (count == 1) ? nx / 2 : i * (nx - 1) / (count - 1);
  return line;
}

std::vector<GridPos> make_source_line(std::size_t nx, std::size_t count,
                                      std::size_t iz) {
  if (count == 0 || count > nx)
    throw std::invalid_argument("make_source_line: bad source count");
  std::vector<GridPos> sources(count);
  for (std::size_t i = 0; i < count; ++i)
    sources[i] = {iz, (count == 1) ? nx / 2 : i * (nx - 1) / (count - 1)};
  return sources;
}

ShotGather::ShotGather(std::size_t nt, std::size_t nrec)
    : nt_(nt), nrec_(nrec), data_(nt * nrec, Real(0)) {}

SeismicData::SeismicData(std::size_t nsrc, std::size_t nt, std::size_t nrec)
    : nsrc_(nsrc), nt_(nt), nrec_(nrec), data_(nsrc * nt * nrec, Real(0)) {}

void SeismicData::set_shot(std::size_t s, const ShotGather& shot) {
  if (shot.nt() != nt_ || shot.nrec() != nrec_)
    throw std::invalid_argument("SeismicData::set_shot: shape mismatch");
  std::copy(shot.data().begin(), shot.data().end(),
            data_.begin() + static_cast<std::ptrdiff_t>(s * nt_ * nrec_));
}

std::span<const Real> SeismicData::shot_span(std::size_t s) const {
  if (s >= nsrc_) throw std::out_of_range("SeismicData::shot_span");
  return std::span<const Real>(data_).subspan(s * nt_ * nrec_, nt_ * nrec_);
}

}  // namespace qugeo::seismic
