#include "seismic/signal.h"

#include <cmath>
#include <stdexcept>

namespace qugeo::seismic {

std::vector<Real> magnitude_spectrum(std::span<const Real> trace) {
  const std::size_t n = trace.size();
  if (n == 0) return {};
  std::vector<Real> mag(n / 2 + 1);
  for (std::size_t k = 0; k < mag.size(); ++k) {
    Real re = 0, im = 0;
    for (std::size_t t = 0; t < n; ++t) {
      const Real phase = -2 * kPi * static_cast<Real>(k) *
                         static_cast<Real>(t) / static_cast<Real>(n);
      re += trace[t] * std::cos(phase);
      im += trace[t] * std::sin(phase);
    }
    mag[k] = std::sqrt(re * re + im * im);
  }
  return mag;
}

Real dominant_frequency(std::span<const Real> trace, Real dt) {
  const auto mag = magnitude_spectrum(trace);
  if (mag.size() < 2) return 0;
  std::size_t best = 1;  // skip DC
  for (std::size_t k = 2; k < mag.size(); ++k)
    if (mag[k] > mag[best]) best = k;
  return static_cast<Real>(best) /
         (static_cast<Real>(trace.size()) * dt);
}

std::vector<Real> bandpass(std::span<const Real> trace, Real dt, Real low_hz,
                           Real high_hz, std::size_t taps) {
  if (taps % 2 == 0) throw std::invalid_argument("bandpass: taps must be odd");
  if (low_hz < 0 || high_hz <= low_hz)
    throw std::invalid_argument("bandpass: need 0 <= low < high");
  const Real nyquist = Real(0.5) / dt;
  if (high_hz > nyquist)
    throw std::invalid_argument("bandpass: high corner above Nyquist");

  // Windowed-sinc bandpass = highpass-cut sinc difference, Hamming window.
  const std::size_t half = taps / 2;
  std::vector<Real> h(taps);
  const Real f1 = low_hz * dt, f2 = high_hz * dt;  // normalized (cycles/sample)
  for (std::size_t i = 0; i < taps; ++i) {
    const auto m = static_cast<Real>(i) - static_cast<Real>(half);
    Real v;
    if (m == 0) {
      v = 2 * (f2 - f1);
    } else {
      v = (std::sin(2 * kPi * f2 * m) - std::sin(2 * kPi * f1 * m)) / (kPi * m);
    }
    const Real window =
        Real(0.54) - Real(0.46) * std::cos(2 * kPi * static_cast<Real>(i) /
                                           static_cast<Real>(taps - 1));
    h[i] = v * window;
  }

  std::vector<Real> out(trace.size(), Real(0));
  for (std::size_t t = 0; t < trace.size(); ++t) {
    Real acc = 0;
    for (std::size_t i = 0; i < taps; ++i) {
      const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(t) +
                                 static_cast<std::ptrdiff_t>(half) -
                                 static_cast<std::ptrdiff_t>(i);
      if (src < 0 || src >= static_cast<std::ptrdiff_t>(trace.size())) continue;
      acc += h[i] * trace[static_cast<std::size_t>(src)];
    }
    out[t] = acc;
  }
  return out;
}

std::vector<Real> agc(std::span<const Real> trace, std::size_t window,
                      Real epsilon) {
  if (window == 0 || window % 2 == 0)
    throw std::invalid_argument("agc: window must be odd and positive");
  const std::size_t half = window / 2;
  std::vector<Real> out(trace.size());
  for (std::size_t t = 0; t < trace.size(); ++t) {
    const std::size_t lo = t > half ? t - half : 0;
    const std::size_t hi = std::min(trace.size(), t + half + 1);
    Real energy = 0;
    for (std::size_t k = lo; k < hi; ++k) energy += trace[k] * trace[k];
    const Real rms = std::sqrt(energy / static_cast<Real>(hi - lo));
    out[t] = trace[t] / (rms + epsilon);
  }
  return out;
}

}  // namespace qugeo::seismic
