// Acquisition geometry: source positions, receiver arrays, and the recorded
// shot-gather container (the "seismic data" of Figure 1b).
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace qugeo::seismic {

/// Grid-indexed point position (iz = depth row, ix = horizontal column).
struct GridPos {
  std::size_t iz = 0;
  std::size_t ix = 0;
};

/// A line of receivers at fixed depth.
struct ReceiverLine {
  std::size_t iz = 0;
  std::vector<std::size_t> ix;

  [[nodiscard]] std::size_t count() const noexcept { return ix.size(); }
};

/// Evenly spread `count` receivers across [0, nx) at depth row iz.
[[nodiscard]] ReceiverLine make_receiver_line(std::size_t nx, std::size_t count,
                                              std::size_t iz = 0);

/// Evenly spread `count` surface sources across [0, nx).
[[nodiscard]] std::vector<GridPos> make_source_line(std::size_t nx,
                                                    std::size_t count,
                                                    std::size_t iz = 0);

/// Pressure traces for one shot: nt time samples x nrec receivers,
/// row-major over (t, receiver).
class ShotGather {
 public:
  ShotGather() = default;
  ShotGather(std::size_t nt, std::size_t nrec);

  [[nodiscard]] std::size_t nt() const noexcept { return nt_; }
  [[nodiscard]] std::size_t nrec() const noexcept { return nrec_; }
  [[nodiscard]] std::span<const Real> data() const noexcept { return data_; }
  [[nodiscard]] std::span<Real> data_mut() noexcept { return data_; }

  [[nodiscard]] Real at(std::size_t t, std::size_t r) const {
    return data_[t * nrec_ + r];
  }
  Real& at(std::size_t t, std::size_t r) { return data_[t * nrec_ + r]; }

 private:
  std::size_t nt_ = 0, nrec_ = 0;
  std::vector<Real> data_;
};

/// Multi-shot seismic volume: nsrc x nt x nrec, source-major (so grouping
/// per source — as the ST-Encoder requires — is a contiguous slice).
class SeismicData {
 public:
  SeismicData() = default;
  SeismicData(std::size_t nsrc, std::size_t nt, std::size_t nrec);

  [[nodiscard]] std::size_t nsrc() const noexcept { return nsrc_; }
  [[nodiscard]] std::size_t nt() const noexcept { return nt_; }
  [[nodiscard]] std::size_t nrec() const noexcept { return nrec_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::span<const Real> data() const noexcept { return data_; }
  [[nodiscard]] std::span<Real> data_mut() noexcept { return data_; }

  [[nodiscard]] Real at(std::size_t s, std::size_t t, std::size_t r) const {
    return data_[(s * nt_ + t) * nrec_ + r];
  }
  Real& at(std::size_t s, std::size_t t, std::size_t r) {
    return data_[(s * nt_ + t) * nrec_ + r];
  }

  /// Copy one shot in.
  void set_shot(std::size_t s, const ShotGather& shot);

  /// Contiguous view of one shot's samples.
  [[nodiscard]] std::span<const Real> shot_span(std::size_t s) const;

 private:
  std::size_t nsrc_ = 0, nt_ = 0, nrec_ = 0;
  std::vector<Real> data_;
};

}  // namespace qugeo::seismic
