// High-level forward-modelling drivers reproducing the two acquisition
// scales of the paper:
//   * the OpenFWI full scale — 5 sources x 1000 time steps x 70 receivers
//     over a 70x70 velocity map, 15 Hz Ricker;
//   * the quantum scale used by Q-D-FW — the velocity map downsampled to
//     8x8 and re-modelled with an 8 Hz Ricker into 4 sources x 8 time
//     samples x 8 receivers = 256 values (Sec. 3.1.1, Fig. 6).
#pragma once

#include "seismic/fdtd.h"
#include "seismic/survey.h"
#include "seismic/velocity_model.h"
#include "seismic/wavelet.h"

namespace qugeo::seismic {

/// One acquisition description: geometry + wavelet + solver settings.
struct Acquisition {
  std::size_t num_sources = 5;
  std::size_t num_receivers = 70;
  std::size_t num_time_samples = 1000;  ///< samples in the recorded gather
  Real wavelet_freq_hz = 15.0;
  FdtdConfig fdtd;
};

/// The paper's full-resolution OpenFWI acquisition.
[[nodiscard]] Acquisition openfwi_acquisition();

/// The paper's quantum-scale acquisition (256-value gathers, 8 Hz source).
[[nodiscard]] Acquisition quantum_acquisition();

/// Model all shots of an acquisition over `model`. The receivers and
/// sources are spread evenly along the surface (row 0).
[[nodiscard]] SeismicData model_shots(const VelocityModel& model,
                                      const Acquisition& acq);

/// Q-D-FW in one call: downsample the velocity map to target_nz x target_nx
/// and re-model at the quantum scale. Internally the coarse map is refined
/// (nearest-neighbour, preserving the blocky layers) onto a finer simulation
/// grid so the FD stencil stays in its accurate regime; receivers record at
/// the coarse-scale positions and traces are decimated to the requested
/// sample count.
[[nodiscard]] SeismicData physics_guided_remodel(const VelocityModel& full_model,
                                                 std::size_t target_nz,
                                                 std::size_t target_nx,
                                                 const Acquisition& acq,
                                                 std::size_t sim_refine = 8);

}  // namespace qugeo::seismic
