#include "seismic/fdtd_simd.h"

#include <stdexcept>

#ifdef QUGEO_WITH_AVX2_KERNELS

#include <immintrin.h>

namespace qugeo::seismic {
namespace {

/// Four columns per iteration; the compile-time halo fully unrolls the
/// coefficient loop, mirroring fdtd.cpp's propagate_impl<Halo>. The scalar
/// tail keeps the scalar sweep's exact expression shape.
template <std::size_t Halo>
void row_kernel(const Real* stc, const Real* pc_row, const Real* pp_row,
                Real* pn_row, const Real* cc_row, std::size_t nx,
                std::size_t stride, Real inv_dz2, Real inv_dx2, Real dt2) {
  const __m256d vdx2 = _mm256_set1_pd(inv_dx2);
  const __m256d vdz2 = _mm256_set1_pd(inv_dz2);
  const __m256d vsum = _mm256_set1_pd(inv_dz2 + inv_dx2);
  const __m256d vdt2 = _mm256_set1_pd(dt2);
  const __m256d vtwo = _mm256_set1_pd(2.0);
  std::size_t ix = 0;
  for (; ix + 4 <= nx; ix += 4) {
    const Real* pc = pc_row + ix;
    const __m256d center = _mm256_loadu_pd(pc);
    __m256d lap =
        _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(stc[0]), center), vsum);
    for (std::size_t k = 1; k <= Halo; ++k) {
      const auto kk = static_cast<std::ptrdiff_t>(k);
      const auto ks = static_cast<std::ptrdiff_t>(k * stride);
      const __m256d horiz =
          _mm256_add_pd(_mm256_loadu_pd(pc + kk), _mm256_loadu_pd(pc - kk));
      const __m256d vert =
          _mm256_add_pd(_mm256_loadu_pd(pc + ks), _mm256_loadu_pd(pc - ks));
      const __m256d term = _mm256_add_pd(_mm256_mul_pd(horiz, vdx2),
                                         _mm256_mul_pd(vert, vdz2));
      lap = _mm256_fmadd_pd(_mm256_set1_pd(stc[k]), term, lap);
    }
    const __m256d update = _mm256_add_pd(
        _mm256_sub_pd(_mm256_mul_pd(vtwo, center),
                      _mm256_loadu_pd(pp_row + ix)),
        _mm256_mul_pd(_mm256_mul_pd(_mm256_loadu_pd(cc_row + ix), vdt2), lap));
    _mm256_storeu_pd(pn_row + ix, update);
  }
  for (; ix < nx; ++ix) {
    const Real* pc = pc_row + ix;
    Real lap = stc[0] * pc[0] * (inv_dz2 + inv_dx2);
    for (std::size_t k = 1; k <= Halo; ++k) {
      const auto kk = static_cast<std::ptrdiff_t>(k);
      const auto ks = static_cast<std::ptrdiff_t>(k * stride);
      lap += stc[k] *
             ((pc[kk] + pc[-kk]) * inv_dx2 + (pc[ks] + pc[-ks]) * inv_dz2);
    }
    pn_row[ix] = 2 * pc[0] - pp_row[ix] + cc_row[ix] * dt2 * lap;
  }
}

}  // namespace

void fdtd_row_avx2(std::size_t halo, const Real* stc, const Real* pc_row,
                   const Real* pp_row, Real* pn_row, const Real* cc_row,
                   std::size_t nx, std::size_t stride, Real inv_dz2,
                   Real inv_dx2, Real dt2) {
  switch (halo) {
    case 1:
      row_kernel<1>(stc, pc_row, pp_row, pn_row, cc_row, nx, stride, inv_dz2,
                    inv_dx2, dt2);
      return;
    case 2:
      row_kernel<2>(stc, pc_row, pp_row, pn_row, cc_row, nx, stride, inv_dz2,
                    inv_dx2, dt2);
      return;
    case 4:
      row_kernel<4>(stc, pc_row, pp_row, pn_row, cc_row, nx, stride, inv_dz2,
                    inv_dx2, dt2);
      return;
    default:
      throw std::logic_error("fdtd_row_avx2: unsupported stencil halo");
  }
}

}  // namespace qugeo::seismic

#else  // !QUGEO_WITH_AVX2_KERNELS

namespace qugeo::seismic {

void fdtd_row_avx2(std::size_t, const Real*, const Real*, const Real*, Real*,
                   const Real*, std::size_t, std::size_t, Real, Real, Real) {
  // Dispatch (common/cpu_features.h) never selects kAvx2 in a build
  // without the AVX2 TUs, so reaching this stub is a programming error.
  throw std::logic_error("AVX2 kernels not compiled into this binary");
}

}  // namespace qugeo::seismic

#endif  // QUGEO_WITH_AVX2_KERNELS
