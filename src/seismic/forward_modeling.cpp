#include "seismic/forward_modeling.h"

#include <cmath>
#include <stdexcept>

#include "common/parallel.h"

namespace qugeo::seismic {

Acquisition openfwi_acquisition() {
  Acquisition acq;
  acq.num_sources = 5;
  acq.num_receivers = 70;
  acq.num_time_samples = 1000;
  acq.wavelet_freq_hz = 15.0;
  acq.fdtd.space_order = 4;
  acq.fdtd.sponge_width = 12;
  acq.fdtd.sponge_strength = 0.015;
  acq.fdtd.free_surface_top = false;
  return acq;
}

Acquisition quantum_acquisition() {
  Acquisition acq;
  acq.num_sources = 1;
  acq.num_receivers = 8;
  acq.num_time_samples = 32;
  acq.wavelet_freq_hz = 8.0;  // lowered 15 -> 8 Hz per Sec. 3.1.1 / Fig. 6
  acq.fdtd.space_order = 4;
  acq.fdtd.sponge_width = 12;
  acq.fdtd.sponge_strength = 0.015;
  acq.fdtd.free_surface_top = false;
  return acq;
}

SeismicData model_shots(const VelocityModel& model, const Acquisition& acq) {
  // The recorded window is fixed at 1 second (OpenFWI: 1000 x 1 ms). The
  // simulation step subdivides it as needed to satisfy the CFL bound.
  constexpr Real kRecordTime = 1.0;
  const Real dt_limit = Real(0.9) * max_stable_dt(model, acq.fdtd.space_order);
  std::size_t substeps = 1;
  while (kRecordTime / static_cast<Real>(acq.num_time_samples * substeps) >
         dt_limit)
    ++substeps;

  FdtdConfig cfg = acq.fdtd;
  cfg.nt = acq.num_time_samples * substeps;
  cfg.dt = kRecordTime / static_cast<Real>(cfg.nt);
  cfg.record_every = substeps;

  const RickerWavelet wavelet(acq.wavelet_freq_hz);
  const ReceiverLine receivers = make_receiver_line(model.nx(), acq.num_receivers);
  const auto sources = make_source_line(model.nx(), acq.num_sources);

  SeismicData data(acq.num_sources, acq.num_time_samples, acq.num_receivers);
  // Shots are independent wave propagations writing disjoint gathers; fan
  // them out across the pool (the per-shot FDTD row sweep then runs inline
  // on its worker).
  parallel_for(0, sources.size(), [&](std::size_t s) {
    data.set_shot(s, simulate_shot(model, sources[s], wavelet, receivers, cfg));
  });
  return data;
}

SeismicData physics_guided_remodel(const VelocityModel& full_model,
                                   std::size_t target_nz, std::size_t target_nx,
                                   const Acquisition& acq,
                                   std::size_t sim_refine) {
  if (sim_refine == 0)
    throw std::invalid_argument("physics_guided_remodel: refine must be > 0");
  // Downsample the velocity map to the quantum-scale resolution, then put it
  // back on a finer simulation grid (nearest neighbour preserves the blocky
  // layers) so the FD operator stays accurate at 8 Hz.
  const VelocityModel coarse = full_model.resampled(target_nz, target_nx);
  const VelocityModel sim_model =
      coarse.resampled(target_nz * sim_refine, target_nx * sim_refine);
  return model_shots(sim_model, acq);
}

}  // namespace qugeo::seismic
