// 2-D acoustic finite-difference time-domain solver for the constant-density
// wave equation (Eq. 1 of the paper):
//
//     d2p/dt2 = c(z,x)^2 * (laplacian(p) + s)
//
// Second-order leapfrog in time; 2nd/4th/8th-order central differences in
// space (the "2-8 FD" of the paper's forward-modelling reference); Cerjan
// sponge absorbing boundaries with an optional free surface on top.
#pragma once

#include <vector>

#include "seismic/survey.h"
#include "seismic/velocity_model.h"
#include "seismic/wavelet.h"

namespace qugeo::seismic {

struct FdtdConfig {
  Real dt = 1e-3;            ///< time step (s); see max_stable_dt
  std::size_t nt = 1000;     ///< number of simulation steps
  int space_order = 4;       ///< 2, 4, or 8
  std::size_t sponge_width = 12;
  Real sponge_strength = 0.015;
  bool free_surface_top = false;
  std::size_t record_every = 1;  ///< temporal decimation of recorded traces
  Real source_amplitude = 1.0;
};

/// Largest stable time step for the model under the given stencil order
/// (conservative CFL bound).
[[nodiscard]] Real max_stable_dt(const VelocityModel& model, int space_order);

/// Propagate one shot and record pressure at the receivers. The returned
/// gather has ceil(nt / record_every) time samples.
[[nodiscard]] ShotGather simulate_shot(const VelocityModel& model,
                                       const GridPos& source,
                                       const RickerWavelet& wavelet,
                                       const ReceiverLine& receivers,
                                       const FdtdConfig& config);

/// Propagate and return full pressure snapshots at the requested steps
/// (each snapshot is nz*nx, row-major) — used by tests to verify kinematics
/// and by the wavefield example.
[[nodiscard]] std::vector<std::vector<Real>> simulate_wavefield(
    const VelocityModel& model, const GridPos& source,
    const RickerWavelet& wavelet, const FdtdConfig& config,
    const std::vector<std::size_t>& snapshot_steps);

}  // namespace qugeo::seismic
