// AVX2/FMA variant of the FDTD stencil row sweep.
//
// Compiled in the dedicated -mavx2 -mfma translation unit fdtd_avx2.cpp;
// fdtd.cpp's propagate_impl dispatches here per row when
// simd::active_level() is kAvx2 (common/cpu_features.h). Calling it on a
// build without the AVX2 TUs is a logic error (the stub throws).
//
// Numerical contract: per cell, the same laplacian/update formulas as the
// scalar sweep, differing only by FMA contraction — matches scalar to
// <= 1e-12 relative per cell (pinned by test_seismic_fdtd's fdtd_row_avx2
// equivalence case, enforced by qugeo-lint rule 6).
#pragma once

#include <cstddef>

#include "common/types.h"

namespace qugeo::seismic {

/// One row of the order-2/4/8 acoustic update (halo = 1, 2, or 4; other
/// values throw std::logic_error):
///   pn[ix] = 2 p[ix] - pp[ix] + cc[ix] dt^2 lap(p)[ix]
/// over nx cells, four per __m256d. `stc` points at the halo+1 stencil
/// coefficients; `pc_row`/`pp_row`/`pn_row` point at the row's first
/// interior cell of the current / previous / next wavefield (the halo
/// padding makes +-k and +-k*stride reads safe); `cc_row` is the row's
/// squared-velocity slice.
void fdtd_row_avx2(std::size_t halo, const Real* stc, const Real* pc_row,
                   const Real* pp_row, Real* pn_row, const Real* cc_row,
                   std::size_t nx, std::size_t stride, Real inv_dz2,
                   Real inv_dx2, Real dt2);

}  // namespace qugeo::seismic
