// Shot-based (sampled) readout: on hardware the decoder expectations are
// estimated from a finite number of measurement shots, not read exactly
// from the state vector.
//
// Since the ShotBackend landed, the actual sampling lives in one audited
// subsystem (qsim/shots.h, wrapped by qsim::ShotBackend and selected via
// ExecutionConfig::shots); these functions are thin delegating wrappers
// kept for their convenient Rng-based signatures. They produce
// byte-identical estimates to direct ShotBackend calls for the same seed
// (pinned by test_core_shot_readout) — each call consumes one 64-bit draw
// from `rng` as the sampling seed.
#pragma once

#include <span>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"

namespace qugeo::core {

/// Empirical per-qubit <Z> from `shots` samples of psi.
[[nodiscard]] std::vector<Real> estimate_z_from_shots(
    const qsim::StateVector& psi, std::span<const Index> qubits, Rng& rng,
    std::size_t shots);

/// As estimate_z_from_shots, but against a precomputed cumulative Born
/// distribution (StateVector::cumulative_probabilities) so repeated
/// estimates on the same state skip the O(2^n) CDF rebuild.
[[nodiscard]] std::vector<Real> estimate_z_from_cdf(
    std::span<const Real> cdf, std::span<const Index> qubits, Rng& rng,
    std::size_t shots);

/// Empirical marginal distribution over `qubits` from `shots` samples.
[[nodiscard]] std::vector<Real> estimate_marginal_from_shots(
    const qsim::StateVector& psi, std::span<const Index> qubits, Rng& rng,
    std::size_t shots);

/// CDF-span variant of estimate_marginal_from_shots (see estimate_z_from_cdf).
[[nodiscard]] std::vector<Real> estimate_marginal_from_cdf(
    std::span<const Real> cdf, std::span<const Index> qubits, Rng& rng,
    std::size_t shots);

/// Predict velocity maps with a trained model using sampled readout
/// instead of exact expectations: the model's configured ExecutionConfig
/// with the shot budget and a fresh seed applied (QuGeoModel::predict_with
/// does the rest — any decoder, any QuBatch size).
[[nodiscard]] std::vector<std::vector<Real>> predict_with_shots(
    const QuGeoModel& model, std::span<const data::ScaledSample* const> samples,
    Rng& rng, std::size_t shots);

/// Evaluate SSIM/MSE of a model under a given shot budget.
[[nodiscard]] EvalMetrics evaluate_model_with_shots(
    const QuGeoModel& model, const data::ScaledDataset& ds,
    const std::vector<std::size_t>& indices, Rng& rng, std::size_t shots);

}  // namespace qugeo::core
