#include "core/serialization.h"

#include <stdexcept>

#include "common/io.h"

namespace qugeo::core {
namespace {

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

}  // namespace

std::uint64_t model_fingerprint(const ModelConfig& config) {
  std::uint64_t h = 0;
  for (Index g : config.group_data_qubits) mix(h, g);
  mix(h, config.batch_log2);
  mix(h, config.ansatz.blocks);
  mix(h, config.ansatz.entangle_every);
  mix(h, static_cast<std::uint64_t>(config.decoder));
  mix(h, config.vel_rows);
  mix(h, config.vel_cols);
  // Keep within double's exact-integer range: the fingerprint rides in the
  // float64 tensor payload.
  return h & ((std::uint64_t{1} << 52) - 1);
}

void save_model(const std::filesystem::path& path, const QuGeoModel& model) {
  const auto params = model.parameters();
  std::vector<Real> payload;
  payload.reserve(params.size() + 1);
  payload.push_back(static_cast<Real>(model_fingerprint(model.config())));
  payload.insert(payload.end(), params.begin(), params.end());
  const std::size_t shape[] = {payload.size()};
  save_tensor(path, payload, shape);
}

void load_model(const std::filesystem::path& path, QuGeoModel& model) {
  const LoadedTensor t = load_tensor(path);
  if (t.data.empty())
    throw std::runtime_error("load_model: empty checkpoint");
  const auto stored = static_cast<std::uint64_t>(t.data[0]);
  if (stored != model_fingerprint(model.config()))
    throw std::runtime_error("load_model: architecture fingerprint mismatch");
  if (t.data.size() != model.num_params() + 1)
    throw std::runtime_error("load_model: parameter count mismatch");
  model.set_parameters(std::span<const Real>(t.data).subspan(1));
}

}  // namespace qugeo::core
