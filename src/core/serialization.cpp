#include "core/serialization.h"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/io.h"

namespace qugeo::core {
namespace {

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

constexpr char kCheckpointMagic[4] = {'Q', 'G', 'C', 'K'};

// ---- little byte helpers over the framed payload ----

void put_bytes(std::vector<unsigned char>& buf, const void* data,
               std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  buf.insert(buf.end(), p, p + bytes);
}

template <typename T>
void put(std::vector<unsigned char>& buf, T value) {
  put_bytes(buf, &value, sizeof(T));
}

/// Bounds-checked reader over a checkpoint payload; overruns mean the
/// CRC-valid frame carries internally inconsistent fields (kMalformed).
class CheckpointReader {
 public:
  CheckpointReader(const std::vector<unsigned char>& bytes, std::string path)
      : bytes_(bytes), path_(std::move(path)) {}

  void read(void* out, std::size_t n) {
    if (pos_ + n > bytes_.size())
      throw CheckpointError(
          CheckpointFault::kMalformed,
          "checkpoint " + path_ + ": payload ends mid-field (offset " +
              std::to_string(pos_) + " + " + std::to_string(n) + " > " +
              std::to_string(bytes_.size()) + " bytes)");
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
  }

  template <typename T>
  T get() {
    T v;
    read(&v, sizeof(T));
    return v;
  }

  void read_reals(std::vector<Real>& out, std::size_t n) {
    out.resize(n);
    read(out.data(), n * sizeof(Real));
  }

 private:
  const std::vector<unsigned char>& bytes_;
  std::string path_;
  std::size_t pos_ = 0;
};

[[noreturn]] void rethrow_frame_error(const FrameError& e,
                                      const std::filesystem::path& path) {
  CheckpointFault fault = CheckpointFault::kMalformed;
  switch (e.kind()) {
    case FrameError::Kind::kMissing: fault = CheckpointFault::kMissing; break;
    case FrameError::Kind::kBadMagic: fault = CheckpointFault::kBadMagic; break;
    case FrameError::Kind::kTruncated:
      fault = CheckpointFault::kTruncated;
      break;
    case FrameError::Kind::kCrcMismatch:
      fault = CheckpointFault::kCrcMismatch;
      break;
  }
  throw CheckpointError(fault, "checkpoint " + path.string() + ": " + e.what());
}

}  // namespace

std::uint64_t model_fingerprint(const ModelConfig& config) {
  std::uint64_t h = 0;
  for (Index g : config.group_data_qubits) mix(h, g);
  mix(h, config.batch_log2);
  mix(h, config.ansatz.blocks);
  mix(h, config.ansatz.entangle_every);
  mix(h, static_cast<std::uint64_t>(config.decoder));
  mix(h, config.vel_rows);
  mix(h, config.vel_cols);
  // Keep within double's exact-integer range: the fingerprint rides in the
  // float64 tensor payload.
  return h & ((std::uint64_t{1} << 52) - 1);
}

std::uint64_t train_fingerprint(const TrainConfig& config) {
  std::uint64_t h = 0;
  mix(h, config.epochs);
  mix(h, std::bit_cast<std::uint64_t>(config.initial_lr));
  mix(h, config.shuffle_seed);
  mix(h, config.chunks_per_step);
  // Different shard counts group the gradient fold differently, so a
  // checkpoint resumed under another QUGEO_GRAD_SHARDS would silently
  // break bit-identity with the uninterrupted run.
  mix(h, config.grad_shards);
  return h;
}

void save_model(const std::filesystem::path& path, const QuGeoModel& model) {
  const auto params = model.parameters();
  std::vector<Real> payload;
  payload.reserve(params.size() + 1);
  payload.push_back(static_cast<Real>(model_fingerprint(model.config())));
  payload.insert(payload.end(), params.begin(), params.end());
  const std::size_t shape[] = {payload.size()};
  save_tensor(path, payload, shape);
}

void load_model(const std::filesystem::path& path, QuGeoModel& model) {
  const LoadedTensor t = load_tensor(path);
  if (t.data.empty())
    throw std::runtime_error("load_model: " + path.string() +
                             ": checkpoint holds no data");
  const auto stored = static_cast<std::uint64_t>(t.data[0]);
  const std::uint64_t expected = model_fingerprint(model.config());
  if (stored != expected)
    throw std::runtime_error(
        "load_model: " + path.string() +
        ": architecture fingerprint mismatch (stored " +
        std::to_string(stored) + ", model expects " + std::to_string(expected) +
        ") — the file was saved from a differently configured model");
  if (t.data.size() != model.num_params() + 1)
    throw std::runtime_error(
        "load_model: " + path.string() + ": parameter count mismatch (stored " +
        std::to_string(t.data.size() - 1) + ", model expects " +
        std::to_string(model.num_params()) + ")");
  model.set_parameters(std::span<const Real>(t.data).subspan(1));
}

// ------------------------------------------------- training checkpoints --

const char* checkpoint_fault_name(CheckpointFault fault) noexcept {
  switch (fault) {
    case CheckpointFault::kMissing: return "missing";
    case CheckpointFault::kBadMagic: return "bad-magic";
    case CheckpointFault::kTruncated: return "truncated";
    case CheckpointFault::kCrcMismatch: return "crc-mismatch";
    case CheckpointFault::kBadVersion: return "bad-version";
    case CheckpointFault::kMalformed: return "malformed";
    case CheckpointFault::kFingerprintMismatch: return "fingerprint-mismatch";
    case CheckpointFault::kConfigMismatch: return "config-mismatch";
  }
  return "?";
}

std::filesystem::path checkpoint_slot_path(const std::filesystem::path& stem,
                                           std::size_t slot) {
  return std::filesystem::path(stem.string() + "." + std::to_string(slot));
}

void save_train_checkpoint(const std::filesystem::path& path,
                           const TrainCheckpoint& ck) {
  if (ck.adam_m.size() != ck.params.size() ||
      ck.adam_v.size() != ck.params.size())
    throw std::invalid_argument(
        "save_train_checkpoint: Adam moment sizes must match the parameter "
        "count");
  if (ck.curve.size() != ck.epochs_completed)
    throw std::invalid_argument(
        "save_train_checkpoint: curve holds " +
        std::to_string(ck.curve.size()) + " records for " +
        std::to_string(ck.epochs_completed) + " completed epochs");

  std::vector<unsigned char> body;
  body.reserve(64 + 3 * ck.params.size() * sizeof(Real) +
               3 * ck.curve.size() * sizeof(Real));
  put_bytes(body, kCheckpointMagic, sizeof(kCheckpointMagic));
  put<std::uint32_t>(body, TrainCheckpoint::kVersion);
  put<std::uint64_t>(body, ck.model_fp);
  put<std::uint64_t>(body, ck.train_fp);
  put<std::uint64_t>(body, ck.epochs_completed);
  put<std::uint64_t>(body, ck.adam_t);
  for (const std::uint64_t s : ck.shuffle_rng.s) put<std::uint64_t>(body, s);
  put<std::uint8_t>(body, ck.shuffle_rng.has_cached_normal ? 1 : 0);
  put<Real>(body, ck.shuffle_rng.cached_normal);
  put<std::uint64_t>(body, ck.params.size());
  put_bytes(body, ck.params.data(), ck.params.size() * sizeof(Real));
  put_bytes(body, ck.adam_m.data(), ck.adam_m.size() * sizeof(Real));
  put_bytes(body, ck.adam_v.data(), ck.adam_v.size() * sizeof(Real));
  put<std::uint64_t>(body, ck.curve.size());
  for (const EpochRecord& r : ck.curve) {
    put<Real>(body, r.train_loss);
    put<Real>(body, r.test_ssim);
    put<Real>(body, r.test_mse);
  }
  write_framed_file(path, TrainCheckpoint::kVersion, body);
}

TrainCheckpoint load_train_checkpoint(const std::filesystem::path& path) {
  fault::site("checkpoint.read");
  FramedPayload frame;
  try {
    frame = read_framed_file(path);
  } catch (const FrameError& e) {
    rethrow_frame_error(e, path);
  }

  CheckpointReader r(frame.payload, path.string());
  char magic[4];
  r.read(magic, sizeof(magic));
  if (std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0)
    throw CheckpointError(CheckpointFault::kBadMagic,
                          "checkpoint " + path.string() +
                              ": framed payload is not a training checkpoint "
                              "(bad inner magic)");
  const auto version = r.get<std::uint32_t>();
  if (version != TrainCheckpoint::kVersion)
    throw CheckpointError(
        CheckpointFault::kBadVersion,
        "checkpoint " + path.string() + ": format version " +
            std::to_string(version) + " is not the supported version " +
            std::to_string(TrainCheckpoint::kVersion));

  TrainCheckpoint ck;
  ck.model_fp = r.get<std::uint64_t>();
  ck.train_fp = r.get<std::uint64_t>();
  ck.epochs_completed = r.get<std::uint64_t>();
  ck.adam_t = r.get<std::uint64_t>();
  for (std::uint64_t& s : ck.shuffle_rng.s) s = r.get<std::uint64_t>();
  ck.shuffle_rng.has_cached_normal = r.get<std::uint8_t>() != 0;
  ck.shuffle_rng.cached_normal = r.get<Real>();
  const auto n_params = static_cast<std::size_t>(r.get<std::uint64_t>());
  r.read_reals(ck.params, n_params);
  r.read_reals(ck.adam_m, n_params);
  r.read_reals(ck.adam_v, n_params);
  const auto n_curve = static_cast<std::size_t>(r.get<std::uint64_t>());
  if (n_curve != ck.epochs_completed)
    throw CheckpointError(
        CheckpointFault::kMalformed,
        "checkpoint " + path.string() + ": curve holds " +
            std::to_string(n_curve) + " records for " +
            std::to_string(ck.epochs_completed) + " completed epochs");
  ck.curve.resize(n_curve);
  for (EpochRecord& rec : ck.curve) {
    rec.train_loss = r.get<Real>();
    rec.test_ssim = r.get<Real>();
    rec.test_mse = r.get<Real>();
  }
  return ck;
}

std::optional<TrainCheckpoint> find_resume_checkpoint(
    const std::filesystem::path& stem, std::size_t keep,
    std::uint64_t expected_model_fp, std::uint64_t expected_train_fp) {
  if (keep == 0) keep = 1;
  std::optional<TrainCheckpoint> best;
  for (std::size_t slot = 0; slot < keep; ++slot) {
    const std::filesystem::path path = checkpoint_slot_path(stem, slot);
    if (!std::filesystem::exists(path)) continue;
    try {
      TrainCheckpoint ck = load_train_checkpoint(path);
      if (ck.model_fp != expected_model_fp)
        throw CheckpointError(
            CheckpointFault::kFingerprintMismatch,
            "checkpoint " + path.string() +
                ": architecture fingerprint mismatch (stored " +
                std::to_string(ck.model_fp) + ", model expects " +
                std::to_string(expected_model_fp) + ")");
      if (ck.train_fp != expected_train_fp)
        throw CheckpointError(
            CheckpointFault::kConfigMismatch,
            "checkpoint " + path.string() +
                ": training-config fingerprint mismatch (stored " +
                std::to_string(ck.train_fp) + ", run expects " +
                std::to_string(expected_train_fp) +
                ") — epochs/lr/seed/accumulation differ");
      if (!best || ck.epochs_completed > best->epochs_completed)
        best = std::move(ck);
    } catch (const CheckpointError& e) {
      fault::report_degradation(
          "checkpoint", std::string("skipping slot ") + path.string() + " [" +
                            checkpoint_fault_name(e.fault()) + "]: " + e.what());
    } catch (const TransientError& e) {
      // An injected/transient read fault degrades like a bad slot: resume
      // continues from the next-best candidate instead of dying.
      fault::report_degradation("checkpoint",
                                std::string("skipping slot ") + path.string() +
                                    " [transient]: " + e.what());
    }
  }
  return best;
}

}  // namespace qugeo::core
