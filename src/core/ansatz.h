// QuGeoVQC ansatz construction (Sec. 3.2.2).
//
// The computing structure follows ST-VQC: an independent sub-VQC per
// encoder group, with multi-qubit gates gradually communicating between
// groups. Each block is the TorchQuantum 'U3+CU3' primitive — a U3 on
// every qubit followed by a CU3 ring — so a single-group 8-qubit, 12-block
// ansatz carries 12 * 8 * (3 + 3) = 576 trainable parameters, matching the
// paper's headline model.
#pragma once

#include "core/layout.h"
#include "qsim/circuit.h"

namespace qugeo::core {

struct AnsatzConfig {
  std::size_t blocks = 12;
  /// Insert inter-group entangling CU3 gates after every k-th block
  /// (ignored for single-group layouts). 0 disables cross-group gates.
  std::size_t entangle_every = 3;
};

/// Build the ansatz on the layout's data qubits (batch qubits are left
/// untouched — that identity is exactly the U(theta) (x) I structure that
/// makes QuBatch free, Sec. 3.3.1). All angles are trainable parameters.
[[nodiscard]] qsim::Circuit build_qugeo_ansatz(const QubitLayout& layout,
                                               const AnsatzConfig& config);

/// Number of parameters build_qugeo_ansatz will allocate for this shape.
[[nodiscard]] std::size_t ansatz_param_count(const QubitLayout& layout,
                                             const AnsatzConfig& config);

}  // namespace qugeo::core
