#include "core/experiment.h"

#include <stdexcept>

namespace qugeo::core {

std::string vqc_model_name(DecoderKind kind) {
  return kind == DecoderKind::kPixel ? "Q-M-PX" : "Q-M-LY";
}

const data::ScaledDataset& select_dataset(const data::ExperimentData& data,
                                          const std::string& name) {
  if (name == "D-Sample") return data.dsample;
  if (name == "Q-D-FW") return data.qdfw;
  if (name == "Q-D-CNN") return data.qdcnn;
  throw std::invalid_argument("select_dataset: unknown dataset " + name);
}

ExperimentResult run_vqc_experiment(const data::ExperimentData& data,
                                    const ExperimentSpec& spec,
                                    const TrainConfig& train_cfg) {
  const data::ScaledDataset& ds = select_dataset(data, spec.dataset);

  ModelConfig mc;
  mc.group_data_qubits = spec.group_data_qubits;
  mc.batch_log2 = spec.batch_log2;
  mc.ansatz.blocks = spec.blocks;
  mc.ansatz.entangle_every = spec.entangle_every;
  mc.decoder = spec.decoder;
  mc.vel_rows = ds.vel_rows;
  mc.vel_cols = ds.vel_cols;
  mc.execution = spec.execution;

  Rng init_rng(spec.init_seed);
  QuGeoModel model(mc, init_rng);

  ExperimentResult result;
  result.model_name = vqc_model_name(spec.decoder);
  result.dataset_name = spec.dataset;
  result.param_count = model.num_quantum_params();
  result.train = train_model(model, ds, data.split(), train_cfg);
  return result;
}

ExperimentResult run_classical_experiment(const data::ExperimentData& data,
                                          const std::string& dataset,
                                          DecoderKind decoder,
                                          const TrainConfig& train_cfg,
                                          std::uint64_t init_seed,
                                          bool inversion_net_reference) {
  const data::ScaledDataset& ds = select_dataset(data, dataset);

  ClassicalConfig cc;
  cc.decoder = decoder;
  cc.nsrc = ds.nsrc;
  cc.nt = ds.nt;
  cc.nrec = ds.nrec;
  cc.vel_rows = ds.vel_rows;
  cc.vel_cols = ds.vel_cols;
  cc.inversion_net_reference = inversion_net_reference;

  Rng rng(init_seed);
  ClassicalFwiNet net(cc, rng);

  ExperimentResult result;
  result.model_name = inversion_net_reference
                          ? "INet-ref"
                          : (decoder == DecoderKind::kPixel ? "CNN-PX" : "CNN-LY");
  result.dataset_name = dataset;
  result.param_count = net.param_count();
  result.train = net.train(ds, data.split(), train_cfg);
  return result;
}

}  // namespace qugeo::core
