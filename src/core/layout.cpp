#include "core/layout.h"

#include <stdexcept>

namespace qugeo::core {

QubitLayout::QubitLayout(std::vector<Index> group_data_qubits, Index batch_log2)
    : batch_log2_(batch_log2) {
  if (group_data_qubits.empty())
    throw std::invalid_argument("QubitLayout: need at least one group");
  Index offset = 0;
  for (Index dq : group_data_qubits) {
    if (dq == 0) throw std::invalid_argument("QubitLayout: empty group");
    GroupRegister reg;
    reg.offset = offset;
    reg.data_qubits = dq;
    reg.batch_qubits = batch_log2;
    groups_.push_back(reg);
    for (Index q = 0; q < dq; ++q) data_qubit_list_.push_back(offset + q);
    offset += reg.width();
    sample_size_ += reg.data_dim();
  }
  total_qubits_ = offset;
}

Index QubitLayout::block_of(Index k) const noexcept {
  if (batch_log2_ == 0) return 0;
  const Index mask = (Index{1} << batch_log2_) - 1;
  Index block = kInvalidBlock;
  for (const GroupRegister& reg : groups_) {
    const Index b = (k >> (reg.offset + reg.data_qubits)) & mask;
    if (block == kInvalidBlock) {
      block = b;
    } else if (block != b) {
      return kInvalidBlock;
    }
  }
  return block;
}

}  // namespace qugeo::core
