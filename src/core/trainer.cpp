#include "core/trainer.h"

#include <cmath>
#include <cstdlib>
#include <string>

#include "common/env.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "core/serialization.h"
#include "metrics/image_metrics.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"

namespace qugeo::core {

TrainConfig apply_train_env_overrides(TrainConfig base) {
  if (const char* path = std::getenv("QUGEO_CHECKPOINT")) {
    if (*path != '\0') {
      base.checkpoint_path = path;
      if (base.checkpoint_every == 0) base.checkpoint_every = 1;
    }
  }
  base.checkpoint_every =
      env::parse_env_positive("QUGEO_CHECKPOINT_EVERY", base.checkpoint_every);
  base.grad_shards = env::parse_env_size_t("QUGEO_GRAD_SHARDS", base.grad_shards);
  return base;
}

EvalMetrics evaluate_predictions(const std::vector<std::vector<Real>>& preds,
                                 const data::ScaledDataset& ds,
                                 const std::vector<std::size_t>& indices) {
  EvalMetrics m;
  if (indices.empty()) return m;
  metrics::SsimOptions ssim_opts;
  ssim_opts.data_range = 1.0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::vector<Real>& target = ds.samples[indices[i]].velocity;
    m.ssim += metrics::ssim(preds[i], target, ds.vel_rows, ds.vel_cols, ssim_opts);
    m.mse += metrics::mse(preds[i], target);
  }
  m.ssim /= static_cast<Real>(indices.size());
  m.mse /= static_cast<Real>(indices.size());
  return m;
}

EvalMetrics evaluate_model(const QuGeoModel& model, const data::ScaledDataset& ds,
                           const std::vector<std::size_t>& indices) {
  std::vector<const data::ScaledSample*> samples;
  samples.reserve(indices.size());
  for (std::size_t i : indices) samples.push_back(&ds.samples[i]);
  return evaluate_predictions(model.predict(samples), ds, indices);
}

TrainResult train_model(QuGeoModel& model, const data::ScaledDataset& ds,
                        const data::SplitView& split,
                        const TrainConfig& config_in) {
  const TrainConfig config = apply_train_env_overrides(config_in);
  TrainResult result;
  std::vector<Real> params = model.parameters();
  nn::AdamFlat opt(params.size());
  const nn::CosineAnnealingLr schedule(config.initial_lr, config.epochs);
  Rng shuffle_rng(config.shuffle_seed);
  const std::size_t bs = model.batch_size();

  const bool ckpt_on =
      !config.checkpoint_path.empty() && config.checkpoint_every > 0;
  const std::uint64_t model_fp = model_fingerprint(model.config());
  const std::uint64_t train_fp = train_fingerprint(config);
  const std::size_t keep = std::max<std::size_t>(1, config.checkpoint_keep);

  std::size_t start_epoch = 0;
  if (ckpt_on && config.resume) {
    if (auto ck = find_resume_checkpoint(config.checkpoint_path, keep,
                                         model_fp, train_fp)) {
      params = std::move(ck->params);
      model.set_parameters(params);
      opt.restore({ck->adam_t, std::move(ck->adam_m), std::move(ck->adam_v)});
      shuffle_rng.set_state(ck->shuffle_rng);
      result.curve = std::move(ck->curve);
      start_epoch = static_cast<std::size_t>(ck->epochs_completed);
      result.resumed_from_epoch = start_epoch;
      log_info("train_model: resumed from checkpoint at epoch ", start_epoch,
               "/", config.epochs);
    }
  }

  // A checkpoint captures the state *between* epochs: the shuffle-RNG
  // state recorded here has already consumed this epoch's permutation
  // draw, so a resumed run replays exactly the sequence an uninterrupted
  // run would have produced.
  const auto write_checkpoint = [&](std::size_t epochs_completed) {
    TrainCheckpoint ck;
    ck.model_fp = model_fp;
    ck.train_fp = train_fp;
    ck.epochs_completed = epochs_completed;
    ck.shuffle_rng = shuffle_rng.state();
    nn::AdamFlat::State opt_state = opt.state();
    ck.adam_t = opt_state.t;
    ck.adam_m = std::move(opt_state.m);
    ck.adam_v = std::move(opt_state.v);
    ck.params = params;
    ck.curve = result.curve;
    // Slot index depends only on the completed-epoch count, so a resumed
    // run rotates through the same files as an uninterrupted one.
    const std::size_t slot =
        (epochs_completed / config.checkpoint_every) % keep;
    const std::filesystem::path path =
        checkpoint_slot_path(config.checkpoint_path, slot);
    fault::retry_on_transient(
        "checkpoint write to " + path.string(), fault::RetryPolicy{},
        [&] { save_train_checkpoint(path, ck); });
  };

  std::vector<Real> grads(params.size());
  for (std::size_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
    fault::site("trainer.epoch");
    const auto order = shuffle_rng.permutation(split.train.size());
    Real epoch_loss = 0;
    std::size_t seen = 0;
    const std::size_t total_chunks = (order.size() + bs - 1) / bs;
    // Chunks inside one accumulation group all see the same parameters, so
    // they are independent circuit executions: shard them data-parallel
    // over the pool into a FIXED number of gradient slots — shard s owns a
    // contiguous chunk range and accumulates it sequentially into its own
    // slot — then fold the slots in shard order. The partition and both
    // fold orders depend only on the configuration, never on the pool
    // size, so training is bit-identical for any QUGEO_THREADS value; the
    // default (grad_shards == 0, one slot per chunk) reproduces the
    // pre-sharding per-chunk fold exactly, while a positive shard count
    // caps gradient-buffer memory at shards * num_params.
    std::size_t group_start = 0;
    while (group_start < total_chunks) {
      const std::size_t remaining = total_chunks - group_start;
      const std::size_t group =
          config.chunks_per_step == 0 ? remaining
                                      : std::min(config.chunks_per_step, remaining);
      const std::size_t shards =
          config.grad_shards == 0 ? group
                                  : std::min(config.grad_shards, group);
      const std::size_t per_shard = group / shards;
      const std::size_t extra = group % shards;  // first `extra` shards get +1
      std::vector<std::vector<Real>> shard_grads(shards);
      std::vector<Real> chunk_loss(group, Real(0));
      parallel_for(0, shards, [&](std::size_t s) {
        const std::size_t begin = s * per_shard + std::min(s, extra);
        const std::size_t end = begin + per_shard + (s < extra ? 1 : 0);
        shard_grads[s].assign(params.size(), Real(0));
        std::vector<const data::ScaledSample*> chunk(bs);
        for (std::size_t g = begin; g < end; ++g) {
          const std::size_t pos = (group_start + g) * bs;
          for (std::size_t b = 0; b < bs; ++b) {
            const std::size_t oi = std::min(pos + b, order.size() - 1);
            chunk[b] = &ds.samples[split.train[order[oi]]];
          }
          chunk_loss[g] = model.loss_and_gradient(chunk, shard_grads[s]);
        }
      });
      std::fill(grads.begin(), grads.end(), Real(0));
      for (std::size_t s = 0; s < shards; ++s)
        for (std::size_t k = 0; k < grads.size(); ++k)
          grads[k] += shard_grads[s][k];
      // The loss stays a per-chunk fold (scalar, cheap), so epoch curves
      // are bit-identical across shard counts too.
      for (std::size_t g = 0; g < group; ++g) epoch_loss += chunk_loss[g];
      seen += group * bs;
      // Mean gradient over the accumulated samples.
      const Real inv = Real(1) / static_cast<Real>(group * bs);
      for (Real& g : grads) g *= inv;
      opt.step(params, grads, schedule.lr(epoch));
      model.set_parameters(params);
      group_start += group;
    }

    EpochRecord rec;
    rec.train_loss = epoch_loss / static_cast<Real>(seen == 0 ? 1 : seen);
    const EvalMetrics ev = evaluate_model(model, ds, split.test);
    rec.test_ssim = ev.ssim;
    rec.test_mse = ev.mse;
    result.curve.push_back(rec);
    if (config.log_every != 0 && (epoch + 1) % config.log_every == 0)
      log_info("train_model: epoch ", epoch + 1, "/", config.epochs,
               " loss=", rec.train_loss, " ssim=", rec.test_ssim,
               " mse=", rec.test_mse);

    const std::size_t completed = epoch + 1;
    if (ckpt_on && (completed % config.checkpoint_every == 0 ||
                    completed == config.epochs))
      write_checkpoint(completed);
  }

  if (!result.curve.empty()) {
    result.final_ssim = result.curve.back().test_ssim;
    result.final_mse = result.curve.back().test_mse;
  }
  return result;
}

}  // namespace qugeo::core
