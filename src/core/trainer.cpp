#include "core/trainer.h"

#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"
#include "metrics/image_metrics.h"
#include "nn/schedule.h"

namespace qugeo::core {
namespace {

/// Adam over a flat parameter vector (the VQC angle table + decoder scale).
class AdamVec {
 public:
  explicit AdamVec(std::size_t n) : m_(n, 0), v_(n, 0) {}

  void step(std::span<Real> params, std::span<const Real> grads, Real lr) {
    ++t_;
    const Real bc1 = Real(1) - std::pow(Real(0.9), static_cast<Real>(t_));
    const Real bc2 = Real(1) - std::pow(Real(0.999), static_cast<Real>(t_));
    for (std::size_t k = 0; k < params.size(); ++k) {
      m_[k] = Real(0.9) * m_[k] + Real(0.1) * grads[k];
      v_[k] = Real(0.999) * v_[k] + Real(0.001) * grads[k] * grads[k];
      params[k] -= lr * (m_[k] / bc1) / (std::sqrt(v_[k] / bc2) + Real(1e-8));
    }
  }

 private:
  std::size_t t_ = 0;
  std::vector<Real> m_, v_;
};

}  // namespace

EvalMetrics evaluate_predictions(const std::vector<std::vector<Real>>& preds,
                                 const data::ScaledDataset& ds,
                                 const std::vector<std::size_t>& indices) {
  EvalMetrics m;
  if (indices.empty()) return m;
  metrics::SsimOptions ssim_opts;
  ssim_opts.data_range = 1.0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::vector<Real>& target = ds.samples[indices[i]].velocity;
    m.ssim += metrics::ssim(preds[i], target, ds.vel_rows, ds.vel_cols, ssim_opts);
    m.mse += metrics::mse(preds[i], target);
  }
  m.ssim /= static_cast<Real>(indices.size());
  m.mse /= static_cast<Real>(indices.size());
  return m;
}

EvalMetrics evaluate_model(const QuGeoModel& model, const data::ScaledDataset& ds,
                           const std::vector<std::size_t>& indices) {
  std::vector<const data::ScaledSample*> samples;
  samples.reserve(indices.size());
  for (std::size_t i : indices) samples.push_back(&ds.samples[i]);
  return evaluate_predictions(model.predict(samples), ds, indices);
}

TrainResult train_model(QuGeoModel& model, const data::ScaledDataset& ds,
                        const data::SplitView& split, const TrainConfig& config) {
  TrainResult result;
  std::vector<Real> params = model.parameters();
  AdamVec opt(params.size());
  const nn::CosineAnnealingLr schedule(config.initial_lr, config.epochs);
  Rng shuffle_rng(config.shuffle_seed);
  const std::size_t bs = model.batch_size();

  std::vector<Real> grads(params.size());
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto order = shuffle_rng.permutation(split.train.size());
    Real epoch_loss = 0;
    std::size_t seen = 0;
    const std::size_t total_chunks = (order.size() + bs - 1) / bs;
    // Chunks inside one accumulation group all see the same parameters, so
    // they are independent circuit executions: fan them out across the
    // pool into per-chunk gradient buffers, then fold the buffers in fixed
    // chunk order. The fold reproduces the sequential accumulation order
    // exactly, so training is bit-identical for any QUGEO_THREADS value.
    std::size_t group_start = 0;
    while (group_start < total_chunks) {
      const std::size_t remaining = total_chunks - group_start;
      const std::size_t group =
          config.chunks_per_step == 0 ? remaining
                                      : std::min(config.chunks_per_step, remaining);
      std::vector<std::vector<Real>> chunk_grads(group);
      std::vector<Real> chunk_loss(group, Real(0));
      parallel_for(0, group, [&](std::size_t g) {
        const std::size_t pos = (group_start + g) * bs;
        std::vector<const data::ScaledSample*> chunk(bs);
        for (std::size_t b = 0; b < bs; ++b) {
          const std::size_t oi = std::min(pos + b, order.size() - 1);
          chunk[b] = &ds.samples[split.train[order[oi]]];
        }
        chunk_grads[g].assign(params.size(), Real(0));
        chunk_loss[g] = model.loss_and_gradient(chunk, chunk_grads[g]);
      });
      std::fill(grads.begin(), grads.end(), Real(0));
      for (std::size_t g = 0; g < group; ++g) {
        for (std::size_t k = 0; k < grads.size(); ++k) grads[k] += chunk_grads[g][k];
        epoch_loss += chunk_loss[g];
      }
      seen += group * bs;
      // Mean gradient over the accumulated samples.
      const Real inv = Real(1) / static_cast<Real>(group * bs);
      for (Real& g : grads) g *= inv;
      opt.step(params, grads, schedule.lr(epoch));
      model.set_parameters(params);
      group_start += group;
    }

    EpochRecord rec;
    rec.train_loss = epoch_loss / static_cast<Real>(seen == 0 ? 1 : seen);
    const EvalMetrics ev = evaluate_model(model, ds, split.test);
    rec.test_ssim = ev.ssim;
    rec.test_mse = ev.mse;
    result.curve.push_back(rec);
    if (config.log_every != 0 && (epoch + 1) % config.log_every == 0)
      log_info("train_model: epoch ", epoch + 1, "/", config.epochs,
               " loss=", rec.train_loss, " ssim=", rec.test_ssim,
               " mse=", rec.test_mse);
  }

  if (!result.curve.empty()) {
    result.final_ssim = result.curve.back().test_ssim;
    result.final_mse = result.curve.back().test_mse;
  }
  return result;
}

}  // namespace qugeo::core
