// Velocity-map decoders (Sec. 3.2.3) with QuBatch-aware conditional readout
// and analytic gradients.
//
//  * PixelDecoder ("Q-M-PX"): reads the conditional marginal distribution of
//    log2(rows*cols) data qubits inside each batch block; the predicted
//    velocity at pixel k is scale * sqrt(P(k)) — the "magnitude of the
//    amplitude" readout of the paper, with one trainable classical scale
//    because probabilities are sum-constrained while velocities are not.
//  * LayerDecoder ("Q-M-LY"): reads <Z> of one data qubit per velocity-map
//    row inside each block and maps it to (1 + <Z>)/2 in [0, 1]; the row
//    value is broadcast across columns (flat-layer prior, Eq. 3).
//
// Both decoders expose the same interface: predictions per batch block, and
// a backward step that converts dL/d(prediction) into dL/dp over the full
// probability vector (which observables.h turns into a state cotangent).
//
// Decoders are backend-agnostic: the primary entry point is
// decode(std::span<const Real> probabilities), which consumes any
// simulation backend's Born distribution (statevector, exact density
// matrix, or trajectory average — see qsim/backend.h). The
// decode(StateVector) overload is a convenience wrapper for the
// statevector training path.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/layout.h"
#include "qsim/statevector.h"

namespace qugeo::core {

enum class DecoderKind { kPixel, kLayer };

/// Forward readout cache handed back to backward().
struct DecodeResult {
  /// predictions[b] is the flattened rows x cols velocity map of block b.
  std::vector<std::vector<Real>> predictions;
  /// Block probabilities P(all batch registers agree on b).
  std::vector<Real> block_prob;
  /// Full Born distribution |psi_k|^2 (kept for backward).
  std::vector<Real> probs;
  /// Decoder-specific intermediates.
  std::vector<std::vector<Real>> aux;
};

class Decoder {
 public:
  virtual ~Decoder() = default;

  /// Decode a full Born distribution (length 2^n) from any backend.
  [[nodiscard]] virtual DecodeResult decode(
      std::span<const Real> probabilities) const = 0;

  /// Convenience overload for the exact pure-state path.
  [[nodiscard]] DecodeResult decode(const qsim::StateVector& psi) const {
    return decode(std::span<const Real>(psi.probabilities()));
  }

  /// Map dL/d(prediction) (one vector per block, shapes as in decode()) to
  /// dL/dp over the full 2^n probability vector.
  [[nodiscard]] virtual std::vector<Real> probability_grads(
      const DecodeResult& fwd,
      std::span<const std::vector<Real>> pred_grads) const = 0;

  [[nodiscard]] virtual DecoderKind kind() const = 0;

  /// Trainable classical parameters of the decoder (PX: the output scale).
  [[nodiscard]] virtual std::size_t num_classical_params() const { return 0; }
  [[nodiscard]] virtual Real classical_param(std::size_t) const { return 0; }
  virtual void set_classical_param(std::size_t, Real) {}
  /// dL/d(classical param), computed alongside probability_grads.
  [[nodiscard]] virtual std::vector<Real> classical_grads(
      const DecodeResult& fwd,
      std::span<const std::vector<Real>> pred_grads) const {
    (void)fwd;
    (void)pred_grads;
    return {};
  }
};

class PixelDecoder final : public Decoder {
 public:
  /// @param readout_qubits exactly log2(rows*cols) data qubits.
  PixelDecoder(const QubitLayout& layout, std::vector<Index> readout_qubits,
               std::size_t rows, std::size_t cols, Real initial_scale = 4.0);

  using Decoder::decode;
  [[nodiscard]] DecodeResult decode(
      std::span<const Real> probabilities) const override;
  [[nodiscard]] std::vector<Real> probability_grads(
      const DecodeResult& fwd,
      std::span<const std::vector<Real>> pred_grads) const override;
  [[nodiscard]] DecoderKind kind() const override { return DecoderKind::kPixel; }

  [[nodiscard]] std::size_t num_classical_params() const override { return 1; }
  [[nodiscard]] Real classical_param(std::size_t) const override { return scale_; }
  void set_classical_param(std::size_t, Real v) override { scale_ = v; }
  [[nodiscard]] std::vector<Real> classical_grads(
      const DecodeResult& fwd,
      std::span<const std::vector<Real>> pred_grads) const override;

 private:
  const QubitLayout* layout_;
  std::vector<Index> readout_;
  std::size_t rows_, cols_;
  Real scale_;
};

class LayerDecoder final : public Decoder {
 public:
  /// @param row_qubits exactly `rows` data qubits, one per map row.
  ///
  /// The row velocity is an affinely calibrated expectation,
  /// v_i = a_i * (1 + <Z_i>)/2 + b_i, with the 2*rows calibration scalars
  /// trained alongside the circuit (classical post-processing, mirroring
  /// the pixel decoder's output scale). a_i = 1, b_i = 0 reproduces the
  /// plain (1+<Z>)/2 readout.
  LayerDecoder(const QubitLayout& layout, std::vector<Index> row_qubits,
               std::size_t rows, std::size_t cols);

  using Decoder::decode;
  [[nodiscard]] DecodeResult decode(
      std::span<const Real> probabilities) const override;
  [[nodiscard]] std::vector<Real> probability_grads(
      const DecodeResult& fwd,
      std::span<const std::vector<Real>> pred_grads) const override;
  [[nodiscard]] DecoderKind kind() const override { return DecoderKind::kLayer; }

  [[nodiscard]] std::size_t num_classical_params() const override {
    return 2 * rows_;
  }
  [[nodiscard]] Real classical_param(std::size_t i) const override {
    return i < rows_ ? scale_[i] : bias_[i - rows_];
  }
  void set_classical_param(std::size_t i, Real v) override {
    (i < rows_ ? scale_[i] : bias_[i - rows_]) = v;
  }
  [[nodiscard]] std::vector<Real> classical_grads(
      const DecodeResult& fwd,
      std::span<const std::vector<Real>> pred_grads) const override;

 private:
  const QubitLayout* layout_;
  std::vector<Index> row_qubits_;
  std::size_t rows_, cols_;
  std::vector<Real> scale_;  // a_i, init 1
  std::vector<Real> bias_;   // b_i, init 0
};

/// Factory with the default readout choices (first data qubits).
[[nodiscard]] std::unique_ptr<Decoder> make_decoder(DecoderKind kind,
                                                    const QubitLayout& layout,
                                                    std::size_t rows,
                                                    std::size_t cols);

}  // namespace qugeo::core
