// Qubit layout shared by the ST-Encoder, the QuGeoVQC ansatz, and the
// decoders.
//
// The register map follows the paper's design (Sec. 3.2 + Sec. 3.3):
// one register per encoder group; inside a register the low qubits hold the
// amplitude-encoded data and — when QuBatch is active — log2(B) batch
// qubits sit above them. The paper's qubit overhead of G * log2(B) extra
// qubits for a batch of B across G groups falls directly out of this map.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace qugeo::core {

struct GroupRegister {
  Index offset = 0;       ///< first qubit of the register
  Index data_qubits = 0;  ///< amplitude-encoding qubits (low part)
  Index batch_qubits = 0; ///< QuBatch qubits (high part)

  [[nodiscard]] Index width() const noexcept { return data_qubits + batch_qubits; }
  [[nodiscard]] Index data_dim() const noexcept { return Index{1} << data_qubits; }
};

class QubitLayout {
 public:
  /// @param group_data_qubits  per-group data qubit counts (e.g. {8} or {7,7})
  /// @param batch_log2         log2 of the QuBatch size (0 = no batching)
  QubitLayout(std::vector<Index> group_data_qubits, Index batch_log2);

  [[nodiscard]] Index num_groups() const noexcept { return groups_.size(); }
  [[nodiscard]] const GroupRegister& group(Index g) const { return groups_.at(g); }
  [[nodiscard]] Index total_qubits() const noexcept { return total_qubits_; }
  [[nodiscard]] Index batch_log2() const noexcept { return batch_log2_; }
  [[nodiscard]] Index batch_size() const noexcept { return Index{1} << batch_log2_; }

  /// Total classical values one sample carries (sum of group data dims).
  [[nodiscard]] Index sample_size() const noexcept { return sample_size_; }

  /// Global indices of all data qubits, group-major, low-to-high.
  [[nodiscard]] const std::vector<Index>& data_qubits() const noexcept {
    return data_qubit_list_;
  }

  /// For a basis state k: the batch index if every group's batch register
  /// agrees (the diagonal blocks QuBatch reads out), or kInvalidBlock.
  [[nodiscard]] Index block_of(Index k) const noexcept;

  static constexpr Index kInvalidBlock = ~Index{0};

 private:
  std::vector<GroupRegister> groups_;
  std::vector<Index> data_qubit_list_;
  Index batch_log2_ = 0;
  Index total_qubits_ = 0;
  Index sample_size_ = 0;
};

}  // namespace qugeo::core
