#include "core/ansatz.h"

namespace qugeo::core {
namespace {

void append_u3cu3_block(qsim::Circuit& c, const GroupRegister& reg) {
  for (Index q = 0; q < reg.data_qubits; ++q)
    c.u3(reg.offset + q, c.new_params(3));
  if (reg.data_qubits < 2) return;
  for (Index q = 0; q < reg.data_qubits; ++q) {
    const Index control = reg.offset + q;
    const Index target = reg.offset + (q + 1) % reg.data_qubits;
    c.cu3(control, target, c.new_params(3));
  }
}

void append_inter_group(qsim::Circuit& c, const QubitLayout& layout) {
  for (Index g = 0; g + 1 < layout.num_groups(); ++g) {
    const GroupRegister& a = layout.group(g);
    const GroupRegister& b = layout.group(g + 1);
    // Bridge the top data qubit of one group to the bottom of the next.
    c.cu3(a.offset + a.data_qubits - 1, b.offset, c.new_params(3));
    c.cu3(b.offset, a.offset + a.data_qubits - 1, c.new_params(3));
  }
}

}  // namespace

qsim::Circuit build_qugeo_ansatz(const QubitLayout& layout,
                                 const AnsatzConfig& config) {
  qsim::Circuit c(layout.total_qubits());
  for (std::size_t b = 0; b < config.blocks; ++b) {
    for (Index g = 0; g < layout.num_groups(); ++g)
      append_u3cu3_block(c, layout.group(g));
    if (layout.num_groups() > 1 && config.entangle_every > 0 &&
        (b + 1) % config.entangle_every == 0)
      append_inter_group(c, layout);
  }
  return c;
}

std::size_t ansatz_param_count(const QubitLayout& layout,
                               const AnsatzConfig& config) {
  return build_qugeo_ansatz(layout, config).num_params();
}

}  // namespace qugeo::core
