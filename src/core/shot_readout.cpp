#include "core/shot_readout.h"

#include <bit>
#include <stdexcept>

#include "qsim/shots.h"

namespace qugeo::core {
namespace {

/// Qubit count of a full-basis CDF (its length is 2^n by contract).
Index qubits_from_cdf(std::span<const Real> cdf) {
  if (cdf.empty() || (cdf.size() & (cdf.size() - 1)) != 0)
    throw std::invalid_argument("shot_readout: cdf length must be 2^n");
  return static_cast<Index>(std::countr_zero(cdf.size()));
}

}  // namespace

std::vector<Real> estimate_z_from_cdf(std::span<const Real> cdf,
                                      std::span<const Index> qubits, Rng& rng,
                                      std::size_t shots) {
  if (shots == 0) throw std::invalid_argument("estimate_z_from_cdf: 0 shots");
  const auto probs = qsim::sampled_probabilities_from_cdf(
      cdf, qubits_from_cdf(cdf), rng.next_u64(), shots);
  return qsim::expect_z_from_probabilities(probs, qubits);
}

std::vector<Real> estimate_z_from_shots(const qsim::StateVector& psi,
                                        std::span<const Index> qubits,
                                        Rng& rng, std::size_t shots) {
  if (shots == 0) throw std::invalid_argument("estimate_z_from_shots: 0 shots");
  return estimate_z_from_cdf(psi.cumulative_probabilities(), qubits, rng, shots);
}

std::vector<Real> estimate_marginal_from_cdf(std::span<const Real> cdf,
                                             std::span<const Index> qubits,
                                             Rng& rng, std::size_t shots) {
  if (shots == 0)
    throw std::invalid_argument("estimate_marginal_from_cdf: 0 shots");
  const auto probs = qsim::sampled_probabilities_from_cdf(
      cdf, qubits_from_cdf(cdf), rng.next_u64(), shots);
  return qsim::marginal_from_probabilities(probs, qubits);
}

std::vector<Real> estimate_marginal_from_shots(const qsim::StateVector& psi,
                                               std::span<const Index> qubits,
                                               Rng& rng, std::size_t shots) {
  if (shots == 0)
    throw std::invalid_argument("estimate_marginal_from_shots: 0 shots");
  return estimate_marginal_from_cdf(psi.cumulative_probabilities(), qubits, rng,
                                    shots);
}

std::vector<std::vector<Real>> predict_with_shots(
    const QuGeoModel& model, std::span<const data::ScaledSample* const> samples,
    Rng& rng, std::size_t shots) {
  if (shots == 0) throw std::invalid_argument("predict_with_shots: 0 shots");
  qsim::ExecutionConfig exec = model.execution_config();
  exec.shots = shots;
  exec.seed = rng.next_u64();
  return model.predict_with(samples, exec);
}

EvalMetrics evaluate_model_with_shots(const QuGeoModel& model,
                                      const data::ScaledDataset& ds,
                                      const std::vector<std::size_t>& indices,
                                      Rng& rng, std::size_t shots) {
  std::vector<const data::ScaledSample*> samples;
  samples.reserve(indices.size());
  for (std::size_t i : indices) samples.push_back(&ds.samples[i]);
  return evaluate_predictions(predict_with_shots(model, samples, rng, shots),
                              ds, indices);
}

}  // namespace qugeo::core
