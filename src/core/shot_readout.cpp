#include "core/shot_readout.h"

#include <stdexcept>

#include "core/encoder.h"
#include "qsim/executor.h"

namespace qugeo::core {

std::vector<Real> estimate_z_from_cdf(std::span<const Real> cdf,
                                      std::span<const Index> qubits, Rng& rng,
                                      std::size_t shots) {
  if (shots == 0) throw std::invalid_argument("estimate_z_from_cdf: 0 shots");
  const auto samples = qsim::StateVector::sample_from_cdf(cdf, rng, shots);
  std::vector<Real> z(qubits.size(), Real(0));
  for (Index outcome : samples)
    for (std::size_t i = 0; i < qubits.size(); ++i)
      z[i] += ((outcome >> qubits[i]) & 1) ? Real(-1) : Real(1);
  for (Real& v : z) v /= static_cast<Real>(shots);
  return z;
}

std::vector<Real> estimate_z_from_shots(const qsim::StateVector& psi,
                                        std::span<const Index> qubits,
                                        Rng& rng, std::size_t shots) {
  if (shots == 0) throw std::invalid_argument("estimate_z_from_shots: 0 shots");
  return estimate_z_from_cdf(psi.cumulative_probabilities(), qubits, rng, shots);
}

std::vector<Real> estimate_marginal_from_cdf(std::span<const Real> cdf,
                                             std::span<const Index> qubits,
                                             Rng& rng, std::size_t shots) {
  if (shots == 0)
    throw std::invalid_argument("estimate_marginal_from_cdf: 0 shots");
  const auto samples = qsim::StateVector::sample_from_cdf(cdf, rng, shots);
  std::vector<Real> m(Index{1} << qubits.size(), Real(0));
  for (Index outcome : samples) {
    Index out = 0;
    for (std::size_t i = 0; i < qubits.size(); ++i)
      if ((outcome >> qubits[i]) & 1) out |= Index{1} << i;
    m[out] += Real(1);
  }
  for (Real& v : m) v /= static_cast<Real>(shots);
  return m;
}

std::vector<Real> estimate_marginal_from_shots(const qsim::StateVector& psi,
                                               std::span<const Index> qubits,
                                               Rng& rng, std::size_t shots) {
  if (shots == 0)
    throw std::invalid_argument("estimate_marginal_from_shots: 0 shots");
  return estimate_marginal_from_cdf(psi.cumulative_probabilities(), qubits, rng,
                                    shots);
}

std::vector<std::vector<Real>> predict_with_shots(
    const QuGeoModel& model, std::span<const data::ScaledSample* const> samples,
    Rng& rng, std::size_t shots) {
  if (model.batch_size() != 1)
    throw std::invalid_argument("predict_with_shots: unbatched models only");
  if (model.config().decoder != DecoderKind::kLayer)
    throw std::invalid_argument("predict_with_shots: layer decoder only");

  const QubitLayout& layout = model.layout();
  const StEncoder encoder(layout);
  const auto params = model.parameters();
  const std::size_t rows = model.config().vel_rows;
  const std::size_t cols = model.config().vel_cols;
  const auto& row_qubits = layout.data_qubits();
  const std::size_t nq = model.num_quantum_params();

  std::vector<std::vector<Real>> out;
  out.reserve(samples.size());
  for (const data::ScaledSample* s : samples) {
    qsim::StateVector psi = encoder.encode_single(s->waveform);
    qsim::run_circuit(model.ansatz(), std::span<const Real>(params).first(nq),
                      psi);
    const auto z = estimate_z_from_shots(
        psi, std::span<const Index>(row_qubits.data(), rows), rng, shots);
    std::vector<Real> map(rows * cols);
    for (std::size_t i = 0; i < rows; ++i) {
      // Same affine calibration the exact LayerDecoder applies.
      const Real a = params[nq + i];
      const Real b = params[nq + rows + i];
      const Real v = a * (Real(1) + z[i]) / 2 + b;
      for (std::size_t j = 0; j < cols; ++j) map[i * cols + j] = v;
    }
    out.push_back(std::move(map));
  }
  return out;
}

EvalMetrics evaluate_model_with_shots(const QuGeoModel& model,
                                      const data::ScaledDataset& ds,
                                      const std::vector<std::size_t>& indices,
                                      Rng& rng, std::size_t shots) {
  std::vector<const data::ScaledSample*> samples;
  samples.reserve(indices.size());
  for (std::size_t i : indices) samples.push_back(&ds.samples[i]);
  return evaluate_predictions(predict_with_shots(model, samples, rng, shots),
                              ds, indices);
}

}  // namespace qugeo::core
