#include "core/model.h"

#include <stdexcept>

#include "common/fault.h"
#include "common/parallel.h"
#include "qsim/executor.h"
#include "qsim/gradient_plan.h"
#include "qsim/observables.h"

namespace qugeo::core {

QuGeoModel::QuGeoModel(const ModelConfig& config, Rng& init_rng)
    : config_(config),
      exec_(qsim::apply_env_overrides(config.execution)),
      compile_cache_(std::make_shared<qsim::CompiledCircuitCache>()),
      layout_(config.group_data_qubits, config.batch_log2),
      ansatz_(build_qugeo_ansatz(layout_, config.ansatz)),
      encoder_(layout_),
      decoder_(make_decoder(config.decoder, layout_, config.vel_rows,
                            config.vel_cols)) {
  theta_.resize(ansatz_.num_params());
  init_rng.fill_uniform(theta_, -config.param_init_range, config.param_init_range);
}

std::vector<Real> QuGeoModel::parameters() const {
  std::vector<Real> p;
  p.reserve(theta_.size() + decoder_->num_classical_params());
  p.insert(p.end(), theta_.begin(), theta_.end());
  for (std::size_t i = 0; i < decoder_->num_classical_params(); ++i)
    p.push_back(decoder_->classical_param(i));
  return p;
}

void QuGeoModel::set_parameters(std::span<const Real> params) {
  if (params.size() != num_params())
    throw std::invalid_argument("QuGeoModel::set_parameters: size mismatch");
  std::copy(params.begin(), params.begin() + static_cast<std::ptrdiff_t>(theta_.size()),
            theta_.begin());
  for (std::size_t i = 0; i < decoder_->num_classical_params(); ++i)
    decoder_->set_classical_param(i, params[theta_.size() + i]);
}

const qsim::Circuit& QuGeoModel::gradient_form(
    std::shared_ptr<const qsim::GradientPlan>& keepalive) const {
  if (!exec_.grad_fusion) return ansatz_;
  keepalive = compile_cache_->gradient_plan(ansatz_);
  return keepalive->execution_form(ansatz_);
}

qsim::StateVector QuGeoModel::run_forward(
    std::span<const data::ScaledSample* const> chunk) const {
  std::vector<const std::vector<Real>*> waves(chunk.size());
  for (std::size_t i = 0; i < chunk.size(); ++i) waves[i] = &chunk[i]->waveform;
  qsim::StateVector psi = encoder_.encode(waves);
  std::shared_ptr<const qsim::GradientPlan> plan;
  qsim::run_circuit(gradient_form(plan), theta_, psi);
  return psi;
}

std::vector<Real> QuGeoModel::run_forward_probabilities(
    std::span<const data::ScaledSample* const> chunk,
    const qsim::ExecutionConfig& exec, std::uint64_t stream) const {
  std::vector<const std::vector<Real>*> waves(chunk.size());
  for (std::size_t i = 0; i < chunk.size(); ++i) waves[i] = &chunk[i]->waveform;
  // Backends are stateful and not thread-safe; predict fans chunks across
  // the pool, so each chunk drives its own instance. The chunk index (not
  // the thread) salts the trajectory/shot seed, so results stay
  // deterministic for any pool size while noise realizations differ
  // across chunks. The salt is a full splitmix64 finalizer, NOT the bare
  // golden-ratio increment: trajectory_rng/shot_rng derive sub-stream t of
  // chunk i as seed(i) + G*(t+1), so a linear G*i salt would make chunk
  // i's trajectory t collide with chunk i+1's trajectory t-1 — adjacent
  // samples would see nearly identical noise realizations.
  qsim::ExecutionConfig chunk_exec = exec;
  // Share the model's compiled-circuit cache across chunks and predict
  // calls (the ansatz structure is fixed) unless the caller brought its
  // own; canonicalization then runs once per backend kind, ever.
  if (!chunk_exec.compile_cache) chunk_exec.compile_cache = compile_cache_;
  std::uint64_t z = exec.seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  chunk_exec.seed = z ^ (z >> 31);
  // Transient execution faults (injected via common/fault, or a future
  // remote/accelerated backend hiccuping) retry with exponential backoff;
  // each attempt rebuilds the backend and re-encodes from scratch so no
  // partially-evolved state leaks across attempts. Exhaustion surfaces as
  // FatalError naming the stream and attempt count.
  return fault::retry_on_transient(
      "circuit execution (chunk stream " + std::to_string(stream) + ")",
      fault::RetryPolicy{}, [&]() -> std::vector<Real> {
        const auto backend =
            qsim::make_backend(chunk_exec, layout_.total_qubits());
        backend->run(ansatz_, theta_, encoder_.encode(waves));
        return backend->probabilities();
      });
}

std::vector<std::vector<Real>> QuGeoModel::run_forward_probabilities_batched(
    std::span<const std::vector<const data::ScaledSample*>> chunks,
    const qsim::ExecutionConfig& exec, std::uint64_t stream) const {
  qsim::ExecutionConfig group_exec = exec;
  if (!group_exec.compile_cache) group_exec.compile_cache = compile_cache_;
  // Same salt derivation as the chunk-at-a-time path (inert on the exact
  // deterministic backend this path is gated to, kept for config parity).
  std::uint64_t z = exec.seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  group_exec.seed = z ^ (z >> 31);
  return fault::retry_on_transient(
      "batched circuit execution (chunk stream " + std::to_string(stream) + ")",
      fault::RetryPolicy{}, [&]() -> std::vector<std::vector<Real>> {
        std::vector<qsim::StateVector> states;
        states.reserve(chunks.size());
        for (const auto& chunk : chunks) {
          std::vector<const std::vector<Real>*> waves(chunk.size());
          for (std::size_t i = 0; i < chunk.size(); ++i)
            waves[i] = &chunk[i]->waveform;
          states.push_back(encoder_.encode(waves));
        }
        const auto backend =
            qsim::make_backend(group_exec, layout_.total_qubits());
        return backend->run_batched_probabilities(ansatz_, theta_,
                                                  std::move(states));
      });
}

std::vector<std::vector<Real>> QuGeoModel::predict(
    std::span<const data::ScaledSample* const> samples) const {
  return predict_with(samples, exec_);
}

std::vector<std::vector<Real>> QuGeoModel::predict_with(
    std::span<const data::ScaledSample* const> samples,
    const qsim::ExecutionConfig& exec) const {
  const std::size_t bs = batch_size();
  const std::size_t num_chunks = (samples.size() + bs - 1) / bs;
  // QuBatch chunks are independent circuit executions; fan them out across
  // the pool. Every chunk writes its own slice of `out`, so the result is
  // identical for any QUGEO_THREADS value.
  std::vector<std::vector<Real>> out(samples.size());
  // Chunk grouping for batched execution: only the deterministic exact
  // path qualifies (the statevector backend with exact readout — with
  // shots or a sampling backend, grouping would collapse the per-chunk
  // seed salts into one stream and correlate the chunks' noise
  // realizations). group == 1 is the chunk-at-a-time path, unchanged.
  const std::size_t group =
      (exec.batch > 1 && exec.backend == qsim::BackendKind::kStatevector &&
       exec.shots == 0)
          ? exec.batch
          : 1;
  if (group <= 1) {
    parallel_for(0, num_chunks, [&](std::size_t ci) {
      const std::size_t pos = ci * bs;
      std::vector<const data::ScaledSample*> chunk(bs);
      for (std::size_t b = 0; b < bs; ++b)
        chunk[b] = samples[std::min(pos + b, samples.size() - 1)];
      const std::vector<Real> probs = run_forward_probabilities(chunk, exec, ci);
      DecodeResult dec = decoder_->decode(std::span<const Real>(probs));
      for (std::size_t b = 0; b < bs && pos + b < samples.size(); ++b)
        out[pos + b] = std::move(dec.predictions[b]);
    });
    return out;
  }
  const std::size_t num_groups = (num_chunks + group - 1) / group;
  parallel_for(0, num_groups, [&](std::size_t gi) {
    const std::size_t c0 = gi * group;
    const std::size_t gchunks = std::min(group, num_chunks - c0);
    std::vector<std::vector<const data::ScaledSample*>> chunks(gchunks);
    for (std::size_t c = 0; c < gchunks; ++c) {
      const std::size_t pos = (c0 + c) * bs;
      chunks[c].resize(bs);
      for (std::size_t b = 0; b < bs; ++b)
        chunks[c][b] = samples[std::min(pos + b, samples.size() - 1)];
    }
    const std::vector<std::vector<Real>> probs =
        run_forward_probabilities_batched(chunks, exec, c0);
    for (std::size_t c = 0; c < gchunks; ++c) {
      const std::size_t pos = (c0 + c) * bs;
      DecodeResult dec = decoder_->decode(std::span<const Real>(probs[c]));
      for (std::size_t b = 0; b < bs && pos + b < samples.size(); ++b)
        out[pos + b] = std::move(dec.predictions[b]);
    }
  });
  return out;
}

Real QuGeoModel::loss_and_gradient(
    std::span<const data::ScaledSample* const> chunk,
    std::span<Real> grad_out) const {
  if (chunk.size() != batch_size())
    throw std::invalid_argument("loss_and_gradient: chunk must equal batch size");
  if (grad_out.size() != num_params())
    throw std::invalid_argument("loss_and_gradient: grad size mismatch");

  qsim::StateVector psi = run_forward(chunk);
  const DecodeResult dec = decoder_->decode(psi);

  // Sum-of-squares loss per block (Eq. 2 / Eq. 3) and its prediction grads.
  Real total_loss = 0;
  std::vector<std::vector<Real>> pred_grads(chunk.size());
  for (std::size_t b = 0; b < chunk.size(); ++b) {
    const std::vector<Real>& pred = dec.predictions[b];
    const std::vector<Real>& target = chunk[b]->velocity;
    if (pred.size() != target.size())
      throw std::invalid_argument("loss_and_gradient: target shape mismatch");
    pred_grads[b].resize(pred.size());
    for (std::size_t k = 0; k < pred.size(); ++k) {
      const Real d = pred[k] - target[k];
      total_loss += d * d;
      pred_grads[b][k] = 2 * d;
    }
  }

  // Decoder backward: dL/d(prediction) -> dL/dp -> state cotangent.
  const std::vector<Real> dp = decoder_->probability_grads(dec, pred_grads);
  const std::vector<Complex> cot =
      qsim::cotangent_from_probability_grads(psi, dp);
  // Both adjoint sweeps run the SAME gradient form run_forward executed, so
  // a fused segment's global phase rides on both |psi> and <lambda| and
  // cancels in the 2 Re <lambda|dU|psi> contraction.
  std::shared_ptr<const qsim::GradientPlan> plan;
  const qsim::AdjointResult adj =
      qsim::adjoint_backward(gradient_form(plan), theta_, std::move(psi), cot);
  for (std::size_t i = 0; i < adj.param_grads.size(); ++i)
    grad_out[i] += adj.param_grads[i];

  const std::vector<Real> cg = decoder_->classical_grads(dec, pred_grads);
  for (std::size_t i = 0; i < cg.size(); ++i)
    grad_out[theta_.size() + i] += cg[i];
  return total_loss;
}

Real QuGeoModel::loss(std::span<const data::ScaledSample* const> chunk) const {
  const qsim::StateVector psi = run_forward(chunk);
  const DecodeResult dec = decoder_->decode(psi);
  Real total = 0;
  for (std::size_t b = 0; b < chunk.size(); ++b) {
    const std::vector<Real>& pred = dec.predictions[b];
    const std::vector<Real>& target = chunk[b]->velocity;
    for (std::size_t k = 0; k < pred.size(); ++k) {
      const Real d = pred[k] - target[k];
      total += d * d;
    }
  }
  return total;
}

}  // namespace qugeo::core
