// Classical CNN baselines (Table 2): CNN-PX and CNN-LY, parameter-matched
// to the 576-parameter QuGeoVQC. Both consume the same quantum-scale
// waveforms (L2-normalized per sample, i.e. exactly what the quantum
// encoder sees) and emit velocity maps through a bounded sigmoid head, so
// the comparison isolates the model class.
#pragma once

#include <memory>

#include "core/decoder.h"
#include "core/trainer.h"
#include "data/cache.h"
#include "nn/layers.h"

namespace qugeo::core {

struct ClassicalConfig {
  DecoderKind decoder = DecoderKind::kPixel;
  std::size_t nsrc = 1, nt = 32, nrec = 8;  ///< acquisition metadata
  std::size_t vel_rows = 8, vel_cols = 8;
  /// When true, build an InversionNet-lite trunk (the paper's cited
  /// data-driven FWI reference, Wu et al. 2019, shrunk to the quantum-scale
  /// input): ~25k parameters instead of the parameter-matched few hundred.
  /// Used as an unconstrained upper-bound reference in Table 2.
  bool inversion_net_reference = false;
};

class ClassicalFwiNet {
 public:
  ClassicalFwiNet(const ClassicalConfig& config, Rng& rng);

  [[nodiscard]] std::size_t param_count() const { return net_->param_count(); }
  [[nodiscard]] const ClassicalConfig& config() const noexcept { return config_; }

  /// Predict velocity maps (rows*cols each) for the given samples.
  [[nodiscard]] std::vector<std::vector<Real>> predict(
      std::span<const data::ScaledSample* const> samples) const;

  /// Train with the same schedule as the VQC (Adam + cosine annealing);
  /// returns the per-epoch curve and final test metrics.
  TrainResult train(const data::ScaledDataset& ds, const data::SplitView& split,
                    const TrainConfig& config);

 private:
  [[nodiscard]] nn::Tensor to_input(const data::ScaledSample& s) const;
  [[nodiscard]] std::vector<Real> head_to_map(const nn::Tensor& out) const;

  ClassicalConfig config_;
  std::shared_ptr<nn::Sequential> net_;
};

}  // namespace qugeo::core
