// Training loop for QuGeoModel: Adam over the flat parameter vector with
// cosine-annealed learning rate (the paper's setup: Adam, initial lr 0.1,
// cosine annealing, 500 epochs), evaluating SSIM/MSE on the test split
// after every epoch so the Figure 5(b)/(c) convergence curves can be
// regenerated.
//
// Gradients always come from the exact adjoint statevector pass; the
// per-epoch evaluation (evaluate_model -> predict) runs through the
// model's configured qsim::ExecutionConfig backend, so training curves can
// be recorded under exact-channel or trajectory noise — or from a finite
// measurement budget (ExecutionConfig::shots) — without touching this
// file.
#pragma once

#include <cstdint>
#include <vector>

#include "core/model.h"
#include "data/cache.h"

namespace qugeo::core {

struct TrainConfig {
  std::size_t epochs = 150;
  Real initial_lr = 0.1;
  std::uint64_t shuffle_seed = 7;
  std::size_t log_every = 0;  ///< 0 = silent
  /// Gradient-accumulation granularity: number of QuBatch chunks folded
  /// into one Adam step. 0 = full-batch (one step per epoch). The default
  /// of 8 (mini-batch) converges fastest on the FWI task at lr 0.1.
  std::size_t chunks_per_step = 8;
};

struct EpochRecord {
  Real train_loss = 0;  ///< mean per-sample SSE over the epoch
  Real test_ssim = 0;
  Real test_mse = 0;
};

struct TrainResult {
  std::vector<EpochRecord> curve;
  Real final_ssim = 0;
  Real final_mse = 0;
};

struct EvalMetrics {
  Real ssim = 0;
  Real mse = 0;
};

/// Mean SSIM/MSE of predicted maps against the dataset targets at the given
/// indices (SSIM window shrunk for 8x8 maps, data range fixed to 1).
[[nodiscard]] EvalMetrics evaluate_predictions(
    const std::vector<std::vector<Real>>& preds, const data::ScaledDataset& ds,
    const std::vector<std::size_t>& indices);

/// Evaluate a model on a dataset subset.
[[nodiscard]] EvalMetrics evaluate_model(const QuGeoModel& model,
                                         const data::ScaledDataset& ds,
                                         const std::vector<std::size_t>& indices);

/// Train in place; returns per-epoch records and final test metrics.
TrainResult train_model(QuGeoModel& model, const data::ScaledDataset& ds,
                        const data::SplitView& split, const TrainConfig& config);

}  // namespace qugeo::core
