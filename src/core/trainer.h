// Training loop for QuGeoModel: Adam over the flat parameter vector with
// cosine-annealed learning rate (the paper's setup: Adam, initial lr 0.1,
// cosine annealing, 500 epochs), evaluating SSIM/MSE on the test split
// after every epoch so the Figure 5(b)/(c) convergence curves can be
// regenerated.
//
// Gradients always come from the exact adjoint statevector pass (through
// the model's cached GradientPlan — qsim/gradient_plan.h — unless
// QUGEO_GRAD_FUSION=off); the per-epoch evaluation (evaluate_model ->
// predict) runs through the model's configured qsim::ExecutionConfig
// backend, so training curves can be recorded under exact-channel or
// trajectory noise — or from a finite measurement budget
// (ExecutionConfig::shots) — without touching this file.
//
// Each accumulation group fans its QuBatch chunks data-parallel over the
// shared pool into a fixed number of gradient slots
// (TrainConfig::grad_shards / QUGEO_GRAD_SHARDS) that fold in shard order
// — deterministic and bit-identical for any QUGEO_THREADS value.
//
// Fault tolerance: when TrainConfig::checkpoint_path is set, the loop
// atomically persists a versioned TrainCheckpoint (core/serialization —
// parameters, full Adam state, shuffle-RNG state, epoch curve) every
// checkpoint_every epochs into a rotation of checkpoint_keep slots, and on
// start resumes from the newest valid one. A killed run resumed this way
// produces a bit-identical final parameter vector and epoch curve to an
// uninterrupted run (pinned by tests/test_core_checkpoint.cpp under 1 and
// 4 threads). Invalid slots (torn, CRC-corrupt, wrong architecture) are
// skipped with a degradation report; checkpoint writes retry transient
// faults with exponential backoff (common/fault.h).
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "core/model.h"
#include "data/cache.h"

namespace qugeo::core {

struct TrainConfig {
  std::size_t epochs = 150;
  Real initial_lr = 0.1;
  std::uint64_t shuffle_seed = 7;
  std::size_t log_every = 0;  ///< 0 = silent
  /// Gradient-accumulation granularity: number of QuBatch chunks folded
  /// into one Adam step. 0 = full-batch (one step per epoch). The default
  /// of 8 (mini-batch) converges fastest on the FWI task at lr 0.1.
  std::size_t chunks_per_step = 8;
  /// Data-parallel shard count for the per-step gradient accumulation
  /// (QUGEO_GRAD_SHARDS): the chunks of one accumulation group are split
  /// into this many fixed contiguous ranges, each accumulating its chunks
  /// sequentially into its own gradient slot over the shared pool; the
  /// slots then fold in shard order. 0 (the default) keeps one slot per
  /// chunk — the pre-sharding layout, bit-identical to it — while any
  /// positive value caps the live gradient buffers at
  /// min(grad_shards, group) * num_params, which is what makes big
  /// accumulation groups affordable. The shard partition depends only on
  /// this knob, never on the pool size, so results are bit-identical for
  /// any QUGEO_THREADS value (pinned by test_core_trainer); different
  /// shard counts group the floating-point fold differently, so this
  /// field is part of the checkpoint's train fingerprint.
  std::size_t grad_shards = 0;
  /// Checkpoint file stem; empty disables checkpointing. Slot k of the
  /// rotation is written to `<checkpoint_path>.<k>`.
  std::filesystem::path checkpoint_path;
  /// Epochs between checkpoints (0 disables checkpointing even with a
  /// path set). The final epoch always checkpoints when enabled.
  std::size_t checkpoint_every = 0;
  /// Rotation depth: how many checkpoint slots to cycle through. Keeping
  /// more than one means a torn/corrupt newest slot degrades to the
  /// previous one instead of losing the run.
  std::size_t checkpoint_keep = 3;
  /// Resume from the newest valid checkpoint slot on start (no-op when
  /// none exists or checkpointing is disabled).
  bool resume = true;
};

/// Apply the training environment overrides on top of `base`:
/// QUGEO_CHECKPOINT (checkpoint file stem), QUGEO_CHECKPOINT_EVERY
/// (positive epoch interval; defaults to 1 when only the path is set) and
/// QUGEO_GRAD_SHARDS (accumulation shard count; 0 = one slot per chunk).
/// Unset variables leave `base` untouched. train_model applies this to
/// its config on entry, so any long run can be made resumable from the
/// environment without recompiling.
[[nodiscard]] TrainConfig apply_train_env_overrides(TrainConfig base);

struct EpochRecord {
  Real train_loss = 0;  ///< mean per-sample SSE over the epoch
  Real test_ssim = 0;
  Real test_mse = 0;
};

struct TrainResult {
  std::vector<EpochRecord> curve;
  Real final_ssim = 0;
  Real final_mse = 0;
  /// Epoch the run actually started from (> 0 when resumed).
  std::size_t resumed_from_epoch = 0;
};

struct EvalMetrics {
  Real ssim = 0;
  Real mse = 0;
};

/// Mean SSIM/MSE of predicted maps against the dataset targets at the given
/// indices (SSIM window shrunk for 8x8 maps, data range fixed to 1).
[[nodiscard]] EvalMetrics evaluate_predictions(
    const std::vector<std::vector<Real>>& preds, const data::ScaledDataset& ds,
    const std::vector<std::size_t>& indices);

/// Evaluate a model on a dataset subset.
[[nodiscard]] EvalMetrics evaluate_model(const QuGeoModel& model,
                                         const data::ScaledDataset& ds,
                                         const std::vector<std::size_t>& indices);

/// Train in place; returns per-epoch records and final test metrics.
TrainResult train_model(QuGeoModel& model, const data::ScaledDataset& ds,
                        const data::SplitView& split, const TrainConfig& config);

}  // namespace qugeo::core
