#include "core/classical_baseline.h"

#include <stdexcept>

#include "common/math_utils.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"

namespace qugeo::core {
namespace {

/// The 256-value waveform enters both CNNs as one 16x16 image. CNN-PX:
/// 2x 5x5 stride-2 conv -> pool -> 8x 3x3 conv -> FC(8 -> 64) -> sigmoid;
/// 780 parameters, the same level as the 576/577-parameter VQCs.
std::shared_ptr<nn::Sequential> build_px(std::size_t out_dim, Rng& rng) {
  auto net = std::make_shared<nn::Sequential>();
  net->emplace<nn::Conv2d>(1, 2, 5, 2, 0, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2);
  net->emplace<nn::Conv2d>(2, 8, 3, 1, 0, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8, out_dim, rng);
  net->emplace<nn::Sigmoid>();
  return net;
}

/// CNN-LY: wider trunk, 8-value row head. 832 parameters.
std::shared_ptr<nn::Sequential> build_ly(std::size_t rows, Rng& rng) {
  auto net = std::make_shared<nn::Sequential>();
  net->emplace<nn::Conv2d>(1, 4, 5, 2, 0, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2);
  net->emplace<nn::Conv2d>(4, 16, 3, 1, 0, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(16, rows, rng);
  net->emplace<nn::Sigmoid>();
  return net;
}

/// InversionNet-lite: a conv encoder + FC decoder in the spirit of Wu et
/// al. 2019, shrunk to the 16x16 quantum-scale input. ~25k parameters —
/// deliberately NOT parameter-matched; it bounds what classical learning
/// extracts from the same scaled data.
std::shared_ptr<nn::Sequential> build_inversion_net(std::size_t out_dim,
                                                    Rng& rng) {
  auto net = std::make_shared<nn::Sequential>();
  net->emplace<nn::Conv2d>(1, 16, 3, 1, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2);
  net->emplace<nn::Conv2d>(16, 32, 3, 1, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2);
  net->emplace<nn::Conv2d>(32, 32, 3, 1, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2);
  net->emplace<nn::Flatten>();  // 32 * 2 * 2 = 128
  net->emplace<nn::Linear>(128, 64, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Linear>(64, out_dim, rng);
  net->emplace<nn::Sigmoid>();
  return net;
}

}  // namespace

ClassicalFwiNet::ClassicalFwiNet(const ClassicalConfig& config, Rng& rng)
    : config_(config) {
  if (config.nsrc * config.nt * config.nrec != 256)
    throw std::invalid_argument("ClassicalFwiNet: expects 256-value waveforms");
  const std::size_t out_dim = config.vel_rows * config.vel_cols;
  if (config.inversion_net_reference) {
    net_ = build_inversion_net(
        config.decoder == DecoderKind::kPixel ? out_dim : config.vel_rows, rng);
  } else {
    net_ = config.decoder == DecoderKind::kPixel
               ? build_px(out_dim, rng)
               : build_ly(config.vel_rows, rng);
  }
}

nn::Tensor ClassicalFwiNet::to_input(const data::ScaledSample& s) const {
  std::vector<Real> w = s.waveform;
  normalize_l2(w);  // same per-sample gauge the quantum encoder applies
  return nn::Tensor({1, 1, 16, 16}, std::move(w));
}

std::vector<Real> ClassicalFwiNet::head_to_map(const nn::Tensor& out) const {
  const std::size_t rows = config_.vel_rows, cols = config_.vel_cols;
  if (config_.decoder == DecoderKind::kPixel)
    return std::vector<Real>(out.data().begin(), out.data().end());
  std::vector<Real> map(rows * cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) map[i * cols + j] = out[i];
  return map;
}

std::vector<std::vector<Real>> ClassicalFwiNet::predict(
    std::span<const data::ScaledSample* const> samples) const {
  std::vector<std::vector<Real>> out;
  out.reserve(samples.size());
  for (const data::ScaledSample* s : samples)
    out.push_back(head_to_map(net_->forward(to_input(*s))));
  return out;
}

TrainResult ClassicalFwiNet::train(const data::ScaledDataset& ds,
                                   const data::SplitView& split,
                                   const TrainConfig& config) {
  TrainResult result;
  nn::Adam opt(net_->params());
  const nn::CosineAnnealingLr schedule(config.initial_lr, config.epochs);
  Rng shuffle_rng(config.shuffle_seed);
  const std::size_t rows = config_.vel_rows, cols = config_.vel_cols;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto order = shuffle_rng.permutation(split.train.size());
    Real epoch_loss = 0;
    for (std::size_t oi : order) {
      const data::ScaledSample& s = ds.samples[split.train[oi]];
      const nn::Tensor pred = net_->forward(to_input(s));

      // SSE against the target map; for the layer head, fold the per-row
      // column sums into the 8-value gradient (Eq. 3).
      nn::Tensor grad(pred.shape());
      Real loss = 0;
      if (config_.decoder == DecoderKind::kPixel) {
        for (std::size_t k = 0; k < pred.numel(); ++k) {
          const Real d = pred[k] - s.velocity[k];
          loss += d * d;
          grad[k] = 2 * d;
        }
      } else {
        for (std::size_t i = 0; i < rows; ++i) {
          Real g = 0;
          for (std::size_t j = 0; j < cols; ++j) {
            const Real d = pred[i] - s.velocity[i * cols + j];
            loss += d * d;
            g += 2 * d;
          }
          grad[i] = g;
        }
      }
      epoch_loss += loss;
      opt.zero_grad();
      (void)net_->backward(grad);
      opt.step(schedule.lr(epoch));
    }

    EpochRecord rec;
    rec.train_loss = epoch_loss / static_cast<Real>(order.empty() ? 1 : order.size());
    std::vector<const data::ScaledSample*> test_samples;
    for (std::size_t i : split.test) test_samples.push_back(&ds.samples[i]);
    const EvalMetrics ev =
        evaluate_predictions(predict(test_samples), ds, split.test);
    rec.test_ssim = ev.ssim;
    rec.test_mse = ev.mse;
    result.curve.push_back(rec);
  }
  if (!result.curve.empty()) {
    result.final_ssim = result.curve.back().test_ssim;
    result.final_mse = result.curve.back().test_mse;
  }
  return result;
}

}  // namespace qugeo::core
