// One-call experiment runner shared by the bench harnesses: pick a scaled
// dataset, build a QuGeoVQC with the requested decoder / grouping / QuBatch
// size, train it with the paper's schedule, and return the metrics needed
// to regenerate the corresponding table or figure.
#pragma once

#include <string>

#include "core/classical_baseline.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/cache.h"

namespace qugeo::core {

struct ExperimentSpec {
  std::string dataset = "Q-D-FW";  ///< "D-Sample" | "Q-D-FW" | "Q-D-CNN"
  DecoderKind decoder = DecoderKind::kLayer;
  Index batch_log2 = 0;
  std::vector<Index> group_data_qubits = {8};
  std::size_t blocks = 12;
  std::size_t entangle_every = 3;
  std::uint64_t init_seed = 42;
  /// Simulation backend, NoiseModel channels, and shot budget for the
  /// model's inference path (threading through ModelConfig; training
  /// gradients stay on the adjoint statevector).
  qsim::ExecutionConfig execution;
};

struct ExperimentResult {
  std::string model_name;
  std::string dataset_name;
  std::size_t param_count = 0;
  TrainResult train;
};

/// "Q-M-PX" or "Q-M-LY".
[[nodiscard]] std::string vqc_model_name(DecoderKind kind);

/// Look up one of the three scaled datasets by the paper's name.
[[nodiscard]] const data::ScaledDataset& select_dataset(
    const data::ExperimentData& data, const std::string& name);

/// Train a QuGeoVQC per the spec and return its metrics.
[[nodiscard]] ExperimentResult run_vqc_experiment(
    const data::ExperimentData& data, const ExperimentSpec& spec,
    const TrainConfig& train_cfg);

/// Train a classical CNN baseline (CNN-PX / CNN-LY) on the named dataset.
/// With `inversion_net_reference` the unconstrained InversionNet-lite
/// reference is trained instead ("INet-ref" in the reports).
[[nodiscard]] ExperimentResult run_classical_experiment(
    const data::ExperimentData& data, const std::string& dataset,
    DecoderKind decoder, const TrainConfig& train_cfg,
    std::uint64_t init_seed = 42, bool inversion_net_reference = false);

}  // namespace qugeo::core
