#include "core/decoder.h"

#include <cmath>
#include <stdexcept>

#include "common/math_utils.h"

namespace qugeo::core {
namespace {

constexpr Real kProbFloor = 1e-12;

std::vector<Index> default_readout(const QubitLayout& layout, std::size_t count) {
  const auto& dq = layout.data_qubits();
  if (dq.size() < count)
    throw std::invalid_argument("decoder: not enough data qubits for readout");
  return {dq.begin(), dq.begin() + static_cast<std::ptrdiff_t>(count)};
}

}  // namespace

// ----------------------------------------------------------- PixelDecoder --

PixelDecoder::PixelDecoder(const QubitLayout& layout,
                           std::vector<Index> readout_qubits, std::size_t rows,
                           std::size_t cols, Real initial_scale)
    : layout_(&layout),
      readout_(std::move(readout_qubits)),
      rows_(rows),
      cols_(cols),
      scale_(initial_scale) {
  if ((std::size_t{1} << readout_.size()) != rows * cols)
    throw std::invalid_argument("PixelDecoder: need log2(rows*cols) qubits");
}

DecodeResult PixelDecoder::decode(std::span<const Real> probabilities) const {
  DecodeResult r;
  r.probs.assign(probabilities.begin(), probabilities.end());
  const Index nblocks = layout_->batch_size();
  const std::size_t npix = rows_ * cols_;
  std::vector<std::vector<Real>> marg(nblocks, std::vector<Real>(npix, Real(0)));
  r.block_prob.assign(nblocks, Real(0));
  for (Index k = 0; k < r.probs.size(); ++k) {
    const Index b = layout_->block_of(k);
    if (b == QubitLayout::kInvalidBlock) continue;
    Index out = 0;
    for (Index i = 0; i < readout_.size(); ++i)
      if (k & (Index{1} << readout_[i])) out |= Index{1} << i;
    marg[b][out] += r.probs[k];
    r.block_prob[b] += r.probs[k];
  }
  r.predictions.resize(nblocks);
  r.aux.resize(nblocks);
  for (Index b = 0; b < nblocks; ++b) {
    const Real pb = std::max(r.block_prob[b], kProbFloor);
    std::vector<Real>& cond = r.aux[b];
    cond.resize(npix);
    r.predictions[b].resize(npix);
    for (std::size_t o = 0; o < npix; ++o) {
      cond[o] = marg[b][o] / pb;
      r.predictions[b][o] = scale_ * std::sqrt(cond[o]);
    }
  }
  return r;
}

std::vector<Real> PixelDecoder::probability_grads(
    const DecodeResult& fwd,
    std::span<const std::vector<Real>> pred_grads) const {
  const Index nblocks = layout_->batch_size();
  const std::size_t npix = rows_ * cols_;
  // dL/d(marginal mass m_{b,o}) for the conditional cond = m / P.
  std::vector<std::vector<Real>> dm(nblocks, std::vector<Real>(npix, Real(0)));
  for (Index b = 0; b < nblocks; ++b) {
    const Real pb = std::max(fwd.block_prob[b], kProbFloor);
    const std::vector<Real>& cond = fwd.aux[b];
    std::vector<Real> dcond(npix);
    Real dot = 0;
    for (std::size_t o = 0; o < npix; ++o) {
      const Real sq = std::max(std::sqrt(cond[o]), Real(1e-6));
      dcond[o] = pred_grads[b][o] * scale_ / (2 * sq);
      dot += dcond[o] * cond[o];
    }
    for (std::size_t o = 0; o < npix; ++o) dm[b][o] = (dcond[o] - dot) / pb;
  }
  std::vector<Real> dp(fwd.probs.size(), Real(0));
  for (Index k = 0; k < dp.size(); ++k) {
    const Index b = layout_->block_of(k);
    if (b == QubitLayout::kInvalidBlock) continue;
    Index out = 0;
    for (Index i = 0; i < readout_.size(); ++i)
      if (k & (Index{1} << readout_[i])) out |= Index{1} << i;
    dp[k] = dm[b][out];
  }
  return dp;
}

std::vector<Real> PixelDecoder::classical_grads(
    const DecodeResult& fwd,
    std::span<const std::vector<Real>> pred_grads) const {
  Real g = 0;
  for (Index b = 0; b < layout_->batch_size(); ++b)
    for (std::size_t o = 0; o < rows_ * cols_; ++o)
      g += pred_grads[b][o] * std::sqrt(fwd.aux[b][o]);
  return {g};
}

// ----------------------------------------------------------- LayerDecoder --

LayerDecoder::LayerDecoder(const QubitLayout& layout,
                           std::vector<Index> row_qubits, std::size_t rows,
                           std::size_t cols)
    : layout_(&layout),
      row_qubits_(std::move(row_qubits)),
      rows_(rows),
      cols_(cols),
      scale_(rows, Real(1)),
      bias_(rows, Real(0)) {
  if (row_qubits_.size() != rows)
    throw std::invalid_argument("LayerDecoder: need one qubit per row");
}

DecodeResult LayerDecoder::decode(std::span<const Real> probabilities) const {
  DecodeResult r;
  r.probs.assign(probabilities.begin(), probabilities.end());
  const Index nblocks = layout_->batch_size();
  std::vector<std::vector<Real>> acc(nblocks, std::vector<Real>(rows_, Real(0)));
  r.block_prob.assign(nblocks, Real(0));
  for (Index k = 0; k < r.probs.size(); ++k) {
    const Index b = layout_->block_of(k);
    if (b == QubitLayout::kInvalidBlock) continue;
    r.block_prob[b] += r.probs[k];
    for (std::size_t i = 0; i < rows_; ++i)
      acc[b][i] += ((k >> row_qubits_[i]) & 1) ? -r.probs[k] : r.probs[k];
  }
  r.predictions.resize(nblocks);
  r.aux.resize(nblocks);
  for (Index b = 0; b < nblocks; ++b) {
    const Real pb = std::max(r.block_prob[b], kProbFloor);
    std::vector<Real>& z = r.aux[b];
    z.resize(rows_);
    r.predictions[b].assign(rows_ * cols_, Real(0));
    for (std::size_t i = 0; i < rows_; ++i) {
      z[i] = acc[b][i] / pb;  // conditional <Z> within the batch block
      const Real v = scale_[i] * (Real(1) + z[i]) / 2 + bias_[i];
      for (std::size_t j = 0; j < cols_; ++j)
        r.predictions[b][i * cols_ + j] = v;
    }
  }
  return r;
}

std::vector<Real> LayerDecoder::probability_grads(
    const DecodeResult& fwd,
    std::span<const std::vector<Real>> pred_grads) const {
  const Index nblocks = layout_->batch_size();
  // Row-summed prediction gradients -> dL/dZ per block.
  std::vector<std::vector<Real>> dz(nblocks, std::vector<Real>(rows_, Real(0)));
  for (Index b = 0; b < nblocks; ++b)
    for (std::size_t i = 0; i < rows_; ++i) {
      Real s = 0;
      for (std::size_t j = 0; j < cols_; ++j) s += pred_grads[b][i * cols_ + j];
      dz[b][i] = s * scale_[i] / 2;  // dv/dZ = a_i / 2
    }
  std::vector<Real> dp(fwd.probs.size(), Real(0));
  for (Index k = 0; k < dp.size(); ++k) {
    const Index b = layout_->block_of(k);
    if (b == QubitLayout::kInvalidBlock) continue;
    const Real pb = std::max(fwd.block_prob[b], kProbFloor);
    Real g = 0;
    for (std::size_t i = 0; i < rows_; ++i) {
      const Real sign = ((k >> row_qubits_[i]) & 1) ? Real(-1) : Real(1);
      g += dz[b][i] * (sign - fwd.aux[b][i]) / pb;
    }
    dp[k] = g;
  }
  return dp;
}

std::vector<Real> LayerDecoder::classical_grads(
    const DecodeResult& fwd,
    std::span<const std::vector<Real>> pred_grads) const {
  std::vector<Real> g(2 * rows_, Real(0));
  for (Index b = 0; b < layout_->batch_size(); ++b)
    for (std::size_t i = 0; i < rows_; ++i) {
      Real s = 0;
      for (std::size_t j = 0; j < cols_; ++j) s += pred_grads[b][i * cols_ + j];
      g[i] += s * (Real(1) + fwd.aux[b][i]) / 2;  // d/da_i
      g[rows_ + i] += s;                          // d/db_i
    }
  return g;
}

std::unique_ptr<Decoder> make_decoder(DecoderKind kind,
                                      const QubitLayout& layout,
                                      std::size_t rows, std::size_t cols) {
  switch (kind) {
    case DecoderKind::kPixel:
      return std::make_unique<PixelDecoder>(
          layout, default_readout(layout, log2_exact(rows * cols)), rows, cols);
    case DecoderKind::kLayer:
      return std::make_unique<LayerDecoder>(layout, default_readout(layout, rows),
                                            rows, cols);
  }
  throw std::invalid_argument("make_decoder: unknown kind");
}

}  // namespace qugeo::core
