// QuGeoModel: encoder + ansatz + decoder, end to end.
//
// forward: waveform batch --StEncoder--> |psi_in> --Backend(ansatz)-->
//          Born probabilities --Decoder--> predicted velocity maps.
// backward: loss cotangent --Decoder.probability_grads--> dL/dp
//          --observables--> dL/d(conj psi) --adjoint_backward--> dL/dtheta.
//
// The model owns its trainable parameters: the ansatz angle table plus the
// decoder's classical parameters (the pixel decoder's output scale).
//
// Backend selection: ModelConfig carries a qsim::ExecutionConfig that picks
// the simulation backend for the inference/readout path (predict). The
// default — noiseless statevector — reproduces the pre-backend pipeline
// bit-identically; the density-matrix and trajectory backends run the same
// pipeline under exact or sampled NoiseModel channels (the NISQ ablation),
// and a positive `shots` budget reads every expectation from sampled
// measurements (ShotBackend) instead of exact probabilities.
// Training gradients (loss_and_gradient) always use the exact noiseless
// statevector + adjoint path, mirroring the paper's noiseless training; the
// backend choice governs how the trained model is *read out*. The adjoint
// pass executes the circuit's GradientPlan (qsim/gradient_plan.h — literal
// segments between trainable slots fused, memoized in the model's
// CompiledCircuitCache) unless ExecutionConfig::grad_fusion
// (QUGEO_GRAD_FUSION) turns it off.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/ansatz.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/layout.h"
#include "data/dataset.h"
#include "qsim/backend.h"
#include "qsim/circuit.h"
#include "qsim/compile_cache.h"

namespace qugeo::core {

struct ModelConfig {
  /// Data qubits per encoder group; the product of 2^sizes must equal the
  /// waveform length (default: one 8-qubit group for 256 values).
  std::vector<Index> group_data_qubits = {8};
  Index batch_log2 = 0;  ///< QuBatch: process 2^b samples per circuit
  AnsatzConfig ansatz;
  DecoderKind decoder = DecoderKind::kLayer;
  std::size_t vel_rows = 8;
  std::size_t vel_cols = 8;
  Real param_init_range = 0.1;  ///< angles ~ U(-r, r) at initialization
  /// Simulation backend for the inference path (see header comment). The
  /// constructor applies the QUGEO_BACKEND / QUGEO_NOISE_P /
  /// QUGEO_NOISE_CHANNEL / QUGEO_READOUT_P / QUGEO_TRAJECTORIES /
  /// QUGEO_SHOTS / QUGEO_FUSION / QUGEO_GRAD_FUSION / QUGEO_SIMD /
  /// QUGEO_BATCH environment overrides on top of this.
  qsim::ExecutionConfig execution;
};

class QuGeoModel {
 public:
  QuGeoModel(const ModelConfig& config, Rng& init_rng);

  [[nodiscard]] const ModelConfig& config() const noexcept { return config_; }
  [[nodiscard]] const QubitLayout& layout() const noexcept { return layout_; }

  /// Effective execution config (after environment overrides).
  [[nodiscard]] const qsim::ExecutionConfig& execution_config() const noexcept {
    return exec_;
  }
  /// Re-point the inference path at a different backend / noise model; the
  /// sanctioned way to run the noise-robustness ablation on a trained model.
  void set_execution_config(const qsim::ExecutionConfig& exec) { exec_ = exec; }

  /// The model-owned compiled-circuit cache: canonicalize_for_backend runs
  /// once per (circuit structure, backend kind) across every predict /
  /// predict_with call and QuBatch chunk (compile_count() is the probe the
  /// tests pin). Injected into each chunk's ExecutionConfig unless the
  /// caller supplied a cache of its own.
  [[nodiscard]] const std::shared_ptr<qsim::CompiledCircuitCache>&
  compile_cache() const noexcept {
    return compile_cache_;
  }
  [[nodiscard]] const qsim::Circuit& ansatz() const noexcept { return ansatz_; }
  [[nodiscard]] Index batch_size() const noexcept { return layout_.batch_size(); }

  /// Quantum + classical trainable parameter counts.
  [[nodiscard]] std::size_t num_quantum_params() const { return ansatz_.num_params(); }
  [[nodiscard]] std::size_t num_params() const {
    return num_quantum_params() + decoder_->num_classical_params();
  }

  /// Flat parameter view (quantum angles then classical decoder params).
  [[nodiscard]] std::vector<Real> parameters() const;
  void set_parameters(std::span<const Real> params);

  /// Predict velocity maps for any number of samples; batching chunks are
  /// handled internally (the final chunk is padded by repetition).
  [[nodiscard]] std::vector<std::vector<Real>> predict(
      std::span<const data::ScaledSample* const> samples) const;

  /// As predict, but through an explicit ExecutionConfig instead of the
  /// model's configured one — the one-off form the shot/noise ablations
  /// use (core/shot_readout delegates here).
  [[nodiscard]] std::vector<std::vector<Real>> predict_with(
      std::span<const data::ScaledSample* const> samples,
      const qsim::ExecutionConfig& exec) const;

  /// Sum-of-squares loss (Eq. 2 / Eq. 3) and gradient over one QuBatch
  /// chunk of exactly batch_size() samples. Gradients are ADDED into
  /// `grad_out` (size num_params()). Returns the summed loss.
  Real loss_and_gradient(std::span<const data::ScaledSample* const> chunk,
                         std::span<Real> grad_out) const;

  /// Loss only (for tests and line searches).
  [[nodiscard]] Real loss(std::span<const data::ScaledSample* const> chunk) const;

 private:
  /// Exact pure-state forward pass (training path; adjoint needs psi).
  /// Executes the gradient form, so the returned state is the adjoint
  /// pass's replay input (same global phase).
  [[nodiscard]] qsim::StateVector run_forward(
      std::span<const data::ScaledSample* const> chunk) const;

  /// The circuit the training path executes: the ansatz's cached
  /// GradientPlan form when ExecutionConfig::grad_fusion is on, the raw
  /// ansatz otherwise. `keepalive` owns any returned plan circuit; it must
  /// outlive the use of the reference.
  [[nodiscard]] const qsim::Circuit& gradient_form(
      std::shared_ptr<const qsim::GradientPlan>& keepalive) const;

  /// Backend-driven forward pass: encode, execute on a fresh backend from
  /// `exec`, return the Born probabilities (inference path). `stream`
  /// salts the trajectory/shot seed per QuBatch chunk so different samples
  /// see independent noise realizations (sampling error then averages out
  /// across a dataset instead of being perfectly correlated).
  [[nodiscard]] std::vector<Real> run_forward_probabilities(
      std::span<const data::ScaledSample* const> chunk,
      const qsim::ExecutionConfig& exec, std::uint64_t stream) const;

  /// Batched form of run_forward_probabilities: encode several QuBatch
  /// chunks and execute them as the lanes of ONE batched backend call
  /// (Backend::run_batched_probabilities), so each ansatz gate is decoded
  /// and dispatched once per group instead of once per chunk. Only taken
  /// on the deterministic exact path (statevector backend, shots == 0 —
  /// predict_with gates on this), where the per-chunk seed salt is inert;
  /// results are bit-identical (scalar mode) to the chunk-at-a-time path.
  [[nodiscard]] std::vector<std::vector<Real>> run_forward_probabilities_batched(
      std::span<const std::vector<const data::ScaledSample*>> chunks,
      const qsim::ExecutionConfig& exec, std::uint64_t stream) const;

  ModelConfig config_;
  qsim::ExecutionConfig exec_;
  std::shared_ptr<qsim::CompiledCircuitCache> compile_cache_;
  QubitLayout layout_;
  qsim::Circuit ansatz_;
  StEncoder encoder_;
  std::unique_ptr<Decoder> decoder_;
  std::vector<Real> theta_;
};

}  // namespace qugeo::core
