// QuGeoModel: encoder + ansatz + decoder, end to end.
//
// forward: waveform batch --StEncoder--> |psi_in> --ansatz(theta)--> |psi>
//          --Decoder--> predicted velocity maps.
// backward: loss cotangent --Decoder.probability_grads--> dL/dp
//          --observables--> dL/d(conj psi) --adjoint_backward--> dL/dtheta.
//
// The model owns its trainable parameters: the ansatz angle table plus the
// decoder's classical parameters (the pixel decoder's output scale).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/ansatz.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/layout.h"
#include "data/dataset.h"
#include "qsim/circuit.h"

namespace qugeo::core {

struct ModelConfig {
  /// Data qubits per encoder group; the product of 2^sizes must equal the
  /// waveform length (default: one 8-qubit group for 256 values).
  std::vector<Index> group_data_qubits = {8};
  Index batch_log2 = 0;  ///< QuBatch: process 2^b samples per circuit
  AnsatzConfig ansatz;
  DecoderKind decoder = DecoderKind::kLayer;
  std::size_t vel_rows = 8;
  std::size_t vel_cols = 8;
  Real param_init_range = 0.1;  ///< angles ~ U(-r, r) at initialization
};

class QuGeoModel {
 public:
  QuGeoModel(const ModelConfig& config, Rng& init_rng);

  [[nodiscard]] const ModelConfig& config() const noexcept { return config_; }
  [[nodiscard]] const QubitLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] const qsim::Circuit& ansatz() const noexcept { return ansatz_; }
  [[nodiscard]] Index batch_size() const noexcept { return layout_.batch_size(); }

  /// Quantum + classical trainable parameter counts.
  [[nodiscard]] std::size_t num_quantum_params() const { return ansatz_.num_params(); }
  [[nodiscard]] std::size_t num_params() const {
    return num_quantum_params() + decoder_->num_classical_params();
  }

  /// Flat parameter view (quantum angles then classical decoder params).
  [[nodiscard]] std::vector<Real> parameters() const;
  void set_parameters(std::span<const Real> params);

  /// Predict velocity maps for any number of samples; batching chunks are
  /// handled internally (the final chunk is padded by repetition).
  [[nodiscard]] std::vector<std::vector<Real>> predict(
      std::span<const data::ScaledSample* const> samples) const;

  /// Sum-of-squares loss (Eq. 2 / Eq. 3) and gradient over one QuBatch
  /// chunk of exactly batch_size() samples. Gradients are ADDED into
  /// `grad_out` (size num_params()). Returns the summed loss.
  Real loss_and_gradient(std::span<const data::ScaledSample* const> chunk,
                         std::span<Real> grad_out) const;

  /// Loss only (for tests and line searches).
  [[nodiscard]] Real loss(std::span<const data::ScaledSample* const> chunk) const;

 private:
  [[nodiscard]] qsim::StateVector run_forward(
      std::span<const data::ScaledSample* const> chunk) const;

  ModelConfig config_;
  QubitLayout layout_;
  qsim::Circuit ansatz_;
  StEncoder encoder_;
  std::unique_ptr<Decoder> decoder_;
  std::vector<Real> theta_;
};

}  // namespace qugeo::core
