// ST-Encoder (Sec. 3.2.1) with QuBatch support (Sec. 3.3).
//
// Seismic data is grouped by source (one source = one independent physical
// event, so its traces are encoded together); each group's values become
// the amplitudes of its register. With QuBatch, the B samples of a batch
// are concatenated inside every group register and jointly L2-normalized —
// the joint normalization is the paper's "data precision" cost of batching.
#pragma once

#include <span>
#include <vector>

#include "core/layout.h"
#include "qsim/circuit.h"
#include "qsim/statevector.h"

namespace qugeo::core {

class StEncoder {
 public:
  explicit StEncoder(const QubitLayout& layout) : layout_(&layout) {}

  /// Encode a batch of exactly layout.batch_size() waveforms, each of
  /// length layout.sample_size() (source-major so groups are contiguous
  /// chunks). Produces the product-of-registers state described above.
  [[nodiscard]] qsim::StateVector encode(
      std::span<const std::vector<Real>* const> waveforms) const;

  /// Convenience overload for an unbatched single sample.
  [[nodiscard]] qsim::StateVector encode_single(std::span<const Real> waveform) const;

  /// Synthesize an explicit state-preparation circuit for the same batch
  /// (uniformly controlled RY decomposition per register). Used for depth
  /// analysis and QASM export; simulation itself uses direct injection.
  [[nodiscard]] qsim::Circuit prep_circuit(
      std::span<const std::vector<Real>* const> waveforms) const;

  /// The classical data, as the encoder normalization reshapes it: the
  /// per-group jointly normalized batch vectors, concatenated. Lets the
  /// Figure 6 bench measure how much of the waveform survives quantum
  /// normalization.
  [[nodiscard]] std::vector<Real> normalized_view(
      std::span<const std::vector<Real>* const> waveforms) const;

 private:
  [[nodiscard]] std::vector<std::vector<Real>> build_register_vectors(
      std::span<const std::vector<Real>* const> waveforms) const;

  const QubitLayout* layout_;
};

}  // namespace qugeo::core
