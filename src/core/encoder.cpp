#include "core/encoder.h"

#include <stdexcept>

#include "common/math_utils.h"
#include "qsim/encoding.h"

namespace qugeo::core {

std::vector<std::vector<Real>> StEncoder::build_register_vectors(
    std::span<const std::vector<Real>* const> waveforms) const {
  const QubitLayout& lay = *layout_;
  if (waveforms.size() != lay.batch_size())
    throw std::invalid_argument("StEncoder: batch size mismatch");
  for (const auto* w : waveforms)
    if (!w || w->size() != lay.sample_size())
      throw std::invalid_argument("StEncoder: waveform size mismatch");

  std::vector<std::vector<Real>> registers(lay.num_groups());
  Index chunk_offset = 0;
  for (Index g = 0; g < lay.num_groups(); ++g) {
    const GroupRegister& reg = lay.group(g);
    const Index chunk = reg.data_dim();
    std::vector<Real>& v = registers[g];
    v.reserve(chunk * lay.batch_size());
    // Batch index = high bits of the register, so sample b fills
    // [b*chunk, (b+1)*chunk) — concatenation in batch order.
    for (const auto* w : waveforms)
      v.insert(v.end(), w->begin() + static_cast<std::ptrdiff_t>(chunk_offset),
               w->begin() + static_cast<std::ptrdiff_t>(chunk_offset + chunk));
    normalize_l2(v);  // joint normalization across the whole batch
    chunk_offset += chunk;
  }
  return registers;
}

qsim::StateVector StEncoder::encode(
    std::span<const std::vector<Real>* const> waveforms) const {
  const auto registers = build_register_vectors(waveforms);
  qsim::StateVector psi(layout_->total_qubits());
  qsim::encode_grouped_amplitudes(registers, psi);
  return psi;
}

qsim::StateVector StEncoder::encode_single(std::span<const Real> waveform) const {
  const std::vector<Real> w(waveform.begin(), waveform.end());
  const std::vector<Real>* ptr = &w;
  return encode(std::span<const std::vector<Real>* const>(&ptr, 1));
}

qsim::Circuit StEncoder::prep_circuit(
    std::span<const std::vector<Real>* const> waveforms) const {
  const auto registers = build_register_vectors(waveforms);
  qsim::Circuit c(layout_->total_qubits());
  for (Index g = 0; g < layout_->num_groups(); ++g) {
    qsim::Circuit reg_prep = qsim::state_prep_circuit(registers[g]);
    // Shift the register circuit onto its global qubit offset.
    const Index offset = layout_->group(g).offset;
    for (const qsim::Op& op : reg_prep.ops()) {
      qsim::Op shifted = op;
      shifted.qubits[0] += offset;
      if (qsim::gate_qubit_count(op.kind) == 2) shifted.qubits[1] += offset;
      switch (shifted.kind) {
        case qsim::GateKind::kRY:
          c.ry(shifted.qubits[0], shifted.literals[0]);
          break;
        case qsim::GateKind::kCX:
          c.cx(shifted.qubits[0], shifted.qubits[1]);
          break;
        default:
          throw std::logic_error("StEncoder: unexpected gate in prep circuit");
      }
    }
  }
  return c;
}

std::vector<Real> StEncoder::normalized_view(
    std::span<const std::vector<Real>* const> waveforms) const {
  const auto registers = build_register_vectors(waveforms);
  std::vector<Real> flat;
  for (const auto& r : registers) flat.insert(flat.end(), r.begin(), r.end());
  return flat;
}

}  // namespace qugeo::core
