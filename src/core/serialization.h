// Trained-model and training-run persistence.
//
// Two artifact kinds share the integrity-checked framed container from
// common/io (atomic temp+fsync+rename writes, CRC-32 payload guard):
//
//  * Model checkpoints (save_model/load_model): the flat parameter vector
//    plus a structural fingerprint of the model configuration, so a loaded
//    checkpoint can never be silently applied to a mismatched
//    architecture.
//  * Training checkpoints (TrainCheckpoint): everything a killed training
//    run needs to resume bit-identically — parameters, the full Adam
//    optimizer state (nn/optimizer AdamFlat: t, m, v), the shuffle-RNG
//    state, the epoch counter and curve so far, plus the model fingerprint
//    and a training-config fingerprint guarding against resuming under
//    different hyperparameters.
//
// Failure taxonomy: every way a checkpoint file can be bad is detected and
// reported distinctly (CheckpointError::fault()), so the trainer's resume
// path can degrade gracefully — skip the bad slot, fall back to the next
// newest valid one — while tests pin the exact failure mode.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "core/model.h"
#include "core/trainer.h"

namespace qugeo::core {

/// Structural fingerprint (qubits per group, batch, blocks, decoder, map
/// shape) — two models with equal fingerprints accept each other's params.
[[nodiscard]] std::uint64_t model_fingerprint(const ModelConfig& config);

/// Hyperparameter fingerprint of a training run (epochs, initial lr,
/// shuffle seed, accumulation granularity, gradient shard count). Resuming
/// a checkpoint written
/// under a different fingerprint would silently change the optimization
/// trajectory, so it is rejected as kConfigMismatch instead.
[[nodiscard]] std::uint64_t train_fingerprint(const TrainConfig& config);

/// Write the model's parameters (+fingerprint) to `path` (atomic, CRC'd).
void save_model(const std::filesystem::path& path, const QuGeoModel& model);

/// Load parameters into `model`. Throws std::runtime_error naming the
/// path, the expected vs stored fingerprint, and the parameter counts on
/// any mismatch.
void load_model(const std::filesystem::path& path, QuGeoModel& model);

// ------------------------------------------------- training checkpoints --

/// The distinct ways a checkpoint file can be unusable. Every kind is
/// detected separately and carries its own message; the resume path
/// treats all of them as "skip this slot" while tests (and operators)
/// see exactly what was wrong.
enum class CheckpointFault : std::uint8_t {
  kMissing,              ///< slot file cannot be opened
  kBadMagic,             ///< not a framed checkpoint file at all
  kTruncated,            ///< torn write: shorter than its header claims
  kCrcMismatch,          ///< payload bytes corrupted on disk
  kBadVersion,           ///< written by an incompatible format revision
  kMalformed,            ///< frame is intact but the fields are inconsistent
  kFingerprintMismatch,  ///< checkpoint belongs to a different architecture
  kConfigMismatch,       ///< different training hyperparameters
};

/// Human-readable name of a CheckpointFault ("crc-mismatch", ...).
[[nodiscard]] const char* checkpoint_fault_name(CheckpointFault fault) noexcept;

/// Typed checkpoint failure: fatal for the file it names (the caller may
/// still degrade to another slot). The message always includes the path.
class CheckpointError : public FatalError {
 public:
  CheckpointError(CheckpointFault fault, std::string message)
      : FatalError(std::move(message)), fault_(fault) {}
  [[nodiscard]] CheckpointFault fault() const noexcept { return fault_; }

 private:
  CheckpointFault fault_;
};

/// Complete resumable training state. `version` is the on-disk format
/// revision; bumping it invalidates older files loudly (kBadVersion)
/// instead of misparsing them.
struct TrainCheckpoint {
  static constexpr std::uint32_t kVersion = 1;

  std::uint64_t model_fp = 0;        ///< model_fingerprint of the run
  std::uint64_t train_fp = 0;        ///< train_fingerprint of the run
  std::uint64_t epochs_completed = 0;
  RngState shuffle_rng;              ///< state AFTER the last epoch's draws
  std::uint64_t adam_t = 0;          ///< Adam update count
  std::vector<Real> params;          ///< flat parameter vector
  std::vector<Real> adam_m, adam_v;  ///< Adam moment estimates
  std::vector<EpochRecord> curve;    ///< records for epochs [0, completed)
};

/// Path of rotation slot `slot` for a checkpoint stem:
/// `<stem>.<slot>`.
[[nodiscard]] std::filesystem::path checkpoint_slot_path(
    const std::filesystem::path& stem, std::size_t slot);

/// Atomically persist a checkpoint (framed, CRC-guarded). The `curve`
/// size must equal `epochs_completed` and the moment sizes must match
/// `params`; violations throw std::invalid_argument before any IO.
void save_train_checkpoint(const std::filesystem::path& path,
                           const TrainCheckpoint& checkpoint);

/// Load and verify one checkpoint file. Throws CheckpointError with the
/// precise fault kind; never returns a partially-parsed checkpoint.
[[nodiscard]] TrainCheckpoint load_train_checkpoint(
    const std::filesystem::path& path);

/// Scan the rotation `<stem>.<0..keep)` for the newest valid checkpoint
/// matching both fingerprints. Invalid slots — torn, corrupt, mismatched —
/// are skipped with a fault::report_degradation record naming the slot and
/// fault; nullopt when no slot is usable (the caller starts from scratch).
[[nodiscard]] std::optional<TrainCheckpoint> find_resume_checkpoint(
    const std::filesystem::path& stem, std::size_t keep,
    std::uint64_t expected_model_fp, std::uint64_t expected_train_fp);

}  // namespace qugeo::core
