// Trained-model persistence: save/load the flat parameter vector together
// with a structural fingerprint of the model configuration, so a loaded
// checkpoint can never be silently applied to a mismatched architecture.
#pragma once

#include <filesystem>

#include "core/model.h"

namespace qugeo::core {

/// Structural fingerprint (qubits per group, batch, blocks, decoder, map
/// shape) — two models with equal fingerprints accept each other's params.
[[nodiscard]] std::uint64_t model_fingerprint(const ModelConfig& config);

/// Write the model's parameters (+fingerprint) to `path`.
void save_model(const std::filesystem::path& path, const QuGeoModel& model);

/// Load parameters into `model`. Throws std::runtime_error if the stored
/// fingerprint or parameter count does not match.
void load_model(const std::filesystem::path& path, QuGeoModel& model);

}  // namespace qugeo::core
