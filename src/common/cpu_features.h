// Runtime CPU-feature detection and the process-wide SIMD dispatch mode.
//
// The statevector and FDTD hot kernels exist in two variants: the portable
// scalar code (the reference semantics every test pins) and AVX2/FMA
// intrinsic versions compiled into dedicated -mavx2 translation units
// (qsim/kernels_avx2.cpp, seismic/fdtd_avx2.cpp). Which variant runs is a
// pure runtime decision made per kernel call through active_level():
//
//   QUGEO_SIMD / ExecutionConfig::simd   (mode: auto | avx2 | scalar)
//          |
//          v
//   resolve_simd_level(mode)  -- auto picks AVX2 iff the CPU supports it
//          |                     AND the AVX2 TUs were compiled in;
//          v                     forcing avx2 without support degrades
//   thread-local override  >  process-global default  ->  SimdLevel
//
// The scalar level reproduces the pre-SIMD results bit-exactly (the scalar
// kernel bodies are untouched); the AVX2 level matches scalar to <= 1e-12
// per amplitude (FMA contraction is the only difference), pinned by
// test_qsim_kernels.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace qugeo::simd {

/// What the user asked for (config/env). kAuto defers to the CPU probe.
enum class SimdMode : std::uint8_t { kAuto, kAvx2, kScalar };

/// What the kernels actually run. Only levels whose translation units were
/// compiled in (QUGEO_AVX2_KERNELS) and whose instructions the CPU executes
/// are ever active.
enum class SimdLevel : std::uint8_t { kScalar, kAvx2 };

/// "auto" | "avx2" | "scalar".
[[nodiscard]] std::string_view simd_mode_name(SimdMode mode) noexcept;

/// Inverse of simd_mode_name; nullopt on unknown names.
[[nodiscard]] std::optional<SimdMode> parse_simd_mode(
    std::string_view name) noexcept;

/// "scalar" | "avx2".
[[nodiscard]] std::string_view simd_level_name(SimdLevel level) noexcept;

/// True iff this binary carries the AVX2 kernel TUs AND the running CPU
/// reports AVX2+FMA. Always false when QUGEO_AVX2_KERNELS was off at build
/// time (non-x86 targets, MSVC) — the two facts must agree or dispatch
/// would jump into illegal instructions.
[[nodiscard]] bool cpu_supports_avx2() noexcept;

/// Resolve a requested mode to the level the kernels will run: kAuto picks
/// AVX2 iff cpu_supports_avx2(); forcing kAvx2 without support reports a
/// graceful degradation (common/fault.h) once and falls back to scalar.
[[nodiscard]] SimdLevel resolve_simd_level(SimdMode mode);

/// The dispatch level kernels consult on every call: the calling thread's
/// ScopedSimdMode override if one is installed, the process-global default
/// otherwise. One relaxed atomic load — negligible next to any kernel.
[[nodiscard]] SimdLevel active_level() noexcept;

/// Set the process-global default level (resolving `mode` as above). The
/// QUGEO_SIMD environment override and tests use this; backends install
/// thread-local ScopedSimdMode overrides instead so parallel call sites
/// cannot race on the global.
void set_global_simd_mode(SimdMode mode);

/// Apply the QUGEO_SIMD environment variable ("auto" | "avx2" | "scalar")
/// on top of `base`; unset leaves `base` untouched, an unknown value
/// throws std::invalid_argument.
[[nodiscard]] SimdMode simd_mode_from_env(SimdMode base);

/// RAII thread-local dispatch override: every kernel call on this thread
/// between construction and destruction uses resolve_simd_level(mode).
/// Nests (the previous override is restored). Used by the backends to
/// realize ExecutionConfig::simd without touching the process global.
class ScopedSimdMode {
 public:
  explicit ScopedSimdMode(SimdMode mode);
  ~ScopedSimdMode();
  ScopedSimdMode(const ScopedSimdMode&) = delete;
  ScopedSimdMode& operator=(const ScopedSimdMode&) = delete;

 private:
  int saved_;  ///< previous thread-local override (-1 = none)
};

}  // namespace qugeo::simd
