// Simple binary tensor and CSV serialization used by benches/examples to
// persist datasets and training curves.
#pragma once

#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace qugeo {

/// Write a flat real array with a shape header to a little-endian binary
/// file ("QGT1" magic + rank + dims + float64 payload).
void save_tensor(const std::filesystem::path& path,
                 std::span<const Real> data,
                 std::span<const std::size_t> shape);

/// Loaded tensor payload.
struct LoadedTensor {
  std::vector<std::size_t> shape;
  std::vector<Real> data;
};

/// Read a tensor written by save_tensor. Throws std::runtime_error on
/// malformed files.
[[nodiscard]] LoadedTensor load_tensor(const std::filesystem::path& path);

/// Incremental CSV writer (header row + data rows), for training curves.
class CsvWriter {
 public:
  CsvWriter(const std::filesystem::path& path, std::vector<std::string> columns);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Append one row; size must match the header column count.
  void append(std::span<const Real> row);

 private:
  std::FILE* file_ = nullptr;
  std::size_t columns_ = 0;
};

}  // namespace qugeo
