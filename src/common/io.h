// Binary tensor, framed-container, and CSV serialization used to persist
// datasets, trained models, training checkpoints, and training curves.
//
// Integrity model. Every binary file written here goes through one framed
// container: a "QGF1" magic + format version + payload size + CRC-32
// header, written atomically (temp file + fsync + rename) so a crash
// mid-write can never tear a previously valid file, and a torn or
// bit-flipped payload is detected at read time instead of being silently
// parsed. Readers sniff the first four bytes, so legacy headerless files
// (pre-frame "QGT1" tensors) keep loading unchanged.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace qugeo {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte range.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t bytes);

/// Typed failure of the framed-container layer; `kind` lets callers
/// distinguish (and report distinctly) how a file is bad.
class FrameError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    kMissing,      ///< the file cannot be opened
    kBadMagic,     ///< not a framed file (or not the expected payload)
    kTruncated,    ///< shorter than its header claims (torn write)
    kCrcMismatch,  ///< payload bytes do not match the stored CRC-32
  };
  FrameError(Kind kind, std::string message)
      : std::runtime_error(std::move(message)), kind_(kind) {}
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// A framed file's contents: the writer-declared format version plus the
/// CRC-verified payload bytes.
struct FramedPayload {
  std::uint32_t version = 0;
  std::vector<unsigned char> payload;
};

/// Atomically persist `payload` under a "QGF1" integrity header: the
/// bytes are written to `<path>.tmp`, flushed and fsync'd, then renamed
/// over `path` — so `path` either keeps its previous contents or holds
/// the complete new frame, never a torn mix. Fault sites:
/// `io.atomic_write` (before the temp write) and `io.rename` (after the
/// payload is durable, before the rename) make both crash windows
/// injectable.
void write_framed_file(const std::filesystem::path& path,
                       std::uint32_t version,
                       std::span<const unsigned char> payload);

/// Read and verify a framed file. Throws FrameError with the precise
/// failure kind (missing / bad magic / truncated / CRC mismatch); the
/// message always names the path.
[[nodiscard]] FramedPayload read_framed_file(const std::filesystem::path& path);

/// Write a flat real array with a shape header ("QGT1" magic + rank +
/// dims + float64 payload), wrapped in the framed container above.
void save_tensor(const std::filesystem::path& path,
                 std::span<const Real> data,
                 std::span<const std::size_t> shape);

/// Loaded tensor payload.
struct LoadedTensor {
  std::vector<std::size_t> shape;
  std::vector<Real> data;
};

/// Read a tensor written by save_tensor — framed ("QGF1") or legacy
/// headerless ("QGT1"), distinguished by sniffing the magic. Throws
/// FrameError / std::runtime_error on malformed files.
[[nodiscard]] LoadedTensor load_tensor(const std::filesystem::path& path);

/// Incremental CSV writer (header row + data rows), for training curves.
class CsvWriter {
 public:
  CsvWriter(const std::filesystem::path& path, std::vector<std::string> columns);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Append one row; size must match the header column count.
  void append(std::span<const Real> row);

 private:
  std::FILE* file_ = nullptr;
  std::size_t columns_ = 0;
};

}  // namespace qugeo
