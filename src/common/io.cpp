#include "common/io.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace qugeo {
namespace {

constexpr char kMagic[4] = {'Q', 'G', 'T', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::filesystem::path& path, const char* mode) {
  FilePtr f(std::fopen(path.string().c_str(), mode));
  if (!f) throw std::runtime_error("io: cannot open " + path.string());
  return f;
}

void write_or_throw(std::FILE* f, const void* buf, std::size_t bytes) {
  if (std::fwrite(buf, 1, bytes, f) != bytes)
    throw std::runtime_error("io: short write");
}

void read_or_throw(std::FILE* f, void* buf, std::size_t bytes) {
  if (std::fread(buf, 1, bytes, f) != bytes)
    throw std::runtime_error("io: short read");
}

}  // namespace

void save_tensor(const std::filesystem::path& path,
                 std::span<const Real> data,
                 std::span<const std::size_t> shape) {
  std::size_t count = 1;
  for (std::size_t d : shape) count *= d;
  if (count != data.size())
    throw std::invalid_argument("save_tensor: shape does not match data size");

  const FilePtr f = open_or_throw(path, "wb");
  write_or_throw(f.get(), kMagic, sizeof(kMagic));
  const std::uint64_t rank = shape.size();
  write_or_throw(f.get(), &rank, sizeof(rank));
  for (std::size_t d : shape) {
    const std::uint64_t d64 = d;
    write_or_throw(f.get(), &d64, sizeof(d64));
  }
  write_or_throw(f.get(), data.data(), data.size() * sizeof(Real));
}

LoadedTensor load_tensor(const std::filesystem::path& path) {
  const FilePtr f = open_or_throw(path, "rb");
  char magic[4];
  read_or_throw(f.get(), magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("load_tensor: bad magic in " + path.string());

  std::uint64_t rank = 0;
  read_or_throw(f.get(), &rank, sizeof(rank));
  if (rank > 16) throw std::runtime_error("load_tensor: implausible rank");

  LoadedTensor t;
  t.shape.resize(rank);
  std::size_t count = 1;
  for (auto& d : t.shape) {
    std::uint64_t d64 = 0;
    read_or_throw(f.get(), &d64, sizeof(d64));
    d = static_cast<std::size_t>(d64);
    count *= d;
  }
  t.data.resize(count);
  read_or_throw(f.get(), t.data.data(), count * sizeof(Real));
  return t;
}

CsvWriter::CsvWriter(const std::filesystem::path& path,
                     std::vector<std::string> columns)
    : columns_(columns.size()) {
  file_ = std::fopen(path.string().c_str(), "w");
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path.string());
  for (std::size_t i = 0; i < columns.size(); ++i)
    std::fprintf(file_, "%s%s", columns[i].c_str(),
                 i + 1 == columns.size() ? "\n" : ",");
}

CsvWriter::~CsvWriter() {
  if (file_) std::fclose(file_);
}

void CsvWriter::append(std::span<const Real> row) {
  if (row.size() != columns_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < row.size(); ++i)
    std::fprintf(file_, "%.10g%s", row[i], i + 1 == row.size() ? "\n" : ",");
}

}  // namespace qugeo
