#include "common/io.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/fault.h"

namespace qugeo {
namespace {

constexpr char kTensorMagic[4] = {'Q', 'G', 'T', '1'};
constexpr char kFrameMagic[4] = {'Q', 'G', 'F', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::filesystem::path& path, const char* mode) {
  FilePtr f(std::fopen(path.string().c_str(), mode));
  if (!f) throw std::runtime_error("io: cannot open " + path.string());
  return f;
}

void write_or_throw(std::FILE* f, const void* buf, std::size_t bytes) {
  if (std::fwrite(buf, 1, bytes, f) != bytes)
    throw std::runtime_error("io: short write");
}

/// CRC-32 lookup table for the reflected IEEE polynomial, built once.
const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// Bounds-checked little reader over an in-memory byte buffer.
class ByteReader {
 public:
  ByteReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  void read(void* out, std::size_t bytes) {
    if (pos_ + bytes > size_)
      throw std::runtime_error("io: buffer truncated");
    std::memcpy(out, data_ + pos_, bytes);
    pos_ += bytes;
  }

  template <typename T>
  T read_as() {
    T v;
    read(&v, sizeof(T));
    return v;
  }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void append_bytes(std::vector<unsigned char>& buf, const void* data,
                  std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  buf.insert(buf.end(), p, p + bytes);
}

/// Whole-file slurp (binary). Throws FrameError::kMissing when the file
/// cannot be opened.
std::vector<unsigned char> read_all_bytes(const std::filesystem::path& path) {
  FilePtr f(std::fopen(path.string().c_str(), "rb"));
  if (!f)
    throw FrameError(FrameError::Kind::kMissing,
                     "io: cannot open " + path.string());
  std::vector<unsigned char> bytes;
  unsigned char chunk[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(chunk, 1, sizeof(chunk), f.get());
    bytes.insert(bytes.end(), chunk, chunk + n);
    if (n < sizeof(chunk)) break;
  }
  return bytes;
}

LoadedTensor parse_tensor_body(const unsigned char* data, std::size_t size,
                               const std::filesystem::path& path) {
  ByteReader r(data, size);
  char magic[4];
  r.read(magic, sizeof(magic));
  if (std::memcmp(magic, kTensorMagic, sizeof(magic)) != 0)
    throw std::runtime_error("load_tensor: bad magic in " + path.string());
  const auto rank = r.read_as<std::uint64_t>();
  if (rank > 16) throw std::runtime_error("load_tensor: implausible rank");
  LoadedTensor t;
  t.shape.resize(rank);
  std::size_t count = 1;
  for (auto& d : t.shape) {
    d = static_cast<std::size_t>(r.read_as<std::uint64_t>());
    count *= d;
  }
  t.data.resize(count);
  r.read(t.data.data(), count * sizeof(Real));
  return t;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes) {
  const auto& table = crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i)
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void write_framed_file(const std::filesystem::path& path,
                       std::uint32_t version,
                       std::span<const unsigned char> payload) {
  fault::site("io.atomic_write");
  const std::filesystem::path tmp =
      std::filesystem::path(path.string() + ".tmp");
  {
    const FilePtr f = open_or_throw(tmp, "wb");
    const std::uint64_t payload_bytes = payload.size();
    const std::uint32_t crc = crc32(payload.data(), payload.size());
    write_or_throw(f.get(), kFrameMagic, sizeof(kFrameMagic));
    write_or_throw(f.get(), &version, sizeof(version));
    write_or_throw(f.get(), &payload_bytes, sizeof(payload_bytes));
    write_or_throw(f.get(), &crc, sizeof(crc));
    if (!payload.empty())
      write_or_throw(f.get(), payload.data(), payload.size());
    if (std::fflush(f.get()) != 0)
      throw std::runtime_error("io: flush failed for " + tmp.string());
#ifndef _WIN32
    // Make the bytes durable BEFORE the rename publishes them: rename is
    // atomic in the namespace, but without the fsync a crash could leave
    // the new name pointing at unwritten data.
    if (::fsync(::fileno(f.get())) != 0)
      throw std::runtime_error("io: fsync failed for " + tmp.string());
#endif
  }
  // Simulated crash window between durability and publication: the temp
  // file survives (as after a real crash), `path` keeps its old contents.
  fault::site("io.rename");
  std::filesystem::rename(tmp, path);
}

FramedPayload read_framed_file(const std::filesystem::path& path) {
  const std::vector<unsigned char> bytes = read_all_bytes(path);
  constexpr std::size_t kHeaderBytes =
      sizeof(kFrameMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t) +
      sizeof(std::uint32_t);
  if (bytes.size() < sizeof(kFrameMagic) ||
      std::memcmp(bytes.data(), kFrameMagic, sizeof(kFrameMagic)) != 0)
    throw FrameError(FrameError::Kind::kBadMagic,
                     "io: " + path.string() + " is not a framed (QGF1) file");
  if (bytes.size() < kHeaderBytes)
    throw FrameError(FrameError::Kind::kTruncated,
                     "io: " + path.string() + " is truncated inside the frame "
                     "header (" + std::to_string(bytes.size()) + " bytes)");
  FramedPayload out;
  std::uint64_t payload_bytes = 0;
  std::uint32_t stored_crc = 0;
  std::memcpy(&out.version, bytes.data() + 4, sizeof(out.version));
  std::memcpy(&payload_bytes, bytes.data() + 8, sizeof(payload_bytes));
  std::memcpy(&stored_crc, bytes.data() + 16, sizeof(stored_crc));
  if (bytes.size() < kHeaderBytes + payload_bytes)
    throw FrameError(
        FrameError::Kind::kTruncated,
        "io: " + path.string() + " is truncated: header declares " +
            std::to_string(payload_bytes) + " payload bytes, file holds " +
            std::to_string(bytes.size() - kHeaderBytes));
  out.payload.assign(bytes.begin() + kHeaderBytes,
                     bytes.begin() + static_cast<std::ptrdiff_t>(
                                         kHeaderBytes + payload_bytes));
  const std::uint32_t actual_crc = crc32(out.payload.data(), out.payload.size());
  if (actual_crc != stored_crc)
    throw FrameError(FrameError::Kind::kCrcMismatch,
                     "io: " + path.string() + " payload CRC mismatch (stored " +
                         std::to_string(stored_crc) + ", computed " +
                         std::to_string(actual_crc) + ")");
  return out;
}

void save_tensor(const std::filesystem::path& path,
                 std::span<const Real> data,
                 std::span<const std::size_t> shape) {
  std::size_t count = 1;
  for (std::size_t d : shape) count *= d;
  if (count != data.size())
    throw std::invalid_argument("save_tensor: shape does not match data size");

  std::vector<unsigned char> body;
  body.reserve(sizeof(kTensorMagic) + sizeof(std::uint64_t) * (1 + shape.size()) +
               data.size() * sizeof(Real));
  append_bytes(body, kTensorMagic, sizeof(kTensorMagic));
  const std::uint64_t rank = shape.size();
  append_bytes(body, &rank, sizeof(rank));
  for (std::size_t d : shape) {
    const std::uint64_t d64 = d;
    append_bytes(body, &d64, sizeof(d64));
  }
  append_bytes(body, data.data(), data.size() * sizeof(Real));
  write_framed_file(path, 1, body);
}

LoadedTensor load_tensor(const std::filesystem::path& path) {
  // Sniff the magic: framed tensors carry the legacy body as their
  // payload, so both paths converge on the same parser and old headerless
  // files keep loading.
  std::vector<unsigned char> bytes;
  try {
    bytes = read_all_bytes(path);
  } catch (const FrameError& e) {
    throw std::runtime_error(e.what());  // missing file: legacy error type
  }
  if (bytes.size() >= sizeof(kFrameMagic) &&
      std::memcmp(bytes.data(), kFrameMagic, sizeof(kFrameMagic)) == 0) {
    const FramedPayload frame = read_framed_file(path);
    return parse_tensor_body(frame.payload.data(), frame.payload.size(), path);
  }
  return parse_tensor_body(bytes.data(), bytes.size(), path);
}

CsvWriter::CsvWriter(const std::filesystem::path& path,
                     std::vector<std::string> columns)
    : columns_(columns.size()) {
  file_ = std::fopen(path.string().c_str(), "w");
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path.string());
  for (std::size_t i = 0; i < columns.size(); ++i)
    std::fprintf(file_, "%s%s", columns[i].c_str(),
                 i + 1 == columns.size() ? "\n" : ",");
}

CsvWriter::~CsvWriter() {
  if (file_) std::fclose(file_);
}

void CsvWriter::append(std::span<const Real> row) {
  if (row.size() != columns_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < row.size(); ++i)
    std::fprintf(file_, "%.10g%s", row[i], i + 1 == row.size() ? "\n" : ",");
}

}  // namespace qugeo
