// Fundamental scalar and index types shared across all QuGeo modules.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace qugeo {

/// Real scalar used by the quantum simulator (double for gradient fidelity).
using Real = double;

/// Complex amplitude type for state vectors and gate matrices.
using Complex = std::complex<Real>;

/// Real scalar used by the classical NN substrate (float matches PyTorch).
using F32 = float;

/// Index type for qubit positions and state-vector offsets.
using Index = std::size_t;

inline constexpr Real kPi = 3.14159265358979323846;

}  // namespace qugeo
