#include "common/fault.h"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace qugeo::fault {
namespace {

/// A live arming: the spec plus its hit counter and provenance. Scope
/// arms carry the id their FaultScope holds; the env arm has id 0.
struct ArmedFault {
  FaultSpec spec;
  std::size_t hits = 0;
  std::size_t id = 0;
  bool from_env = false;
};

struct Registry {
  Mutex mutex;
  std::vector<ArmedFault> armed QUGEO_GUARDED_BY(mutex);
  std::size_t next_id QUGEO_GUARDED_BY(mutex) = 1;
  bool env_loaded QUGEO_GUARDED_BY(mutex) = false;
  /// Fast-path gate: true iff `armed` is non-empty OR the env has not
  /// been consulted yet (the first site() hit pays the env parse).
  std::atomic<bool> check_needed{true};

  static Registry& instance() {
    static Registry r;
    return r;
  }

  void refresh_gate() QUGEO_REQUIRES(mutex) {
    check_needed.store(!armed.empty() || !env_loaded,
                       std::memory_order_release);
  }

  void load_env_locked() QUGEO_REQUIRES(mutex) {
    if (env_loaded) return;
    env_loaded = true;
    if (const char* spec = std::getenv("QUGEO_FAULT")) {
      ArmedFault f;
      f.spec = parse_fault_spec(spec);
      f.from_env = true;
      armed.push_back(std::move(f));
    }
    refresh_gate();
  }
};

[[noreturn]] void fire(const FaultSpec& spec, std::size_t hit) {
  const std::string msg = "injected fault at " + spec.site + " (hit " +
                          std::to_string(hit) + ")";
  if (spec.kind == FaultKind::kFatal) throw FatalError(msg);
  throw TransientError(msg);
}

}  // namespace

FaultSpec parse_fault_spec(std::string_view spec) {
  const auto fail = [&](const char* why) {
    throw std::invalid_argument(
        "QUGEO_FAULT: expected <site>:<nth>[:<count>], got '" +
        std::string(spec) + "' (" + why + ")");
  };
  FaultSpec out;
  const std::size_t first = spec.find(':');
  if (first == std::string_view::npos || first == 0) fail("missing ':<nth>'");
  out.site = std::string(spec.substr(0, first));
  std::string_view rest = spec.substr(first + 1);
  std::string_view nth = rest;
  std::string_view count;
  const std::size_t second = rest.find(':');
  if (second != std::string_view::npos) {
    nth = rest.substr(0, second);
    count = rest.substr(second + 1);
  }
  const auto parse_count = [&](std::string_view s, const char* what) {
    std::size_t v = 0;
    if (s.empty()) fail(what);
    for (const char c : s) {
      if (c < '0' || c > '9') fail(what);
      v = v * 10 + static_cast<std::size_t>(c - '0');
    }
    return v;
  };
  out.nth = parse_count(nth, "nth must be a positive integer");
  if (out.nth == 0) fail("nth is 1-based; 0 never fires");
  if (second != std::string_view::npos)
    out.count = count == "*"
                    ? 0
                    : parse_count(count, "count must be an integer or '*'");
  return out;
}

void site(const char* name) {
  Registry& reg = Registry::instance();
  if (!reg.check_needed.load(std::memory_order_acquire)) return;
  MutexLock lk(reg.mutex);
  reg.load_env_locked();
  for (ArmedFault& f : reg.armed) {
    if (f.spec.site != name) continue;
    const std::size_t hit = ++f.hits;
    const bool in_window =
        hit >= f.spec.nth &&
        (f.spec.count == 0 || hit < f.spec.nth + f.spec.count);
    if (in_window) fire(f.spec, hit);
  }
}

bool any_fault_armed() noexcept {
  Registry& reg = Registry::instance();
  if (!reg.check_needed.load(std::memory_order_acquire)) return false;
  MutexLock lk(reg.mutex);
  reg.load_env_locked();
  return !reg.armed.empty();
}

void reload_from_env() {
  Registry& reg = Registry::instance();
  MutexLock lk(reg.mutex);
  std::erase_if(reg.armed, [](const ArmedFault& f) { return f.from_env; });
  reg.env_loaded = false;
  reg.load_env_locked();
}

FaultScope::FaultScope(FaultSpec spec) {
  Registry& reg = Registry::instance();
  MutexLock lk(reg.mutex);
  ArmedFault f;
  f.spec = std::move(spec);
  f.id = reg.next_id++;
  id_ = f.id;
  reg.armed.push_back(std::move(f));
  reg.refresh_gate();
}

FaultScope::FaultScope(std::string site_name, std::size_t nth,
                       std::size_t count, FaultKind kind)
    : FaultScope(FaultSpec{std::move(site_name), nth, count, kind}) {}

FaultScope::~FaultScope() {
  Registry& reg = Registry::instance();
  MutexLock lk(reg.mutex);
  std::erase_if(reg.armed, [&](const ArmedFault& f) { return f.id == id_; });
  reg.refresh_gate();
}

std::size_t FaultScope::hits() const {
  Registry& reg = Registry::instance();
  MutexLock lk(reg.mutex);
  for (const ArmedFault& f : reg.armed)
    if (f.id == id_) return f.hits;
  return 0;
}

// ------------------------------------------------------------------ retry --

std::vector<std::chrono::milliseconds> backoff_delays(
    const RetryPolicy& policy) {
  std::vector<std::chrono::milliseconds> delays;
  if (policy.max_attempts <= 1) return delays;
  delays.reserve(policy.max_attempts - 1);
  double ms = static_cast<double>(policy.initial_delay.count());
  const double cap = static_cast<double>(policy.max_delay.count());
  for (std::size_t k = 0; k + 1 < policy.max_attempts; ++k) {
    const double clamped = ms < cap ? ms : cap;
    delays.emplace_back(static_cast<std::chrono::milliseconds::rep>(clamped));
    ms *= policy.multiplier;
  }
  return delays;
}

namespace detail {

void wait_before_retry(const RetryPolicy& policy, std::size_t attempt,
                       std::chrono::milliseconds delay) {
  if (policy.on_retry) {
    policy.on_retry(attempt, delay);
    return;
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
}

}  // namespace detail

// ----------------------------------------------------------- degradation --

namespace {

struct DegradationLog {
  Mutex mutex;
  std::vector<DegradationEvent> events QUGEO_GUARDED_BY(mutex);

  static DegradationLog& instance() {
    static DegradationLog log;
    return log;
  }
};

/// Bound on retained events: enough for any realistic run; the oldest
/// entries are dropped first so recent degradations stay visible.
constexpr std::size_t kMaxDegradationEvents = 256;

}  // namespace

void report_degradation(std::string component, std::string detail) {
  log_warn("degradation: ", component, ": ", detail);
  DegradationLog& log = DegradationLog::instance();
  MutexLock lk(log.mutex);
  if (log.events.size() >= kMaxDegradationEvents)
    log.events.erase(log.events.begin());
  log.events.push_back({std::move(component), std::move(detail)});
}

std::vector<DegradationEvent> degradation_events() {
  DegradationLog& log = DegradationLog::instance();
  MutexLock lk(log.mutex);
  return log.events;
}

void clear_degradation_events() {
  DegradationLog& log = DegradationLog::instance();
  MutexLock lk(log.mutex);
  log.events.clear();
}

}  // namespace qugeo::fault
