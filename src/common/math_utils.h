// Small numeric helpers used across modules.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/types.h"

namespace qugeo {

/// True iff @p x is a power of two (0 is not).
[[nodiscard]] constexpr bool is_pow2(std::size_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); requires x > 0.
[[nodiscard]] constexpr std::size_t log2_floor(std::size_t x) noexcept {
  std::size_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// Exact log2 of a power of two; throws otherwise.
[[nodiscard]] inline std::size_t log2_exact(std::size_t x) {
  if (!is_pow2(x)) throw std::invalid_argument("log2_exact: not a power of two");
  return log2_floor(x);
}

/// Smallest power of two >= x (x must be >= 1).
[[nodiscard]] constexpr std::size_t next_pow2(std::size_t x) noexcept {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Euclidean (L2) norm of a real span.
[[nodiscard]] inline Real l2_norm(std::span<const Real> v) noexcept {
  Real s = 0;
  for (Real x : v) s += x * x;
  return std::sqrt(s);
}

/// In-place L2 normalization; returns the original norm. A zero vector is
/// mapped to the |0...0> basis direction (first element 1).
inline Real normalize_l2(std::span<Real> v) noexcept {
  const Real n = l2_norm(v);
  if (n <= std::numeric_limits<Real>::min()) {
    if (!v.empty()) v[0] = Real(1);
    for (std::size_t i = 1; i < v.size(); ++i) v[i] = 0;
    return Real(0);
  }
  for (Real& x : v) x /= n;
  return n;
}

/// Mean of a span (0 for empty input).
[[nodiscard]] inline Real mean(std::span<const Real> v) noexcept {
  if (v.empty()) return 0;
  return std::accumulate(v.begin(), v.end(), Real(0)) / static_cast<Real>(v.size());
}

/// Clamp helper mirroring std::clamp with an assertion on the bound order.
template <typename T>
[[nodiscard]] constexpr T clamp(T x, T lo, T hi) noexcept {
  assert(lo <= hi);
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Linear interpolation.
[[nodiscard]] constexpr Real lerp(Real a, Real b, Real t) noexcept {
  return a + (b - a) * t;
}

/// Approximate floating-point equality with absolute + relative tolerance.
[[nodiscard]] inline bool approx_equal(Real a, Real b, Real atol = 1e-9,
                                       Real rtol = 1e-7) noexcept {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

}  // namespace qugeo
