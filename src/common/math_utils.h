// Small numeric helpers used across modules.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/types.h"

namespace qugeo {

/// True iff @p x is a power of two (0 is not).
[[nodiscard]] constexpr bool is_pow2(std::size_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); requires x > 0.
[[nodiscard]] constexpr std::size_t log2_floor(std::size_t x) noexcept {
  std::size_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// Exact log2 of a power of two; throws otherwise.
[[nodiscard]] inline std::size_t log2_exact(std::size_t x) {
  if (!is_pow2(x)) throw std::invalid_argument("log2_exact: not a power of two");
  return log2_floor(x);
}

/// Smallest power of two >= x (x must be >= 1).
[[nodiscard]] constexpr std::size_t next_pow2(std::size_t x) noexcept {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Euclidean (L2) norm of a real span.
[[nodiscard]] inline Real l2_norm(std::span<const Real> v) noexcept {
  Real s = 0;
  for (Real x : v) s += x * x;
  return std::sqrt(s);
}

/// In-place L2 normalization; returns the original norm. A zero vector is
/// mapped to the |0...0> basis direction (first element 1).
inline Real normalize_l2(std::span<Real> v) noexcept {
  const Real n = l2_norm(v);
  if (n <= std::numeric_limits<Real>::min()) {
    if (!v.empty()) v[0] = Real(1);
    for (std::size_t i = 1; i < v.size(); ++i) v[i] = 0;
    return Real(0);
  }
  for (Real& x : v) x /= n;
  return n;
}

/// Mean of a span (0 for empty input).
[[nodiscard]] inline Real mean(std::span<const Real> v) noexcept {
  if (v.empty()) return 0;
  return std::accumulate(v.begin(), v.end(), Real(0)) / static_cast<Real>(v.size());
}

/// Clamp helper mirroring std::clamp with an assertion on the bound order.
template <typename T>
[[nodiscard]] constexpr T clamp(T x, T lo, T hi) noexcept {
  assert(lo <= hi);
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Linear interpolation.
[[nodiscard]] constexpr Real lerp(Real a, Real b, Real t) noexcept {
  return a + (b - a) * t;
}

/// Complex product spelled out over real/imag parts. Bit-identical to the
/// finite-value path of operator*, but never calls the libm __muldc3 helper
/// (which GCC emits for std::complex to handle inf/nan edge cases) — this is
/// the difference between a libcall and four fused multiplies in the gate
/// kernels.
[[nodiscard]] inline Complex cmul(const Complex& a, const Complex& b) noexcept {
  return Complex{a.real() * b.real() - a.imag() * b.imag(),
                 a.real() * b.imag() + a.imag() * b.real()};
}

/// conj(a) * b, spelled out like cmul.
[[nodiscard]] inline Complex cmul_conj(const Complex& a, const Complex& b) noexcept {
  return Complex{a.real() * b.real() + a.imag() * b.imag(),
                 a.real() * b.imag() - a.imag() * b.real()};
}

/// Spread `j` so a zero bit appears at position `bit`: bits [0, bit) stay,
/// bits [bit, ...) shift up by one. The workhorse of branch-free half-space
/// iteration over a state vector.
[[nodiscard]] constexpr std::size_t insert_zero_bit(std::size_t j,
                                                    std::size_t bit) noexcept {
  const std::size_t lo = j & ((std::size_t{1} << bit) - 1);
  return ((j ^ lo) << 1) | lo;
}

/// Spread `j` so zero bits appear at positions `lo_bit` < `hi_bit` (quarter-
/// space iteration for two-qubit kernels).
[[nodiscard]] constexpr std::size_t insert_two_zero_bits(
    std::size_t j, std::size_t lo_bit, std::size_t hi_bit) noexcept {
  return insert_zero_bit(insert_zero_bit(j, lo_bit), hi_bit);
}

/// Approximate floating-point equality with absolute + relative tolerance.
[[nodiscard]] inline bool approx_equal(Real a, Real b, Real atol = 1e-9,
                                       Real rtol = 1e-7) noexcept {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

}  // namespace qugeo
