#include "common/rng.h"

#include <cassert>
#include <cmath>

#include "common/math_utils.h"

namespace qugeo {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.has_cached_normal = has_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Real Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<Real>(next_u64() >> 11) * 0x1.0p-53;
}

Real Rng::uniform(Real lo, Real hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = range * (UINT64_MAX / range);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

Real Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  Real u1 = uniform();
  while (u1 <= 0) u1 = uniform();
  const Real u2 = uniform();
  const Real r = std::sqrt(Real(-2) * std::log(u1));
  const Real theta = Real(2) * kPi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

Real Rng::normal(Real mu, Real sigma) { return mu + sigma * normal(); }

bool Rng::bernoulli(Real p) { return uniform() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

void Rng::fill_uniform(std::span<Real> out, Real lo, Real hi) {
  for (Real& x : out) x = uniform(lo, hi);
}

void Rng::fill_normal(std::span<Real> out, Real mu, Real sigma) {
  for (Real& x : out) x = normal(mu, sigma);
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace qugeo
