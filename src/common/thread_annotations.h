// Portable Clang Thread Safety Analysis annotations.
//
// Wrappers around the `thread_safety` attribute family so annotated code
// compiles everywhere: under Clang the macros expand to the real attributes
// and `-Wthread-safety` (promoted to an error in CI) statically checks every
// lock acquisition against the declared capability model; under GCC/MSVC
// they expand to nothing.
//
// Use together with the annotated qugeo::Mutex / MutexLock / CondVar
// wrappers in common/mutex.h — the analysis cannot see through a bare
// std::mutex, so mutex-protected state must be guarded by the annotated
// types for QUGEO_GUARDED_BY to mean anything.
#pragma once

#if defined(__clang__)
#define QUGEO_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define QUGEO_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability (e.g. a mutex type).
#define QUGEO_CAPABILITY(x) QUGEO_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define QUGEO_SCOPED_CAPABILITY QUGEO_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define QUGEO_GUARDED_BY(x) QUGEO_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define QUGEO_PT_GUARDED_BY(x) QUGEO_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that may only be called while holding the given capabilities.
#define QUGEO_REQUIRES(...) \
  QUGEO_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that acquires the given capabilities and holds them on return.
#define QUGEO_ACQUIRE(...) \
  QUGEO_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases the given capabilities (held on entry).
#define QUGEO_RELEASE(...) \
  QUGEO_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that acquires the capability only when it returns `ret`.
#define QUGEO_TRY_ACQUIRE(ret, ...) \
  QUGEO_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called while holding the given capabilities
/// (deadlock prevention for self-locking public APIs).
#define QUGEO_EXCLUDES(...) QUGEO_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that the calling context holds the capability (runtime-checked
/// elsewhere) without acquiring it.
#define QUGEO_ASSERT_CAPABILITY(x) \
  QUGEO_THREAD_ANNOTATION_(assert_capability(x))

/// Function returning a reference to the given capability.
#define QUGEO_RETURN_CAPABILITY(x) QUGEO_THREAD_ANNOTATION_(lock_returned(x))

/// Opt a function out of the analysis entirely. Last resort: every use
/// should carry a comment explaining why the analysis cannot model it.
#define QUGEO_NO_THREAD_SAFETY_ANALYSIS \
  QUGEO_THREAD_ANNOTATION_(no_thread_safety_analysis)
