// Fault-tolerance substrate: error taxonomy, deterministic fault
// injection, bounded retry with exponential backoff, and graceful-
// degradation reporting.
//
// Error taxonomy. Recoverable failures (a flaky write, an injected glitch)
// throw TransientError; callers on a recovery path (retry_on_transient)
// absorb a bounded number of them. Everything that must surface — retry
// exhaustion, corrupted data, contract violations — is a FatalError and
// propagates with full context (operation, path, attempt count).
//
// Fault injection. Production fault-handling code is dead code until the
// fault actually happens; this registry makes every fault reproducible on
// demand. Recovery-relevant code paths are threaded with named sites
// (`fault::site("checkpoint.read")`); a site is free when nothing is armed
// (one relaxed atomic load). Arming happens two ways:
//
//   * `QUGEO_FAULT=<site>:<nth>[:<count>]` — the nth hit of `site` in this
//     process (1-based) throws a TransientError, as do the `count - 1`
//     hits after it (count defaults to 1; `*` or 0 = every hit from nth
//     on). CI smoke legs use this to prove end-to-end recovery without
//     touching test code.
//   * `FaultScope` — RAII arming for tests: counts hits of its site from
//     construction, disarms (and restores any outer arming) on
//     destruction. Supports FaultKind::kFatal for testing that fatal
//     faults propagate instead of being retried.
//
// The registered site names are listed in docs/ARCHITECTURE.md
// ("Fault-site registry"); qugeo-lint enforces that every site appearing
// in src/ is exercised by at least one test and documented there.
//
// Degradation reporting. When a layer falls back to a weaker-but-working
// mode (an invalid checkpoint slot skipped, the oversize density →
// statevector substitution), it calls report_degradation; events are
// logged and recorded so tests — and operators — can see exactly what was
// given up, instead of the fallback being silent.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace qugeo {

/// A failure worth retrying: the same operation may succeed on the next
/// attempt (I/O glitches, injected faults). Absorbed by
/// fault::retry_on_transient up to the policy's attempt bound.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A failure that must propagate: corrupted data, violated contracts,
/// retry exhaustion. Never retried; messages carry full context.
class FatalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace fault {

enum class FaultKind : std::uint8_t {
  kTransient,  ///< fires a TransientError (retry paths recover)
  kFatal,      ///< fires a FatalError (must propagate)
};

/// One armed injection: fire at the nth hit (1-based) of `site`, and keep
/// firing for `count` consecutive hits (0 = every hit from nth on).
struct FaultSpec {
  std::string site;
  std::size_t nth = 1;
  std::size_t count = 1;
  FaultKind kind = FaultKind::kTransient;
};

/// Parse the QUGEO_FAULT grammar `<site>:<nth>[:<count>]` (count accepts
/// `*` for "forever"). Throws std::invalid_argument on malformed specs.
[[nodiscard]] FaultSpec parse_fault_spec(std::string_view spec);

/// Injection point: no-op unless a matching FaultSpec is armed (via
/// QUGEO_FAULT or a live FaultScope), in which case the armed hit throws.
/// The unarmed fast path is one relaxed atomic load — safe on hot paths.
void site(const char* name);

/// True when any spec (env or scope) is currently armed. Cheap.
[[nodiscard]] bool any_fault_armed() noexcept;

/// Re-read QUGEO_FAULT, replacing any previously env-armed spec and
/// resetting its hit counter. Tests use this after setenv; normal code
/// never needs it (the env is read once, lazily, at the first site hit).
void reload_from_env();

/// RAII test arming: counts hits of `spec.site` from construction and
/// disarms on destruction. Scopes nest; every live scope is checked, so
/// two scopes on different sites can be armed at once.
class FaultScope {
 public:
  explicit FaultScope(FaultSpec spec);
  FaultScope(std::string site_name, std::size_t nth, std::size_t count = 1,
             FaultKind kind = FaultKind::kTransient);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  /// Hits of this scope's site observed since construction (fired or not).
  [[nodiscard]] std::size_t hits() const;

 private:
  std::size_t id_;
};

// ---------------------------------------------------------------- retry --

/// Bounded exponential backoff: attempt k (1-based) failing transiently
/// waits initial_delay * multiplier^(k-1), capped at max_delay, before
/// attempt k+1; after max_attempts the retry gives up. The defaults keep
/// test latency negligible while still exercising the real sleep path.
struct RetryPolicy {
  std::size_t max_attempts = 3;
  std::chrono::milliseconds initial_delay{1};
  double multiplier = 2.0;
  std::chrono::milliseconds max_delay{50};
  /// Test hook: when set, called instead of sleeping with (attempt,
  /// delay) for every retry — lets unit tests pin the backoff sequence
  /// without waiting it out.
  std::function<void(std::size_t attempt, std::chrono::milliseconds delay)>
      on_retry;
};

/// The delay sequence a policy produces: one entry per possible retry
/// (max_attempts - 1 entries). Pure — the unit-testable core of the
/// backoff schedule.
[[nodiscard]] std::vector<std::chrono::milliseconds> backoff_delays(
    const RetryPolicy& policy);

namespace detail {
/// Sleep (or notify the test hook) before the next attempt.
void wait_before_retry(const RetryPolicy& policy, std::size_t attempt,
                       std::chrono::milliseconds delay);
}  // namespace detail

/// Run `fn`, absorbing TransientError up to policy.max_attempts attempts
/// with exponential backoff between them. On exhaustion throws FatalError
/// naming `what`, the attempt count, and the last transient failure.
/// FatalError (and any non-transient exception) propagates immediately —
/// retrying cannot fix it.
template <typename Fn>
auto retry_on_transient(std::string_view what, const RetryPolicy& policy,
                        Fn&& fn) -> decltype(fn()) {
  const std::vector<std::chrono::milliseconds> delays = backoff_delays(policy);
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const TransientError& e) {
      if (attempt >= policy.max_attempts || policy.max_attempts == 0)
        throw FatalError(std::string(what) + ": giving up after " +
                         std::to_string(attempt) +
                         " attempt(s); last transient error: " + e.what());
      detail::wait_before_retry(policy, attempt, delays[attempt - 1]);
    }
  }
}

// ---------------------------------------------------- degradation ladder --

/// One recorded fallback: `component` names the subsystem ("checkpoint",
/// "backend"), `detail` says what was degraded and why.
struct DegradationEvent {
  std::string component;
  std::string detail;
};

/// Record (and log at warn level) that a subsystem fell back to a
/// weaker-but-working mode instead of failing. Thread-safe.
void report_degradation(std::string component, std::string detail);

/// Snapshot of recorded events, oldest first (bounded; the newest events
/// win if the bound is hit). Tests assert on these.
[[nodiscard]] std::vector<DegradationEvent> degradation_events();

/// Clear the recorded events (test isolation).
void clear_degradation_events();

}  // namespace fault
}  // namespace qugeo
