#include "common/parallel.h"

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>

#include "common/env.h"
#include "common/fault.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace qugeo {
namespace {

/// Set while the current thread is executing pool work; nested
/// parallel_for calls detect it and run inline.
thread_local bool tl_in_pool_worker = false;

/// One fan-out: a copied chunk body plus atomic work-stealing cursors.
/// Held by shared_ptr so a worker that wakes late (after the submitting
/// call returned) still dereferences live memory and simply finds no
/// chunks left to claim.
struct Task {
  std::function<void(std::size_t, std::size_t)> body;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  // First exception thrown by a chunk body: remaining chunks are drained
  // without running, and the submitting thread rethrows after the fan-out
  // has fully quiesced (so no worker still references caller state).
  std::atomic<bool> failed{false};
  Mutex error_mutex;
  std::exception_ptr error QUGEO_GUARDED_BY(error_mutex);
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t size() QUGEO_EXCLUDES(config_mutex_) {
    MutexLock lk(config_mutex_);
    return target_threads_;
  }

  void resize(std::size_t n) QUGEO_EXCLUDES(config_mutex_) {
    MutexLock lk(config_mutex_);
    if (n == 0) n = env_default();
    if (n == target_threads_) return;
    stop_workers();
    target_threads_ = n;
    start_workers();
  }

  void run(std::size_t begin, std::size_t end, std::size_t grain,
           const std::function<void(std::size_t, std::size_t)>& body)
      QUGEO_EXCLUDES(config_mutex_, mutex_) {
    const std::size_t n = end - begin;
    if (grain == 0) grain = 1;
    std::size_t threads;
    {
      MutexLock lk(config_mutex_);
      threads = target_threads_;
    }
    // Inline when there is nothing to fan out to, when the range is too
    // small to amortize a dispatch, or when already inside a worker.
    if (tl_in_pool_worker || threads <= 1 || n <= grain) {
      if (n != 0) body(begin, end);
      return;
    }

    auto task = std::make_shared<Task>();
    task->body = body;
    task->begin = begin;
    task->end = end;
    // At most 4 chunks per thread keeps scheduling slack without letting
    // per-chunk dispatch dominate tiny grains.
    const std::size_t max_chunks = threads * 4;
    std::size_t chunk = (n + max_chunks - 1) / max_chunks;
    if (chunk < grain) chunk = grain;
    task->chunk = chunk;
    task->num_chunks = (n + chunk - 1) / chunk;

    {
      MutexLock lk(mutex_);
      current_ = task;
      ++generation_;
    }
    wake_.notify_all();

    work_on(*task);  // the submitting thread is pool member #0

    {
      MutexLock lk(mutex_);
      while (task->done.load(std::memory_order_acquire) != task->num_chunks)
        done_.wait(mutex_);
    }
    if (task->failed.load(std::memory_order_acquire)) {
      std::exception_ptr error;
      {
        MutexLock elk(task->error_mutex);
        error = task->error;
      }
      std::rethrow_exception(error);
    }
  }

 private:
  Pool() QUGEO_EXCLUDES(config_mutex_) {
    MutexLock lk(config_mutex_);
    target_threads_ = env_default();
    start_workers();
  }

  ~Pool() QUGEO_EXCLUDES(config_mutex_) {
    MutexLock lk(config_mutex_);
    stop_workers();
  }

  static std::size_t env_default() {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t fallback = hw == 0 ? 1 : hw;
    // Strict by design: QUGEO_THREADS=abc used to silently fall back to
    // hardware concurrency, hiding the typo. Malformed or out-of-range
    // values now throw, naming the variable (common/env.h).
    const std::size_t n = env::parse_env_positive("QUGEO_THREADS", fallback);
    if (n > 1024)
      throw std::invalid_argument(
          "QUGEO_THREADS: expected a thread count in [1, 1024], got " +
          std::to_string(n));
    return n;
  }

  void work_on(Task& task) QUGEO_EXCLUDES(mutex_) {
    const bool was_worker = tl_in_pool_worker;
    tl_in_pool_worker = true;
    std::size_t finished = 0;
    for (;;) {
      const std::size_t c = task.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= task.num_chunks) break;
      // After a failure, claimed chunks are drained (counted but not run)
      // so the submitting thread's completion wait stays bounded.
      if (!task.failed.load(std::memory_order_acquire)) {
        const std::size_t lo = task.begin + c * task.chunk;
        std::size_t hi = lo + task.chunk;
        if (hi > task.end) hi = task.end;
        try {
          fault::site("pool.task");
          task.body(lo, hi);
        } catch (...) {
          MutexLock elk(task.error_mutex);
          if (!task.error) task.error = std::current_exception();
          task.failed.store(true, std::memory_order_release);
        }
      }
      ++finished;
    }
    tl_in_pool_worker = was_worker;
    if (finished == 0) return;
    const std::size_t done =
        task.done.fetch_add(finished, std::memory_order_acq_rel) + finished;
    if (done == task.num_chunks) {
      // Empty critical section orders the notify after the waiter's
      // predicate check.
      { MutexLock lk(mutex_); }
      done_.notify_all();
    }
  }

  void worker_loop() QUGEO_EXCLUDES(mutex_) {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Task> task;
      {
        MutexLock lk(mutex_);
        while (!stop_ && generation_ == seen) wake_.wait(mutex_);
        if (stop_) return;
        seen = generation_;
        task = current_;
      }
      if (task) work_on(*task);
    }
  }

  void start_workers() QUGEO_REQUIRES(config_mutex_) QUGEO_EXCLUDES(mutex_) {
    {
      // stop_ belongs to mutex_, not config_mutex_: a worker surviving
      // from a previous generation (there are none today, but the lock
      // discipline should not depend on that) must never observe the
      // reset without synchronization.
      MutexLock lk(mutex_);
      stop_ = false;
    }
    workers_.reserve(target_threads_ > 0 ? target_threads_ - 1 : 0);
    for (std::size_t i = 1; i < target_threads_; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void stop_workers() QUGEO_REQUIRES(config_mutex_) QUGEO_EXCLUDES(mutex_) {
    {
      MutexLock lk(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  Mutex config_mutex_;  ///< guards target_threads_ / worker lifecycle
  std::size_t target_threads_ QUGEO_GUARDED_BY(config_mutex_) = 1;
  std::vector<std::thread> workers_ QUGEO_GUARDED_BY(config_mutex_);

  Mutex mutex_;  ///< guards current_ / generation_ / stop_
  CondVar wake_;
  CondVar done_;
  std::shared_ptr<Task> current_ QUGEO_GUARDED_BY(mutex_);
  std::uint64_t generation_ QUGEO_GUARDED_BY(mutex_) = 0;
  bool stop_ QUGEO_GUARDED_BY(mutex_) = false;
};

}  // namespace

std::size_t num_threads() { return Pool::instance().size(); }

void set_num_threads(std::size_t n) { Pool::instance().resize(n); }

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  Pool::instance().run(begin, end, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

void parallel_for_chunked(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  Pool::instance().run(begin, end, grain, body);
}

}  // namespace qugeo
