#include "common/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace qugeo::env {
namespace {

[[noreturn]] void reject(const char* name, const char* expected,
                         const char* value) {
  throw std::invalid_argument(std::string(name) + ": expected " + expected +
                              ", got '" + value + "'");
}

/// Strict unsigned-decimal parse of the WHOLE value. strtoull alone is not
/// enough: it accepts leading whitespace, a '-' sign (wrapping through
/// two's complement), and stops silently at trailing junk — exactly the
/// failure modes this module exists to reject.
std::uint64_t parse_u64_value(const char* name, const char* value,
                              const char* expected) {
  if (*value == '\0' || !std::isdigit(static_cast<unsigned char>(*value)))
    reject(name, expected, value);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') reject(name, expected, value);
  if (errno == ERANGE) reject(name, expected, value);
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::size_t parse_env_size_t(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  return static_cast<std::size_t>(
      parse_u64_value(name, v, "a non-negative integer"));
}

std::size_t parse_env_positive(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  const std::uint64_t parsed = parse_u64_value(name, v, "a positive integer");
  if (parsed == 0) reject(name, "a positive integer", v);
  return static_cast<std::size_t>(parsed);
}

std::uint64_t parse_env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  return parse_u64_value(name, v, "a non-negative integer (unsigned)");
}

Real parse_env_probability(const char* name, Real fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  if (*v == '\0') reject(name, "a probability in [0, 1]", v);
  char* end = nullptr;
  const Real parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || parsed < 0 || parsed > 1)
    reject(name, "a probability in [0, 1]", v);
  return parsed;
}

}  // namespace qugeo::env
