// Minimal leveled logger with compile-time cheap call sites.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace qugeo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit one formatted line to stderr: "[LEVEL] message".
void log_message(LogLevel level, std::string_view msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace qugeo
