// Shared persistent thread pool used by every data-parallel hot loop
// (QuBatch chunk fan-out, trainer gradient accumulation, FDTD row sweeps,
// multi-shot forward modelling).
//
// Design rules:
//  - One global pool, sized once from the QUGEO_THREADS env var (default:
//    hardware concurrency). Workers persist across parallel_for calls, so
//    per-call dispatch cost is a mutex/condvar round trip, not thread spawn.
//  - Determinism by construction: iterations are only allowed to write
//    disjoint state, and every reduction offered here runs in fixed index
//    order on the calling thread. Results are bit-identical for any thread
//    count (see test_common_parallel.cpp).
//  - Nested parallel_for calls run inline on the calling worker (no
//    deadlock, no oversubscription).
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace qugeo {

/// Current worker count of the global pool (>= 1; 1 means "run inline").
/// Resolved from QUGEO_THREADS on first use.
[[nodiscard]] std::size_t num_threads();

/// Reconfigure the global pool to exactly `n` threads (n == 0 restores the
/// QUGEO_THREADS / hardware default). Must not race with an in-flight
/// parallel_for; intended for tests and program startup.
void set_num_threads(std::size_t n);

/// Run body(i) for every i in [begin, end), fanned out across the pool.
/// Blocks until every iteration has finished. Iterations must write
/// disjoint state; under that contract the result is independent of the
/// thread count and chunk schedule.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Chunked variant: body(chunk_begin, chunk_end) over contiguous
/// sub-ranges of at least `grain` iterations. Prefer this when per-index
/// dispatch would dominate (e.g. FDTD rows).
void parallel_for_chunked(std::size_t begin, std::size_t end, std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& body);

/// Deterministic fixed-order map-reduce: maps every index in parallel into
/// a dense slot table, then folds the slots sequentially (index order) on
/// the calling thread. Floating-point reductions therefore do not depend
/// on the thread count.
template <typename T, typename MapFn, typename ReduceFn>
[[nodiscard]] T parallel_map_reduce(std::size_t n, T init, MapFn&& map,
                                    ReduceFn&& reduce) {
  std::vector<T> slots(n);
  parallel_for(0, n, [&](std::size_t i) { slots[i] = map(i); });
  T acc = std::move(init);
  for (std::size_t i = 0; i < n; ++i) acc = reduce(std::move(acc), std::move(slots[i]));
  return acc;
}

}  // namespace qugeo
