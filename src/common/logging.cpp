#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/mutex.h"

namespace qugeo {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

/// Serializes whole lines onto stderr so concurrent log calls never
/// interleave mid-line. The guarded resource is the stream itself, which
/// the analysis cannot name — log_message below is the only writer.
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, std::string_view msg) {
  if (level < g_level.load()) return;
  const MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace qugeo
