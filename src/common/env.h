// Validated environment-variable parsing shared by every QUGEO_* knob.
//
// Every reader used to roll its own strtoull/strtod call, and the lenient
// ones silently mangled malformed input: `QUGEO_SAMPLES=abc` became 0 (an
// empty corpus), `QUGEO_TRAIN=12x` became 12, and a negative `QUGEO_SEED`
// wrapped to a huge unsigned value. These helpers are the single strict
// path: the WHOLE value must parse, range constraints are enforced, and
// any malformed value throws std::invalid_argument naming the variable —
// a typo fails the run loudly instead of corrupting it.
//
// All integer knobs are unsigned by contract (documented in
// docs/ARCHITECTURE.md): a leading '-' is rejected outright rather than
// being wrapped through two's complement, including for QUGEO_SEED.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace qugeo::env {

/// getenv(name) as a non-negative integer; `fallback` when unset.
/// Throws std::invalid_argument (naming `name`) on malformed input:
/// non-numeric, trailing junk, a leading '-', or out-of-range values.
[[nodiscard]] std::size_t parse_env_size_t(const char* name,
                                           std::size_t fallback);

/// As parse_env_size_t, but additionally rejects 0 ("expected a positive
/// integer"). For knobs where zero is meaningless (sample counts, thread
/// counts, epoch intervals).
[[nodiscard]] std::size_t parse_env_positive(const char* name,
                                             std::size_t fallback);

/// getenv(name) as an unsigned 64-bit value; `fallback` when unset.
/// The unsigned grammar is strict: `QUGEO_SEED=-1` throws instead of
/// silently wrapping to 2^64-1.
[[nodiscard]] std::uint64_t parse_env_u64(const char* name,
                                          std::uint64_t fallback);

/// getenv(name) as a probability in [0, 1]; `fallback` when unset.
/// Throws std::invalid_argument (naming `name`) otherwise.
[[nodiscard]] Real parse_env_probability(const char* name, Real fallback);

}  // namespace qugeo::env
