#include "common/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/fault.h"

namespace qugeo::simd {
namespace {

/// Thread-local dispatch override; -1 means "no override, use the global".
thread_local int tl_level_override = -1;

std::atomic<int>& global_level() {
  // First-use default: the QUGEO_SIMD environment mode when set (so forcing
  // scalar/avx2 covers every kernel call site — training, encoding, noise —
  // not just the backends), the auto resolution otherwise. Unparsable
  // values resolve as auto HERE; apply_env_overrides re-reads the variable
  // through simd_mode_from_env and throws the loud error on the execution
  // paths.
  static std::atomic<int> level{static_cast<int>(resolve_simd_level([] {
    const char* v = std::getenv("QUGEO_SIMD");
    if (v == nullptr) return SimdMode::kAuto;
    return parse_simd_mode(v).value_or(SimdMode::kAuto);
  }()))};
  return level;
}

}  // namespace

std::string_view simd_mode_name(SimdMode mode) noexcept {
  switch (mode) {
    case SimdMode::kAuto: return "auto";
    case SimdMode::kAvx2: return "avx2";
    case SimdMode::kScalar: return "scalar";
  }
  return "?";
}

std::optional<SimdMode> parse_simd_mode(std::string_view name) noexcept {
  if (name == "auto") return SimdMode::kAuto;
  if (name == "avx2") return SimdMode::kAvx2;
  if (name == "scalar") return SimdMode::kScalar;
  return std::nullopt;
}

std::string_view simd_level_name(SimdLevel level) noexcept {
  return level == SimdLevel::kAvx2 ? "avx2" : "scalar";
}

bool cpu_supports_avx2() noexcept {
#if defined(QUGEO_WITH_AVX2_KERNELS) && (defined(__GNUC__) || defined(__clang__))
  // The kernels use FMA contractions, so both feature bits must be present.
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;  // no AVX2 TUs in this binary; dispatch must stay scalar
#endif
}

SimdLevel resolve_simd_level(SimdMode mode) {
  switch (mode) {
    case SimdMode::kScalar:
      return SimdLevel::kScalar;
    case SimdMode::kAuto:
      return cpu_supports_avx2() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
    case SimdMode::kAvx2:
      if (cpu_supports_avx2()) return SimdLevel::kAvx2;
      fault::report_degradation(
          "simd",
          "QUGEO_SIMD=avx2 requested but this binary/CPU cannot run the AVX2 "
          "kernels; falling back to the scalar reference kernels");
      return SimdLevel::kScalar;
  }
  return SimdLevel::kScalar;
}

SimdLevel active_level() noexcept {
  const int tl = tl_level_override;
  if (tl >= 0) return static_cast<SimdLevel>(tl);
  return static_cast<SimdLevel>(
      global_level().load(std::memory_order_relaxed));
}

void set_global_simd_mode(SimdMode mode) {
  global_level().store(static_cast<int>(resolve_simd_level(mode)),
                       std::memory_order_relaxed);
}

SimdMode simd_mode_from_env(SimdMode base) {
  const char* v = std::getenv("QUGEO_SIMD");
  if (v == nullptr) return base;
  const auto parsed = parse_simd_mode(v);
  if (!parsed)
    throw std::invalid_argument(
        std::string("QUGEO_SIMD: expected auto/avx2/scalar, got '") + v + "'");
  return *parsed;
}

ScopedSimdMode::ScopedSimdMode(SimdMode mode) : saved_(tl_level_override) {
  tl_level_override = static_cast<int>(resolve_simd_level(mode));
}

ScopedSimdMode::~ScopedSimdMode() { tl_level_override = saved_; }

}  // namespace qugeo::simd
