// Annotated mutex primitives for Clang Thread Safety Analysis.
//
// Thin zero-overhead wrappers over std::mutex / std::condition_variable
// carrying the capability annotations from common/thread_annotations.h.
// The standard-library types themselves are unannotated, so the analysis
// cannot connect a std::lock_guard to the members it protects; routing
// every lock through these types is what lets QUGEO_GUARDED_BY members be
// statically checked under `-Wthread-safety`.
//
// Deliberately minimal: exactly the surface the codebase uses (scoped
// locking and condition waits). Timed/shared variants can be added when a
// caller needs them.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace qugeo {

class CondVar;

/// std::mutex with the `capability` annotation.
class QUGEO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QUGEO_ACQUIRE() { mu_.lock(); }
  void unlock() QUGEO_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() QUGEO_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;  // needs the native handle for atomic wait/reacquire
  std::mutex mu_;
};

/// Scoped lock (std::lock_guard shape) over an annotated Mutex.
class QUGEO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QUGEO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() QUGEO_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable working with an annotated Mutex.
///
/// wait() takes the Mutex itself (not a unique_lock) and REQUIRES the
/// caller to hold it, which keeps the capability model intact: write the
/// predicate as an explicit `while (!ready) cv.wait(mu);` loop in the
/// caller, where the analysis can see that the guarded reads happen under
/// the lock. (A predicate-lambda overload would move those reads into a
/// context the analysis cannot attribute the capability to.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, block, and reacquire before returning.
  /// Spurious wakeups are possible: always wait in a predicate loop.
  void wait(Mutex& mu) QUGEO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // caller still owns the (reacquired) mutex
  }

  /// As wait(), but returns std::cv_status::timeout once `deadline` has
  /// passed. Spurious wakeups are possible before the deadline: re-check
  /// the predicate AND the clock in the caller's loop.
  std::cv_status wait_until(Mutex& mu,
                            std::chrono::steady_clock::time_point deadline)
      QUGEO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lk, deadline);
    lk.release();  // caller still owns the (reacquired) mutex
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qugeo
