// Deterministic random number generation for reproducible experiments.
//
// All stochastic components (dataset synthesis, parameter initialization,
// shuffling, noise trajectories) draw from an explicitly seeded Rng so every
// table and figure in EXPERIMENTS.md regenerates bit-identically.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace qugeo {

/// Complete serializable generator state: the four xoshiro256** words
/// plus the Box-Muller carry. Restoring it resumes the stream
/// bit-identically mid-sequence — the contract training checkpoints
/// (core/serialization) rely on.
struct RngState {
  std::uint64_t s[4] = {};
  bool has_cached_normal = false;
  Real cached_normal = 0;
};

/// xoshiro256** PRNG — fast, high quality, and fully deterministic across
/// platforms (unlike std::mt19937 distributions, which are
/// implementation-defined for reals in some standard libraries).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via splitmix64 expansion.
  void reseed(std::uint64_t seed);

  /// Snapshot the full generator state (checkpointing).
  [[nodiscard]] RngState state() const;

  /// Restore a snapshot; the stream continues exactly where it left off.
  void set_state(const RngState& state);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform real in [0, 1).
  Real uniform();

  /// Uniform real in [lo, hi).
  Real uniform(Real lo, Real hi);

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  Real normal();

  /// Normal with given mean / stddev.
  Real normal(Real mu, Real sigma);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(Real p);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Fill a span with U(lo, hi) samples.
  void fill_uniform(std::span<Real> out, Real lo, Real hi);

  /// Fill a span with N(mu, sigma) samples.
  void fill_normal(std::span<Real> out, Real mu, Real sigma);

  /// Derive an independent child generator (stable stream splitting).
  [[nodiscard]] Rng split();

 private:
  std::uint64_t s_[4] = {};
  bool has_cached_normal_ = false;
  Real cached_normal_ = 0;
};

}  // namespace qugeo
