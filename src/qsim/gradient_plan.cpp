#include "qsim/gradient_plan.h"

#include "qsim/optimizer.h"

namespace qugeo::qsim {
namespace {

bool op_is_trainable(const Op& op) {
  for (std::uint32_t id : op.param_ids)
    if (id != kLiteralParam) return true;
  return false;
}

GradientPlanStats count_stats(const Circuit& source, const Circuit& plan) {
  GradientPlanStats s;
  s.source_ops = source.num_ops();
  s.plan_ops = plan.num_ops();
  for (const Op& op : plan.ops()) {
    if (op_is_trainable(op)) ++s.trainable_ops;
    if (op.kind == GateKind::kFused2Q || op.kind == GateKind::kFusedCtl2Q)
      ++s.fused_ops;
  }
  return s;
}

}  // namespace

GradientPlan GradientPlan::build(const Circuit& circuit) {
  GradientPlan plan;
  // Trainable ops end fusion runs on every qubit they touch (optimizer.h),
  // so the forward canonicalization of the TRAINABLE circuit is exactly the
  // trainable-slot partition with each literal segment fused; parameter ids
  // survive verbatim. adjoint_backward already rewinds fused kinds on both
  // sweeps, so no executor change is needed beyond running this form.
  if (has_fusable_runs(circuit) || has_fusable_two_qubit_runs(circuit)) {
    plan.fused_ =
        std::make_shared<const Circuit>(canonicalize_for_backend(circuit));
    plan.stats_ = count_stats(circuit, *plan.fused_);
  } else {
    plan.stats_ = count_stats(circuit, circuit);
  }
  return plan;
}

}  // namespace qugeo::qsim
