// Peephole circuit optimization: cancel adjacent self-inverse pairs, fuse
// literal rotations, and drop identity rotations. Keeps trainable gates
// untouched (their angles are not known at optimization time), so the pass
// is safe to run on the synthesized encoder + ansatz pipeline before QASM
// export or depth accounting.
#pragma once

#include "qsim/circuit.h"

namespace qugeo::qsim {

struct OptimizeOptions {
  bool cancel_self_inverse = true;  ///< X X, H H, Z Z, CX CX, CZ CZ, SWAP SWAP
  bool fuse_rotations = true;       ///< RX(a) RX(b) -> RX(a+b) (literals only)
  bool drop_identity_rotations = true;  ///< RX(0), RZ(2*k*2pi), P(0), ...
  Real angle_epsilon = 1e-12;           ///< |angle mod 4pi| below this is identity
};

struct OptimizeStats {
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
  std::size_t cancelled_pairs = 0;
  std::size_t fused_rotations = 0;
  std::size_t dropped_identities = 0;
};

/// Run the peephole passes to a fixed point and return the optimized
/// circuit. The result references the same trainable parameter table (ids
/// are preserved verbatim; num_params is unchanged).
[[nodiscard]] Circuit optimize_circuit(const Circuit& circuit,
                                       const OptimizeOptions& options = {},
                                       OptimizeStats* stats = nullptr);

}  // namespace qugeo::qsim
