// Peephole circuit optimization: cancel adjacent self-inverse pairs, fuse
// literal rotations, and drop identity rotations. Keeps trainable gates
// untouched (their angles are not known at optimization time), so the pass
// is safe to run on the synthesized encoder + ansatz pipeline before QASM
// export or depth accounting.
//
// A second family of passes — single-qubit run fusion and diagonal-run
// merging (fuse_gate_runs) — collapses every maximal run of literal
// single-qubit gates on one qubit into a single U3 (or a single Phase when
// the product is diagonal). Backends call canonicalize_for_backend before
// executing so all of them benefit from the GateClass kernel dispatch.
#pragma once

#include "qsim/circuit.h"

namespace qugeo::qsim {

struct OptimizeOptions {
  bool cancel_self_inverse = true;  ///< X X, H H, Z Z, CX CX, CZ CZ, SWAP SWAP
  bool fuse_rotations = true;       ///< RX(a) RX(b) -> RX(a+b) (literals only)
  bool drop_identity_rotations = true;  ///< RX(0), RZ(2*k*2pi), P(0), ...
  Real angle_epsilon = 1e-12;           ///< |angle mod 4pi| below this is identity
};

struct OptimizeStats {
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
  std::size_t cancelled_pairs = 0;
  std::size_t fused_rotations = 0;
  std::size_t dropped_identities = 0;
};

/// Run the peephole passes to a fixed point and return the optimized
/// circuit. The result references the same trainable parameter table (ids
/// are preserved verbatim; num_params is unchanged).
[[nodiscard]] Circuit optimize_circuit(const Circuit& circuit,
                                       const OptimizeOptions& options = {},
                                       OptimizeStats* stats = nullptr);

struct FuseStats {
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
  std::size_t fused_runs = 0;           ///< runs collapsed into one U3
  std::size_t merged_diagonal_runs = 0; ///< runs collapsed into one Phase
};

/// Collapse every maximal run of >= 2 literal (non-trainable) single-qubit
/// gates on one qubit into a single gate: a Phase op when the product is
/// exactly diagonal (so the fast diagonal kernel executes it), otherwise a
/// literal U3. Ops on other qubits may sit inside a run (they commute with
/// it); trainable gates, SWAPs, and controlled gates touching the qubit end
/// the run. The fused circuit equals the original up to an unobservable
/// global phase per fused run; probabilities, expectations, and fidelities
/// are preserved exactly. Circuits with no fusable runs are returned with
/// an op-for-op identical stream (bit-identical execution).
///
/// Fusion does NOT preserve the gate COUNT, so it must not run before
/// noisy execution: k fused gates would contribute one per-gate noise
/// insertion point instead of k. Backends therefore canonicalize only
/// their noiseless (unitary) paths.
[[nodiscard]] Circuit fuse_gate_runs(const Circuit& circuit,
                                     FuseStats* stats = nullptr);

/// O(ops) probe with no allocations beyond a per-qubit flag: would
/// fuse_gate_runs change this circuit at all? False for the all-trainable
/// QuGeoVQC ansatz, letting backends run the original circuit by reference
/// instead of copying a canonical form per execution.
[[nodiscard]] bool has_fusable_runs(const Circuit& circuit);

/// The canonicalization every Backend applies before executing a circuit:
/// currently fuse_gate_runs. Kept as a named entry point so future
/// backend-neutral rewrites (e.g. two-qubit run fusion) hook in one place.
[[nodiscard]] Circuit canonicalize_for_backend(const Circuit& circuit);

}  // namespace qugeo::qsim
