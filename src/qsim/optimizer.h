// Circuit rewriting: peephole optimization, gate-run fusion, and the
// backend canonicalization pipeline.
//
// Three pass families live here:
//  1. Peephole passes (optimize_circuit): cancel adjacent self-inverse
//     pairs, fuse literal rotations, drop identity rotations. Safe before
//     QASM export or depth accounting.
//  2. Single-qubit run fusion (fuse_gate_runs): collapse maximal runs of
//     literal 1q gates into one U3 (or one Phase when diagonal).
//  3. Two-qubit run fusion (fuse_two_qubit_runs): collapse maximal runs of
//     literal gates on one qubit pair — interleaved with literal 1q gates
//     on those qubits — into a single dense 4x4 unitary (GateKind::kFused2Q,
//     executed by StateVector::apply_matrix2q / DensityMatrix::apply_2q).
//
// Backends run 2 then 3 via canonicalize_for_backend on their NOISELESS
// paths only; see the fusion legality rules below.
#pragma once

#include <span>

#include "qsim/circuit.h"

namespace qugeo::qsim {

struct OptimizeOptions {
  bool cancel_self_inverse = true;  ///< X X, H H, Z Z, CX CX, CZ CZ, SWAP SWAP
  bool fuse_rotations = true;       ///< RX(a) RX(b) -> RX(a+b) (literals only)
  bool drop_identity_rotations = true;  ///< RX(0), RZ(2*k*2pi), P(0), ...
  Real angle_epsilon = 1e-12;           ///< |angle mod 4pi| below this is identity
};

struct OptimizeStats {
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
  std::size_t cancelled_pairs = 0;
  std::size_t fused_rotations = 0;
  std::size_t dropped_identities = 0;
};

/// Run the peephole passes to a fixed point and return the optimized
/// circuit. The result references the same trainable parameter table (ids
/// are preserved verbatim; num_params is unchanged).
[[nodiscard]] Circuit optimize_circuit(const Circuit& circuit,
                                       const OptimizeOptions& options = {},
                                       OptimizeStats* stats = nullptr);

struct FuseStats {
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
  std::size_t fused_runs = 0;           ///< runs collapsed into one U3
  std::size_t merged_diagonal_runs = 0; ///< runs collapsed into one Phase
};

/// \brief Collapse every maximal run of >= 2 literal (non-trainable)
/// single-qubit gates on one qubit into a single gate.
///
/// The replacement is a Phase op when the product is exactly diagonal (so
/// the fast diagonal kernel executes it), otherwise a literal U3. Ops on
/// other qubits may sit inside a run (they commute with it); trainable
/// gates, SWAPs, and controlled gates touching the qubit end the run.
///
/// \par Fusion legality rules (shared by every fusion pass here)
///  - Only LITERAL gates fuse: a trainable angle is unknown at fusion
///    time, so any trainable op ends the runs on every qubit it touches.
///  - The fused circuit equals the original up to an unobservable global
///    phase per fused run; probabilities, expectations, and fidelities are
///    preserved exactly (pinned to 1e-10 by the test suites).
///  - Fusion does NOT preserve the gate COUNT, so it must never run before
///    noisy execution: k fused gates would contribute one per-gate noise
///    insertion point instead of k. Backends therefore canonicalize only
///    their noiseless (or readout-only, whose single insertion point is
///    the end of the circuit) paths; run_circuit_noisy rejects fused ops.
///
/// Circuits with no fusable runs are returned with an op-for-op identical
/// stream (bit-identical execution).
[[nodiscard]] Circuit fuse_gate_runs(const Circuit& circuit,
                                     FuseStats* stats = nullptr);

struct Fuse2QStats {
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
  std::size_t fused_runs = 0;      ///< pair runs rewritten (all forms below)
  std::size_t ctl_runs = 0;        ///< emitted as block-diagonal kFusedCtl2Q
  std::size_t dense_runs = 0;      ///< emitted as dense kFused2Q
  std::size_t collapsed_runs = 0;  ///< product was (scalar) identity / 1q-only
  std::size_t absorbed_ops = 0;    ///< total ops folded into rewritten runs
};

/// \brief Collapse every maximal run of literal gates on one qubit PAIR
/// into at most two ops, structure-aware.
///
/// A pair run opens at a literal two-qubit gate (CX, CZ, SWAP, literal
/// CRY/CU3, or an existing fused op) on qubits {a, b} and greedily absorbs,
/// in program order:
///  - further literal two-qubit gates on the same unordered pair {a, b}
///    (either operand orientation), and
///  - literal single-qubit gates on a or b that sit between them (they are
///    buffered, then folded in when the next same-pair gate arrives —
///    trailing 1q gates with no two-qubit successor are left untouched).
///
/// Any other op touching a or b — a trainable gate, or a literal two-qubit
/// gate on an overlapping but different pair — ends the run. A run that
/// absorbed >= 2 ops is rewritten at the position of its opening gate
/// (exact: everything between its constituents acts on other qubits, or is
/// itself absorbed); a run of one op re-emits the original.
///
/// \par Emission forms (cheapest exact representation wins)
/// Alongside the dense 4x4 product, the pass tracks the factorization
/// P = D * (C (x) I) per candidate control qubit, where C is a 2x2 on the
/// control and D is block-diagonal in it (one target block per control
/// value) — the closed form of CU3/CX/CZ/CRY runs with target-side 1q
/// gates. At flush:
///  - product == identity (up to global phase): the run vanishes;
///  - D == I (x) U: plain 1q gate(s) — C on control, U on target;
///  - factorization holds: optional 1q C-gate + one kFusedCtl2Q, executed
///    by the dual half-space kernel (apply_block_diag_2q, ~2x the dense
///    kernel's throughput);
///  - otherwise: one dense kFused2Q (apply_matrix2q).
/// The legality rules documented on fuse_gate_runs apply unchanged.
[[nodiscard]] Circuit fuse_two_qubit_runs(const Circuit& circuit,
                                          Fuse2QStats* stats = nullptr);

/// O(ops) probe with no allocations beyond a per-qubit flag: would
/// fuse_gate_runs change this circuit at all? False for the all-trainable
/// QuGeoVQC ansatz, letting backends run the original circuit by reference
/// instead of copying a canonical form per execution.
[[nodiscard]] bool has_fusable_runs(const Circuit& circuit);

/// O(ops) probe mirroring fuse_two_qubit_runs' run tracking: would the
/// two-qubit pass change this circuit at all?
[[nodiscard]] bool has_fusable_two_qubit_runs(const Circuit& circuit);

/// \brief Resolve every trainable angle of `circuit` against `params` and
/// return an equivalent all-literal circuit (num_params == 0).
///
/// The frozen form is what a deployed (inference-only) model executes: once
/// angles are literals, BOTH fusion passes can collapse the U3+CU3 ansatz
/// structure, which the trainable original forbids. `params` must hold at
/// least circuit.num_params() values.
[[nodiscard]] Circuit bind_parameters(const Circuit& circuit,
                                      std::span<const Real> params);

/// \brief The canonicalization every Backend applies before executing a
/// circuit on a noiseless path: fuse_gate_runs, then fuse_two_qubit_runs.
///
/// Kept as a named entry point so backend-neutral rewrites hook in one
/// place. Pure and deterministic: the same input circuit always yields the
/// same canonical form, which is what makes CompiledCircuitCache
/// (compile_cache.h) sound — it memoizes this function keyed by circuit
/// structure + backend kind. Callers gate it on ExecutionConfig::fusion
/// (QUGEO_FUSION) and on the has_fusable_* probes.
[[nodiscard]] Circuit canonicalize_for_backend(const Circuit& circuit);

}  // namespace qugeo::qsim
