#include "qsim/executor.h"

#include <cassert>
#include <stdexcept>

#include "common/math_utils.h"

namespace qugeo::qsim {
namespace {

/// Apply the (possibly controlled) 2x2 block `u` of gate `kind`, routing to
/// the specialized diagonal / anti-diagonal kernels by gate class. SWAP and
/// identity are handled by the callers.
void apply_block(GateKind kind, const Mat2& u, const std::array<Index, 2>& qubits,
                 StateVector& psi) {
  const bool controlled = gate_is_controlled_1q(kind);
  switch (gate_class(kind)) {
    case GateClass::kDiagonal:
      if (controlled)
        psi.apply_controlled_diag_1q(u(0, 0), u(1, 1), qubits[0], qubits[1]);
      else
        psi.apply_diag_1q(u(0, 0), u(1, 1), qubits[0]);
      return;
    case GateClass::kAntiDiagonal:
      if (controlled)
        psi.apply_controlled_antidiag_1q(u(0, 1), u(1, 0), qubits[0], qubits[1]);
      else
        psi.apply_antidiag_1q(u(0, 1), u(1, 0), qubits[0]);
      return;
    case GateClass::kGeneric:
      if (controlled)
        psi.apply_controlled_1q(u, qubits[0], qubits[1]);
      else
        psi.apply_1q(u, qubits[0]);
      return;
  }
}

/// <lambda| (dU on qubit q) |psi> accumulated directly over the affected
/// index pairs — no scratch state, no full-vector copy.
Complex pair_inner_1q(std::span<const Complex> lambda,
                      std::span<const Complex> psi, const Mat2& du, Index q) {
  assert(lambda.size() == psi.size());
  const Index stride = Index{1} << q;
  const Index half = psi.size() / 2;
  const Complex d00 = du(0, 0), d01 = du(0, 1), d10 = du(1, 0), d11 = du(1, 1);
  Complex s{0, 0};
  for (Index j = 0; j < half; ++j) {
    const Index i0 = insert_zero_bit(j, q);
    const Index i1 = i0 | stride;
    const Complex p0 = psi[i0];
    const Complex p1 = psi[i1];
    s += cmul_conj(lambda[i0], cmul(d00, p0) + cmul(d01, p1));
    s += cmul_conj(lambda[i1], cmul(d10, p0) + cmul(d11, p1));
  }
  return s;
}

/// As pair_inner_1q, but for the derivative of a controlled gate: the
/// control=|0> block of dU is zero, so only control-set pairs contribute.
Complex pair_inner_controlled_1q(std::span<const Complex> lambda,
                                 std::span<const Complex> psi, const Mat2& du,
                                 Index control, Index target) {
  assert(lambda.size() == psi.size());
  const Index cmask = Index{1} << control;
  const Index tmask = Index{1} << target;
  const Index lo = control < target ? control : target;
  const Index hi = control < target ? target : control;
  const Index quarter = psi.size() / 4;
  const Complex d00 = du(0, 0), d01 = du(0, 1), d10 = du(1, 0), d11 = du(1, 1);
  Complex s{0, 0};
  for (Index j = 0; j < quarter; ++j) {
    const Index i0 = insert_two_zero_bits(j, lo, hi) | cmask;
    const Index i1 = i0 | tmask;
    const Complex p0 = psi[i0];
    const Complex p1 = psi[i1];
    s += cmul_conj(lambda[i0], cmul(d00, p0) + cmul(d01, p1));
    s += cmul_conj(lambda[i1], cmul(d10, p0) + cmul(d11, p1));
  }
  return s;
}

}  // namespace

void apply_op(const Op& op, std::span<const Real> params, StateVector& psi) {
  if (op.kind == GateKind::kSWAP) {
    psi.apply_swap(op.qubits[0], op.qubits[1]);
    return;
  }
  if (op.kind == GateKind::kI) return;
  const auto vals = Circuit::resolve_params(op, params);
  apply_block(op.kind, gate_matrix(op.kind, vals), op.qubits, psi);
}

void apply_op_inverse(const Op& op, std::span<const Real> params,
                      StateVector& psi) {
  if (op.kind == GateKind::kSWAP) {
    psi.apply_swap(op.qubits[0], op.qubits[1]);
    return;
  }
  if (op.kind == GateKind::kI) return;
  const auto vals = Circuit::resolve_params(op, params);
  apply_block(op.kind, dagger(gate_matrix(op.kind, vals)), op.qubits, psi);
}

void run_circuit(const Circuit& circuit, std::span<const Real> params,
                 StateVector& psi) {
  if (psi.num_qubits() != circuit.num_qubits())
    throw std::invalid_argument("run_circuit: qubit count mismatch");
  if (params.size() < circuit.num_params())
    throw std::invalid_argument("run_circuit: parameter table too small");
  for (const Op& op : circuit.ops()) apply_op(op, params, psi);
}

AdjointResult adjoint_backward(const Circuit& circuit,
                               std::span<const Real> params,
                               StateVector psi_out,
                               std::span<const Complex> cotangent) {
  if (cotangent.size() != psi_out.dim())
    throw std::invalid_argument("adjoint_backward: cotangent size mismatch");

  AdjointResult result;
  result.param_grads.assign(circuit.num_params(), Real(0));

  // lambda lives in a StateVector so gate kernels can be reused; it is not
  // normalized (it is a gradient, not a state).
  StateVector lambda(circuit.num_qubits());
  lambda.set_amplitudes(cotangent);

  const auto ops = circuit.ops();
  for (std::size_t i = ops.size(); i-- > 0;) {
    const Op& op = ops[i];
    // psi_out currently equals psi after op i; rewind to psi before op i.
    apply_op_inverse(op, params, psi_out);

    // Accumulate parameter gradients: dL/dtheta = 2 Re <lambda_i| dU |psi_{i-1}>,
    // evaluated in place over the index pairs the gate touches.
    const bool has_trainable = op.param_ids[0] != kLiteralParam ||
                               op.param_ids[1] != kLiteralParam ||
                               op.param_ids[2] != kLiteralParam;
    if (has_trainable) {
      const auto vals = Circuit::resolve_params(op, params);
      for (int slot = 0; slot < 3; ++slot) {
        const std::uint32_t pid = op.param_ids[static_cast<std::size_t>(slot)];
        if (pid == kLiteralParam) continue;
        const Mat2 du = gate_matrix_deriv(op.kind, vals, slot);
        const Complex ip =
            gate_is_controlled_1q(op.kind)
                ? pair_inner_controlled_1q(lambda.amplitudes(),
                                           psi_out.amplitudes(), du,
                                           op.qubits[0], op.qubits[1])
                : pair_inner_1q(lambda.amplitudes(), psi_out.amplitudes(), du,
                                op.qubits[0]);
        result.param_grads[pid] += 2 * ip.real();
      }
    }

    // Propagate the cotangent: lambda_{i-1} = U_i^dagger lambda_i.
    apply_op_inverse(op, params, lambda);
  }

  result.input_cotangent.assign(lambda.amplitudes().begin(),
                                lambda.amplitudes().end());
  return result;
}

}  // namespace qugeo::qsim
