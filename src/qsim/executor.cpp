#include "qsim/executor.h"

#include <cassert>
#include <stdexcept>

#include "common/math_utils.h"

namespace qugeo::qsim {
namespace {

/// Apply the (possibly controlled) 2x2 block `u` of gate `kind`, routing to
/// the specialized diagonal / anti-diagonal kernels by gate class. SWAP and
/// identity are handled by the callers.
void apply_block(GateKind kind, const Mat2& u, const std::array<Index, 2>& qubits,
                 StateVector& psi) {
  const bool controlled = gate_is_controlled_1q(kind);
  switch (gate_class(kind)) {
    case GateClass::kDiagonal:
      if (controlled)
        psi.apply_controlled_diag_1q(u(0, 0), u(1, 1), qubits[0], qubits[1]);
      else
        psi.apply_diag_1q(u(0, 0), u(1, 1), qubits[0]);
      return;
    case GateClass::kAntiDiagonal:
      if (controlled)
        psi.apply_controlled_antidiag_1q(u(0, 1), u(1, 0), qubits[0], qubits[1]);
      else
        psi.apply_antidiag_1q(u(0, 1), u(1, 0), qubits[0]);
      return;
    case GateClass::kGeneric:
      if (controlled)
        psi.apply_controlled_1q(u, qubits[0], qubits[1]);
      else
        psi.apply_1q(u, qubits[0]);
      return;
  }
}

/// <lambda| (dU on qubit q) |psi> accumulated directly over the affected
/// index pairs — no scratch state, no full-vector copy.
Complex pair_inner_1q(std::span<const Complex> lambda,
                      std::span<const Complex> psi, const Mat2& du, Index q) {
  assert(lambda.size() == psi.size());
  const Index stride = Index{1} << q;
  const Index half = psi.size() / 2;
  const Complex d00 = du(0, 0), d01 = du(0, 1), d10 = du(1, 0), d11 = du(1, 1);
  Complex s{0, 0};
  for (Index j = 0; j < half; ++j) {
    const Index i0 = insert_zero_bit(j, q);
    const Index i1 = i0 | stride;
    const Complex p0 = psi[i0];
    const Complex p1 = psi[i1];
    s += cmul_conj(lambda[i0], cmul(d00, p0) + cmul(d01, p1));
    s += cmul_conj(lambda[i1], cmul(d10, p0) + cmul(d11, p1));
  }
  return s;
}

/// As pair_inner_1q, but for the derivative of a controlled gate: the
/// control=|0> block of dU is zero, so only control-set pairs contribute.
Complex pair_inner_controlled_1q(std::span<const Complex> lambda,
                                 std::span<const Complex> psi, const Mat2& du,
                                 Index control, Index target) {
  assert(lambda.size() == psi.size());
  const Index cmask = Index{1} << control;
  const Index tmask = Index{1} << target;
  const Index lo = control < target ? control : target;
  const Index hi = control < target ? target : control;
  const Index quarter = psi.size() / 4;
  const Complex d00 = du(0, 0), d01 = du(0, 1), d10 = du(1, 0), d11 = du(1, 1);
  Complex s{0, 0};
  for (Index j = 0; j < quarter; ++j) {
    const Index i0 = insert_two_zero_bits(j, lo, hi) | cmask;
    const Index i1 = i0 | tmask;
    const Complex p0 = psi[i0];
    const Complex p1 = psi[i1];
    s += cmul_conj(lambda[i0], cmul(d00, p0) + cmul(d01, p1));
    s += cmul_conj(lambda[i1], cmul(d10, p0) + cmul(d11, p1));
  }
  return s;
}

/// Execute a fused op whose Mat4 was resolved by the caller: the dense
/// kernel for kFused2Q, the dual half-space kernel for kFusedCtl2Q (its
/// 2x2 blocks over the control bit — sub-index bit 0 — are extracted
/// here). For the inverse, pass dagger(m): the block structure survives
/// conjugate transposition.
void apply_fused(GateKind kind, const Mat4& m, Index q0, Index q1,
                 StateVector& psi) {
  if (kind == GateKind::kFusedCtl2Q) {
    Mat2 u0, u1;
    for (int tp = 0; tp < 2; ++tp)
      for (int t = 0; t < 2; ++t) {
        u0(tp, t) = m(tp * 2, t * 2);
        u1(tp, t) = m(tp * 2 + 1, t * 2 + 1);
      }
    psi.apply_block_diag_2q(u0, u1, q0, q1);
    return;
  }
  psi.apply_matrix2q(m, q0, q1);
}

bool is_fused_kind(GateKind kind) {
  return kind == GateKind::kFused2Q || kind == GateKind::kFusedCtl2Q;
}

}  // namespace

void apply_op(const Op& op, std::span<const Real> params, StateVector& psi) {
  if (op.kind == GateKind::kSWAP) {
    psi.apply_swap(op.qubits[0], op.qubits[1]);
    return;
  }
  if (op.kind == GateKind::kI) return;
  if (is_fused_kind(op.kind))
    // The matrix lives in the owning Circuit's side table, which this
    // entry point cannot see. The circuit-level executors handle it; the
    // per-op noisy sampler never legally receives fused ops (fusion is
    // restricted to noiseless paths — optimizer.h legality rules).
    throw std::invalid_argument(
        "apply_op: fused ops need circuit context (use run_circuit)");
  const auto vals = Circuit::resolve_params(op, params);
  apply_block(op.kind, gate_matrix(op.kind, vals), op.qubits, psi);
}

void apply_op_inverse(const Op& op, std::span<const Real> params,
                      StateVector& psi) {
  if (op.kind == GateKind::kSWAP) {
    psi.apply_swap(op.qubits[0], op.qubits[1]);
    return;
  }
  if (op.kind == GateKind::kI) return;
  if (is_fused_kind(op.kind))
    throw std::invalid_argument(
        "apply_op_inverse: fused ops need circuit context (use adjoint_backward)");
  const auto vals = Circuit::resolve_params(op, params);
  apply_block(op.kind, dagger(gate_matrix(op.kind, vals)), op.qubits, psi);
}

void run_circuit(const Circuit& circuit, std::span<const Real> params,
                 StateVector& psi) {
  if (psi.num_qubits() != circuit.num_qubits())
    throw std::invalid_argument("run_circuit: qubit count mismatch");
  if (params.size() < circuit.num_params())
    throw std::invalid_argument("run_circuit: parameter table too small");
  for (const Op& op : circuit.ops()) {
    if (is_fused_kind(op.kind))
      apply_fused(op.kind, circuit.matrix(op), op.qubits[0], op.qubits[1], psi);
    else
      apply_op(op, params, psi);
  }
}

AdjointResult adjoint_backward(const Circuit& circuit,
                               std::span<const Real> params,
                               StateVector psi_out,
                               std::span<const Complex> cotangent) {
  if (cotangent.size() != psi_out.dim())
    throw std::invalid_argument("adjoint_backward: cotangent size mismatch");

  AdjointResult result;
  result.param_grads.assign(circuit.num_params(), Real(0));

  // lambda lives in a StateVector so gate kernels can be reused; it is not
  // normalized (it is a gradient, not a state).
  StateVector lambda(circuit.num_qubits());
  lambda.set_amplitudes(cotangent);

  const auto ops = circuit.ops();
  for (std::size_t i = ops.size(); i-- > 0;) {
    const Op& op = ops[i];
    if (is_fused_kind(op.kind)) {
      // Fused blocks carry no trainable parameters (fusion only consumes
      // literal gates), so they only rewind the two states.
      const Mat4 ud = dagger(circuit.matrix(op));
      apply_fused(op.kind, ud, op.qubits[0], op.qubits[1], psi_out);
      apply_fused(op.kind, ud, op.qubits[0], op.qubits[1], lambda);
      continue;
    }
    // psi_out currently equals psi after op i; rewind to psi before op i.
    apply_op_inverse(op, params, psi_out);

    // Accumulate parameter gradients: dL/dtheta = 2 Re <lambda_i| dU |psi_{i-1}>,
    // evaluated in place over the index pairs the gate touches.
    const bool has_trainable = op.param_ids[0] != kLiteralParam ||
                               op.param_ids[1] != kLiteralParam ||
                               op.param_ids[2] != kLiteralParam;
    if (has_trainable) {
      const auto vals = Circuit::resolve_params(op, params);
      for (int slot = 0; slot < 3; ++slot) {
        const std::uint32_t pid = op.param_ids[static_cast<std::size_t>(slot)];
        if (pid == kLiteralParam) continue;
        const Mat2 du = gate_matrix_deriv(op.kind, vals, slot);
        const Complex ip =
            gate_is_controlled_1q(op.kind)
                ? pair_inner_controlled_1q(lambda.amplitudes(),
                                           psi_out.amplitudes(), du,
                                           op.qubits[0], op.qubits[1])
                : pair_inner_1q(lambda.amplitudes(), psi_out.amplitudes(), du,
                                op.qubits[0]);
        result.param_grads[pid] += 2 * ip.real();
      }
    }

    // Propagate the cotangent: lambda_{i-1} = U_i^dagger lambda_i.
    apply_op_inverse(op, params, lambda);
  }

  result.input_cotangent.assign(lambda.amplitudes().begin(),
                                lambda.amplitudes().end());
  return result;
}

}  // namespace qugeo::qsim
