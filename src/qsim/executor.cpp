#include "qsim/executor.h"

#include <cassert>
#include <stdexcept>

namespace qugeo::qsim {
namespace {

/// Inner product <a|b> over raw spans.
Complex inner(std::span<const Complex> a, std::span<const Complex> b) {
  assert(a.size() == b.size());
  Complex s{0, 0};
  for (std::size_t k = 0; k < a.size(); ++k) s += std::conj(a[k]) * b[k];
  return s;
}

}  // namespace

void apply_op(const Op& op, std::span<const Real> params, StateVector& psi) {
  const auto vals = Circuit::resolve_params(op, params);
  switch (op.kind) {
    case GateKind::kSWAP:
      psi.apply_swap(op.qubits[0], op.qubits[1]);
      return;
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kCRY:
    case GateKind::kCU3:
      psi.apply_controlled_1q(gate_matrix(op.kind, vals), op.qubits[0],
                              op.qubits[1]);
      return;
    default:
      psi.apply_1q(gate_matrix(op.kind, vals), op.qubits[0]);
      return;
  }
}

void apply_op_inverse(const Op& op, std::span<const Real> params,
                      StateVector& psi) {
  const auto vals = Circuit::resolve_params(op, params);
  switch (op.kind) {
    case GateKind::kSWAP:
      psi.apply_swap(op.qubits[0], op.qubits[1]);
      return;
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kCRY:
    case GateKind::kCU3:
      psi.apply_controlled_1q(dagger(gate_matrix(op.kind, vals)), op.qubits[0],
                              op.qubits[1]);
      return;
    default:
      psi.apply_1q(dagger(gate_matrix(op.kind, vals)), op.qubits[0]);
      return;
  }
}

void run_circuit(const Circuit& circuit, std::span<const Real> params,
                 StateVector& psi) {
  if (psi.num_qubits() != circuit.num_qubits())
    throw std::invalid_argument("run_circuit: qubit count mismatch");
  if (params.size() < circuit.num_params())
    throw std::invalid_argument("run_circuit: parameter table too small");
  for (const Op& op : circuit.ops()) apply_op(op, params, psi);
}

AdjointResult adjoint_backward(const Circuit& circuit,
                               std::span<const Real> params,
                               StateVector psi_out,
                               std::span<const Complex> cotangent) {
  if (cotangent.size() != psi_out.dim())
    throw std::invalid_argument("adjoint_backward: cotangent size mismatch");

  AdjointResult result;
  result.param_grads.assign(circuit.num_params(), Real(0));

  // lambda lives in a StateVector so gate kernels can be reused; it is not
  // normalized (it is a gradient, not a state).
  StateVector lambda(circuit.num_qubits());
  lambda.set_amplitudes(cotangent);

  StateVector scratch(circuit.num_qubits());

  const auto ops = circuit.ops();
  for (std::size_t i = ops.size(); i-- > 0;) {
    const Op& op = ops[i];
    // psi_out currently equals psi after op i; rewind to psi before op i.
    apply_op_inverse(op, params, psi_out);

    // Accumulate parameter gradients: dL/dtheta = 2 Re <lambda_i| dU |psi_{i-1}>.
    // The angle resolution is loop-invariant across the three slots.
    const auto vals = Circuit::resolve_params(op, params);
    for (int slot = 0; slot < 3; ++slot) {
      const std::uint32_t pid = op.param_ids[static_cast<std::size_t>(slot)];
      if (pid == kLiteralParam) continue;
      const Mat2 du = gate_matrix_deriv(op.kind, vals, slot);
      scratch.set_amplitudes(psi_out.amplitudes());
      if (gate_is_controlled_1q(op.kind)) {
        scratch.apply_controlled_1q_deriv(du, op.qubits[0], op.qubits[1]);
      } else {
        scratch.apply_1q(du, op.qubits[0]);
      }
      const Complex ip = inner(lambda.amplitudes(), scratch.amplitudes());
      result.param_grads[pid] += 2 * ip.real();
    }

    // Propagate the cotangent: lambda_{i-1} = U_i^dagger lambda_i.
    apply_op_inverse(op, params, lambda);
  }

  result.input_cotangent.assign(lambda.amplitudes().begin(),
                                lambda.amplitudes().end());
  return result;
}

}  // namespace qugeo::qsim
