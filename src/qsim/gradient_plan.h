// GradientPlan: the gradient-canonical form of a trainable circuit.
//
// The adjoint differentiation pass (executor.h: adjoint_backward) walks the
// op stream backwards twice per op — once un-applying |psi>, once advancing
// <lambda| — but only the TRAINABLE slots contribute a
// 2 Re <lambda|dU/dtheta|psi> contraction. Every literal gate between two
// consecutive trainable slots is pure replay work, so the plan partitions
// the circuit at its trainable slots and collapses each literal segment
// with the existing fusion passes (optimizer.h: fuse_gate_runs /
// fuse_two_qubit_runs — trainable ops end runs on every qubit they touch,
// so canonicalize_for_backend of a trainable circuit IS exactly this
// partition): deep frozen prefixes/suffixes become a handful of
// kFused2Q/kFusedCtl2Q/merged-1q applications on both sweeps, while the
// trainable ops survive verbatim with their parameter ids intact.
//
// Correctness: each fused segment equals its source run up to a global
// phase (<= 1e-10, optimizer.h legality rules). Running BOTH the |psi>
// replay and the <lambda| sweep through the same plan puts the same phase
// on both states, and it cancels in the 2 Re <lambda|dU|psi> contraction —
// pinned differentially (finite-difference / parameter-shift / unfused
// adjoint) by tests/test_qsim_gradient_conformance.cpp.
//
// Plans are memoized per circuit structure in CompiledCircuitCache
// (gradient_plan() — plan_compile_count()/plan_hit_count() are the probes
// the trainer tests pin), and the whole path is gated on
// ExecutionConfig::grad_fusion (QUGEO_GRAD_FUSION).
#pragma once

#include <cstddef>
#include <memory>

#include "qsim/circuit.h"

namespace qugeo::qsim {

/// Shape accounting of a built plan (bench/diagnostic output).
struct GradientPlanStats {
  std::size_t source_ops = 0;     ///< ops in the original circuit
  std::size_t plan_ops = 0;       ///< ops in the execution form
  std::size_t trainable_ops = 0;  ///< ops carrying >= 1 trainable slot
  std::size_t fused_ops = 0;      ///< kFused2Q/kFusedCtl2Q ops in the plan
};

/// An immutable, shareable gradient execution plan. `fused()` is false for
/// circuits fusion cannot change (e.g. the all-trainable QuGeoVQC ansatz):
/// the plan then tells callers to run their ORIGINAL circuit by reference,
/// making the default training path bit-identical to the pre-plan loop.
class GradientPlan {
 public:
  /// Partition + fuse `circuit` (see header comment). Cheap for
  /// unfusable circuits: two O(ops) probes, no copy.
  [[nodiscard]] static GradientPlan build(const Circuit& circuit);

  /// The circuit both adjoint sweeps should execute: the fused form when
  /// fusion changed the stream, otherwise `original` by reference.
  /// `original` must be (structurally) the circuit this plan was built
  /// from.
  [[nodiscard]] const Circuit& execution_form(const Circuit& original) const {
    return fused_ ? *fused_ : original;
  }

  /// True when the plan holds a fused copy distinct from the source.
  [[nodiscard]] bool fused() const noexcept { return fused_ != nullptr; }

  [[nodiscard]] const GradientPlanStats& stats() const noexcept {
    return stats_;
  }

 private:
  std::shared_ptr<const Circuit> fused_;  // null => run the original
  GradientPlanStats stats_;
};

}  // namespace qugeo::qsim
