// Dense complex state-vector with in-place gate application.
//
// Qubit 0 is the least-significant bit of the basis index. All operations
// are exact (double precision); the class is the execution substrate for
// both the forward pass and the adjoint backward pass.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "qsim/gate.h"

namespace qugeo::qsim {

class StateVector {
 public:
  /// Construct |0...0> on `num_qubits` qubits.
  explicit StateVector(Index num_qubits);

  [[nodiscard]] Index num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] Index dim() const noexcept { return amps_.size(); }
  [[nodiscard]] std::span<const Complex> amplitudes() const noexcept { return amps_; }
  [[nodiscard]] std::span<Complex> amplitudes_mut() noexcept { return amps_; }
  [[nodiscard]] Complex amplitude(Index k) const { return amps_.at(k); }

  /// Reset to |0...0>.
  void reset();

  /// Overwrite amplitudes from a complex span (must have length dim()).
  void set_amplitudes(std::span<const Complex> amps);

  /// Overwrite amplitudes from a real span (imag parts zero).
  void set_amplitudes_real(std::span<const Real> amps);

  /// Squared norm <psi|psi>.
  [[nodiscard]] Real norm_sq() const noexcept;

  /// Apply a 2x2 unitary (or any 2x2 linear map) to qubit `q`.
  void apply_1q(const Mat2& u, Index q);

  /// Fast path: apply diag(d0, d1) to qubit `q` (phase-only, no cross
  /// terms). When d0 == 1 only the q=|1> half-space is touched.
  void apply_diag_1q(Complex d0, Complex d1, Index q);

  /// Fast path: apply [[0, a01], [a10, 0]] to qubit `q` (pure amplitude
  /// swap; a01 == a10 == 1 degenerates to std::swap per pair, i.e. X).
  void apply_antidiag_1q(Complex a01, Complex a10, Index q);

  /// Apply a dense 4x4 unitary (or any 4x4 linear map) to the qubit pair
  /// (q0, q1). The 2-bit sub-index of `u` uses bit 0 = q0, bit 1 = q1 —
  /// the same convention as Circuit::fused2q. One pass over the state, 16
  /// complex multiplies per amplitude quadruple; the execution substrate of
  /// the optimizer's two-qubit run fusion.
  void apply_matrix2q(const Mat4& u, Index q0, Index q1);

  /// Fast path for block-diagonal two-qubit unitaries: apply `u0` to
  /// `target` where control=|0> and `u1` where control=|1>. Two half-space
  /// sweeps with apply_1q's access pattern — roughly 2x the throughput of
  /// the dense apply_matrix2q, and the kernel behind kFusedCtl2Q (the form
  /// the optimizer's two-qubit fusion emits for CU3-style runs).
  void apply_block_diag_2q(const Mat2& u0, const Mat2& u1, Index control,
                           Index target);

  /// Apply a 2x2 map to `target` on the control=|1> subspace only.
  void apply_controlled_1q(const Mat2& u, Index control, Index target);

  /// Fast path: controlled diag(d0, d1). When d0 == 1 (Z, S, T, phase)
  /// only the control=target=|1> quarter-space is touched — CZ costs one
  /// multiply per 4 amplitudes.
  void apply_controlled_diag_1q(Complex d0, Complex d1, Index control,
                                Index target);

  /// Fast path: controlled [[0, a01], [a10, 0]] (CX when both are 1).
  void apply_controlled_antidiag_1q(Complex a01, Complex a10, Index control,
                                    Index target);

  /// Swap qubits a and b.
  void apply_swap(Index a, Index b);

  /// Probability of measuring basis state k.
  [[nodiscard]] Real probability(Index k) const { return std::norm(amps_.at(k)); }

  /// Full probability vector (length dim()).
  [[nodiscard]] std::vector<Real> probabilities() const;

  /// Marginal probability distribution over an ordered subset of qubits.
  /// Entry j of the result is P(outcome j), where bit i of j is the
  /// measured value of qubits[i].
  [[nodiscard]] std::vector<Real> marginal_probabilities(
      std::span<const Index> qubits) const;

  /// <Z_q> expectation.
  [[nodiscard]] Real expect_z(Index q) const;

  /// Cumulative Born distribution: cdf[k] = sum_{j<=k} |amps[j]|^2. The
  /// last entry is the squared norm. Building it is O(2^n); callers that
  /// sample the same state repeatedly should build it once and use
  /// sample_from_cdf.
  [[nodiscard]] std::vector<Real> cumulative_probabilities() const;

  /// Draw `shots` basis-state samples from the Born distribution.
  [[nodiscard]] std::vector<Index> sample(Rng& rng, std::size_t shots) const;

  /// Draw `shots` samples against a precomputed CDF (see
  /// cumulative_probabilities) without rebuilding the O(2^n) prefix sums.
  [[nodiscard]] static std::vector<Index> sample_from_cdf(
      std::span<const Real> cdf, Rng& rng, std::size_t shots);

  /// Fidelity |<this|other>|^2 (states must have equal dimension).
  [[nodiscard]] Real fidelity(const StateVector& other) const;

 private:
  Index num_qubits_;
  std::vector<Complex> amps_;
};

}  // namespace qugeo::qsim
