#include "qsim/noise.h"

#include <cmath>
#include <stdexcept>

#include "common/parallel.h"
#include "qsim/executor.h"

namespace qugeo::qsim {
namespace {

const Mat2 kPauliX{{Complex{0, 0}, Complex{1, 0}, Complex{1, 0}, Complex{0, 0}}};
const Mat2 kPauliY{{Complex{0, 0}, Complex{0, -1}, Complex{0, 1}, Complex{0, 0}}};
const Mat2 kPauliZ{{Complex{1, 0}, Complex{0, 0}, Complex{0, 0}, Complex{-1, 0}}};

void maybe_depolarize(StateVector& psi, Index q, Real p, Rng& rng) {
  if (!rng.bernoulli(p)) return;
  switch (rng.uniform_int(0, 2)) {
    case 0: psi.apply_1q(kPauliX, q); break;
    case 1: psi.apply_1q(kPauliY, q); break;
    default: psi.apply_1q(kPauliZ, q); break;
  }
}

/// ||K psi||^2 restricted to the 2x2 blocks qubit q couples.
Real kraus_weight(const StateVector& psi, const Mat2& k, Index q) {
  const auto amps = psi.amplitudes();
  const Index stride = Index{1} << q;
  const Index dim = psi.dim();
  Real w = 0;
  for (Index base = 0; base < dim; base += 2 * stride) {
    for (Index off = 0; off < stride; ++off) {
      const Index i0 = base + off, i1 = i0 + stride;
      w += std::norm(k(0, 0) * amps[i0] + k(0, 1) * amps[i1]) +
           std::norm(k(1, 0) * amps[i0] + k(1, 1) * amps[i1]);
    }
  }
  return w;
}

void scale_state(StateVector& psi, Real factor) {
  for (Complex& a : psi.amplitudes_mut()) a *= factor;
}

/// Generalized Kraus jump (Monte Carlo wavefunction) over a precomputed
/// CPTP set: pick K_k with the Born weight ||K_k psi||^2 (the weights sum
/// to ||psi||^2), apply it, renormalize.
void kraus_jump(StateVector& psi, std::span<const Mat2> kraus, Index q,
                Rng& rng) {
  const Real u = rng.uniform() * psi.norm_sq();
  Real acc = 0;
  std::size_t pick = kraus.size() - 1;
  for (std::size_t k = 0; k + 1 < kraus.size(); ++k) {
    acc += kraus_weight(psi, kraus[k], q);
    if (u < acc) {
      pick = k;
      break;
    }
  }
  psi.apply_1q(kraus[pick], q);
  const Real w = psi.norm_sq();
  if (w > 0) scale_state(psi, Real(1) / std::sqrt(w));
}

}  // namespace

std::string_view noise_channel_name(NoiseChannel channel) noexcept {
  switch (channel) {
    case NoiseChannel::kDepolarizing: return "depolarizing";
    case NoiseChannel::kAmplitudeDamping: return "amplitude_damping";
    case NoiseChannel::kPhaseDamping: return "phase_damping";
  }
  return "?";
}

std::optional<NoiseChannel> parse_noise_channel(std::string_view name) noexcept {
  if (name == "depolarizing" || name == "depol")
    return NoiseChannel::kDepolarizing;
  if (name == "amplitude_damping" || name == "amp")
    return NoiseChannel::kAmplitudeDamping;
  if (name == "phase_damping" || name == "phase")
    return NoiseChannel::kPhaseDamping;
  return std::nullopt;
}

std::vector<Mat2> kraus_ops(NoiseChannel channel, Real p) {
  if (p < 0 || p > 1)
    throw std::invalid_argument("kraus_ops: strength must be in [0, 1]");
  const Real keep = std::sqrt(1 - p);
  switch (channel) {
    case NoiseChannel::kDepolarizing: {
      const Real s = std::sqrt(p / 3);
      std::vector<Mat2> ks(4);
      ks[0] = Mat2{{Complex{keep, 0}, Complex{0, 0}, Complex{0, 0}, Complex{keep, 0}}};
      for (int i = 0; i < 3; ++i) {
        const Mat2& pauli = i == 0 ? kPauliX : (i == 1 ? kPauliY : kPauliZ);
        for (int e = 0; e < 4; ++e) ks[1 + i].m[static_cast<std::size_t>(e)] = s * pauli.m[static_cast<std::size_t>(e)];
      }
      return ks;
    }
    case NoiseChannel::kAmplitudeDamping:
      // K0 = diag(1, sqrt(1-g)); K1 = sqrt(g) |0><1|.
      return {Mat2{{Complex{1, 0}, Complex{0, 0}, Complex{0, 0}, Complex{keep, 0}}},
              Mat2{{Complex{0, 0}, Complex{std::sqrt(p), 0}, Complex{0, 0},
                    Complex{0, 0}}}};
    case NoiseChannel::kPhaseDamping:
      // K0 = diag(1, sqrt(1-g)); K1 = sqrt(g) |1><1|.
      return {Mat2{{Complex{1, 0}, Complex{0, 0}, Complex{0, 0}, Complex{keep, 0}}},
              Mat2{{Complex{0, 0}, Complex{0, 0}, Complex{0, 0},
                    Complex{std::sqrt(p), 0}}}};
  }
  throw std::invalid_argument("kraus_ops: unknown channel");
}

std::vector<Mat2> readout_kraus(Real e) {
  if (e < 0 || e > 1)
    throw std::invalid_argument("readout_kraus: probability must be in [0, 1]");
  const Real keep = std::sqrt(1 - e);
  const Real flip = std::sqrt(e);
  return {Mat2{{Complex{keep, 0}, Complex{0, 0}, Complex{0, 0}, Complex{keep, 0}}},
          Mat2{{Complex{0, 0}, Complex{flip, 0}, Complex{flip, 0}, Complex{0, 0}}}};
}

Rng trajectory_rng(std::uint64_t seed, std::size_t trajectory) {
  // Distinct 64-bit seeds per trajectory; Rng::reseed's splitmix64 expansion
  // decorrelates the arithmetic progression.
  return Rng(seed + 0x9e3779b97f4a7c15ULL *
                        (static_cast<std::uint64_t>(trajectory) + 1));
}

void apply_channel_trajectory(StateVector& psi, NoiseChannel channel, Real p,
                              Index q, Rng& rng) {
  if (p <= 0) return;
  if (channel == NoiseChannel::kDepolarizing) {
    // Mixed-unitary channel: the jump weights are state-independent, so the
    // cheap Pauli-insertion path is an exact equivalent of the Kraus jump.
    maybe_depolarize(psi, q, p, rng);
    return;
  }
  const std::vector<Mat2> kraus = kraus_ops(channel, p);
  kraus_jump(psi, kraus, q, rng);
}

void apply_readout_trajectory(StateVector& psi, Real e, Rng& rng) {
  if (e <= 0) return;
  for (Index q = 0; q < psi.num_qubits(); ++q)
    if (rng.bernoulli(e)) psi.apply_antidiag_1q(Complex{1, 0}, Complex{1, 0}, q);
}

void run_circuit_noisy(const Circuit& circuit, std::span<const Real> params,
                       StateVector& psi, const NoiseModel& noise, Rng& rng) {
  if (noise.has_gate_noise()) {
    // The Kraus set depends only on (channel, p): build it once for the
    // whole circuit instead of per gate touch (the depolarizing path
    // needs none — its Pauli insertion is state- and set-independent).
    const bool depol = noise.channel == NoiseChannel::kDepolarizing;
    const std::vector<Mat2> kraus =
        depol ? std::vector<Mat2>{}
              : kraus_ops(noise.channel, noise.gate_error_prob);
    const auto sample_channel = [&](Index q) {
      if (depol)
        maybe_depolarize(psi, q, noise.gate_error_prob, rng);
      else
        kraus_jump(psi, kraus, q, rng);
    };
    for (const Op& op : circuit.ops()) {
      apply_op(op, params, psi);
      sample_channel(op.qubits[0]);
      if (gate_qubit_count(op.kind) == 2) sample_channel(op.qubits[1]);
    }
  } else {
    run_circuit(circuit, params, psi);
  }
  apply_readout_trajectory(psi, noise.readout_error, rng);
}

std::vector<Real> noisy_expect_z(const Circuit& circuit,
                                 std::span<const Real> params,
                                 const StateVector& psi_in,
                                 std::span<const Index> qubits,
                                 const NoiseModel& noise, std::uint64_t seed,
                                 std::size_t trajectories) {
  // One result slot per trajectory, folded in index order afterwards: the
  // average does not depend on the thread count or pool schedule.
  std::vector<std::vector<Real>> per_traj(trajectories);
  parallel_for(0, trajectories, [&](std::size_t t) {
    StateVector psi = psi_in;
    Rng rng = trajectory_rng(seed, t);
    run_circuit_noisy(circuit, params, psi, noise, rng);
    per_traj[t].resize(qubits.size());
    for (std::size_t i = 0; i < qubits.size(); ++i)
      per_traj[t][i] = psi.expect_z(qubits[i]);
  });
  std::vector<Real> acc(qubits.size(), Real(0));
  for (std::size_t t = 0; t < trajectories; ++t)
    for (std::size_t i = 0; i < qubits.size(); ++i) acc[i] += per_traj[t][i];
  for (Real& a : acc) a /= static_cast<Real>(trajectories);
  return acc;
}

}  // namespace qugeo::qsim
