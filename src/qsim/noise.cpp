#include "qsim/noise.h"

#include "common/parallel.h"
#include "qsim/executor.h"

namespace qugeo::qsim {
namespace {

void maybe_depolarize(StateVector& psi, Index q, Real p, Rng& rng) {
  if (p <= 0 || !rng.bernoulli(p)) return;
  static const Mat2 kX{{Complex{0, 0}, Complex{1, 0}, Complex{1, 0}, Complex{0, 0}}};
  static const Mat2 kY{{Complex{0, 0}, Complex{0, -1}, Complex{0, 1}, Complex{0, 0}}};
  static const Mat2 kZ{{Complex{1, 0}, Complex{0, 0}, Complex{0, 0}, Complex{-1, 0}}};
  switch (rng.uniform_int(0, 2)) {
    case 0: psi.apply_1q(kX, q); break;
    case 1: psi.apply_1q(kY, q); break;
    default: psi.apply_1q(kZ, q); break;
  }
}

}  // namespace

Rng trajectory_rng(std::uint64_t seed, std::size_t trajectory) {
  // Distinct 64-bit seeds per trajectory; Rng::reseed's splitmix64 expansion
  // decorrelates the arithmetic progression.
  return Rng(seed + 0x9e3779b97f4a7c15ULL *
                        (static_cast<std::uint64_t>(trajectory) + 1));
}

void run_circuit_noisy(const Circuit& circuit, std::span<const Real> params,
                       StateVector& psi, const NoiseModel& noise, Rng& rng) {
  for (const Op& op : circuit.ops()) {
    apply_op(op, params, psi);
    const int nq = gate_qubit_count(op.kind);
    maybe_depolarize(psi, op.qubits[0], noise.depolarizing_prob, rng);
    if (nq == 2)
      maybe_depolarize(psi, op.qubits[1], noise.depolarizing_prob, rng);
  }
}

std::vector<Real> noisy_expect_z(const Circuit& circuit,
                                 std::span<const Real> params,
                                 const StateVector& psi_in,
                                 std::span<const Index> qubits,
                                 const NoiseModel& noise, std::uint64_t seed,
                                 std::size_t trajectories) {
  // One result slot per trajectory, folded in index order afterwards: the
  // average does not depend on the thread count or pool schedule.
  std::vector<std::vector<Real>> per_traj(trajectories);
  parallel_for(0, trajectories, [&](std::size_t t) {
    StateVector psi = psi_in;
    Rng rng = trajectory_rng(seed, t);
    run_circuit_noisy(circuit, params, psi, noise, rng);
    per_traj[t].resize(qubits.size());
    for (std::size_t i = 0; i < qubits.size(); ++i)
      per_traj[t][i] = psi.expect_z(qubits[i]);
  });
  std::vector<Real> acc(qubits.size(), Real(0));
  for (std::size_t t = 0; t < trajectories; ++t)
    for (std::size_t i = 0; i < qubits.size(); ++i) acc[i] += per_traj[t][i];
  for (Real& a : acc) a /= static_cast<Real>(trajectories);
  return acc;
}

}  // namespace qugeo::qsim
