#include "qsim/shots.h"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.h"

namespace qugeo::qsim {
namespace {

/// Inverse-CDF draw of one basis state: the index of the first cdf entry
/// exceeding u (u pre-scaled by the caller to the cdf's total mass).
Index sample_outcome(std::span<const Real> cdf, Real u) {
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<Index>(std::distance(cdf.begin(), it));
}

}  // namespace

Rng shot_rng(std::uint64_t seed, std::size_t shot) {
  return Rng(seed +
             0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shot) + 1));
}

std::vector<Real> sampled_probabilities_from_cdf(std::span<const Real> cdf,
                                                 Index num_qubits,
                                                 std::uint64_t seed,
                                                 std::size_t shots,
                                                 Real readout_error) {
  if (shots == 0)
    throw std::invalid_argument("sampled_probabilities_from_cdf: 0 shots");
  const Index dim = Index{1} << num_qubits;
  if (cdf.size() != dim)
    throw std::invalid_argument(
        "sampled_probabilities_from_cdf: cdf size must be 2^num_qubits");
  const Real total = cdf.back();

  // A fixed number of accumulation slots (independent of the thread count)
  // each count a strided subset of shots sequentially; the slots fold in
  // index order afterwards. Every shot draws its own (seed, shot)
  // sub-stream, so neither the slot assignment nor the pool schedule can
  // change the counts.
  const std::size_t slots = std::min<std::size_t>(shots, 64);
  std::vector<std::vector<std::uint64_t>> partial(slots);
  parallel_for(0, slots, [&](std::size_t s) {
    std::vector<std::uint64_t> counts(dim, 0);
    for (std::size_t shot = s; shot < shots; shot += slots) {
      Rng rng = shot_rng(seed, shot);
      Index outcome = sample_outcome(cdf, rng.uniform() * total);
      if (readout_error > 0)
        for (Index q = 0; q < num_qubits; ++q)
          if (rng.bernoulli(readout_error)) outcome ^= Index{1} << q;
      ++counts[outcome];
    }
    partial[s] = std::move(counts);
  });

  std::vector<std::uint64_t> counts(dim, 0);
  for (std::size_t s = 0; s < slots; ++s)
    for (Index k = 0; k < dim; ++k) counts[k] += partial[s][k];
  std::vector<Real> probs(dim);
  const Real inv = Real(1) / static_cast<Real>(shots);
  for (Index k = 0; k < dim; ++k)
    probs[k] = static_cast<Real>(counts[k]) * inv;
  return probs;
}

void apply_readout_to_probabilities(std::span<Real> probs, Index num_qubits,
                                    Real readout_error) {
  if (readout_error <= 0) return;
  const Index dim = Index{1} << num_qubits;
  if (probs.size() != dim)
    throw std::invalid_argument(
        "apply_readout_to_probabilities: size must be 2^num_qubits");
  for (Index q = 0; q < num_qubits; ++q) {
    const Index mask = Index{1} << q;
    for (Index k = 0; k < dim; ++k) {
      if (k & mask) continue;  // handle each (k, k^mask) pair once
      const Real lo = probs[k], hi = probs[k | mask];
      probs[k] = (1 - readout_error) * lo + readout_error * hi;
      probs[k | mask] = (1 - readout_error) * hi + readout_error * lo;
    }
  }
}

std::vector<Real> expect_z_from_probabilities(std::span<const Real> probs,
                                              std::span<const Index> qubits) {
  std::vector<Real> z(qubits.size(), Real(0));
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    const Index mask = Index{1} << qubits[i];
    for (Index k = 0; k < probs.size(); ++k)
      z[i] += ((k & mask) ? Real(-1) : Real(1)) * probs[k];
  }
  return z;
}

std::vector<Real> marginal_from_probabilities(std::span<const Real> probs,
                                              std::span<const Index> qubits) {
  std::vector<Real> m(Index{1} << qubits.size(), Real(0));
  for (Index k = 0; k < probs.size(); ++k) {
    Index out = 0;
    for (std::size_t i = 0; i < qubits.size(); ++i)
      if ((k >> qubits[i]) & 1) out |= Index{1} << i;
    m[out] += probs[k];
  }
  return m;
}

}  // namespace qugeo::qsim
