#include "qsim/density_matrix.h"

#include <stdexcept>

#include "common/math_utils.h"

namespace qugeo::qsim {
namespace {

constexpr Index kMaxDensityQubits = 13;  // 4^13 complexes = 1 GiB; cap below

}  // namespace

Index max_density_qubits() noexcept { return kMaxDensityQubits; }

DensityMatrix::DensityMatrix(Index num_qubits)
    : num_qubits_(num_qubits), dim_(Index{1} << num_qubits) {
  if (num_qubits > kMaxDensityQubits)
    throw std::invalid_argument("DensityMatrix: too many qubits");
  rho_.assign(dim_ * dim_, Complex{0, 0});
  rho_[0] = Complex{1, 0};
}

DensityMatrix DensityMatrix::from_state(const StateVector& psi) {
  DensityMatrix rho(psi.num_qubits());
  rho.set_from_state(psi);
  return rho;
}

void DensityMatrix::reset() {
  std::fill(rho_.begin(), rho_.end(), Complex{0, 0});
  rho_[0] = Complex{1, 0};
}

void DensityMatrix::set_from_state(const StateVector& psi) {
  if (psi.num_qubits() != num_qubits_)
    throw std::invalid_argument("DensityMatrix::set_from_state: qubit count mismatch");
  const auto amps = psi.amplitudes();
  for (Index r = 0; r < dim_; ++r)
    for (Index c = 0; c < dim_; ++c)
      rho_[r * dim_ + c] = amps[r] * std::conj(amps[c]);
}

void DensityMatrix::apply_1q(const Mat2& u, Index q) {
  const Index stride = Index{1} << q;
  // Left multiply by U over row index pairs.
  for (Index col = 0; col < dim_; ++col) {
    for (Index base = 0; base < dim_; base += 2 * stride) {
      for (Index off = 0; off < stride; ++off) {
        const Index r0 = base + off, r1 = r0 + stride;
        const Complex a = rho_[r0 * dim_ + col];
        const Complex b = rho_[r1 * dim_ + col];
        rho_[r0 * dim_ + col] = u(0, 0) * a + u(0, 1) * b;
        rho_[r1 * dim_ + col] = u(1, 0) * a + u(1, 1) * b;
      }
    }
  }
  // Right multiply by U^+ over column index pairs.
  const Mat2 ud = dagger(u);
  for (Index row = 0; row < dim_; ++row) {
    Complex* r = rho_.data() + row * dim_;
    for (Index base = 0; base < dim_; base += 2 * stride) {
      for (Index off = 0; off < stride; ++off) {
        const Index c0 = base + off, c1 = c0 + stride;
        const Complex a = r[c0];
        const Complex b = r[c1];
        // (rho U^+)_{.,c} = sum_k rho_{.,k} (U^+)_{k,c}
        r[c0] = a * ud(0, 0) + b * ud(1, 0);
        r[c1] = a * ud(0, 1) + b * ud(1, 1);
      }
    }
  }
}

void DensityMatrix::apply_controlled_1q(const Mat2& u, Index control,
                                        Index target) {
  const Index cmask = Index{1} << control;
  const Index stride = Index{1} << target;
  // Left: rows with control bit set.
  for (Index col = 0; col < dim_; ++col) {
    for (Index base = 0; base < dim_; base += 2 * stride) {
      for (Index off = 0; off < stride; ++off) {
        const Index r0 = base + off;
        if (!(r0 & cmask)) continue;
        const Index r1 = r0 + stride;
        const Complex a = rho_[r0 * dim_ + col];
        const Complex b = rho_[r1 * dim_ + col];
        rho_[r0 * dim_ + col] = u(0, 0) * a + u(0, 1) * b;
        rho_[r1 * dim_ + col] = u(1, 0) * a + u(1, 1) * b;
      }
    }
  }
  const Mat2 ud = dagger(u);
  for (Index row = 0; row < dim_; ++row) {
    Complex* r = rho_.data() + row * dim_;
    for (Index base = 0; base < dim_; base += 2 * stride) {
      for (Index off = 0; off < stride; ++off) {
        const Index c0 = base + off;
        if (!(c0 & cmask)) continue;
        const Index c1 = c0 + stride;
        const Complex a = r[c0];
        const Complex b = r[c1];
        r[c0] = a * ud(0, 0) + b * ud(1, 0);
        r[c1] = a * ud(0, 1) + b * ud(1, 1);
      }
    }
  }
}

void DensityMatrix::apply_2q(const Mat4& u, Index q0, Index q1) {
  const Index m0 = Index{1} << q0;
  const Index m1 = Index{1} << q1;
  const Index lo = q0 < q1 ? q0 : q1;
  const Index hi = q0 < q1 ? q1 : q0;
  const Index quarter = dim_ / 4;
  // Left multiply by U over row quadruples (per column), then right
  // multiply by U^+ over column quadruples (per row) — the same two-pass
  // structure as apply_1q, lifted to the 4-dim sub-basis.
  for (Index col = 0; col < dim_; ++col) {
    for (Index j = 0; j < quarter; ++j) {
      const Index r0 = insert_two_zero_bits(j, lo, hi);
      const Index r1 = r0 | m0;
      const Index r2 = r0 | m1;
      const Index r3 = r1 | m1;
      const Complex a0 = rho_[r0 * dim_ + col];
      const Complex a1 = rho_[r1 * dim_ + col];
      const Complex a2 = rho_[r2 * dim_ + col];
      const Complex a3 = rho_[r3 * dim_ + col];
      rho_[r0 * dim_ + col] = u(0, 0) * a0 + u(0, 1) * a1 + u(0, 2) * a2 + u(0, 3) * a3;
      rho_[r1 * dim_ + col] = u(1, 0) * a0 + u(1, 1) * a1 + u(1, 2) * a2 + u(1, 3) * a3;
      rho_[r2 * dim_ + col] = u(2, 0) * a0 + u(2, 1) * a1 + u(2, 2) * a2 + u(2, 3) * a3;
      rho_[r3 * dim_ + col] = u(3, 0) * a0 + u(3, 1) * a1 + u(3, 2) * a2 + u(3, 3) * a3;
    }
  }
  const Mat4 ud = dagger(u);
  for (Index row = 0; row < dim_; ++row) {
    Complex* r = rho_.data() + row * dim_;
    for (Index j = 0; j < quarter; ++j) {
      const Index c0 = insert_two_zero_bits(j, lo, hi);
      const Index c1 = c0 | m0;
      const Index c2 = c0 | m1;
      const Index c3 = c1 | m1;
      const Complex a0 = r[c0];
      const Complex a1 = r[c1];
      const Complex a2 = r[c2];
      const Complex a3 = r[c3];
      // (rho U^+)_{.,c} = sum_k rho_{.,k} (U^+)_{k,c}
      r[c0] = a0 * ud(0, 0) + a1 * ud(1, 0) + a2 * ud(2, 0) + a3 * ud(3, 0);
      r[c1] = a0 * ud(0, 1) + a1 * ud(1, 1) + a2 * ud(2, 1) + a3 * ud(3, 1);
      r[c2] = a0 * ud(0, 2) + a1 * ud(1, 2) + a2 * ud(2, 2) + a3 * ud(3, 2);
      r[c3] = a0 * ud(0, 3) + a1 * ud(1, 3) + a2 * ud(2, 3) + a3 * ud(3, 3);
    }
  }
}

void DensityMatrix::apply_swap(Index a, Index b) {
  if (a == b) return;
  const Index ma = Index{1} << a, mb = Index{1} << b;
  auto swapped = [&](Index k) {
    const bool ba = (k & ma) != 0, bb = (k & mb) != 0;
    if (ba == bb) return k;
    return (k ^ ma) ^ mb;
  };
  std::vector<Complex> next(rho_.size());
  for (Index r = 0; r < dim_; ++r)
    for (Index c = 0; c < dim_; ++c)
      next[swapped(r) * dim_ + swapped(c)] = rho_[r * dim_ + c];
  rho_ = std::move(next);
}

void DensityMatrix::apply_kraus(std::span<const Mat2> kraus, Index q) {
  const Index stride = Index{1} << q;
  // sum_k K_k rho K_k^+, accumulated over the 2x2 blocks the qubit couples:
  // for fixed "rest" indices, the channel acts on the block
  // B = [[rho(r0,c0), rho(r0,c1)], [rho(r1,c0), rho(r1,c1)]].
  std::vector<Complex> next(rho_.size(), Complex{0, 0});
  for (const Mat2& k : kraus) {
    const Mat2 kd = dagger(k);
    for (Index rbase = 0; rbase < dim_; rbase += 2 * stride) {
      for (Index roff = 0; roff < stride; ++roff) {
        const Index r0 = rbase + roff, r1 = r0 + stride;
        for (Index cbase = 0; cbase < dim_; cbase += 2 * stride) {
          for (Index coff = 0; coff < stride; ++coff) {
            const Index c0 = cbase + coff, c1 = c0 + stride;
            const Complex b00 = rho_[r0 * dim_ + c0];
            const Complex b01 = rho_[r0 * dim_ + c1];
            const Complex b10 = rho_[r1 * dim_ + c0];
            const Complex b11 = rho_[r1 * dim_ + c1];
            // K B
            const Complex t00 = k(0, 0) * b00 + k(0, 1) * b10;
            const Complex t01 = k(0, 0) * b01 + k(0, 1) * b11;
            const Complex t10 = k(1, 0) * b00 + k(1, 1) * b10;
            const Complex t11 = k(1, 0) * b01 + k(1, 1) * b11;
            // (K B) K^+
            next[r0 * dim_ + c0] += t00 * kd(0, 0) + t01 * kd(1, 0);
            next[r0 * dim_ + c1] += t00 * kd(0, 1) + t01 * kd(1, 1);
            next[r1 * dim_ + c0] += t10 * kd(0, 0) + t11 * kd(1, 0);
            next[r1 * dim_ + c1] += t10 * kd(0, 1) + t11 * kd(1, 1);
          }
        }
      }
    }
  }
  rho_ = std::move(next);
}

void DensityMatrix::depolarize(Index q, Real p) {
  if (p <= 0) return;
  // (1-p) rho + (p/3)(X rho X + Y rho Y + Z rho Z)
  //   = (1-p') rho + p' Tr_q(rho) (x) I/2,  p' = 4p/3.
  // Applied block-wise in place: off-diagonal (in q) entries scale by
  // (1-p'); the diagonal pair is mixed toward its average.
  const Real keep = 1 - 4 * p / 3;
  const Index stride = Index{1} << q;
  for (Index rbase = 0; rbase < dim_; rbase += 2 * stride) {
    for (Index roff = 0; roff < stride; ++roff) {
      const Index r0 = rbase + roff, r1 = r0 + stride;
      for (Index cbase = 0; cbase < dim_; cbase += 2 * stride) {
        for (Index coff = 0; coff < stride; ++coff) {
          const Index c0 = cbase + coff, c1 = c0 + stride;
          Complex& b00 = rho_[r0 * dim_ + c0];
          Complex& b11 = rho_[r1 * dim_ + c1];
          const Complex avg = (b00 + b11) * Real(0.5);
          b00 = keep * b00 + (1 - keep) * avg;
          b11 = keep * b11 + (1 - keep) * avg;
          rho_[r0 * dim_ + c1] *= keep;
          rho_[r1 * dim_ + c0] *= keep;
        }
      }
    }
  }
}

Real DensityMatrix::trace() const {
  Real t = 0;
  for (Index k = 0; k < dim_; ++k) t += rho_[k * dim_ + k].real();
  return t;
}

Real DensityMatrix::purity() const {
  // Tr(rho^2) = sum_{r,c} rho_{r,c} rho_{c,r} = sum |rho_{r,c}|^2 (Hermitian).
  Real p = 0;
  for (const Complex& v : rho_) p += std::norm(v);
  return p;
}

std::vector<Real> DensityMatrix::probabilities() const {
  std::vector<Real> p(dim_);
  for (Index k = 0; k < dim_; ++k) p[k] = rho_[k * dim_ + k].real();
  return p;
}

Real DensityMatrix::expect_z(Index q) const {
  const Index mask = Index{1} << q;
  Real e = 0;
  for (Index k = 0; k < dim_; ++k)
    e += ((k & mask) ? Real(-1) : Real(1)) * rho_[k * dim_ + k].real();
  return e;
}

void run_circuit_density(const Circuit& circuit, std::span<const Real> params,
                         DensityMatrix& rho, Real depolarizing_prob) {
  NoiseModel noise;
  noise.gate_error_prob = depolarizing_prob;
  run_circuit_density(circuit, params, rho, noise);
}

void run_circuit_density(const Circuit& circuit, std::span<const Real> params,
                         DensityMatrix& rho, const NoiseModel& noise) {
  if (rho.num_qubits() != circuit.num_qubits())
    throw std::invalid_argument("run_circuit_density: qubit count mismatch");
  // The depolarizing channel keeps its dedicated in-place fast path; the
  // damping channels go through the generic Kraus application.
  const bool use_kraus = noise.has_gate_noise() &&
                         noise.channel != NoiseChannel::kDepolarizing;
  std::vector<Mat2> channel_kraus;
  if (use_kraus)
    channel_kraus = kraus_ops(noise.channel, noise.gate_error_prob);
  const auto apply_gate_noise = [&](Index q) {
    if (!noise.has_gate_noise()) return;
    if (use_kraus)
      rho.apply_kraus(channel_kraus, q);
    else
      rho.depolarize(q, noise.gate_error_prob);
  };
  for (const Op& op : circuit.ops()) {
    const auto vals = Circuit::resolve_params(op, params);
    switch (op.kind) {
      case GateKind::kSWAP:
        rho.apply_swap(op.qubits[0], op.qubits[1]);
        break;
      case GateKind::kFused2Q:
      case GateKind::kFusedCtl2Q:
        // Only reachable on the noiseless / readout-only path (fusion is
        // illegal under gate noise — see optimizer.h legality rules). The
        // block-diagonal kind runs through the dense conjugation too: the
        // density path is not the perf-critical one.
        rho.apply_2q(circuit.matrix(op), op.qubits[0], op.qubits[1]);
        break;
      case GateKind::kCX:
      case GateKind::kCZ:
      case GateKind::kCRY:
      case GateKind::kCU3:
        rho.apply_controlled_1q(gate_matrix(op.kind, vals), op.qubits[0],
                                op.qubits[1]);
        break;
      case GateKind::kI:
      case GateKind::kX:
      case GateKind::kY:
      case GateKind::kZ:
      case GateKind::kH:
      case GateKind::kS:
      case GateKind::kSdg:
      case GateKind::kT:
      case GateKind::kTdg:
      case GateKind::kRX:
      case GateKind::kRY:
      case GateKind::kRZ:
      case GateKind::kPhase:
      case GateKind::kU3:
        rho.apply_1q(gate_matrix(op.kind, vals), op.qubits[0]);
        break;
    }
    apply_gate_noise(op.qubits[0]);
    if (gate_qubit_count(op.kind) == 2) apply_gate_noise(op.qubits[1]);
  }
  if (noise.has_readout_error()) {
    const std::vector<Mat2> rk = readout_kraus(noise.readout_error);
    for (Index q = 0; q < rho.num_qubits(); ++q) rho.apply_kraus(rk, q);
  }
}

}  // namespace qugeo::qsim
