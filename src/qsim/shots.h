// Deterministic shot sampling: the one audited path that turns an exact
// probability distribution into empirical (finite-shot) estimates.
//
// On hardware the decoder reads expectations from a finite measurement
// budget; this module emulates that for any backend's probability output.
// Every shot draws from its own RNG sub-stream derived from (seed, shot
// index) and the per-slot counts are folded in fixed order, so estimates
// are bit-identical for any QUGEO_THREADS value — the same contract the
// trajectory sampler honors. ShotBackend (backend.h) and the
// core/shot_readout wrappers both delegate here, pinned byte-identical by
// test_core_shot_readout.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace qugeo::qsim {

/// Independent RNG sub-stream for one measurement shot (same construction
/// as trajectory_rng; shot s always sees the same stream regardless of the
/// thread that draws it).
[[nodiscard]] Rng shot_rng(std::uint64_t seed, std::size_t shot);

/// Empirical probability vector from `shots` basis-state samples of the
/// cumulative distribution `cdf` (length 2^num_qubits, last entry the total
/// mass). Each sampled outcome independently flips every bit with
/// probability `readout_error` before being counted — the sampled
/// realization of the readout bit-flip channel. Shots fan out across the
/// shared thread pool in fixed slot strides; the result is bit-identical
/// for any thread count. `shots` must be positive.
[[nodiscard]] std::vector<Real> sampled_probabilities_from_cdf(
    std::span<const Real> cdf, Index num_qubits, std::uint64_t seed,
    std::size_t shots, Real readout_error = 0);

/// Apply the readout bit-flip channel exactly to a probability vector
/// (the classical confusion matrix, i.e. the infinite-shot limit of the
/// sampled flips): per qubit, p'[k] = (1-e) p[k] + e p[k ^ bit]. In place,
/// O(n 2^n). No-op for e <= 0.
void apply_readout_to_probabilities(std::span<Real> probs, Index num_qubits,
                                    Real readout_error);

/// <Z_q> for each listed qubit of a (possibly empirical) probability
/// vector over the full computational basis.
[[nodiscard]] std::vector<Real> expect_z_from_probabilities(
    std::span<const Real> probs, std::span<const Index> qubits);

/// Marginal distribution over an ordered qubit subset of a (possibly
/// empirical) probability vector; bit i of the result index is the value
/// of qubits[i].
[[nodiscard]] std::vector<Real> marginal_from_probabilities(
    std::span<const Real> probs, std::span<const Index> qubits);

}  // namespace qugeo::qsim
