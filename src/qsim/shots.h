// Deterministic shot sampling: the one audited path that turns an exact
// probability distribution into empirical (finite-shot) estimates.
//
// On hardware the decoder reads expectations from a finite measurement
// budget; this module emulates that for any backend's probability output.
// Every shot draws from its own RNG sub-stream derived from (seed, shot
// index) and the per-slot counts are folded in fixed order, so estimates
// are bit-identical for any QUGEO_THREADS value — the same contract the
// trajectory sampler honors. ShotBackend (backend.h) and the
// core/shot_readout wrappers both delegate here, pinned byte-identical by
// test_core_shot_readout.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace qugeo::qsim {

/// \brief Independent RNG sub-stream for one measurement shot.
///
/// Same construction as trajectory_rng: shot s always sees the same
/// stream regardless of the thread that draws it, which is what makes the
/// sampled estimates bit-identical for any QUGEO_THREADS value.
/// \param seed  base seed (ExecutionConfig::seed, salted per QuBatch
///              chunk by QuGeoModel so chunks see independent noise).
/// \param shot  shot index within [0, shots).
[[nodiscard]] Rng shot_rng(std::uint64_t seed, std::size_t shot);

/// \brief Empirical probability vector from `shots` basis-state samples
/// of the cumulative distribution `cdf`.
///
/// Each sampled outcome independently flips every bit with probability
/// `readout_error` before being counted — the sampled realization of the
/// readout bit-flip channel. Shots fan out across the shared thread pool
/// in fixed slot strides; counts fold in fixed order, so the result is
/// bit-identical for any thread count.
///
/// Shot sampling is downstream of circuit execution, so it composes
/// freely with run fusion (optimizer.h): the CDF a fused execution
/// produces equals the unfused one to 1e-10, and the sampled estimates
/// are then bitwise-reproducible functions of (cdf, seed, shots).
///
/// \param cdf            prefix sums over the 2^num_qubits basis states
///                       (last entry = total mass; see
///                       StateVector::cumulative_probabilities).
/// \param num_qubits     register width (cdf.size() == 2^num_qubits).
/// \param seed           base seed for the per-shot sub-streams.
/// \param shots          sample budget; must be positive.
/// \param readout_error  per-qubit bit-flip probability at readout.
[[nodiscard]] std::vector<Real> sampled_probabilities_from_cdf(
    std::span<const Real> cdf, Index num_qubits, std::uint64_t seed,
    std::size_t shots, Real readout_error = 0);

/// \brief Apply the readout bit-flip channel exactly to a probability
/// vector — the classical confusion matrix, i.e. the infinite-shot limit
/// of the sampled flips.
///
/// Per qubit, p'[k] = (1-e) p[k] + e p[k ^ bit]. In place, O(n 2^n).
/// No-op for e <= 0.
void apply_readout_to_probabilities(std::span<Real> probs, Index num_qubits,
                                    Real readout_error);

/// \brief <Z_q> for each listed qubit of a (possibly empirical)
/// probability vector over the full computational basis.
[[nodiscard]] std::vector<Real> expect_z_from_probabilities(
    std::span<const Real> probs, std::span<const Index> qubits);

/// \brief Marginal distribution over an ordered qubit subset of a
/// (possibly empirical) probability vector; bit i of the result index is
/// the value of qubits[i].
[[nodiscard]] std::vector<Real> marginal_from_probabilities(
    std::span<const Real> probs, std::span<const Index> qubits);

}  // namespace qugeo::qsim
