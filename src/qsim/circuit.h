// Circuit intermediate representation: an ordered list of gate operations
// whose rotation angles are either literal constants or references into an
// external trainable-parameter table.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "qsim/gate.h"

namespace qugeo::qsim {

/// Sentinel marking an op angle as a literal (not trainable).
inline constexpr std::uint32_t kLiteralParam = 0xffffffffu;

/// Sentinel marking an op as carrying no dense-matrix reference.
inline constexpr std::uint32_t kNoMatrix = 0xffffffffu;

/// One gate application. For controlled gates qubits[0] is the control.
struct Op {
  GateKind kind = GateKind::kI;
  std::array<Index, 2> qubits{0, 0};
  /// Per-angle parameter table indices (kLiteralParam => use literals[i]).
  std::array<std::uint32_t, 3> param_ids{kLiteralParam, kLiteralParam, kLiteralParam};
  std::array<Real, 3> literals{0, 0, 0};
  /// For kFused2Q: index into the owning Circuit's Mat4 side table
  /// (Circuit::matrix resolves it). kNoMatrix for every other kind.
  std::uint32_t matrix_id = kNoMatrix;
};

/// Reference to a trainable parameter slot in a Circuit's table.
struct ParamRef {
  std::uint32_t id = kLiteralParam;
};

class Circuit {
 public:
  explicit Circuit(Index num_qubits) : num_qubits_(num_qubits) {}

  [[nodiscard]] Index num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t num_ops() const noexcept { return ops_.size(); }
  [[nodiscard]] std::size_t num_params() const noexcept { return num_params_; }
  [[nodiscard]] std::span<const Op> ops() const noexcept { return ops_; }

  /// Allocate a fresh trainable parameter slot.
  [[nodiscard]] ParamRef new_param() { return ParamRef{num_params_++}; }

  /// Allocate `n` consecutive trainable parameter slots; returns the first.
  [[nodiscard]] ParamRef new_params(std::uint32_t n) {
    const ParamRef first{num_params_};
    num_params_ += n;
    return first;
  }

  // ---- fixed gates -------------------------------------------------------
  void x(Index q) { push1(GateKind::kX, q); }
  void y(Index q) { push1(GateKind::kY, q); }
  void z(Index q) { push1(GateKind::kZ, q); }
  void h(Index q) { push1(GateKind::kH, q); }
  void s(Index q) { push1(GateKind::kS, q); }
  void sdg(Index q) { push1(GateKind::kSdg, q); }
  void t(Index q) { push1(GateKind::kT, q); }
  void tdg(Index q) { push1(GateKind::kTdg, q); }
  void cx(Index control, Index target) { push2(GateKind::kCX, control, target); }
  void cz(Index control, Index target) { push2(GateKind::kCZ, control, target); }
  void swap(Index a, Index b) { push2(GateKind::kSWAP, a, b); }

  /// Append a dense two-qubit unitary on (a, b). The 2-bit sub-index of
  /// `u` uses bit 0 = qubit a, bit 1 = qubit b. Produced by the optimizer's
  /// two-qubit run fusion; execution-internal (no QASM form, not noisy-path
  /// legal — see optimizer.h fusion legality rules).
  void fused2q(Index a, Index b, const Mat4& u);

  /// Append a block-diagonal two-qubit unitary: `u` (same sub-index
  /// convention, bit 0 = control) must have zero control-mixing entries —
  /// it applies one 2x2 block to `target` per control value, which the
  /// statevector executes with the fast dual half-space kernel. Throws if
  /// `u` is not exactly block-diagonal in the control bit.
  void fused_ctl2q(Index control, Index target, const Mat4& u);

  // ---- rotations with literal angles -------------------------------------
  void rx(Index q, Real angle) { push_rot(GateKind::kRX, q, angle); }
  void ry(Index q, Real angle) { push_rot(GateKind::kRY, q, angle); }
  void rz(Index q, Real angle) { push_rot(GateKind::kRZ, q, angle); }
  void phase(Index q, Real angle) { push_rot(GateKind::kPhase, q, angle); }
  void u3(Index q, Real theta, Real phi, Real lambda);
  void cry(Index control, Index target, Real angle);
  void cu3(Index control, Index target, Real theta, Real phi, Real lambda);

  // ---- rotations bound to trainable parameters ---------------------------
  void rx(Index q, ParamRef p) { push_rot(GateKind::kRX, q, p); }
  void ry(Index q, ParamRef p) { push_rot(GateKind::kRY, q, p); }
  void rz(Index q, ParamRef p) { push_rot(GateKind::kRZ, q, p); }
  /// U3 consuming three consecutive parameter slots starting at p.
  void u3(Index q, ParamRef p);
  void cry(Index control, Index target, ParamRef p);
  /// CU3 consuming three consecutive parameter slots starting at p.
  void cu3(Index control, Index target, ParamRef p);

  /// Append all ops of another circuit (parameter ids are shifted so the
  /// two tables concatenate). Returns the id offset applied.
  std::uint32_t append(const Circuit& other);

  /// Longest chain of qubit-overlapping ops (simple ASAP depth metric).
  [[nodiscard]] std::size_t depth() const;

  /// Count ops acting on >= 2 qubits.
  [[nodiscard]] std::size_t two_qubit_op_count() const;

  /// Resolve the three angle values of an op against a parameter table.
  [[nodiscard]] static std::array<Real, 3> resolve_params(
      const Op& op, std::span<const Real> table);

  /// Dense-matrix side table (one entry per kFused2Q op).
  [[nodiscard]] std::span<const Mat4> matrices() const noexcept { return mats_; }

  /// The 4x4 matrix a kFused2Q / kFusedCtl2Q op references; throws for
  /// other kinds or a dangling matrix_id (an op detached from its owning
  /// circuit).
  [[nodiscard]] const Mat4& matrix(const Op& op) const;

 private:
  void push1(GateKind kind, Index q);
  void push2(GateKind kind, Index a, Index b);
  void push_rot(GateKind kind, Index q, Real angle);
  void push_rot(GateKind kind, Index q, ParamRef p);
  void check_qubit(Index q) const;

  Index num_qubits_;
  std::vector<Op> ops_;
  std::vector<Mat4> mats_;
  std::uint32_t num_params_ = 0;
};

}  // namespace qugeo::qsim
