// Pluggable simulation-backend layer: one interface over exact statevector
// execution, exact density-matrix (channel) execution, and sampled
// noisy-trajectory execution.
//
// The core layer (QuGeoModel, Experiment, benches) selects a backend purely
// through ExecutionConfig — no call-site special-casing — so the same
// pipeline runs noiselessly, with exact depolarizing channels, or with
// Pauli-twirl trajectories. Noiseless execution paths canonicalize the
// circuit first (optimizer.h: single-qubit run fusion, diagonal-run
// merging), so every backend benefits from the GateClass kernel dispatch;
// with a channel active the original op stream executes verbatim, because
// fusing k gates into one would also fuse their k noise insertion points.
//
// Capability mask:
//  * supports_adjoint — the backend exposes a statevector the adjoint
//    differentiation engine can run on (training-grade gradients).
//  * exact_noise     — NoiseModel channels are applied exactly (density
//    matrix) rather than estimated by sampling.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "qsim/circuit.h"
#include "qsim/density_matrix.h"
#include "qsim/noise.h"
#include "qsim/statevector.h"

namespace qugeo::qsim {

enum class BackendKind : std::uint8_t {
  kStatevector,    ///< exact pure-state simulation (fast-path kernels)
  kDensityMatrix,  ///< exact mixed-state simulation with exact channels
  kTrajectory,     ///< Pauli-twirl trajectory sampling over the thread pool
};

/// "statevector" | "density" | "trajectory".
[[nodiscard]] std::string_view backend_name(BackendKind kind) noexcept;

/// Inverse of backend_name (also accepts "density_matrix"); nullopt on
/// unknown names.
[[nodiscard]] std::optional<BackendKind> parse_backend_kind(
    std::string_view name) noexcept;

struct BackendCaps {
  bool supports_adjoint = false;
  bool exact_noise = false;
};

/// Everything the core layer needs to pick and parameterize a backend.
/// The default (noiseless statevector) reproduces the pre-backend pipeline
/// bit-identically.
struct ExecutionConfig {
  BackendKind backend = BackendKind::kStatevector;
  NoiseModel noise;                ///< ignored by the statevector backend
  std::size_t trajectories = 64;   ///< trajectory backend sample count
  std::uint64_t seed = 0x51d5eedULL;  ///< base seed for trajectory streams
};

/// Environment overrides for smoke runs and CI: QUGEO_BACKEND
/// ("statevector" | "density" | "trajectory"), QUGEO_NOISE_P (real),
/// QUGEO_TRAJECTORIES (integer). Unset variables leave `base` untouched.
[[nodiscard]] ExecutionConfig apply_env_overrides(ExecutionConfig base);

/// A stateful execution engine: prepare (or inject) a state, run a circuit,
/// read out probabilities / expectations. Backends are cheap to construct
/// and NOT thread-safe; parallel call sites create one per task (QuGeoModel
/// does so per QuBatch chunk).
class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual BackendKind kind() const noexcept = 0;
  [[nodiscard]] virtual BackendCaps caps() const noexcept = 0;

  /// Current qubit count (0 before the first prepare/run).
  [[nodiscard]] virtual Index num_qubits() const noexcept = 0;

  /// Reset the internal state to |0...0> on `num_qubits` qubits.
  virtual void prepare(Index num_qubits) = 0;

  /// Execute the circuit from the given initial state (the encoder's
  /// output), replacing the internal state with the result. Trainable
  /// angles resolve against `params`.
  virtual void run(const Circuit& circuit, std::span<const Real> params,
                   StateVector initial_state) = 0;

  /// Execute from |0...0>.
  void run(const Circuit& circuit, std::span<const Real> params) {
    run(circuit, params, StateVector(circuit.num_qubits()));
  }

  /// Born probabilities of the executed state (for the trajectory backend:
  /// the trajectory-averaged distribution, an unbiased estimate of the
  /// channel's diagonal).
  [[nodiscard]] virtual std::vector<Real> probabilities() const = 0;

  /// <Z_q> for each listed qubit.
  [[nodiscard]] virtual std::vector<Real> expect_z(
      std::span<const Index> qubits) const = 0;
};

class StatevectorBackend final : public Backend {
 public:
  explicit StatevectorBackend(const ExecutionConfig& config);

  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::kStatevector;
  }
  [[nodiscard]] BackendCaps caps() const noexcept override {
    return BackendCaps{.supports_adjoint = true, .exact_noise = false};
  }
  [[nodiscard]] Index num_qubits() const noexcept override;
  void prepare(Index num_qubits) override;
  using Backend::run;
  void run(const Circuit& circuit, std::span<const Real> params,
           StateVector initial_state) override;
  [[nodiscard]] std::vector<Real> probabilities() const override;
  [[nodiscard]] std::vector<Real> expect_z(
      std::span<const Index> qubits) const override;

  /// The executed pure state (adjoint differentiation entry point).
  [[nodiscard]] const StateVector& state() const { return psi_; }

 private:
  StateVector psi_;
};

class DensityMatrixBackend final : public Backend {
 public:
  explicit DensityMatrixBackend(const ExecutionConfig& config);

  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::kDensityMatrix;
  }
  [[nodiscard]] BackendCaps caps() const noexcept override {
    return BackendCaps{.supports_adjoint = false, .exact_noise = true};
  }
  [[nodiscard]] Index num_qubits() const noexcept override;
  void prepare(Index num_qubits) override;
  using Backend::run;
  void run(const Circuit& circuit, std::span<const Real> params,
           StateVector initial_state) override;
  [[nodiscard]] std::vector<Real> probabilities() const override;
  [[nodiscard]] std::vector<Real> expect_z(
      std::span<const Index> qubits) const override;

  /// The executed mixed state (purity / trace diagnostics).
  [[nodiscard]] const DensityMatrix& density() const;

 private:
  NoiseModel noise_;
  std::optional<DensityMatrix> rho_;
};

class TrajectoryBackend final : public Backend {
 public:
  explicit TrajectoryBackend(const ExecutionConfig& config);

  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::kTrajectory;
  }
  [[nodiscard]] BackendCaps caps() const noexcept override {
    return BackendCaps{.supports_adjoint = false, .exact_noise = false};
  }
  [[nodiscard]] Index num_qubits() const noexcept override;
  void prepare(Index num_qubits) override;
  using Backend::run;
  void run(const Circuit& circuit, std::span<const Real> params,
           StateVector initial_state) override;
  [[nodiscard]] std::vector<Real> probabilities() const override;
  [[nodiscard]] std::vector<Real> expect_z(
      std::span<const Index> qubits) const override;

 private:
  NoiseModel noise_;
  std::size_t trajectories_;
  std::uint64_t seed_;
  Index num_qubits_ = 0;
  std::vector<Real> mean_probs_;
};

/// Build the configured backend. When the density-matrix backend is
/// requested for more qubits than the dense representation supports AND the
/// noise model is trivial (p = 0), the statevector backend is substituted —
/// at p = 0 the exact channel semantics degenerate to unitary evolution, so
/// the substitution is exact, and env-driven smoke runs (QUGEO_BACKEND)
/// keep working on large layouts. With p > 0 the request throws instead.
[[nodiscard]] std::unique_ptr<Backend> make_backend(
    const ExecutionConfig& config, Index num_qubits);

}  // namespace qugeo::qsim
