// Pluggable simulation-backend layer: one interface over exact statevector
// execution, exact density-matrix (channel) execution, sampled
// noisy-trajectory execution, and finite-shot sampled readout over any of
// the three (ShotBackend).
//
// The core layer (QuGeoModel, Experiment, benches) selects a backend purely
// through ExecutionConfig — no call-site special-casing — so the same
// pipeline runs noiselessly, with exact NoiseModel channels, with sampled
// trajectories, or from a finite measurement budget (shots). Noiseless
// execution paths canonicalize the circuit first (optimizer.h: single-qubit
// run fusion, diagonal-run merging, two-qubit run fusion into dense 4x4
// blocks), so every backend benefits from the GateClass kernel dispatch and
// the fused kernels; with a gate channel active the original op stream
// executes verbatim, because fusing k gates into one would also fuse their
// k noise insertion points (optimizer.h documents the legality rules).
// Canonical forms are memoized across executions when the config carries a
// CompiledCircuitCache (compile_cache.h).
//
// Capability mask:
//  * supports_adjoint — the backend exposes a statevector the adjoint
//    differentiation engine can run on (training-grade gradients).
//  * exact_noise     — NoiseModel channels are applied exactly (density
//    matrix) rather than estimated by sampling.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/cpu_features.h"
#include "qsim/circuit.h"
#include "qsim/density_matrix.h"
#include "qsim/noise.h"
#include "qsim/statevector.h"

namespace qugeo::qsim {

class CompiledCircuitCache;

enum class BackendKind : std::uint8_t {
  kStatevector,    ///< exact pure-state simulation (fast-path kernels)
  kDensityMatrix,  ///< exact mixed-state simulation with exact channels
  kTrajectory,     ///< noise-trajectory sampling over the thread pool
  kShot,           ///< finite-shot sampled readout over an inner backend
};

/// "statevector" | "density" | "trajectory" | "shot".
[[nodiscard]] std::string_view backend_name(BackendKind kind) noexcept;

/// Inverse of backend_name (also accepts "density_matrix"); nullopt on
/// unknown names.
[[nodiscard]] std::optional<BackendKind> parse_backend_kind(
    std::string_view name) noexcept;

struct BackendCaps {
  bool supports_adjoint = false;
  bool exact_noise = false;
};

/// Everything the core layer needs to pick and parameterize a backend.
/// The default (noiseless statevector) reproduces the pre-backend pipeline
/// bit-identically.
struct ExecutionConfig {
  BackendKind backend = BackendKind::kStatevector;
  NoiseModel noise;                ///< ignored by the statevector backend
  std::size_t trajectories = 64;   ///< trajectory backend sample count
  /// Measurement budget of the sampled readout: 0 reads exact
  /// probabilities; any positive value wraps the configured backend in a
  /// ShotBackend that estimates them from this many shots (make_backend
  /// does the wrapping — no call-site special-casing).
  std::size_t shots = 0;
  /// Base seed for trajectory/shot streams. qugeo-lint: no-env(QUGEO_SEED
  /// seeds the data-corpus RNG; execution seeds are salted per chunk by
  /// QuGeoModel, so an env override here would correlate every chunk).
  std::uint64_t seed = 0x51d5eedULL;
  /// Master switch for circuit canonicalization (run fusion) on the
  /// noiseless execution paths. Off, every backend executes the original
  /// op stream verbatim — the QUGEO_FUSION=off ablation/debug mode.
  /// Results are equal either way (up to global phase, <= 1e-10); only
  /// speed changes.
  bool fusion = true;
  /// Master switch for gradient-plan canonicalization on the TRAINING path
  /// (gradient_plan.h): loss_and_gradient replays |psi> and sweeps <lambda|
  /// through the gradient-canonical circuit, whose literal segments between
  /// trainable slots are fused into kFused2Q/kFusedCtl2Q blocks. Off, the
  /// adjoint runs the original op stream verbatim — the
  /// QUGEO_GRAD_FUSION=off ablation/debug mode. Gradients agree either way
  /// to <= 1e-10 (the fused segments' global phase cancels in the
  /// 2 Re <lambda|dU|psi> contraction), pinned by
  /// test_qsim_gradient_conformance.
  bool grad_fusion = true;
  /// Optional shared memo of canonicalize_for_backend results, keyed by
  /// circuit structure + backend kind (see compile_cache.h for the exact
  /// key semantics). Backends consult it in run(); null means every
  /// execution probes (and, if fusable, re-fuses) its circuit locally.
  /// QuGeoModel owns one per model and injects it for every predict call.
  /// qugeo-lint: no-env(a process-shared pointer cannot come from text).
  std::shared_ptr<CompiledCircuitCache> compile_cache;
  /// Kernel dispatch mode for this execution (common/cpu_features.h). kAuto
  /// defers to the process default (the QUGEO_SIMD environment mode, or the
  /// CPU probe); kScalar forces the bit-exact reference kernels; kAvx2
  /// forces the intrinsic variants (degrading gracefully to scalar when the
  /// binary/CPU cannot run them). Backends realize a non-auto mode through
  /// thread-local ScopedSimdMode overrides, so concurrent executions with
  /// different modes do not race.
  simd::SimdMode simd = simd::SimdMode::kAuto;
  /// Batched-execution width: how many independent states one gate
  /// dispatch should sweep (BatchedStateVector lanes). 1 executes states
  /// one at a time (the pre-batching path, bit-identical); QuGeoModel
  /// groups the samples of each QuBatch chunk and TrajectoryBackend groups
  /// its trajectories up to this many lanes.
  std::size_t batch = 1;
};

/// Environment overrides for smoke runs and CI: QUGEO_BACKEND
/// ("statevector" | "density" | "trajectory" | "shot"), QUGEO_NOISE_P
/// (real), QUGEO_NOISE_CHANNEL ("depolarizing" | "amplitude_damping" |
/// "phase_damping"), QUGEO_READOUT_P (real), QUGEO_TRAJECTORIES (integer),
/// QUGEO_SHOTS (integer, 0 = exact), QUGEO_FUSION ("on"/"off"),
/// QUGEO_GRAD_FUSION ("on"/"off"), QUGEO_SIMD ("auto" | "avx2" | "scalar"),
/// QUGEO_BATCH (positive integer lane count).
/// Unset variables leave `base` untouched. The full reference table lives
/// in docs/ARCHITECTURE.md.
[[nodiscard]] ExecutionConfig apply_env_overrides(ExecutionConfig base);

/// \brief A stateful execution engine: prepare (or inject) a state, run a
/// circuit, read out probabilities / expectations.
///
/// Backends are cheap to construct and NOT thread-safe; parallel call
/// sites create one per task (QuGeoModel does so per QuBatch chunk).
///
/// \par Canonicalization contract (fusion legality)
/// run() executes the canonical (run-fused) form of the circuit on its
/// NOISELESS path — via the shared CompiledCircuitCache when
/// ExecutionConfig::compile_cache is set, locally otherwise, and not at
/// all when ExecutionConfig::fusion is off. With a gate channel active the
/// ORIGINAL op stream executes verbatim: fusing k gates into one would
/// also fuse their k per-gate noise insertion points (see optimizer.h for
/// the full legality rules; the readout channel's single end-of-circuit
/// insertion point survives fusion, so readout-only noise may still fuse).
/// Either way the observable results are identical to 1e-10 — fusion is a
/// pure performance layer, pinned by test_qsim_fusion2q.
class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual BackendKind kind() const noexcept = 0;
  [[nodiscard]] virtual BackendCaps caps() const noexcept = 0;

  /// Current qubit count (0 before the first prepare/run).
  [[nodiscard]] virtual Index num_qubits() const noexcept = 0;

  /// Reset the internal state to |0...0> on `num_qubits` qubits.
  virtual void prepare(Index num_qubits) = 0;

  /// \brief Execute the circuit from the given initial state (the
  /// encoder's output), replacing the internal state with the result.
  /// \param circuit        executed in canonical form when the contract
  ///                       above allows; the caller's object is never
  ///                       mutated.
  /// \param params         trainable angles resolve against this table.
  /// \param initial_state  consumed; pass a copy if it must survive.
  virtual void run(const Circuit& circuit, std::span<const Real> params,
                   StateVector initial_state) = 0;

  /// Execute from |0...0>.
  void run(const Circuit& circuit, std::span<const Real> params) {
    run(circuit, params, StateVector(circuit.num_qubits()));
  }

  /// \brief Execute the circuit once per initial state and return each
  /// run's Born probabilities, in input order.
  ///
  /// The base implementation loops run() + probabilities() — semantically
  /// the reference for every override, which must match it per state
  /// (bit-identically in scalar mode). StatevectorBackend overrides it
  /// with a genuinely batched sweep (BatchedStateVector: one gate dispatch
  /// advances all states). After the call the backend's current state is
  /// the LAST executed state, exactly as if run() had been called in a
  /// loop.
  [[nodiscard]] virtual std::vector<std::vector<Real>>
  run_batched_probabilities(const Circuit& circuit,
                            std::span<const Real> params,
                            std::vector<StateVector> initial_states);

  /// Born probabilities of the executed state (for the trajectory backend:
  /// the trajectory-averaged distribution, an unbiased estimate of the
  /// channel's diagonal).
  [[nodiscard]] virtual std::vector<Real> probabilities() const = 0;

  /// <Z_q> for each listed qubit.
  [[nodiscard]] virtual std::vector<Real> expect_z(
      std::span<const Index> qubits) const = 0;
};

class StatevectorBackend final : public Backend {
 public:
  explicit StatevectorBackend(const ExecutionConfig& config);

  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::kStatevector;
  }
  [[nodiscard]] BackendCaps caps() const noexcept override {
    return BackendCaps{.supports_adjoint = true, .exact_noise = false};
  }
  [[nodiscard]] Index num_qubits() const noexcept override;
  void prepare(Index num_qubits) override;
  using Backend::run;
  void run(const Circuit& circuit, std::span<const Real> params,
           StateVector initial_state) override;
  [[nodiscard]] std::vector<std::vector<Real>> run_batched_probabilities(
      const Circuit& circuit, std::span<const Real> params,
      std::vector<StateVector> initial_states) override;
  [[nodiscard]] std::vector<Real> probabilities() const override;
  [[nodiscard]] std::vector<Real> expect_z(
      std::span<const Index> qubits) const override;

  /// The executed pure state (adjoint differentiation entry point).
  [[nodiscard]] const StateVector& state() const { return psi_; }

 private:
  StateVector psi_;
  bool fusion_;
  std::shared_ptr<CompiledCircuitCache> cache_;
  simd::SimdMode simd_;
};

class DensityMatrixBackend final : public Backend {
 public:
  explicit DensityMatrixBackend(const ExecutionConfig& config);

  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::kDensityMatrix;
  }
  [[nodiscard]] BackendCaps caps() const noexcept override {
    return BackendCaps{.supports_adjoint = false, .exact_noise = true};
  }
  [[nodiscard]] Index num_qubits() const noexcept override;
  void prepare(Index num_qubits) override;
  using Backend::run;
  void run(const Circuit& circuit, std::span<const Real> params,
           StateVector initial_state) override;
  [[nodiscard]] std::vector<Real> probabilities() const override;
  [[nodiscard]] std::vector<Real> expect_z(
      std::span<const Index> qubits) const override;

  /// The executed mixed state (purity / trace diagnostics).
  [[nodiscard]] const DensityMatrix& density() const;

 private:
  NoiseModel noise_;
  std::optional<DensityMatrix> rho_;
  bool fusion_;
  std::shared_ptr<CompiledCircuitCache> cache_;
};

class TrajectoryBackend final : public Backend {
 public:
  explicit TrajectoryBackend(const ExecutionConfig& config);

  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::kTrajectory;
  }
  [[nodiscard]] BackendCaps caps() const noexcept override {
    return BackendCaps{.supports_adjoint = false, .exact_noise = false};
  }
  [[nodiscard]] Index num_qubits() const noexcept override;
  void prepare(Index num_qubits) override;
  using Backend::run;
  void run(const Circuit& circuit, std::span<const Real> params,
           StateVector initial_state) override;
  [[nodiscard]] std::vector<Real> probabilities() const override;
  [[nodiscard]] std::vector<Real> expect_z(
      std::span<const Index> qubits) const override;

 private:
  NoiseModel noise_;
  std::size_t trajectories_;
  std::uint64_t seed_;
  bool fusion_;
  std::shared_ptr<CompiledCircuitCache> cache_;
  simd::SimdMode simd_;
  /// Trajectory-group width: each accumulation slot advances up to this
  /// many trajectories as BatchedStateVector lanes per circuit pass
  /// (ExecutionConfig::batch; 1 = the looped pre-batching path). Only
  /// batchable noise models group — generalized Kraus channels keep the
  /// per-trajectory loop (batched_executor.h: noise_is_batchable).
  std::size_t batch_;
  Index num_qubits_ = 0;
  std::vector<Real> mean_probs_;
};

/// Finite-shot sampled readout over any inner backend: run the circuit on
/// the wrapped engine, then estimate probabilities / <Z> from `shots`
/// basis-state samples of its probability output (qsim/shots.h — per-shot
/// (seed, shot) sub-streams over the shared pool, bit-identical for any
/// QUGEO_THREADS value). The NoiseModel's readout_error is realized here,
/// on the sampled outcomes; the inner backend only applies gate noise.
/// With shots == 0 the wrapper reads the inner backend's exact output and
/// applies the readout error exactly (the confusion matrix — the
/// infinite-shot limit); with no readout error either, it is a bitwise
/// pass-through.
class ShotBackend final : public Backend {
 public:
  /// Wrap `inner` (which must not itself be a ShotBackend). make_backend
  /// builds this automatically whenever config.shots > 0.
  ShotBackend(const ExecutionConfig& config, std::unique_ptr<Backend> inner);

  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::kShot;
  }
  [[nodiscard]] BackendCaps caps() const noexcept override {
    return BackendCaps{.supports_adjoint = false,
                       .exact_noise = shots_ == 0 && inner_->caps().exact_noise};
  }
  [[nodiscard]] Index num_qubits() const noexcept override;
  void prepare(Index num_qubits) override;
  using Backend::run;
  void run(const Circuit& circuit, std::span<const Real> params,
           StateVector initial_state) override;
  [[nodiscard]] std::vector<Real> probabilities() const override;
  [[nodiscard]] std::vector<Real> expect_z(
      std::span<const Index> qubits) const override;

  [[nodiscard]] const Backend& inner() const { return *inner_; }
  [[nodiscard]] std::size_t shots() const noexcept { return shots_; }

 private:
  std::unique_ptr<Backend> inner_;
  std::size_t shots_;
  Real readout_error_;
  std::uint64_t seed_;
};

/// Build the configured backend. config.shots > 0 (or backend == kShot,
/// whose inner engine defaults to the statevector) wraps the configured
/// engine in a ShotBackend; the readout error then moves to the wrapper so
/// it is sampled exactly once. When the density-matrix backend is
/// requested for more qubits than the dense representation supports AND
/// its noise model is trivial, the statevector backend is substituted —
/// trivial channel semantics degenerate to unitary evolution, so the
/// substitution is exact, and env-driven smoke runs (QUGEO_BACKEND) keep
/// working on large layouts. With any channel active (gate noise of any
/// kind, or a readout error no shot wrapper will realize) the request
/// throws, naming the channel.
[[nodiscard]] std::unique_ptr<Backend> make_backend(
    const ExecutionConfig& config, Index num_qubits);

}  // namespace qugeo::qsim
