#include "qsim/backend.h"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/parallel.h"
#include "qsim/executor.h"
#include "qsim/optimizer.h"

namespace qugeo::qsim {

std::string_view backend_name(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kStatevector: return "statevector";
    case BackendKind::kDensityMatrix: return "density";
    case BackendKind::kTrajectory: return "trajectory";
  }
  return "?";
}

std::optional<BackendKind> parse_backend_kind(std::string_view name) noexcept {
  if (name == "statevector" || name == "sv") return BackendKind::kStatevector;
  if (name == "density" || name == "density_matrix")
    return BackendKind::kDensityMatrix;
  if (name == "trajectory" || name == "trajectories")
    return BackendKind::kTrajectory;
  return std::nullopt;
}

ExecutionConfig apply_env_overrides(ExecutionConfig base) {
  if (const char* kind = std::getenv("QUGEO_BACKEND")) {
    const auto parsed = parse_backend_kind(kind);
    if (!parsed)
      throw std::invalid_argument(std::string("QUGEO_BACKEND: unknown backend '") +
                                  kind + "'");
    base.backend = *parsed;
  }
  if (const char* p = std::getenv("QUGEO_NOISE_P")) {
    char* end = nullptr;
    const Real v = std::strtod(p, &end);
    if (end == p || *end != '\0' || v < 0 || v > 1)
      throw std::invalid_argument(
          std::string("QUGEO_NOISE_P: expected a probability, got '") + p + "'");
    base.noise.depolarizing_prob = v;
  }
  if (const char* t = std::getenv("QUGEO_TRAJECTORIES")) {
    char* end = nullptr;
    const long n = std::strtol(t, &end, 10);
    if (end == t || *end != '\0' || n <= 0)
      throw std::invalid_argument(
          std::string("QUGEO_TRAJECTORIES: expected a positive integer, got '") +
          t + "'");
    base.trajectories = static_cast<std::size_t>(n);
  }
  return base;
}

// ------------------------------------------------------ StatevectorBackend --

StatevectorBackend::StatevectorBackend(const ExecutionConfig& config)
    : psi_(0) {
  // The statevector backend is exact and noiseless; a NoiseModel in the
  // config is an ablation parameter for the other backends, not an error.
  (void)config;
}

Index StatevectorBackend::num_qubits() const noexcept {
  return psi_.num_qubits();
}

void StatevectorBackend::prepare(Index num_qubits) {
  psi_ = StateVector(num_qubits);
}

void StatevectorBackend::run(const Circuit& circuit,
                             std::span<const Real> params,
                             StateVector initial_state) {
  psi_ = std::move(initial_state);
  // Only pay for the canonical copy when fusion changes something; the
  // all-trainable ansatz runs by reference.
  if (has_fusable_runs(circuit))
    run_circuit(canonicalize_for_backend(circuit), params, psi_);
  else
    run_circuit(circuit, params, psi_);
}

std::vector<Real> StatevectorBackend::probabilities() const {
  return psi_.probabilities();
}

std::vector<Real> StatevectorBackend::expect_z(
    std::span<const Index> qubits) const {
  std::vector<Real> z(qubits.size());
  for (std::size_t i = 0; i < qubits.size(); ++i) z[i] = psi_.expect_z(qubits[i]);
  return z;
}

// ---------------------------------------------------- DensityMatrixBackend --

DensityMatrixBackend::DensityMatrixBackend(const ExecutionConfig& config)
    : noise_(config.noise) {}

Index DensityMatrixBackend::num_qubits() const noexcept {
  return rho_ ? rho_->num_qubits() : 0;
}

void DensityMatrixBackend::prepare(Index num_qubits) {
  if (rho_ && rho_->num_qubits() == num_qubits)
    rho_->reset();
  else
    rho_.emplace(num_qubits);
}

void DensityMatrixBackend::run(const Circuit& circuit,
                               std::span<const Real> params,
                               StateVector initial_state) {
  if (!rho_ || rho_->num_qubits() != initial_state.num_qubits())
    rho_.emplace(initial_state.num_qubits());
  rho_->set_from_state(initial_state);
  // Run fusion collapses k literal gates into one, which would also
  // collapse their k per-gate noise insertion points into one; with the
  // channel active the original op stream must execute verbatim.
  if (noise_.depolarizing_prob > 0 || !has_fusable_runs(circuit))
    run_circuit_density(circuit, params, *rho_, noise_.depolarizing_prob);
  else
    run_circuit_density(canonicalize_for_backend(circuit), params, *rho_, 0);
}

std::vector<Real> DensityMatrixBackend::probabilities() const {
  return density().probabilities();
}

std::vector<Real> DensityMatrixBackend::expect_z(
    std::span<const Index> qubits) const {
  const DensityMatrix& rho = density();
  std::vector<Real> z(qubits.size());
  for (std::size_t i = 0; i < qubits.size(); ++i) z[i] = rho.expect_z(qubits[i]);
  return z;
}

const DensityMatrix& DensityMatrixBackend::density() const {
  if (!rho_)
    throw std::logic_error("DensityMatrixBackend: no state (call prepare/run)");
  return *rho_;
}

// ------------------------------------------------------- TrajectoryBackend --

TrajectoryBackend::TrajectoryBackend(const ExecutionConfig& config)
    : noise_(config.noise),
      trajectories_(config.trajectories == 0 ? 1 : config.trajectories),
      seed_(config.seed) {}

Index TrajectoryBackend::num_qubits() const noexcept { return num_qubits_; }

void TrajectoryBackend::prepare(Index num_qubits) {
  num_qubits_ = num_qubits;
  mean_probs_.assign(Index{1} << num_qubits, Real(0));
  mean_probs_[0] = Real(1);
}

void TrajectoryBackend::run(const Circuit& circuit,
                            std::span<const Real> params,
                            StateVector initial_state) {
  num_qubits_ = initial_state.num_qubits();
  const Index dim = initial_state.dim();

  // p = 0 makes every trajectory identical to the exact run; skip the
  // fan-out entirely (env-driven smoke runs pay one statevector pass).
  // Noisy runs execute the ORIGINAL op stream: run fusion would collapse
  // per-gate noise insertion points (see DensityMatrixBackend::run).
  if (noise_.depolarizing_prob <= 0) {
    StateVector psi = std::move(initial_state);
    if (has_fusable_runs(circuit))
      run_circuit(canonicalize_for_backend(circuit), params, psi);
    else
      run_circuit(circuit, params, psi);
    mean_probs_ = psi.probabilities();
    return;
  }
  if (trajectories_ == 1) {
    StateVector psi = std::move(initial_state);
    Rng rng = trajectory_rng(seed_, 0);
    run_circuit_noisy(circuit, params, psi, noise_, rng);
    mean_probs_ = psi.probabilities();
    return;
  }

  // Trajectory fan-out over the shared pool. A fixed number of accumulation
  // slots (independent of the thread count) each sum a strided subset of
  // trajectories sequentially; the slots fold in index order afterwards, so
  // the average is bit-identical for any QUGEO_THREADS value while keeping
  // memory at O(slots * 2^n) instead of O(trajectories * 2^n).
  const std::size_t slots = std::min<std::size_t>(trajectories_, 32);
  std::vector<std::vector<Real>> partial(slots);
  parallel_for(0, slots, [&](std::size_t s) {
    std::vector<Real> acc(dim, Real(0));
    for (std::size_t t = s; t < trajectories_; t += slots) {
      StateVector psi = initial_state;
      Rng rng = trajectory_rng(seed_, t);
      run_circuit_noisy(circuit, params, psi, noise_, rng);
      const auto amps = psi.amplitudes();
      for (Index k = 0; k < dim; ++k) acc[k] += std::norm(amps[k]);
    }
    partial[s] = std::move(acc);
  });

  mean_probs_.assign(dim, Real(0));
  for (std::size_t s = 0; s < slots; ++s)
    for (Index k = 0; k < dim; ++k) mean_probs_[k] += partial[s][k];
  const Real inv = Real(1) / static_cast<Real>(trajectories_);
  for (Real& p : mean_probs_) p *= inv;
}

std::vector<Real> TrajectoryBackend::probabilities() const {
  return mean_probs_;
}

std::vector<Real> TrajectoryBackend::expect_z(
    std::span<const Index> qubits) const {
  std::vector<Real> z(qubits.size(), Real(0));
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    const Index mask = Index{1} << qubits[i];
    for (Index k = 0; k < mean_probs_.size(); ++k)
      z[i] += ((k & mask) ? Real(-1) : Real(1)) * mean_probs_[k];
  }
  return z;
}

// ----------------------------------------------------------------- factory --

std::unique_ptr<Backend> make_backend(const ExecutionConfig& config,
                                      Index num_qubits) {
  switch (config.backend) {
    case BackendKind::kStatevector:
      return std::make_unique<StatevectorBackend>(config);
    case BackendKind::kDensityMatrix:
      if (num_qubits > max_density_qubits()) {
        if (config.noise.depolarizing_prob <= 0)
          return std::make_unique<StatevectorBackend>(config);
        throw std::invalid_argument(
            "make_backend: density-matrix backend supports at most " +
            std::to_string(max_density_qubits()) + " qubits (requested " +
            std::to_string(num_qubits) + " with noise enabled)");
      }
      return std::make_unique<DensityMatrixBackend>(config);
    case BackendKind::kTrajectory:
      return std::make_unique<TrajectoryBackend>(config);
  }
  throw std::invalid_argument("make_backend: unknown backend kind");
}

}  // namespace qugeo::qsim
