#include "qsim/backend.h"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/env.h"
#include "common/fault.h"
#include "common/parallel.h"
#include "qsim/batched_executor.h"
#include "qsim/compile_cache.h"
#include "qsim/executor.h"
#include "qsim/optimizer.h"
#include "qsim/shots.h"

namespace qugeo::qsim {
namespace {

/// The circuit a noiseless execution path should run: the canonical (fused)
/// form when fusion is enabled and would change the stream — served from
/// the shared cache when one is configured — otherwise the original by
/// reference. `keepalive`/`local` own whichever compiled object is
/// returned; they must outlive the use of the returned reference.
const Circuit& noiseless_form(const Circuit& circuit, bool fusion,
                              const std::shared_ptr<CompiledCircuitCache>& cache,
                              BackendKind kind,
                              std::shared_ptr<const Circuit>& keepalive,
                              std::optional<Circuit>& local) {
  if (!fusion) return circuit;
  if (cache) {
    keepalive = cache->canonical(circuit, kind);
    return keepalive ? *keepalive : circuit;
  }
  // No cache: pay the O(ops) probes per execution, the canonical copy only
  // when fusion changes something (the all-trainable ansatz runs by
  // reference).
  if (has_fusable_runs(circuit) || has_fusable_two_qubit_runs(circuit)) {
    local.emplace(canonicalize_for_backend(circuit));
    return *local;
  }
  return circuit;
}

}  // namespace

std::string_view backend_name(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kStatevector: return "statevector";
    case BackendKind::kDensityMatrix: return "density";
    case BackendKind::kTrajectory: return "trajectory";
    case BackendKind::kShot: return "shot";
  }
  return "?";
}

std::optional<BackendKind> parse_backend_kind(std::string_view name) noexcept {
  if (name == "statevector" || name == "sv") return BackendKind::kStatevector;
  if (name == "density" || name == "density_matrix")
    return BackendKind::kDensityMatrix;
  if (name == "trajectory" || name == "trajectories")
    return BackendKind::kTrajectory;
  if (name == "shot" || name == "shots") return BackendKind::kShot;
  return std::nullopt;
}

ExecutionConfig apply_env_overrides(ExecutionConfig base) {
  if (const char* kind = std::getenv("QUGEO_BACKEND")) {
    const auto parsed = parse_backend_kind(kind);
    if (!parsed)
      throw std::invalid_argument(std::string("QUGEO_BACKEND: unknown backend '") +
                                  kind + "'");
    base.backend = *parsed;
  }
  base.noise.gate_error_prob =
      env::parse_env_probability("QUGEO_NOISE_P", base.noise.gate_error_prob);
  if (const char* ch = std::getenv("QUGEO_NOISE_CHANNEL")) {
    const auto parsed = parse_noise_channel(ch);
    if (!parsed)
      throw std::invalid_argument(
          std::string("QUGEO_NOISE_CHANNEL: unknown channel '") + ch + "'");
    base.noise.channel = *parsed;
  }
  base.noise.readout_error =
      env::parse_env_probability("QUGEO_READOUT_P", base.noise.readout_error);
  base.trajectories =
      env::parse_env_positive("QUGEO_TRAJECTORIES", base.trajectories);
  base.shots = env::parse_env_size_t("QUGEO_SHOTS", base.shots);
  if (const char* f = std::getenv("QUGEO_FUSION")) {
    const std::string_view v(f);
    if (v == "on" || v == "1" || v == "true")
      base.fusion = true;
    else if (v == "off" || v == "0" || v == "false")
      base.fusion = false;
    else
      throw std::invalid_argument(
          std::string("QUGEO_FUSION: expected on/off, got '") + f + "'");
  }
  if (const char* f = std::getenv("QUGEO_GRAD_FUSION")) {
    const std::string_view v(f);
    if (v == "on" || v == "1" || v == "true")
      base.grad_fusion = true;
    else if (v == "off" || v == "0" || v == "false")
      base.grad_fusion = false;
    else
      throw std::invalid_argument(
          std::string("QUGEO_GRAD_FUSION: expected on/off, got '") + f + "'");
  }
  base.simd = simd::simd_mode_from_env(base.simd);
  base.batch = env::parse_env_positive("QUGEO_BATCH", base.batch);
  return base;
}

// ------------------------------------------------------------------ Backend --

std::vector<std::vector<Real>> Backend::run_batched_probabilities(
    const Circuit& circuit, std::span<const Real> params,
    std::vector<StateVector> initial_states) {
  std::vector<std::vector<Real>> out;
  out.reserve(initial_states.size());
  for (StateVector& psi : initial_states) {
    run(circuit, params, std::move(psi));
    out.push_back(probabilities());
  }
  return out;
}

// ------------------------------------------------------ StatevectorBackend --

StatevectorBackend::StatevectorBackend(const ExecutionConfig& config)
    : psi_(0),
      fusion_(config.fusion),
      cache_(config.compile_cache),
      simd_(config.simd) {
  // The statevector backend is exact and noiseless; a NoiseModel in the
  // config is an ablation parameter for the other backends, not an error.
}

Index StatevectorBackend::num_qubits() const noexcept {
  return psi_.num_qubits();
}

void StatevectorBackend::prepare(Index num_qubits) {
  fault::site("backend.prepare");
  psi_ = StateVector(num_qubits);
}

void StatevectorBackend::run(const Circuit& circuit,
                             std::span<const Real> params,
                             StateVector initial_state) {
  fault::site("backend.run");
  std::optional<simd::ScopedSimdMode> scoped;
  if (simd_ != simd::SimdMode::kAuto) scoped.emplace(simd_);
  psi_ = std::move(initial_state);
  std::shared_ptr<const Circuit> keepalive;
  std::optional<Circuit> local;
  run_circuit(noiseless_form(circuit, fusion_, cache_, kind(), keepalive, local),
              params, psi_);
}

std::vector<std::vector<Real>> StatevectorBackend::run_batched_probabilities(
    const Circuit& circuit, std::span<const Real> params,
    std::vector<StateVector> initial_states) {
  if (initial_states.empty()) return {};
  fault::site("backend.run");
  std::optional<simd::ScopedSimdMode> scoped;
  if (simd_ != simd::SimdMode::kAuto) scoped.emplace(simd_);
  std::shared_ptr<const Circuit> keepalive;
  std::optional<Circuit> local;
  const Circuit& exec =
      noiseless_form(circuit, fusion_, cache_, kind(), keepalive, local);
  BatchedStateVector batch(circuit.num_qubits(), initial_states.size());
  for (std::size_t l = 0; l < initial_states.size(); ++l)
    batch.set_lane(l, initial_states[l]);
  run_circuit_batched(exec, params, batch);
  std::vector<std::vector<Real>> out(initial_states.size());
  for (std::size_t l = 0; l < initial_states.size(); ++l)
    out[l] = batch.lane_probabilities(l);
  // Preserve the base-class semantic: the backend's state is the last
  // executed state (probabilities()/expect_z()/adjoint read it).
  psi_ = batch.lane_state(initial_states.size() - 1);
  return out;
}

std::vector<Real> StatevectorBackend::probabilities() const {
  return psi_.probabilities();
}

std::vector<Real> StatevectorBackend::expect_z(
    std::span<const Index> qubits) const {
  std::vector<Real> z(qubits.size());
  for (std::size_t i = 0; i < qubits.size(); ++i) z[i] = psi_.expect_z(qubits[i]);
  return z;
}

// ---------------------------------------------------- DensityMatrixBackend --

DensityMatrixBackend::DensityMatrixBackend(const ExecutionConfig& config)
    : noise_(config.noise),
      fusion_(config.fusion),
      cache_(config.compile_cache) {}

Index DensityMatrixBackend::num_qubits() const noexcept {
  return rho_ ? rho_->num_qubits() : 0;
}

void DensityMatrixBackend::prepare(Index num_qubits) {
  fault::site("backend.prepare");
  if (rho_ && rho_->num_qubits() == num_qubits)
    rho_->reset();
  else
    rho_.emplace(num_qubits);
}

void DensityMatrixBackend::run(const Circuit& circuit,
                               std::span<const Real> params,
                               StateVector initial_state) {
  fault::site("backend.run");
  if (!rho_ || rho_->num_qubits() != initial_state.num_qubits())
    rho_.emplace(initial_state.num_qubits());
  rho_->set_from_state(initial_state);
  // Run fusion collapses k literal gates into one, which would also
  // collapse their k per-gate noise insertion points into one; with a gate
  // channel active the original op stream must execute verbatim. The
  // readout channel has a single insertion point (the end of the circuit)
  // and survives fusion unchanged.
  if (noise_.has_gate_noise()) {
    run_circuit_density(circuit, params, *rho_, noise_);
    return;
  }
  std::shared_ptr<const Circuit> keepalive;
  std::optional<Circuit> local;
  run_circuit_density(
      noiseless_form(circuit, fusion_, cache_, kind(), keepalive, local),
      params, *rho_, noise_);
}

std::vector<Real> DensityMatrixBackend::probabilities() const {
  return density().probabilities();
}

std::vector<Real> DensityMatrixBackend::expect_z(
    std::span<const Index> qubits) const {
  const DensityMatrix& rho = density();
  std::vector<Real> z(qubits.size());
  for (std::size_t i = 0; i < qubits.size(); ++i) z[i] = rho.expect_z(qubits[i]);
  return z;
}

const DensityMatrix& DensityMatrixBackend::density() const {
  if (!rho_)
    throw std::logic_error("DensityMatrixBackend: no state (call prepare/run)");
  return *rho_;
}

// ------------------------------------------------------- TrajectoryBackend --

TrajectoryBackend::TrajectoryBackend(const ExecutionConfig& config)
    : noise_(config.noise),
      trajectories_(config.trajectories == 0 ? 1 : config.trajectories),
      seed_(config.seed),
      fusion_(config.fusion),
      cache_(config.compile_cache),
      simd_(config.simd),
      batch_(config.batch == 0 ? 1 : config.batch) {}

Index TrajectoryBackend::num_qubits() const noexcept { return num_qubits_; }

void TrajectoryBackend::prepare(Index num_qubits) {
  fault::site("backend.prepare");
  num_qubits_ = num_qubits;
  mean_probs_.assign(Index{1} << num_qubits, Real(0));
  mean_probs_[0] = Real(1);
}

void TrajectoryBackend::run(const Circuit& circuit,
                            std::span<const Real> params,
                            StateVector initial_state) {
  fault::site("backend.run");
  std::optional<simd::ScopedSimdMode> scoped;
  if (simd_ != simd::SimdMode::kAuto) scoped.emplace(simd_);
  num_qubits_ = initial_state.num_qubits();
  const Index dim = initial_state.dim();

  // Gate-noisy runs execute the ORIGINAL op stream: run fusion would
  // collapse per-gate noise insertion points (see
  // DensityMatrixBackend::run). Without gate noise the circuit
  // canonicalizes once, up front — the readout channel's single insertion
  // point (the end of the circuit) survives fusion, so readout-only
  // trajectories sample the fused stream too.
  std::shared_ptr<const Circuit> keepalive;
  std::optional<Circuit> local;
  const Circuit& exec_circuit =
      noise_.has_gate_noise()
          ? circuit
          : noiseless_form(circuit, fusion_, cache_, kind(), keepalive, local);

  // A trivial NoiseModel makes every trajectory identical to the exact
  // run; skip the fan-out entirely (env-driven smoke runs pay one
  // statevector pass).
  if (noise_.is_trivial()) {
    StateVector psi = std::move(initial_state);
    run_circuit(exec_circuit, params, psi);
    mean_probs_ = psi.probabilities();
    return;
  }
  if (trajectories_ == 1) {
    StateVector psi = std::move(initial_state);
    Rng rng = trajectory_rng(seed_, 0);
    run_circuit_noisy(exec_circuit, params, psi, noise_, rng);
    mean_probs_ = psi.probabilities();
    return;
  }

  // Trajectory fan-out over the shared pool. A fixed number of accumulation
  // slots (independent of the thread count) each sum a strided subset of
  // trajectories sequentially; the slots fold in index order afterwards, so
  // the average is bit-identical for any QUGEO_THREADS value while keeping
  // memory at O(slots * 2^n) instead of O(trajectories * 2^n).
  const std::size_t slots = std::min<std::size_t>(trajectories_, 32);
  // Each slot advances its strided trajectory subset in groups of up to
  // batch_ BatchedStateVector lanes: one circuit pass per group instead of
  // one per trajectory. Lane l of a group is trajectory ts[g + l] with its
  // own (seed, index) sub-stream, and the group's lanes fold into the
  // slot accumulator in lane (= trajectory) order, so the result is
  // bit-identical (scalar mode) to the looped path for any batch width.
  // Generalized Kraus channels stay on the loop (noise_is_batchable).
  const std::size_t group_width =
      noise_is_batchable(noise_) ? std::min(batch_, trajectories_) : 1;
  const simd::SimdMode thread_mode = simd_;
  std::vector<std::vector<Real>> partial(slots);
  parallel_for(0, slots, [&, thread_mode, group_width](std::size_t s) {
    // Pool workers do not inherit the caller's thread-local dispatch
    // override; re-install the mode on this thread.
    std::optional<simd::ScopedSimdMode> slot_scoped;
    if (thread_mode != simd::SimdMode::kAuto) slot_scoped.emplace(thread_mode);
    std::vector<Real> acc(dim, Real(0));
    if (group_width > 1) {
      std::vector<std::size_t> ts;
      for (std::size_t t = s; t < trajectories_; t += slots) ts.push_back(t);
      for (std::size_t g = 0; g < ts.size(); g += group_width) {
        const std::size_t lanes = std::min(group_width, ts.size() - g);
        BatchedStateVector bpsi(initial_state.num_qubits(), lanes);
        std::vector<Rng> rngs;
        rngs.reserve(lanes);
        for (std::size_t l = 0; l < lanes; ++l) {
          bpsi.set_lane(l, initial_state);
          rngs.push_back(trajectory_rng(seed_, ts[g + l]));
        }
        run_circuit_noisy_batched(exec_circuit, params, bpsi, noise_, rngs);
        const Real* re = bpsi.re_data();
        const Real* im = bpsi.im_data();
        for (std::size_t l = 0; l < lanes; ++l)
          for (Index k = 0; k < dim; ++k) {
            const Real r = re[k * lanes + l];
            const Real i = im[k * lanes + l];
            acc[k] += r * r + i * i;
          }
      }
    } else {
      for (std::size_t t = s; t < trajectories_; t += slots) {
        StateVector psi = initial_state;
        Rng rng = trajectory_rng(seed_, t);
        run_circuit_noisy(exec_circuit, params, psi, noise_, rng);
        const auto amps = psi.amplitudes();
        for (Index k = 0; k < dim; ++k) acc[k] += std::norm(amps[k]);
      }
    }
    partial[s] = std::move(acc);
  });

  mean_probs_.assign(dim, Real(0));
  for (std::size_t s = 0; s < slots; ++s)
    for (Index k = 0; k < dim; ++k) mean_probs_[k] += partial[s][k];
  const Real inv = Real(1) / static_cast<Real>(trajectories_);
  for (Real& p : mean_probs_) p *= inv;
}

std::vector<Real> TrajectoryBackend::probabilities() const {
  return mean_probs_;
}

std::vector<Real> TrajectoryBackend::expect_z(
    std::span<const Index> qubits) const {
  return expect_z_from_probabilities(mean_probs_, qubits);
}

// ------------------------------------------------------------- ShotBackend --

ShotBackend::ShotBackend(const ExecutionConfig& config,
                         std::unique_ptr<Backend> inner)
    : inner_(std::move(inner)),
      shots_(config.shots),
      readout_error_(config.noise.readout_error),
      seed_(config.seed) {
  if (!inner_)
    throw std::invalid_argument("ShotBackend: null inner backend");
  if (inner_->kind() == BackendKind::kShot)
    throw std::invalid_argument("ShotBackend: cannot wrap another ShotBackend");
}

Index ShotBackend::num_qubits() const noexcept { return inner_->num_qubits(); }

void ShotBackend::prepare(Index num_qubits) { inner_->prepare(num_qubits); }

void ShotBackend::run(const Circuit& circuit, std::span<const Real> params,
                      StateVector initial_state) {
  inner_->run(circuit, params, std::move(initial_state));
}

std::vector<Real> ShotBackend::probabilities() const {
  std::vector<Real> exact = inner_->probabilities();
  if (shots_ == 0) {
    // Exact pass-through — but the wrapper still owns the readout error
    // (make_backend cleared it on the inner config), so realize it as the
    // exact confusion matrix: the infinite-shot limit of the sampled
    // flips. With no readout error this returns the inner output bitwise.
    apply_readout_to_probabilities(exact, inner_->num_qubits(), readout_error_);
    return exact;
  }
  // Prefix sums in index order — the same accumulation
  // StateVector::cumulative_probabilities performs, so the shot_readout
  // wrappers sample a bit-identical CDF.
  Real acc = 0;
  for (Real& p : exact) {
    acc += p;
    p = acc;
  }
  return sampled_probabilities_from_cdf(exact, inner_->num_qubits(), seed_,
                                        shots_, readout_error_);
}

std::vector<Real> ShotBackend::expect_z(std::span<const Index> qubits) const {
  if (shots_ == 0 && readout_error_ <= 0) return inner_->expect_z(qubits);
  return expect_z_from_probabilities(probabilities(), qubits);
}

// ----------------------------------------------------------------- factory --

std::unique_ptr<Backend> make_backend(const ExecutionConfig& config,
                                      Index num_qubits) {
  // A shot budget (or an explicit "shot" backend request) wraps the
  // configured engine. The wrapper owns the readout error — it flips the
  // sampled outcomes — so the inner engine runs with it cleared to keep
  // exactly one realization of the channel.
  const bool wrap = config.shots > 0 || config.backend == BackendKind::kShot;
  ExecutionConfig inner_cfg = config;
  if (wrap) {
    inner_cfg.backend = config.backend == BackendKind::kShot
                            ? BackendKind::kStatevector
                            : config.backend;
    inner_cfg.shots = 0;
    inner_cfg.noise.readout_error = 0;
  }

  std::unique_ptr<Backend> inner;
  switch (inner_cfg.backend) {
    case BackendKind::kStatevector:
      inner = std::make_unique<StatevectorBackend>(inner_cfg);
      break;
    case BackendKind::kDensityMatrix:
      if (num_qubits > max_density_qubits()) {
        if (inner_cfg.noise.is_trivial()) {
          // Exact substitution: a trivial channel degenerates to unitary
          // evolution, which the statevector computes at O(2^n).
          fault::report_degradation(
              "backend", "density-matrix request for " +
                             std::to_string(num_qubits) + " qubits exceeds " +
                             std::to_string(max_density_qubits()) +
                             "; substituting the exact statevector engine "
                             "(noise channel is trivial)");
          inner = std::make_unique<StatevectorBackend>(inner_cfg);
          break;
        }
        // Name the active channel: a statevector substitution would
        // silently drop it, and each channel fails differently.
        std::string channels;
        if (inner_cfg.noise.has_gate_noise())
          channels = std::string(noise_channel_name(inner_cfg.noise.channel));
        if (inner_cfg.noise.has_readout_error())
          channels += channels.empty() ? "readout" : "+readout";
        throw std::invalid_argument(
            "make_backend: density-matrix backend supports at most " +
            std::to_string(max_density_qubits()) + " qubits (requested " +
            std::to_string(num_qubits) + " with " + channels +
            " noise enabled; the statevector substitution cannot realize "
            "this channel exactly)");
      }
      inner = std::make_unique<DensityMatrixBackend>(inner_cfg);
      break;
    case BackendKind::kTrajectory:
      inner = std::make_unique<TrajectoryBackend>(inner_cfg);
      break;
    case BackendKind::kShot:
      throw std::logic_error("make_backend: kShot cannot be an inner kind");
  }
  if (!inner) throw std::invalid_argument("make_backend: unknown backend kind");
  if (wrap) return std::make_unique<ShotBackend>(config, std::move(inner));
  return inner;
}

}  // namespace qugeo::qsim
