// Depolarizing-noise execution via Pauli-twirl trajectory sampling.
//
// The paper targets NISQ hardware but evaluates on a noiseless simulator;
// this module is the "optional extension" used by the noise-robustness
// ablation bench: each trajectory stochastically inserts X/Y/Z errors after
// every gate with per-qubit probability p, and observables are averaged
// over trajectories (an unbiased estimator of the depolarizing channel).
#pragma once

#include <span>

#include "common/rng.h"
#include "qsim/circuit.h"
#include "qsim/statevector.h"

namespace qugeo::qsim {

struct NoiseModel {
  /// Per-qubit depolarizing probability applied after every gate touch.
  Real depolarizing_prob = 0.0;
};

/// Run one noisy trajectory of the circuit on `psi` (in place).
void run_circuit_noisy(const Circuit& circuit, std::span<const Real> params,
                       StateVector& psi, const NoiseModel& noise, Rng& rng);

/// Average <Z_q> for each listed qubit over `trajectories` noisy runs that
/// all start from `psi_in`.
[[nodiscard]] std::vector<Real> noisy_expect_z(
    const Circuit& circuit, std::span<const Real> params,
    const StateVector& psi_in, std::span<const Index> qubits,
    const NoiseModel& noise, Rng& rng, std::size_t trajectories);

}  // namespace qugeo::qsim
