// Hardware-realistic noise channels and their trajectory sampling.
//
// The paper targets NISQ hardware but evaluates on a noiseless simulator;
// this module is the stochastic half of the noisy-execution story (the
// exact half lives in density_matrix.h). A NoiseModel names one per-gate
// channel — depolarizing, amplitude damping, or phase damping — applied to
// every qubit a gate touches, plus an independent per-qubit readout
// (measurement bit-flip) error applied once at the end of the circuit.
// Every channel is defined by its Kraus set (kraus_ops / readout_kraus),
// which the density-matrix backend applies exactly and the trajectory
// executor samples: mixed-unitary channels (depolarizing, readout) insert
// random Paulis, general channels (damping) take Kraus jumps with the Born
// weights ||K_k psi||^2 followed by renormalization — an unbiased estimator
// of the exact channel in both cases.
//
// Reproducibility contract: every trajectory draws from its own RNG
// sub-stream derived from (seed, trajectory index), so averaged results
// are bit-identical for any thread count and any trajectory scheduling.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "qsim/circuit.h"
#include "qsim/statevector.h"

namespace qugeo::qsim {

/// Per-gate channel kinds a NoiseModel can name.
enum class NoiseChannel : std::uint8_t {
  kDepolarizing,      ///< X/Y/Z each with probability p/3
  kAmplitudeDamping,  ///< T1 decay: |1> relaxes to |0> with probability p
  kPhaseDamping,      ///< T2 dephasing: coherences shrink by sqrt(1-p)
};

/// "depolarizing" | "amplitude_damping" | "phase_damping".
[[nodiscard]] std::string_view noise_channel_name(NoiseChannel channel) noexcept;

/// Inverse of noise_channel_name (also accepts the "amp"/"phase"
/// shorthands); nullopt on unknown names.
[[nodiscard]] std::optional<NoiseChannel> parse_noise_channel(
    std::string_view name) noexcept;

struct NoiseModel {
  /// Strength of the per-gate channel, applied to every qubit a gate
  /// touches (error probability p for depolarizing, decay probability
  /// gamma for the damping channels). 0 disables gate noise.
  Real gate_error_prob = 0.0;
  /// Which channel gate_error_prob parameterizes.
  NoiseChannel channel = NoiseChannel::kDepolarizing;
  /// Per-qubit measurement bit-flip probability, applied once at readout
  /// (exactly on the density matrix, sampled per trajectory / per shot).
  Real readout_error = 0.0;

  [[nodiscard]] bool has_gate_noise() const noexcept {
    return gate_error_prob > 0;
  }
  [[nodiscard]] bool has_readout_error() const noexcept {
    return readout_error > 0;
  }
  /// True when the model is a no-op (exact unitary evolution).
  [[nodiscard]] bool is_trivial() const noexcept {
    return !has_gate_noise() && !has_readout_error();
  }
};

/// Kraus operators of the named single-qubit channel at strength p. Every
/// returned set satisfies sum_k K_k^+ K_k = I (CPTP; pinned to 1e-12 by
/// test_qsim_channels).
[[nodiscard]] std::vector<Mat2> kraus_ops(NoiseChannel channel, Real p);

/// Kraus operators of the readout bit-flip channel:
/// {sqrt(1-e) I, sqrt(e) X}.
[[nodiscard]] std::vector<Mat2> readout_kraus(Real e);

/// Independent RNG sub-stream for one trajectory: mixes the base seed with
/// the trajectory index (splitmix64 expansion inside Rng decorrelates the
/// nearby seeds). Trajectory t always sees the same stream, no matter which
/// thread runs it or how many trajectories run beside it.
[[nodiscard]] Rng trajectory_rng(std::uint64_t seed, std::size_t trajectory);

/// Sample one application of the named channel on qubit `q` of `psi`:
/// mixed-unitary channels insert a random Pauli, general channels take a
/// Kraus jump K_k with probability ||K_k psi||^2 and renormalize.
void apply_channel_trajectory(StateVector& psi, NoiseChannel channel, Real p,
                              Index q, Rng& rng);

/// Sample the readout bit-flip error on every qubit of `psi` (X with
/// probability e per qubit). Called at the end of each noisy trajectory.
void apply_readout_trajectory(StateVector& psi, Real e, Rng& rng);

/// Run one noisy trajectory of the circuit on `psi` (in place): the gate
/// channel after every gate touch, the readout error once at the end.
void run_circuit_noisy(const Circuit& circuit, std::span<const Real> params,
                       StateVector& psi, const NoiseModel& noise, Rng& rng);

/// Average <Z_q> for each listed qubit over `trajectories` noisy runs that
/// all start from `psi_in`. Trajectories fan out across the shared thread
/// pool; each draws its own (seed, index) sub-stream and the per-trajectory
/// results are folded in fixed index order, so the answer is bit-identical
/// for any QUGEO_THREADS value.
[[nodiscard]] std::vector<Real> noisy_expect_z(
    const Circuit& circuit, std::span<const Real> params,
    const StateVector& psi_in, std::span<const Index> qubits,
    const NoiseModel& noise, std::uint64_t seed, std::size_t trajectories);

}  // namespace qugeo::qsim
