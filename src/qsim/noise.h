// Depolarizing-noise execution via Pauli-twirl trajectory sampling.
//
// The paper targets NISQ hardware but evaluates on a noiseless simulator;
// this module is the stochastic half of the noisy-execution story (the
// exact half lives in density_matrix.h): each trajectory stochastically
// inserts X/Y/Z errors after every gate with per-qubit probability p, and
// observables are averaged over trajectories (an unbiased estimator of the
// depolarizing channel).
//
// Reproducibility contract: every trajectory draws from its own RNG
// sub-stream derived from (seed, trajectory index), so averaged results
// are bit-identical for any thread count and any trajectory scheduling.
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.h"
#include "qsim/circuit.h"
#include "qsim/statevector.h"

namespace qugeo::qsim {

struct NoiseModel {
  /// Per-qubit depolarizing probability applied after every gate touch.
  Real depolarizing_prob = 0.0;
};

/// Independent RNG sub-stream for one trajectory: mixes the base seed with
/// the trajectory index (splitmix64 expansion inside Rng decorrelates the
/// nearby seeds). Trajectory t always sees the same stream, no matter which
/// thread runs it or how many trajectories run beside it.
[[nodiscard]] Rng trajectory_rng(std::uint64_t seed, std::size_t trajectory);

/// Run one noisy trajectory of the circuit on `psi` (in place).
void run_circuit_noisy(const Circuit& circuit, std::span<const Real> params,
                       StateVector& psi, const NoiseModel& noise, Rng& rng);

/// Average <Z_q> for each listed qubit over `trajectories` noisy runs that
/// all start from `psi_in`. Trajectories fan out across the shared thread
/// pool; each draws its own (seed, index) sub-stream and the per-trajectory
/// results are folded in fixed index order, so the answer is bit-identical
/// for any QUGEO_THREADS value.
[[nodiscard]] std::vector<Real> noisy_expect_z(
    const Circuit& circuit, std::span<const Real> params,
    const StateVector& psi_in, std::span<const Index> qubits,
    const NoiseModel& noise, std::uint64_t seed, std::size_t trajectories);

}  // namespace qugeo::qsim
