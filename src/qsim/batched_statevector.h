// Batched dense statevector: many independent states advanced by one gate
// dispatch.
//
// Storage is structure-of-arrays with deinterleaved real/imag planes in
// amplitude-major, lane-minor order: plane[k * lanes + l] is amplitude k of
// batch lane l. One gate application therefore walks each amplitude
// pair/quadruple ONCE and sweeps all lanes through it in a contiguous inner
// loop — the matrix entries are loop-invariant scalars, the lane loop is
// pure mul/add with unit stride (four lanes per __m256d on the AVX2 path,
// no shuffles), and the per-gate index arithmetic is amortized over the
// whole batch. This is the execution substrate for QuGeoModel's per-chunk
// sample batching and for TrajectoryBackend's trajectory groups.
//
// Numerical contract: the scalar lane loops evaluate exactly the formulas
// StateVector's kernels evaluate (same cmul grouping, same operation
// order), so a batched run is bit-identical to looping the single-state
// scalar kernels over the lanes; the AVX2 lane path matches to <= 1e-12
// per amplitude (FMA contraction only).
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "qsim/gate.h"
#include "qsim/statevector.h"

namespace qugeo::qsim {

class BatchedStateVector {
 public:
  /// Construct `lanes` copies of |0...0> on `num_qubits` qubits.
  BatchedStateVector(Index num_qubits, std::size_t lanes);

  [[nodiscard]] Index num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] Index dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }

  /// Reset every lane to |0...0>.
  void reset();

  /// Overwrite one lane's amplitudes (span must have length dim()).
  void set_lane(std::size_t lane, std::span<const Complex> amps);

  /// Overwrite one lane from an existing single-state vector.
  void set_lane(std::size_t lane, const StateVector& psi);

  /// Extract one lane as a standalone StateVector.
  [[nodiscard]] StateVector lane_state(std::size_t lane) const;

  /// Born probabilities of one lane (length dim()).
  [[nodiscard]] std::vector<Real> lane_probabilities(std::size_t lane) const;

  /// Squared norm of one lane.
  [[nodiscard]] Real lane_norm_sq(std::size_t lane) const;

  /// Raw deinterleaved planes (dim() * lanes() each) — the AVX2 kernels and
  /// the kernel-equivalence tests address these directly.
  [[nodiscard]] Real* re_data() noexcept { return re_.data(); }
  [[nodiscard]] Real* im_data() noexcept { return im_.data(); }
  [[nodiscard]] const Real* re_data() const noexcept { return re_.data(); }
  [[nodiscard]] const Real* im_data() const noexcept { return im_.data(); }

  // -- All-lane gate kernels (the batched twins of StateVector's) --------

  void apply_1q(const Mat2& u, Index q);
  void apply_diag_1q(Complex d0, Complex d1, Index q);
  void apply_antidiag_1q(Complex a01, Complex a10, Index q);
  void apply_matrix2q(const Mat4& u, Index q0, Index q1);
  void apply_block_diag_2q(const Mat2& u0, const Mat2& u1, Index control,
                           Index target);
  void apply_controlled_1q(const Mat2& u, Index control, Index target);
  void apply_controlled_diag_1q(Complex d0, Complex d1, Index control,
                                Index target);
  void apply_controlled_antidiag_1q(Complex a01, Complex a10, Index control,
                                    Index target);
  void apply_swap(Index a, Index b);

  /// Apply a 2x2 map to qubit `q` of ONE lane (strided access): the
  /// insertion point for per-trajectory noise (random Paulis, readout
  /// flips) inside a batched noisy run.
  void apply_1q_lane(const Mat2& u, Index q, std::size_t lane);

 private:
  Index num_qubits_;
  Index dim_;
  std::size_t lanes_;
  std::vector<Real> re_;  // [amplitude * lanes_ + lane]
  std::vector<Real> im_;
};

}  // namespace qugeo::qsim
