#include "qsim/gate.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace qugeo::qsim {
namespace {

constexpr Complex kI1{0, 1};

Mat2 make(Complex a, Complex b, Complex c, Complex d) {
  Mat2 u;
  u.m = {a, b, c, d};
  return u;
}

}  // namespace

// The GateKind dispatch switches below enumerate every kind explicitly —
// no `default:`. A new enumerator then fails -Wswitch (and qugeo_lint)
// until each property site has decided what the kind means, instead of
// silently inheriting a catch-all answer (a new 3-parameter gate falling
// into a `default: return 0;` would corrupt parameter resolution with no
// diagnostic anywhere).

int gate_param_count(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kPhase:
    case GateKind::kCRY:
      return 1;
    case GateKind::kU3:
    case GateKind::kCU3:
      return 3;
    case GateKind::kI:
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kSWAP:
    case GateKind::kFused2Q:
    case GateKind::kFusedCtl2Q:
      return 0;
  }
  return 0;
}

int gate_qubit_count(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kCRY:
    case GateKind::kCU3:
    case GateKind::kSWAP:
    case GateKind::kFused2Q:
    case GateKind::kFusedCtl2Q:
      return 2;
    case GateKind::kI:
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kPhase:
    case GateKind::kU3:
      return 1;
  }
  return 1;
}

GateClass gate_class(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kI:
    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRZ:
    case GateKind::kPhase:
    case GateKind::kCZ:
      return GateClass::kDiagonal;
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kCX:
      return GateClass::kAntiDiagonal;
    case GateKind::kH:
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kU3:
    case GateKind::kCRY:
    case GateKind::kCU3:
    case GateKind::kSWAP:       // dispatched before class-based selection
    case GateKind::kFused2Q:    // 4x4 payloads: dedicated kernels
    case GateKind::kFusedCtl2Q:
      return GateClass::kGeneric;
  }
  return GateClass::kGeneric;
}

bool gate_is_controlled_1q(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kCRY:
    case GateKind::kCU3:
      return true;
    case GateKind::kI:
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kPhase:
    case GateKind::kU3:
    case GateKind::kSWAP:
    case GateKind::kFused2Q:
    case GateKind::kFusedCtl2Q:
      return false;
  }
  return false;
}

std::string_view gate_name(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kI: return "id";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kH: return "h";
    case GateKind::kS: return "s";
    case GateKind::kSdg: return "sdg";
    case GateKind::kT: return "t";
    case GateKind::kTdg: return "tdg";
    case GateKind::kRX: return "rx";
    case GateKind::kRY: return "ry";
    case GateKind::kRZ: return "rz";
    case GateKind::kPhase: return "p";
    case GateKind::kU3: return "u3";
    case GateKind::kCX: return "cx";
    case GateKind::kCZ: return "cz";
    case GateKind::kCRY: return "cry";
    case GateKind::kCU3: return "cu3";
    case GateKind::kSWAP: return "swap";
    case GateKind::kFused2Q: return "fused2q";
    case GateKind::kFusedCtl2Q: return "fused_ctl2q";
  }
  return "?";
}

Mat2 u3_matrix(Real theta, Real phi, Real lambda) noexcept {
  const Real c = std::cos(theta / 2);
  const Real s = std::sin(theta / 2);
  return make(Complex{c, 0}, -std::exp(kI1 * lambda) * s,
              std::exp(kI1 * phi) * s, std::exp(kI1 * (phi + lambda)) * c);
}

Mat2 gate_matrix(GateKind kind, std::span<const Real> params) {
  assert(static_cast<int>(params.size()) >= gate_param_count(kind));
  static const Real kInvSqrt2 = Real(1) / std::sqrt(Real(2));
  switch (kind) {
    case GateKind::kI:
      return make({1, 0}, {0, 0}, {0, 0}, {1, 0});
    case GateKind::kX:
    case GateKind::kCX:
      return make({0, 0}, {1, 0}, {1, 0}, {0, 0});
    case GateKind::kY:
      return make({0, 0}, {0, -1}, {0, 1}, {0, 0});
    case GateKind::kZ:
    case GateKind::kCZ:
      return make({1, 0}, {0, 0}, {0, 0}, {-1, 0});
    case GateKind::kH:
      return make({kInvSqrt2, 0}, {kInvSqrt2, 0}, {kInvSqrt2, 0}, {-kInvSqrt2, 0});
    case GateKind::kS:
      return make({1, 0}, {0, 0}, {0, 0}, {0, 1});
    case GateKind::kSdg:
      return make({1, 0}, {0, 0}, {0, 0}, {0, -1});
    case GateKind::kT:
      return make({1, 0}, {0, 0}, {0, 0}, std::exp(kI1 * (kPi / 4)));
    case GateKind::kTdg:
      return make({1, 0}, {0, 0}, {0, 0}, std::exp(-kI1 * (kPi / 4)));
    case GateKind::kRX: {
      const Real c = std::cos(params[0] / 2), s = std::sin(params[0] / 2);
      return make({c, 0}, {0, -s}, {0, -s}, {c, 0});
    }
    case GateKind::kRY:
    case GateKind::kCRY: {
      const Real c = std::cos(params[0] / 2), s = std::sin(params[0] / 2);
      return make({c, 0}, {-s, 0}, {s, 0}, {c, 0});
    }
    case GateKind::kRZ: {
      return make(std::exp(-kI1 * (params[0] / 2)), {0, 0}, {0, 0},
                  std::exp(kI1 * (params[0] / 2)));
    }
    case GateKind::kPhase:
      return make({1, 0}, {0, 0}, {0, 0}, std::exp(kI1 * params[0]));
    case GateKind::kU3:
    case GateKind::kCU3:
      return u3_matrix(params[0], params[1], params[2]);
    case GateKind::kSWAP:
      throw std::invalid_argument("gate_matrix: SWAP has no 2x2 block form");
    case GateKind::kFused2Q:
    case GateKind::kFusedCtl2Q:
      throw std::invalid_argument(
          "gate_matrix: fused ops carry a 4x4 matrix (Circuit::matrix)");
  }
  throw std::invalid_argument("gate_matrix: unknown kind");
}

Mat2 gate_matrix_deriv(GateKind kind, std::span<const Real> params,
                       int param_index) {
  assert(param_index >= 0 && param_index < gate_param_count(kind));
  switch (kind) {
    case GateKind::kRX: {
      const Real c = std::cos(params[0] / 2) / 2, s = std::sin(params[0] / 2) / 2;
      return make({-s, 0}, {0, -c}, {0, -c}, {-s, 0});
    }
    case GateKind::kRY:
    case GateKind::kCRY: {
      const Real c = std::cos(params[0] / 2) / 2, s = std::sin(params[0] / 2) / 2;
      return make({-s, 0}, {-c, 0}, {c, 0}, {-s, 0});
    }
    case GateKind::kRZ: {
      return make(Complex{0, -0.5} * std::exp(-kI1 * (params[0] / 2)), {0, 0},
                  {0, 0}, Complex{0, 0.5} * std::exp(kI1 * (params[0] / 2)));
    }
    case GateKind::kPhase:
      return make({0, 0}, {0, 0}, {0, 0}, kI1 * std::exp(kI1 * params[0]));
    case GateKind::kU3:
    case GateKind::kCU3: {
      const Real th = params[0], ph = params[1], la = params[2];
      const Real c = std::cos(th / 2), s = std::sin(th / 2);
      switch (param_index) {
        case 0:  // d/d(theta)
          return make(Complex{-s / 2, 0}, -std::exp(kI1 * la) * (c / 2),
                      std::exp(kI1 * ph) * (c / 2),
                      -std::exp(kI1 * (ph + la)) * (s / 2));
        case 1:  // d/d(phi)
          return make({0, 0}, {0, 0}, kI1 * std::exp(kI1 * ph) * s,
                      kI1 * std::exp(kI1 * (ph + la)) * c);
        case 2:  // d/d(lambda)
          return make({0, 0}, -kI1 * std::exp(kI1 * la) * s, {0, 0},
                      kI1 * std::exp(kI1 * (ph + la)) * c);
        default:
          break;
      }
      break;
    }
    default:
      throw std::invalid_argument(
          "gate_matrix_deriv: kind has no parameter derivative");
  }
  throw std::invalid_argument("gate_matrix_deriv: non-differentiable kind/index");
}

Mat2 dagger(const Mat2& u) noexcept {
  Mat2 d;
  d(0, 0) = std::conj(u(0, 0));
  d(0, 1) = std::conj(u(1, 0));
  d(1, 0) = std::conj(u(0, 1));
  d(1, 1) = std::conj(u(1, 1));
  return d;
}

Mat4 dagger(const Mat4& u) noexcept {
  Mat4 d;
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) d(r, c) = std::conj(u(c, r));
  return d;
}

Mat4 matmul(const Mat4& a, const Mat4& b) noexcept {
  Mat4 r;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      Complex s{0, 0};
      for (int k = 0; k < 4; ++k) s += a(i, k) * b(k, j);
      r(i, j) = s;
    }
  return r;
}

}  // namespace qugeo::qsim
