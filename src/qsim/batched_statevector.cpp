#include "qsim/batched_statevector.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/cpu_features.h"
#include "common/math_utils.h"
#include "qsim/simd_kernels.h"

namespace qugeo::qsim {

namespace {
constexpr Complex kOne{1, 0};

bool use_avx2() noexcept {
  return simd::active_level() == simd::SimdLevel::kAvx2;
}
}  // namespace

BatchedStateVector::BatchedStateVector(Index num_qubits, std::size_t lanes)
    : num_qubits_(num_qubits), dim_(Index{1} << num_qubits), lanes_(lanes) {
  if (num_qubits > 28)
    throw std::invalid_argument(
        "BatchedStateVector: too many qubits for dense sim");
  if (lanes == 0)
    throw std::invalid_argument("BatchedStateVector: need at least one lane");
  re_.assign(dim_ * lanes_, Real(0));
  im_.assign(dim_ * lanes_, Real(0));
  for (std::size_t l = 0; l < lanes_; ++l) re_[l] = Real(1);
}

void BatchedStateVector::reset() {
  std::fill(re_.begin(), re_.end(), Real(0));
  std::fill(im_.begin(), im_.end(), Real(0));
  for (std::size_t l = 0; l < lanes_; ++l) re_[l] = Real(1);
}

void BatchedStateVector::set_lane(std::size_t lane,
                                  std::span<const Complex> amps) {
  if (lane >= lanes_)
    throw std::out_of_range("BatchedStateVector::set_lane: lane out of range");
  if (amps.size() != dim_)
    throw std::invalid_argument("set_lane: dimension mismatch");
  for (Index k = 0; k < dim_; ++k) {
    re_[k * lanes_ + lane] = amps[k].real();
    im_[k * lanes_ + lane] = amps[k].imag();
  }
}

void BatchedStateVector::set_lane(std::size_t lane, const StateVector& psi) {
  if (psi.num_qubits() != num_qubits_)
    throw std::invalid_argument("set_lane: qubit count mismatch");
  set_lane(lane, psi.amplitudes());
}

StateVector BatchedStateVector::lane_state(std::size_t lane) const {
  if (lane >= lanes_)
    throw std::out_of_range(
        "BatchedStateVector::lane_state: lane out of range");
  StateVector psi(num_qubits_);
  const std::span<Complex> out = psi.amplitudes_mut();
  for (Index k = 0; k < dim_; ++k)
    out[k] = Complex{re_[k * lanes_ + lane], im_[k * lanes_ + lane]};
  return psi;
}

std::vector<Real> BatchedStateVector::lane_probabilities(
    std::size_t lane) const {
  if (lane >= lanes_)
    throw std::out_of_range(
        "BatchedStateVector::lane_probabilities: lane out of range");
  std::vector<Real> p(dim_);
  for (Index k = 0; k < dim_; ++k) {
    const Real r = re_[k * lanes_ + lane];
    const Real i = im_[k * lanes_ + lane];
    p[k] = r * r + i * i;
  }
  return p;
}

Real BatchedStateVector::lane_norm_sq(std::size_t lane) const {
  if (lane >= lanes_)
    throw std::out_of_range(
        "BatchedStateVector::lane_norm_sq: lane out of range");
  Real s = 0;
  for (Index k = 0; k < dim_; ++k) {
    const Real r = re_[k * lanes_ + lane];
    const Real i = im_[k * lanes_ + lane];
    s += r * r + i * i;
  }
  return s;
}

// Every lane loop below spells out the complex arithmetic with the exact
// grouping of cmul / the StateVector kernels (see statevector.cpp), so the
// scalar batched path is bit-identical to looping the single-state kernels
// over the lanes.

void BatchedStateVector::apply_1q(const Mat2& u, Index q) {
  assert(q < num_qubits_);
  if (use_avx2()) {
    batched_apply_1q_avx2(re_.data(), im_.data(), dim_, lanes_, u, q);
    return;
  }
  const Index stride = Index{1} << q;
  const Real u00r = u(0, 0).real(), u00i = u(0, 0).imag();
  const Real u01r = u(0, 1).real(), u01i = u(0, 1).imag();
  const Real u10r = u(1, 0).real(), u10i = u(1, 0).imag();
  const Real u11r = u(1, 1).real(), u11i = u(1, 1).imag();
  Real* re = re_.data();
  Real* im = im_.data();
  for (Index base = 0; base < dim_; base += stride * 2) {
    for (Index off = 0; off < stride; ++off) {
      const Index i0 = base + off;
      const Index i1 = i0 + stride;
      Real* r0 = re + i0 * lanes_;
      Real* m0 = im + i0 * lanes_;
      Real* r1 = re + i1 * lanes_;
      Real* m1 = im + i1 * lanes_;
      for (std::size_t l = 0; l < lanes_; ++l) {
        const Real a0r = r0[l], a0i = m0[l];
        const Real a1r = r1[l], a1i = m1[l];
        r0[l] = (u00r * a0r - u00i * a0i) + (u01r * a1r - u01i * a1i);
        m0[l] = (u00r * a0i + u00i * a0r) + (u01r * a1i + u01i * a1r);
        r1[l] = (u10r * a0r - u10i * a0i) + (u11r * a1r - u11i * a1i);
        m1[l] = (u10r * a0i + u10i * a0r) + (u11r * a1i + u11i * a1r);
      }
    }
  }
}

void BatchedStateVector::apply_diag_1q(Complex d0, Complex d1, Index q) {
  assert(q < num_qubits_);
  const Index stride = Index{1} << q;
  const Index half = dim_ / 2;
  const Real d0r = d0.real(), d0i = d0.imag();
  const Real d1r = d1.real(), d1i = d1.imag();
  Real* re = re_.data();
  Real* im = im_.data();
  if (d0 == kOne && d1 == kOne) return;  // identity
  if (d0 == kOne) {
    for (Index j = 0; j < half; ++j) {
      const Index i1 = insert_zero_bit(j, q) | stride;
      Real* r1 = re + i1 * lanes_;
      Real* m1 = im + i1 * lanes_;
      for (std::size_t l = 0; l < lanes_; ++l) {
        const Real ar = r1[l], ai = m1[l];
        r1[l] = ar * d1r - ai * d1i;
        m1[l] = ar * d1i + ai * d1r;
      }
    }
    return;
  }
  for (Index j = 0; j < half; ++j) {
    const Index i0 = insert_zero_bit(j, q);
    const Index i1 = i0 | stride;
    Real* r0 = re + i0 * lanes_;
    Real* m0 = im + i0 * lanes_;
    Real* r1 = re + i1 * lanes_;
    Real* m1 = im + i1 * lanes_;
    for (std::size_t l = 0; l < lanes_; ++l) {
      const Real a0r = r0[l], a0i = m0[l];
      const Real a1r = r1[l], a1i = m1[l];
      r0[l] = a0r * d0r - a0i * d0i;
      m0[l] = a0r * d0i + a0i * d0r;
      r1[l] = a1r * d1r - a1i * d1i;
      m1[l] = a1r * d1i + a1i * d1r;
    }
  }
}

void BatchedStateVector::apply_antidiag_1q(Complex a01, Complex a10, Index q) {
  assert(q < num_qubits_);
  const Index stride = Index{1} << q;
  const Index half = dim_ / 2;
  Real* re = re_.data();
  Real* im = im_.data();
  if (a01 == kOne && a10 == kOne) {  // X: pure swap
    for (Index j = 0; j < half; ++j) {
      const Index i0 = insert_zero_bit(j, q);
      const Index i1 = i0 | stride;
      Real* r0 = re + i0 * lanes_;
      Real* m0 = im + i0 * lanes_;
      Real* r1 = re + i1 * lanes_;
      Real* m1 = im + i1 * lanes_;
      for (std::size_t l = 0; l < lanes_; ++l) {
        std::swap(r0[l], r1[l]);
        std::swap(m0[l], m1[l]);
      }
    }
    return;
  }
  const Real b01r = a01.real(), b01i = a01.imag();
  const Real b10r = a10.real(), b10i = a10.imag();
  for (Index j = 0; j < half; ++j) {
    const Index i0 = insert_zero_bit(j, q);
    const Index i1 = i0 | stride;
    Real* r0 = re + i0 * lanes_;
    Real* m0 = im + i0 * lanes_;
    Real* r1 = re + i1 * lanes_;
    Real* m1 = im + i1 * lanes_;
    for (std::size_t l = 0; l < lanes_; ++l) {
      const Real a0r = r0[l], a0i = m0[l];
      const Real a1r = r1[l], a1i = m1[l];
      r0[l] = b01r * a1r - b01i * a1i;
      m0[l] = b01r * a1i + b01i * a1r;
      r1[l] = b10r * a0r - b10i * a0i;
      m1[l] = b10r * a0i + b10i * a0r;
    }
  }
}

void BatchedStateVector::apply_matrix2q(const Mat4& u, Index q0, Index q1) {
  assert(q0 < num_qubits_ && q1 < num_qubits_ && q0 != q1);
  const Index m0 = Index{1} << q0;
  const Index m1 = Index{1} << q1;
  const Index mlo = q0 < q1 ? m0 : m1;
  const Index mhi = q0 < q1 ? m1 : m0;
  // Deinterleave the 16 matrix entries once; inside the lane loop they are
  // plain loop-invariant scalars.
  Real ur[16], ui[16];
  for (int e = 0; e < 16; ++e) {
    ur[e] = u.m[static_cast<std::size_t>(e)].real();
    ui[e] = u.m[static_cast<std::size_t>(e)].imag();
  }
  Real* re = re_.data();
  Real* im = im_.data();
  for (Index base = 0; base < dim_; base += 2 * mhi) {
    for (Index mid = base; mid < base + mhi; mid += 2 * mlo) {
      for (Index i0 = mid; i0 < mid + mlo; ++i0) {
        const Index i1 = i0 | m0;
        const Index i2 = i0 | m1;
        const Index i3 = i1 | m1;
        Real* const rp[4] = {re + i0 * lanes_, re + i1 * lanes_,
                             re + i2 * lanes_, re + i3 * lanes_};
        Real* const mp[4] = {im + i0 * lanes_, im + i1 * lanes_,
                             im + i2 * lanes_, im + i3 * lanes_};
        for (std::size_t l = 0; l < lanes_; ++l) {
          const Real ar[4] = {rp[0][l], rp[1][l], rp[2][l], rp[3][l]};
          const Real ai[4] = {mp[0][l], mp[1][l], mp[2][l], mp[3][l]};
          for (int r = 0; r < 4; ++r) {
            const int e = r * 4;
            rp[r][l] = (ur[e] * ar[0] - ui[e] * ai[0]) +
                       (ur[e + 1] * ar[1] - ui[e + 1] * ai[1]) +
                       (ur[e + 2] * ar[2] - ui[e + 2] * ai[2]) +
                       (ur[e + 3] * ar[3] - ui[e + 3] * ai[3]);
            mp[r][l] = (ur[e] * ai[0] + ui[e] * ar[0]) +
                       (ur[e + 1] * ai[1] + ui[e + 1] * ar[1]) +
                       (ur[e + 2] * ai[2] + ui[e + 2] * ar[2]) +
                       (ur[e + 3] * ai[3] + ui[e + 3] * ar[3]);
          }
        }
      }
    }
  }
}

namespace {

/// Shared 2x2 pair update over one (i0, i1) amplitude pair, all lanes —
/// the body the block-diagonal and controlled kernels reuse.
inline void pair_update_lanes(Real* r0, Real* m0, Real* r1, Real* m1,
                              std::size_t lanes, Real u00r, Real u00i,
                              Real u01r, Real u01i, Real u10r, Real u10i,
                              Real u11r, Real u11i) {
  for (std::size_t l = 0; l < lanes; ++l) {
    const Real a0r = r0[l], a0i = m0[l];
    const Real a1r = r1[l], a1i = m1[l];
    r0[l] = (u00r * a0r - u00i * a0i) + (u01r * a1r - u01i * a1i);
    m0[l] = (u00r * a0i + u00i * a0r) + (u01r * a1i + u01i * a1r);
    r1[l] = (u10r * a0r - u10i * a0i) + (u11r * a1r - u11i * a1i);
    m1[l] = (u10r * a0i + u10i * a0r) + (u11r * a1i + u11i * a1r);
  }
}

}  // namespace

void BatchedStateVector::apply_block_diag_2q(const Mat2& u0, const Mat2& u1,
                                             Index control, Index target) {
  assert(control < num_qubits_ && target < num_qubits_ && control != target);
  const Index mc = Index{1} << control;
  const Index mt = Index{1} << target;
  Real* re = re_.data();
  Real* im = im_.data();
  for (int v = 0; v < 2; ++v) {
    const Mat2& u = v ? u1 : u0;
    if (u(0, 1) == Complex{0, 0} && u(1, 0) == Complex{0, 0} &&
        u(0, 0) == kOne && u(1, 1) == kOne)
      continue;  // identity block: half-space untouched
    const Real w00r = u(0, 0).real(), w00i = u(0, 0).imag();
    const Real w01r = u(0, 1).real(), w01i = u(0, 1).imag();
    const Real w10r = u(1, 0).real(), w10i = u(1, 0).imag();
    const Real w11r = u(1, 1).real(), w11i = u(1, 1).imag();
    const Index voff = v ? mc : 0;
    if (control > target) {
      for (Index base = 0; base < dim_; base += 2 * mc) {
        const Index h0 = base + voff;
        for (Index mid = h0; mid < h0 + mc; mid += 2 * mt) {
          for (Index i0 = mid; i0 < mid + mt; ++i0) {
            const Index i1 = i0 + mt;
            pair_update_lanes(re + i0 * lanes_, im + i0 * lanes_,
                              re + i1 * lanes_, im + i1 * lanes_, lanes_,
                              w00r, w00i, w01r, w01i, w10r, w10i, w11r, w11i);
          }
        }
      }
    } else {
      for (Index base = 0; base < dim_; base += 2 * mt) {
        for (Index coff = base + voff; coff < base + mt; coff += 2 * mc) {
          for (Index i0 = coff; i0 < coff + mc; ++i0) {
            const Index i1 = i0 + mt;
            pair_update_lanes(re + i0 * lanes_, im + i0 * lanes_,
                              re + i1 * lanes_, im + i1 * lanes_, lanes_,
                              w00r, w00i, w01r, w01i, w10r, w10i, w11r, w11i);
          }
        }
      }
    }
  }
}

void BatchedStateVector::apply_controlled_1q(const Mat2& u, Index control,
                                             Index target) {
  assert(control < num_qubits_ && target < num_qubits_ && control != target);
  const Index cmask = Index{1} << control;
  const Index tmask = Index{1} << target;
  const Index lo = control < target ? control : target;
  const Index hi = control < target ? target : control;
  const Index quarter = dim_ / 4;
  const Real u00r = u(0, 0).real(), u00i = u(0, 0).imag();
  const Real u01r = u(0, 1).real(), u01i = u(0, 1).imag();
  const Real u10r = u(1, 0).real(), u10i = u(1, 0).imag();
  const Real u11r = u(1, 1).real(), u11i = u(1, 1).imag();
  Real* re = re_.data();
  Real* im = im_.data();
  for (Index j = 0; j < quarter; ++j) {
    const Index i0 = insert_two_zero_bits(j, lo, hi) | cmask;
    const Index i1 = i0 | tmask;
    pair_update_lanes(re + i0 * lanes_, im + i0 * lanes_, re + i1 * lanes_,
                      im + i1 * lanes_, lanes_, u00r, u00i, u01r, u01i, u10r,
                      u10i, u11r, u11i);
  }
}

void BatchedStateVector::apply_controlled_diag_1q(Complex d0, Complex d1,
                                                  Index control, Index target) {
  assert(control < num_qubits_ && target < num_qubits_ && control != target);
  const Index cmask = Index{1} << control;
  const Index tmask = Index{1} << target;
  const Index lo = control < target ? control : target;
  const Index hi = control < target ? target : control;
  const Index quarter = dim_ / 4;
  const Real d0r = d0.real(), d0i = d0.imag();
  const Real d1r = d1.real(), d1i = d1.imag();
  Real* re = re_.data();
  Real* im = im_.data();
  if (d0 == kOne && d1 == kOne) return;
  if (d0 == kOne) {
    for (Index j = 0; j < quarter; ++j) {
      const Index i1 = insert_two_zero_bits(j, lo, hi) | cmask | tmask;
      Real* r1 = re + i1 * lanes_;
      Real* m1 = im + i1 * lanes_;
      for (std::size_t l = 0; l < lanes_; ++l) {
        const Real ar = r1[l], ai = m1[l];
        r1[l] = ar * d1r - ai * d1i;
        m1[l] = ar * d1i + ai * d1r;
      }
    }
    return;
  }
  for (Index j = 0; j < quarter; ++j) {
    const Index i0 = insert_two_zero_bits(j, lo, hi) | cmask;
    const Index i1 = i0 | tmask;
    Real* r0 = re + i0 * lanes_;
    Real* m0 = im + i0 * lanes_;
    Real* r1 = re + i1 * lanes_;
    Real* m1 = im + i1 * lanes_;
    for (std::size_t l = 0; l < lanes_; ++l) {
      const Real a0r = r0[l], a0i = m0[l];
      const Real a1r = r1[l], a1i = m1[l];
      r0[l] = a0r * d0r - a0i * d0i;
      m0[l] = a0r * d0i + a0i * d0r;
      r1[l] = a1r * d1r - a1i * d1i;
      m1[l] = a1r * d1i + a1i * d1r;
    }
  }
}

void BatchedStateVector::apply_controlled_antidiag_1q(Complex a01, Complex a10,
                                                      Index control,
                                                      Index target) {
  assert(control < num_qubits_ && target < num_qubits_ && control != target);
  const Index cmask = Index{1} << control;
  const Index tmask = Index{1} << target;
  const Index lo = control < target ? control : target;
  const Index hi = control < target ? target : control;
  const Index quarter = dim_ / 4;
  Real* re = re_.data();
  Real* im = im_.data();
  if (a01 == kOne && a10 == kOne) {  // CX: swap inside the control half
    for (Index j = 0; j < quarter; ++j) {
      const Index i0 = insert_two_zero_bits(j, lo, hi) | cmask;
      const Index i1 = i0 | tmask;
      Real* r0 = re + i0 * lanes_;
      Real* m0 = im + i0 * lanes_;
      Real* r1 = re + i1 * lanes_;
      Real* m1 = im + i1 * lanes_;
      for (std::size_t l = 0; l < lanes_; ++l) {
        std::swap(r0[l], r1[l]);
        std::swap(m0[l], m1[l]);
      }
    }
    return;
  }
  const Real b01r = a01.real(), b01i = a01.imag();
  const Real b10r = a10.real(), b10i = a10.imag();
  for (Index j = 0; j < quarter; ++j) {
    const Index i0 = insert_two_zero_bits(j, lo, hi) | cmask;
    const Index i1 = i0 | tmask;
    Real* r0 = re + i0 * lanes_;
    Real* m0 = im + i0 * lanes_;
    Real* r1 = re + i1 * lanes_;
    Real* m1 = im + i1 * lanes_;
    for (std::size_t l = 0; l < lanes_; ++l) {
      const Real a0r = r0[l], a0i = m0[l];
      const Real a1r = r1[l], a1i = m1[l];
      r0[l] = b01r * a1r - b01i * a1i;
      m0[l] = b01r * a1i + b01i * a1r;
      r1[l] = b10r * a0r - b10i * a0i;
      m1[l] = b10r * a0i + b10i * a0r;
    }
  }
}

void BatchedStateVector::apply_swap(Index a, Index b) {
  assert(a < num_qubits_ && b < num_qubits_);
  if (a == b) return;
  const Index ma = Index{1} << a;
  const Index mb = Index{1} << b;
  const Index lo = a < b ? a : b;
  const Index hi = a < b ? b : a;
  const Index quarter = dim_ / 4;
  Real* re = re_.data();
  Real* im = im_.data();
  for (Index j = 0; j < quarter; ++j) {
    const Index base = insert_two_zero_bits(j, lo, hi);
    Real* ra = re + (base | ma) * lanes_;
    Real* ia = im + (base | ma) * lanes_;
    Real* rb = re + (base | mb) * lanes_;
    Real* ib = im + (base | mb) * lanes_;
    for (std::size_t l = 0; l < lanes_; ++l) {
      std::swap(ra[l], rb[l]);
      std::swap(ia[l], ib[l]);
    }
  }
}

void BatchedStateVector::apply_1q_lane(const Mat2& u, Index q,
                                       std::size_t lane) {
  assert(q < num_qubits_ && lane < lanes_);
  const Index stride = Index{1} << q;
  const Real u00r = u(0, 0).real(), u00i = u(0, 0).imag();
  const Real u01r = u(0, 1).real(), u01i = u(0, 1).imag();
  const Real u10r = u(1, 0).real(), u10i = u(1, 0).imag();
  const Real u11r = u(1, 1).real(), u11i = u(1, 1).imag();
  Real* re = re_.data();
  Real* im = im_.data();
  for (Index base = 0; base < dim_; base += stride * 2) {
    for (Index off = 0; off < stride; ++off) {
      const Index i0 = (base + off) * lanes_ + lane;
      const Index i1 = i0 + stride * lanes_;
      const Real a0r = re[i0], a0i = im[i0];
      const Real a1r = re[i1], a1i = im[i1];
      re[i0] = (u00r * a0r - u00i * a0i) + (u01r * a1r - u01i * a1i);
      im[i0] = (u00r * a0i + u00i * a0r) + (u01r * a1i + u01i * a1r);
      re[i1] = (u10r * a0r - u10i * a0i) + (u11r * a1r - u11i * a1i);
      im[i1] = (u10r * a0i + u10i * a0r) + (u11r * a1i + u11i * a1r);
    }
  }
}

}  // namespace qugeo::qsim
