// Gate library: kinds, parameter arities, unitary matrices, and analytic
// parameter derivatives. The set mirrors what TorchQuantum's `U3+CU3`
// ansatz and the ST-Encoder synthesis need, plus the standard Cliffords.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "common/types.h"

namespace qugeo::qsim {

/// Supported gate kinds. Single-qubit gates act on qubits[0]; controlled
/// gates use qubits[0] as control and qubits[1] as target; SWAP is
/// symmetric in its two operands.
///
/// kFused2Q and kFusedCtl2Q are execution-internal kinds produced by the
/// optimizer's two-qubit run fusion: a 4x4 unitary on
/// (qubits[0], qubits[1]) whose matrix lives in the owning Circuit's side
/// table (Op::matrix_id). kFusedCtl2Q is the block-diagonal special case —
/// the matrix applies one 2x2 block to the target (qubits[1]) per value of
/// the control (qubits[0]), executed by the fast dual half-space kernel;
/// kFused2Q is the dense general case. Neither has parameters, a QASM
/// mnemonic, or a 2x2 block form; both are executed by run_circuit /
/// run_circuit_density via the Mat4 kernels.
enum class GateKind : std::uint8_t {
  kI,
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  kT,
  kTdg,
  kRX,
  kRY,
  kRZ,
  kPhase,
  kU3,
  kCX,
  kCZ,
  kCRY,
  kCU3,
  kSWAP,
  kFused2Q,
  kFusedCtl2Q,
};

/// Structural class of a gate's 2x2 block (for controlled gates, of the
/// target block). Drives kernel dispatch in the executor: diagonal blocks
/// need no cross terms, anti-diagonal blocks are pure amplitude swaps.
enum class GateClass : std::uint8_t {
  kGeneric,       ///< dense 2x2: H, RX, RY, U3, CRY, CU3
  kDiagonal,      ///< phase-only: I, Z, S, Sdg, T, Tdg, RZ, Phase, CZ
  kAntiDiagonal,  ///< off-diagonal-only: X, Y, CX
};

/// Kernel class of the gate's 2x2 block (SWAP reports kGeneric; it is
/// dispatched before class-based selection).
[[nodiscard]] GateClass gate_class(GateKind kind) noexcept;

/// 2x2 complex matrix in row-major order.
struct Mat2 {
  std::array<Complex, 4> m{};  // [row*2 + col]
  [[nodiscard]] Complex operator()(int r, int c) const { return m[static_cast<std::size_t>(r * 2 + c)]; }
  Complex& operator()(int r, int c) { return m[static_cast<std::size_t>(r * 2 + c)]; }
};

/// 4x4 complex matrix in row-major order over a two-qubit sub-basis. The
/// sub-index convention is fixed by the op that carries the matrix: bit 0
/// of the 2-bit sub-index is the first operand qubit (qubits[0]), bit 1 is
/// the second (qubits[1]).
struct Mat4 {
  std::array<Complex, 16> m{};  // [row*4 + col]
  [[nodiscard]] Complex operator()(int r, int c) const { return m[static_cast<std::size_t>(r * 4 + c)]; }
  Complex& operator()(int r, int c) { return m[static_cast<std::size_t>(r * 4 + c)]; }
};

/// Number of classical parameters the gate kind consumes (0, 1, or 3).
[[nodiscard]] int gate_param_count(GateKind kind) noexcept;

/// Number of qubit operands (1 or 2).
[[nodiscard]] int gate_qubit_count(GateKind kind) noexcept;

/// True for two-qubit gates whose action is "apply a 1-qubit matrix on the
/// target when the control is |1>" (CX, CZ, CRY, CU3).
[[nodiscard]] bool gate_is_controlled_1q(GateKind kind) noexcept;

/// Lowercase OpenQASM-compatible mnemonic ("u3", "cx", ...).
[[nodiscard]] std::string_view gate_name(GateKind kind) noexcept;

/// Build the 2x2 matrix for a single-qubit kind (or the target-block matrix
/// of a controlled kind). `params` must hold gate_param_count(kind) values
/// (for controlled kinds, the inner gate's parameters).
[[nodiscard]] Mat2 gate_matrix(GateKind kind, std::span<const Real> params);

/// Analytic derivative of gate_matrix with respect to params[param_index].
[[nodiscard]] Mat2 gate_matrix_deriv(GateKind kind, std::span<const Real> params,
                                     int param_index);

/// Hermitian conjugate.
[[nodiscard]] Mat2 dagger(const Mat2& u) noexcept;

/// Hermitian conjugate of a two-qubit matrix.
[[nodiscard]] Mat4 dagger(const Mat4& u) noexcept;

/// Row-major 4x4 product a * b.
[[nodiscard]] Mat4 matmul(const Mat4& a, const Mat4& b) noexcept;

/// General U3(theta, phi, lambda) rotation (OpenQASM u3 convention).
[[nodiscard]] Mat2 u3_matrix(Real theta, Real phi, Real lambda) noexcept;

}  // namespace qugeo::qsim
