// Measurement post-processing and cotangent construction for training.
//
// Decoders in QuGeoVQC read either marginal probabilities (pixel decoder) or
// per-qubit <Z> expectations (layer decoder). Both are quadratic forms in the
// state, so the loss cotangent lambda_k = dL/d(conj(psi_k)) has the closed
// forms implemented here; adjoint_backward then turns it into parameter
// gradients.
#pragma once

#include <span>
#include <vector>

#include "qsim/statevector.h"

namespace qugeo::qsim {

/// Cotangent of a loss expressed through the full probability vector:
/// given g_k = dL/dp_k, returns lambda_k = g_k * psi_k.
[[nodiscard]] std::vector<Complex> cotangent_from_probability_grads(
    const StateVector& psi, std::span<const Real> prob_grads);

/// Cotangent of a loss expressed through marginal probabilities over
/// `qubits`: given g_j = dL/dP(j), returns lambda_k = g_{out(k)} * psi_k,
/// where out(k) gathers the bits of k at `qubits`.
[[nodiscard]] std::vector<Complex> cotangent_from_marginal_grads(
    const StateVector& psi, std::span<const Index> qubits,
    std::span<const Real> marginal_grads);

/// Cotangent of a loss expressed through <Z_q> for each listed qubit:
/// given g_i = dL/d<Z_{qubits[i]}>, returns
/// lambda_k = (sum_i g_i * sign_i(k)) * psi_k.
[[nodiscard]] std::vector<Complex> cotangent_from_z_grads(
    const StateVector& psi, std::span<const Index> qubits,
    std::span<const Real> z_grads);

/// Expectation of a tensor product of Pauli Z on the listed qubits.
[[nodiscard]] Real expect_z_string(const StateVector& psi,
                                   std::span<const Index> qubits);

}  // namespace qugeo::qsim
