// AVX2/FMA statevector kernels (see simd_kernels.h for the contract).
//
// This translation unit is the only qsim source compiled with -mavx2 -mfma
// (CMakeLists gates it on QUGEO_AVX2_KERNELS); without that option the
// entry points become throwing stubs and simd::active_level() can never
// select them.
//
// Layout notes: std::complex<double> is storage-compatible with double[2]
// (array-oriented access, [complex.numbers.general]), so one __m256d holds
// two interleaved amplitudes [re0 im0 re1 im1]. A constant-times-vector
// complex multiply is then
//   fmaddsub(c.re, v, c.im * swap_pairs(v))
// (even lanes a*b - c, odd lanes a*b + c), which is exactly cmul() with the
// two products of each component contracted into one FMA.
#include "qsim/simd_kernels.h"

#include <stdexcept>

#ifdef QUGEO_WITH_AVX2_KERNELS

#include <immintrin.h>

namespace qugeo::qsim {
namespace {

/// Broadcast complex constant: c.re in every lane of `re`, c.im in `im`.
struct CVec {
  __m256d re, im;
};

CVec broadcast_c(const Complex& c) {
  return {_mm256_set1_pd(c.real()), _mm256_set1_pd(c.imag())};
}

/// Lane-pair constant for adjacent-pair kernels: complex lanes {0} of the
/// vector multiply by c0, lanes {1} by c1.
CVec pair_c(const Complex& c0, const Complex& c1) {
  return {_mm256_set_pd(c1.real(), c1.real(), c0.real(), c0.real()),
          _mm256_set_pd(c1.imag(), c1.imag(), c0.imag(), c0.imag())};
}

/// c * v over two interleaved complexes.
inline __m256d cmul_vec(const CVec& c, __m256d v) {
  const __m256d sw = _mm256_permute_pd(v, 0b0101);  // [im0 re0 im1 re1]
  return _mm256_fmaddsub_pd(c.re, v, _mm256_mul_pd(c.im, sw));
}

/// Duplicate the low complex lane: [a b] -> [a a].
inline __m256d dup_lo(__m256d v) { return _mm256_permute4x64_pd(v, 0x44); }
/// Duplicate the high complex lane: [a b] -> [b b].
inline __m256d dup_hi(__m256d v) { return _mm256_permute4x64_pd(v, 0xEE); }

/// The (i0, i1) pair update new0 = u00 a0 + u01 a1, new1 = u10 a0 + u11 a1
/// over two pairs at once (p0/p1 point at runs of two complexes).
inline void pair_update(double* p0, double* p1, const CVec& u00,
                        const CVec& u01, const CVec& u10, const CVec& u11) {
  const __m256d a0 = _mm256_loadu_pd(p0);
  const __m256d a1 = _mm256_loadu_pd(p1);
  _mm256_storeu_pd(p0, _mm256_add_pd(cmul_vec(u00, a0), cmul_vec(u01, a1)));
  _mm256_storeu_pd(p1, _mm256_add_pd(cmul_vec(u10, a0), cmul_vec(u11, a1)));
}

}  // namespace

void apply_1q_avx2(Complex* amps, Index n, const Mat2& u, Index q) {
  double* a = reinterpret_cast<double*>(amps);
  const Index stride = Index{1} << q;
  if (stride >= 2) {
    const CVec u00 = broadcast_c(u(0, 0)), u01 = broadcast_c(u(0, 1));
    const CVec u10 = broadcast_c(u(1, 0)), u11 = broadcast_c(u(1, 1));
    for (Index base = 0; base < n; base += stride * 2)
      for (Index off = 0; off < stride; off += 2)
        pair_update(a + 2 * (base + off), a + 2 * (base + off + stride), u00,
                    u01, u10, u11);
    return;
  }
  // q == 0: each vector holds one full (a0, a1) pair; lane-broadcast the
  // two amplitudes and pack the matrix per output lane.
  const CVec ca = pair_c(u(0, 0), u(1, 0));
  const CVec cb = pair_c(u(0, 1), u(1, 1));
  for (Index i = 0; i < n; i += 2) {
    double* p = a + 2 * i;
    const __m256d v = _mm256_loadu_pd(p);
    _mm256_storeu_pd(
        p, _mm256_add_pd(cmul_vec(ca, dup_lo(v)), cmul_vec(cb, dup_hi(v))));
  }
}

void apply_controlled_1q_avx2(Complex* amps, Index n, const Mat2& u,
                              Index control, Index target) {
  double* a = reinterpret_cast<double*>(amps);
  const Index cmask = Index{1} << control;
  const Index tmask = Index{1} << target;
  const Index lo = control < target ? control : target;
  const Index hi = control < target ? target : control;
  const Index mlo = Index{1} << lo;
  const Index mhi = Index{1} << hi;
  if (lo >= 1) {
    // Free low bits give contiguous runs of mlo >= 2 base indices with
    // bits lo/hi clear; OR-ing the (clear) control bit keeps them runs.
    const CVec u00 = broadcast_c(u(0, 0)), u01 = broadcast_c(u(0, 1));
    const CVec u10 = broadcast_c(u(1, 0)), u11 = broadcast_c(u(1, 1));
    for (Index base = 0; base < n; base += 2 * mhi)
      for (Index mid = base; mid < base + mhi; mid += 2 * mlo)
        for (Index i = mid; i < mid + mlo; i += 2) {
          const Index i0 = i | cmask;
          pair_update(a + 2 * i0, a + 2 * (i0 | tmask), u00, u01, u10, u11);
        }
    return;
  }
  if (target == 0) {
    // Pairs are adjacent inside the control=|1> half of each block.
    const CVec ca = pair_c(u(0, 0), u(1, 0));
    const CVec cb = pair_c(u(0, 1), u(1, 1));
    for (Index base = 0; base < n; base += 2 * mhi)
      for (Index i = base + mhi; i < base + 2 * mhi; i += 2) {
        double* p = a + 2 * i;
        const __m256d v = _mm256_loadu_pd(p);
        _mm256_storeu_pd(p, _mm256_add_pd(cmul_vec(ca, dup_lo(v)),
                                          cmul_vec(cb, dup_hi(v))));
      }
    return;
  }
  // control == 0: the touched pairs are the odd elements, stride-2 apart —
  // no contiguous runs to vectorize. Scalar formulas (FMA-contracted by
  // this TU's flags, still within the 1e-12 envelope).
  const Complex u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  Complex* c = amps;
  for (Index base = 0; base < n; base += 2 * mhi)
    for (Index i = base; i < base + mhi; i += 2) {
      const Index i0 = i | cmask;
      const Index i1 = i0 | tmask;
      const Complex a0 = c[i0];
      const Complex a1 = c[i1];
      c[i0] = Complex{u00.real() * a0.real() - u00.imag() * a0.imag() +
                          (u01.real() * a1.real() - u01.imag() * a1.imag()),
                      u00.real() * a0.imag() + u00.imag() * a0.real() +
                          (u01.real() * a1.imag() + u01.imag() * a1.real())};
      c[i1] = Complex{u10.real() * a0.real() - u10.imag() * a0.imag() +
                          (u11.real() * a1.real() - u11.imag() * a1.imag()),
                      u10.real() * a0.imag() + u10.imag() * a0.real() +
                          (u11.real() * a1.imag() + u11.imag() * a1.real())};
    }
}

void apply_matrix2q_avx2(Complex* amps, Index n, const Mat4& u, Index q0,
                         Index q1) {
  double* a = reinterpret_cast<double*>(amps);
  const Index m0 = Index{1} << q0;
  const Index m1 = Index{1} << q1;
  const Index mlo = q0 < q1 ? m0 : m1;
  const Index mhi = q0 < q1 ? m1 : m0;
  if (mlo >= 2) {
    // Contiguous runs of mlo base indices: two amplitude quadruples per
    // iteration. The 16 broadcast constant pairs live in a small array the
    // compiler keeps on the stack — reloads are cheap aligned loads.
    CVec um[16];
    for (int k = 0; k < 16; ++k) um[k] = broadcast_c(u.m[static_cast<std::size_t>(k)]);
    for (Index base = 0; base < n; base += 2 * mhi)
      for (Index mid = base; mid < base + mhi; mid += 2 * mlo)
        for (Index i0 = mid; i0 < mid + mlo; i0 += 2) {
          double* p0 = a + 2 * i0;
          double* p1 = a + 2 * (i0 | m0);
          double* p2 = a + 2 * (i0 | m1);
          double* p3 = a + 2 * ((i0 | m0) | m1);
          const __m256d a0 = _mm256_loadu_pd(p0);
          const __m256d a1 = _mm256_loadu_pd(p1);
          const __m256d a2 = _mm256_loadu_pd(p2);
          const __m256d a3 = _mm256_loadu_pd(p3);
          _mm256_storeu_pd(
              p0, _mm256_add_pd(
                      _mm256_add_pd(cmul_vec(um[0], a0), cmul_vec(um[1], a1)),
                      _mm256_add_pd(cmul_vec(um[2], a2), cmul_vec(um[3], a3))));
          _mm256_storeu_pd(
              p1, _mm256_add_pd(
                      _mm256_add_pd(cmul_vec(um[4], a0), cmul_vec(um[5], a1)),
                      _mm256_add_pd(cmul_vec(um[6], a2), cmul_vec(um[7], a3))));
          _mm256_storeu_pd(
              p2,
              _mm256_add_pd(
                  _mm256_add_pd(cmul_vec(um[8], a0), cmul_vec(um[9], a1)),
                  _mm256_add_pd(cmul_vec(um[10], a2), cmul_vec(um[11], a3))));
          _mm256_storeu_pd(
              p3,
              _mm256_add_pd(
                  _mm256_add_pd(cmul_vec(um[12], a0), cmul_vec(um[13], a1)),
                  _mm256_add_pd(cmul_vec(um[14], a2), cmul_vec(um[15], a3))));
        }
    return;
  }
  // mlo == 1: the low operand is qubit 0, so the quadruple decomposes into
  // two adjacent pairs (lo-qubit 0/1) at distance mhi. Permute the matrix
  // so sub-index bit 0 is the LOW qubit (the scalar kernel's i1 = i0|m0
  // convention ties bit 0 to q0), then lane-broadcast each amplitude.
  Mat4 w;
  if (q0 < q1) {
    w = u;
  } else {
    const auto perm = [](int k) { return ((k & 1) << 1) | ((k >> 1) & 1); };
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < 4; ++c) w(r, c) = u(perm(r), perm(c));
  }
  CVec lo_c[4], hi_c[4];  // column c coefficients of the lo / hi output pair
  for (int c = 0; c < 4; ++c) {
    lo_c[c] = pair_c(w(0, c), w(1, c));
    hi_c[c] = pair_c(w(2, c), w(3, c));
  }
  for (Index base = 0; base < n; base += 2 * mhi)
    for (Index j = base; j < base + mhi; j += 2) {
      double* plo = a + 2 * j;
      double* phi = a + 2 * (j + mhi);
      const __m256d vlo = _mm256_loadu_pd(plo);  // [A B] = lo-qubit 0/1
      const __m256d vhi = _mm256_loadu_pd(phi);  // [C D]
      const __m256d vA = dup_lo(vlo), vB = dup_hi(vlo);
      const __m256d vC = dup_lo(vhi), vD = dup_hi(vhi);
      _mm256_storeu_pd(
          plo, _mm256_add_pd(
                   _mm256_add_pd(cmul_vec(lo_c[0], vA), cmul_vec(lo_c[1], vB)),
                   _mm256_add_pd(cmul_vec(lo_c[2], vC), cmul_vec(lo_c[3], vD))));
      _mm256_storeu_pd(
          phi, _mm256_add_pd(
                   _mm256_add_pd(cmul_vec(hi_c[0], vA), cmul_vec(hi_c[1], vB)),
                   _mm256_add_pd(cmul_vec(hi_c[2], vC), cmul_vec(hi_c[3], vD))));
    }
}

void apply_block_diag_2q_avx2(Complex* amps, Index n, const Mat2& u0,
                              const Mat2& u1, Index control, Index target) {
  double* a = reinterpret_cast<double*>(amps);
  const Index mc = Index{1} << control;
  const Index mt = Index{1} << target;
  // One sweep per control value over that half-space's target pairs —
  // the same iteration order as the scalar twin, pair_update vectorized.
  for (int v = 0; v < 2; ++v) {
    const Mat2& u = v ? u1 : u0;
    if (u(0, 1) == Complex{0, 0} && u(1, 0) == Complex{0, 0} &&
        u(0, 0) == Complex{1, 0} && u(1, 1) == Complex{1, 0})
      continue;  // identity block: half-space untouched
    const Index voff = v ? mc : 0;
    if (control > target) {
      if (mt >= 2) {
        const CVec u00 = broadcast_c(u(0, 0)), u01 = broadcast_c(u(0, 1));
        const CVec u10 = broadcast_c(u(1, 0)), u11 = broadcast_c(u(1, 1));
        for (Index base = 0; base < n; base += 2 * mc) {
          const Index h0 = base + voff;
          for (Index mid = h0; mid < h0 + mc; mid += 2 * mt)
            for (Index i0 = mid; i0 < mid + mt; i0 += 2)
              pair_update(a + 2 * i0, a + 2 * (i0 + mt), u00, u01, u10, u11);
        }
      } else {
        // target == 0: adjacent pairs throughout the control half-space.
        const CVec ca = pair_c(u(0, 0), u(1, 0));
        const CVec cb = pair_c(u(0, 1), u(1, 1));
        for (Index base = 0; base < n; base += 2 * mc) {
          const Index h0 = base + voff;
          for (Index i = h0; i < h0 + mc; i += 2) {
            double* p = a + 2 * i;
            const __m256d vv = _mm256_loadu_pd(p);
            _mm256_storeu_pd(p, _mm256_add_pd(cmul_vec(ca, dup_lo(vv)),
                                              cmul_vec(cb, dup_hi(vv))));
          }
        }
      }
    } else {
      if (mc >= 2) {
        const CVec u00 = broadcast_c(u(0, 0)), u01 = broadcast_c(u(0, 1));
        const CVec u10 = broadcast_c(u(1, 0)), u11 = broadcast_c(u(1, 1));
        for (Index base = 0; base < n; base += 2 * mt)
          for (Index coff = base + voff; coff < base + mt; coff += 2 * mc)
            for (Index i0 = coff; i0 < coff + mc; i0 += 2)
              pair_update(a + 2 * i0, a + 2 * (i0 + mt), u00, u01, u10, u11);
      } else {
        // control == 0: this half-space is every other element, stride-2 —
        // no contiguous runs to vectorize. Scalar formulas in this TU.
        const Complex w00 = u(0, 0), w01 = u(0, 1);
        const Complex w10 = u(1, 0), w11 = u(1, 1);
        for (Index base = 0; base < n; base += 2 * mt)
          for (Index i0 = base + voff; i0 < base + mt; i0 += 2) {
            const Index i1 = i0 + mt;
            const Complex a0 = amps[i0];
            const Complex a1 = amps[i1];
            amps[i0] =
                Complex{w00.real() * a0.real() - w00.imag() * a0.imag() +
                            (w01.real() * a1.real() - w01.imag() * a1.imag()),
                        w00.real() * a0.imag() + w00.imag() * a0.real() +
                            (w01.real() * a1.imag() + w01.imag() * a1.real())};
            amps[i1] =
                Complex{w10.real() * a0.real() - w10.imag() * a0.imag() +
                            (w11.real() * a1.real() - w11.imag() * a1.imag()),
                        w10.real() * a0.imag() + w10.imag() * a0.real() +
                            (w11.real() * a1.imag() + w11.imag() * a1.real())};
          }
      }
    }
  }
}

void batched_apply_1q_avx2(Real* re, Real* im, Index dim, std::size_t lanes,
                           const Mat2& u, Index q) {
  const Index stride = Index{1} << q;
  const __m256d u00r = _mm256_set1_pd(u(0, 0).real());
  const __m256d u00i = _mm256_set1_pd(u(0, 0).imag());
  const __m256d u01r = _mm256_set1_pd(u(0, 1).real());
  const __m256d u01i = _mm256_set1_pd(u(0, 1).imag());
  const __m256d u10r = _mm256_set1_pd(u(1, 0).real());
  const __m256d u10i = _mm256_set1_pd(u(1, 0).imag());
  const __m256d u11r = _mm256_set1_pd(u(1, 1).real());
  const __m256d u11i = _mm256_set1_pd(u(1, 1).imag());
  const Complex u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  for (Index base = 0; base < dim; base += stride * 2)
    for (Index off = 0; off < stride; ++off) {
      const Index i0 = base + off;
      const Index i1 = i0 + stride;
      Real* r0 = re + i0 * lanes;
      Real* s0 = im + i0 * lanes;
      Real* r1 = re + i1 * lanes;
      Real* s1 = im + i1 * lanes;
      std::size_t l = 0;
      for (; l + 4 <= lanes; l += 4) {
        const __m256d vr0 = _mm256_loadu_pd(r0 + l);
        const __m256d vi0 = _mm256_loadu_pd(s0 + l);
        const __m256d vr1 = _mm256_loadu_pd(r1 + l);
        const __m256d vi1 = _mm256_loadu_pd(s1 + l);
        // new0 = cmul(u00, a0) + cmul(u01, a1), components separated:
        // pure mul/fma on full lanes — no shuffles at all in SoA form.
        _mm256_storeu_pd(
            r0 + l,
            _mm256_add_pd(_mm256_fnmadd_pd(u00i, vi0, _mm256_mul_pd(u00r, vr0)),
                          _mm256_fnmadd_pd(u01i, vi1, _mm256_mul_pd(u01r, vr1))));
        _mm256_storeu_pd(
            s0 + l,
            _mm256_add_pd(_mm256_fmadd_pd(u00i, vr0, _mm256_mul_pd(u00r, vi0)),
                          _mm256_fmadd_pd(u01i, vr1, _mm256_mul_pd(u01r, vi1))));
        _mm256_storeu_pd(
            r1 + l,
            _mm256_add_pd(_mm256_fnmadd_pd(u10i, vi0, _mm256_mul_pd(u10r, vr0)),
                          _mm256_fnmadd_pd(u11i, vi1, _mm256_mul_pd(u11r, vr1))));
        _mm256_storeu_pd(
            s1 + l,
            _mm256_add_pd(_mm256_fmadd_pd(u10i, vr0, _mm256_mul_pd(u10r, vi0)),
                          _mm256_fmadd_pd(u11i, vr1, _mm256_mul_pd(u11r, vi1))));
      }
      for (; l < lanes; ++l) {
        const Real ar = r0[l], ai = s0[l], br = r1[l], bi = s1[l];
        r0[l] = (u00.real() * ar - u00.imag() * ai) +
                (u01.real() * br - u01.imag() * bi);
        s0[l] = (u00.real() * ai + u00.imag() * ar) +
                (u01.real() * bi + u01.imag() * br);
        r1[l] = (u10.real() * ar - u10.imag() * ai) +
                (u11.real() * br - u11.imag() * bi);
        s1[l] = (u10.real() * ai + u10.imag() * ar) +
                (u11.real() * bi + u11.imag() * br);
      }
    }
}

}  // namespace qugeo::qsim

#else  // !QUGEO_WITH_AVX2_KERNELS

namespace qugeo::qsim {

namespace {
[[noreturn]] void no_avx2() {
  // Unreachable through normal dispatch: simd::active_level() can only
  // report kAvx2 when this TU was compiled with the real kernels.
  throw std::logic_error("AVX2 kernels not compiled into this binary");
}
}  // namespace

void apply_1q_avx2(Complex*, Index, const Mat2&, Index) { no_avx2(); }
void apply_controlled_1q_avx2(Complex*, Index, const Mat2&, Index, Index) {
  no_avx2();
}
void apply_matrix2q_avx2(Complex*, Index, const Mat4&, Index, Index) {
  no_avx2();
}
void apply_block_diag_2q_avx2(Complex*, Index, const Mat2&, const Mat2&, Index,
                              Index) {
  no_avx2();
}
void batched_apply_1q_avx2(Real*, Real*, Index, std::size_t, const Mat2&,
                           Index) {
  no_avx2();
}

}  // namespace qugeo::qsim

#endif  // QUGEO_WITH_AVX2_KERNELS
