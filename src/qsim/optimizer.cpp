#include "qsim/optimizer.h"

#include <cmath>
#include <optional>

namespace qugeo::qsim {
namespace {

bool is_self_inverse(GateKind kind) {
  switch (kind) {
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kSWAP:
      return true;
    case GateKind::kI:  // identity pairs are dropped earlier, not here
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kPhase:
    case GateKind::kU3:
    case GateKind::kCRY:
    case GateKind::kCU3:
    case GateKind::kFused2Q:     // payload-dependent: never assume
    case GateKind::kFusedCtl2Q:
      return false;
  }
  return false;
}

bool is_literal_rotation(const Op& op) {
  switch (op.kind) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kPhase:
      return op.param_ids[0] == kLiteralParam;
    case GateKind::kI:
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kU3:  // 3-parameter: no single identity-angle test
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kCRY:
    case GateKind::kCU3:
    case GateKind::kSWAP:
    case GateKind::kFused2Q:
    case GateKind::kFusedCtl2Q:
      return false;
  }
  return false;
}

bool same_operands(const Op& a, const Op& b) {
  const int nq = gate_qubit_count(a.kind);
  if (a.kind == GateKind::kSWAP && b.kind == GateKind::kSWAP) {
    return (a.qubits[0] == b.qubits[0] && a.qubits[1] == b.qubits[1]) ||
           (a.qubits[0] == b.qubits[1] && a.qubits[1] == b.qubits[0]);
  }
  if (a.qubits[0] != b.qubits[0]) return false;
  return nq == 1 || a.qubits[1] == b.qubits[1];
}

bool touches_qubit(const Op& op, Index q) {
  if (op.qubits[0] == q) return true;
  return gate_qubit_count(op.kind) == 2 && op.qubits[1] == q;
}

bool ops_commute_trivially(const Op& a, const Op& b) {
  // Conservative: ops on disjoint qubit sets commute.
  if (touches_qubit(b, a.qubits[0])) return false;
  if (gate_qubit_count(a.kind) == 2 && touches_qubit(b, a.qubits[1]))
    return false;
  return true;
}

/// Angle normalized to (-2pi, 2pi]; rotations have period 4pi in SU(2) but
/// global phase is irrelevant for RX/RY, and we only drop exact multiples
/// of 4pi (plus exact 0) to stay safe for RZ/Phase.
bool is_identity_angle(GateKind kind, Real angle, Real eps) {
  const Real period = kind == GateKind::kPhase ? 2 * kPi : 4 * kPi;
  const Real r = std::remainder(angle, period);
  return std::abs(r) <= eps;
}

/// Re-emit one surviving op into `result` through the public builder API.
/// `source` resolves dense-matrix references (kFused2Q side table).
void emit_op(Circuit& result, const Op& op, const Circuit& source) {
  const bool trainable = op.param_ids[0] != kLiteralParam;
  switch (op.kind) {
    case GateKind::kI: break;
    case GateKind::kX: result.x(op.qubits[0]); break;
    case GateKind::kY: result.y(op.qubits[0]); break;
    case GateKind::kZ: result.z(op.qubits[0]); break;
    case GateKind::kH: result.h(op.qubits[0]); break;
    case GateKind::kS: result.s(op.qubits[0]); break;
    case GateKind::kSdg: result.sdg(op.qubits[0]); break;
    case GateKind::kT: result.t(op.qubits[0]); break;
    case GateKind::kTdg: result.tdg(op.qubits[0]); break;
    case GateKind::kRX:
      trainable ? result.rx(op.qubits[0], ParamRef{op.param_ids[0]})
                : result.rx(op.qubits[0], op.literals[0]);
      break;
    case GateKind::kRY:
      trainable ? result.ry(op.qubits[0], ParamRef{op.param_ids[0]})
                : result.ry(op.qubits[0], op.literals[0]);
      break;
    case GateKind::kRZ:
      trainable ? result.rz(op.qubits[0], ParamRef{op.param_ids[0]})
                : result.rz(op.qubits[0], op.literals[0]);
      break;
    case GateKind::kPhase:
      result.phase(op.qubits[0], op.literals[0]);
      break;
    case GateKind::kU3:
      trainable ? result.u3(op.qubits[0], ParamRef{op.param_ids[0]})
                : result.u3(op.qubits[0], op.literals[0], op.literals[1],
                            op.literals[2]);
      break;
    case GateKind::kCX: result.cx(op.qubits[0], op.qubits[1]); break;
    case GateKind::kCZ: result.cz(op.qubits[0], op.qubits[1]); break;
    case GateKind::kCRY:
      trainable ? result.cry(op.qubits[0], op.qubits[1], ParamRef{op.param_ids[0]})
                : result.cry(op.qubits[0], op.qubits[1], op.literals[0]);
      break;
    case GateKind::kCU3:
      trainable ? result.cu3(op.qubits[0], op.qubits[1], ParamRef{op.param_ids[0]})
                : result.cu3(op.qubits[0], op.qubits[1], op.literals[0],
                             op.literals[1], op.literals[2]);
      break;
    case GateKind::kSWAP: result.swap(op.qubits[0], op.qubits[1]); break;
    case GateKind::kFused2Q:
      result.fused2q(op.qubits[0], op.qubits[1], source.matrix(op));
      break;
    case GateKind::kFusedCtl2Q:
      result.fused_ctl2q(op.qubits[0], op.qubits[1], source.matrix(op));
      break;
  }
}

/// One pass; returns true if anything changed.
bool pass(std::vector<std::optional<Op>>& ops, const OptimizeOptions& opt,
          OptimizeStats& stats) {
  bool changed = false;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i]) continue;
    Op& a = *ops[i];

    if (opt.drop_identity_rotations && is_literal_rotation(a) &&
        is_identity_angle(a.kind, a.literals[0], opt.angle_epsilon)) {
      ops[i].reset();
      ++stats.dropped_identities;
      changed = true;
      continue;
    }

    // Find the next op that shares a qubit with `a`, skipping commuting ops.
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      if (!ops[j]) continue;
      const Op& b = *ops[j];
      if (ops_commute_trivially(a, b)) continue;

      if (opt.cancel_self_inverse && is_self_inverse(a.kind) &&
          a.kind == b.kind && same_operands(a, b)) {
        ops[i].reset();
        ops[j].reset();
        ++stats.cancelled_pairs;
        changed = true;
      } else if (opt.fuse_rotations && is_literal_rotation(a) &&
                 a.kind == b.kind && is_literal_rotation(b) &&
                 same_operands(a, b)) {
        Op fused = a;
        fused.literals[0] = a.literals[0] + b.literals[0];
        ops[i] = fused;
        ops[j].reset();
        ++stats.fused_rotations;
        changed = true;
      }
      break;  // b blocks further lookahead whether or not we rewrote
    }
  }
  return changed;
}

}  // namespace

Circuit optimize_circuit(const Circuit& circuit, const OptimizeOptions& options,
                         OptimizeStats* stats_out) {
  OptimizeStats stats;
  stats.ops_before = circuit.num_ops();

  std::vector<std::optional<Op>> ops(circuit.ops().begin(), circuit.ops().end());
  while (pass(ops, options, stats)) {
  }

  // Rebuild through the public API: preallocate the identical parameter
  // table (ids are preserved verbatim), then re-emit surviving ops.
  Circuit result(circuit.num_qubits());
  if (circuit.num_params() > 0)
    (void)result.new_params(static_cast<std::uint32_t>(circuit.num_params()));
  for (const auto& maybe_op : ops)
    if (maybe_op) emit_op(result, *maybe_op, circuit);

  stats.ops_after = result.num_ops();
  if (stats_out) *stats_out = stats;
  return result;
}

namespace {

Mat2 matmul(const Mat2& a, const Mat2& b) {
  Mat2 r;
  r(0, 0) = a(0, 0) * b(0, 0) + a(0, 1) * b(1, 0);
  r(0, 1) = a(0, 0) * b(0, 1) + a(0, 1) * b(1, 1);
  r(1, 0) = a(1, 0) * b(0, 0) + a(1, 1) * b(1, 0);
  r(1, 1) = a(1, 0) * b(0, 1) + a(1, 1) * b(1, 1);
  return r;
}

/// True for a literal (non-trainable) single-qubit op that participates in
/// run fusion. SWAP and controlled gates are two-qubit; trainable angles
/// are unknown at fusion time.
bool is_fusable_1q(const Op& op) {
  if (gate_qubit_count(op.kind) != 1) return false;
  return op.param_ids[0] == kLiteralParam && op.param_ids[1] == kLiteralParam &&
         op.param_ids[2] == kLiteralParam;
}

/// A run being accumulated on one qubit.
struct PendingRun {
  Mat2 product{};          ///< U_k ... U_1 (later gates multiply on the left)
  std::size_t count = 0;
  std::size_t first_pos = 0;  ///< index of the run's first op in the stream
};

/// The cheapest single-gate representation of a 2x2 unitary `m` on qubit
/// `q`: a Phase op when exactly diagonal (the executor routes it to the
/// phase-only kernel), otherwise a literal U3. The representative drops a
/// global phase, which cannot affect probabilities or expectations.
Op one_qubit_op_from(const Mat2& m, Index q) {
  Op op;
  op.qubits = {q, q};
  if (m(0, 1) == Complex{0, 0} && m(1, 0) == Complex{0, 0}) {
    // Diagonal product: diag(d0, d1) = d0 * diag(1, d1/d0) -> Phase gate.
    op.kind = GateKind::kPhase;
    op.literals[0] = std::arg(m(1, 1) / m(0, 0));
    return op;
  }
  op.kind = GateKind::kU3;
  if (m(0, 0) == Complex{0, 0} && m(1, 1) == Complex{0, 0}) {
    // Anti-diagonal product: u3(pi, phi, lambda) = [[0, -e^il], [e^ip, 0]].
    op.literals[0] = kPi;
    op.literals[1] = std::arg(m(1, 0));
    op.literals[2] = std::arg(-m(0, 1));
    return op;
  }
  // General unitary: m = e^{i alpha} u3(theta, phi, lambda) with
  // alpha = arg(m00); theta from the column norms, phi/lambda from the
  // off-diagonal arguments relative to alpha.
  const Real alpha = std::arg(m(0, 0));
  op.literals[0] = 2 * std::atan2(std::abs(m(1, 0)), std::abs(m(0, 0)));
  op.literals[1] = std::arg(m(1, 0)) - alpha;
  op.literals[2] = std::arg(-m(0, 1)) - alpha;
  return op;
}

/// one_qubit_op_from plus the 1q pass's run accounting.
Op fused_op(const Mat2& m, Index q, FuseStats& stats) {
  const Op op = one_qubit_op_from(m, q);
  if (op.kind == GateKind::kPhase)
    ++stats.merged_diagonal_runs;
  else
    ++stats.fused_runs;
  return op;
}

}  // namespace

bool has_fusable_runs(const Circuit& circuit) {
  // Mirrors fuse_gate_runs' run tracking: a run survives ops on other
  // qubits and ends at any non-fusable op touching its qubit.
  std::vector<unsigned char> open(circuit.num_qubits(), 0);
  for (const Op& op : circuit.ops()) {
    if (is_fusable_1q(op)) {
      if (open[op.qubits[0]]) return true;
      open[op.qubits[0]] = 1;
    } else {
      open[op.qubits[0]] = 0;
      if (gate_qubit_count(op.kind) == 2) open[op.qubits[1]] = 0;
    }
  }
  return false;
}

Circuit fuse_gate_runs(const Circuit& circuit, FuseStats* stats_out) {
  FuseStats stats;
  stats.ops_before = circuit.num_ops();

  // Nothing to fuse (e.g. the all-trainable ansatz): hand back a verbatim
  // copy without staging the op stream.
  if (!has_fusable_runs(circuit)) {
    stats.ops_after = circuit.num_ops();
    if (stats_out) *stats_out = stats;
    return circuit;
  }

  const auto ops = circuit.ops();
  // Slot i holds what the rewritten stream emits at position i. A fused run
  // lands at its first op's position; ops between run members act on other
  // qubits, so they commute with the run and the placement is exact.
  std::vector<std::optional<Op>> out(ops.size());
  std::vector<PendingRun> pending(circuit.num_qubits());

  auto flush = [&](Index q) {
    PendingRun& run = pending[q];
    if (run.count == 0) return;
    if (run.count == 1) {
      out[run.first_pos] = ops[run.first_pos];  // untouched single op
    } else {
      out[run.first_pos] = fused_op(run.product, q, stats);
    }
    run.count = 0;
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    if (is_fusable_1q(op)) {
      const Index q = op.qubits[0];
      PendingRun& run = pending[q];
      const Mat2 u = gate_matrix(op.kind, Circuit::resolve_params(op, {}));
      if (run.count == 0) {
        run.product = u;
        run.first_pos = i;
        run.count = 1;
      } else {
        run.product = matmul(u, run.product);
        ++run.count;
      }
      continue;
    }
    // Any other op ends the run on every qubit it touches.
    flush(op.qubits[0]);
    if (gate_qubit_count(op.kind) == 2) flush(op.qubits[1]);
    out[i] = op;
  }
  for (Index q = 0; q < circuit.num_qubits(); ++q) flush(q);

  Circuit result(circuit.num_qubits());
  if (circuit.num_params() > 0)
    (void)result.new_params(static_cast<std::uint32_t>(circuit.num_params()));
  for (const auto& maybe_op : out)
    if (maybe_op) emit_op(result, *maybe_op, circuit);

  stats.ops_after = result.num_ops();
  if (stats_out) *stats_out = stats;
  return result;
}

// ------------------------------------------------------- two-qubit fusion --

namespace {

/// Literal (non-trainable) two-qubit op eligible for pair-run fusion.
bool is_fusable_2q(const Op& op) {
  if (gate_qubit_count(op.kind) != 2) return false;
  return op.param_ids[0] == kLiteralParam && op.param_ids[1] == kLiteralParam &&
         op.param_ids[2] == kLiteralParam;
}

Mat4 identity4() {
  Mat4 m;
  for (int i = 0; i < 4; ++i) m(i, i) = Complex{1, 0};
  return m;
}

/// Embed a 1-qubit matrix on one bit of the 2-bit sub-basis:
/// bit == 0 -> I (x) u (sub-index bit 0 transforms), bit == 1 -> u (x) I.
Mat4 expand_1q(const Mat2& u, int bit) {
  Mat4 m;
  for (int s = 0; s < 4; ++s) {
    const int other = (s >> (1 - bit)) & 1;
    const int b = (s >> bit) & 1;
    for (int bp = 0; bp < 2; ++bp) {
      const int sp = bit == 0 ? (other << 1) | bp : (bp << 1) | other;
      m(sp, s) = u(bp, b);
    }
  }
  return m;
}

/// The 4x4 matrix of a literal two-qubit op in the sub-basis where bit 0 is
/// qubit `qa` and bit 1 is qubit `qb` ({op.qubits} must equal {qa, qb} as
/// an unordered pair). `source` resolves kFused2Q matrix references.
Mat4 two_qubit_matrix(const Op& op, Index qa, Index qb, const Circuit& source) {
  (void)qb;
  if (op.kind == GateKind::kSWAP) {
    Mat4 m;
    m(0, 0) = m(3, 3) = Complex{1, 0};
    m(1, 2) = m(2, 1) = Complex{1, 0};
    return m;
  }
  if (op.kind == GateKind::kFused2Q || op.kind == GateKind::kFusedCtl2Q) {
    const Mat4& stored = source.matrix(op);
    if (op.qubits[0] == qa) return stored;
    // Stored with the operands swapped: conjugate by the bit-swap
    // permutation P (P = P^-1), i.e. m'(s', s) = m(swap(s'), swap(s)).
    auto bitswap = [](int s) { return ((s & 1) << 1) | ((s >> 1) & 1); };
    Mat4 m;
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < 4; ++c) m(r, c) = stored(bitswap(r), bitswap(c));
    return m;
  }
  // Controlled 1q block: identity on the control=|0> half, the 2x2 block
  // on the target bit of the control=|1> half.
  const Mat2 u = gate_matrix(op.kind, op.literals);
  const int cbit = op.qubits[0] == qa ? 0 : 1;
  const int tbit = 1 - cbit;
  Mat4 m;
  for (int s = 0; s < 4; ++s) {
    if (((s >> cbit) & 1) == 0) {
      m(s, s) = Complex{1, 0};
      continue;
    }
    const int t = (s >> tbit) & 1;
    for (int tp = 0; tp < 2; ++tp) {
      const int sp = (s & ~(1 << tbit)) | (tp << tbit);
      m(sp, s) = u(tp, t);
    }
  }
  return m;
}

constexpr Index kNoPair = static_cast<Index>(-1);

}  // namespace

bool has_fusable_two_qubit_runs(const Circuit& circuit) {
  // Mirrors fuse_two_qubit_runs' run tracking: partner[q] is the other
  // qubit of q's open pair run; open1q[q] marks a buffered literal 1q gate
  // that the next same-pair two-qubit gate would absorb.
  std::vector<Index> partner(circuit.num_qubits(), kNoPair);
  std::vector<unsigned char> open1q(circuit.num_qubits(), 0);
  auto close_pair = [&](Index q) {
    if (partner[q] == kNoPair) return;
    partner[partner[q]] = kNoPair;
    partner[q] = kNoPair;
  };
  for (const Op& op : circuit.ops()) {
    if (is_fusable_1q(op)) {
      open1q[op.qubits[0]] = 1;
      continue;
    }
    if (is_fusable_2q(op)) {
      const Index a = op.qubits[0], b = op.qubits[1];
      if (partner[a] == b) return true;          // same-pair second gate
      if (open1q[a] || open1q[b]) return true;   // pending 1q would absorb
      close_pair(a);
      close_pair(b);
      partner[a] = b;
      partner[b] = a;
      continue;
    }
    open1q[op.qubits[0]] = 0;
    close_pair(op.qubits[0]);
    if (gate_qubit_count(op.kind) == 2) {
      open1q[op.qubits[1]] = 0;
      close_pair(op.qubits[1]);
    }
  }
  return false;
}

namespace {

const Mat2 kIdentity2{{Complex{1, 0}, Complex{0, 0}, Complex{0, 0}, Complex{1, 0}}};

/// One candidate factorization of a pair run's product: P = D * (C (x) I)
/// with C a 2x2 on `control` and D block-diagonal in it (u0 on the target
/// when control=|0>, u1 when control=|1>). Maintained EXACTLY alongside
/// the dense product — no numeric structure sniffing — by absorbing each
/// op into whichever factor it belongs to; ops that cannot keep the form
/// (SWAP, a reversed-control gate, a control-side 1q after D started) kill
/// the candidate and the run falls back to the dense kFused2Q.
struct CtlCandidate {
  Index control = 0;
  Mat2 c = kIdentity2;
  Mat2 u0 = kIdentity2;
  Mat2 u1 = kIdentity2;
  bool d_touched = false;  ///< D != I: control-side 1q gates can no longer commute in
  bool alive = true;

  void absorb_1q(const Mat2& u, Index q) {
    if (!alive) return;
    if (q == control) {
      if (d_touched)
        alive = false;
      else
        c = matmul(u, c);
      return;
    }
    u0 = matmul(u, u0);
    u1 = matmul(u, u1);
    d_touched = true;
  }

  void absorb_2q(const Op& op, const Circuit& source) {
    if (!alive) return;
    switch (op.kind) {
      case GateKind::kCZ:
        // Symmetric: block-diagonal with respect to EITHER qubit.
        u1 = matmul(gate_matrix(GateKind::kZ, {}), u1);
        d_touched = true;
        return;
      case GateKind::kCX:
      case GateKind::kCRY:
      case GateKind::kCU3:
        if (op.qubits[0] != control) {
          alive = false;  // controlled on the target side: mixes our control
          return;
        }
        u1 = matmul(gate_matrix(op.kind, op.literals), u1);
        d_touched = true;
        return;
      case GateKind::kFusedCtl2Q: {
        if (op.qubits[0] != control) {
          alive = false;
          return;
        }
        const Mat4& m = source.matrix(op);
        Mat2 b0, b1;
        for (int tp = 0; tp < 2; ++tp)
          for (int t = 0; t < 2; ++t) {
            b0(tp, t) = m(tp * 2, t * 2);
            b1(tp, t) = m(tp * 2 + 1, t * 2 + 1);
          }
        u0 = matmul(b0, u0);
        u1 = matmul(b1, u1);
        d_touched = true;
        return;
      }
      case GateKind::kSWAP:     // permutes the pair: no block-diagonal form
      case GateKind::kFused2Q:  // dense payload: not control-factorizable
      case GateKind::kI:        // 1q kinds: absorb_1q territory, never here
      case GateKind::kX:
      case GateKind::kY:
      case GateKind::kZ:
      case GateKind::kH:
      case GateKind::kS:
      case GateKind::kSdg:
      case GateKind::kT:
      case GateKind::kTdg:
      case GateKind::kRX:
      case GateKind::kRY:
      case GateKind::kRZ:
      case GateKind::kPhase:
      case GateKind::kU3:
        alive = false;
        return;
    }
  }
};

bool is_identity2(const Mat2& m) { return m.m == kIdentity2.m; }

/// product == e^{i theta} * I exactly (products of exact zeros stay zero in
/// floating point, so self-inverse runs like CX CX or SWAP SWAP hit this).
bool is_scalar_identity4(const Mat4& m) {
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      if (r != c && m(r, c) != Complex{0, 0}) return false;
  return m(1, 1) == m(0, 0) && m(2, 2) == m(0, 0) && m(3, 3) == m(0, 0);
}

/// Assemble the block-diagonal Mat4 of a kFusedCtl2Q op (bit 0 = control).
Mat4 ctl_matrix(const Mat2& u0, const Mat2& u1) {
  Mat4 m;
  for (int tp = 0; tp < 2; ++tp)
    for (int t = 0; t < 2; ++t) {
      m(tp * 2, t * 2) = u0(tp, t);
      m(tp * 2 + 1, t * 2 + 1) = u1(tp, t);
    }
  return m;
}

}  // namespace

Circuit fuse_two_qubit_runs(const Circuit& circuit, Fuse2QStats* stats_out) {
  Fuse2QStats stats;
  stats.ops_before = circuit.num_ops();

  if (!has_fusable_two_qubit_runs(circuit)) {
    // Nothing to fuse (e.g. the all-trainable ansatz, or a stream the 1q
    // pass already exhausted): hand back a verbatim copy.
    stats.ops_after = circuit.num_ops();
    if (stats_out) *stats_out = stats;
    return circuit;
  }

  const auto ops = circuit.ops();

  // Staged output: slot i holds what the rewritten stream emits at position
  // i — the original op, or a run's replacement (placed at the run's
  // opening gate; every op between a run's constituents either acts on
  // other qubits or is itself absorbed, so the placement is exact).
  struct Slot {
    enum class Tag : std::uint8_t { kEmpty, kOriginal, kRewrite };
    Tag tag = Tag::kEmpty;
    // kRewrite payload: optional control-factor 1q gate, then one of
    // {nothing, a 1q target gate, a kFusedCtl2Q, a dense kFused2Q}.
    enum class Body : std::uint8_t { kNone, kOneQ, kCtl, kDense };
    Body body = Body::kNone;
    bool has_c = false;
    Mat2 c_mat{};
    Index c_qubit = 0;
    Mat2 t_mat{};   // kOneQ
    Index qa = 0, qb = 0;  // kCtl: (control, target); kDense: bit0 = qa
    Mat4 m{};
  };
  std::vector<Slot> out(ops.size());

  struct PairRun {
    Index qa = 0, qb = 0;  ///< dense sub-basis: bit 0 = qa, bit 1 = qb
    Mat4 product{};
    CtlCandidate cand_a, cand_b;  ///< control = qa resp. qb
    std::size_t ops_absorbed = 0;
    std::size_t first_pos = 0;
  };
  std::vector<PairRun> runs;  // grows monotonically; closed entries stay
  std::vector<std::size_t> run_of(circuit.num_qubits(), SIZE_MAX);
  // Literal 1q gates buffered per qubit, by position; absorbed into a pair
  // run when a same-pair two-qubit gate follows, re-emitted verbatim
  // otherwise (this pass never fuses 1q runs — fuse_gate_runs owns that).
  std::vector<std::vector<std::size_t>> pending1q(circuit.num_qubits());

  auto absorb_pendings = [&](PairRun& run) {
    // The two per-qubit pending lists act on disjoint qubits, so they
    // commute: the dense product takes them in either order, and each
    // candidate absorbs its CONTROL-side list first so target-side gates
    // cannot spuriously block a control factor that commutes past them.
    auto mats_of = [&](Index q) {
      std::vector<Mat2> v;
      v.reserve(pending1q[q].size());
      for (const std::size_t pos : pending1q[q])
        v.push_back(gate_matrix(ops[pos].kind, ops[pos].literals));
      return v;
    };
    const std::vector<Mat2> ua = mats_of(run.qa);
    const std::vector<Mat2> ub = mats_of(run.qb);
    for (const Mat2& u : ua) run.product = matmul(expand_1q(u, 0), run.product);
    for (const Mat2& u : ub) run.product = matmul(expand_1q(u, 1), run.product);
    for (const Mat2& u : ua) run.cand_a.absorb_1q(u, run.qa);
    for (const Mat2& u : ub) run.cand_a.absorb_1q(u, run.qb);
    for (const Mat2& u : ub) run.cand_b.absorb_1q(u, run.qb);
    for (const Mat2& u : ua) run.cand_b.absorb_1q(u, run.qa);
    run.ops_absorbed += ua.size() + ub.size();
    pending1q[run.qa].clear();
    pending1q[run.qb].clear();
  };
  auto absorb_gate = [&](PairRun& run, const Op& op) {
    run.product =
        matmul(two_qubit_matrix(op, run.qa, run.qb, circuit), run.product);
    run.cand_a.absorb_2q(op, circuit);
    run.cand_b.absorb_2q(op, circuit);
    ++run.ops_absorbed;
  };
  auto flush_pending = [&](Index q) {
    for (const std::size_t pos : pending1q[q])
      out[pos].tag = Slot::Tag::kOriginal;
    pending1q[q].clear();
  };
  auto flush_run = [&](Index q) {
    const std::size_t r = run_of[q];
    if (r == SIZE_MAX) return;
    PairRun& run = runs[r];
    run_of[run.qa] = SIZE_MAX;
    run_of[run.qb] = SIZE_MAX;
    Slot& slot = out[run.first_pos];
    if (run.ops_absorbed == 1) {
      slot.tag = Slot::Tag::kOriginal;
      return;
    }
    slot.tag = Slot::Tag::kRewrite;
    ++stats.fused_runs;
    stats.absorbed_ops += run.ops_absorbed;
    // Prefer an alive candidate without a control factor (one op instead
    // of two), then cand_a.
    const CtlCandidate* cand = nullptr;
    for (const CtlCandidate* c2 : {&run.cand_a, &run.cand_b}) {
      if (!c2->alive) continue;
      if (cand == nullptr ||
          (is_identity2(c2->c) && !is_identity2(cand->c)))
        cand = c2;
    }
    if (cand != nullptr) {
      const Index target = cand->control == run.qa ? run.qb : run.qa;
      slot.has_c = !is_identity2(cand->c);
      slot.c_mat = cand->c;
      slot.c_qubit = cand->control;
      if (cand->u0.m == cand->u1.m) {
        // D = I (x) U: control-independent, so at most two plain 1q gates.
        if (is_identity2(cand->u0)) {
          slot.body = Slot::Body::kNone;  // whole run is C (or identity)
        } else {
          slot.body = Slot::Body::kOneQ;
          slot.t_mat = cand->u0;
          slot.qa = target;
        }
      } else {
        slot.body = Slot::Body::kCtl;
        slot.qa = cand->control;
        slot.qb = target;
        slot.m = ctl_matrix(cand->u0, cand->u1);
      }
      if (slot.body == Slot::Body::kCtl)
        ++stats.ctl_runs;
      else
        ++stats.collapsed_runs;
      return;
    }
    if (is_scalar_identity4(run.product)) {
      // Self-inverse run (e.g. SWAP SWAP): vanishes up to global phase.
      slot.body = Slot::Body::kNone;
      ++stats.collapsed_runs;
      return;
    }
    slot.body = Slot::Body::kDense;
    slot.qa = run.qa;
    slot.qb = run.qb;
    slot.m = run.product;
    ++stats.dense_runs;
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    if (is_fusable_1q(op)) {
      pending1q[op.qubits[0]].push_back(i);
      continue;
    }
    if (is_fusable_2q(op)) {
      const Index a = op.qubits[0], b = op.qubits[1];
      const std::size_t ra = run_of[a];
      if (ra != SIZE_MAX && ra == run_of[b]) {
        // Same unordered pair: fold buffered 1q gates (they precede this
        // gate and commute with everything emitted in between), then the
        // gate itself, later factors multiplying on the left.
        PairRun& run = runs[ra];
        absorb_pendings(run);
        absorb_gate(run, op);
        continue;
      }
      // Overlapping-but-different pairs end the old runs; a fresh run
      // opens here and claims any 1q gates buffered on its qubits.
      flush_run(a);
      flush_run(b);
      PairRun run;
      run.qa = a;
      run.qb = b;
      run.product = identity4();
      run.cand_a.control = a;
      run.cand_b.control = b;
      run.first_pos = i;
      absorb_pendings(run);
      absorb_gate(run, op);
      runs.push_back(run);
      run_of[a] = run_of[b] = runs.size() - 1;
      continue;
    }
    // Trainable or otherwise non-fusable: ends buffers and runs on every
    // qubit it touches, passes through verbatim.
    flush_pending(op.qubits[0]);
    flush_run(op.qubits[0]);
    if (gate_qubit_count(op.kind) == 2) {
      flush_pending(op.qubits[1]);
      flush_run(op.qubits[1]);
    }
    out[i].tag = Slot::Tag::kOriginal;
  }
  for (Index q = 0; q < circuit.num_qubits(); ++q) {
    flush_pending(q);
    flush_run(q);
  }

  Circuit result(circuit.num_qubits());
  if (circuit.num_params() > 0)
    (void)result.new_params(static_cast<std::uint32_t>(circuit.num_params()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Slot& slot = out[i];
    switch (slot.tag) {
      case Slot::Tag::kEmpty:
        break;
      case Slot::Tag::kOriginal:
        emit_op(result, ops[i], circuit);
        break;
      case Slot::Tag::kRewrite:
        // C factor first: P = D * (C (x) I) applies C before D.
        if (slot.has_c)
          emit_op(result, one_qubit_op_from(slot.c_mat, slot.c_qubit), circuit);
        switch (slot.body) {
          case Slot::Body::kNone:
            break;
          case Slot::Body::kOneQ:
            emit_op(result, one_qubit_op_from(slot.t_mat, slot.qa), circuit);
            break;
          case Slot::Body::kCtl:
            result.fused_ctl2q(slot.qa, slot.qb, slot.m);
            break;
          case Slot::Body::kDense:
            result.fused2q(slot.qa, slot.qb, slot.m);
            break;
        }
        break;
    }
  }

  stats.ops_after = result.num_ops();
  if (stats_out) *stats_out = stats;
  return result;
}

Circuit bind_parameters(const Circuit& circuit, std::span<const Real> params) {
  if (params.size() < circuit.num_params())
    throw std::invalid_argument("bind_parameters: parameter table too small");
  Circuit result(circuit.num_qubits());
  for (Op op : circuit.ops()) {
    op.literals = Circuit::resolve_params(op, params);
    op.param_ids = {kLiteralParam, kLiteralParam, kLiteralParam};
    emit_op(result, op, circuit);
  }
  return result;
}

Circuit canonicalize_for_backend(const Circuit& circuit) {
  return fuse_two_qubit_runs(fuse_gate_runs(circuit));
}

}  // namespace qugeo::qsim
