#include "qsim/optimizer.h"

#include <cmath>
#include <optional>

namespace qugeo::qsim {
namespace {

bool is_self_inverse(GateKind kind) {
  switch (kind) {
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kSWAP:
      return true;
    default:
      return false;
  }
}

bool is_literal_rotation(const Op& op) {
  switch (op.kind) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kPhase:
      return op.param_ids[0] == kLiteralParam;
    default:
      return false;
  }
}

bool same_operands(const Op& a, const Op& b) {
  const int nq = gate_qubit_count(a.kind);
  if (a.kind == GateKind::kSWAP && b.kind == GateKind::kSWAP) {
    return (a.qubits[0] == b.qubits[0] && a.qubits[1] == b.qubits[1]) ||
           (a.qubits[0] == b.qubits[1] && a.qubits[1] == b.qubits[0]);
  }
  if (a.qubits[0] != b.qubits[0]) return false;
  return nq == 1 || a.qubits[1] == b.qubits[1];
}

bool touches_qubit(const Op& op, Index q) {
  if (op.qubits[0] == q) return true;
  return gate_qubit_count(op.kind) == 2 && op.qubits[1] == q;
}

bool ops_commute_trivially(const Op& a, const Op& b) {
  // Conservative: ops on disjoint qubit sets commute.
  if (touches_qubit(b, a.qubits[0])) return false;
  if (gate_qubit_count(a.kind) == 2 && touches_qubit(b, a.qubits[1]))
    return false;
  return true;
}

/// Angle normalized to (-2pi, 2pi]; rotations have period 4pi in SU(2) but
/// global phase is irrelevant for RX/RY, and we only drop exact multiples
/// of 4pi (plus exact 0) to stay safe for RZ/Phase.
bool is_identity_angle(GateKind kind, Real angle, Real eps) {
  const Real period = kind == GateKind::kPhase ? 2 * kPi : 4 * kPi;
  const Real r = std::remainder(angle, period);
  return std::abs(r) <= eps;
}

/// Re-emit one surviving op into `result` through the public builder API.
void emit_op(Circuit& result, const Op& op) {
  const bool trainable = op.param_ids[0] != kLiteralParam;
  switch (op.kind) {
    case GateKind::kI: break;
    case GateKind::kX: result.x(op.qubits[0]); break;
    case GateKind::kY: result.y(op.qubits[0]); break;
    case GateKind::kZ: result.z(op.qubits[0]); break;
    case GateKind::kH: result.h(op.qubits[0]); break;
    case GateKind::kS: result.s(op.qubits[0]); break;
    case GateKind::kSdg: result.sdg(op.qubits[0]); break;
    case GateKind::kT: result.t(op.qubits[0]); break;
    case GateKind::kTdg: result.tdg(op.qubits[0]); break;
    case GateKind::kRX:
      trainable ? result.rx(op.qubits[0], ParamRef{op.param_ids[0]})
                : result.rx(op.qubits[0], op.literals[0]);
      break;
    case GateKind::kRY:
      trainable ? result.ry(op.qubits[0], ParamRef{op.param_ids[0]})
                : result.ry(op.qubits[0], op.literals[0]);
      break;
    case GateKind::kRZ:
      trainable ? result.rz(op.qubits[0], ParamRef{op.param_ids[0]})
                : result.rz(op.qubits[0], op.literals[0]);
      break;
    case GateKind::kPhase:
      result.phase(op.qubits[0], op.literals[0]);
      break;
    case GateKind::kU3:
      trainable ? result.u3(op.qubits[0], ParamRef{op.param_ids[0]})
                : result.u3(op.qubits[0], op.literals[0], op.literals[1],
                            op.literals[2]);
      break;
    case GateKind::kCX: result.cx(op.qubits[0], op.qubits[1]); break;
    case GateKind::kCZ: result.cz(op.qubits[0], op.qubits[1]); break;
    case GateKind::kCRY:
      trainable ? result.cry(op.qubits[0], op.qubits[1], ParamRef{op.param_ids[0]})
                : result.cry(op.qubits[0], op.qubits[1], op.literals[0]);
      break;
    case GateKind::kCU3:
      trainable ? result.cu3(op.qubits[0], op.qubits[1], ParamRef{op.param_ids[0]})
                : result.cu3(op.qubits[0], op.qubits[1], op.literals[0],
                             op.literals[1], op.literals[2]);
      break;
    case GateKind::kSWAP: result.swap(op.qubits[0], op.qubits[1]); break;
  }
}

/// One pass; returns true if anything changed.
bool pass(std::vector<std::optional<Op>>& ops, const OptimizeOptions& opt,
          OptimizeStats& stats) {
  bool changed = false;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i]) continue;
    Op& a = *ops[i];

    if (opt.drop_identity_rotations && is_literal_rotation(a) &&
        is_identity_angle(a.kind, a.literals[0], opt.angle_epsilon)) {
      ops[i].reset();
      ++stats.dropped_identities;
      changed = true;
      continue;
    }

    // Find the next op that shares a qubit with `a`, skipping commuting ops.
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      if (!ops[j]) continue;
      const Op& b = *ops[j];
      if (ops_commute_trivially(a, b)) continue;

      if (opt.cancel_self_inverse && is_self_inverse(a.kind) &&
          a.kind == b.kind && same_operands(a, b)) {
        ops[i].reset();
        ops[j].reset();
        ++stats.cancelled_pairs;
        changed = true;
      } else if (opt.fuse_rotations && is_literal_rotation(a) &&
                 a.kind == b.kind && is_literal_rotation(b) &&
                 same_operands(a, b)) {
        Op fused = a;
        fused.literals[0] = a.literals[0] + b.literals[0];
        ops[i] = fused;
        ops[j].reset();
        ++stats.fused_rotations;
        changed = true;
      }
      break;  // b blocks further lookahead whether or not we rewrote
    }
  }
  return changed;
}

}  // namespace

Circuit optimize_circuit(const Circuit& circuit, const OptimizeOptions& options,
                         OptimizeStats* stats_out) {
  OptimizeStats stats;
  stats.ops_before = circuit.num_ops();

  std::vector<std::optional<Op>> ops(circuit.ops().begin(), circuit.ops().end());
  while (pass(ops, options, stats)) {
  }

  // Rebuild through the public API: preallocate the identical parameter
  // table (ids are preserved verbatim), then re-emit surviving ops.
  Circuit result(circuit.num_qubits());
  if (circuit.num_params() > 0)
    (void)result.new_params(static_cast<std::uint32_t>(circuit.num_params()));
  for (const auto& maybe_op : ops)
    if (maybe_op) emit_op(result, *maybe_op);

  stats.ops_after = result.num_ops();
  if (stats_out) *stats_out = stats;
  return result;
}

namespace {

Mat2 matmul(const Mat2& a, const Mat2& b) {
  Mat2 r;
  r(0, 0) = a(0, 0) * b(0, 0) + a(0, 1) * b(1, 0);
  r(0, 1) = a(0, 0) * b(0, 1) + a(0, 1) * b(1, 1);
  r(1, 0) = a(1, 0) * b(0, 0) + a(1, 1) * b(1, 0);
  r(1, 1) = a(1, 0) * b(0, 1) + a(1, 1) * b(1, 1);
  return r;
}

/// True for a literal (non-trainable) single-qubit op that participates in
/// run fusion. SWAP and controlled gates are two-qubit; trainable angles
/// are unknown at fusion time.
bool is_fusable_1q(const Op& op) {
  if (gate_qubit_count(op.kind) != 1) return false;
  return op.param_ids[0] == kLiteralParam && op.param_ids[1] == kLiteralParam &&
         op.param_ids[2] == kLiteralParam;
}

/// A run being accumulated on one qubit.
struct PendingRun {
  Mat2 product{};          ///< U_k ... U_1 (later gates multiply on the left)
  std::size_t count = 0;
  std::size_t first_pos = 0;  ///< index of the run's first op in the stream
};

/// Emit the fused replacement for a run of `count >= 2` gates whose product
/// is `m` (unitary): a single Phase when the product is exactly diagonal,
/// otherwise a single U3. The representative drops a global phase, which
/// cannot affect probabilities or expectations.
Op fused_op(const Mat2& m, Index q, FuseStats& stats) {
  Op op;
  op.qubits = {q, q};
  if (m(0, 1) == Complex{0, 0} && m(1, 0) == Complex{0, 0}) {
    // Diagonal product: diag(d0, d1) = d0 * diag(1, d1/d0) -> Phase gate,
    // which the executor routes to the phase-only kernel.
    op.kind = GateKind::kPhase;
    op.literals[0] = std::arg(m(1, 1) / m(0, 0));
    ++stats.merged_diagonal_runs;
    return op;
  }
  op.kind = GateKind::kU3;
  ++stats.fused_runs;
  if (m(0, 0) == Complex{0, 0} && m(1, 1) == Complex{0, 0}) {
    // Anti-diagonal product: u3(pi, phi, lambda) = [[0, -e^il], [e^ip, 0]].
    op.literals[0] = kPi;
    op.literals[1] = std::arg(m(1, 0));
    op.literals[2] = std::arg(-m(0, 1));
    return op;
  }
  // General unitary: m = e^{i alpha} u3(theta, phi, lambda) with
  // alpha = arg(m00); theta from the column norms, phi/lambda from the
  // off-diagonal arguments relative to alpha.
  const Real alpha = std::arg(m(0, 0));
  op.literals[0] = 2 * std::atan2(std::abs(m(1, 0)), std::abs(m(0, 0)));
  op.literals[1] = std::arg(m(1, 0)) - alpha;
  op.literals[2] = std::arg(-m(0, 1)) - alpha;
  return op;
}

}  // namespace

bool has_fusable_runs(const Circuit& circuit) {
  // Mirrors fuse_gate_runs' run tracking: a run survives ops on other
  // qubits and ends at any non-fusable op touching its qubit.
  std::vector<unsigned char> open(circuit.num_qubits(), 0);
  for (const Op& op : circuit.ops()) {
    if (is_fusable_1q(op)) {
      if (open[op.qubits[0]]) return true;
      open[op.qubits[0]] = 1;
    } else {
      open[op.qubits[0]] = 0;
      if (gate_qubit_count(op.kind) == 2) open[op.qubits[1]] = 0;
    }
  }
  return false;
}

Circuit fuse_gate_runs(const Circuit& circuit, FuseStats* stats_out) {
  FuseStats stats;
  stats.ops_before = circuit.num_ops();

  // Nothing to fuse (e.g. the all-trainable ansatz): hand back a verbatim
  // copy without staging the op stream.
  if (!has_fusable_runs(circuit)) {
    stats.ops_after = circuit.num_ops();
    if (stats_out) *stats_out = stats;
    return circuit;
  }

  const auto ops = circuit.ops();
  // Slot i holds what the rewritten stream emits at position i. A fused run
  // lands at its first op's position; ops between run members act on other
  // qubits, so they commute with the run and the placement is exact.
  std::vector<std::optional<Op>> out(ops.size());
  std::vector<PendingRun> pending(circuit.num_qubits());

  auto flush = [&](Index q) {
    PendingRun& run = pending[q];
    if (run.count == 0) return;
    if (run.count == 1) {
      out[run.first_pos] = ops[run.first_pos];  // untouched single op
    } else {
      out[run.first_pos] = fused_op(run.product, q, stats);
    }
    run.count = 0;
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    if (is_fusable_1q(op)) {
      const Index q = op.qubits[0];
      PendingRun& run = pending[q];
      const Mat2 u = gate_matrix(op.kind, Circuit::resolve_params(op, {}));
      if (run.count == 0) {
        run.product = u;
        run.first_pos = i;
        run.count = 1;
      } else {
        run.product = matmul(u, run.product);
        ++run.count;
      }
      continue;
    }
    // Any other op ends the run on every qubit it touches.
    flush(op.qubits[0]);
    if (gate_qubit_count(op.kind) == 2) flush(op.qubits[1]);
    out[i] = op;
  }
  for (Index q = 0; q < circuit.num_qubits(); ++q) flush(q);

  Circuit result(circuit.num_qubits());
  if (circuit.num_params() > 0)
    (void)result.new_params(static_cast<std::uint32_t>(circuit.num_params()));
  for (const auto& maybe_op : out)
    if (maybe_op) emit_op(result, *maybe_op);

  stats.ops_after = result.num_ops();
  if (stats_out) *stats_out = stats;
  return result;
}

Circuit canonicalize_for_backend(const Circuit& circuit) {
  return fuse_gate_runs(circuit);
}

}  // namespace qugeo::qsim
