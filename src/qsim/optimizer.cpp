#include "qsim/optimizer.h"

#include <cmath>
#include <optional>

namespace qugeo::qsim {
namespace {

bool is_self_inverse(GateKind kind) {
  switch (kind) {
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kSWAP:
      return true;
    default:
      return false;
  }
}

bool is_literal_rotation(const Op& op) {
  switch (op.kind) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kPhase:
      return op.param_ids[0] == kLiteralParam;
    default:
      return false;
  }
}

bool same_operands(const Op& a, const Op& b) {
  const int nq = gate_qubit_count(a.kind);
  if (a.kind == GateKind::kSWAP && b.kind == GateKind::kSWAP) {
    return (a.qubits[0] == b.qubits[0] && a.qubits[1] == b.qubits[1]) ||
           (a.qubits[0] == b.qubits[1] && a.qubits[1] == b.qubits[0]);
  }
  if (a.qubits[0] != b.qubits[0]) return false;
  return nq == 1 || a.qubits[1] == b.qubits[1];
}

bool touches_qubit(const Op& op, Index q) {
  if (op.qubits[0] == q) return true;
  return gate_qubit_count(op.kind) == 2 && op.qubits[1] == q;
}

bool ops_commute_trivially(const Op& a, const Op& b) {
  // Conservative: ops on disjoint qubit sets commute.
  if (touches_qubit(b, a.qubits[0])) return false;
  if (gate_qubit_count(a.kind) == 2 && touches_qubit(b, a.qubits[1]))
    return false;
  return true;
}

/// Angle normalized to (-2pi, 2pi]; rotations have period 4pi in SU(2) but
/// global phase is irrelevant for RX/RY, and we only drop exact multiples
/// of 4pi (plus exact 0) to stay safe for RZ/Phase.
bool is_identity_angle(GateKind kind, Real angle, Real eps) {
  const Real period = kind == GateKind::kPhase ? 2 * kPi : 4 * kPi;
  const Real r = std::remainder(angle, period);
  return std::abs(r) <= eps;
}

/// One pass; returns true if anything changed.
bool pass(std::vector<std::optional<Op>>& ops, const OptimizeOptions& opt,
          OptimizeStats& stats) {
  bool changed = false;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i]) continue;
    Op& a = *ops[i];

    if (opt.drop_identity_rotations && is_literal_rotation(a) &&
        is_identity_angle(a.kind, a.literals[0], opt.angle_epsilon)) {
      ops[i].reset();
      ++stats.dropped_identities;
      changed = true;
      continue;
    }

    // Find the next op that shares a qubit with `a`, skipping commuting ops.
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      if (!ops[j]) continue;
      const Op& b = *ops[j];
      if (ops_commute_trivially(a, b)) continue;

      if (opt.cancel_self_inverse && is_self_inverse(a.kind) &&
          a.kind == b.kind && same_operands(a, b)) {
        ops[i].reset();
        ops[j].reset();
        ++stats.cancelled_pairs;
        changed = true;
      } else if (opt.fuse_rotations && is_literal_rotation(a) &&
                 a.kind == b.kind && is_literal_rotation(b) &&
                 same_operands(a, b)) {
        Op fused = a;
        fused.literals[0] = a.literals[0] + b.literals[0];
        ops[i] = fused;
        ops[j].reset();
        ++stats.fused_rotations;
        changed = true;
      }
      break;  // b blocks further lookahead whether or not we rewrote
    }
  }
  return changed;
}

}  // namespace

Circuit optimize_circuit(const Circuit& circuit, const OptimizeOptions& options,
                         OptimizeStats* stats_out) {
  OptimizeStats stats;
  stats.ops_before = circuit.num_ops();

  std::vector<std::optional<Op>> ops(circuit.ops().begin(), circuit.ops().end());
  while (pass(ops, options, stats)) {
  }

  // Rebuild through the public API: preallocate the identical parameter
  // table (ids are preserved verbatim), then re-emit surviving ops.
  Circuit result(circuit.num_qubits());
  if (circuit.num_params() > 0)
    (void)result.new_params(static_cast<std::uint32_t>(circuit.num_params()));
  for (const auto& maybe_op : ops) {
    if (!maybe_op) continue;
    const Op& op = *maybe_op;
    const bool trainable = op.param_ids[0] != kLiteralParam;
    switch (op.kind) {
      case GateKind::kI: break;
      case GateKind::kX: result.x(op.qubits[0]); break;
      case GateKind::kY: result.y(op.qubits[0]); break;
      case GateKind::kZ: result.z(op.qubits[0]); break;
      case GateKind::kH: result.h(op.qubits[0]); break;
      case GateKind::kS: result.s(op.qubits[0]); break;
      case GateKind::kSdg: result.sdg(op.qubits[0]); break;
      case GateKind::kT: result.t(op.qubits[0]); break;
      case GateKind::kTdg: result.tdg(op.qubits[0]); break;
      case GateKind::kRX:
        trainable ? result.rx(op.qubits[0], ParamRef{op.param_ids[0]})
                  : result.rx(op.qubits[0], op.literals[0]);
        break;
      case GateKind::kRY:
        trainable ? result.ry(op.qubits[0], ParamRef{op.param_ids[0]})
                  : result.ry(op.qubits[0], op.literals[0]);
        break;
      case GateKind::kRZ:
        trainable ? result.rz(op.qubits[0], ParamRef{op.param_ids[0]})
                  : result.rz(op.qubits[0], op.literals[0]);
        break;
      case GateKind::kPhase:
        result.phase(op.qubits[0], op.literals[0]);
        break;
      case GateKind::kU3:
        trainable ? result.u3(op.qubits[0], ParamRef{op.param_ids[0]})
                  : result.u3(op.qubits[0], op.literals[0], op.literals[1],
                              op.literals[2]);
        break;
      case GateKind::kCX: result.cx(op.qubits[0], op.qubits[1]); break;
      case GateKind::kCZ: result.cz(op.qubits[0], op.qubits[1]); break;
      case GateKind::kCRY:
        trainable ? result.cry(op.qubits[0], op.qubits[1], ParamRef{op.param_ids[0]})
                  : result.cry(op.qubits[0], op.qubits[1], op.literals[0]);
        break;
      case GateKind::kCU3:
        trainable ? result.cu3(op.qubits[0], op.qubits[1], ParamRef{op.param_ids[0]})
                  : result.cu3(op.qubits[0], op.qubits[1], op.literals[0],
                               op.literals[1], op.literals[2]);
        break;
      case GateKind::kSWAP: result.swap(op.qubits[0], op.qubits[1]); break;
    }
  }

  stats.ops_after = result.num_ops();
  if (stats_out) *stats_out = stats;
  return result;
}

}  // namespace qugeo::qsim
