#include "qsim/circuit.h"

#include <algorithm>
#include <stdexcept>

namespace qugeo::qsim {

void Circuit::check_qubit(Index q) const {
  if (q >= num_qubits_)
    throw std::out_of_range("Circuit: qubit index out of range");
}

void Circuit::push1(GateKind kind, Index q) {
  check_qubit(q);
  Op op;
  op.kind = kind;
  op.qubits = {q, 0};
  ops_.push_back(op);
}

void Circuit::push2(GateKind kind, Index a, Index b) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) throw std::invalid_argument("Circuit: identical qubit operands");
  Op op;
  op.kind = kind;
  op.qubits = {a, b};
  ops_.push_back(op);
}

void Circuit::push_rot(GateKind kind, Index q, Real angle) {
  check_qubit(q);
  Op op;
  op.kind = kind;
  op.qubits = {q, 0};
  op.literals[0] = angle;
  ops_.push_back(op);
}

void Circuit::push_rot(GateKind kind, Index q, ParamRef p) {
  check_qubit(q);
  if (p.id >= num_params_)
    throw std::out_of_range("Circuit: unallocated parameter reference");
  Op op;
  op.kind = kind;
  op.qubits = {q, 0};
  op.param_ids[0] = p.id;
  ops_.push_back(op);
}

void Circuit::u3(Index q, Real theta, Real phi, Real lambda) {
  check_qubit(q);
  Op op;
  op.kind = GateKind::kU3;
  op.qubits = {q, 0};
  op.literals = {theta, phi, lambda};
  ops_.push_back(op);
}

void Circuit::u3(Index q, ParamRef p) {
  check_qubit(q);
  if (p.id + 2 >= num_params_)
    throw std::out_of_range("Circuit: u3 needs three allocated slots");
  Op op;
  op.kind = GateKind::kU3;
  op.qubits = {q, 0};
  op.param_ids = {p.id, p.id + 1, p.id + 2};
  ops_.push_back(op);
}

void Circuit::cry(Index control, Index target, Real angle) {
  push2(GateKind::kCRY, control, target);
  ops_.back().literals[0] = angle;
}

void Circuit::cry(Index control, Index target, ParamRef p) {
  if (p.id >= num_params_)
    throw std::out_of_range("Circuit: unallocated parameter reference");
  push2(GateKind::kCRY, control, target);
  ops_.back().param_ids[0] = p.id;
}

void Circuit::cu3(Index control, Index target, Real theta, Real phi, Real lambda) {
  push2(GateKind::kCU3, control, target);
  ops_.back().literals = {theta, phi, lambda};
}

void Circuit::cu3(Index control, Index target, ParamRef p) {
  if (p.id + 2 >= num_params_)
    throw std::out_of_range("Circuit: cu3 needs three allocated slots");
  push2(GateKind::kCU3, control, target);
  ops_.back().param_ids = {p.id, p.id + 1, p.id + 2};
}

void Circuit::fused2q(Index a, Index b, const Mat4& u) {
  push2(GateKind::kFused2Q, a, b);
  ops_.back().matrix_id = static_cast<std::uint32_t>(mats_.size());
  mats_.push_back(u);
}

void Circuit::fused_ctl2q(Index control, Index target, const Mat4& u) {
  // Control-mixing entries (sub-index bit 0 = control) must be exactly
  // zero: the dual kernel never reads them.
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      if ((r & 1) != (c & 1) && u(r, c) != Complex{0, 0})
        throw std::invalid_argument(
            "Circuit::fused_ctl2q: matrix mixes control values");
  push2(GateKind::kFusedCtl2Q, control, target);
  ops_.back().matrix_id = static_cast<std::uint32_t>(mats_.size());
  mats_.push_back(u);
}

const Mat4& Circuit::matrix(const Op& op) const {
  if (op.kind != GateKind::kFused2Q && op.kind != GateKind::kFusedCtl2Q)
    throw std::invalid_argument("Circuit::matrix: op carries no dense matrix");
  if (op.matrix_id >= mats_.size())
    throw std::out_of_range("Circuit::matrix: dangling matrix_id");
  return mats_[op.matrix_id];
}

std::uint32_t Circuit::append(const Circuit& other) {
  if (other.num_qubits() > num_qubits_)
    throw std::invalid_argument("Circuit::append: operand has more qubits");
  const std::uint32_t offset = num_params_;
  const auto mat_offset = static_cast<std::uint32_t>(mats_.size());
  num_params_ += other.num_params_;
  mats_.insert(mats_.end(), other.mats_.begin(), other.mats_.end());
  for (Op op : other.ops_) {
    for (auto& id : op.param_ids)
      if (id != kLiteralParam) id += offset;
    if (op.matrix_id != kNoMatrix) op.matrix_id += mat_offset;
    ops_.push_back(op);
  }
  return offset;
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> level(num_qubits_, 0);
  std::size_t depth = 0;
  for (const Op& op : ops_) {
    const int nq = gate_qubit_count(op.kind);
    std::size_t start = level[op.qubits[0]];
    if (nq == 2) start = std::max(start, level[op.qubits[1]]);
    const std::size_t end = start + 1;
    level[op.qubits[0]] = end;
    if (nq == 2) level[op.qubits[1]] = end;
    depth = std::max(depth, end);
  }
  return depth;
}

std::size_t Circuit::two_qubit_op_count() const {
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(),
                    [](const Op& op) { return gate_qubit_count(op.kind) == 2; }));
}

std::array<Real, 3> Circuit::resolve_params(const Op& op,
                                            std::span<const Real> table) {
  std::array<Real, 3> vals = op.literals;
  for (int i = 0; i < 3; ++i) {
    if (op.param_ids[static_cast<std::size_t>(i)] != kLiteralParam) {
      const std::uint32_t id = op.param_ids[static_cast<std::size_t>(i)];
      if (id >= table.size())
        throw std::out_of_range("resolve_params: table too small");
      vals[static_cast<std::size_t>(i)] = table[id];
    }
  }
  return vals;
}

}  // namespace qugeo::qsim
