// Data encoders: classical vectors -> quantum states.
//
// Two routes are provided:
//  * direct amplitude injection (exact, what simulators do internally and
//    what TorchQuantum's amplitude encoder reduces to), and
//  * synthesis of an explicit state-preparation circuit out of uniformly
//    controlled RY rotations (Mottonen-style), so depth/size of the encoder
//    can be analyzed and exported as QASM — the paper's QuBatch complexity
//    argument rests on this circuit growing linearly with qubit count.
#pragma once

#include <span>
#include <vector>

#include "qsim/circuit.h"
#include "qsim/statevector.h"

namespace qugeo::qsim {

/// L2-normalize `data` and write it into the amplitudes of `psi`.
/// `data` must have length psi.dim(). Returns the norm that was divided out
/// (0 if the input was all-zero, in which case |0...0> is prepared).
Real encode_amplitudes(std::span<const Real> data, StateVector& psi);

/// Grouped amplitude encoding: the state is the tensor product of one
/// amplitude-encoded register per group. `group_data[g]` must have a
/// power-of-two length; register g occupies qubits
/// [offset_g, offset_g + log2(len_g)) with group 0 at the low end.
/// The full state dimension is the product of group lengths.
void encode_grouped_amplitudes(std::span<const std::vector<Real>> group_data,
                               StateVector& psi);

/// Synthesize a state-preparation circuit mapping |0...0> to the normalized
/// real vector `data` (length must be a power of two). Uses multiplexed RY
/// rotations decomposed into CX + RY via Gray codes; gate count is
/// O(2^n) with depth linear in the rotation count.
[[nodiscard]] Circuit state_prep_circuit(std::span<const Real> data);

/// Append a uniformly-controlled RY (multiplexor) to `c`: applies
/// RY(angles[j]) on `target` when the control register `controls` is in
/// basis state j (controls[b] supplies bit b of j).
/// angles.size() must equal 2^controls.size().
void append_ucry(Circuit& c, std::span<const Real> angles,
                 std::span<const Index> controls, Index target);

/// Angle encoding (one feature per qubit, RY(pi * x) after H), provided for
/// comparison experiments.
[[nodiscard]] Circuit angle_encoding_circuit(std::span<const Real> data,
                                             Index num_qubits);

}  // namespace qugeo::qsim
