#include "qsim/qasm.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace qugeo::qsim {
namespace {

/// The spec's qelib1.inc (arXiv:1707.03429) does not define the phase gate
/// under the `p` mnemonic, nor `cry`, nor `swap`; emit self-contained
/// definitions when the circuit uses them so the output loads in any
/// OpenQASM 2.0 toolchain.
void emit_preamble_defs(std::ostringstream& os, const Circuit& circuit) {
  bool has_phase = false, has_cry = false, has_swap = false;
  for (const Op& op : circuit.ops()) {
    has_phase |= op.kind == GateKind::kPhase;
    has_cry |= op.kind == GateKind::kCRY;
    has_swap |= op.kind == GateKind::kSWAP;
  }
  if (has_phase)
    os << "gate p(lambda) q { u1(lambda) q; }\n";
  if (has_cry)
    os << "gate cry(theta) a,b { ry(theta/2) b; cx a,b; ry(-theta/2) b; cx a,b; }\n";
  if (has_swap)
    os << "gate swap a,b { cx a,b; cx b,a; cx a,b; }\n";
}

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line = 1;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_space() {
    while (!done()) {
      const char c = text[pos];
      if (c == '\n') {
        ++line;
        ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '/' && pos + 1 < text.size() && text[pos + 1] == '/') {
        while (!done() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("from_qasm: line " + std::to_string(line) +
                                ": " + what);
  }

  /// Consume one identifier ([a-z_][a-z0-9_]*).
  std::string_view ident() {
    skip_space();
    const std::size_t start = pos;
    while (!done() && (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                       text[pos] == '_'))
      ++pos;
    if (pos == start) fail("expected identifier");
    return text.substr(start, pos - start);
  }

  void expect(char c) {
    skip_space();
    if (done() || text[pos] != c)
      fail(std::string("expected '") + c + "'");
    ++pos;
  }

  [[nodiscard]] bool consume(char c) {
    skip_space();
    if (done() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  Real number() {
    skip_space();
    // string_view is not null-terminated; bound strtod with a local copy.
    const std::string buf(text.substr(pos, 64));
    char* end = nullptr;
    const Real v = std::strtod(buf.c_str(), &end);
    if (end == buf.c_str()) fail("expected number");
    pos += static_cast<std::size_t>(end - buf.c_str());
    return v;
  }

  /// A non-negative integer (register sizes, qubit indices). Guards the
  /// float-to-unsigned cast: a negative or fractional value would be UB.
  Index cardinal() {
    const Real v = number();
    // Bound before casting: float-to-unsigned conversion of a negative or
    // out-of-range value is undefined behavior.
    if (!(v >= 0 && v <= Real(1e9)) ||
        v != static_cast<Real>(static_cast<Index>(v)))
      fail("expected a non-negative integer");
    return static_cast<Index>(v);
  }

  Index index_operand(std::string_view reg) {
    const auto name = ident();
    if (name != reg) fail("unknown register '" + std::string(name) + "'");
    expect('[');
    const Index v = cardinal();
    expect(']');
    return v;
  }

  /// Skip to (and past) the next occurrence of `c`.
  void skip_past(char c) {
    while (!done()) {
      const char cur = text[pos];
      if (cur == '\n') ++line;
      ++pos;
      if (cur == c) return;
    }
    fail(std::string("unterminated statement; expected '") + c + "'");
  }
};

struct ParsedOp {
  GateKind kind;
  std::array<Real, 3> angles{0, 0, 0};
  std::array<Index, 2> qubits{0, 0};
};

GateKind kind_from_name(std::string_view name, const Cursor& at) {
  for (int k = 0; k <= static_cast<int>(GateKind::kSWAP); ++k) {
    const auto kind = static_cast<GateKind>(k);
    if (gate_name(kind) == name) return kind;
  }
  at.fail("unsupported gate '" + std::string(name) + "'");
}

void append_parsed(Circuit& c, const ParsedOp& op) {
  const Real* a = op.angles.data();
  const Index q0 = op.qubits[0], q1 = op.qubits[1];
  switch (op.kind) {
    case GateKind::kI: break;  // identity: no builder, no effect
    case GateKind::kX: c.x(q0); break;
    case GateKind::kY: c.y(q0); break;
    case GateKind::kZ: c.z(q0); break;
    case GateKind::kH: c.h(q0); break;
    case GateKind::kS: c.s(q0); break;
    case GateKind::kSdg: c.sdg(q0); break;
    case GateKind::kT: c.t(q0); break;
    case GateKind::kTdg: c.tdg(q0); break;
    case GateKind::kRX: c.rx(q0, a[0]); break;
    case GateKind::kRY: c.ry(q0, a[0]); break;
    case GateKind::kRZ: c.rz(q0, a[0]); break;
    case GateKind::kPhase: c.phase(q0, a[0]); break;
    case GateKind::kU3: c.u3(q0, a[0], a[1], a[2]); break;
    case GateKind::kCX: c.cx(q0, q1); break;
    case GateKind::kCZ: c.cz(q0, q1); break;
    case GateKind::kCRY: c.cry(q0, q1, a[0]); break;
    case GateKind::kCU3: c.cu3(q0, q1, a[0], a[1], a[2]); break;
    case GateKind::kSWAP: c.swap(q0, q1); break;
    case GateKind::kFused2Q:
    case GateKind::kFusedCtl2Q:
      // Unreachable: kind_from_name only resolves mnemonics up to kSWAP.
      throw std::invalid_argument("from_qasm: fused ops have no QASM form");
  }
}

}  // namespace

std::string to_qasm(const Circuit& circuit, std::span<const Real> params) {
  std::ostringstream os;
  os.precision(12);
  os << "OPENQASM 2.0;\n"
     << "include \"qelib1.inc\";\n";
  emit_preamble_defs(os, circuit);
  os << "qreg q[" << circuit.num_qubits() << "];\n";
  for (const Op& op : circuit.ops()) {
    if (op.kind == GateKind::kFused2Q || op.kind == GateKind::kFusedCtl2Q)
      throw std::invalid_argument(
          "to_qasm: fused ops are execution-internal and have no QASM form; "
          "export the circuit before canonicalize_for_backend");
    const auto vals = Circuit::resolve_params(op, params);
    const auto name = gate_name(op.kind);
    const int nparams = gate_param_count(op.kind);
    const int nqubits = gate_qubit_count(op.kind);
    os << name;
    if (nparams > 0) {
      os << '(';
      for (int i = 0; i < nparams; ++i)
        os << vals[static_cast<std::size_t>(i)] << (i + 1 < nparams ? "," : "");
      os << ')';
    }
    os << " q[" << op.qubits[0] << ']';
    if (nqubits == 2) os << ",q[" << op.qubits[1] << ']';
    os << ";\n";
  }
  return os.str();
}

Circuit from_qasm(std::string_view text) {
  Cursor cur{text};

  // Header: OPENQASM 2.0;
  if (cur.ident() != "OPENQASM") cur.fail("missing OPENQASM header");
  (void)cur.number();
  cur.expect(';');

  std::string reg_name;
  Index reg_size = 0;
  std::vector<ParsedOp> ops;

  while (true) {
    cur.skip_space();
    if (cur.done()) break;
    const auto word = cur.ident();
    if (word == "include") {
      cur.skip_past(';');
    } else if (word == "gate") {
      // Preamble definitions (p, cry) describe gates the parser already
      // knows natively; skip the body.
      cur.skip_past('}');
    } else if (word == "qreg") {
      reg_name = std::string(cur.ident());
      cur.expect('[');
      reg_size = cur.cardinal();
      cur.expect(']');
      cur.expect(';');
    } else if (word == "creg" || word == "barrier" || word == "measure") {
      cur.skip_past(';');
    } else {
      if (reg_name.empty()) cur.fail("gate statement before qreg");
      ParsedOp op;
      op.kind = kind_from_name(word, cur);
      const int nparams = gate_param_count(op.kind);
      if (cur.consume('(')) {
        for (int i = 0; i < nparams; ++i) {
          op.angles[static_cast<std::size_t>(i)] = cur.number();
          if (i + 1 < nparams) cur.expect(',');
        }
        cur.expect(')');
      } else if (nparams > 0) {
        cur.fail("gate '" + std::string(gate_name(op.kind)) +
                 "' requires angle arguments");
      }
      op.qubits[0] = cur.index_operand(reg_name);
      if (gate_qubit_count(op.kind) == 2) {
        cur.expect(',');
        op.qubits[1] = cur.index_operand(reg_name);
      }
      cur.expect(';');
      for (int i = 0; i < gate_qubit_count(op.kind); ++i)
        if (op.qubits[static_cast<std::size_t>(i)] >= reg_size)
          cur.fail("qubit operand out of range");
      ops.push_back(op);
    }
  }

  if (reg_name.empty()) cur.fail("no qreg declaration");
  Circuit c(reg_size);
  for (const ParsedOp& op : ops) append_parsed(c, op);
  return c;
}

}  // namespace qugeo::qsim
