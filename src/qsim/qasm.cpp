#include "qsim/qasm.h"

#include <sstream>

namespace qugeo::qsim {

std::string to_qasm(const Circuit& circuit, std::span<const Real> params) {
  std::ostringstream os;
  os.precision(12);
  os << "OPENQASM 2.0;\n"
     << "include \"qelib1.inc\";\n"
     << "qreg q[" << circuit.num_qubits() << "];\n";
  for (const Op& op : circuit.ops()) {
    const auto vals = Circuit::resolve_params(op, params);
    const auto name = gate_name(op.kind);
    const int nparams = gate_param_count(op.kind);
    const int nqubits = gate_qubit_count(op.kind);
    os << name;
    if (nparams > 0) {
      os << '(';
      for (int i = 0; i < nparams; ++i)
        os << vals[static_cast<std::size_t>(i)] << (i + 1 < nparams ? "," : "");
      os << ')';
    }
    os << " q[" << op.qubits[0] << ']';
    if (nqubits == 2) os << ",q[" << op.qubits[1] << ']';
    os << ";\n";
  }
  return os.str();
}

}  // namespace qugeo::qsim
