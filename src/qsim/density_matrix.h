// Dense density-matrix simulator for exact mixed-state evolution.
//
// Complements the trajectory sampler in noise.h: where trajectories give an
// unbiased stochastic estimate of the depolarizing channel, this class
// applies the channel exactly — rho -> (1-p) U rho U^+ + (p/3) sum_P P rho P
// — at O(4^n) memory, comfortably covering the paper's 8-16 qubit regime
// at the low end. It can run full circuits (gate application + Kraus /
// depolarizing channel ops), and backs DensityMatrixBackend in backend.h;
// tests use it to pin down the trajectory sampler, and the noise ablation
// for exact small-system numbers.
#pragma once

#include <span>
#include <vector>

#include "qsim/circuit.h"
#include "qsim/noise.h"
#include "qsim/statevector.h"

namespace qugeo::qsim {

/// Largest qubit count the dense representation accepts (4^n complexes).
[[nodiscard]] Index max_density_qubits() noexcept;

class DensityMatrix {
 public:
  /// rho = |0...0><0...0| on `num_qubits` qubits.
  explicit DensityMatrix(Index num_qubits);

  /// rho = |psi><psi|.
  static DensityMatrix from_state(const StateVector& psi);

  [[nodiscard]] Index num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] Index dim() const noexcept { return dim_; }
  [[nodiscard]] Complex element(Index r, Index c) const {
    return rho_[r * dim_ + c];
  }

  /// Reset to |0...0><0...0|.
  void reset();

  /// Overwrite with the pure-state projector |psi><psi| (same qubit count).
  void set_from_state(const StateVector& psi);

  /// Apply a 1-qubit unitary: rho -> U rho U^+.
  void apply_1q(const Mat2& u, Index q);

  /// Controlled 1-qubit unitary (control = qubits[0] convention).
  void apply_controlled_1q(const Mat2& u, Index control, Index target);

  /// Dense two-qubit unitary: rho -> U rho U^+ on the pair (q0, q1). The
  /// 2-bit sub-index of `u` uses bit 0 = q0, bit 1 = q1 (the
  /// Circuit::fused2q / StateVector::apply_matrix2q convention); backs the
  /// optimizer's two-qubit run fusion on the exact mixed-state path.
  void apply_2q(const Mat4& u, Index q0, Index q1);

  /// SWAP conjugation.
  void apply_swap(Index a, Index b);

  /// General 1-qubit quantum channel from its Kraus operators:
  /// rho -> sum_k K_k rho K_k^+. The caller is responsible for the
  /// completeness relation sum_k K_k^+ K_k = I (trace preservation).
  void apply_kraus(std::span<const Mat2> kraus, Index q);

  /// Exact single-qubit depolarizing channel with probability p, applied
  /// in place (no scratch copies): rho -> (1-p') rho + p' Tr_q(rho) (x) I/2
  /// with p' = 4p/3.
  void depolarize(Index q, Real p);

  /// Trace (should stay 1 under channels).
  [[nodiscard]] Real trace() const;

  /// Purity Tr(rho^2) — 1 for pure states, 1/2^n for maximally mixed.
  [[nodiscard]] Real purity() const;

  /// Diagonal Born probabilities.
  [[nodiscard]] std::vector<Real> probabilities() const;

  /// <Z_q>.
  [[nodiscard]] Real expect_z(Index q) const;

 private:
  Index num_qubits_;
  Index dim_;
  std::vector<Complex> rho_;  // row-major dim x dim
};

/// Run a circuit on the density matrix, applying the exact depolarizing
/// channel with probability `depolarizing_prob` to every touched qubit
/// after each gate (mirrors run_circuit_noisy's insertion points).
void run_circuit_density(const Circuit& circuit, std::span<const Real> params,
                         DensityMatrix& rho, Real depolarizing_prob = 0);

/// Full NoiseModel variant: the named gate channel (depolarizing via the
/// in-place fast path, damping channels via apply_kraus) after every gate
/// touch — the same insertion points run_circuit_noisy samples — and the
/// readout bit-flip channel on every qubit at the end. The post-run
/// density therefore folds measurement error into the state exactly, which
/// is equivalent for every diagonal observable (probabilities, <Z>).
void run_circuit_density(const Circuit& circuit, std::span<const Real> params,
                         DensityMatrix& rho, const NoiseModel& noise);

}  // namespace qugeo::qsim
