#include "qsim/batched_executor.h"

#include <array>
#include <stdexcept>

namespace qugeo::qsim {
namespace {

const Mat2 kPauliX{{Complex{0, 0}, Complex{1, 0}, Complex{1, 0}, Complex{0, 0}}};
const Mat2 kPauliY{{Complex{0, 0}, Complex{0, -1}, Complex{0, 1}, Complex{0, 0}}};
const Mat2 kPauliZ{{Complex{1, 0}, Complex{0, 0}, Complex{0, 0}, Complex{-1, 0}}};

/// Batched twin of executor.cpp's apply_block: route the 2x2 block to the
/// class-specialized all-lane kernel.
void apply_block_batched(GateKind kind, const Mat2& u,
                         const std::array<Index, 2>& qubits,
                         BatchedStateVector& psi) {
  const bool controlled = gate_is_controlled_1q(kind);
  switch (gate_class(kind)) {
    case GateClass::kDiagonal:
      if (controlled)
        psi.apply_controlled_diag_1q(u(0, 0), u(1, 1), qubits[0], qubits[1]);
      else
        psi.apply_diag_1q(u(0, 0), u(1, 1), qubits[0]);
      return;
    case GateClass::kAntiDiagonal:
      if (controlled)
        psi.apply_controlled_antidiag_1q(u(0, 1), u(1, 0), qubits[0],
                                         qubits[1]);
      else
        psi.apply_antidiag_1q(u(0, 1), u(1, 0), qubits[0]);
      return;
    case GateClass::kGeneric:
      if (controlled)
        psi.apply_controlled_1q(u, qubits[0], qubits[1]);
      else
        psi.apply_1q(u, qubits[0]);
      return;
  }
}

/// Batched twin of executor.cpp's apply_fused: dense Mat4 kernel for
/// kFused2Q, dual half-space kernel over the extracted 2x2 blocks for
/// kFusedCtl2Q.
void apply_fused_batched(GateKind kind, const Mat4& m, Index q0, Index q1,
                         BatchedStateVector& psi) {
  if (kind == GateKind::kFusedCtl2Q) {
    Mat2 u0, u1;
    for (int tp = 0; tp < 2; ++tp)
      for (int t = 0; t < 2; ++t) {
        u0(tp, t) = m(tp * 2, t * 2);
        u1(tp, t) = m(tp * 2 + 1, t * 2 + 1);
      }
    psi.apply_block_diag_2q(u0, u1, q0, q1);
    return;
  }
  psi.apply_matrix2q(m, q0, q1);
}

bool is_fused_kind(GateKind kind) {
  return kind == GateKind::kFused2Q || kind == GateKind::kFusedCtl2Q;
}

void apply_op_batched(const Op& op, std::span<const Real> params,
                      BatchedStateVector& psi) {
  if (op.kind == GateKind::kSWAP) {
    psi.apply_swap(op.qubits[0], op.qubits[1]);
    return;
  }
  if (op.kind == GateKind::kI) return;
  const auto vals = Circuit::resolve_params(op, params);
  apply_block_batched(op.kind, gate_matrix(op.kind, vals), op.qubits, psi);
}

/// Per-lane depolarizing insertion with maybe_depolarize's exact draw
/// sequence (bernoulli, then uniform_int on hit) against the LANE's rng.
void maybe_depolarize_lane(BatchedStateVector& psi, Index q, Real p, Rng& rng,
                           std::size_t lane) {
  if (!rng.bernoulli(p)) return;
  switch (rng.uniform_int(0, 2)) {
    case 0: psi.apply_1q_lane(kPauliX, q, lane); break;
    case 1: psi.apply_1q_lane(kPauliY, q, lane); break;
    default: psi.apply_1q_lane(kPauliZ, q, lane); break;
  }
}

}  // namespace

void run_circuit_batched(const Circuit& circuit, std::span<const Real> params,
                         BatchedStateVector& psi) {
  if (psi.num_qubits() != circuit.num_qubits())
    throw std::invalid_argument("run_circuit_batched: qubit count mismatch");
  if (params.size() < circuit.num_params())
    throw std::invalid_argument(
        "run_circuit_batched: parameter table too small");
  for (const Op& op : circuit.ops()) {
    if (is_fused_kind(op.kind))
      apply_fused_batched(op.kind, circuit.matrix(op), op.qubits[0],
                          op.qubits[1], psi);
    else
      apply_op_batched(op, params, psi);
  }
}

bool noise_is_batchable(const NoiseModel& noise) noexcept {
  return !noise.has_gate_noise() ||
         noise.channel == NoiseChannel::kDepolarizing;
}

void run_circuit_noisy_batched(const Circuit& circuit,
                               std::span<const Real> params,
                               BatchedStateVector& psi,
                               const NoiseModel& noise, std::span<Rng> rngs) {
  if (rngs.size() != psi.lanes())
    throw std::invalid_argument(
        "run_circuit_noisy_batched: need one Rng per lane");
  if (!noise_is_batchable(noise))
    throw std::invalid_argument(
        "run_circuit_noisy_batched: generalized Kraus channels need the "
        "looped run_circuit_noisy");
  if (noise.has_gate_noise()) {
    // Gates advance all lanes at once; each noise insertion point then
    // consults every lane's own rng in lane order. Lane l's draw sequence
    // is exactly what a looped trajectory with the same Rng would see,
    // because draws only ever come from that lane's stream.
    const auto sample_channel = [&](Index q) {
      for (std::size_t l = 0; l < psi.lanes(); ++l)
        maybe_depolarize_lane(psi, q, noise.gate_error_prob, rngs[l], l);
    };
    for (const Op& op : circuit.ops()) {
      if (is_fused_kind(op.kind))
        // Fusion is restricted to noiseless paths (optimizer.h legality
        // rules) — mirror run_circuit_noisy's contract.
        throw std::invalid_argument(
            "run_circuit_noisy_batched: fused ops are illegal under gate "
            "noise");
      apply_op_batched(op, params, psi);
      sample_channel(op.qubits[0]);
      if (gate_qubit_count(op.kind) == 2) sample_channel(op.qubits[1]);
    }
  } else {
    run_circuit_batched(circuit, params, psi);
  }
  if (noise.has_readout_error()) {
    for (std::size_t l = 0; l < psi.lanes(); ++l)
      for (Index q = 0; q < psi.num_qubits(); ++q)
        if (rngs[l].bernoulli(noise.readout_error))
          psi.apply_1q_lane(kPauliX, q, l);
  }
}

}  // namespace qugeo::qsim
