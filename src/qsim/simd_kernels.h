// AVX2/FMA variants of the statevector hot kernels.
//
// These are the intrinsic twins of the scalar loops in statevector.cpp,
// compiled in the dedicated -mavx2 -mfma translation unit kernels_avx2.cpp
// so the rest of the binary stays runnable on any x86-64. StateVector's
// public methods dispatch here when simd::active_level() is kAvx2
// (common/cpu_features.h) — a state that can only be reached when the TU
// was compiled in AND the CPU reports avx2+fma, so calling one of these on
// an unsupported build is a logic error (the stub definitions throw).
//
// Numerical contract: each variant evaluates the same per-amplitude
// formulas as its scalar twin; the only difference is FMA contraction, so
// results match scalar to <= 1e-12 per amplitude (pinned by
// test_qsim_kernels' *_avx2 equivalence cases, enforced by qugeo-lint
// rule 6).
#pragma once

#include <cstddef>

#include "common/types.h"
#include "qsim/gate.h"

namespace qugeo::qsim {

/// AVX2 twin of StateVector::apply_1q: two interleaved complexes per
/// __m256d for stride >= 2, lane-broadcast pair math for q == 0.
void apply_1q_avx2(Complex* amps, Index n, const Mat2& u, Index q);

/// AVX2 twin of StateVector::apply_controlled_1q. The control==0&&target>0
/// case (odd, stride-2 pairs — no contiguous runs to vectorize) runs the
/// scalar formulas inside this TU.
void apply_controlled_1q_avx2(Complex* amps, Index n, const Mat2& u,
                              Index control, Index target);

/// AVX2 twin of StateVector::apply_matrix2q (the dense 4x4 kernel — the
/// largest-headroom hot kernel, per BENCH_micro.json).
void apply_matrix2q_avx2(Complex* amps, Index n, const Mat4& u, Index q0,
                         Index q1);

/// AVX2 twin of StateVector::apply_block_diag_2q — the kFusedCtl2Q
/// executor. Without it the fused path would bottleneck on a scalar
/// kernel while the unfused 1q/controlled stream runs vectorized, and
/// fusion would LOSE under AVX2 dispatch (the bench_micro_fusion guard).
/// Identity blocks are skipped exactly like the scalar twin; the
/// control==0 half-spaces (stride-2 singles) run the scalar formulas
/// inside this TU.
void apply_block_diag_2q_avx2(Complex* amps, Index n, const Mat2& u0,
                              const Mat2& u1, Index control, Index target);

/// Lane-vectorized 1q kernel over BatchedStateVector's SoA storage
/// (amplitude-major, lane-minor): four batch lanes per __m256d, pure
/// mul/fma with no shuffles. `re`/`im` are the deinterleaved amplitude
/// planes, each dim * lanes long.
void batched_apply_1q_avx2(Real* re, Real* im, Index dim, std::size_t lanes,
                           const Mat2& u, Index q);

}  // namespace qugeo::qsim
