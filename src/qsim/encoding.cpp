#include "qsim/encoding.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/math_utils.h"

namespace qugeo::qsim {

Real encode_amplitudes(std::span<const Real> data, StateVector& psi) {
  if (data.size() != psi.dim())
    throw std::invalid_argument("encode_amplitudes: dimension mismatch");
  std::vector<Real> normalized(data.begin(), data.end());
  const Real norm = normalize_l2(normalized);
  psi.set_amplitudes_real(normalized);
  return norm;
}

void encode_grouped_amplitudes(std::span<const std::vector<Real>> group_data,
                               StateVector& psi) {
  // Build the product state iteratively: amps of the joint register are the
  // outer product of per-group normalized vectors (group 0 = low qubits).
  std::vector<Real> joint{Real(1)};
  std::size_t total_qubits = 0;
  for (const auto& g : group_data) {
    if (!is_pow2(g.size()))
      throw std::invalid_argument("encode_grouped_amplitudes: group size not 2^k");
    std::vector<Real> gn(g.begin(), g.end());
    normalize_l2(gn);
    std::vector<Real> next(joint.size() * gn.size());
    // next[high * |joint| + low] = gn[high] * joint[low]
    for (std::size_t hi = 0; hi < gn.size(); ++hi)
      for (std::size_t lo = 0; lo < joint.size(); ++lo)
        next[hi * joint.size() + lo] = gn[hi] * joint[lo];
    joint = std::move(next);
    total_qubits += log2_exact(g.size());
  }
  if (psi.num_qubits() != total_qubits)
    throw std::invalid_argument("encode_grouped_amplitudes: qubit count mismatch");
  psi.set_amplitudes_real(joint);
}

void append_ucry(Circuit& c, std::span<const Real> angles,
                 std::span<const Index> controls, Index target) {
  const std::size_t k = controls.size();
  if (angles.size() != (std::size_t{1} << k))
    throw std::invalid_argument("append_ucry: need 2^k angles");
  if (k == 0) {
    c.ry(target, angles[0]);
    return;
  }
  // Transform angles into the Gray-code basis: t_i = 2^-k sum_j a_j *
  // (-1)^{popcount(j & gray(i))}.
  const std::size_t n = angles.size();
  std::vector<Real> t(n, Real(0));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t gi = i ^ (i >> 1);
    Real acc = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const int sign = (std::popcount(j & gi) & 1) ? -1 : 1;
      acc += static_cast<Real>(sign) * angles[j];
    }
    t[i] = acc / static_cast<Real>(n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    c.ry(target, t[i]);
    // The CX control is the bit that flips between gray(i) and gray(i+1);
    // the final iteration closes the cycle on the most significant control.
    const std::size_t flip =
        (i + 1 == n) ? k - 1
                     : static_cast<std::size_t>(std::countr_zero(i + 1));
    c.cx(controls[flip], target);
  }
}

Circuit state_prep_circuit(std::span<const Real> data) {
  if (!is_pow2(data.size()))
    throw std::invalid_argument("state_prep_circuit: length not a power of two");
  const std::size_t num_qubits = log2_exact(data.size());
  Circuit c(num_qubits == 0 ? 1 : num_qubits);
  if (num_qubits == 0) return c;

  std::vector<Real> v(data.begin(), data.end());
  normalize_l2(v);

  // Disentangling sweep: zero qubit q (LSB first) with a multiplexed
  // RY(-theta); record the angles, then emit the reverse as the prep.
  struct Level {
    std::size_t qubit;
    std::vector<Real> angles;
  };
  std::vector<Level> levels;
  levels.reserve(num_qubits);
  std::vector<Real> cur = std::move(v);
  for (std::size_t q = 0; q < num_qubits; ++q) {
    const std::size_t half = cur.size() / 2;
    std::vector<Real> angles(half), next(half);
    for (std::size_t j = 0; j < half; ++j) {
      const Real x = cur[2 * j];
      const Real y = cur[2 * j + 1];
      angles[j] = 2 * std::atan2(y, x);
      next[j] = std::sqrt(x * x + y * y);
    }
    levels.push_back({q, std::move(angles)});
    cur = std::move(next);
  }

  // Prep = reverse order of disentangling, with the forward angles.
  for (std::size_t l = levels.size(); l-- > 0;) {
    const auto& lev = levels[l];
    std::vector<Index> controls;
    controls.reserve(num_qubits - lev.qubit - 1);
    for (std::size_t b = lev.qubit + 1; b < num_qubits; ++b)
      controls.push_back(b);
    append_ucry(c, lev.angles, controls, lev.qubit);
  }
  return c;
}

Circuit angle_encoding_circuit(std::span<const Real> data, Index num_qubits) {
  if (data.size() > num_qubits)
    throw std::invalid_argument("angle_encoding_circuit: more features than qubits");
  Circuit c(num_qubits);
  for (Index q = 0; q < data.size(); ++q) {
    c.h(q);
    c.ry(q, kPi * data[q]);
  }
  return c;
}

}  // namespace qugeo::qsim
