// Compiled-circuit cache: memoized canonicalize_for_backend results.
//
// QuGeoModel::predict fans QuBatch chunks across the thread pool, and every
// chunk constructs a fresh backend that would otherwise re-probe (and, for
// fusable circuits, re-fuse) the same ansatz. A CompiledCircuitCache —
// shared through ExecutionConfig::compile_cache — runs the canonicalization
// exactly once per distinct (circuit structure, backend kind) and hands
// every later execution the cached form. compile_count()/hit_count() are
// the observable probes the tests pin.
//
// The cache also memoizes the TRAINING-path GradientPlan (gradient_plan.h)
// alongside the forward entries, keyed by circuit structure alone and
// counted by its own plan_compile_count()/plan_hit_count() probes: every
// loss_and_gradient call across every epoch fetches the same plan after
// one build.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "qsim/circuit.h"

namespace qugeo::qsim {

enum class BackendKind : std::uint8_t;
class GradientPlan;

/// \brief Thread-safe memo of canonicalize_for_backend (optimizer.h).
///
/// \par Cache-key semantics
/// Entries are keyed by the EXACT circuit structure — qubit count,
/// parameter-table size, and the full op stream (kind, operands, parameter
/// ids, literal angles, dense-matrix payloads) — plus the executing
/// BackendKind. Structural equality, not pointer identity: two Circuit
/// objects built the same way share one entry. Trainable parameter VALUES
/// are deliberately absent from the key — fusion only touches literal
/// gates, so one canonical form serves every parameter table (predict
/// after a training step hits the same entry).
///
/// A null cached pointer is a positive result meaning "canonicalization is
/// the identity here" (e.g. the all-trainable ansatz): callers then run
/// their original circuit by reference, and repeated executions skip even
/// the O(ops) fusability probes.
class CompiledCircuitCache {
 public:
  /// The canonical form of `circuit` for `backend`, compiling on first
  /// use; nullptr when canonicalization would not change the op stream
  /// (execute the original). Thread-safe; concurrent misses on the same
  /// key compile once.
  [[nodiscard]] std::shared_ptr<const Circuit> canonical(const Circuit& circuit,
                                                         BackendKind backend)
      QUGEO_EXCLUDES(mu_);

  /// Number of canonicalization runs performed (cache misses).
  [[nodiscard]] std::size_t compile_count() const QUGEO_EXCLUDES(mu_);

  /// Number of lookups served from an existing entry.
  [[nodiscard]] std::size_t hit_count() const QUGEO_EXCLUDES(mu_);

  /// The GradientPlan (gradient_plan.h) of `circuit`, building on first
  /// use. Keyed by the same exact circuit structure as canonical() but
  /// WITHOUT a backend kind — gradients always run the adjoint statevector
  /// pass — and counted separately (plan_compile_count()/plan_hit_count()),
  /// so training probes never mix with the forward predict counters. Never
  /// null: an unfusable circuit yields a plan whose execution_form is the
  /// caller's original. Thread-safe; concurrent misses build once.
  [[nodiscard]] std::shared_ptr<const GradientPlan> gradient_plan(
      const Circuit& circuit) QUGEO_EXCLUDES(mu_);

  /// Number of GradientPlan builds performed (plan-cache misses).
  [[nodiscard]] std::size_t plan_compile_count() const QUGEO_EXCLUDES(mu_);

  /// Number of gradient_plan() lookups served from an existing entry.
  [[nodiscard]] std::size_t plan_hit_count() const QUGEO_EXCLUDES(mu_);

  /// Drop every entry (counters keep accumulating).
  void clear() QUGEO_EXCLUDES(mu_);

 private:
  struct StructuralKey {
    Index num_qubits;
    std::uint32_t num_params;
    std::vector<Op> ops;     // structural key (exact, collision-free)
    std::vector<Mat4> mats;  // dense payloads referenced by the ops
  };

  struct Entry {
    BackendKind backend;
    StructuralKey key;
    std::shared_ptr<const Circuit> compiled;  // null => identity
  };

  struct PlanEntry {
    StructuralKey key;
    std::shared_ptr<const GradientPlan> plan;  // never null
  };

  [[nodiscard]] static StructuralKey key_of(const Circuit& circuit);
  [[nodiscard]] static bool matches(const StructuralKey& key,
                                    const Circuit& circuit);

  mutable Mutex mu_;
  std::vector<Entry> entries_ QUGEO_GUARDED_BY(mu_);
  std::vector<PlanEntry> plan_entries_ QUGEO_GUARDED_BY(mu_);
  std::size_t compiles_ QUGEO_GUARDED_BY(mu_) = 0;
  std::size_t hits_ QUGEO_GUARDED_BY(mu_) = 0;
  std::size_t plan_compiles_ QUGEO_GUARDED_BY(mu_) = 0;
  std::size_t plan_hits_ QUGEO_GUARDED_BY(mu_) = 0;
};

}  // namespace qugeo::qsim
