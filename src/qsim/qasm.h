// OpenQASM 2.0 export, so synthesized encoders and the QuGeoVQC ansatz can
// be inspected or handed to external toolchains.
#pragma once

#include <span>
#include <string>

#include "qsim/circuit.h"

namespace qugeo::qsim {

/// Serialize the circuit as OpenQASM 2.0. Trainable angles are resolved
/// against `params` (pass the trained table; must cover num_params()).
[[nodiscard]] std::string to_qasm(const Circuit& circuit,
                                  std::span<const Real> params);

}  // namespace qugeo::qsim
