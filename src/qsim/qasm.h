// OpenQASM 2.0 export/import, so synthesized encoders and the QuGeoVQC
// ansatz can be inspected, handed to external toolchains, or read back.
//
// Export covers every GateKind, including the controlled rotations and
// SWAP: gates missing from qelib1.inc (`p`, `cry`) get a one-line `gate`
// definition in the preamble, emitted only when the circuit uses them.
// from_qasm parses the same dialect back into a Circuit (angles become
// literals), giving a round-trip for trained-circuit snapshots.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "qsim/circuit.h"

namespace qugeo::qsim {

/// Serialize the circuit as OpenQASM 2.0. Trainable angles are resolved
/// against `params` (pass the trained table; must cover num_params()).
[[nodiscard]] std::string to_qasm(const Circuit& circuit,
                                  std::span<const Real> params);

/// Parse the dialect to_qasm emits (qelib1 gate set + the preamble-defined
/// `p` and `cry`) back into a Circuit. All angles become literal constants;
/// `id` ops vanish (they have no builder and no effect). Throws
/// std::invalid_argument on malformed input or unsupported statements.
[[nodiscard]] Circuit from_qasm(std::string_view text);

}  // namespace qugeo::qsim
