#include "qsim/compile_cache.h"

#include <algorithm>

#include "qsim/gradient_plan.h"
#include "qsim/optimizer.h"

namespace qugeo::qsim {
namespace {

bool same_op(const Op& a, const Op& b) {
  return a.kind == b.kind && a.qubits == b.qubits && a.param_ids == b.param_ids &&
         a.literals == b.literals && a.matrix_id == b.matrix_id;
}

}  // namespace

CompiledCircuitCache::StructuralKey CompiledCircuitCache::key_of(
    const Circuit& circuit) {
  StructuralKey key;
  key.num_qubits = circuit.num_qubits();
  key.num_params = static_cast<std::uint32_t>(circuit.num_params());
  key.ops.assign(circuit.ops().begin(), circuit.ops().end());
  key.mats.assign(circuit.matrices().begin(), circuit.matrices().end());
  return key;
}

bool CompiledCircuitCache::matches(const StructuralKey& key,
                                   const Circuit& circuit) {
  if (key.num_qubits != circuit.num_qubits() ||
      key.num_params != circuit.num_params() ||
      key.ops.size() != circuit.num_ops())
    return false;
  const auto ops = circuit.ops();
  for (std::size_t i = 0; i < key.ops.size(); ++i)
    if (!same_op(key.ops[i], ops[i])) return false;
  const auto mats = circuit.matrices();
  if (key.mats.size() != mats.size()) return false;
  for (std::size_t i = 0; i < key.mats.size(); ++i)
    if (key.mats[i].m != mats[i].m) return false;
  return true;
}

std::shared_ptr<const Circuit> CompiledCircuitCache::canonical(
    const Circuit& circuit, BackendKind backend) {
  MutexLock lock(mu_);
  for (const Entry& entry : entries_) {
    if (entry.backend == backend && matches(entry.key, circuit)) {
      ++hits_;
      return entry.compiled;
    }
  }
  // Miss: compile under the lock so concurrent first executions of the
  // same circuit (predict's chunk fan-out) canonicalize exactly once.
  ++compiles_;
  Entry entry;
  entry.backend = backend;
  entry.key = key_of(circuit);
  if (has_fusable_runs(circuit) || has_fusable_two_qubit_runs(circuit))
    entry.compiled =
        std::make_shared<const Circuit>(canonicalize_for_backend(circuit));
  // else: identity — a null compiled pointer tells callers to run the
  // original by reference (and never probe this structure again).
  entries_.push_back(std::move(entry));
  return entries_.back().compiled;
}

std::shared_ptr<const GradientPlan> CompiledCircuitCache::gradient_plan(
    const Circuit& circuit) {
  MutexLock lock(mu_);
  for (const PlanEntry& entry : plan_entries_) {
    if (matches(entry.key, circuit)) {
      ++plan_hits_;
      return entry.plan;
    }
  }
  // Miss: build under the lock so the trainer's chunk fan-out of the first
  // loss_and_gradient group builds exactly once.
  ++plan_compiles_;
  PlanEntry entry;
  entry.key = key_of(circuit);
  entry.plan = std::make_shared<const GradientPlan>(GradientPlan::build(circuit));
  plan_entries_.push_back(std::move(entry));
  return plan_entries_.back().plan;
}

std::size_t CompiledCircuitCache::compile_count() const {
  MutexLock lock(mu_);
  return compiles_;
}

std::size_t CompiledCircuitCache::hit_count() const {
  MutexLock lock(mu_);
  return hits_;
}

std::size_t CompiledCircuitCache::plan_compile_count() const {
  MutexLock lock(mu_);
  return plan_compiles_;
}

std::size_t CompiledCircuitCache::plan_hit_count() const {
  MutexLock lock(mu_);
  return plan_hits_;
}

void CompiledCircuitCache::clear() {
  MutexLock lock(mu_);
  entries_.clear();
  plan_entries_.clear();
}

}  // namespace qugeo::qsim
