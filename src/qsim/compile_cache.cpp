#include "qsim/compile_cache.h"

#include <algorithm>

#include "qsim/optimizer.h"

namespace qugeo::qsim {
namespace {

bool same_op(const Op& a, const Op& b) {
  return a.kind == b.kind && a.qubits == b.qubits && a.param_ids == b.param_ids &&
         a.literals == b.literals && a.matrix_id == b.matrix_id;
}

}  // namespace

bool CompiledCircuitCache::matches(const Entry& entry, const Circuit& circuit,
                                   BackendKind backend) {
  if (entry.backend != backend || entry.num_qubits != circuit.num_qubits() ||
      entry.num_params != circuit.num_params() ||
      entry.ops.size() != circuit.num_ops())
    return false;
  const auto ops = circuit.ops();
  for (std::size_t i = 0; i < entry.ops.size(); ++i)
    if (!same_op(entry.ops[i], ops[i])) return false;
  const auto mats = circuit.matrices();
  if (entry.mats.size() != mats.size()) return false;
  for (std::size_t i = 0; i < entry.mats.size(); ++i)
    if (entry.mats[i].m != mats[i].m) return false;
  return true;
}

std::shared_ptr<const Circuit> CompiledCircuitCache::canonical(
    const Circuit& circuit, BackendKind backend) {
  MutexLock lock(mu_);
  for (const Entry& entry : entries_) {
    if (matches(entry, circuit, backend)) {
      ++hits_;
      return entry.compiled;
    }
  }
  // Miss: compile under the lock so concurrent first executions of the
  // same circuit (predict's chunk fan-out) canonicalize exactly once.
  ++compiles_;
  Entry entry;
  entry.backend = backend;
  entry.num_qubits = circuit.num_qubits();
  entry.num_params = static_cast<std::uint32_t>(circuit.num_params());
  entry.ops.assign(circuit.ops().begin(), circuit.ops().end());
  entry.mats.assign(circuit.matrices().begin(), circuit.matrices().end());
  if (has_fusable_runs(circuit) || has_fusable_two_qubit_runs(circuit))
    entry.compiled =
        std::make_shared<const Circuit>(canonicalize_for_backend(circuit));
  // else: identity — a null compiled pointer tells callers to run the
  // original by reference (and never probe this structure again).
  entries_.push_back(std::move(entry));
  return entries_.back().compiled;
}

std::size_t CompiledCircuitCache::compile_count() const {
  MutexLock lock(mu_);
  return compiles_;
}

std::size_t CompiledCircuitCache::hit_count() const {
  MutexLock lock(mu_);
  return hits_;
}

void CompiledCircuitCache::clear() {
  MutexLock lock(mu_);
  entries_.clear();
}

}  // namespace qugeo::qsim
