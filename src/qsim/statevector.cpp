#include "qsim/statevector.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/cpu_features.h"
#include "common/math_utils.h"
#include "qsim/simd_kernels.h"

namespace qugeo::qsim {

namespace {
constexpr Complex kOne{1, 0};

/// One relaxed load per kernel call decides scalar vs AVX2 dispatch; the
/// scalar bodies below are byte-for-byte the pre-SIMD kernels, so
/// QUGEO_SIMD=scalar reproduces historical results bit-exactly.
bool use_avx2() noexcept {
  return simd::active_level() == simd::SimdLevel::kAvx2;
}
}  // namespace

StateVector::StateVector(Index num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits > 28)
    throw std::invalid_argument("StateVector: too many qubits for dense sim");
  amps_.assign(Index{1} << num_qubits, Complex{0, 0});
  amps_[0] = Complex{1, 0};
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), Complex{0, 0});
  amps_[0] = Complex{1, 0};
}

void StateVector::set_amplitudes(std::span<const Complex> amps) {
  if (amps.size() != amps_.size())
    throw std::invalid_argument("set_amplitudes: dimension mismatch");
  std::copy(amps.begin(), amps.end(), amps_.begin());
}

void StateVector::set_amplitudes_real(std::span<const Real> amps) {
  if (amps.size() != amps_.size())
    throw std::invalid_argument("set_amplitudes_real: dimension mismatch");
  for (Index k = 0; k < amps_.size(); ++k) amps_[k] = Complex{amps[k], 0};
}

Real StateVector::norm_sq() const noexcept {
  Real s = 0;
  for (const Complex& a : amps_) s += std::norm(a);
  return s;
}

void StateVector::apply_1q(const Mat2& u, Index q) {
  assert(q < num_qubits_);
  if (use_avx2()) {
    apply_1q_avx2(amps_.data(), amps_.size(), u, q);
    return;
  }
  const Index stride = Index{1} << q;
  const Index n = amps_.size();
  // Hoist the matrix into locals: amps_ and u are both Complex storage, so
  // without this the compiler must reload u after every amplitude store.
  const Complex u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  Complex* a = amps_.data();
  for (Index base = 0; base < n; base += stride * 2) {
    for (Index off = 0; off < stride; ++off) {
      const Index i0 = base + off;
      const Index i1 = i0 + stride;
      const Complex a0 = a[i0];
      const Complex a1 = a[i1];
      a[i0] = cmul(u00, a0) + cmul(u01, a1);
      a[i1] = cmul(u10, a0) + cmul(u11, a1);
    }
  }
}

void StateVector::apply_diag_1q(Complex d0, Complex d1, Index q) {
  assert(q < num_qubits_);
  const Index stride = Index{1} << q;
  const Index half = amps_.size() / 2;
  Complex* a = amps_.data();
  if (d0 == kOne && d1 == kOne) return;  // identity
  if (d0 == kOne) {
    // Z/S/T/Phase (and RZ up to global phase do not hit this): only the
    // q=|1> half-space picks up a phase.
    for (Index j = 0; j < half; ++j) {
      const Index i1 = insert_zero_bit(j, q) | stride;
      a[i1] = cmul(a[i1], d1);
    }
    return;
  }
  for (Index j = 0; j < half; ++j) {
    const Index i0 = insert_zero_bit(j, q);
    const Index i1 = i0 | stride;
    a[i0] = cmul(a[i0], d0);
    a[i1] = cmul(a[i1], d1);
  }
}

void StateVector::apply_antidiag_1q(Complex a01, Complex a10, Index q) {
  assert(q < num_qubits_);
  const Index stride = Index{1} << q;
  const Index half = amps_.size() / 2;
  Complex* a = amps_.data();
  if (a01 == kOne && a10 == kOne) {  // X: pure swap
    for (Index j = 0; j < half; ++j) {
      const Index i0 = insert_zero_bit(j, q);
      std::swap(a[i0], a[i0 | stride]);
    }
    return;
  }
  for (Index j = 0; j < half; ++j) {
    const Index i0 = insert_zero_bit(j, q);
    const Index i1 = i0 | stride;
    const Complex a0 = a[i0];
    a[i0] = cmul(a01, a[i1]);
    a[i1] = cmul(a10, a0);
  }
}

void StateVector::apply_matrix2q(const Mat4& u, Index q0, Index q1) {
  assert(q0 < num_qubits_ && q1 < num_qubits_ && q0 != q1);
  if (use_avx2()) {
    apply_matrix2q_avx2(amps_.data(), amps_.size(), u, q0, q1);
    return;
  }
  const Index m0 = Index{1} << q0;
  const Index m1 = Index{1} << q1;
  const Index mlo = q0 < q1 ? m0 : m1;
  const Index mhi = q0 < q1 ? m1 : m0;
  const Index n = amps_.size();
  // Local copy of the matrix: a local array cannot alias amps_, so the
  // compiler may keep entries cached across the amplitude stores and
  // schedule the 16 loads freely (hoisting all 16 into named locals
  // spills half the register file instead).
  const std::array<Complex, 16> um = u.m;
  Complex* a = amps_.data();
  // Three-level block iteration (see apply_1q): the innermost loop walks a
  // CONTIGUOUS run of `mlo` base indices, so there is no per-iteration bit
  // insertion and the quadruple gather vectorizes.
  for (Index base = 0; base < n; base += 2 * mhi) {
    for (Index mid = base; mid < base + mhi; mid += 2 * mlo) {
      for (Index i0 = mid; i0 < mid + mlo; ++i0) {
        const Index i1 = i0 | m0;
        const Index i2 = i0 | m1;
        const Index i3 = i1 | m1;
        const Complex a0 = a[i0];
        const Complex a1 = a[i1];
        const Complex a2 = a[i2];
        const Complex a3 = a[i3];
        a[i0] = cmul(um[0], a0) + cmul(um[1], a1) + cmul(um[2], a2) +
                cmul(um[3], a3);
        a[i1] = cmul(um[4], a0) + cmul(um[5], a1) + cmul(um[6], a2) +
                cmul(um[7], a3);
        a[i2] = cmul(um[8], a0) + cmul(um[9], a1) + cmul(um[10], a2) +
                cmul(um[11], a3);
        a[i3] = cmul(um[12], a0) + cmul(um[13], a1) + cmul(um[14], a2) +
                cmul(um[15], a3);
      }
    }
  }
}

void StateVector::apply_block_diag_2q(const Mat2& u0, const Mat2& u1,
                                      Index control, Index target) {
  assert(control < num_qubits_ && target < num_qubits_ && control != target);
  if (use_avx2()) {
    apply_block_diag_2q_avx2(amps_.data(), amps_.size(), u0, u1, control,
                             target);
    return;
  }
  const Index mc = Index{1} << control;
  const Index mt = Index{1} << target;
  const Index n = amps_.size();
  Complex* a = amps_.data();
  // One sweep per control value, each an apply_1q-shaped pass over the
  // target pairs of that half-space: contiguous inner runs, four hoisted
  // matrix entries — the register profile the 1q kernel vectorizes.
  for (int v = 0; v < 2; ++v) {
    const Mat2& u = v ? u1 : u0;
    if (u(0, 1) == Complex{0, 0} && u(1, 0) == Complex{0, 0} &&
        u(0, 0) == kOne && u(1, 1) == kOne)
      continue;  // identity block: half-space untouched
    const Complex w00 = u(0, 0), w01 = u(0, 1), w10 = u(1, 0), w11 = u(1, 1);
    const Index voff = v ? mc : 0;
    if (control > target) {
      // Control halves are contiguous ranges of length mc.
      for (Index base = 0; base < n; base += 2 * mc) {
        const Index h0 = base + voff;
        for (Index mid = h0; mid < h0 + mc; mid += 2 * mt) {
          for (Index i0 = mid; i0 < mid + mt; ++i0) {
            const Index i1 = i0 + mt;
            const Complex a0 = a[i0];
            const Complex a1 = a[i1];
            a[i0] = cmul(w00, a0) + cmul(w01, a1);
            a[i1] = cmul(w10, a0) + cmul(w11, a1);
          }
        }
      }
    } else {
      // Control alternates with period mc inside each target-pair block.
      for (Index base = 0; base < n; base += 2 * mt) {
        for (Index coff = base + voff; coff < base + mt; coff += 2 * mc) {
          for (Index i0 = coff; i0 < coff + mc; ++i0) {
            const Index i1 = i0 + mt;
            const Complex a0 = a[i0];
            const Complex a1 = a[i1];
            a[i0] = cmul(w00, a0) + cmul(w01, a1);
            a[i1] = cmul(w10, a0) + cmul(w11, a1);
          }
        }
      }
    }
  }
}

void StateVector::apply_controlled_1q(const Mat2& u, Index control, Index target) {
  assert(control < num_qubits_ && target < num_qubits_ && control != target);
  if (use_avx2()) {
    apply_controlled_1q_avx2(amps_.data(), amps_.size(), u, control, target);
    return;
  }
  const Index cmask = Index{1} << control;
  const Index tmask = Index{1} << target;
  const Index lo = control < target ? control : target;
  const Index hi = control < target ? target : control;
  const Index quarter = amps_.size() / 4;
  const Complex u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  Complex* a = amps_.data();
  // Iterate the control=|1> half-space directly: j enumerates the free
  // bits, the control/target bits are re-inserted, so there is no skipped
  // half and no branch in the loop body.
  for (Index j = 0; j < quarter; ++j) {
    const Index i0 = insert_two_zero_bits(j, lo, hi) | cmask;
    const Index i1 = i0 | tmask;
    const Complex a0 = a[i0];
    const Complex a1 = a[i1];
    a[i0] = cmul(u00, a0) + cmul(u01, a1);
    a[i1] = cmul(u10, a0) + cmul(u11, a1);
  }
}

void StateVector::apply_controlled_diag_1q(Complex d0, Complex d1,
                                           Index control, Index target) {
  assert(control < num_qubits_ && target < num_qubits_ && control != target);
  const Index cmask = Index{1} << control;
  const Index tmask = Index{1} << target;
  const Index lo = control < target ? control : target;
  const Index hi = control < target ? target : control;
  const Index quarter = amps_.size() / 4;
  Complex* a = amps_.data();
  if (d0 == kOne && d1 == kOne) return;
  if (d0 == kOne) {
    // CZ/CS/CT: only the control=target=|1> quarter-space is touched.
    for (Index j = 0; j < quarter; ++j) {
      const Index i1 = insert_two_zero_bits(j, lo, hi) | cmask | tmask;
      a[i1] = cmul(a[i1], d1);
    }
    return;
  }
  for (Index j = 0; j < quarter; ++j) {
    const Index i0 = insert_two_zero_bits(j, lo, hi) | cmask;
    const Index i1 = i0 | tmask;
    a[i0] = cmul(a[i0], d0);
    a[i1] = cmul(a[i1], d1);
  }
}

void StateVector::apply_controlled_antidiag_1q(Complex a01, Complex a10,
                                               Index control, Index target) {
  assert(control < num_qubits_ && target < num_qubits_ && control != target);
  const Index cmask = Index{1} << control;
  const Index tmask = Index{1} << target;
  const Index lo = control < target ? control : target;
  const Index hi = control < target ? target : control;
  const Index quarter = amps_.size() / 4;
  Complex* a = amps_.data();
  if (a01 == kOne && a10 == kOne) {  // CX: swap inside the control half
    for (Index j = 0; j < quarter; ++j) {
      const Index i0 = insert_two_zero_bits(j, lo, hi) | cmask;
      std::swap(a[i0], a[i0 | tmask]);
    }
    return;
  }
  for (Index j = 0; j < quarter; ++j) {
    const Index i0 = insert_two_zero_bits(j, lo, hi) | cmask;
    const Index i1 = i0 | tmask;
    const Complex a0 = a[i0];
    a[i0] = cmul(a01, a[i1]);
    a[i1] = cmul(a10, a0);
  }
}

void StateVector::apply_swap(Index a, Index b) {
  assert(a < num_qubits_ && b < num_qubits_);
  if (a == b) return;
  const Index ma = Index{1} << a;
  const Index mb = Index{1} << b;
  const Index lo = a < b ? a : b;
  const Index hi = a < b ? b : a;
  const Index quarter = amps_.size() / 4;
  Complex* amp = amps_.data();
  // Standard two-mask half-space iteration: enumerate the free bits and
  // exchange the |01> / |10> pair of each quadruple directly.
  for (Index j = 0; j < quarter; ++j) {
    const Index base = insert_two_zero_bits(j, lo, hi);
    std::swap(amp[base | ma], amp[base | mb]);
  }
}

std::vector<Real> StateVector::probabilities() const {
  std::vector<Real> p(amps_.size());
  for (Index k = 0; k < amps_.size(); ++k) p[k] = std::norm(amps_[k]);
  return p;
}

std::vector<Real> StateVector::marginal_probabilities(
    std::span<const Index> qubits) const {
  std::vector<Real> p(Index{1} << qubits.size(), Real(0));
  for (Index k = 0; k < amps_.size(); ++k) {
    Index out = 0;
    for (Index i = 0; i < qubits.size(); ++i)
      if (k & (Index{1} << qubits[i])) out |= Index{1} << i;
    p[out] += std::norm(amps_[k]);
  }
  return p;
}

Real StateVector::expect_z(Index q) const {
  assert(q < num_qubits_);
  const Index mask = Index{1} << q;
  Real e = 0;
  for (Index k = 0; k < amps_.size(); ++k)
    e += ((k & mask) ? Real(-1) : Real(1)) * std::norm(amps_[k]);
  return e;
}

std::vector<Real> StateVector::cumulative_probabilities() const {
  std::vector<Real> cdf(amps_.size());
  Real acc = 0;
  for (Index k = 0; k < amps_.size(); ++k) {
    acc += std::norm(amps_[k]);
    cdf[k] = acc;
  }
  return cdf;
}

std::vector<Index> StateVector::sample(Rng& rng, std::size_t shots) const {
  return sample_from_cdf(cumulative_probabilities(), rng, shots);
}

std::vector<Index> StateVector::sample_from_cdf(std::span<const Real> cdf,
                                                Rng& rng, std::size_t shots) {
  // Inverse-CDF sampling; the O(2^n) prefix sums are built once by the
  // caller, so repeated shot-readout calls cost O(shots log dim) each.
  if (cdf.empty())
    throw std::invalid_argument("sample_from_cdf: empty distribution");
  const Real total = cdf.back();
  std::vector<Index> out(shots);
  for (std::size_t s = 0; s < shots; ++s) {
    const Real r = rng.uniform() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    out[s] = static_cast<Index>(std::distance(cdf.begin(), it));
  }
  return out;
}

Real StateVector::fidelity(const StateVector& other) const {
  if (other.dim() != dim())
    throw std::invalid_argument("fidelity: dimension mismatch");
  Complex ip{0, 0};
  for (Index k = 0; k < amps_.size(); ++k)
    ip += std::conj(amps_[k]) * other.amps_[k];
  return std::norm(ip);
}

}  // namespace qugeo::qsim
