#include "qsim/statevector.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace qugeo::qsim {

StateVector::StateVector(Index num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits > 28)
    throw std::invalid_argument("StateVector: too many qubits for dense sim");
  amps_.assign(Index{1} << num_qubits, Complex{0, 0});
  amps_[0] = Complex{1, 0};
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), Complex{0, 0});
  amps_[0] = Complex{1, 0};
}

void StateVector::set_amplitudes(std::span<const Complex> amps) {
  if (amps.size() != amps_.size())
    throw std::invalid_argument("set_amplitudes: dimension mismatch");
  std::copy(amps.begin(), amps.end(), amps_.begin());
}

void StateVector::set_amplitudes_real(std::span<const Real> amps) {
  if (amps.size() != amps_.size())
    throw std::invalid_argument("set_amplitudes_real: dimension mismatch");
  for (Index k = 0; k < amps_.size(); ++k) amps_[k] = Complex{amps[k], 0};
}

Real StateVector::norm_sq() const noexcept {
  Real s = 0;
  for (const Complex& a : amps_) s += std::norm(a);
  return s;
}

void StateVector::apply_1q(const Mat2& u, Index q) {
  assert(q < num_qubits_);
  const Index stride = Index{1} << q;
  const Index n = amps_.size();
  for (Index base = 0; base < n; base += stride * 2) {
    for (Index off = 0; off < stride; ++off) {
      const Index i0 = base + off;
      const Index i1 = i0 + stride;
      const Complex a0 = amps_[i0];
      const Complex a1 = amps_[i1];
      amps_[i0] = u(0, 0) * a0 + u(0, 1) * a1;
      amps_[i1] = u(1, 0) * a0 + u(1, 1) * a1;
    }
  }
}

void StateVector::apply_controlled_1q(const Mat2& u, Index control, Index target) {
  assert(control < num_qubits_ && target < num_qubits_ && control != target);
  const Index cmask = Index{1} << control;
  const Index stride = Index{1} << target;
  const Index n = amps_.size();
  for (Index base = 0; base < n; base += stride * 2) {
    for (Index off = 0; off < stride; ++off) {
      const Index i0 = base + off;
      if (!(i0 & cmask)) continue;
      const Index i1 = i0 + stride;
      const Complex a0 = amps_[i0];
      const Complex a1 = amps_[i1];
      amps_[i0] = u(0, 0) * a0 + u(0, 1) * a1;
      amps_[i1] = u(1, 0) * a0 + u(1, 1) * a1;
    }
  }
}

void StateVector::apply_controlled_1q_deriv(const Mat2& du, Index control,
                                            Index target) {
  apply_controlled_1q(du, control, target);
  const Index cmask = Index{1} << control;
  for (Index k = 0; k < amps_.size(); ++k)
    if (!(k & cmask)) amps_[k] = Complex{0, 0};
}

void StateVector::apply_swap(Index a, Index b) {
  assert(a < num_qubits_ && b < num_qubits_);
  if (a == b) return;
  const Index ma = Index{1} << a;
  const Index mb = Index{1} << b;
  for (Index k = 0; k < amps_.size(); ++k) {
    const bool ba = (k & ma) != 0;
    const bool bb = (k & mb) != 0;
    if (ba && !bb) {
      const Index j = (k & ~ma) | mb;
      std::swap(amps_[k], amps_[j]);
    }
  }
}

std::vector<Real> StateVector::probabilities() const {
  std::vector<Real> p(amps_.size());
  for (Index k = 0; k < amps_.size(); ++k) p[k] = std::norm(amps_[k]);
  return p;
}

std::vector<Real> StateVector::marginal_probabilities(
    std::span<const Index> qubits) const {
  std::vector<Real> p(Index{1} << qubits.size(), Real(0));
  for (Index k = 0; k < amps_.size(); ++k) {
    Index out = 0;
    for (Index i = 0; i < qubits.size(); ++i)
      if (k & (Index{1} << qubits[i])) out |= Index{1} << i;
    p[out] += std::norm(amps_[k]);
  }
  return p;
}

Real StateVector::expect_z(Index q) const {
  assert(q < num_qubits_);
  const Index mask = Index{1} << q;
  Real e = 0;
  for (Index k = 0; k < amps_.size(); ++k)
    e += ((k & mask) ? Real(-1) : Real(1)) * std::norm(amps_[k]);
  return e;
}

std::vector<Index> StateVector::sample(Rng& rng, std::size_t shots) const {
  // Inverse-CDF sampling over the cumulative Born distribution.
  std::vector<Real> cdf(amps_.size());
  Real acc = 0;
  for (Index k = 0; k < amps_.size(); ++k) {
    acc += std::norm(amps_[k]);
    cdf[k] = acc;
  }
  std::vector<Index> out(shots);
  for (std::size_t s = 0; s < shots; ++s) {
    const Real r = rng.uniform() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    out[s] = static_cast<Index>(std::distance(cdf.begin(), it));
  }
  return out;
}

Real StateVector::fidelity(const StateVector& other) const {
  if (other.dim() != dim())
    throw std::invalid_argument("fidelity: dimension mismatch");
  Complex ip{0, 0};
  for (Index k = 0; k < amps_.size(); ++k)
    ip += std::conj(amps_[k]) * other.amps_[k];
  return std::norm(ip);
}

}  // namespace qugeo::qsim
