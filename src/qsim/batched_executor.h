// Circuit execution over a BatchedStateVector: one pass over the op list
// advances every batch lane, so gate decode / matrix build / index
// arithmetic are paid once per gate instead of once per (gate, state).
//
// Equivalence contract: running a circuit batched gives bit-identical
// amplitudes (scalar mode) to running it on each lane's StateVector with
// run_circuit / run_circuit_noisy — pinned per GateKind (fused kinds
// included) by test_qsim_batched.
#pragma once

#include <span>

#include "common/rng.h"
#include "qsim/batched_statevector.h"
#include "qsim/circuit.h"
#include "qsim/noise.h"

namespace qugeo::qsim {

/// Run the circuit forward on every lane of `psi` (in place). Handles the
/// full GateKind set, including the optimizer's fused kinds (their Mat4
/// lives in the circuit's side table).
void run_circuit_batched(const Circuit& circuit, std::span<const Real> params,
                         BatchedStateVector& psi);

/// True when `noise` can run through the batched trajectory path: the only
/// state-dependent draws a batched run cannot interleave are generalized
/// Kraus jumps, so gate noise must be absent or depolarizing (readout
/// bit-flips are always fine). Callers fall back to the looped
/// run_circuit_noisy otherwise.
[[nodiscard]] bool noise_is_batchable(const NoiseModel& noise) noexcept;

/// Run one noisy trajectory per lane, all lanes in one circuit pass: lane l
/// draws from rngs[l] in exactly the order run_circuit_noisy would, so lane
/// l ends bit-identical (scalar mode) to a looped trajectory seeded with
/// the same Rng. Requires noise_is_batchable(noise) and
/// rngs.size() == psi.lanes(); throws std::invalid_argument otherwise.
void run_circuit_noisy_batched(const Circuit& circuit,
                               std::span<const Real> params,
                               BatchedStateVector& psi,
                               const NoiseModel& noise, std::span<Rng> rngs);

}  // namespace qugeo::qsim
