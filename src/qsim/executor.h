// Circuit execution and reverse-mode (adjoint) differentiation.
//
// The backward pass follows the standard adjoint-state method for unitary
// programs: starting from the cotangent lambda_k = dL/d(conj(psi_k)) at the
// output, gates are un-applied one at a time; at each parameterized gate the
// contribution dL/dtheta = 2 Re <lambda | dU/dtheta | psi_before> is
// accumulated. Memory is O(2^n) regardless of depth, and cost is O(ops)
// state-vector passes — the same asymptotics TorchQuantum's autograd
// achieves, without storing intermediate states.
#pragma once

#include <span>
#include <vector>

#include "qsim/circuit.h"
#include "qsim/statevector.h"

namespace qugeo::qsim {

/// Run the circuit forward on `psi` (in place), resolving trainable angles
/// against `params` (must have length >= circuit.num_params()).
void run_circuit(const Circuit& circuit, std::span<const Real> params,
                 StateVector& psi);

/// Apply a single op forward on `psi`.
void apply_op(const Op& op, std::span<const Real> params, StateVector& psi);

/// Apply the inverse (dagger) of a single op.
void apply_op_inverse(const Op& op, std::span<const Real> params,
                      StateVector& psi);

/// Result of an adjoint backward pass.
struct AdjointResult {
  /// Gradient with respect to each trainable parameter.
  std::vector<Real> param_grads;
  /// Cotangent propagated to the circuit input, lambda_in = dL/d(conj(psi_in)).
  /// Useful for chaining into an encoder (e.g. end-to-end tests).
  std::vector<Complex> input_cotangent;
};

/// Reverse-mode differentiation through `circuit`.
///
/// @param psi_out     the state *after* running the circuit (is consumed as
///                    scratch; pass a copy if it must survive).
/// @param cotangent   lambda_k = dL/d(conj(psi_k)) evaluated at psi_out.
[[nodiscard]] AdjointResult adjoint_backward(const Circuit& circuit,
                                             std::span<const Real> params,
                                             StateVector psi_out,
                                             std::span<const Complex> cotangent);

/// Parameter-shift gradient for circuits whose trainable gates are all
/// RX/RY/RZ/CRY (generator eigenvalues +-1/2). Used to cross-validate the
/// adjoint engine in tests. `loss` maps a final state to a scalar.
template <typename LossFn>
[[nodiscard]] std::vector<Real> parameter_shift_gradient(
    const Circuit& circuit, std::span<const Real> params,
    const StateVector& psi_in, LossFn&& loss) {
  std::vector<Real> grads(circuit.num_params(), Real(0));
  std::vector<Real> shifted(params.begin(), params.end());
  const Real s = kPi / 2;
  for (std::size_t p = 0; p < circuit.num_params(); ++p) {
    shifted[p] = params[p] + s;
    StateVector plus = psi_in;
    run_circuit(circuit, shifted, plus);
    shifted[p] = params[p] - s;
    StateVector minus = psi_in;
    run_circuit(circuit, shifted, minus);
    shifted[p] = params[p];
    grads[p] = (loss(plus) - loss(minus)) / 2;
  }
  return grads;
}

}  // namespace qugeo::qsim
