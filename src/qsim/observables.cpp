#include "qsim/observables.h"

#include <bit>
#include <stdexcept>

namespace qugeo::qsim {

std::vector<Complex> cotangent_from_probability_grads(
    const StateVector& psi, std::span<const Real> prob_grads) {
  if (prob_grads.size() != psi.dim())
    throw std::invalid_argument("cotangent_from_probability_grads: size mismatch");
  std::vector<Complex> lambda(psi.dim());
  const auto amps = psi.amplitudes();
  for (Index k = 0; k < psi.dim(); ++k) lambda[k] = prob_grads[k] * amps[k];
  return lambda;
}

std::vector<Complex> cotangent_from_marginal_grads(
    const StateVector& psi, std::span<const Index> qubits,
    std::span<const Real> marginal_grads) {
  if (marginal_grads.size() != (Index{1} << qubits.size()))
    throw std::invalid_argument("cotangent_from_marginal_grads: need 2^m grads");
  std::vector<Complex> lambda(psi.dim());
  const auto amps = psi.amplitudes();
  for (Index k = 0; k < psi.dim(); ++k) {
    Index out = 0;
    for (Index i = 0; i < qubits.size(); ++i)
      if (k & (Index{1} << qubits[i])) out |= Index{1} << i;
    lambda[k] = marginal_grads[out] * amps[k];
  }
  return lambda;
}

std::vector<Complex> cotangent_from_z_grads(const StateVector& psi,
                                            std::span<const Index> qubits,
                                            std::span<const Real> z_grads) {
  if (z_grads.size() != qubits.size())
    throw std::invalid_argument("cotangent_from_z_grads: size mismatch");
  std::vector<Complex> lambda(psi.dim());
  const auto amps = psi.amplitudes();
  for (Index k = 0; k < psi.dim(); ++k) {
    Real w = 0;
    for (Index i = 0; i < qubits.size(); ++i)
      w += ((k >> qubits[i]) & 1) ? -z_grads[i] : z_grads[i];
    lambda[k] = w * amps[k];
  }
  return lambda;
}

Real expect_z_string(const StateVector& psi, std::span<const Index> qubits) {
  Index mask = 0;
  for (Index q : qubits) mask |= Index{1} << q;
  Real e = 0;
  const auto amps = psi.amplitudes();
  for (Index k = 0; k < psi.dim(); ++k) {
    const int parity = std::popcount(k & mask) & 1;
    e += (parity ? Real(-1) : Real(1)) * std::norm(amps[k]);
  }
  return e;
}

}  // namespace qugeo::qsim
