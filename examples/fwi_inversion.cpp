// FWI inversion walk-through: the workload the paper's introduction
// motivates — characterizing layered subsurface structure from surface
// recordings. Compares the three QuGeoData scalers end to end on one
// corpus and prints ASCII renderings of the inverted velocity maps.
//
// Run:  ./fwi_inversion
#include <cstdio>

#include "core/experiment.h"
#include "metrics/image_metrics.h"

namespace {

using namespace qugeo;

/// ASCII shade for a normalized velocity (darker = slower rock).
char shade(Real v) {
  static const char ramp[] = " .:-=+*#%@";
  const int idx = static_cast<int>(v * 9.999);
  return ramp[idx < 0 ? 0 : (idx > 9 ? 9 : idx)];
}

void render_map(const char* title, const std::vector<Real>& map) {
  std::printf("%s\n", title);
  for (std::size_t i = 0; i < 8; ++i) {
    std::printf("    ");
    for (std::size_t j = 0; j < 8; ++j) std::printf("%c%c", shade(map[i * 8 + j]), shade(map[i * 8 + j]));
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("QuGeo FWI inversion: data scaling comparison\n\n");

  // One shared corpus, scaled three ways (D-Sample, Q-D-FW, Q-D-CNN).
  Rng rng(11);
  seismic::FlatVelConfig vel_cfg;
  seismic::Acquisition acq = seismic::openfwi_acquisition();
  std::printf("generating 30 raw samples + 10 for the CNN compressor...\n");
  const data::RawDataset raw = data::generate_raw_dataset(30, vel_cfg, acq, rng);
  const data::RawDataset cnn_raw = data::generate_raw_dataset(10, vel_cfg, acq, rng);

  const data::ScaleTarget target;
  const data::DSampleScaler dsample(target);
  const data::ForwardModelScaler qdfw(target);
  data::CnnScalerConfig ccfg;
  ccfg.epochs = 80;
  Rng cnn_rng(12);
  std::printf("training the Q-D-CNN compressor (LeNet-like, Sec. 3.1.2)...\n");
  const data::CnnScaler qdcnn = data::train_cnn_scaler(cnn_raw, target, ccfg, cnn_rng);

  data::ExperimentData data;
  data.dsample = dsample.scale_dataset(raw, data::ScaleTarget{});
  data.qdfw = qdfw.scale_dataset(raw, data::ScaleTarget{});
  data.qdcnn = qdcnn.scale_dataset(raw, data::ScaleTarget{});
  data.train_count = 24;

  core::TrainConfig tc;
  tc.epochs = 60;

  std::printf("\ntraining Q-M-LY on each scaled dataset...\n\n");
  std::printf("%-10s | %-8s | %-10s\n", "Scaler", "SSIM", "MSE");
  std::printf("-----------+----------+-----------\n");
  for (const char* name : {"D-Sample", "Q-D-FW", "Q-D-CNN"}) {
    core::ExperimentSpec spec;
    spec.dataset = name;
    spec.decoder = core::DecoderKind::kLayer;
    const auto r = run_vqc_experiment(data, spec, tc);
    std::printf("%-10s | %8.4f | %10.3e\n", name, r.train.final_ssim,
                r.train.final_mse);
  }

  // Render one inversion result for the physics-guided pipeline.
  core::ModelConfig mc;
  mc.decoder = core::DecoderKind::kLayer;
  Rng init(42);
  core::QuGeoModel model(mc, init);
  (void)train_model(model, data.qdfw, data.split(), tc);
  const auto& sample = data.qdfw.samples[26];
  const data::ScaledSample* chunk[] = {&sample};
  const auto pred = model.predict(chunk)[0];

  std::printf("\nheld-out sample, Q-D-FW + Q-M-LY:\n\n");
  render_map("  ground-truth velocity map (8x8):", sample.velocity);
  std::printf("\n");
  render_map("  inverted velocity map:", pred);
  metrics::SsimOptions opts;
  opts.data_range = 1.0;
  std::printf("\n  sample SSIM: %.4f\n",
              metrics::ssim(pred, sample.velocity, 8, 8, opts));
  return 0;
}
