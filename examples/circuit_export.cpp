// Circuit export: inspect the QuGeoVQC as OpenQASM 2.0 — the encoder
// state-preparation synthesis (uniformly controlled RY rotations) and the
// trained U3+CU3 ansatz — plus depth/size statistics for a hardware-budget
// discussion. The exported text is parsed back with from_qasm and checked
// for a faithful round trip, and the backend canonicalization pass
// (single-qubit run fusion) is reported alongside the peephole stats.
//
// Run:  ./circuit_export [output.qasm]
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/ansatz.h"
#include "core/encoder.h"
#include "qsim/optimizer.h"
#include "qsim/qasm.h"

int main(int argc, char** argv) {
  using namespace qugeo;
  std::printf("QuGeoVQC circuit export\n\n");

  const core::QubitLayout layout({8}, 0);
  core::AnsatzConfig acfg;  // 12 blocks = the paper's 576-parameter model
  const qsim::Circuit ansatz = build_qugeo_ansatz(layout, acfg);

  Rng rng(5);
  std::vector<Real> params(ansatz.num_params());
  rng.fill_uniform(params, -kPi, kPi);

  // Encoder synthesis for one (random) waveform.
  std::vector<Real> waveform(256);
  rng.fill_uniform(waveform, -1, 1);
  const core::StEncoder encoder(layout);
  const std::vector<Real>* batch[] = {&waveform};
  const qsim::Circuit prep = encoder.prep_circuit(batch);

  std::printf("%-22s | %-7s | %-7s | %-7s | %-7s\n", "circuit", "qubits",
              "ops", "2q-ops", "depth");
  std::printf("-----------------------+---------+---------+---------+--------\n");
  std::printf("%-22s | %7zu | %7zu | %7zu | %7zu\n", "ST-Encoder (synth)",
              prep.num_qubits(), prep.num_ops(), prep.two_qubit_op_count(),
              prep.depth());
  std::printf("%-22s | %7zu | %7zu | %7zu | %7zu\n", "QuGeoVQC ansatz",
              ansatz.num_qubits(), ansatz.num_ops(),
              ansatz.two_qubit_op_count(), ansatz.depth());

  qsim::Circuit raw_full(layout.total_qubits());
  raw_full.append(prep);
  const std::uint32_t offset = raw_full.append(ansatz);
  std::vector<Real> full_params(raw_full.num_params(), 0);
  for (std::size_t i = 0; i < params.size(); ++i)
    full_params[offset + i] = params[i];
  std::printf("%-22s | %7zu | %7zu | %7zu | %7zu\n", "encoder + ansatz",
              raw_full.num_qubits(), raw_full.num_ops(),
              raw_full.two_qubit_op_count(), raw_full.depth());

  // Peephole optimization before export (cancels the synthesis artifacts —
  // identity rotations and adjacent CX pairs from the UCRY decomposition).
  qsim::OptimizeStats ostats;
  const qsim::Circuit full = qsim::optimize_circuit(raw_full, {}, &ostats);
  std::printf("%-22s | %7zu | %7zu | %7zu | %7zu   (-%zu ops: %zu pairs, %zu "
              "fused, %zu identities)\n",
              "  after peephole opt", full.num_qubits(), full.num_ops(),
              full.two_qubit_op_count(), full.depth(),
              ostats.ops_before - ostats.ops_after, ostats.cancelled_pairs,
              ostats.fused_rotations, ostats.dropped_identities);

  // What the backends actually execute: literal 1q runs fused to single
  // U3/Phase gates (the synthesis emits many adjacent literal rotations).
  qsim::FuseStats fstats;
  const qsim::Circuit canon = qsim::fuse_gate_runs(full, &fstats);
  std::printf("%-22s | %7zu | %7zu | %7zu | %7zu   (%zu u3 runs, %zu "
              "diagonal runs)\n",
              "  backend canonical", canon.num_qubits(), canon.num_ops(),
              canon.two_qubit_op_count(), canon.depth(), fstats.fused_runs,
              fstats.merged_diagonal_runs);

  const std::string qasm = qsim::to_qasm(full, full_params);
  // Round trip: the export dialect must read back op-for-op.
  const qsim::Circuit reparsed = qsim::from_qasm(qasm);
  std::printf("\nround trip: re-parsed %zu ops on %zu qubits (%s)\n",
              reparsed.num_ops(), reparsed.num_qubits(),
              qsim::to_qasm(reparsed, {}) == qasm ? "faithful" : "MISMATCH");

  const char* path = argc > 1 ? argv[1] : "qugeo_vqc.qasm";
  std::ofstream(path) << qasm;
  std::printf("\nwrote %zu QASM lines to %s\n",
              static_cast<std::size_t>(
                  std::count(qasm.begin(), qasm.end(), '\n')),
              path);
  std::printf("first lines:\n");
  std::size_t shown = 0;
  for (std::size_t pos = 0; pos < qasm.size() && shown < 8; ++shown) {
    const std::size_t next = qasm.find('\n', pos);
    std::printf("  %.*s\n", static_cast<int>(next - pos), qasm.c_str() + pos);
    pos = next + 1;
  }
  return 0;
}
