// QuBatch demo (Sec. 3.3): process 2^N seismic samples in ONE circuit
// execution using only N extra qubits, and verify the block-diagonal
// U (x) I structure gives each sample exactly the result it would get
// alone (up to the joint-normalization precision cost the paper analyzes).
//
// Run:  ./qubatch_parallel
#include <cmath>
#include <cstdio>

#include "core/ansatz.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "qsim/executor.h"

int main() {
  using namespace qugeo;
  std::printf("QuBatch: SIMD on a quantum circuit\n\n");

  Rng rng(3);
  std::vector<std::vector<Real>> samples(4, std::vector<Real>(256));
  for (auto& s : samples) rng.fill_uniform(s, -1, 1);

  // Reference: each sample alone on the plain 8-qubit model.
  const core::QubitLayout plain({8}, 0);
  core::AnsatzConfig acfg;
  const qsim::Circuit circuit_plain = build_qugeo_ansatz(plain, acfg);
  std::vector<Real> params(circuit_plain.num_params());
  rng.fill_uniform(params, -1, 1);

  const core::StEncoder enc_plain(plain);
  const core::LayerDecoder dec_plain(plain, plain.data_qubits(), 8, 8);
  std::vector<std::vector<Real>> solo(4);
  for (int i = 0; i < 4; ++i) {
    qsim::StateVector psi = enc_plain.encode_single(samples[i]);
    qsim::run_circuit(circuit_plain, params, psi);
    solo[static_cast<std::size_t>(i)] = dec_plain.decode(psi).predictions[0];
  }

  std::printf("%-8s | %-7s | %-7s | %-9s | %s\n", "batch", "qubits", "extra",
              "circuits", "max |batched - solo|");
  std::printf("---------+---------+---------+-----------+---------------------\n");
  for (Index blog : {Index{0}, Index{1}, Index{2}}) {
    const core::QubitLayout lay({8}, blog);
    const qsim::Circuit circuit = build_qugeo_ansatz(lay, acfg);  // same params
    const core::StEncoder enc(lay);
    const core::LayerDecoder dec(lay, lay.data_qubits(), 8, 8);

    const std::size_t bs = lay.batch_size();
    Real max_err = 0;
    std::size_t circuits = 0;
    for (std::size_t pos = 0; pos < 4; pos += bs, ++circuits) {
      std::vector<const std::vector<Real>*> batch;
      for (std::size_t b = 0; b < bs; ++b) batch.push_back(&samples[pos + b]);
      qsim::StateVector psi = enc.encode(batch);
      qsim::run_circuit(circuit, params, psi);
      const core::DecodeResult r = dec.decode(psi);
      for (std::size_t b = 0; b < bs; ++b)
        for (std::size_t k = 0; k < 64; ++k)
          max_err = std::max(max_err,
                             std::abs(r.predictions[b][k] - solo[pos + b][k]));
    }
    std::printf("%-8zu | %-7zu | %-7zu | %-9zu | %.3e\n", bs,
                lay.total_qubits(), static_cast<std::size_t>(blog), circuits,
                max_err);
  }

  std::printf("\nThe conditional readout reproduces each sample's solo result "
              "to machine precision here — on hardware the cost is shot noise "
              "on the renormalized blocks, the 'data precision' tradeoff of "
              "Sec. 3.3.3.\n");

  // Complexity table of Sec. 3.3.3: O(G log^2 B X) vs O(B X).
  std::printf("\ncircuit-resource view (G=1 group):\n");
  std::printf("%-8s | %-14s | %-16s\n", "batch B", "qubits (8+logB)",
              "executions saved");
  for (Index blog : {Index{0}, Index{1}, Index{2}, Index{3}, Index{4}}) {
    const std::size_t B = std::size_t{1} << blog;
    std::printf("%-8zu | %-14zu | %zux -> 1x\n", B,
                8 + static_cast<std::size_t>(blog), B);
  }
  return 0;
}
