// Wavefield explorer: watch the acoustic wave equation (Eq. 1) propagate
// through a layered medium — the physics behind every sample in the
// dataset. Renders ASCII snapshots of the pressure field and the recorded
// shot gather, and demonstrates the 15 Hz vs 8 Hz source-wavelet choice of
// QuGeoData.
//
// Run:  ./wavefield_explorer
#include <cmath>
#include <cstdio>

#include "seismic/forward_modeling.h"

namespace {

using namespace qugeo;

void render_field(const std::vector<Real>& field, std::size_t nz,
                  std::size_t nx, std::size_t step) {
  Real peak = 1e-30;
  for (Real v : field) peak = std::max(peak, std::abs(v));
  std::printf("  t = step %zu (peak %.2e)\n", step, peak);
  static const char ramp[] = " .:-=+*#%@";
  for (std::size_t iz = 0; iz < nz; iz += 2) {
    std::printf("    ");
    for (std::size_t ix = 0; ix < nx; ix += 1) {
      const Real v = std::abs(field[iz * nx + ix]) / peak;
      const int idx = static_cast<int>(std::sqrt(v) * 9.999);
      std::printf("%c", ramp[idx > 9 ? 9 : idx]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("QuGeo wavefield explorer\n\n");

  // A three-layer medium: slow cap rock over faster basement.
  seismic::Grid2D grid{60, 60, 10, 10};
  seismic::VelocityModel model(grid, 1800.0);
  for (std::size_t iz = 25; iz < 45; ++iz)
    for (std::size_t ix = 0; ix < 60; ++ix) model.at(iz, ix) = 2800.0;
  for (std::size_t iz = 45; iz < 60; ++iz)
    for (std::size_t ix = 0; ix < 60; ++ix) model.at(iz, ix) = 4000.0;

  seismic::FdtdConfig cfg;
  cfg.space_order = 4;
  cfg.dt = 0.8 * seismic::max_stable_dt(model, cfg.space_order);
  cfg.nt = 500;
  const seismic::RickerWavelet w(15.0);

  std::printf("propagating a 15 Hz Ricker shot (layers at 250 m and 450 m):\n\n");
  const auto frames =
      seismic::simulate_wavefield(model, {0, 30}, w, cfg, {120, 240, 400});
  const std::size_t steps[] = {120, 240, 400};
  for (std::size_t f = 0; f < frames.size(); ++f) {
    render_field(frames[f], 60, 60, steps[f]);
    std::printf("\n");
  }

  // Shot gather at two source frequencies: the QuGeoData adjustment.
  std::printf("recorded traces at receiver x=500m (note the wider 8 Hz lobe "
              "that survives coarse resampling):\n\n");
  seismic::ReceiverLine rec;
  rec.iz = 0;
  rec.ix = {50};
  for (const Real freq : {15.0, 8.0}) {
    const seismic::RickerWavelet wf(freq);
    const auto g = seismic::simulate_shot(model, {0, 30}, wf, rec, cfg);
    Real peak = 1e-30;
    for (std::size_t t = 0; t < g.nt(); ++t)
      peak = std::max(peak, std::abs(g.at(t, 0)));
    std::printf("  %4.0f Hz: ", freq);
    for (std::size_t t = 0; t < g.nt(); t += 10) {
      const Real v = g.at(t, 0) / peak;
      std::printf("%c", v > 0.3 ? '^' : (v < -0.3 ? 'v' : '-'));
    }
    std::printf("\n");
  }
  std::printf("\nEq. 1 in action: this forward model is exactly what Q-D-FW "
              "re-runs at 8x8 to build physics-coherent quantum data.\n");
  return 0;
}
