// CurveVel extension (Sec. 3.2.3): the layer-wise decoder generalizes to
// non-flat subsurfaces — media between curved interfaces share a velocity,
// so one value per row is still a good prior as long as interface
// undulation is mild. This example builds a curved-layer corpus with the
// same acquisition, trains Q-M-LY on it, and compares against the flat
// corpus to show where the flat-layer prior starts to pay a price.
//
// Run:  ./curvevel_inversion
#include <cstdio>

#include "core/experiment.h"

namespace {

using namespace qugeo;

data::ExperimentData build_corpus(bool curved, std::size_t n, Rng& rng) {
  const seismic::Acquisition acq = seismic::openfwi_acquisition();
  data::RawDataset raw;
  raw.acquisition = acq;
  raw.samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    data::RawSample s{curved ? seismic::generate_curvevel({}, rng)
                             : seismic::generate_flatvel({}, rng),
                      {}};
    s.seismic = seismic::model_shots(s.velocity, acq);
    raw.samples.push_back(std::move(s));
  }
  const data::ForwardModelScaler scaler;
  data::ExperimentData d;
  d.qdfw = scaler.scale_dataset(raw, data::ScaleTarget{});
  d.dsample = d.qdcnn = d.qdfw;
  d.train_count = n * 3 / 4;
  return d;
}

}  // namespace

int main() {
  std::printf("QuGeo on curved geology (Sec. 3.2.3 generalization)\n\n");
  std::printf("building flat and curved corpora (28 samples each)...\n");
  Rng rng(31);
  const data::ExperimentData flat = build_corpus(false, 28, rng);
  const data::ExperimentData curved = build_corpus(true, 28, rng);

  core::TrainConfig tc;
  tc.epochs = 60;
  core::ExperimentSpec spec;
  spec.dataset = "Q-D-FW";
  spec.decoder = core::DecoderKind::kLayer;

  std::printf("training Q-M-LY on each...\n\n");
  const auto r_flat = run_vqc_experiment(flat, spec, tc);
  const auto r_curved = run_vqc_experiment(curved, spec, tc);

  std::printf("%-22s | %-8s | %-10s\n", "Geology", "SSIM", "MSE");
  std::printf("-----------------------+----------+-----------\n");
  std::printf("%-22s | %8.4f | %10.3e\n", "flat layers (FlatVel)",
              r_flat.train.final_ssim, r_flat.train.final_mse);
  std::printf("%-22s | %8.4f | %10.3e\n", "curved layers (CurveVel)",
              r_curved.train.final_ssim, r_curved.train.final_mse);

  std::printf("\nThe row-wise decoder tolerates mild curvature (media between "
              "curves share velocity); stronger undulation would need the "
              "multi-variable curve predictor the paper sketches as future "
              "work.\n");
  return 0;
}
