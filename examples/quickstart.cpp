// Quickstart: the whole QuGeo pipeline in ~60 lines.
//
//   1. synthesize a flat-layer subsurface and model its seismic response,
//   2. scale it to quantum size with the physics-guided Q-D-FW scaler,
//   3. train the 576-parameter Q-M-LY variational circuit,
//   4. invert a held-out shot gather back into a velocity map.
//
// Run:  ./quickstart
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/cpu_features.h"
#include "core/experiment.h"
#include "qsim/batched_executor.h"
#include "qsim/batched_statevector.h"
#include "qsim/executor.h"
#include "qsim/optimizer.h"

int main() {
  using namespace qugeo;
  std::printf("QuGeo quickstart: quantum full-waveform inversion\n\n");

  // 1. A small synthetic FlatVel-A-style corpus (keep it quick: 24 samples).
  Rng rng(7);
  seismic::FlatVelConfig vel_cfg;
  seismic::Acquisition acq = seismic::openfwi_acquisition();
  std::printf("[1/4] generating 24 samples (70x70 maps, 5x1000x70 gathers)...\n");
  const data::RawDataset raw = data::generate_raw_dataset(24, vel_cfg, acq, rng);

  // 2. Physics-guided scaling to 256-value waveforms and 8x8 maps.
  std::printf("[2/4] physics-guided scaling (Q-D-FW, 8 Hz re-modelling)...\n");
  const data::ForwardModelScaler scaler;
  data::ExperimentData data;
  data.qdfw = scaler.scale_dataset(raw, data::ScaleTarget{});
  data.dsample = data.qdcnn = data.qdfw;
  data.train_count = 18;

  // 3. Train the headline VQC: 8 qubits, 12 U3+CU3 blocks, layer decoder.
  std::printf("[3/4] training Q-M-LY (576 parameters, Adam + cosine)...\n");
  core::ExperimentSpec spec;
  spec.dataset = "Q-D-FW";
  spec.decoder = core::DecoderKind::kLayer;
  core::TrainConfig tc;
  tc.epochs = 60;
  const core::ExperimentResult result =
      run_vqc_experiment(data, spec, tc);
  std::printf("      trained: test SSIM %.4f, MSE %.3e (%zu parameters)\n",
              result.train.final_ssim, result.train.final_mse,
              result.param_count);

  // 4. Invert one held-out sample and show the velocity profile.
  std::printf("[4/4] inverting a held-out gather:\n\n");
  core::ModelConfig mc;
  mc.decoder = spec.decoder;
  Rng init(spec.init_seed);
  core::QuGeoModel model(mc, init);
  (void)train_model(model, data.qdfw, data.split(), tc);

  const auto& sample = data.qdfw.samples[20];
  const data::ScaledSample* chunk[] = {&sample};
  const auto pred = model.predict(chunk)[0];

  std::printf("  depth | truth (km/s) | predicted (km/s)\n");
  std::printf("  ------+--------------+-----------------\n");
  for (std::size_t row = 0; row < 8; ++row) {
    const Real truth = data::denormalize_velocity(sample.velocity[row * 8]) / 1000;
    const Real guess = data::denormalize_velocity(pred[row * 8]) / 1000;
    std::printf("  %4zu m | %12.2f | %16.2f\n", row * 88, truth, guess);
  }
  // Bonus: the same prediction under a hardware-realistic readout — a
  // 4096-shot measurement budget with 2% readout error, selected purely
  // through ExecutionConfig (the ShotBackend wraps the statevector).
  qsim::ExecutionConfig hw = model.execution_config();
  hw.shots = 4096;
  hw.noise.readout_error = 0.02;
  model.set_execution_config(hw);
  const auto pred_hw = model.predict(chunk)[0];
  Real drift = 0;
  for (std::size_t k = 0; k < pred.size(); ++k)
    drift += std::abs(pred_hw[k] - pred[k]);
  std::printf("\n  4096-shot readout (2%% readout error): mean |drift| %.4f "
              "per pixel\n",
              drift / static_cast<Real>(pred.size()));

  // Bonus: two-qubit run fusion on the deployed circuit. Freezing the
  // trained angles into literals lets canonicalize_for_backend collapse the
  // U3+CU3 structure into block-diagonal / dense fused kernels; the timing
  // line below makes the docs' speedup claim reproducible from here.
  {
    const auto params = model.parameters();
    const qsim::Circuit frozen = qsim::bind_parameters(
        model.ansatz(),
        std::span<const Real>(params).first(model.num_quantum_params()));
    const qsim::Circuit fused = qsim::canonicalize_for_backend(frozen);
    const auto time_forward = [&](const qsim::Circuit& circ) {
      using clock = std::chrono::steady_clock;
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = clock::now();
        for (int it = 0; it < 20; ++it) {
          qsim::StateVector psi(circ.num_qubits());
          qsim::run_circuit(circ, {}, psi);
        }
        const std::chrono::duration<double, std::milli> dt = clock::now() - t0;
        best = std::min(best, dt.count() / 20);
      }
      return best;
    };
    const double off_ms = time_forward(frozen);
    const double on_ms = time_forward(fused);
    std::printf("\n  frozen-ansatz forward, fusion off %zu ops %.3f ms | "
                "fusion on %zu ops %.3f ms (%.2fx)\n",
                frozen.num_ops(), off_ms, fused.num_ops(), on_ms,
                off_ms / on_ms);

    // ...and the two layers underneath it (docs/ARCHITECTURE.md, "SIMD &
    // batching"): the same fused forward on the scalar reference kernels
    // vs the auto-dispatched ones, then 8 states swept by one batched
    // (SoA) pass vs 8 sequential scalar single-state forwards.
    const double scalar_ms = [&] {
      simd::ScopedSimdMode scoped(simd::SimdMode::kScalar);
      return time_forward(fused);
    }();
    const double auto_ms = time_forward(fused);  // process-default dispatch
    constexpr std::size_t kLanes = 8;
    const double batched_ms = [&] {
      using clock = std::chrono::steady_clock;
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = clock::now();
        for (int it = 0; it < 20; ++it) {
          qsim::BatchedStateVector batch(fused.num_qubits(), kLanes);
          qsim::run_circuit_batched(fused, {}, batch);
        }
        const std::chrono::duration<double, std::milli> dt = clock::now() - t0;
        best = std::min(best, dt.count() / 20);
      }
      return best / static_cast<double>(kLanes);  // per state
    }();
    std::printf("  kernels: scalar %.3f ms | %s %.3f ms (%.2fx) | "
                "batched x%zu %.3f ms/state (%.2fx vs scalar)\n",
                scalar_ms,
                simd::simd_level_name(simd::active_level()).data(), auto_ms,
                scalar_ms / auto_ms, kLanes, batched_ms,
                scalar_ms / batched_ms);
  }

  std::printf("\nDone. Next: examples/fwi_inversion for the full comparison, "
              "bench/ for every paper table and figure.\n");
  return 0;
}
