// Fixture micro-bench: includes the JSON-merging main and is named in the
// fixture CI workflow.
#include "bench_micro_main.h"
