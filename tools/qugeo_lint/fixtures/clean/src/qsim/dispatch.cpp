// Fixture: a clean tree. Exhaustive dispatch, a throwing default at a
// second site, a documented env var, and seeded randomness only.
#include <cstdlib>
#include <stdexcept>

#include "gate.h"

namespace qugeo::qsim {

int arity(GateKind kind) {
  switch (kind) {
    case GateKind::kAlpha:
      return 1;
    case GateKind::kBeta:
    case GateKind::kGamma:
      return 2;
  }
  return 0;
}

int rejecting(GateKind kind) {
  switch (kind) {
    case GateKind::kAlpha:
      return 1;
    default:
      throw std::invalid_argument("rejecting: unsupported kind");
  }
}

const char* demo_env() { return std::getenv("QUGEO_DEMO"); }

namespace fault {
void site(const char*);
}

void covered_site() { fault::site("demo.clean"); }

}  // namespace qugeo::qsim
