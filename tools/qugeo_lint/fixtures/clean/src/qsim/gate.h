// Fixture: minimal GateKind enum for qugeo_lint's own tests.
#pragma once

namespace qugeo::qsim {

enum class GateKind {
  kAlpha,
  kBeta,
  kGamma,
};

}  // namespace qugeo::qsim
