// Fixture test: covers the clean tree's one registered fault site.
int main() {
  const char* spec = "demo.clean";
  return spec == nullptr;
}
