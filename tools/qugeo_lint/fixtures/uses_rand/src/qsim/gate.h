// Fixture: no GateKind switches here; the determinism check is the target.
#pragma once

namespace qugeo::qsim {

enum class GateKind {
  kAlpha,
};

}  // namespace qugeo::qsim
