// Fixture: MUST FAIL determinism — std::rand() and time() in src/.
// The commented-out call and the string below must NOT trip the check,
// and the waived line must pass.
#include <cstdlib>
#include <ctime>

namespace qugeo {

// std::rand() in a comment is fine.
const char* label() { return "call rand() for chaos"; }  // string is fine

double noisy() {
  return static_cast<double>(std::rand()) / RAND_MAX;
}

long stamp() { return time(nullptr); }

long waived_stamp() {
  return time(nullptr);  // qugeo-lint: allow-nondeterminism(fixture waiver)
}

}  // namespace qugeo
