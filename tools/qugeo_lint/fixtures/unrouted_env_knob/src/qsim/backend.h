// Fixture for check 7 (execution-config-env): every ExecutionConfig
// field needs a strict QUGEO_* override routed through
// apply_env_overrides and a docs env-table row, unless waived.
#pragma once

#include <cstddef>

struct ExecutionConfig {
  /// Routed strictly and documented: clean.
  std::size_t alpha = 1;
  /// Never assigned in apply_env_overrides: the unrouted-knob violation.
  std::size_t beta = 2;
  /// qugeo-lint: no-env(derived at runtime; a text override would lie).
  std::size_t gamma = 3;
  /// Routed through a lenient C parser: the lenient-parser violation.
  std::size_t delta = 4;
  /// Routed strictly but missing its docs row: the undocumented violation.
  std::size_t echo = 5;
};

ExecutionConfig apply_env_overrides(ExecutionConfig base);
