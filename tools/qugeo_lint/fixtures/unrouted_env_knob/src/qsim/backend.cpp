#include "backend.h"

#include <cstdlib>
#include <stdexcept>

ExecutionConfig apply_env_overrides(ExecutionConfig base) {
  if (const char* v = std::getenv("QUGEO_ALPHA")) {
    if (*v < '0' || *v > '9') throw std::invalid_argument("QUGEO_ALPHA");
    base.alpha = static_cast<std::size_t>(*v - '0');
  }
  if (const char* v = std::getenv("QUGEO_DELTA"))
    base.delta = std::strtoul(v, nullptr, 10);
  if (const char* v = std::getenv("QUGEO_ECHO")) {
    if (*v < '0' || *v > '9') throw std::invalid_argument("QUGEO_ECHO");
    base.echo = static_cast<std::size_t>(*v - '0');
  }
  return base;
}
