// Fixture: MUST FAIL env-var-docs — QUGEO_SECRET is read here but absent
// from the docs table (and the table's QUGEO_GHOST has no reader).
#include <cstdlib>

namespace qugeo {

const char* secret() { return std::getenv("QUGEO_SECRET"); }

}  // namespace qugeo
