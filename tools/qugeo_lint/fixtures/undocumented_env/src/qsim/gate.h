// Fixture: no GateKind switches here; the env check is the target.
#pragma once

namespace qugeo::qsim {

enum class GateKind {
  kAlpha,
};

}  // namespace qugeo::qsim
