// Fixture test: exercises apply_covered_avx2 only.
void apply_covered_avx2(double* data, unsigned long n);

int main() {
  double x[4] = {};
  apply_covered_avx2(x, 4);
  return x[0] != 0.0;
}
