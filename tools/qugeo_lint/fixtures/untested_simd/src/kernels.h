// Fixture: two AVX2 kernel entry points declared in this header, one
// covered by the fixture's test tree, one covered by nothing (the check
// must flag it once). TU-local helper names in kernels.cpp must not count.
#pragma once

void apply_covered_avx2(double* data, unsigned long n);
void apply_untested_avx2(double* data, unsigned long n);
// void apply_commented_avx2(double* data, unsigned long n); not dispatched
