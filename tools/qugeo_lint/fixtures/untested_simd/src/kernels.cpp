// Fixture TU: .cpp-local *_avx2 helpers (the dispatch guard, the
// no-AVX2 stub) are not entry points and must not be reported.
#include "kernels.h"

static bool use_avx2() { return false; }
static void helper_only_avx2(double*) {}

void run(double* data, unsigned long n) {
  if (use_avx2()) helper_only_avx2(data);
  apply_covered_avx2(data, n);
  apply_untested_avx2(data, n);
  const char* msg = "error in some_stringonly_avx2(...) path";
  (void)msg;
}
