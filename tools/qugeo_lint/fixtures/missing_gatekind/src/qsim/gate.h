// Fixture: enum for the missing-case negative test.
#pragma once

namespace qugeo::qsim {

enum class GateKind {
  kAlpha,
  kBeta,
  kGamma,
};

}  // namespace qugeo::qsim
