// Fixture: MUST FAIL gatekind-dispatch — kGamma is not handled and there
// is no rejecting default. A second switch drifts through a silent
// catch-all, which must fail too.
#include "gate.h"

namespace qugeo::qsim {

int arity(GateKind kind) {
  switch (kind) {
    case GateKind::kAlpha:
      return 1;
    case GateKind::kBeta:
      return 2;
  }
  return 0;
}

int silent_default(GateKind kind) {
  switch (kind) {
    case GateKind::kAlpha:
      return 1;
    default:
      return 0;
  }
}

}  // namespace qugeo::qsim
