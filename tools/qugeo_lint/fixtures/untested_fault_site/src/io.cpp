// Fixture: two registered fault sites, one covered by the fixture's test
// and docs, one covered by neither (the check must flag it twice).
namespace fault {
void site(const char*);
}

void write_things() {
  fault::site("demo.covered");
  fault::site("demo.untested");
  // fault::site("demo.commented-out") must not count as registered.
}
