// Fixture test: injects into demo.covered only.
int main() {
  const char* spec = "demo.covered";
  return spec == nullptr;
}
