// qugeo_lint: repo-specific invariant checker.
//
// Generic tooling (compiler warnings, clang-tidy, sanitizers) cannot know
// the conventions this codebase depends on. qugeo_lint enforces the seven
// that have historically drifted or would fail silently:
//
//  1. GateKind dispatch exhaustiveness — every `switch` over GateKind in
//     src/ must either enumerate every enumerator explicitly (so -Wswitch
//     guards it too) or reject the remainder loudly: a `default:` is only
//     legal when its body throws / calls a fail helper, or when it carries
//     a `qugeo-lint: safe-default(<reason>)` comment.
//  2. Environment-variable documentation — the set of `QUGEO_*` names
//     appearing in string literals under src/ and bench/ must exactly
//     match the env table in docs/ARCHITECTURE.md, in both directions.
//  3. Micro-bench registration — every bench/bench_micro_*.cpp must
//     include bench_micro_main.h (the main() that merges its numbers into
//     BENCH_micro.json) and be named in .github/workflows/ci.yml so the
//     perf-smoke job actually runs it.
//  4. Determinism — src/ must not call std::rand/srand/time()/clock()/
//     std::random_device (seeded qugeo::Rng streams only); a line may opt
//     out with a `qugeo-lint: allow-nondeterminism(<reason>)` comment.
//  5. Fault-site coverage — every `fault::site("<name>")` registered in
//     src/ must be exercised by at least one test under tests/ (the quoted
//     name appears there) and listed in the docs/ARCHITECTURE.md fault-site
//     registry; an injection point nobody injects into is dead robustness
//     code.
//  6. SIMD scalar equivalence — every `*_avx2(` kernel entry point
//     declared in a src/ header must appear in at least one test under
//     tests/: the AVX2
//     kernels carry a <= 1e-12-per-amplitude contract against their scalar
//     twins, and a vector kernel nobody compares is a silent-corruption
//     risk on the exact hardware CI does not cover.
//  7. ExecutionConfig env routing — every field of `struct
//     ExecutionConfig` (src/qsim/backend.h) must be assigned
//     (`base.<field>`) inside apply_env_overrides in backend.cpp, have a
//     matching `QUGEO_<FIELD>` (or `QUGEO_<FIELD>_*`) row in the
//     docs/ARCHITECTURE.md environment table, and never be parsed with a
//     lenient C parser (strtoul/atoi/...) — the throwing common/env.h
//     parsers only. A field may opt out with a `qugeo-lint:
//     no-env(<reason>)` comment on its declaration or doc comment. A
//     config knob without an env override cannot be flipped in CI legs or
//     prod smoke runs, which is how ablation coverage silently rots.
//
// Exposed as a library so the fixture-based tests (tests/
// test_qugeo_lint.cpp) can run each check against known-bad trees; the
// main() in main.cpp runs all checks against a real repo root and is
// registered in CTest and CI.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace qugeo::lint {

/// One rule violation: `rule` is the stable check name, `where` a
/// file[:line] location, `message` the human-readable finding.
struct Violation {
  std::string rule;
  std::string where;
  std::string message;
};

/// Formats as "rule: where: message" (the line format main() prints).
[[nodiscard]] std::string to_string(const Violation& v);

/// Check 1: GateKind switch exhaustiveness / explicit rejection.
[[nodiscard]] std::vector<Violation> check_gatekind_dispatch(
    const std::filesystem::path& repo_root);

/// Check 2: QUGEO_* env vars in source vs the docs/ARCHITECTURE.md table.
[[nodiscard]] std::vector<Violation> check_env_var_docs(
    const std::filesystem::path& repo_root);

/// Check 3: bench_micro_* harness registration (JSON merge + CI).
[[nodiscard]] std::vector<Violation> check_bench_micro_registration(
    const std::filesystem::path& repo_root);

/// Check 4: nondeterminism sources in src/.
[[nodiscard]] std::vector<Violation> check_determinism(
    const std::filesystem::path& repo_root);

/// Check 5: every fault::site("...") in src/ is covered by a test and
/// documented in the ARCHITECTURE.md fault-site registry.
[[nodiscard]] std::vector<Violation> check_fault_site_coverage(
    const std::filesystem::path& repo_root);

/// Check 6: every *_avx2( kernel declared in a src/ header has a
/// scalar-equivalence test under tests/ (the identifier appears there).
[[nodiscard]] std::vector<Violation> check_simd_scalar_equivalence(
    const std::filesystem::path& repo_root);

/// Check 7: every ExecutionConfig field is env-routed through
/// apply_env_overrides with a strict parser and documented in the
/// docs/ARCHITECTURE.md env table (or carries a no-env waiver).
[[nodiscard]] std::vector<Violation> check_execution_config_env(
    const std::filesystem::path& repo_root);

/// All checks in order; empty result means the tree is clean.
[[nodiscard]] std::vector<Violation> run_all_checks(
    const std::filesystem::path& repo_root);

}  // namespace qugeo::lint
