// qugeo_lint driver: `qugeo_lint <repo-root>` runs every repo invariant
// check and exits non-zero listing each violation. Registered in CTest
// (test name `qugeo_lint`) and the CI lint job.
#include <cstdio>
#include <filesystem>
#include <vector>

#include "qugeo_lint/lint.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: qugeo_lint <repo-root>\n");
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  if (!std::filesystem::exists(root / "src")) {
    std::fprintf(stderr, "qugeo_lint: '%s' has no src/ directory\n", argv[1]);
    return 2;
  }
  const std::vector<qugeo::lint::Violation> violations =
      qugeo::lint::run_all_checks(root);
  for (const auto& v : violations)
    std::fprintf(stderr, "%s\n", qugeo::lint::to_string(v).c_str());
  if (!violations.empty()) {
    std::fprintf(stderr, "qugeo_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  std::printf("qugeo_lint: clean\n");
  return 0;
}
