#include "qugeo_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <string_view>
#include <utility>

namespace qugeo::lint {
namespace fs = std::filesystem;
namespace {

// ---------------------------------------------------------------------------
// Small text helpers. The checks are textual by design: a full C++ parse
// would need a compiler library, and the invariants below are stable
// against formatting because the repo is clang-format'ed.
// ---------------------------------------------------------------------------

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Replaces // and /* */ comment bodies with spaces (newlines kept so
/// line numbers survive). String/char literal contents are blanked too,
/// EXCEPT when `keep_strings` — the env-var check reads literals.
std::string strip_comments(const std::string& src, bool keep_strings) {
  std::string out = src;
  enum class State { kCode, kLine, kBlock, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n')
          state = State::kCode;
        else
          out[i] = ' ';
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (!keep_strings) out[i] = ' ';
          if (i + 1 < out.size() && out[i + 1] != '\n') {
            if (!keep_strings) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (!keep_strings && c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
}

/// Every .h/.cpp under `dir`, sorted for deterministic output.
std::vector<fs::path> source_files(const fs::path& dir) {
  std::vector<fs::path> files;
  if (!fs::exists(dir)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string rel(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

/// Position just past the matching '}' for the '{' at `open` (which must
/// point at a '{'). Returns npos when unbalanced.
std::size_t match_brace(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Check 1: GateKind dispatch exhaustiveness
// ---------------------------------------------------------------------------

/// Enumerator names parsed from `enum class GateKind ... { ... };` in
/// src/qsim/gate.h.
std::vector<std::string> parse_gatekind_enum(const fs::path& gate_h) {
  std::vector<std::string> names;
  if (!fs::exists(gate_h)) return names;
  const std::string text = strip_comments(read_file(gate_h), false);
  const std::size_t decl = text.find("enum class GateKind");
  if (decl == std::string::npos) return names;
  const std::size_t open = text.find('{', decl);
  const std::size_t close = text.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return names;
  std::string body = text.substr(open + 1, close - open - 1);
  for (char& c : body)
    if (!is_ident(c)) c = ' ';
  std::istringstream tokens(body);
  for (std::string tok; tokens >> tok;) names.push_back(tok);
  return names;
}

std::vector<Violation> check_gatekind_dispatch_impl(const fs::path& root) {
  std::vector<Violation> out;
  const fs::path gate_h = root / "src" / "qsim" / "gate.h";
  const std::vector<std::string> enumerators = parse_gatekind_enum(gate_h);
  if (enumerators.empty()) return out;  // tree without the enum: nothing to do

  for (const fs::path& file : source_files(root / "src")) {
    const std::string raw = read_file(file);
    // Comments stripped for structure, raw kept for the safe-default
    // marker (which lives in a comment).
    const std::string text = strip_comments(raw, false);
    std::size_t pos = 0;
    while ((pos = text.find("switch", pos)) != std::string::npos) {
      // Token check: not "switch" inside an identifier.
      const bool lead_ok = pos == 0 || !is_ident(text[pos - 1]);
      const std::size_t after = pos + 6;
      if (!lead_ok || (after < text.size() && is_ident(text[after]))) {
        pos = after;
        continue;
      }
      const std::size_t open = text.find('{', pos);
      if (open == std::string::npos) break;
      const std::size_t end = match_brace(text, open);
      if (end == std::string::npos) break;
      const std::string body = text.substr(open, end - open);
      if (body.find("case GateKind::") == std::string::npos &&
          body.find("case qsim::GateKind::") == std::string::npos) {
        pos = after;  // nested switches over other types are re-scanned
        continue;
      }
      const std::size_t line = line_of(text, pos);
      const std::string where = rel(file, root) + ":" + std::to_string(line);

      const std::size_t dflt = body.find("default:");
      if (dflt != std::string::npos) {
        // Silent defaults are the drift this check exists for: a new
        // enumerator must not fall into a catch-all. Accept a default
        // only when the remainder of the switch rejects loudly, or when
        // the author opted out with an explicit reason in the raw text.
        const std::string tail = body.substr(dflt);
        const std::string raw_body = raw.substr(open, end - open);
        const bool rejects = tail.find("throw") != std::string::npos ||
                             tail.find("fail(") != std::string::npos;
        const bool waived =
            raw_body.find("qugeo-lint: safe-default(") != std::string::npos;
        if (!rejects && !waived)
          out.push_back({"gatekind-dispatch", where,
                         "switch over GateKind has a silent `default:`; "
                         "enumerate every kind, throw in the default, or "
                         "annotate `// qugeo-lint: safe-default(<reason>)`"});
        pos = end;
        continue;
      }
      // No default: every enumerator must appear as an explicit case (so
      // -Wswitch agrees and a new GateKind breaks the build here).
      for (const std::string& name : enumerators) {
        std::size_t at = 0;
        bool found = false;
        const std::string needle = "GateKind::" + name;
        while ((at = body.find(needle, at)) != std::string::npos) {
          const std::size_t past = at + needle.size();
          if (past >= body.size() || !is_ident(body[past])) {  // kI vs kInvalid
            found = true;
            break;
          }
          at = past;
        }
        if (!found)
          out.push_back({"gatekind-dispatch", where,
                         "switch over GateKind does not handle GateKind::" +
                             name + " (and has no rejecting default)"});
      }
      pos = end;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Check 2: QUGEO_* env vars vs docs/ARCHITECTURE.md
// ---------------------------------------------------------------------------

/// QUGEO_* names appearing inside string literals in the given tree(s).
/// String literals are the reliable signal: every env read ultimately
/// names the variable as a C string ("QUGEO_THREADS"), while comments and
/// docs mention variables freely.
std::set<std::string> env_vars_in_sources(const fs::path& root,
                                          std::set<std::string>* build_opts) {
  std::set<std::string> vars;
  for (const fs::path& dir : {root / "src", root / "bench"}) {
    for (const fs::path& file : source_files(dir)) {
      const std::string text = strip_comments(read_file(file), true);
      std::size_t pos = 0;
      while ((pos = text.find("\"QUGEO_", pos)) != std::string::npos) {
        std::size_t end = pos + 1;
        while (end < text.size() && (is_ident(text[end]))) ++end;
        vars.insert(text.substr(pos + 1, end - pos - 1));
        pos = end;
      }
    }
  }
  // CMake option names are not env vars; they never collide today but the
  // caller may want to know what was excluded.
  if (build_opts) *build_opts = {};
  return vars;
}

/// Rows of the ARCHITECTURE.md env table: lines shaped `| `QUGEO_X` | ...`.
std::set<std::string> env_vars_in_docs(const fs::path& doc) {
  std::set<std::string> vars;
  if (!fs::exists(doc)) return vars;
  std::ifstream in(doc);
  for (std::string line; std::getline(in, line);) {
    std::size_t bar = line.find_first_not_of(" \t");
    if (bar == std::string::npos || line[bar] != '|') continue;
    const std::size_t tick = line.find('`', bar);
    if (tick == std::string::npos) continue;
    const std::size_t name_begin = tick + 1;
    if (line.compare(name_begin, 6, "QUGEO_") != 0) continue;
    std::size_t end = name_begin;
    while (end < line.size() && is_ident(line[end])) ++end;
    if (end < line.size() && line[end] == '`')
      vars.insert(line.substr(name_begin, end - name_begin));
  }
  return vars;
}

std::vector<Violation> check_env_var_docs_impl(const fs::path& root) {
  std::vector<Violation> out;
  const fs::path doc = root / "docs" / "ARCHITECTURE.md";
  const std::set<std::string> in_src = env_vars_in_sources(root, nullptr);
  const std::set<std::string> in_doc = env_vars_in_docs(doc);
  for (const std::string& var : in_src)
    if (!in_doc.count(var))
      out.push_back({"env-var-docs", rel(doc, root),
                     var + " is read in source but missing from the "
                           "docs/ARCHITECTURE.md environment table"});
  for (const std::string& var : in_doc)
    if (!in_src.count(var))
      out.push_back({"env-var-docs", rel(doc, root),
                     var + " is documented in the environment table but no "
                           "source string literal reads it"});
  return out;
}

// ---------------------------------------------------------------------------
// Check 3: bench_micro_* registration
// ---------------------------------------------------------------------------

std::vector<Violation> check_bench_micro_impl(const fs::path& root) {
  std::vector<Violation> out;
  const fs::path bench_dir = root / "bench";
  if (!fs::exists(bench_dir)) return out;
  const fs::path ci = root / ".github" / "workflows" / "ci.yml";
  const std::string ci_text = fs::exists(ci) ? read_file(ci) : std::string();
  for (const auto& entry : fs::directory_iterator(bench_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("bench_micro_", 0) != 0 ||
        entry.path().extension() != ".cpp")
      continue;
    const std::string target = entry.path().stem().string();
    const std::string where = rel(entry.path(), root);
    if (read_file(entry.path()).find("bench_micro_main.h") == std::string::npos)
      out.push_back({"bench-micro-registration", where,
                     target + " does not include bench_micro_main.h, so its "
                              "numbers never merge into BENCH_micro.json"});
    if (ci_text.find(target) == std::string::npos)
      out.push_back({"bench-micro-registration", where,
                     target + " is not named in .github/workflows/ci.yml "
                              "(perf-smoke would silently skip it)"});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Check 4: nondeterminism in src/
// ---------------------------------------------------------------------------

struct Pattern {
  const char* needle;
  bool call_only;  // require '(' as the next non-space char
  const char* what;
};

constexpr Pattern kNondetPatterns[] = {
    {"rand", true, "std::rand/rand()"},
    {"srand", true, "srand()"},
    {"time", true, "time()"},
    {"clock", true, "clock()"},
    {"random_device", false, "std::random_device"},
};

std::vector<Violation> check_determinism_impl(const fs::path& root) {
  std::vector<Violation> out;
  for (const fs::path& file : source_files(root / "src")) {
    const std::string raw = read_file(file);
    const std::string text = strip_comments(raw, false);
    for (const Pattern& pat : kNondetPatterns) {
      const std::string needle = pat.needle;
      std::size_t pos = 0;
      while ((pos = text.find(needle, pos)) != std::string::npos) {
        const std::size_t after = pos + needle.size();
        // Token match, allowing a std:: / :: qualifier but rejecting
        // member access (obj.time, obj->rand) and larger identifiers
        // (strand, timeout, clock_gettime...).
        bool lead_ok = pos == 0 || !is_ident(text[pos - 1]);
        if (pos >= 1 && (text[pos - 1] == '.' )) lead_ok = false;
        if (pos >= 2 && text[pos - 2] == '-' && text[pos - 1] == '>') lead_ok = false;
        bool tail_ok = after >= text.size() || !is_ident(text[after]);
        if (pat.call_only && tail_ok) {
          std::size_t k = after;
          while (k < text.size() &&
                 std::isspace(static_cast<unsigned char>(text[k])))
            ++k;
          tail_ok = k < text.size() && text[k] == '(';
        }
        if (lead_ok && tail_ok) {
          const std::size_t line = line_of(text, pos);
          // Same-line opt-out, read from the raw text (it is a comment).
          const std::size_t bol = raw.rfind('\n', pos);
          std::size_t eol = raw.find('\n', pos);
          if (eol == std::string::npos) eol = raw.size();
          const std::string raw_line =
              raw.substr(bol + 1, eol - bol - 1);
          if (raw_line.find("qugeo-lint: allow-nondeterminism(") ==
              std::string::npos)
            out.push_back(
                {"determinism",
                 rel(file, root) + ":" + std::to_string(line),
                 std::string(pat.what) +
                     " in src/ breaks seeded reproducibility; use "
                     "qugeo::Rng sub-streams (or annotate `// qugeo-lint: "
                     "allow-nondeterminism(<reason>)`)"});
        }
        pos = after;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Check 5: fault-site coverage
// ---------------------------------------------------------------------------

/// Registered injection points: `fault::site("<name>")` literals in src/,
/// first occurrence wins for the report location. Comments are stripped,
/// so a commented-out site does not count as registered.
std::vector<std::pair<std::string, std::string>> fault_sites_in_src(
    const fs::path& root) {
  std::vector<std::pair<std::string, std::string>> sites;  // name -> where
  constexpr std::string_view kNeedle = "fault::site(\"";
  for (const fs::path& file : source_files(root / "src")) {
    const std::string text = strip_comments(read_file(file), true);
    std::size_t pos = 0;
    while ((pos = text.find(kNeedle, pos)) != std::string::npos) {
      const std::size_t begin = pos + kNeedle.size();
      const std::size_t end = text.find('"', begin);
      if (end == std::string::npos) break;
      const std::string name = text.substr(begin, end - begin);
      const bool seen = std::any_of(
          sites.begin(), sites.end(),
          [&](const auto& s) { return s.first == name; });
      if (!seen)
        sites.emplace_back(
            name, rel(file, root) + ":" + std::to_string(line_of(text, pos)));
      pos = end;
    }
  }
  return sites;
}

std::vector<Violation> check_fault_site_coverage_impl(const fs::path& root) {
  std::vector<Violation> out;
  const auto sites = fault_sites_in_src(root);
  if (sites.empty()) return out;

  std::string tests_text;
  for (const fs::path& file : source_files(root / "tests"))
    tests_text += strip_comments(read_file(file), true);
  const fs::path doc = root / "docs" / "ARCHITECTURE.md";
  const std::string doc_text = fs::exists(doc) ? read_file(doc) : std::string();

  for (const auto& [name, where] : sites) {
    // A test covers a site by naming it in a string literal — as a
    // FaultScope/QUGEO_FAULT spec, or an exact-site assertion.
    if (tests_text.find("\"" + name + "\"") == std::string::npos &&
        tests_text.find(name + ":") == std::string::npos)
      out.push_back({"fault-site-coverage", where,
                     "fault site \"" + name +
                         "\" is registered in src/ but no test under tests/ "
                         "injects into it"});
    if (doc_text.find("`" + name + "`") == std::string::npos)
      out.push_back({"fault-site-coverage", where,
                     "fault site \"" + name +
                         "\" is missing from the docs/ARCHITECTURE.md "
                         "fault-site registry"});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Check 6: SIMD scalar-equivalence coverage
// ---------------------------------------------------------------------------

/// Dispatched vector kernels: identifiers ending in `_avx2` declared
/// (followed by '(') in src/ HEADERS — the dispatch surface. TU-local
/// helpers in .cpp files (use_avx2 guards, unreachable stubs) are not
/// entry points and do not count. Comments and string literals are
/// stripped, so an error message naming AVX2 does not count either.
std::vector<std::pair<std::string, std::string>> avx2_kernels_in_src(
    const fs::path& root) {
  std::vector<std::pair<std::string, std::string>> kernels;  // name -> where
  constexpr std::string_view kSuffix = "_avx2";
  for (const fs::path& file : source_files(root / "src")) {
    const std::string ext = file.extension().string();
    if (ext != ".h" && ext != ".hpp") continue;
    const std::string text = strip_comments(read_file(file), false);
    std::size_t pos = 0;
    while ((pos = text.find(kSuffix, pos)) != std::string::npos) {
      const std::size_t after = pos + kSuffix.size();
      if (after < text.size() && is_ident(text[after])) {  // _avx2_foo etc.
        pos = after;
        continue;
      }
      std::size_t begin = pos;
      while (begin > 0 && is_ident(text[begin - 1])) --begin;
      if (begin == pos) {  // bare `_avx2` is not a kernel name
        pos = after;
        continue;
      }
      std::size_t k = after;
      while (k < text.size() && std::isspace(static_cast<unsigned char>(text[k])))
        ++k;
      if (k >= text.size() || text[k] != '(') {  // not a call/declaration
        pos = after;
        continue;
      }
      const std::string name = text.substr(begin, after - begin);
      const bool seen = std::any_of(
          kernels.begin(), kernels.end(),
          [&](const auto& s) { return s.first == name; });
      if (!seen)
        kernels.emplace_back(
            name, rel(file, root) + ":" + std::to_string(line_of(text, pos)));
      pos = after;
    }
  }
  return kernels;
}

std::vector<Violation> check_simd_scalar_equivalence_impl(const fs::path& root) {
  std::vector<Violation> out;
  const auto kernels = avx2_kernels_in_src(root);
  if (kernels.empty()) return out;

  std::string tests_text;
  for (const fs::path& file : source_files(root / "tests"))
    tests_text += strip_comments(read_file(file), false);

  for (const auto& [name, where] : kernels) {
    std::size_t pos = 0;
    bool covered = false;
    while ((pos = tests_text.find(name, pos)) != std::string::npos) {
      const bool lead_ok = pos == 0 || !is_ident(tests_text[pos - 1]);
      const std::size_t after = pos + name.size();
      if (lead_ok &&
          (after >= tests_text.size() || !is_ident(tests_text[after]))) {
        covered = true;
        break;
      }
      pos = after;
    }
    if (!covered)
      out.push_back({"simd-scalar-equivalence", where,
                     "AVX2 kernel " + name +
                         " has no scalar-equivalence test under tests/ "
                         "(the identifier never appears there)"});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Check 7: ExecutionConfig env routing
// ---------------------------------------------------------------------------

struct ConfigField {
  std::string name;
  std::size_t line;
  bool waived;
};

/// Fields of `struct ExecutionConfig { ... };` in the given header. A
/// field's name is the last identifier of its declarator (before any `=`
/// initializer), which survives qualified types and templates
/// (`std::shared_ptr<T> compile_cache`). The waiver marker is read from
/// the RAW text of the span between the previous `;` and the field's own
/// — i.e. its declaration line plus the doc comment block above it —
/// which works because strip_comments preserves text length, so stripped
/// positions index straight into the raw file.
std::vector<ConfigField> parse_execution_config_fields(const fs::path& header) {
  std::vector<ConfigField> fields;
  if (!fs::exists(header)) return fields;
  const std::string raw = read_file(header);
  const std::string text = strip_comments(raw, false);
  const std::size_t decl = text.find("struct ExecutionConfig");
  if (decl == std::string::npos) return fields;
  const std::size_t open = text.find('{', decl);
  if (open == std::string::npos) return fields;
  const std::size_t close = match_brace(text, open);
  if (close == std::string::npos) return fields;

  std::size_t stmt_begin = open + 1;
  for (std::size_t i = open + 1; i + 1 < close; ++i) {
    if (text[i] != ';') continue;
    const std::string stmt = text.substr(stmt_begin, i - stmt_begin);
    const std::string head = stmt.substr(0, std::min(stmt.find('='), stmt.size()));
    std::string name;
    std::size_t name_at = 0;
    for (std::size_t k = 0; k < head.size();) {
      if (!is_ident(head[k])) {
        ++k;
        continue;
      }
      std::size_t tok_end = k;
      while (tok_end < head.size() && is_ident(head[tok_end])) ++tok_end;
      name = head.substr(k, tok_end - k);
      name_at = stmt_begin + k;
      k = tok_end;
    }
    // Skip non-field statements (member functions, using-declarations).
    if (!name.empty() && head.find('(') == std::string::npos &&
        head.find("using ") == std::string::npos) {
      const std::string region = raw.substr(stmt_begin, i - stmt_begin);
      fields.push_back(
          {name, line_of(text, name_at),
           region.find("qugeo-lint: no-env(") != std::string::npos});
    }
    stmt_begin = i + 1;
  }
  return fields;
}

/// Parsers check 7 bans inside apply_env_overrides: locale-dependent or
/// silently-saturating, where common/env.h throws on any malformed text.
constexpr const char* kLenientParsers[] = {
    "strtol", "strtoul", "strtoull", "strtod",  "strtof", "atoi",
    "atol",   "atoll",   "atof",     "stoi",    "stol",   "stoul",
    "stoull", "stod",    "stof",     "sscanf"};

std::vector<Violation> check_execution_config_env_impl(const fs::path& root) {
  std::vector<Violation> out;
  const fs::path header = root / "src" / "qsim" / "backend.h";
  const auto fields = parse_execution_config_fields(header);
  if (fields.empty()) return out;  // tree without the struct: nothing to do
  const std::string header_rel = rel(header, root);

  // The apply_env_overrides DEFINITION body in backend.cpp: the first
  // `apply_env_overrides` occurrence whose next `{`/`;` is a `{` (call
  // sites and declarations hit `;` first and are skipped).
  const fs::path impl = root / "src" / "qsim" / "backend.cpp";
  const std::string impl_text =
      fs::exists(impl) ? strip_comments(read_file(impl), false) : std::string();
  std::string body;
  std::size_t body_line = 0;
  std::size_t fn = 0;
  while ((fn = impl_text.find("apply_env_overrides", fn)) !=
         std::string::npos) {
    const std::size_t stop = impl_text.find_first_of("{;", fn);
    if (stop != std::string::npos && impl_text[stop] == '{') {
      const std::size_t end = match_brace(impl_text, stop);
      if (end != std::string::npos) {
        body = impl_text.substr(stop, end - stop);
        body_line = line_of(impl_text, fn);
        break;
      }
    }
    fn += 1;
  }

  const std::set<std::string> doc_vars =
      env_vars_in_docs(root / "docs" / "ARCHITECTURE.md");

  for (const ConfigField& field : fields) {
    if (field.waived) continue;
    const std::string where =
        header_rel + ":" + std::to_string(field.line);

    // Routed: `base.<field>` appears as a whole token in the body.
    const std::string needle = "base." + field.name;
    std::size_t at = 0;
    bool routed = false;
    while ((at = body.find(needle, at)) != std::string::npos) {
      const std::size_t past = at + needle.size();
      if (past >= body.size() || !is_ident(body[past])) {
        routed = true;
        break;
      }
      at = past;
    }
    if (!routed)
      out.push_back(
          {"execution-config-env", where,
           "ExecutionConfig field `" + field.name +
               "` is never assigned (`base." + field.name +
               "`) in apply_env_overrides (backend.cpp); every execution "
               "knob needs a QUGEO_* override routed through the strict "
               "common/env.h parsers, or a `qugeo-lint: no-env(<reason>)` "
               "waiver on its declaration"});

    // Documented: a `QUGEO_<FIELD>` (or `QUGEO_<FIELD>_*`) row exists in
    // the ARCHITECTURE.md env table.
    std::string upper = "QUGEO_";
    for (char c : field.name)
      upper += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    const bool documented = std::any_of(
        doc_vars.begin(), doc_vars.end(), [&](const std::string& var) {
          return var == upper || var.rfind(upper + "_", 0) == 0;
        });
    if (!documented)
      out.push_back(
          {"execution-config-env", where,
           "ExecutionConfig field `" + field.name + "` has no `" + upper +
               "` (or `" + upper +
               "_*`) row in the docs/ARCHITECTURE.md environment table"});
  }

  // Strictness: no lenient C parser anywhere in the override body.
  for (const char* parser : kLenientParsers) {
    const std::string needle = parser;
    std::size_t at = 0;
    while ((at = body.find(needle, at)) != std::string::npos) {
      const std::size_t past = at + needle.size();
      const bool lead_ok = at == 0 || !is_ident(body[at - 1]);
      std::size_t k = past;
      while (k < body.size() &&
             std::isspace(static_cast<unsigned char>(body[k])))
        ++k;
      if (lead_ok && (past >= body.size() || !is_ident(body[past])) &&
          k < body.size() && body[k] == '(')
        out.push_back(
            {"execution-config-env",
             rel(impl, root) + ":" + std::to_string(body_line),
             "apply_env_overrides parses an override with lenient `" +
                 needle +
                 "`; use the throwing common/env.h parsers so malformed "
                 "values fail loudly instead of silently becoming 0"});
      at = past;
    }
  }
  return out;
}

}  // namespace

std::string to_string(const Violation& v) {
  return v.rule + ": " + v.where + ": " + v.message;
}

std::vector<Violation> check_gatekind_dispatch(const fs::path& repo_root) {
  return check_gatekind_dispatch_impl(repo_root);
}

std::vector<Violation> check_env_var_docs(const fs::path& repo_root) {
  return check_env_var_docs_impl(repo_root);
}

std::vector<Violation> check_bench_micro_registration(
    const fs::path& repo_root) {
  return check_bench_micro_impl(repo_root);
}

std::vector<Violation> check_determinism(const fs::path& repo_root) {
  return check_determinism_impl(repo_root);
}

std::vector<Violation> check_fault_site_coverage(const fs::path& repo_root) {
  return check_fault_site_coverage_impl(repo_root);
}

std::vector<Violation> check_simd_scalar_equivalence(const fs::path& repo_root) {
  return check_simd_scalar_equivalence_impl(repo_root);
}

std::vector<Violation> check_execution_config_env(const fs::path& repo_root) {
  return check_execution_config_env_impl(repo_root);
}

std::vector<Violation> run_all_checks(const fs::path& repo_root) {
  std::vector<Violation> all;
  for (auto* check :
       {&check_gatekind_dispatch, &check_env_var_docs,
        &check_bench_micro_registration, &check_determinism,
        &check_fault_site_coverage, &check_simd_scalar_equivalence,
        &check_execution_config_env}) {
    auto found = (*check)(repo_root);
    all.insert(all.end(), found.begin(), found.end());
  }
  return all;
}

}  // namespace qugeo::lint
