// Velocity-model generators: FlatVel layering invariants, resampling, the
// CurveVel extension, and profile extraction.
#include <gtest/gtest.h>

#include <set>

#include "seismic/velocity_model.h"

namespace qugeo::seismic {
namespace {

TEST(VelocityModel, ConstantConstructor) {
  const VelocityModel m(Grid2D{10, 12, 10, 10}, 2000.0);
  EXPECT_EQ(m.nz(), 10u);
  EXPECT_EQ(m.nx(), 12u);
  EXPECT_EQ(m.min_velocity(), 2000.0);
  EXPECT_EQ(m.max_velocity(), 2000.0);
}

TEST(VelocityModel, SizeValidation) {
  EXPECT_THROW(VelocityModel(Grid2D{4, 4, 10, 10}, std::vector<Real>(10)),
               std::invalid_argument);
}

TEST(VelocityModel, ResampleKeepsExtentAndValues) {
  VelocityModel m(Grid2D{8, 8, 10, 10}, 1500.0);
  for (std::size_t iz = 4; iz < 8; ++iz)
    for (std::size_t ix = 0; ix < 8; ++ix) m.at(iz, ix) = 3000.0;
  const VelocityModel small = m.resampled(4, 4);
  EXPECT_EQ(small.nz(), 4u);
  EXPECT_NEAR(small.grid().dz, 20.0, 1e-12);
  EXPECT_EQ(small.at(0, 0), 1500.0);
  EXPECT_EQ(small.at(3, 3), 3000.0);
}

class FlatVelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatVelTest, LayersAreHorizontalAndInRange) {
  Rng rng(GetParam());
  const FlatVelConfig cfg;
  const VelocityModel m = generate_flatvel(cfg, rng);
  EXPECT_EQ(m.nz(), 70u);
  EXPECT_EQ(m.nx(), 70u);
  EXPECT_GE(m.min_velocity(), cfg.vmin);
  EXPECT_LE(m.max_velocity(), cfg.vmax);
  // Every row must be constant (flat layers).
  for (std::size_t iz = 0; iz < m.nz(); ++iz)
    for (std::size_t ix = 1; ix < m.nx(); ++ix)
      ASSERT_EQ(m.at(iz, ix), m.at(iz, 0)) << "row " << iz;
}

TEST_P(FlatVelTest, LayerCountWithinConfig) {
  Rng rng(GetParam());
  const FlatVelConfig cfg;
  const VelocityModel m = generate_flatvel(cfg, rng);
  std::set<Real> distinct;
  for (std::size_t iz = 0; iz < m.nz(); ++iz) distinct.insert(m.at(iz, 0));
  EXPECT_GE(distinct.size(), 1u);
  EXPECT_LE(distinct.size(), static_cast<std::size_t>(cfg.max_layers));
}

TEST_P(FlatVelTest, MinimumLayerThicknessRespected) {
  Rng rng(GetParam());
  FlatVelConfig cfg;
  cfg.min_thickness = 6;
  const VelocityModel m = generate_flatvel(cfg, rng);
  std::size_t run = 1;
  for (std::size_t iz = 1; iz < m.nz(); ++iz) {
    if (m.at(iz, 0) == m.at(iz - 1, 0)) {
      ++run;
    } else {
      EXPECT_GE(run, cfg.min_thickness);
      run = 1;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatVelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 100, 2024));

TEST(FlatVel, DeterministicForSeed) {
  Rng a(55), b(55);
  const FlatVelConfig cfg;
  const VelocityModel m1 = generate_flatvel(cfg, a);
  const VelocityModel m2 = generate_flatvel(cfg, b);
  for (std::size_t k = 0; k < m1.data().size(); ++k)
    ASSERT_EQ(m1.data()[k], m2.data()[k]);
}

TEST(CurveVel, ColumnsVaryAcrossOffsets) {
  Rng rng(9);
  CurveVelConfig cfg;
  cfg.base.min_layers = 3;
  cfg.base.max_layers = 4;
  cfg.max_amplitude_rows = 5.0;
  bool any_column_differs = false;
  for (int attempt = 0; attempt < 5 && !any_column_differs; ++attempt) {
    const VelocityModel m = generate_curvevel(cfg, rng);
    for (std::size_t iz = 0; iz < m.nz() && !any_column_differs; ++iz)
      for (std::size_t ix = 1; ix < m.nx(); ++ix)
        if (m.at(iz, ix) != m.at(iz, 0)) {
          any_column_differs = true;
          break;
        }
  }
  EXPECT_TRUE(any_column_differs);
}

TEST(CurveVel, VelocitiesInRange) {
  Rng rng(10);
  const CurveVelConfig cfg;
  const VelocityModel m = generate_curvevel(cfg, rng);
  EXPECT_GE(m.min_velocity(), cfg.base.vmin);
  EXPECT_LE(m.max_velocity(), cfg.base.vmax);
}

TEST(VerticalProfile, ExtractsColumn) {
  VelocityModel m(Grid2D{4, 3, 10, 10}, 1000.0);
  m.at(2, 1) = 4000.0;
  const auto prof = vertical_profile(m, 1);
  ASSERT_EQ(prof.size(), 4u);
  EXPECT_EQ(prof[2], 4000.0);
  EXPECT_EQ(prof[0], 1000.0);
}

}  // namespace
}  // namespace qugeo::seismic
