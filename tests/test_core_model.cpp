// End-to-end model: parameter bookkeeping, prediction shapes, and the full
// gradient chain (encoder -> ansatz -> decoder -> loss) against finite
// differences.
#include <gtest/gtest.h>

#include "core/model.h"

namespace qugeo::core {
namespace {

data::ScaledSample random_sample(std::size_t wave_size, std::size_t vel_size,
                                 Rng& rng) {
  data::ScaledSample s;
  s.waveform.resize(wave_size);
  s.velocity.resize(vel_size);
  rng.fill_uniform(s.waveform, -1, 1);
  rng.fill_uniform(s.velocity, 0, 1);
  return s;
}

ModelConfig small_config(DecoderKind dec, Index batch_log2 = 0) {
  ModelConfig mc;
  mc.group_data_qubits = {3};
  mc.batch_log2 = batch_log2;
  mc.ansatz.blocks = 2;
  mc.decoder = dec;
  mc.vel_rows = dec == DecoderKind::kLayer ? 3 : 2;
  mc.vel_cols = dec == DecoderKind::kLayer ? 2 : 2;
  return mc;
}

TEST(Model, HeadlineConfigHas576QuantumParams) {
  ModelConfig mc;  // defaults: {8} qubits, 12 blocks
  Rng rng(1);
  const QuGeoModel model(mc, rng);
  EXPECT_EQ(model.num_quantum_params(), 576u);
  EXPECT_EQ(model.layout().total_qubits(), 8u);
}

TEST(Model, ParameterRoundTrip) {
  Rng rng(2);
  QuGeoModel model(small_config(DecoderKind::kPixel), rng);
  auto p = model.parameters();
  EXPECT_EQ(p.size(), model.num_params());
  EXPECT_EQ(p.size(), model.num_quantum_params() + 1);  // + pixel scale
  p[0] = 9.0;
  p.back() = 2.5;
  model.set_parameters(p);
  const auto q = model.parameters();
  EXPECT_EQ(q[0], 9.0);
  EXPECT_EQ(q.back(), 2.5);
}

TEST(Model, LayerDecoderHasAffineCalibrationParams) {
  Rng rng(3);
  const ModelConfig mc = small_config(DecoderKind::kLayer);
  const QuGeoModel model(mc, rng);
  // One scale and one bias per velocity-map row.
  EXPECT_EQ(model.num_params(), model.num_quantum_params() + 2 * mc.vel_rows);
}

TEST(Model, PredictShapes) {
  Rng rng(4);
  const ModelConfig mc = small_config(DecoderKind::kLayer);
  QuGeoModel model(mc, rng);
  std::vector<data::ScaledSample> samples;
  for (int i = 0; i < 3; ++i) samples.push_back(random_sample(8, 6, rng));
  std::vector<const data::ScaledSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);
  const auto preds = model.predict(ptrs);
  ASSERT_EQ(preds.size(), 3u);
  for (const auto& p : preds) EXPECT_EQ(p.size(), 6u);
}

TEST(Model, PredictHandlesBatchPadding) {
  Rng rng(5);
  QuGeoModel model(small_config(DecoderKind::kLayer, 1), rng);
  EXPECT_EQ(model.batch_size(), 2u);
  std::vector<data::ScaledSample> samples;
  for (int i = 0; i < 3; ++i) samples.push_back(random_sample(8, 6, rng));
  std::vector<const data::ScaledSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);
  const auto preds = model.predict(ptrs);  // 3 samples, batch 2 -> pad
  EXPECT_EQ(preds.size(), 3u);
}

TEST(Model, LossMatchesManualComputation) {
  Rng rng(6);
  QuGeoModel model(small_config(DecoderKind::kLayer), rng);
  // loss() runs the exact statevector path by contract; recomputing it
  // from predict() only matches when the readout is exact too, so pin the
  // inference path against QUGEO_BACKEND/QUGEO_SHOTS smoke-leg overrides.
  model.set_execution_config(qsim::ExecutionConfig{});
  const data::ScaledSample s = random_sample(8, 6, rng);
  const data::ScaledSample* chunk[] = {&s};
  const auto preds = model.predict(chunk);
  Real expected = 0;
  for (std::size_t k = 0; k < 6; ++k) {
    const Real d = preds[0][k] - s.velocity[k];
    expected += d * d;
  }
  EXPECT_NEAR(model.loss(chunk), expected, 1e-10);
}

class ModelGradCheck
    : public ::testing::TestWithParam<std::tuple<DecoderKind, Index>> {};

TEST_P(ModelGradCheck, MatchesFiniteDifference) {
  const auto [dec, batch_log2] = GetParam();
  Rng rng(42 + static_cast<std::uint64_t>(batch_log2));
  QuGeoModel model(small_config(dec, batch_log2), rng);

  const std::size_t bs = model.batch_size();
  std::vector<data::ScaledSample> samples;
  const std::size_t vel_size =
      model.config().vel_rows * model.config().vel_cols;
  for (std::size_t i = 0; i < bs; ++i)
    samples.push_back(random_sample(8, vel_size, rng));
  std::vector<const data::ScaledSample*> chunk;
  for (const auto& s : samples) chunk.push_back(&s);

  std::vector<Real> grads(model.num_params(), 0);
  const Real loss0 = model.loss_and_gradient(chunk, grads);
  EXPECT_NEAR(loss0, model.loss(chunk), 1e-10);

  auto params = model.parameters();
  const Real eps = 1e-5;
  // Spot-check a spread of parameters (full sweep is slow).
  for (std::size_t i = 0; i < params.size();
       i += std::max<std::size_t>(1, params.size() / 17)) {
    const Real saved = params[i];
    params[i] = saved + eps;
    model.set_parameters(params);
    const Real lp = model.loss(chunk);
    params[i] = saved - eps;
    model.set_parameters(params);
    const Real lm = model.loss(chunk);
    params[i] = saved;
    model.set_parameters(params);
    EXPECT_NEAR(grads[i], (lp - lm) / (2 * eps), 1e-5) << "param " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DecodersAndBatches, ModelGradCheck,
    ::testing::Values(std::make_tuple(DecoderKind::kLayer, Index{0}),
                      std::make_tuple(DecoderKind::kLayer, Index{1}),
                      std::make_tuple(DecoderKind::kLayer, Index{2}),
                      std::make_tuple(DecoderKind::kPixel, Index{0}),
                      std::make_tuple(DecoderKind::kPixel, Index{1})));

TEST(Model, GradCheckTwoGroupLayout) {
  Rng rng(77);
  ModelConfig mc;
  mc.group_data_qubits = {2, 2};
  mc.ansatz.blocks = 2;
  mc.ansatz.entangle_every = 1;
  mc.decoder = DecoderKind::kLayer;
  mc.vel_rows = 4;
  mc.vel_cols = 2;
  QuGeoModel model(mc, rng);

  data::ScaledSample s = random_sample(8, 8, rng);
  const data::ScaledSample* chunk[] = {&s};
  std::vector<Real> grads(model.num_params(), 0);
  (void)model.loss_and_gradient(chunk, grads);

  auto params = model.parameters();
  const Real eps = 1e-5;
  for (std::size_t i = 0; i < params.size(); i += 11) {
    const Real saved = params[i];
    params[i] = saved + eps;
    model.set_parameters(params);
    const Real lp = model.loss(chunk);
    params[i] = saved - eps;
    model.set_parameters(params);
    const Real lm = model.loss(chunk);
    params[i] = saved;
    model.set_parameters(params);
    EXPECT_NEAR(grads[i], (lp - lm) / (2 * eps), 1e-5) << "param " << i;
  }
}

TEST(Model, RejectsWrongChunkSize) {
  Rng rng(8);
  QuGeoModel model(small_config(DecoderKind::kLayer, 1), rng);
  data::ScaledSample s = random_sample(8, 6, rng);
  const data::ScaledSample* chunk[] = {&s};
  std::vector<Real> grads(model.num_params(), 0);
  EXPECT_THROW((void)model.loss_and_gradient(chunk, grads), std::invalid_argument);
}

}  // namespace
}  // namespace qugeo::core
