// Depolarizing-trajectory executor: zero noise reduces to exact execution;
// strong noise contracts <Z> toward zero; determinism under a fixed seed.
#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "qsim/executor.h"
#include "qsim/noise.h"

namespace qugeo::qsim {
namespace {

Circuit small_circuit() {
  Circuit c(2);
  c.h(0);
  c.ry(1, 0.4);
  c.cx(0, 1);
  c.ry(0, 1.1);
  return c;
}

TEST(Noise, ZeroProbabilityMatchesExact) {
  const Circuit c = small_circuit();
  StateVector exact(2), noisy(2);
  run_circuit(c, {}, exact);
  Rng rng(1);
  run_circuit_noisy(c, {}, noisy, NoiseModel{0.0}, rng);
  EXPECT_NEAR(noisy.fidelity(exact), 1.0, 1e-12);
}

TEST(Noise, TrajectoriesStayNormalized) {
  const Circuit c = small_circuit();
  Rng rng(2);
  for (int t = 0; t < 20; ++t) {
    StateVector psi(2);
    run_circuit_noisy(c, {}, psi, NoiseModel{0.3}, rng);
    EXPECT_NEAR(psi.norm_sq(), 1.0, 1e-10);
  }
}

TEST(Noise, DepolarizingContractsZ) {
  // Identity circuit on |0>: noiseless <Z> = 1; heavy depolarizing noise
  // pulls the trajectory average toward 0.
  Circuit c(1);
  for (int i = 0; i < 10; ++i) c.rz(0, 0.0);  // 10 noise insertion points
  StateVector psi0(1);
  const std::vector<Index> qubits = {0};
  const auto z = noisy_expect_z(c, {}, psi0, qubits, NoiseModel{0.2}, 3, 400);
  EXPECT_LT(std::abs(z[0]), 0.6);
  EXPECT_GT(z[0], -0.3);
}

TEST(Noise, SeedDeterminism) {
  const Circuit c = small_circuit();
  StateVector a(2), b(2);
  Rng r1(42), r2(42);
  run_circuit_noisy(c, {}, a, NoiseModel{0.25}, r1);
  run_circuit_noisy(c, {}, b, NoiseModel{0.25}, r2);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
}

TEST(Noise, MildNoiseDegradesGracefully) {
  const Circuit c = small_circuit();
  StateVector exact(2);
  run_circuit(c, {}, exact);
  const std::vector<Index> qubits = {0, 1};
  const auto z_mild =
      noisy_expect_z(c, {}, StateVector(2), qubits, NoiseModel{0.01}, 5, 600);
  EXPECT_NEAR(z_mild[0], exact.expect_z(0), 0.15);
  EXPECT_NEAR(z_mild[1], exact.expect_z(1), 0.15);
}

TEST(Noise, TrajectoryStreamsIndependentOfThreadCount) {
  // Per-trajectory (seed, index) sub-streams + fixed-order reduction make
  // the average bit-identical for any pool size.
  const Circuit c = small_circuit();
  const std::vector<Index> qubits = {0, 1};
  set_num_threads(1);
  const auto z1 =
      noisy_expect_z(c, {}, StateVector(2), qubits, NoiseModel{0.1}, 7, 64);
  set_num_threads(4);
  const auto z4 =
      noisy_expect_z(c, {}, StateVector(2), qubits, NoiseModel{0.1}, 7, 64);
  set_num_threads(0);
  ASSERT_EQ(z1.size(), z4.size());
  for (std::size_t i = 0; i < z1.size(); ++i) EXPECT_EQ(z1[i], z4[i]);
}

TEST(Noise, SameSeedSameAverageDifferentSeedDiffers) {
  const Circuit c = small_circuit();
  const std::vector<Index> qubits = {0};
  const auto a =
      noisy_expect_z(c, {}, StateVector(2), qubits, NoiseModel{0.2}, 11, 32);
  const auto b =
      noisy_expect_z(c, {}, StateVector(2), qubits, NoiseModel{0.2}, 11, 32);
  const auto other =
      noisy_expect_z(c, {}, StateVector(2), qubits, NoiseModel{0.2}, 12, 32);
  EXPECT_EQ(a[0], b[0]);
  EXPECT_NE(a[0], other[0]);
}

TEST(Noise, TrajectoryRngStreamsAreDecorrelated) {
  // Adjacent trajectory indices must not produce correlated first draws.
  Rng r0 = trajectory_rng(123, 0);
  Rng r1 = trajectory_rng(123, 1);
  EXPECT_NE(r0.next_u64(), r1.next_u64());
}

}  // namespace
}  // namespace qugeo::qsim
