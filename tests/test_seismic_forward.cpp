// Forward-modelling drivers: acquisition shapes, survey geometry, the
// physics-guided remodel path used by Q-D-FW.
#include <gtest/gtest.h>

#include "seismic/forward_modeling.h"

namespace qugeo::seismic {
namespace {

TEST(Survey, ReceiverLineSpreadsEvenly) {
  const ReceiverLine line = make_receiver_line(70, 8);
  ASSERT_EQ(line.count(), 8u);
  EXPECT_EQ(line.ix.front(), 0u);
  EXPECT_EQ(line.ix.back(), 69u);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_GT(line.ix[i], line.ix[i - 1]);
}

TEST(Survey, SingleReceiverCentered) {
  const ReceiverLine line = make_receiver_line(70, 1);
  EXPECT_EQ(line.ix[0], 35u);
}

TEST(Survey, SourceLineValidation) {
  EXPECT_THROW((void)make_source_line(10, 0), std::invalid_argument);
  EXPECT_THROW((void)make_source_line(10, 11), std::invalid_argument);
}

TEST(Survey, SeismicDataLayoutIsSourceMajor) {
  SeismicData d(2, 3, 4);
  d.at(1, 2, 3) = 7.0;
  EXPECT_EQ(d.data()[(1 * 3 + 2) * 4 + 3], 7.0);
  const auto shot1 = d.shot_span(1);
  EXPECT_EQ(shot1.size(), 12u);
  EXPECT_EQ(shot1[2 * 4 + 3], 7.0);
}

TEST(Survey, SetShotValidatesShape) {
  SeismicData d(2, 3, 4);
  EXPECT_THROW(d.set_shot(0, ShotGather(3, 5)), std::invalid_argument);
  EXPECT_THROW((void)d.shot_span(2), std::out_of_range);
}

TEST(Acquisition, OpenFwiShape) {
  const Acquisition acq = openfwi_acquisition();
  EXPECT_EQ(acq.num_sources, 5u);
  EXPECT_EQ(acq.num_receivers, 70u);
  EXPECT_EQ(acq.num_time_samples, 1000u);
  EXPECT_EQ(acq.wavelet_freq_hz, 15.0);
}

TEST(Acquisition, QuantumShapeIs256Values) {
  const Acquisition acq = quantum_acquisition();
  EXPECT_EQ(acq.num_sources * acq.num_time_samples * acq.num_receivers, 256u);
  EXPECT_EQ(acq.wavelet_freq_hz, 8.0);  // the 15 -> 8 Hz adjustment
}

TEST(ModelShots, ProducesRequestedVolume) {
  Rng rng(4);
  FlatVelConfig vcfg;
  vcfg.nz = 30;
  vcfg.nx = 30;
  const VelocityModel m = generate_flatvel(vcfg, rng);
  Acquisition acq;
  acq.num_sources = 3;
  acq.num_receivers = 10;
  acq.num_time_samples = 50;
  acq.wavelet_freq_hz = 12.0;
  const SeismicData d = model_shots(m, acq);
  EXPECT_EQ(d.nsrc(), 3u);
  EXPECT_EQ(d.nt(), 50u);
  EXPECT_EQ(d.nrec(), 10u);
  // The field must actually be non-trivial.
  Real peak = 0;
  for (Real v : d.data()) peak = std::max(peak, std::abs(v));
  EXPECT_GT(peak, 0.0);
}

TEST(ModelShots, DifferentSourcesProduceDifferentShots) {
  Rng rng(5);
  FlatVelConfig vcfg;
  vcfg.nz = 30;
  vcfg.nx = 30;
  const VelocityModel m = generate_flatvel(vcfg, rng);
  Acquisition acq;
  acq.num_sources = 2;
  acq.num_receivers = 6;
  acq.num_time_samples = 64;
  const SeismicData d = model_shots(m, acq);
  Real diff = 0;
  for (std::size_t t = 0; t < d.nt(); ++t)
    for (std::size_t r = 0; r < d.nrec(); ++r)
      diff += std::abs(d.at(0, t, r) - d.at(1, t, r));
  EXPECT_GT(diff, 0.0);
}

TEST(PhysicsRemodel, ProducesQuantumScaleData) {
  Rng rng(6);
  const VelocityModel m = generate_flatvel(FlatVelConfig{}, rng);
  const Acquisition acq = quantum_acquisition();
  const SeismicData d = physics_guided_remodel(m, 8, 8, acq, 8);
  EXPECT_EQ(d.size(), 256u);
  Real peak = 0;
  for (Real v : d.data()) peak = std::max(peak, std::abs(v));
  EXPECT_GT(peak, 0.0);
}

TEST(PhysicsRemodel, SensitiveToVelocityModel) {
  // Different subsurfaces must give different quantum-scale gathers —
  // otherwise the learning task would be vacuous.
  Rng rng(7);
  const VelocityModel m1 = generate_flatvel(FlatVelConfig{}, rng);
  const VelocityModel m2 = generate_flatvel(FlatVelConfig{}, rng);
  const Acquisition acq = quantum_acquisition();
  const SeismicData d1 = physics_guided_remodel(m1, 8, 8, acq);
  const SeismicData d2 = physics_guided_remodel(m2, 8, 8, acq);
  Real diff = 0;
  for (std::size_t k = 0; k < d1.size(); ++k)
    diff += std::abs(d1.data()[k] - d2.data()[k]);
  EXPECT_GT(diff, 0.0);
}

TEST(PhysicsRemodel, RefineZeroRejected) {
  Rng rng(8);
  const VelocityModel m = generate_flatvel(FlatVelConfig{}, rng);
  EXPECT_THROW((void)physics_guided_remodel(m, 8, 8, quantum_acquisition(), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace qugeo::seismic
