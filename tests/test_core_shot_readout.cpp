// Shot-based readout: convergence to exact expectations with the shot
// budget, and end-to-end sampled prediction.
#include <gtest/gtest.h>

#include <cmath>

#include "core/shot_readout.h"
#include "qsim/encoding.h"

namespace qugeo::core {
namespace {

qsim::StateVector random_state(Index qubits, Rng& rng) {
  qsim::StateVector psi(qubits);
  std::vector<Real> data(psi.dim());
  rng.fill_uniform(data, -1, 1);
  qsim::encode_amplitudes(data, psi);
  return psi;
}

TEST(ShotReadout, ZEstimateConvergesWithShots) {
  Rng rng(1);
  const qsim::StateVector psi = random_state(3, rng);
  const std::vector<Index> qubits = {0, 1, 2};

  Rng shot_rng(2);
  const auto z_few = estimate_z_from_shots(psi, qubits, shot_rng, 100);
  const auto z_many = estimate_z_from_shots(psi, qubits, shot_rng, 50000);
  for (std::size_t i = 0; i < 3; ++i) {
    const Real exact = psi.expect_z(qubits[i]);
    EXPECT_NEAR(z_many[i], exact, 0.02);
    // Error must shrink with shots (statistically; generous margins).
    EXPECT_LE(std::abs(z_many[i] - exact), std::abs(z_few[i] - exact) + 0.02);
  }
}

TEST(ShotReadout, ZEstimateIsExactForBasisStates) {
  qsim::StateVector psi(2);  // |00>
  Rng rng(3);
  const std::vector<Index> qubits = {0, 1};
  const auto z = estimate_z_from_shots(psi, qubits, rng, 10);
  EXPECT_EQ(z[0], 1.0);
  EXPECT_EQ(z[1], 1.0);
}

TEST(ShotReadout, MarginalEstimateSumsToOne) {
  Rng rng(4);
  const qsim::StateVector psi = random_state(4, rng);
  const std::vector<Index> qubits = {1, 3};
  Rng shot_rng(5);
  const auto m = estimate_marginal_from_shots(psi, qubits, shot_rng, 5000);
  ASSERT_EQ(m.size(), 4u);
  Real sum = 0;
  for (Real v : m) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  const auto exact = psi.marginal_probabilities(qubits);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_NEAR(m[k], exact[k], 0.03);
}

TEST(ShotReadout, ZeroShotsRejected) {
  qsim::StateVector psi(1);
  Rng rng(6);
  const std::vector<Index> qubits = {0};
  EXPECT_THROW((void)estimate_z_from_shots(psi, qubits, rng, 0),
               std::invalid_argument);
  EXPECT_THROW((void)estimate_marginal_from_shots(psi, qubits, rng, 0),
               std::invalid_argument);
}

TEST(ShotReadout, PredictionConvergesToExactDecoder) {
  Rng rng(7);
  ModelConfig mc;
  mc.group_data_qubits = {3};
  mc.ansatz.blocks = 2;
  mc.decoder = DecoderKind::kLayer;
  mc.vel_rows = 3;
  mc.vel_cols = 2;
  QuGeoModel model(mc, rng);

  data::ScaledSample s;
  s.waveform.resize(8);
  s.velocity.resize(6);
  rng.fill_uniform(s.waveform, -1, 1);
  rng.fill_uniform(s.velocity, 0, 1);
  const data::ScaledSample* chunk[] = {&s};

  const auto exact = model.predict(chunk)[0];
  Rng shot_rng(8);
  const auto sampled = predict_with_shots(model, chunk, shot_rng, 200000)[0];
  for (std::size_t k = 0; k < exact.size(); ++k)
    EXPECT_NEAR(sampled[k], exact[k], 0.02) << "pixel " << k;
}

TEST(ShotReadout, RejectsBatchedAndPixelModels) {
  Rng rng(9);
  ModelConfig batched;
  batched.group_data_qubits = {3};
  batched.batch_log2 = 1;
  batched.ansatz.blocks = 1;
  batched.vel_rows = 3;
  batched.vel_cols = 2;
  QuGeoModel mb(batched, rng);
  data::ScaledSample s;
  s.waveform.assign(8, 0.5);
  s.velocity.assign(6, 0.5);
  const data::ScaledSample* chunk[] = {&s};
  Rng shot_rng(10);
  EXPECT_THROW((void)predict_with_shots(mb, chunk, shot_rng, 10),
               std::invalid_argument);

  ModelConfig px;
  px.group_data_qubits = {3};
  px.ansatz.blocks = 1;
  px.decoder = DecoderKind::kPixel;
  px.vel_rows = 2;
  px.vel_cols = 2;
  QuGeoModel mp(px, rng);
  EXPECT_THROW((void)predict_with_shots(mp, chunk, shot_rng, 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace qugeo::core
