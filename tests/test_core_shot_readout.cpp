// Shot-based readout: convergence to exact expectations with the shot
// budget, end-to-end sampled prediction, and the delegation pin — the
// wrappers must produce byte-identical estimates to direct ShotBackend
// calls for the same seed, so the refactor onto qsim/shots.h can't drift.
#include <gtest/gtest.h>

#include <cmath>

#include "core/shot_readout.h"
#include "qsim/encoding.h"
#include "qsim/shots.h"

namespace qugeo::core {
namespace {

qsim::StateVector random_state(Index qubits, Rng& rng) {
  qsim::StateVector psi(qubits);
  std::vector<Real> data(psi.dim());
  rng.fill_uniform(data, -1, 1);
  qsim::encode_amplitudes(data, psi);
  return psi;
}

TEST(ShotReadout, ZEstimateConvergesWithShots) {
  Rng rng(1);
  const qsim::StateVector psi = random_state(3, rng);
  const std::vector<Index> qubits = {0, 1, 2};

  Rng shot_rng(2);
  const auto z_few = estimate_z_from_shots(psi, qubits, shot_rng, 100);
  const auto z_many = estimate_z_from_shots(psi, qubits, shot_rng, 50000);
  for (std::size_t i = 0; i < 3; ++i) {
    const Real exact = psi.expect_z(qubits[i]);
    EXPECT_NEAR(z_many[i], exact, 0.02);
    // Error must shrink with shots (statistically; generous margins).
    EXPECT_LE(std::abs(z_many[i] - exact), std::abs(z_few[i] - exact) + 0.02);
  }
}

TEST(ShotReadout, ZEstimateIsExactForBasisStates) {
  qsim::StateVector psi(2);  // |00>
  Rng rng(3);
  const std::vector<Index> qubits = {0, 1};
  const auto z = estimate_z_from_shots(psi, qubits, rng, 10);
  EXPECT_EQ(z[0], 1.0);
  EXPECT_EQ(z[1], 1.0);
}

TEST(ShotReadout, MarginalEstimateSumsToOne) {
  Rng rng(4);
  const qsim::StateVector psi = random_state(4, rng);
  const std::vector<Index> qubits = {1, 3};
  Rng shot_rng(5);
  const auto m = estimate_marginal_from_shots(psi, qubits, shot_rng, 5000);
  ASSERT_EQ(m.size(), 4u);
  Real sum = 0;
  for (Real v : m) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  const auto exact = psi.marginal_probabilities(qubits);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_NEAR(m[k], exact[k], 0.03);
}

TEST(ShotReadout, ZeroShotsRejected) {
  qsim::StateVector psi(1);
  Rng rng(6);
  const std::vector<Index> qubits = {0};
  EXPECT_THROW((void)estimate_z_from_shots(psi, qubits, rng, 0),
               std::invalid_argument);
  EXPECT_THROW((void)estimate_marginal_from_shots(psi, qubits, rng, 0),
               std::invalid_argument);
}

/// Pin the model's own readout to exact probabilities, regardless of any
/// QUGEO_SHOTS smoke-leg override applied at construction: these tests
/// compare sampled estimates against the exact decode.
void force_exact_readout(QuGeoModel& model) {
  qsim::ExecutionConfig exec = model.execution_config();
  exec.backend = qsim::BackendKind::kStatevector;
  exec.shots = 0;
  model.set_execution_config(exec);
}

TEST(ShotReadout, PredictionConvergesToExactDecoder) {
  Rng rng(7);
  ModelConfig mc;
  mc.group_data_qubits = {3};
  mc.ansatz.blocks = 2;
  mc.decoder = DecoderKind::kLayer;
  mc.vel_rows = 3;
  mc.vel_cols = 2;
  QuGeoModel model(mc, rng);
  force_exact_readout(model);

  data::ScaledSample s;
  s.waveform.resize(8);
  s.velocity.resize(6);
  rng.fill_uniform(s.waveform, -1, 1);
  rng.fill_uniform(s.velocity, 0, 1);
  const data::ScaledSample* chunk[] = {&s};

  const auto exact = model.predict(chunk)[0];
  Rng shot_rng(8);
  const auto sampled = predict_with_shots(model, chunk, shot_rng, 200000)[0];
  for (std::size_t k = 0; k < exact.size(); ++k)
    EXPECT_NEAR(sampled[k], exact[k], 0.02) << "pixel " << k;
}

TEST(ShotReadout, BatchedAndPixelModelsNowSampleToo) {
  // The ShotBackend delegation removed the old layer-decoder/unbatched
  // restriction: every decoder and QuBatch size goes through the same
  // ExecutionConfig path. Sampled predictions must converge to the exact
  // decode for both previously rejected configurations.
  Rng rng(9);
  data::ScaledSample s;
  s.waveform.assign(8, 0.5);
  s.velocity.assign(6, 0.5);
  const data::ScaledSample* chunk[] = {&s};

  ModelConfig batched;
  batched.group_data_qubits = {3};
  batched.batch_log2 = 1;
  batched.ansatz.blocks = 1;
  batched.vel_rows = 3;
  batched.vel_cols = 2;
  QuGeoModel mb(batched, rng);
  force_exact_readout(mb);
  const auto exact_b = mb.predict(chunk)[0];
  Rng shot_rng(10);
  const auto sampled_b = predict_with_shots(mb, chunk, shot_rng, 200000)[0];
  for (std::size_t k = 0; k < exact_b.size(); ++k)
    EXPECT_NEAR(sampled_b[k], exact_b[k], 0.02) << "batched pixel " << k;

  ModelConfig px;
  px.group_data_qubits = {3};
  px.ansatz.blocks = 1;
  px.decoder = DecoderKind::kPixel;
  px.vel_rows = 2;
  px.vel_cols = 2;
  QuGeoModel mp(px, rng);
  force_exact_readout(mp);
  const auto exact_p = mp.predict(chunk)[0];
  const auto sampled_p = predict_with_shots(mp, chunk, shot_rng, 200000)[0];
  for (std::size_t k = 0; k < exact_p.size(); ++k)
    EXPECT_NEAR(sampled_p[k], exact_p[k], 0.02) << "pixel-decoder pixel " << k;
}

TEST(ShotReadout, ZeroShotBudgetRejectedByPredict) {
  Rng rng(11);
  ModelConfig mc;
  mc.group_data_qubits = {3};
  mc.ansatz.blocks = 1;
  mc.vel_rows = 3;
  mc.vel_cols = 2;
  QuGeoModel model(mc, rng);
  data::ScaledSample s;
  s.waveform.assign(8, 0.5);
  s.velocity.assign(6, 0.5);
  const data::ScaledSample* chunk[] = {&s};
  Rng shot_rng(12);
  EXPECT_THROW((void)predict_with_shots(model, chunk, shot_rng, 0),
               std::invalid_argument);
}

TEST(ShotReadout, WrappersByteIdenticalToDirectShotBackend) {
  // The delegation pin (regression test for the refactor): for the same
  // seed, the Rng-based wrappers and a directly constructed ShotBackend
  // must sample the same CDF with the same sub-streams and so return
  // byte-identical estimates.
  Rng rng(13);
  qsim::Circuit c(4);
  for (Index q = 0; q < 4; ++q) c.u3(q, c.new_params(3));
  for (Index q = 0; q < 4; ++q) c.cu3(q, (q + 1) % 4, c.new_params(3));
  std::vector<Real> params(c.num_params());
  rng.fill_uniform(params, -1.5, 1.5);
  const std::vector<Index> qubits = {0, 1, 2, 3};
  const std::size_t shots = 4096;
  const std::uint64_t seed = 0xfeedface1234ULL;

  // Wrapper path: run the circuit, estimate from the state. The wrapper
  // consumes one u64 from its Rng as the sampling seed.
  qsim::StatevectorBackend sv{qsim::ExecutionConfig{}};
  sv.run(c, params, qsim::StateVector(4));
  Rng wrap_rng(seed);
  const auto z_wrap =
      estimate_z_from_shots(sv.state(), qubits, wrap_rng, shots);
  Rng wrap_rng2(seed);
  const auto marg_wrap = estimate_marginal_from_shots(
      sv.state(), std::span<const Index>(qubits.data(), 2), wrap_rng2, shots);

  // Direct path: a ShotBackend over the statevector with the identical
  // sampling seed.
  qsim::ExecutionConfig exec;
  exec.shots = shots;
  exec.seed = Rng(seed).next_u64();
  const auto backend = qsim::make_backend(exec, 4);
  ASSERT_EQ(backend->kind(), qsim::BackendKind::kShot);
  backend->run(c, params, qsim::StateVector(4));
  const auto z_direct = backend->expect_z(qubits);
  const auto marg_direct = qsim::marginal_from_probabilities(
      backend->probabilities(), std::span<const Index>(qubits.data(), 2));

  ASSERT_EQ(z_wrap.size(), z_direct.size());
  for (std::size_t i = 0; i < z_wrap.size(); ++i)
    EXPECT_EQ(z_wrap[i], z_direct[i]) << "qubit " << qubits[i];
  ASSERT_EQ(marg_wrap.size(), marg_direct.size());
  for (std::size_t k = 0; k < marg_wrap.size(); ++k)
    EXPECT_EQ(marg_wrap[k], marg_direct[k]) << "outcome " << k;
}

}  // namespace
}  // namespace qugeo::core
