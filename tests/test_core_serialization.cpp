// Model checkpointing: round trip, fingerprint mismatch rejection.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/serialization.h"

namespace qugeo::core {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "qugeo_ckpt_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

ModelConfig small_config() {
  ModelConfig mc;
  mc.group_data_qubits = {3};
  mc.ansatz.blocks = 2;
  mc.decoder = DecoderKind::kLayer;
  mc.vel_rows = 3;
  mc.vel_cols = 2;
  return mc;
}

TEST_F(SerializationTest, RoundTripRestoresParameters) {
  Rng rng(1);
  QuGeoModel a(small_config(), rng);
  save_model(dir_ / "a.qgt", a);

  Rng rng2(999);  // different init
  QuGeoModel b(small_config(), rng2);
  EXPECT_NE(a.parameters()[0], b.parameters()[0]);
  load_model(dir_ / "a.qgt", b);
  EXPECT_EQ(a.parameters(), b.parameters());
}

TEST_F(SerializationTest, LoadedModelPredictsIdentically) {
  Rng rng(2);
  QuGeoModel a(small_config(), rng);
  save_model(dir_ / "m.qgt", a);
  Rng rng2(3);
  QuGeoModel b(small_config(), rng2);
  load_model(dir_ / "m.qgt", b);

  data::ScaledSample s;
  s.waveform.resize(8);
  rng.fill_uniform(s.waveform, -1, 1);
  s.velocity.assign(6, 0.5);
  const data::ScaledSample* chunk[] = {&s};
  EXPECT_EQ(a.predict(chunk)[0], b.predict(chunk)[0]);
}

TEST_F(SerializationTest, FingerprintMismatchRejected) {
  Rng rng(4);
  QuGeoModel a(small_config(), rng);
  save_model(dir_ / "a.qgt", a);

  ModelConfig other = small_config();
  other.ansatz.blocks = 3;  // different architecture
  QuGeoModel b(other, rng);
  EXPECT_THROW(load_model(dir_ / "a.qgt", b), std::runtime_error);
}

TEST_F(SerializationTest, DecoderKindChangesFingerprint) {
  ModelConfig ly = small_config();
  ModelConfig px = small_config();
  px.decoder = DecoderKind::kPixel;
  px.vel_rows = 2;
  EXPECT_NE(model_fingerprint(ly), model_fingerprint(px));
}

TEST_F(SerializationTest, GroupingChangesFingerprint) {
  ModelConfig a = small_config();
  ModelConfig b = small_config();
  b.group_data_qubits = {2, 1};
  EXPECT_NE(model_fingerprint(a), model_fingerprint(b));
}

TEST_F(SerializationTest, MissingFileThrows) {
  Rng rng(5);
  QuGeoModel m(small_config(), rng);
  EXPECT_THROW(load_model(dir_ / "absent.qgt", m), std::runtime_error);
}

}  // namespace
}  // namespace qugeo::core
