// Model checkpointing: round trip, fingerprint mismatch rejection, and
// the error-message contract (path, expected-vs-stored fingerprint,
// parameter counts).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/serialization.h"

namespace qugeo::core {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "qugeo_ckpt_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

ModelConfig small_config() {
  ModelConfig mc;
  mc.group_data_qubits = {3};
  mc.ansatz.blocks = 2;
  mc.decoder = DecoderKind::kLayer;
  mc.vel_rows = 3;
  mc.vel_cols = 2;
  return mc;
}

TEST_F(SerializationTest, RoundTripRestoresParameters) {
  Rng rng(1);
  QuGeoModel a(small_config(), rng);
  save_model(dir_ / "a.qgt", a);

  Rng rng2(999);  // different init
  QuGeoModel b(small_config(), rng2);
  EXPECT_NE(a.parameters()[0], b.parameters()[0]);
  load_model(dir_ / "a.qgt", b);
  EXPECT_EQ(a.parameters(), b.parameters());
}

TEST_F(SerializationTest, LoadedModelPredictsIdentically) {
  Rng rng(2);
  QuGeoModel a(small_config(), rng);
  save_model(dir_ / "m.qgt", a);
  Rng rng2(3);
  QuGeoModel b(small_config(), rng2);
  load_model(dir_ / "m.qgt", b);

  data::ScaledSample s;
  s.waveform.resize(8);
  rng.fill_uniform(s.waveform, -1, 1);
  s.velocity.assign(6, 0.5);
  const data::ScaledSample* chunk[] = {&s};
  EXPECT_EQ(a.predict(chunk)[0], b.predict(chunk)[0]);
}

TEST_F(SerializationTest, FingerprintMismatchRejected) {
  Rng rng(4);
  QuGeoModel a(small_config(), rng);
  save_model(dir_ / "a.qgt", a);

  ModelConfig other = small_config();
  other.ansatz.blocks = 3;  // different architecture
  QuGeoModel b(other, rng);
  EXPECT_THROW(load_model(dir_ / "a.qgt", b), std::runtime_error);
}

TEST_F(SerializationTest, DecoderKindChangesFingerprint) {
  ModelConfig ly = small_config();
  ModelConfig px = small_config();
  px.decoder = DecoderKind::kPixel;
  px.vel_rows = 2;
  EXPECT_NE(model_fingerprint(ly), model_fingerprint(px));
}

TEST_F(SerializationTest, GroupingChangesFingerprint) {
  ModelConfig a = small_config();
  ModelConfig b = small_config();
  b.group_data_qubits = {2, 1};
  EXPECT_NE(model_fingerprint(a), model_fingerprint(b));
}

TEST_F(SerializationTest, MissingFileThrows) {
  Rng rng(5);
  QuGeoModel m(small_config(), rng);
  EXPECT_THROW(load_model(dir_ / "absent.qgt", m), std::runtime_error);
}

TEST_F(SerializationTest, MismatchMessageNamesPathAndFingerprints) {
  Rng rng(6);
  QuGeoModel a(small_config(), rng);
  save_model(dir_ / "a.qgt", a);

  ModelConfig other = small_config();
  other.ansatz.blocks = 3;
  QuGeoModel b(other, rng);
  try {
    load_model(dir_ / "a.qgt", b);
    FAIL() << "mismatch must throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("a.qgt"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(model_fingerprint(a.config()))),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find(std::to_string(model_fingerprint(other))),
              std::string::npos)
        << msg;
  }
}

TEST_F(SerializationTest, TrainFingerprintTracksHyperparameters) {
  TrainConfig base;
  EXPECT_EQ(train_fingerprint(base), train_fingerprint(base));
  TrainConfig epochs = base;
  epochs.epochs += 1;
  EXPECT_NE(train_fingerprint(base), train_fingerprint(epochs));
  TrainConfig lr = base;
  lr.initial_lr *= 0.5;
  EXPECT_NE(train_fingerprint(base), train_fingerprint(lr));
  TrainConfig seed = base;
  seed.shuffle_seed += 1;
  EXPECT_NE(train_fingerprint(base), train_fingerprint(seed));
  // Checkpoint knobs must NOT change the fingerprint: resuming with a
  // different rotation depth or interval is the same optimization run.
  TrainConfig knobs = base;
  knobs.checkpoint_every = 7;
  knobs.checkpoint_keep = 9;
  EXPECT_EQ(train_fingerprint(base), train_fingerprint(knobs));
}

}  // namespace
}  // namespace qugeo::core
