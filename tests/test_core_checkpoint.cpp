// Fault-tolerant training: kill-and-resume bit-identity, torn/corrupt
// checkpoint degradation, rotation fallback, and retry of injected faults
// at every registered site on the training path ("trainer.epoch",
// "io.atomic_write", "io.rename", "checkpoint.read", "backend.run",
// "backend.prepare").
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/io.h"
#include "common/parallel.h"
#include "core/serialization.h"
#include "core/trainer.h"
#include "qsim/backend.h"

namespace qugeo::core {
namespace {

/// Synthetic learnable dataset (same construction as test_core_trainer):
/// targets depend deterministically on the waveform.
data::ScaledDataset synthetic_dataset(std::size_t n, std::size_t wave_size,
                                      std::size_t rows, std::size_t cols,
                                      Rng& rng) {
  data::ScaledDataset ds;
  ds.scaler_name = "synthetic";
  ds.nsrc = 1;
  ds.nt = 1;
  ds.nrec = wave_size;
  ds.vel_rows = rows;
  ds.vel_cols = cols;
  ds.samples.resize(n);
  for (auto& s : ds.samples) {
    s.waveform.resize(wave_size);
    rng.fill_uniform(s.waveform, -1, 1);
    s.velocity.resize(rows * cols);
    const std::size_t chunk = wave_size / rows;
    for (std::size_t i = 0; i < rows; ++i) {
      Real m = 0;
      for (std::size_t k = 0; k < chunk; ++k)
        m += std::abs(s.waveform[i * chunk + k]);
      const Real v = m / static_cast<Real>(chunk);
      for (std::size_t j = 0; j < cols; ++j) s.velocity[i * cols + j] = v;
    }
  }
  return ds;
}

ModelConfig tiny_model() {
  ModelConfig mc;
  mc.group_data_qubits = {3};
  mc.batch_log2 = 0;
  mc.ansatz.blocks = 3;
  mc.decoder = DecoderKind::kLayer;
  mc.vel_rows = 3;
  mc.vel_cols = 2;
  return mc;
}

/// Flip one byte inside the framed payload region (offset past the
/// 20-byte QGF1 header), so the CRC check must fire.
void corrupt_payload_byte(const std::filesystem::path& path) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(f.tellg());
  ASSERT_GT(size, 32u);
  f.seekp(static_cast<std::streamoff>(size - 9));
  char byte = 0;
  f.seekg(static_cast<std::streamoff>(size - 9));
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(size - 9));
  f.write(&byte, 1);
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("qugeo_ckpt_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    fault::clear_degradation_events();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

/// A small fully-valid checkpoint for the corruption fixtures.
TrainCheckpoint sample_checkpoint() {
  TrainCheckpoint ck;
  ck.model_fp = 111;
  ck.train_fp = 222;
  ck.epochs_completed = 2;
  ck.shuffle_rng = Rng(5).state();
  ck.adam_t = 7;
  ck.params = {0.5, -1.25, 3.0};
  ck.adam_m = {0.1, 0.2, 0.3};
  ck.adam_v = {0.01, 0.02, 0.03};
  ck.curve = {{1.0, 0.5, 0.25}, {0.8, 0.6, 0.2}};
  return ck;
}

TEST_F(CheckpointTest, RoundTripPreservesEveryField) {
  const TrainCheckpoint ck = sample_checkpoint();
  const auto path = dir_ / "ck";
  save_train_checkpoint(path, ck);
  const TrainCheckpoint back = load_train_checkpoint(path);
  EXPECT_EQ(back.model_fp, ck.model_fp);
  EXPECT_EQ(back.train_fp, ck.train_fp);
  EXPECT_EQ(back.epochs_completed, ck.epochs_completed);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(back.shuffle_rng.s[i], ck.shuffle_rng.s[i]);
  EXPECT_EQ(back.shuffle_rng.has_cached_normal, ck.shuffle_rng.has_cached_normal);
  EXPECT_EQ(back.adam_t, ck.adam_t);
  EXPECT_EQ(back.params, ck.params);
  EXPECT_EQ(back.adam_m, ck.adam_m);
  EXPECT_EQ(back.adam_v, ck.adam_v);
  ASSERT_EQ(back.curve.size(), ck.curve.size());
  for (std::size_t e = 0; e < ck.curve.size(); ++e) {
    EXPECT_EQ(back.curve[e].train_loss, ck.curve[e].train_loss);
    EXPECT_EQ(back.curve[e].test_ssim, ck.curve[e].test_ssim);
    EXPECT_EQ(back.curve[e].test_mse, ck.curve[e].test_mse);
  }
}

TEST_F(CheckpointTest, InvalidCheckpointRejectedBeforeIo) {
  TrainCheckpoint ck = sample_checkpoint();
  ck.adam_m.pop_back();
  EXPECT_THROW(save_train_checkpoint(dir_ / "bad", ck), std::invalid_argument);
  TrainCheckpoint ck2 = sample_checkpoint();
  ck2.curve.pop_back();  // curve no longer matches epochs_completed
  EXPECT_THROW(save_train_checkpoint(dir_ / "bad", ck2), std::invalid_argument);
  EXPECT_FALSE(std::filesystem::exists(dir_ / "bad"));
}

TEST_F(CheckpointTest, SlotPathAppendsIndex) {
  EXPECT_EQ(checkpoint_slot_path(dir_ / "run", 2), dir_ / "run.2");
}

// ---------------------------------------------------- failure taxonomy --

TEST_F(CheckpointTest, MissingFileIsDistinct) {
  try {
    (void)load_train_checkpoint(dir_ / "absent");
    FAIL();
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.fault(), CheckpointFault::kMissing);
    EXPECT_NE(std::string(e.what()).find("absent"), std::string::npos);
  }
}

TEST_F(CheckpointTest, BadMagicIsDistinct) {
  std::ofstream(dir_ / "junk") << "this is not a checkpoint at all";
  try {
    (void)load_train_checkpoint(dir_ / "junk");
    FAIL();
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.fault(), CheckpointFault::kBadMagic);
  }
}

TEST_F(CheckpointTest, TornWriteIsDistinct) {
  const auto path = dir_ / "ck";
  save_train_checkpoint(path, sample_checkpoint());
  // Torn write: the tail of the frame never hit the disk.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 8);
  try {
    (void)load_train_checkpoint(path);
    FAIL();
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.fault(), CheckpointFault::kTruncated);
    EXPECT_NE(std::string(e.what()).find(path.string()), std::string::npos);
  }
}

TEST_F(CheckpointTest, CrcCorruptionIsDistinct) {
  const auto path = dir_ / "ck";
  save_train_checkpoint(path, sample_checkpoint());
  corrupt_payload_byte(path);
  try {
    (void)load_train_checkpoint(path);
    FAIL();
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.fault(), CheckpointFault::kCrcMismatch);
  }
  EXPECT_STREQ(checkpoint_fault_name(CheckpointFault::kCrcMismatch),
               "crc-mismatch");
}

TEST_F(CheckpointTest, FingerprintAndConfigMismatchAreDistinct) {
  const TrainCheckpoint ck = sample_checkpoint();
  save_train_checkpoint(checkpoint_slot_path(dir_ / "run", 0), ck);

  // Wrong architecture: skipped, reported, nothing usable.
  fault::clear_degradation_events();
  EXPECT_FALSE(
      find_resume_checkpoint(dir_ / "run", 1, ck.model_fp + 1, ck.train_fp));
  auto events = fault::degradation_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].component, "checkpoint");
  EXPECT_NE(events[0].detail.find("fingerprint-mismatch"), std::string::npos)
      << events[0].detail;

  // Wrong hyperparameters: same ladder, distinct fault name.
  fault::clear_degradation_events();
  EXPECT_FALSE(
      find_resume_checkpoint(dir_ / "run", 1, ck.model_fp, ck.train_fp + 1));
  events = fault::degradation_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].detail.find("config-mismatch"), std::string::npos)
      << events[0].detail;
}

// ------------------------------------------------- degradation ladder --

TEST_F(CheckpointTest, ResumeFallsBackPastCorruptNewestSlot) {
  TrainCheckpoint ck = sample_checkpoint();
  ck.epochs_completed = 3;
  ck.curve.push_back({0.7, 0.7, 0.15});
  save_train_checkpoint(checkpoint_slot_path(dir_ / "run", 0), sample_checkpoint());
  save_train_checkpoint(checkpoint_slot_path(dir_ / "run", 1), ck);
  corrupt_payload_byte(checkpoint_slot_path(dir_ / "run", 1));

  fault::clear_degradation_events();
  const auto best =
      find_resume_checkpoint(dir_ / "run", 3, ck.model_fp, ck.train_fp);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->epochs_completed, 2u);  // the older-but-valid slot
  const auto events = fault::degradation_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].detail.find("crc-mismatch"), std::string::npos);
  EXPECT_NE(events[0].detail.find("run.1"), std::string::npos);
}

TEST_F(CheckpointTest, InjectedReadFaultDegradesToNextSlot) {
  TrainCheckpoint newest = sample_checkpoint();
  newest.epochs_completed = 3;
  newest.curve.push_back({0.7, 0.7, 0.15});
  save_train_checkpoint(checkpoint_slot_path(dir_ / "run", 0), newest);
  save_train_checkpoint(checkpoint_slot_path(dir_ / "run", 1),
                        sample_checkpoint());

  // First read (slot 0, the newest) hits the injected "checkpoint.read"
  // fault; resume must degrade to slot 1 instead of dying.
  fault::clear_degradation_events();
  fault::FaultScope scope("checkpoint.read", 1);
  const auto best =
      find_resume_checkpoint(dir_ / "run", 2, newest.model_fp, newest.train_fp);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->epochs_completed, 2u);
  const auto events = fault::degradation_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].detail.find("transient"), std::string::npos);
}

TEST_F(CheckpointTest, AtomicWriteKeepsPreviousCheckpointOnInjectedRename) {
  const auto path = dir_ / "ck";
  save_train_checkpoint(path, sample_checkpoint());
  TrainCheckpoint updated = sample_checkpoint();
  updated.epochs_completed = 3;
  updated.curve.push_back({0.7, 0.7, 0.15});
  {
    // Crash in the window between the durable temp write and the rename:
    // the destination must keep its previous, fully valid contents.
    fault::FaultScope scope("io.rename", 1);
    EXPECT_THROW(save_train_checkpoint(path, updated), TransientError);
  }
  const TrainCheckpoint back = load_train_checkpoint(path);
  EXPECT_EQ(back.epochs_completed, 2u);
}

// ------------------------------------------------ resumable training --

struct TrainSetup {
  data::ScaledDataset ds;
  data::SplitView split;
  TrainConfig tc;
};

TrainSetup make_setup(const std::filesystem::path& ckpt_stem) {
  Rng rng(21);
  TrainSetup s{synthetic_dataset(12, 8, 3, 2, rng), data::split_dataset(12, 9),
               {}};
  s.tc.epochs = 6;
  s.tc.initial_lr = 0.05;
  s.tc.checkpoint_path = ckpt_stem;
  s.tc.checkpoint_every = 1;
  s.tc.checkpoint_keep = 3;
  return s;
}

/// Kill the run by injecting a fault at the start of epoch `kill_nth`
/// (1-based), resume it from disk, and require the resumed curve and the
/// final parameter vector to be bit-identical to an uninterrupted run.
void check_kill_and_resume(const std::filesystem::path& dir,
                           std::size_t kill_nth) {
  SCOPED_TRACE("kill at epoch hit " + std::to_string(kill_nth) + ", threads=" +
               std::to_string(num_threads()));
  const auto stem =
      dir / ("run_t" + std::to_string(num_threads()) + "_k" +
             std::to_string(kill_nth));
  TrainSetup ref_setup = make_setup(stem.string() + ".ref");
  Rng init_ref(22);
  QuGeoModel ref_model(tiny_model(), init_ref);
  const TrainResult reference =
      train_model(ref_model, ref_setup.ds, ref_setup.split, ref_setup.tc);
  ASSERT_EQ(reference.curve.size(), 6u);

  TrainSetup setup = make_setup(stem);
  {
    Rng init(22);
    QuGeoModel model(tiny_model(), init);
    fault::FaultScope scope("trainer.epoch", kill_nth);
    EXPECT_THROW(train_model(model, setup.ds, setup.split, setup.tc),
                 TransientError);
  }
  Rng init(23);  // different init: every parameter must come from the disk
  QuGeoModel resumed_model(tiny_model(), init);
  const TrainResult resumed =
      train_model(resumed_model, setup.ds, setup.split, setup.tc);

  EXPECT_EQ(resumed.resumed_from_epoch, kill_nth - 1);
  ASSERT_EQ(resumed.curve.size(), reference.curve.size());
  for (std::size_t e = 0; e < reference.curve.size(); ++e) {
    EXPECT_EQ(resumed.curve[e].train_loss, reference.curve[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(resumed.curve[e].test_ssim, reference.curve[e].test_ssim)
        << "epoch " << e;
    EXPECT_EQ(resumed.curve[e].test_mse, reference.curve[e].test_mse)
        << "epoch " << e;
  }
  const std::vector<Real> want = ref_model.parameters();
  const std::vector<Real> got = resumed_model.parameters();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < want.size(); ++k)
    EXPECT_EQ(got[k], want[k]) << "param " << k;
}

TEST_F(CheckpointTest, KillAndResumeBitIdenticalSingleThread) {
  const std::size_t before = num_threads();
  set_num_threads(1);
  check_kill_and_resume(dir_, 2);
  check_kill_and_resume(dir_, 4);
  check_kill_and_resume(dir_, 6);
  set_num_threads(before);
}

TEST_F(CheckpointTest, KillAndResumeBitIdenticalFourThreads) {
  const std::size_t before = num_threads();
  set_num_threads(4);
  check_kill_and_resume(dir_, 3);
  check_kill_and_resume(dir_, 5);
  set_num_threads(before);
}

TEST_F(CheckpointTest, CompletedRunRestartsFromScratchCleanly) {
  TrainSetup setup = make_setup(dir_ / "run");
  Rng init(24);
  QuGeoModel model(tiny_model(), init);
  const TrainResult first = train_model(model, setup.ds, setup.split, setup.tc);
  EXPECT_EQ(first.resumed_from_epoch, 0u);

  // A second run over the same stem resumes at the final epoch and does
  // no further training: same curve, same parameters.
  Rng init2(25);
  QuGeoModel model2(tiny_model(), init2);
  const TrainResult second =
      train_model(model2, setup.ds, setup.split, setup.tc);
  EXPECT_EQ(second.resumed_from_epoch, setup.tc.epochs);
  ASSERT_EQ(second.curve.size(), first.curve.size());
  EXPECT_EQ(second.curve.back().train_loss, first.curve.back().train_loss);
  EXPECT_EQ(model2.parameters(), model.parameters());
}

TEST_F(CheckpointTest, GarbageSlotsFallBackToFreshStart) {
  TrainSetup setup = make_setup(dir_ / "run");
  setup.tc.epochs = 2;
  std::ofstream(checkpoint_slot_path(dir_ / "run", 0)) << "garbage";
  std::ofstream(checkpoint_slot_path(dir_ / "run", 1)) << "more garbage";
  fault::clear_degradation_events();
  Rng init(26);
  QuGeoModel model(tiny_model(), init);
  const TrainResult r = train_model(model, setup.ds, setup.split, setup.tc);
  EXPECT_EQ(r.resumed_from_epoch, 0u);
  EXPECT_EQ(r.curve.size(), 2u);
  EXPECT_GE(fault::degradation_events().size(), 2u);
}

TEST_F(CheckpointTest, CheckpointWriteRetriesInjectedWriteFault) {
  TrainSetup setup = make_setup(dir_ / "run");
  setup.tc.epochs = 2;
  fault::FaultScope scope("io.atomic_write", 1);
  Rng init(27);
  QuGeoModel model(tiny_model(), init);
  const TrainResult r = train_model(model, setup.ds, setup.split, setup.tc);
  EXPECT_EQ(r.curve.size(), 2u);
  // The first write attempt fired and was retried; the slot is valid.
  EXPECT_GE(scope.hits(), 2u);
  const auto best = find_resume_checkpoint(
      dir_ / "run", 3, model_fingerprint(model.config()),
      train_fingerprint(setup.tc));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->epochs_completed, 2u);
}

// ------------------------------------------------- backend fault sites --

TEST_F(CheckpointTest, PredictRetriesInjectedBackendRunFault) {
  Rng rng(31);
  data::ScaledDataset ds = synthetic_dataset(4, 8, 3, 2, rng);
  Rng init(32);
  QuGeoModel model(tiny_model(), init);
  std::vector<const data::ScaledSample*> samples;
  for (const auto& s : ds.samples) samples.push_back(&s);

  const auto clean = model.predict(samples);
  {
    fault::FaultScope scope("backend.run", 1);
    const auto retried = model.predict(samples);
    EXPECT_GE(scope.hits(), 2u);  // first attempt fired, retry re-ran
    ASSERT_EQ(retried.size(), clean.size());
    for (std::size_t i = 0; i < clean.size(); ++i)
      EXPECT_EQ(retried[i], clean[i]);
  }
  // A fatal injection must propagate instead of being absorbed.
  fault::FaultScope fatal("backend.run", 1, 1, fault::FaultKind::kFatal);
  EXPECT_THROW((void)model.predict(samples), FatalError);
}

TEST_F(CheckpointTest, BackendPrepareFaultInjectable) {
  qsim::ExecutionConfig cfg;
  const auto backend = qsim::make_backend(cfg, 3);
  fault::FaultScope scope("backend.prepare", 1);
  EXPECT_THROW(backend->prepare(3), TransientError);
  backend->prepare(3);  // past the window: works again
  EXPECT_EQ(backend->num_qubits(), 3u);
}

// ----------------------------------------------------- env overrides --

TEST_F(CheckpointTest, TrainEnvOverridesApply) {
  const std::string stem = (dir_ / "env_ck").string();
  ASSERT_EQ(setenv("QUGEO_CHECKPOINT", stem.c_str(), 1), 0);
  TrainConfig base;
  TrainConfig withPath = apply_train_env_overrides(base);
  EXPECT_EQ(withPath.checkpoint_path, std::filesystem::path(stem));
  EXPECT_EQ(withPath.checkpoint_every, 1u);  // defaulted on by the path

  ASSERT_EQ(setenv("QUGEO_CHECKPOINT_EVERY", "5", 1), 0);
  TrainConfig both = apply_train_env_overrides(base);
  EXPECT_EQ(both.checkpoint_every, 5u);

  ASSERT_EQ(setenv("QUGEO_CHECKPOINT_EVERY", "nope", 1), 0);
  EXPECT_THROW((void)apply_train_env_overrides(base), std::invalid_argument);

  ASSERT_EQ(unsetenv("QUGEO_CHECKPOINT"), 0);
  ASSERT_EQ(unsetenv("QUGEO_CHECKPOINT_EVERY"), 0);
  TrainConfig untouched = apply_train_env_overrides(base);
  EXPECT_TRUE(untouched.checkpoint_path.empty());
  EXPECT_EQ(untouched.checkpoint_every, 0u);
}

}  // namespace
}  // namespace qugeo::core
