// Encoders: direct amplitude injection, grouped product states, and the
// synthesized state-preparation circuits (the circuit must reproduce the
// directly injected state exactly).
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "qsim/encoding.h"
#include "qsim/executor.h"

namespace qugeo::qsim {
namespace {

TEST(AmplitudeEncoding, NormalizesAndStores) {
  StateVector psi(2);
  const std::vector<Real> data = {3, 0, 4, 0};
  const Real norm = encode_amplitudes(data, psi);
  EXPECT_NEAR(norm, 5.0, 1e-12);
  EXPECT_NEAR(psi.probability(0), 0.36, 1e-12);
  EXPECT_NEAR(psi.probability(2), 0.64, 1e-12);
  EXPECT_NEAR(psi.norm_sq(), 1.0, 1e-12);
}

TEST(AmplitudeEncoding, ZeroVectorFallsBackToGround) {
  StateVector psi(2);
  const std::vector<Real> data = {0, 0, 0, 0};
  const Real norm = encode_amplitudes(data, psi);
  EXPECT_EQ(norm, 0.0);
  EXPECT_NEAR(psi.probability(0), 1.0, 1e-14);
}

TEST(AmplitudeEncoding, RejectsWrongLength) {
  StateVector psi(2);
  const std::vector<Real> data = {1, 2, 3};
  EXPECT_THROW(encode_amplitudes(data, psi), std::invalid_argument);
}

TEST(GroupedEncoding, ProductOfTwoGroups) {
  // group0 (low qubit): (1,0); group1 (high qubit): (0,1) -> |10>.
  const std::vector<std::vector<Real>> groups = {{1, 0}, {0, 1}};
  StateVector psi(2);
  encode_grouped_amplitudes(groups, psi);
  EXPECT_NEAR(psi.probability(2), 1.0, 1e-12);
}

TEST(GroupedEncoding, PerGroupNormalization) {
  const std::vector<std::vector<Real>> groups = {{2, 0, 0, 0}, {0, 10}};
  StateVector psi(3);
  encode_grouped_amplitudes(groups, psi);
  // group0 -> |00>, group1 -> |1>: joint |100> = index 4.
  EXPECT_NEAR(psi.probability(4), 1.0, 1e-12);
}

TEST(GroupedEncoding, MarginalsRecoverGroupData) {
  Rng rng(21);
  std::vector<std::vector<Real>> groups(2, std::vector<Real>(4));
  for (auto& g : groups) rng.fill_uniform(g, 0.1, 1.0);
  StateVector psi(4);
  encode_grouped_amplitudes(groups, psi);

  for (std::size_t g = 0; g < 2; ++g) {
    std::vector<Real> expect = groups[g];
    normalize_l2(expect);
    const std::vector<Index> qubits = g == 0 ? std::vector<Index>{0, 1}
                                             : std::vector<Index>{2, 3};
    const auto marg = psi.marginal_probabilities(qubits);
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_NEAR(marg[k], expect[k] * expect[k], 1e-12);
  }
}

TEST(GroupedEncoding, RejectsNonPow2Group) {
  const std::vector<std::vector<Real>> groups = {{1, 2, 3}};
  StateVector psi(2);
  EXPECT_THROW(encode_grouped_amplitudes(groups, psi), std::invalid_argument);
}

TEST(Ucry, NoControlsIsPlainRY) {
  Circuit c(1);
  const std::vector<Real> angles = {0.9};
  append_ucry(c, angles, {}, 0);
  ASSERT_EQ(c.num_ops(), 1u);
  EXPECT_EQ(c.ops()[0].kind, GateKind::kRY);
}

TEST(Ucry, ActsAsMultiplexer) {
  // With one control, UCRY applies RY(a0) when control=0 and RY(a1) when
  // control=1. Verify on both control settings.
  const std::vector<Real> angles = {0.6, -1.3};
  for (int ctrl_val = 0; ctrl_val < 2; ++ctrl_val) {
    Circuit c(2);
    const std::vector<Index> controls = {1};
    append_ucry(c, angles, controls, 0);
    StateVector psi(2);
    if (ctrl_val) psi.apply_1q(gate_matrix(GateKind::kX, {}), 1);
    run_circuit(c, {}, psi);
    const Real expected_p1 =
        std::pow(std::sin(angles[static_cast<std::size_t>(ctrl_val)] / 2), 2);
    const Index target_one = ctrl_val ? Index{3} : Index{1};
    EXPECT_NEAR(psi.probability(target_one), expected_p1, 1e-12) << ctrl_val;
  }
}

class StatePrepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StatePrepTest, CircuitReproducesTarget) {
  const std::size_t num_qubits = GetParam();
  const std::size_t dim = std::size_t{1} << num_qubits;
  Rng rng(1000 + num_qubits);
  std::vector<Real> data(dim);
  rng.fill_uniform(data, -1, 1);  // includes negative amplitudes

  const Circuit prep = state_prep_circuit(data);
  StateVector psi(num_qubits);
  run_circuit(prep, {}, psi);

  StateVector expected(num_qubits);
  encode_amplitudes(data, expected);
  EXPECT_NEAR(psi.fidelity(expected), 1.0, 1e-10) << num_qubits << " qubits";
}

INSTANTIATE_TEST_SUITE_P(Sizes, StatePrepTest, ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(StatePrep, GateCountGrowsLinearlyInDim) {
  // The multiplexed-RY construction uses ~2*2^n gates; the paper's QuBatch
  // complexity argument needs encoder growth linear in the state dimension.
  Rng rng(5);
  std::vector<Real> small(1 << 4), large(1 << 8);
  rng.fill_uniform(small, -1, 1);
  rng.fill_uniform(large, -1, 1);
  const std::size_t ops_small = state_prep_circuit(small).num_ops();
  const std::size_t ops_large = state_prep_circuit(large).num_ops();
  EXPECT_LE(ops_small, 2 * small.size() + 8);
  EXPECT_LE(ops_large, 2 * large.size() + 8);
}

TEST(StatePrep, RejectsNonPow2) {
  const std::vector<Real> data = {1, 2, 3};
  EXPECT_THROW((void)state_prep_circuit(data), std::invalid_argument);
}

TEST(AngleEncoding, UsesOneQubitPerFeature) {
  const std::vector<Real> data = {0.2, -0.5};
  const Circuit c = angle_encoding_circuit(data, 3);
  EXPECT_EQ(c.num_qubits(), 3u);
  EXPECT_EQ(c.num_ops(), 4u);  // H + RY per feature
}

TEST(AngleEncoding, RejectsTooManyFeatures) {
  const std::vector<Real> data = {0.1, 0.2, 0.3};
  EXPECT_THROW((void)angle_encoding_circuit(data, 2), std::invalid_argument);
}

}  // namespace
}  // namespace qugeo::qsim
