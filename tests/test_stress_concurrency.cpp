// Purpose-built contention stress for the ThreadSanitizer CI leg: hammers
// the shared thread pool, the CompiledCircuitCache, and the logger from
// many raw std::threads at once. The assertions are deliberately about
// invariants that survive any interleaving (coverage counts, the
// hits+compiles accounting identity, result equality against a
// single-threaded reference) — the real payload is that TSan observes the
// lock discipline under genuine concurrency, including the patterns a
// single parallel_for never produces: concurrent external submitters,
// cache clear() racing canonical(), and log-level flips mid-write.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "qsim/backend.h"
#include "qsim/compile_cache.h"

namespace qugeo::qsim {
namespace {

constexpr int kThreads = 8;
constexpr int kItersPerThread = 200;

/// Literal 1q runs + a repeated CX pair: fusable by both fuse_gate_runs
/// and fuse_two_qubit_runs, so canonical() returns a non-null compiled
/// circuit with strictly fewer ops. `spin` varies the literal angles so
/// distinct values of it are distinct cache keys.
Circuit fusable_circuit(int spin) {
  Circuit c(3);
  const Real base = Real(0.1) * static_cast<Real>(spin + 1);
  c.rx(0, base);
  c.rz(0, base + Real(0.25));
  c.rx(0, base + Real(0.5));
  c.cx(0, 1);
  c.cx(0, 1);
  c.ry(2, base);
  c.rz(2, base + Real(1));
  return c;
}

/// Single trainable gate: canonicalization is the identity, so the cache
/// memoizes a null entry for it.
Circuit identity_circuit() {
  Circuit c(2);
  const ParamRef p = c.new_param();
  c.ry(0, p);
  c.cx(0, 1);
  return c;
}

TEST(StressConcurrency, CacheHammeredFromManyThreads) {
  // Shared read-only key set; every thread looks all of them up
  // repeatedly while thread 0 periodically drops the whole table.
  std::vector<Circuit> fusable;
  for (int s = 0; s < 4; ++s) fusable.push_back(fusable_circuit(s));
  const Circuit identity = identity_circuit();

  CompiledCircuitCache cache;
  std::atomic<std::size_t> calls{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const Circuit& key = fusable[static_cast<std::size_t>((t + i) % 4)];
        const auto compiled = cache.canonical(key, BackendKind::kStatevector);
        ASSERT_NE(compiled, nullptr);
        ASSERT_LT(compiled->num_ops(), key.num_ops());
        ASSERT_EQ(cache.canonical(identity, BackendKind::kStatevector),
                  nullptr);
        calls.fetch_add(2, std::memory_order_relaxed);
        // Same structure under a different backend kind: distinct entry.
        const auto density =
            cache.canonical(key, BackendKind::kDensityMatrix);
        ASSERT_NE(density, nullptr);
        calls.fetch_add(1, std::memory_order_relaxed);
        if (t == 0 && i % 64 == 63) cache.clear();
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Every canonical() call lands in exactly one counter, clears or not.
  EXPECT_EQ(cache.compile_count() + cache.hit_count(), calls.load());
  // 9 distinct keys, cleared a handful of times: far fewer compiles than
  // lookups or the memoization is not actually shared.
  EXPECT_LT(cache.compile_count(), calls.load() / 10);
}

TEST(StressConcurrency, ConcurrentExternalSubmittersGetCorrectResults) {
  // parallel_for from several non-pool threads at once: submissions
  // overwrite each other's slot in the pool, so every submitter must
  // still see its own full iteration space (drained by itself if the
  // workers moved on).
  set_num_threads(4);
  constexpr std::size_t kRange = 4096;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::vector<std::uint64_t> sums(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 50; ++rep) {
        std::vector<std::atomic<std::uint32_t>> hits(kRange);
        parallel_for(0, kRange, [&](std::size_t i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        std::uint64_t sum = 0;
        for (auto& h : hits) sum += h.load(std::memory_order_relaxed);
        ASSERT_EQ(sum, kRange) << "submitter " << t << " rep " << rep;
        sums[static_cast<std::size_t>(t)] += sum;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (const std::uint64_t s : sums) EXPECT_EQ(s, 50u * kRange);
  set_num_threads(0);
}

TEST(StressConcurrency, NestedSubmissionInsidePoolWorkRunsInline) {
  set_num_threads(4);
  std::vector<std::atomic<std::uint32_t>> hits(64 * 64);
  parallel_for(0, 64, [&](std::size_t row) {
    parallel_for(0, 64, [&](std::size_t col) {
      hits[row * 64 + col].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1u);
  set_num_threads(0);
}

TEST(StressConcurrency, BackendsShareOneCacheAcrossThreads) {
  // The predict-style fan-out, but from raw external threads: every
  // thread builds its own backend against one shared cache and must
  // compute the identical distribution.
  const Circuit frozen = fusable_circuit(0);
  auto cache = std::make_shared<CompiledCircuitCache>();
  ExecutionConfig cfg;
  cfg.compile_cache = cache;

  std::vector<Real> reference;
  {
    const auto backend = make_backend(cfg, 3);
    backend->run(frozen, {});
    reference = backend->probabilities();
  }

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        const auto backend = make_backend(cfg, 3);
        backend->run(frozen, {});
        ASSERT_EQ(backend->probabilities(), reference);
      }
    });
  }
  for (std::thread& th : threads) th.join();
}

TEST(StressConcurrency, LoggerSurvivesConcurrentWritesAndLevelFlips) {
  const LogLevel before = log_level();
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    int flips = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      set_log_level(++flips % 2 ? LogLevel::kError : LogLevel::kWarn);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        // Below every active threshold: exercises the level load + early
        // return. A handful of kWarn lines take the stderr lock for real
        // without flooding the test log.
        log_debug("stress debug ", t, " ", i);
        if (i % 100 == 0) log_warn("stress warn ", t, " ", i);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  stop.store(true, std::memory_order_relaxed);
  flipper.join();
  set_log_level(before);
}

}  // namespace
}  // namespace qugeo::qsim
