// QuGeoData scalers: output shapes, normalization, D-Sample vs Q-D-FW
// behaviour, CNN compressor training.
#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "data/cnn_scaler.h"
#include "data/scaling.h"
#include "metrics/image_metrics.h"

namespace qugeo::data {
namespace {

/// A small raw dataset (reduced grid and trace count) for fast tests.
RawDataset small_raw(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  seismic::FlatVelConfig vcfg;
  vcfg.nz = 35;
  vcfg.nx = 35;
  seismic::Acquisition acq;
  acq.num_sources = 5;
  acq.num_receivers = 35;
  acq.num_time_samples = 200;
  return generate_raw_dataset(count, vcfg, acq, rng);
}

TEST(VelocityScaling, NormalizedToUnitInterval) {
  Rng rng(1);
  const auto m = seismic::generate_flatvel(seismic::FlatVelConfig{}, rng);
  const auto v = scale_velocity_map(m, 8, 8);
  ASSERT_EQ(v.size(), 64u);
  for (Real x : v) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(VelocityScaling, RowsStayConstantForFlatModels) {
  Rng rng(2);
  const auto m = seismic::generate_flatvel(seismic::FlatVelConfig{}, rng);
  const auto v = scale_velocity_map(m, 8, 8);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 1; j < 8; ++j)
      ASSERT_EQ(v[i * 8 + j], v[i * 8]) << "row " << i;
}

TEST(VelocityNormalization, RoundTrip) {
  for (Real v : {1500.0, 2700.0, 4500.0})
    EXPECT_NEAR(denormalize_velocity(normalize_velocity(v)), v, 1e-9);
  EXPECT_NEAR(normalize_velocity(1500.0), 0.0, 1e-12);
  EXPECT_NEAR(normalize_velocity(4500.0), 1.0, 1e-12);
}

TEST(DSample, ProducesTargetShape) {
  const RawDataset raw = small_raw(2, 10);
  const DSampleScaler scaler;
  const ScaledSample s = scaler.scale(raw.samples[0]);
  EXPECT_EQ(s.waveform.size(), 256u);
  EXPECT_EQ(s.velocity.size(), 64u);
}

TEST(DSample, PicksValuesFromRawVolume) {
  // With the time gain disabled, every D-Sample waveform value must
  // literally exist in the raw volume (pure nearest-neighbour picking).
  const RawDataset raw = small_raw(1, 11);
  ScaleTarget target;
  target.time_gain_power = 0;
  const DSampleScaler scaler(target);
  const ScaledSample s = scaler.scale(raw.samples[0]);
  const auto& rawdata = raw.samples[0].seismic.data();
  for (Real v : s.waveform) {
    bool found = false;
    for (Real r : rawdata)
      if (r == v) {
        found = true;
        break;
      }
    ASSERT_TRUE(found);
  }
}

TEST(QdFw, ProducesPhysicallyCoherentData) {
  const RawDataset raw = small_raw(1, 12);
  const ForwardModelScaler scaler;
  const ScaledSample s = scaler.scale(raw.samples[0]);
  EXPECT_EQ(s.waveform.size(), 256u);
  Real peak = 0;
  for (Real v : s.waveform) peak = std::max(peak, std::abs(v));
  EXPECT_GT(peak, 0.0);
}

TEST(QdFw, DistinguishesVelocityModels) {
  const RawDataset raw = small_raw(2, 13);
  const ForwardModelScaler scaler;
  auto a = scaler.scale(raw.samples[0]).waveform;
  auto b = scaler.scale(raw.samples[1]).waveform;
  normalize_l2(a);
  normalize_l2(b);
  Real diff = 0;
  for (std::size_t k = 0; k < a.size(); ++k) diff += std::abs(a[k] - b[k]);
  EXPECT_GT(diff, 1e-6);
}

TEST(ScaleDataset, AppliesToAllSamples) {
  const RawDataset raw = small_raw(3, 14);
  const DSampleScaler scaler;
  const ScaledDataset ds = scaler.scale_dataset(raw, ScaleTarget{});
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.scaler_name, "D-Sample");
  EXPECT_EQ(ds.waveform_size(), 256u);
  EXPECT_EQ(ds.velocity_size(), 64u);
}

TEST(CnnScaler, TrainsAndCompresses) {
  const RawDataset raw = small_raw(6, 15);
  CnnScalerConfig ccfg;
  ccfg.epochs = 30;
  Rng rng(99);
  const CnnScaler scaler = train_cnn_scaler(raw, ScaleTarget{}, ccfg, rng);
  EXPECT_GT(scaler.param_count(), 1000u);

  const ScaledSample s = scaler.scale(raw.samples[0]);
  EXPECT_EQ(s.waveform.size(), 256u);
  EXPECT_EQ(s.velocity.size(), 64u);
}

TEST(CnnScaler, ApproximatesPhysicsGuidedTarget) {
  // After training, CNN output should be much closer to the Q-D-FW waveform
  // than an untrained network's output would be (correlation with target).
  const RawDataset raw = small_raw(8, 16);
  CnnScalerConfig ccfg;
  ccfg.epochs = 60;
  Rng rng(7);
  const CnnScaler scaler = train_cnn_scaler(raw, ScaleTarget{}, ccfg, rng);

  const ForwardModelScaler reference;
  Real corr_sum = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    auto pred = scaler.scale(raw.samples[i]).waveform;
    auto target = reference.scale(raw.samples[i]).waveform;
    normalize_l2(pred);
    normalize_l2(target);
    Real dot = 0;
    for (std::size_t k = 0; k < pred.size(); ++k) dot += pred[k] * target[k];
    corr_sum += dot;
  }
  EXPECT_GT(corr_sum / static_cast<Real>(raw.size()), 0.5);
}

TEST(CnnScaler, EmptyTrainSetRejected) {
  RawDataset empty;
  Rng rng(1);
  EXPECT_THROW((void)train_cnn_scaler(empty, ScaleTarget{}, CnnScalerConfig{}, rng),
               std::invalid_argument);
}

TEST(SplitDataset, PartitionsIndices) {
  const SplitView s = split_dataset(10, 7);
  EXPECT_EQ(s.train.size(), 7u);
  EXPECT_EQ(s.test.size(), 3u);
  EXPECT_EQ(s.train.front(), 0u);
  EXPECT_EQ(s.test.front(), 7u);
  EXPECT_THROW((void)split_dataset(5, 6), std::invalid_argument);
}

}  // namespace
}  // namespace qugeo::data
