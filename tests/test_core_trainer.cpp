// Training loop: loss decreases on a learnable synthetic task, evaluation
// metrics behave, QuBatch trains.
#include <gtest/gtest.h>

#include "core/trainer.h"

namespace qugeo::core {
namespace {

/// Synthetic learnable dataset: targets depend deterministically on the
/// waveform (row velocity = mean of a waveform slice), so a trained model
/// must beat its untrained self.
data::ScaledDataset synthetic_dataset(std::size_t n, std::size_t wave_size,
                                      std::size_t rows, std::size_t cols,
                                      Rng& rng) {
  data::ScaledDataset ds;
  ds.scaler_name = "synthetic";
  ds.nsrc = 1;
  ds.nt = 1;
  ds.nrec = wave_size;
  ds.vel_rows = rows;
  ds.vel_cols = cols;
  ds.samples.resize(n);
  for (auto& s : ds.samples) {
    s.waveform.resize(wave_size);
    rng.fill_uniform(s.waveform, -1, 1);
    s.velocity.resize(rows * cols);
    const std::size_t chunk = wave_size / rows;
    for (std::size_t i = 0; i < rows; ++i) {
      Real m = 0;
      for (std::size_t k = 0; k < chunk; ++k)
        m += std::abs(s.waveform[i * chunk + k]);
      const Real v = m / static_cast<Real>(chunk);
      for (std::size_t j = 0; j < cols; ++j) s.velocity[i * cols + j] = v;
    }
  }
  return ds;
}

ModelConfig tiny_model(DecoderKind dec, Index batch_log2 = 0) {
  ModelConfig mc;
  mc.group_data_qubits = {3};
  mc.batch_log2 = batch_log2;
  mc.ansatz.blocks = 3;
  mc.decoder = dec;
  mc.vel_rows = dec == DecoderKind::kLayer ? 3 : 2;
  mc.vel_cols = 2;
  return mc;
}

TEST(Trainer, LossDecreases) {
  Rng rng(1);
  data::ScaledDataset ds = synthetic_dataset(24, 8, 3, 2, rng);
  const data::SplitView split = data::split_dataset(24, 18);

  Rng init(2);
  QuGeoModel model(tiny_model(DecoderKind::kLayer), init);
  TrainConfig tc;
  tc.epochs = 30;
  tc.initial_lr = 0.05;
  const TrainResult r = train_model(model, ds, split, tc);
  ASSERT_EQ(r.curve.size(), 30u);
  EXPECT_LT(r.curve.back().train_loss, r.curve.front().train_loss * 0.8);
}

TEST(Trainer, SsimImprovesOverTraining) {
  Rng rng(3);
  data::ScaledDataset ds = synthetic_dataset(24, 8, 3, 2, rng);
  const data::SplitView split = data::split_dataset(24, 18);
  Rng init(4);
  QuGeoModel model(tiny_model(DecoderKind::kLayer), init);
  TrainConfig tc;
  tc.epochs = 40;
  tc.initial_lr = 0.05;
  const TrainResult r = train_model(model, ds, split, tc);
  EXPECT_GT(r.final_ssim, r.curve.front().test_ssim);
  EXPECT_LT(r.final_mse, r.curve.front().test_mse);
}

TEST(Trainer, PixelDecoderTrains) {
  Rng rng(5);
  data::ScaledDataset ds = synthetic_dataset(16, 8, 2, 2, rng);
  const data::SplitView split = data::split_dataset(16, 12);
  Rng init(6);
  QuGeoModel model(tiny_model(DecoderKind::kPixel), init);
  TrainConfig tc;
  tc.epochs = 30;
  tc.initial_lr = 0.05;
  const TrainResult r = train_model(model, ds, split, tc);
  EXPECT_LT(r.curve.back().train_loss, r.curve.front().train_loss);
}

TEST(Trainer, QuBatchTrains) {
  Rng rng(7);
  data::ScaledDataset ds = synthetic_dataset(16, 8, 3, 2, rng);
  const data::SplitView split = data::split_dataset(16, 12);
  Rng init(8);
  QuGeoModel model(tiny_model(DecoderKind::kLayer, 1), init);
  EXPECT_EQ(model.batch_size(), 2u);
  TrainConfig tc;
  tc.epochs = 25;
  tc.initial_lr = 0.05;
  const TrainResult r = train_model(model, ds, split, tc);
  EXPECT_LT(r.curve.back().train_loss, r.curve.front().train_loss);
}

TEST(Trainer, DeterministicGivenSeeds) {
  Rng rng(9);
  data::ScaledDataset ds = synthetic_dataset(12, 8, 3, 2, rng);
  const data::SplitView split = data::split_dataset(12, 9);
  TrainConfig tc;
  tc.epochs = 5;

  Rng i1(10), i2(10);
  QuGeoModel m1(tiny_model(DecoderKind::kLayer), i1);
  QuGeoModel m2(tiny_model(DecoderKind::kLayer), i2);
  const TrainResult r1 = train_model(m1, ds, split, tc);
  const TrainResult r2 = train_model(m2, ds, split, tc);
  for (std::size_t e = 0; e < 5; ++e)
    EXPECT_EQ(r1.curve[e].train_loss, r2.curve[e].train_loss);
}

TEST(Evaluate, PerfectPredictionScoresOne) {
  Rng rng(11);
  data::ScaledDataset ds = synthetic_dataset(4, 8, 3, 2, rng);
  const std::vector<std::size_t> idx = {0, 1, 2, 3};
  std::vector<std::vector<Real>> preds;
  for (std::size_t i : idx) preds.push_back(ds.samples[i].velocity);
  const EvalMetrics m = evaluate_predictions(preds, ds, idx);
  EXPECT_NEAR(m.ssim, 1.0, 1e-9);
  EXPECT_NEAR(m.mse, 0.0, 1e-12);
}

TEST(Evaluate, EmptyIndicesGiveZero) {
  Rng rng(12);
  data::ScaledDataset ds = synthetic_dataset(2, 8, 3, 2, rng);
  const EvalMetrics m = evaluate_predictions({}, ds, {});
  EXPECT_EQ(m.ssim, 0.0);
  EXPECT_EQ(m.mse, 0.0);
}

}  // namespace
}  // namespace qugeo::core
