// Training loop: loss decreases on a learnable synthetic task, evaluation
// metrics behave, QuBatch trains, epoch sharding is bit-identical across
// thread counts and composes with checkpoint/resume and gradient fusion,
// and the GradientPlan cache builds exactly once per run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "common/fault.h"
#include "common/parallel.h"
#include "core/trainer.h"

namespace qugeo::core {
namespace {

/// Synthetic learnable dataset: targets depend deterministically on the
/// waveform (row velocity = mean of a waveform slice), so a trained model
/// must beat its untrained self.
data::ScaledDataset synthetic_dataset(std::size_t n, std::size_t wave_size,
                                      std::size_t rows, std::size_t cols,
                                      Rng& rng) {
  data::ScaledDataset ds;
  ds.scaler_name = "synthetic";
  ds.nsrc = 1;
  ds.nt = 1;
  ds.nrec = wave_size;
  ds.vel_rows = rows;
  ds.vel_cols = cols;
  ds.samples.resize(n);
  for (auto& s : ds.samples) {
    s.waveform.resize(wave_size);
    rng.fill_uniform(s.waveform, -1, 1);
    s.velocity.resize(rows * cols);
    const std::size_t chunk = wave_size / rows;
    for (std::size_t i = 0; i < rows; ++i) {
      Real m = 0;
      for (std::size_t k = 0; k < chunk; ++k)
        m += std::abs(s.waveform[i * chunk + k]);
      const Real v = m / static_cast<Real>(chunk);
      for (std::size_t j = 0; j < cols; ++j) s.velocity[i * cols + j] = v;
    }
  }
  return ds;
}

ModelConfig tiny_model(DecoderKind dec, Index batch_log2 = 0) {
  ModelConfig mc;
  mc.group_data_qubits = {3};
  mc.batch_log2 = batch_log2;
  mc.ansatz.blocks = 3;
  mc.decoder = dec;
  mc.vel_rows = dec == DecoderKind::kLayer ? 3 : 2;
  mc.vel_cols = 2;
  return mc;
}

TEST(Trainer, LossDecreases) {
  Rng rng(1);
  data::ScaledDataset ds = synthetic_dataset(24, 8, 3, 2, rng);
  const data::SplitView split = data::split_dataset(24, 18);

  Rng init(2);
  QuGeoModel model(tiny_model(DecoderKind::kLayer), init);
  TrainConfig tc;
  tc.epochs = 30;
  tc.initial_lr = 0.05;
  const TrainResult r = train_model(model, ds, split, tc);
  ASSERT_EQ(r.curve.size(), 30u);
  EXPECT_LT(r.curve.back().train_loss, r.curve.front().train_loss * 0.8);
}

TEST(Trainer, SsimImprovesOverTraining) {
  Rng rng(3);
  data::ScaledDataset ds = synthetic_dataset(24, 8, 3, 2, rng);
  const data::SplitView split = data::split_dataset(24, 18);
  Rng init(4);
  QuGeoModel model(tiny_model(DecoderKind::kLayer), init);
  TrainConfig tc;
  tc.epochs = 40;
  tc.initial_lr = 0.05;
  const TrainResult r = train_model(model, ds, split, tc);
  EXPECT_GT(r.final_ssim, r.curve.front().test_ssim);
  EXPECT_LT(r.final_mse, r.curve.front().test_mse);
}

TEST(Trainer, PixelDecoderTrains) {
  Rng rng(5);
  data::ScaledDataset ds = synthetic_dataset(16, 8, 2, 2, rng);
  const data::SplitView split = data::split_dataset(16, 12);
  Rng init(6);
  QuGeoModel model(tiny_model(DecoderKind::kPixel), init);
  TrainConfig tc;
  tc.epochs = 30;
  tc.initial_lr = 0.05;
  const TrainResult r = train_model(model, ds, split, tc);
  EXPECT_LT(r.curve.back().train_loss, r.curve.front().train_loss);
}

TEST(Trainer, QuBatchTrains) {
  Rng rng(7);
  data::ScaledDataset ds = synthetic_dataset(16, 8, 3, 2, rng);
  const data::SplitView split = data::split_dataset(16, 12);
  Rng init(8);
  QuGeoModel model(tiny_model(DecoderKind::kLayer, 1), init);
  EXPECT_EQ(model.batch_size(), 2u);
  TrainConfig tc;
  tc.epochs = 25;
  tc.initial_lr = 0.05;
  const TrainResult r = train_model(model, ds, split, tc);
  EXPECT_LT(r.curve.back().train_loss, r.curve.front().train_loss);
}

TEST(Trainer, DeterministicGivenSeeds) {
  Rng rng(9);
  data::ScaledDataset ds = synthetic_dataset(12, 8, 3, 2, rng);
  const data::SplitView split = data::split_dataset(12, 9);
  TrainConfig tc;
  tc.epochs = 5;

  Rng i1(10), i2(10);
  QuGeoModel m1(tiny_model(DecoderKind::kLayer), i1);
  QuGeoModel m2(tiny_model(DecoderKind::kLayer), i2);
  const TrainResult r1 = train_model(m1, ds, split, tc);
  const TrainResult r2 = train_model(m2, ds, split, tc);
  for (std::size_t e = 0; e < 5; ++e)
    EXPECT_EQ(r1.curve[e].train_loss, r2.curve[e].train_loss);
}

// ------------------------------------------------------ epoch sharding --

/// One full training run from fixed seeds under the given shard count.
struct RunOutput {
  TrainResult result;
  std::vector<Real> params;
};

RunOutput sharded_run(std::size_t grad_shards) {
  Rng rng(9);
  data::ScaledDataset ds = synthetic_dataset(12, 8, 3, 2, rng);
  const data::SplitView split = data::split_dataset(12, 9);
  TrainConfig tc;
  tc.epochs = 4;
  tc.initial_lr = 0.05;
  tc.chunks_per_step = 4;
  tc.grad_shards = grad_shards;
  Rng init(10);
  QuGeoModel model(tiny_model(DecoderKind::kLayer), init);
  RunOutput out{train_model(model, ds, split, tc), model.parameters()};
  return out;
}

void expect_identical_runs(const RunOutput& a, const RunOutput& b) {
  ASSERT_EQ(a.result.curve.size(), b.result.curve.size());
  for (std::size_t e = 0; e < a.result.curve.size(); ++e) {
    EXPECT_EQ(a.result.curve[e].train_loss, b.result.curve[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(a.result.curve[e].test_ssim, b.result.curve[e].test_ssim)
        << "epoch " << e;
  }
  ASSERT_EQ(a.params.size(), b.params.size());
  for (std::size_t k = 0; k < a.params.size(); ++k)
    EXPECT_EQ(a.params[k], b.params[k]) << "param " << k;
}

TEST(TrainerSharding, BitIdenticalAcrossThreadCounts) {
  // The shard partition and both fold orders depend only on the config,
  // never on the pool size: 1, 2 and 4 workers must produce the same bits.
  const std::size_t before = num_threads();
  set_num_threads(1);
  const RunOutput t1 = sharded_run(2);
  set_num_threads(2);
  const RunOutput t2 = sharded_run(2);
  set_num_threads(4);
  const RunOutput t4 = sharded_run(2);
  set_num_threads(before);
  expect_identical_runs(t1, t2);
  expect_identical_runs(t1, t4);
}

TEST(TrainerSharding, OneChunkPerShardMatchesDefaultBitwise) {
  // grad_shards = 0 keeps one slot per chunk (the pre-sharding layout);
  // any shard count >= the group size degenerates to the same partition.
  const RunOutput per_chunk = sharded_run(0);
  const RunOutput capped = sharded_run(64);
  expect_identical_runs(per_chunk, capped);
}

TEST(TrainerSharding, KillAndResumeBitIdenticalWithShardingAndGradFusion) {
  // The PR 7 kill-and-resume harness with epoch sharding AND gradient
  // fusion both active: a run killed mid-training and resumed from disk
  // must match an uninterrupted run bit for bit.
  const auto dir = std::filesystem::temp_directory_path() /
                   "qugeo_trainer_shard_resume";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  Rng rng(21);
  data::ScaledDataset ds = synthetic_dataset(12, 8, 3, 2, rng);
  const data::SplitView split = data::split_dataset(12, 9);
  const auto config_for = [&](const char* stem) {
    TrainConfig tc;
    tc.epochs = 5;
    tc.initial_lr = 0.05;
    tc.chunks_per_step = 4;
    tc.grad_shards = 2;
    tc.checkpoint_path = dir / stem;
    tc.checkpoint_every = 1;
    return tc;
  };
  auto model_config = tiny_model(DecoderKind::kLayer);
  model_config.execution.grad_fusion = true;

  Rng init_ref(22);
  QuGeoModel ref_model(model_config, init_ref);
  const TrainResult reference =
      train_model(ref_model, ds, split, config_for("ref"));

  const TrainConfig tc = config_for("killed");
  {
    Rng init(22);
    QuGeoModel model(model_config, init);
    fault::FaultScope scope("trainer.epoch", 3);
    EXPECT_THROW(train_model(model, ds, split, tc), TransientError);
  }
  Rng init(23);  // different init: every parameter must come from the disk
  QuGeoModel resumed_model(model_config, init);
  const TrainResult resumed = train_model(resumed_model, ds, split, tc);

  EXPECT_EQ(resumed.resumed_from_epoch, 2u);
  ASSERT_EQ(resumed.curve.size(), reference.curve.size());
  for (std::size_t e = 0; e < reference.curve.size(); ++e)
    EXPECT_EQ(resumed.curve[e].train_loss, reference.curve[e].train_loss)
        << "epoch " << e;
  EXPECT_EQ(resumed_model.parameters(), ref_model.parameters());
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------- gradient-plan cache --

TEST(TrainerGradientPlan, CacheBuildsOncePerRun) {
  Rng rng(13);
  data::ScaledDataset ds = synthetic_dataset(12, 8, 3, 2, rng);
  const data::SplitView split = data::split_dataset(12, 9);
  TrainConfig tc;
  tc.epochs = 3;
  tc.initial_lr = 0.05;
  Rng init(14);
  QuGeoModel model(tiny_model(DecoderKind::kLayer), init);
  (void)train_model(model, ds, split, tc);
  const auto& cache = *model.compile_cache();
  if (!model.execution_config().grad_fusion) {
    // QUGEO_GRAD_FUSION=off leg: the knob must really disable the path.
    EXPECT_EQ(cache.plan_compile_count(), 0u);
    EXPECT_EQ(cache.plan_hit_count(), 0u);
    return;
  }
  // One build, then every later lookup hits: loss_and_gradient fetches the
  // plan twice per chunk (forward replay + adjoint sweep), the train split
  // has 9 chunks of batch size 1, and the run does 3 epochs.
  EXPECT_EQ(cache.plan_compile_count(), 1u);
  EXPECT_EQ(cache.plan_hit_count(), 2u * 9u * 3u - 1u);
}

TEST(TrainerGradientPlan, FusionKnobBitIdenticalOnAllTrainableAnsatz) {
  // The QuGeoVQC ansatz is all-trainable, so its GradientPlan is the
  // identity: the fused and unfused training paths must agree BITWISE
  // (this is what keeps the default path identical to the pre-plan loop).
  Rng rng(15);
  data::ScaledDataset ds = synthetic_dataset(4, 8, 3, 2, rng);
  std::vector<const data::ScaledSample*> chunk = {&ds.samples[0]};

  Rng init(16);
  QuGeoModel model(tiny_model(DecoderKind::kLayer), init);
  auto exec_on = model.execution_config();
  exec_on.grad_fusion = true;
  auto exec_off = exec_on;
  exec_off.grad_fusion = false;

  model.set_execution_config(exec_on);
  std::vector<Real> g_on(model.num_params(), Real(0));
  const Real loss_on = model.loss_and_gradient(chunk, g_on);
  model.set_execution_config(exec_off);
  std::vector<Real> g_off(model.num_params(), Real(0));
  const Real loss_off = model.loss_and_gradient(chunk, g_off);

  EXPECT_EQ(loss_on, loss_off);
  EXPECT_EQ(g_on, g_off);
}

TEST(TrainerSharding, EnvOverrideParsesStrictly) {
  ASSERT_EQ(setenv("QUGEO_GRAD_SHARDS", "3", 1), 0);
  EXPECT_EQ(apply_train_env_overrides({}).grad_shards, 3u);
  ASSERT_EQ(setenv("QUGEO_GRAD_SHARDS", "many", 1), 0);
  EXPECT_THROW((void)apply_train_env_overrides({}), std::invalid_argument);
  ASSERT_EQ(unsetenv("QUGEO_GRAD_SHARDS"), 0);
  EXPECT_EQ(apply_train_env_overrides({}).grad_shards, 0u);
}

TEST(Evaluate, PerfectPredictionScoresOne) {
  Rng rng(11);
  data::ScaledDataset ds = synthetic_dataset(4, 8, 3, 2, rng);
  const std::vector<std::size_t> idx = {0, 1, 2, 3};
  std::vector<std::vector<Real>> preds;
  for (std::size_t i : idx) preds.push_back(ds.samples[i].velocity);
  const EvalMetrics m = evaluate_predictions(preds, ds, idx);
  EXPECT_NEAR(m.ssim, 1.0, 1e-9);
  EXPECT_NEAR(m.mse, 0.0, 1e-12);
}

TEST(Evaluate, EmptyIndicesGiveZero) {
  Rng rng(12);
  data::ScaledDataset ds = synthetic_dataset(2, 8, 3, 2, rng);
  const EvalMetrics m = evaluate_predictions({}, ds, {});
  EXPECT_EQ(m.ssim, 0.0);
  EXPECT_EQ(m.mse, 0.0);
}

}  // namespace
}  // namespace qugeo::core
