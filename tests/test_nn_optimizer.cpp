// Optimizers and schedules: convergence on convex toy problems.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.h"
#include "nn/schedule.h"

namespace qugeo::nn {
namespace {

/// Quadratic bowl: L = 0.5 * sum((x - c)^2); grad = x - c.
void fill_quadratic_grad(Param& p, const std::vector<Real>& c) {
  for (std::size_t i = 0; i < p.numel(); ++i)
    p.grad[i] = p.value[i] - c[i];
}

TEST(Sgd, ConvergesOnQuadratic) {
  Param p({3});
  p.value = Tensor({3}, {5, -4, 2});
  const std::vector<Real> target = {1, 2, 3};
  Sgd opt({&p});
  for (int step = 0; step < 200; ++step) {
    opt.zero_grad();
    fill_quadratic_grad(p, target);
    opt.step(0.1);
  }
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(p.value[i], target[i], 1e-6);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  Param plain({1}), mom({1});
  plain.value[0] = mom.value[0] = 10.0;
  Sgd opt_plain({&plain}, 0.0);
  Sgd opt_mom({&mom}, 0.9);
  for (int step = 0; step < 20; ++step) {
    opt_plain.zero_grad();
    plain.grad[0] = plain.value[0];
    opt_plain.step(0.01);
    opt_mom.zero_grad();
    mom.grad[0] = mom.value[0];
    opt_mom.step(0.01);
  }
  EXPECT_LT(std::abs(mom.value[0]), std::abs(plain.value[0]));
}

TEST(Adam, ConvergesOnQuadratic) {
  Param p({2});
  p.value = Tensor({2}, {-3, 7});
  const std::vector<Real> target = {0.5, -0.5};
  Adam opt({&p});
  for (int step = 0; step < 2000; ++step) {
    opt.zero_grad();
    fill_quadratic_grad(p, target);
    opt.step(0.05);
  }
  EXPECT_NEAR(p.value[0], target[0], 0.01);
  EXPECT_NEAR(p.value[1], target[1], 0.01);
}

TEST(Adam, FirstStepIsLrSized) {
  // With bias correction the first Adam step is ~lr * sign(grad).
  Param p({1});
  p.value[0] = 0.0;
  Adam opt({&p});
  p.grad[0] = 0.001;  // tiny gradient, but normalized step
  opt.step(0.1);
  EXPECT_NEAR(p.value[0], -0.1, 1e-4);
}

TEST(Optimizer, ZeroGradClears) {
  Param p({4});
  p.grad.fill(3.0);
  Sgd opt({&p});
  opt.zero_grad();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(p.grad[i], 0.0);
}

TEST(CosineSchedule, EndpointsAndMonotonicity) {
  const CosineAnnealingLr sched(0.1, 100, 0.0);
  EXPECT_NEAR(sched.lr(0), 0.1, 1e-12);
  EXPECT_NEAR(sched.lr(50), 0.05, 1e-12);
  EXPECT_NEAR(sched.lr(100), 0.0, 1e-12);
  EXPECT_NEAR(sched.lr(500), 0.0, 1e-12);  // clamped past the horizon
  for (std::size_t e = 1; e <= 100; ++e) EXPECT_LE(sched.lr(e), sched.lr(e - 1));
}

TEST(CosineSchedule, RespectsMinLr) {
  const CosineAnnealingLr sched(0.1, 10, 0.01);
  EXPECT_NEAR(sched.lr(10), 0.01, 1e-12);
  EXPECT_GE(sched.lr(5), 0.01);
}

TEST(ConstantSchedule, IsConstant) {
  const ConstantLr sched(0.3);
  EXPECT_EQ(sched.lr(0), 0.3);
  EXPECT_EQ(sched.lr(1000), 0.3);
}

}  // namespace
}  // namespace qugeo::nn
