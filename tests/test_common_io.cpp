// Tensor/CSV serialization round trips and failure modes, plus the
// CRC-guarded framed container (atomic writes, corruption taxonomy,
// legacy headerless sniffing).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/fault.h"
#include "common/io.h"

namespace qugeo {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "qugeo_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, TensorRoundTrip) {
  const std::vector<Real> data = {1.5, -2.25, 3.75, 0.0, 9.0, -1.0};
  const std::vector<std::size_t> shape = {2, 3};
  save_tensor(dir_ / "t.qgt", data, shape);
  const LoadedTensor t = load_tensor(dir_ / "t.qgt");
  EXPECT_EQ(t.shape, shape);
  EXPECT_EQ(t.data, data);
}

TEST_F(IoTest, ScalarTensor) {
  const std::vector<Real> data = {42.0};
  const std::vector<std::size_t> shape = {};
  save_tensor(dir_ / "s.qgt", data, shape);
  const LoadedTensor t = load_tensor(dir_ / "s.qgt");
  EXPECT_TRUE(t.shape.empty());
  ASSERT_EQ(t.data.size(), 1u);
  EXPECT_EQ(t.data[0], 42.0);
}

TEST_F(IoTest, ShapeMismatchRejected) {
  const std::vector<Real> data = {1, 2, 3};
  const std::vector<std::size_t> shape = {2, 2};
  EXPECT_THROW(save_tensor(dir_ / "bad.qgt", data, shape), std::invalid_argument);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_tensor(dir_ / "absent.qgt"), std::runtime_error);
}

TEST_F(IoTest, CorruptMagicRejected) {
  std::ofstream(dir_ / "junk.qgt") << "not a tensor";
  EXPECT_THROW((void)load_tensor(dir_ / "junk.qgt"), std::runtime_error);
}

TEST_F(IoTest, CsvWriterProducesHeaderAndRows) {
  {
    CsvWriter w(dir_ / "c.csv", {"epoch", "loss"});
    const Real row1[] = {1.0, 0.5};
    const Real row2[] = {2.0, 0.25};
    w.append(row1);
    w.append(row2);
  }
  std::ifstream in(dir_ / "c.csv");
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "epoch,loss");
  std::getline(in, line);
  EXPECT_EQ(line, "1,0.5");
  std::getline(in, line);
  EXPECT_EQ(line, "2,0.25");
}

TEST_F(IoTest, CsvRowWidthChecked) {
  CsvWriter w(dir_ / "c2.csv", {"a", "b", "c"});
  const Real row[] = {1.0, 2.0};
  EXPECT_THROW(w.append(row), std::invalid_argument);
}

// ------------------------------------------------------ framed container --

TEST_F(IoTest, Crc32MatchesKnownVector) {
  // The standard IEEE check value: crc32("123456789") == 0xCBF43926.
  const char data[] = "123456789";
  EXPECT_EQ(crc32(data, 9), 0xCBF43926u);
  EXPECT_EQ(crc32(data, 0), 0u);
}

TEST_F(IoTest, FramedRoundTripKeepsVersionAndPayload) {
  const std::vector<unsigned char> payload = {0x01, 0x02, 0xff, 0x00, 0x7f};
  write_framed_file(dir_ / "f.bin", 3, payload);
  const FramedPayload back = read_framed_file(dir_ / "f.bin");
  EXPECT_EQ(back.version, 3u);
  EXPECT_EQ(back.payload, payload);
  // The temp file from the atomic write is cleaned up by the rename.
  EXPECT_FALSE(std::filesystem::exists(dir_ / "f.bin.tmp"));
}

TEST_F(IoTest, FramedEmptyPayloadAllowed) {
  write_framed_file(dir_ / "e.bin", 1, {});
  EXPECT_TRUE(read_framed_file(dir_ / "e.bin").payload.empty());
}

TEST_F(IoTest, FramedFailureKindsAreDistinct) {
  try {
    (void)read_framed_file(dir_ / "absent.bin");
    FAIL();
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::kMissing);
    EXPECT_NE(std::string(e.what()).find("absent.bin"), std::string::npos);
  }

  std::ofstream(dir_ / "junk.bin") << "XXXXnot-a-frame-but-long-enough";
  try {
    (void)read_framed_file(dir_ / "junk.bin");
    FAIL();
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::kBadMagic);
  }

  const std::vector<unsigned char> payload(64, 0xab);
  write_framed_file(dir_ / "torn.bin", 1, payload);
  std::filesystem::resize_file(dir_ / "torn.bin",
                               std::filesystem::file_size(dir_ / "torn.bin") - 5);
  try {
    (void)read_framed_file(dir_ / "torn.bin");
    FAIL();
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::kTruncated);
  }

  write_framed_file(dir_ / "flip.bin", 1, payload);
  {
    std::fstream f(dir_ / "flip.bin",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);  // inside the payload, past the 20-byte header
    const char b = '\x5a';
    f.write(&b, 1);
  }
  try {
    (void)read_framed_file(dir_ / "flip.bin");
    FAIL();
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::kCrcMismatch);
  }
}

TEST_F(IoTest, FramedWriteIsAtomicUnderInjectedRenameFault) {
  const std::vector<unsigned char> first = {1, 2, 3};
  const std::vector<unsigned char> second = {9, 9, 9, 9};
  write_framed_file(dir_ / "a.bin", 1, first);
  {
    fault::FaultScope scope("io.rename", 1);
    EXPECT_THROW(write_framed_file(dir_ / "a.bin", 2, second), TransientError);
  }
  // The destination still holds the complete previous frame.
  const FramedPayload back = read_framed_file(dir_ / "a.bin");
  EXPECT_EQ(back.version, 1u);
  EXPECT_EQ(back.payload, first);
}

TEST_F(IoTest, InjectedWriteFaultLeavesNoDestination) {
  fault::FaultScope scope("io.atomic_write", 1);
  const std::vector<unsigned char> payload = {1, 2};
  EXPECT_THROW(write_framed_file(dir_ / "never.bin", 1, payload),
               TransientError);
  EXPECT_FALSE(std::filesystem::exists(dir_ / "never.bin"));
}

TEST_F(IoTest, TensorsAreFramedAndCorruptionIsDetected) {
  const std::vector<Real> data = {1.5, -2.0, 3.25};
  const std::vector<std::size_t> shape = {3};
  save_tensor(dir_ / "t.qgt", data, shape);

  // The file leads with the frame magic, not the legacy tensor magic.
  std::ifstream in(dir_ / "t.qgt", std::ios::binary);
  char magic[4];
  in.read(magic, 4);
  EXPECT_EQ(std::string(magic, 4), "QGF1");

  std::fstream f(dir_ / "t.qgt", std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(40);
  const char b = '\x11';
  f.write(&b, 1);
  f.close();
  try {
    (void)load_tensor(dir_ / "t.qgt");
    FAIL();
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::kCrcMismatch);
  }
}

TEST_F(IoTest, LegacyHeaderlessTensorStillLoads) {
  // A pre-frame "QGT1" file written byte-for-byte the old way: magic,
  // u64 rank, u64 dims, float64 payload.
  const std::vector<Real> data = {4.5, -1.0};
  {
    std::ofstream out(dir_ / "legacy.qgt", std::ios::binary);
    out.write("QGT1", 4);
    const std::uint64_t rank = 1, dim = 2;
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(Real)));
  }
  const LoadedTensor t = load_tensor(dir_ / "legacy.qgt");
  EXPECT_EQ(t.shape, (std::vector<std::size_t>{2}));
  EXPECT_EQ(t.data, data);
}

}  // namespace
}  // namespace qugeo
