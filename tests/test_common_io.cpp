// Tensor/CSV serialization round trips and failure modes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/io.h"

namespace qugeo {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "qugeo_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, TensorRoundTrip) {
  const std::vector<Real> data = {1.5, -2.25, 3.75, 0.0, 9.0, -1.0};
  const std::vector<std::size_t> shape = {2, 3};
  save_tensor(dir_ / "t.qgt", data, shape);
  const LoadedTensor t = load_tensor(dir_ / "t.qgt");
  EXPECT_EQ(t.shape, shape);
  EXPECT_EQ(t.data, data);
}

TEST_F(IoTest, ScalarTensor) {
  const std::vector<Real> data = {42.0};
  const std::vector<std::size_t> shape = {};
  save_tensor(dir_ / "s.qgt", data, shape);
  const LoadedTensor t = load_tensor(dir_ / "s.qgt");
  EXPECT_TRUE(t.shape.empty());
  ASSERT_EQ(t.data.size(), 1u);
  EXPECT_EQ(t.data[0], 42.0);
}

TEST_F(IoTest, ShapeMismatchRejected) {
  const std::vector<Real> data = {1, 2, 3};
  const std::vector<std::size_t> shape = {2, 2};
  EXPECT_THROW(save_tensor(dir_ / "bad.qgt", data, shape), std::invalid_argument);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_tensor(dir_ / "absent.qgt"), std::runtime_error);
}

TEST_F(IoTest, CorruptMagicRejected) {
  std::ofstream(dir_ / "junk.qgt") << "not a tensor";
  EXPECT_THROW((void)load_tensor(dir_ / "junk.qgt"), std::runtime_error);
}

TEST_F(IoTest, CsvWriterProducesHeaderAndRows) {
  {
    CsvWriter w(dir_ / "c.csv", {"epoch", "loss"});
    const Real row1[] = {1.0, 0.5};
    const Real row2[] = {2.0, 0.25};
    w.append(row1);
    w.append(row2);
  }
  std::ifstream in(dir_ / "c.csv");
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "epoch,loss");
  std::getline(in, line);
  EXPECT_EQ(line, "1,0.5");
  std::getline(in, line);
  EXPECT_EQ(line, "2,0.25");
}

TEST_F(IoTest, CsvRowWidthChecked) {
  CsvWriter w(dir_ / "c2.csv", {"a", "b", "c"});
  const Real row[] = {1.0, 2.0};
  EXPECT_THROW(w.append(row), std::invalid_argument);
}

}  // namespace
}  // namespace qugeo
