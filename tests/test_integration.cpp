// Integration: the whole pipeline — synthesize a small FlatVel corpus, run
// both physical scalers, train a small VQC, and verify it learns the
// inversion task better than chance. This is a miniature of the paper's
// experiment loop.
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace qugeo::core {
namespace {

/// Shared tiny corpus (built once; FDTD makes this the slowest test file).
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(20240613);
    seismic::FlatVelConfig vcfg;
    vcfg.nz = 35;
    vcfg.nx = 35;
    seismic::Acquisition acq;
    acq.num_sources = 5;
    acq.num_receivers = 35;
    acq.num_time_samples = 250;
    raw_ = new data::RawDataset(
        data::generate_raw_dataset(20, vcfg, acq, rng));

    const data::ScaleTarget target;
    const data::DSampleScaler dsample(target);
    const data::ForwardModelScaler qdfw(target);
    data_ = new data::ExperimentData();
    data_->dsample = dsample.scale_dataset(*raw_, data::ScaleTarget{});
    data_->qdfw = qdfw.scale_dataset(*raw_, data::ScaleTarget{});
    data_->qdcnn = data_->qdfw;  // CNN training is covered in its own test
    data_->qdcnn.scaler_name = "Q-D-CNN";
    data_->train_count = 15;
  }
  static void TearDownTestSuite() {
    delete raw_;
    delete data_;
    raw_ = nullptr;
    data_ = nullptr;
  }

  static data::RawDataset* raw_;
  static data::ExperimentData* data_;
};

data::RawDataset* IntegrationTest::raw_ = nullptr;
data::ExperimentData* IntegrationTest::data_ = nullptr;

TEST_F(IntegrationTest, CorpusShapes) {
  EXPECT_EQ(data_->dsample.size(), 20u);
  EXPECT_EQ(data_->qdfw.size(), 20u);
  EXPECT_EQ(data_->dsample.waveform_size(), 256u);
  EXPECT_EQ(data_->qdfw.velocity_size(), 64u);
}

TEST_F(IntegrationTest, VqcLearnsInversionOnQdFw) {
  ExperimentSpec spec;
  spec.dataset = "Q-D-FW";
  spec.decoder = DecoderKind::kLayer;
  spec.blocks = 6;  // reduced depth for test speed
  TrainConfig tc;
  tc.epochs = 40;
  tc.initial_lr = 0.1;
  const ExperimentResult r = run_vqc_experiment(*data_, spec, tc);

  // The model must do clearly better than an untrained one and reach a
  // positive SSIM on flat-layer maps (at this miniature scale — 15 train
  // samples, 6 blocks — absolute SSIM is far below the paper's 0.9).
  EXPECT_GT(r.train.final_ssim, 0.1);
  EXPECT_LT(r.train.final_mse, r.train.curve.front().test_mse);
  EXPECT_LT(r.train.final_mse, 0.2);
  EXPECT_LT(r.train.curve.back().train_loss, r.train.curve.front().train_loss);
}

TEST_F(IntegrationTest, LayerDecoderBeatsPixelOnFlatGeology) {
  // The paper's central VQC-design claim (Fig. 8) at miniature scale.
  TrainConfig tc;
  tc.epochs = 30;
  ExperimentSpec ly, px;
  ly.dataset = px.dataset = "Q-D-FW";
  ly.decoder = DecoderKind::kLayer;
  px.decoder = DecoderKind::kPixel;
  ly.blocks = px.blocks = 6;
  const ExperimentResult r_ly = run_vqc_experiment(*data_, ly, tc);
  const ExperimentResult r_px = run_vqc_experiment(*data_, px, tc);
  EXPECT_GT(r_ly.train.final_ssim, r_px.train.final_ssim - 0.05);
}

TEST_F(IntegrationTest, QuBatchMatchesUnbatchedClosely) {
  // Table 1's claim at miniature scale: batching trains with only slight
  // degradation.
  TrainConfig tc;
  tc.epochs = 30;
  ExperimentSpec plain, batched;
  plain.dataset = batched.dataset = "Q-D-FW";
  plain.blocks = batched.blocks = 6;
  batched.batch_log2 = 1;
  const ExperimentResult r0 = run_vqc_experiment(*data_, plain, tc);
  const ExperimentResult r2 = run_vqc_experiment(*data_, batched, tc);
  EXPECT_GT(r2.train.final_ssim, r0.train.final_ssim - 0.15);
}

TEST_F(IntegrationTest, ClassicalBaselineRuns) {
  TrainConfig tc;
  tc.epochs = 30;
  tc.initial_lr = 0.02;
  const ExperimentResult r =
      run_classical_experiment(*data_, "Q-D-FW", DecoderKind::kLayer, tc);
  EXPECT_EQ(r.model_name, "CNN-LY");
  EXPECT_GT(r.train.final_ssim, 0.0);
  EXPECT_LT(r.train.curve.back().train_loss, r.train.curve.front().train_loss);
}

TEST_F(IntegrationTest, SelectDatasetByName) {
  EXPECT_EQ(&select_dataset(*data_, "D-Sample"), &data_->dsample);
  EXPECT_EQ(&select_dataset(*data_, "Q-D-FW"), &data_->qdfw);
  EXPECT_THROW((void)select_dataset(*data_, "bogus"), std::invalid_argument);
}

TEST_F(IntegrationTest, ModelNames) {
  EXPECT_EQ(vqc_model_name(DecoderKind::kPixel), "Q-M-PX");
  EXPECT_EQ(vqc_model_name(DecoderKind::kLayer), "Q-M-LY");
}

}  // namespace
}  // namespace qugeo::core
