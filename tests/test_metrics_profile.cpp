// Interface detection and scoring (Figures 7b / 9b machinery).
#include <gtest/gtest.h>

#include "metrics/profile_analysis.h"

namespace qugeo::metrics {
namespace {

TEST(DetectInterfaces, FindsSingleJump) {
  const std::vector<Real> prof = {1, 1, 1, 3, 3, 3};
  const auto ifs = detect_interfaces(prof, 0.5);
  ASSERT_EQ(ifs.size(), 1u);
  EXPECT_EQ(ifs[0].row, 2u);
  EXPECT_EQ(ifs[0].direction, 1);
  EXPECT_NEAR(ifs[0].jump, 2.0, 1e-12);
}

TEST(DetectInterfaces, DirectionSigns) {
  const std::vector<Real> prof = {2, 2, 4, 4, 1, 1};
  const auto ifs = detect_interfaces(prof, 0.5);
  ASSERT_EQ(ifs.size(), 2u);
  EXPECT_EQ(ifs[0].direction, 1);
  EXPECT_EQ(ifs[1].direction, -1);
}

TEST(DetectInterfaces, ThresholdFilters) {
  // Non-contiguous small jumps so merging does not apply.
  const std::vector<Real> prof = {1.0, 1.1, 1.1, 1.2, 1.2, 3.0};
  EXPECT_EQ(detect_interfaces(prof, 0.5).size(), 1u);
  EXPECT_EQ(detect_interfaces(prof, 0.05).size(), 3u);
}

TEST(DetectInterfaces, MergesContiguousRamp) {
  // A smeared interface (ramp over adjacent rows in the same direction)
  // counts once, at the steepest step.
  const std::vector<Real> prof = {1, 1, 2, 4, 4.5, 4.5};
  const auto ifs = detect_interfaces(prof, 0.4);
  ASSERT_EQ(ifs.size(), 1u);
  EXPECT_EQ(ifs[0].row, 2u);  // the 2 -> 4 step is steepest
  EXPECT_NEAR(ifs[0].jump, 2.0, 1e-12);
}

TEST(DetectInterfaces, EmptyAndFlat) {
  EXPECT_TRUE(detect_interfaces({}, 0.1).empty());
  const std::vector<Real> flat = {2, 2, 2, 2};
  EXPECT_TRUE(detect_interfaces(flat, 0.1).empty());
}

TEST(ScoreInterfaces, ExactMatch) {
  const std::vector<Interface> truth = {{3, 1, 1.0}, {8, -1, -0.5}};
  const std::vector<Interface> pred = {{3, 1, 0.9}, {8, -1, -0.4}};
  const auto s = score_interfaces(truth, pred, 1);
  EXPECT_EQ(s.total_true, 2u);
  EXPECT_EQ(s.matched, 2u);
  EXPECT_EQ(s.ordering_correct, 2u);
}

TEST(ScoreInterfaces, ToleranceWindow) {
  const std::vector<Interface> truth = {{5, 1, 1.0}};
  const std::vector<Interface> near = {{6, 1, 1.0}};
  const std::vector<Interface> far = {{9, 1, 1.0}};
  EXPECT_EQ(score_interfaces(truth, near, 1).matched, 1u);
  EXPECT_EQ(score_interfaces(truth, far, 1).matched, 0u);
}

TEST(ScoreInterfaces, WrongDirectionCountsAsMatchedNotOrdered) {
  // The paper's Fig. 9b: interfaces found but relative layer ordering wrong
  // (points C, D, E for D-Sample + Q-M-LY).
  const std::vector<Interface> truth = {{4, 1, 1.0}};
  const std::vector<Interface> pred = {{4, -1, -1.0}};
  const auto s = score_interfaces(truth, pred, 1);
  EXPECT_EQ(s.matched, 1u);
  EXPECT_EQ(s.ordering_correct, 0u);
}

TEST(ScoreInterfaces, OneToOneMatching) {
  // A single prediction cannot satisfy two true interfaces.
  const std::vector<Interface> truth = {{4, 1, 1.0}, {5, 1, 1.0}};
  const std::vector<Interface> pred = {{4, 1, 1.0}};
  const auto s = score_interfaces(truth, pred, 2);
  EXPECT_EQ(s.matched, 1u);
}

TEST(ScoreInterfaces, EmptyCases) {
  const std::vector<Interface> some = {{4, 1, 1.0}};
  EXPECT_EQ(score_interfaces({}, some, 1).matched, 0u);
  EXPECT_EQ(score_interfaces(some, {}, 1).matched, 0u);
  EXPECT_EQ(score_interfaces(some, {}, 1).total_true, 1u);
}

}  // namespace
}  // namespace qugeo::metrics
