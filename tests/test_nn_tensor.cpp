// Tensor container semantics.
#include <gtest/gtest.h>

#include "nn/tensor.h"

namespace qugeo::nn {
namespace {

TEST(Tensor, ShapeAndNumel) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.dim(1), 3u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0);
}

TEST(Tensor, ConstructFromData) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at2(0, 1), 2.0);
  EXPECT_EQ(t.at2(1, 0), 3.0);
}

TEST(Tensor, DataShapeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, At4RowMajorLayout) {
  Tensor t({1, 2, 2, 2});
  t.at4(0, 1, 1, 0) = 5.0;
  // offset = ((0*2+1)*2+1)*2+0 = 6
  EXPECT_EQ(t[6], 5.0);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at2(2, 1), 6.0);
  EXPECT_THROW((void)t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, FillAndZero) {
  Tensor t({3});
  t.fill(7.5);
  EXPECT_EQ(t[2], 7.5);
  t.zero();
  EXPECT_EQ(t[0], 0.0);
}

TEST(Tensor, KaimingInitBounded) {
  Rng rng(1);
  Tensor t({100});
  t.init_kaiming(rng, 25);
  const Real bound = std::sqrt(6.0 / 25.0);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -bound);
    EXPECT_LE(t[i], bound);
  }
}

TEST(Param, GradMatchesValueShape) {
  Param p({4, 5});
  EXPECT_EQ(p.numel(), 20u);
  EXPECT_EQ(p.grad.numel(), 20u);
  EXPECT_EQ(p.value.shape(), p.grad.shape());
}

}  // namespace
}  // namespace qugeo::nn
