// Strict QUGEO_* environment parsing: every malformed value must throw an
// error naming the variable instead of being silently mangled (the old
// lenient parsers turned QUGEO_SAMPLES=abc into 0 and QUGEO_TRAIN=12x
// into 12), and the unsigned contract rejects negative values instead of
// wrapping them (QUGEO_SEED=-1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/env.h"
#include "common/parallel.h"
#include "data/cache.h"
#include "qsim/backend.h"

namespace qugeo {
namespace {

/// Sets an env var for the scope and restores the previous value on exit,
/// so tests stay safe inside CI legs that pin QUGEO_* globally.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_old_)
      ::setenv(name_.c_str(), old_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

/// The thrown message must name the variable, or the user cannot tell
/// which of a dozen knobs was mistyped.
template <typename Fn>
void expect_rejects_naming(const char* name, Fn&& fn) {
  try {
    fn();
    FAIL() << name << ": malformed value was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(name), std::string::npos)
        << "error message does not name " << name << ": " << e.what();
  }
}

TEST(Env, UnsetReturnsFallback) {
  EnvGuard guard("QUGEO_ENV_TEST", nullptr);
  EXPECT_EQ(env::parse_env_size_t("QUGEO_ENV_TEST", 7u), 7u);
  EXPECT_EQ(env::parse_env_positive("QUGEO_ENV_TEST", 3u), 3u);
  EXPECT_EQ(env::parse_env_u64("QUGEO_ENV_TEST", 42u), 42u);
  EXPECT_EQ(env::parse_env_probability("QUGEO_ENV_TEST", 0.25), 0.25);
}

TEST(Env, ParsesWholeWellFormedValues) {
  {
    EnvGuard guard("QUGEO_ENV_TEST", "0");
    EXPECT_EQ(env::parse_env_size_t("QUGEO_ENV_TEST", 7u), 0u);
  }
  {
    EnvGuard guard("QUGEO_ENV_TEST", "17");
    EXPECT_EQ(env::parse_env_positive("QUGEO_ENV_TEST", 3u), 17u);
  }
  {
    EnvGuard guard("QUGEO_ENV_TEST", "18446744073709551615");  // 2^64 - 1
    EXPECT_EQ(env::parse_env_u64("QUGEO_ENV_TEST", 0u), ~std::uint64_t{0});
  }
  {
    EnvGuard guard("QUGEO_ENV_TEST", "0.75");
    EXPECT_EQ(env::parse_env_probability("QUGEO_ENV_TEST", 0.0), 0.75);
  }
}

TEST(Env, RejectsMalformedIntegers) {
  for (const char* bad : {"abc", "12x", "", " 5", "1.5", "0x10"}) {
    EnvGuard guard("QUGEO_ENV_TEST", bad);
    expect_rejects_naming("QUGEO_ENV_TEST", [] {
      (void)env::parse_env_size_t("QUGEO_ENV_TEST", 1u);
    });
  }
}

TEST(Env, RejectsNegativeInsteadOfWrapping) {
  // strtoull alone would accept "-1" and wrap it to 2^64 - 1.
  EnvGuard guard("QUGEO_ENV_TEST", "-1");
  expect_rejects_naming("QUGEO_ENV_TEST", [] {
    (void)env::parse_env_size_t("QUGEO_ENV_TEST", 1u);
  });
  expect_rejects_naming("QUGEO_ENV_TEST", [] {
    (void)env::parse_env_u64("QUGEO_ENV_TEST", 1u);
  });
}

TEST(Env, RejectsOutOfRangeIntegers) {
  EnvGuard guard("QUGEO_ENV_TEST", "99999999999999999999999999");
  expect_rejects_naming("QUGEO_ENV_TEST", [] {
    (void)env::parse_env_u64("QUGEO_ENV_TEST", 1u);
  });
}

TEST(Env, PositiveRejectsZero) {
  EnvGuard guard("QUGEO_ENV_TEST", "0");
  expect_rejects_naming("QUGEO_ENV_TEST", [] {
    (void)env::parse_env_positive("QUGEO_ENV_TEST", 1u);
  });
}

TEST(Env, RejectsMalformedProbabilities) {
  for (const char* bad : {"abc", "", "0.5x", "1.5", "-0.1"}) {
    EnvGuard guard("QUGEO_ENV_TEST", bad);
    expect_rejects_naming("QUGEO_ENV_TEST", [] {
      (void)env::parse_env_probability("QUGEO_ENV_TEST", 0.0);
    });
  }
}

// ------------------------------------------------- knob-by-knob coverage --

TEST(Env, DataKnobsRejectMalformedValues) {
  {
    EnvGuard guard("QUGEO_SAMPLES", "abc");
    expect_rejects_naming("QUGEO_SAMPLES",
                          [] { (void)data::experiment_config_from_env(); });
  }
  {
    // The old lenient parser silently truncated this to 12.
    EnvGuard guard("QUGEO_TRAIN", "12x");
    expect_rejects_naming("QUGEO_TRAIN",
                          [] { (void)data::experiment_config_from_env(); });
  }
  {
    EnvGuard guard("QUGEO_CNN_SAMPLES", "0");
    expect_rejects_naming("QUGEO_CNN_SAMPLES",
                          [] { (void)data::experiment_config_from_env(); });
  }
  {
    EnvGuard guard("QUGEO_EPOCHS", "many");
    expect_rejects_naming("QUGEO_EPOCHS",
                          [] { (void)data::epochs_from_env(10); });
  }
}

TEST(Env, SeedIsUnsignedByContract) {
  {
    EnvGuard guard("QUGEO_SEED", "-1");
    expect_rejects_naming("QUGEO_SEED",
                          [] { (void)data::experiment_config_from_env(); });
  }
  {  // the full unsigned range stays representable
    EnvGuard guard("QUGEO_SEED", "18446744073709551615");
    EXPECT_EQ(data::experiment_config_from_env().seed, ~std::uint64_t{0});
  }
}

TEST(Env, BackendKnobsRejectMalformedValues) {
  {
    EnvGuard guard("QUGEO_TRAJECTORIES", "0");
    expect_rejects_naming("QUGEO_TRAJECTORIES", [] {
      (void)qsim::apply_env_overrides(qsim::ExecutionConfig{});
    });
  }
  {
    EnvGuard guard("QUGEO_BATCH", "4x");
    expect_rejects_naming("QUGEO_BATCH", [] {
      (void)qsim::apply_env_overrides(qsim::ExecutionConfig{});
    });
  }
  {
    EnvGuard guard("QUGEO_SHOTS", "-5");
    expect_rejects_naming("QUGEO_SHOTS", [] {
      (void)qsim::apply_env_overrides(qsim::ExecutionConfig{});
    });
  }
  {
    EnvGuard guard("QUGEO_NOISE_P", "1.5");
    expect_rejects_naming("QUGEO_NOISE_P", [] {
      (void)qsim::apply_env_overrides(qsim::ExecutionConfig{});
    });
  }
  {
    EnvGuard guard("QUGEO_READOUT_P", "lots");
    expect_rejects_naming("QUGEO_READOUT_P", [] {
      (void)qsim::apply_env_overrides(qsim::ExecutionConfig{});
    });
  }
}

TEST(Env, ThreadsKnobRejectsMalformedValues) {
  // set_num_threads(0) re-reads QUGEO_THREADS; the throw fires before the
  // pool is touched, so the existing workers stay intact.
  {
    EnvGuard guard("QUGEO_THREADS", "fast");
    expect_rejects_naming("QUGEO_THREADS", [] { set_num_threads(0); });
  }
  {
    EnvGuard guard("QUGEO_THREADS", "0");
    expect_rejects_naming("QUGEO_THREADS", [] { set_num_threads(0); });
  }
  {
    EnvGuard guard("QUGEO_THREADS", "2000");  // above the [1, 1024] cap
    expect_rejects_naming("QUGEO_THREADS", [] { set_num_threads(0); });
  }
}

}  // namespace
}  // namespace qugeo
