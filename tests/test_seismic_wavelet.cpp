// Ricker wavelet properties: peak location/value, zero crossings, symmetry,
// spectral behaviour of the 15 Hz -> 8 Hz change used by QuGeoData.
#include <gtest/gtest.h>

#include <cmath>

#include "seismic/wavelet.h"

namespace qugeo::seismic {
namespace {

TEST(Ricker, PeakAtDelayWithUnitAmplitude) {
  const RickerWavelet w(15.0);
  EXPECT_NEAR(w(w.delay()), 1.0, 1e-12);
}

TEST(Ricker, DefaultDelayScalesWithFrequency) {
  const RickerWavelet fast(15.0), slow(8.0);
  EXPECT_NEAR(fast.delay(), 0.1, 1e-12);
  EXPECT_NEAR(slow.delay(), 1.5 / 8.0, 1e-12);
  EXPECT_GT(slow.delay(), fast.delay());
}

TEST(Ricker, SymmetricAroundDelay) {
  const RickerWavelet w(10.0);
  for (Real dt : {0.01, 0.03, 0.07})
    EXPECT_NEAR(w(w.delay() + dt), w(w.delay() - dt), 1e-12);
}

TEST(Ricker, ZeroCrossingsAtKnownOffset) {
  // w(t) = 0 when (pi f tau)^2 = 1/2, i.e. tau = 1/(pi f sqrt(2)).
  const Real f = 12.0;
  const RickerWavelet w(f);
  const Real tau = 1.0 / (kPi * f * std::sqrt(2.0));
  EXPECT_NEAR(w(w.delay() + tau), 0.0, 1e-10);
  EXPECT_NEAR(w(w.delay() - tau), 0.0, 1e-10);
}

TEST(Ricker, StartsNearZero) {
  const RickerWavelet w(15.0);
  EXPECT_LT(std::abs(w(0.0)), 1e-3);
}

TEST(Ricker, LowerFrequencyHasWiderLobe) {
  // The paper lowers 15 Hz -> 8 Hz to widen the wavelength at coarse
  // sampling; the central lobe width (between zero crossings) must grow.
  const Real w15 = 2.0 / (kPi * 15.0 * std::sqrt(2.0));
  const Real w8 = 2.0 / (kPi * 8.0 * std::sqrt(2.0));
  EXPECT_GT(w8, w15 * 1.8);
}

TEST(Ricker, SampleBufferMatchesCallable) {
  const RickerWavelet w(9.0);
  const auto buf = w.sample(100, 0.002);
  ASSERT_EQ(buf.size(), 100u);
  for (std::size_t i = 0; i < 100; i += 13)
    EXPECT_EQ(buf[i], w(static_cast<Real>(i) * 0.002));
}

TEST(Ricker, MeanIsApproximatelyZero) {
  // The Ricker wavelet has zero DC component.
  const RickerWavelet w(10.0);
  const auto buf = w.sample(2000, 0.0005);
  Real sum = 0;
  for (Real v : buf) sum += v;
  EXPECT_NEAR(sum * 0.0005, 0.0, 1e-6);
}

TEST(Ricker, RejectsNonPositiveFrequency) {
  EXPECT_THROW(RickerWavelet(0.0), std::invalid_argument);
  EXPECT_THROW(RickerWavelet(-5.0), std::invalid_argument);
}

}  // namespace
}  // namespace qugeo::seismic
