// Classical CNN baselines: parameter budgets, output ranges, training.
#include <gtest/gtest.h>

#include "core/classical_baseline.h"

namespace qugeo::core {
namespace {

data::ScaledDataset synthetic(std::size_t n, Rng& rng) {
  data::ScaledDataset ds;
  ds.samples.resize(n);
  for (auto& s : ds.samples) {
    s.waveform.resize(ds.waveform_size());
    rng.fill_uniform(s.waveform, -1, 1);
    s.velocity.resize(ds.velocity_size());
    // Learnable structure: row value tracks waveform energy per source row.
    for (std::size_t i = 0; i < 8; ++i) {
      Real m = 0;
      for (std::size_t k = 0; k < 32; ++k)
        m += std::abs(s.waveform[(i % 4) * 64 + k]);
      for (std::size_t j = 0; j < 8; ++j) s.velocity[i * 8 + j] = m / 32.0;
    }
  }
  return ds;
}

TEST(Classical, ParamCountsAreVqcLevel) {
  // The paper matches parameter budgets (CNN-PX 634, CNN-LY 616 vs VQC 576);
  // our nets land at the same few-hundred scale.
  Rng rng(1);
  const ClassicalFwiNet px(ClassicalConfig{DecoderKind::kPixel, 4, 8, 8, 8, 8}, rng);
  const ClassicalFwiNet ly(ClassicalConfig{DecoderKind::kLayer, 4, 8, 8, 8, 8}, rng);
  EXPECT_GT(px.param_count(), 400u);
  EXPECT_LT(px.param_count(), 900u);
  EXPECT_GT(ly.param_count(), 400u);
  EXPECT_LT(ly.param_count(), 900u);
}

TEST(Classical, PredictionsInUnitRange) {
  Rng rng(2);
  const ClassicalFwiNet net(ClassicalConfig{DecoderKind::kPixel, 4, 8, 8, 8, 8}, rng);
  Rng drng(3);
  const data::ScaledDataset ds = synthetic(2, drng);
  std::vector<const data::ScaledSample*> ptrs = {&ds.samples[0], &ds.samples[1]};
  const auto preds = net.predict(ptrs);
  ASSERT_EQ(preds.size(), 2u);
  for (const auto& p : preds) {
    ASSERT_EQ(p.size(), 64u);
    for (Real v : p) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Classical, LayerHeadBroadcastsRows) {
  Rng rng(4);
  const ClassicalFwiNet net(ClassicalConfig{DecoderKind::kLayer, 4, 8, 8, 8, 8}, rng);
  Rng drng(5);
  const data::ScaledDataset ds = synthetic(1, drng);
  std::vector<const data::ScaledSample*> ptrs = {&ds.samples[0]};
  const auto preds = net.predict(ptrs);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 1; j < 8; ++j)
      ASSERT_EQ(preds[0][i * 8 + j], preds[0][i * 8]);
}

TEST(Classical, TrainingReducesLoss) {
  Rng drng(6);
  data::ScaledDataset ds = synthetic(24, drng);
  const data::SplitView split = data::split_dataset(24, 18);
  Rng rng(7);
  ClassicalFwiNet net(ClassicalConfig{DecoderKind::kLayer, 4, 8, 8, 8, 8}, rng);
  TrainConfig tc;
  tc.epochs = 30;
  tc.initial_lr = 0.01;
  const TrainResult r = net.train(ds, split, tc);
  EXPECT_LT(r.curve.back().train_loss, r.curve.front().train_loss);
}

TEST(Classical, PixelHeadTrains) {
  Rng drng(8);
  data::ScaledDataset ds = synthetic(16, drng);
  const data::SplitView split = data::split_dataset(16, 12);
  Rng rng(9);
  ClassicalFwiNet net(ClassicalConfig{DecoderKind::kPixel, 4, 8, 8, 8, 8}, rng);
  TrainConfig tc;
  tc.epochs = 20;
  tc.initial_lr = 0.01;
  const TrainResult r = net.train(ds, split, tc);
  EXPECT_LT(r.curve.back().train_loss, r.curve.front().train_loss);
  EXPECT_GT(r.final_ssim, -1.0);
}

}  // namespace
}  // namespace qugeo::core
