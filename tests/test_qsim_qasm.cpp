// QASM export/import: header, gate mnemonics, resolved parameters,
// preamble definitions for gates missing from qelib1.inc, and round trips
// through from_qasm for every GateKind.
#include <gtest/gtest.h>

#include <algorithm>

#include "qsim/executor.h"
#include "qsim/qasm.h"

namespace qugeo::qsim {
namespace {

TEST(Qasm, EmitsHeaderAndRegister) {
  Circuit c(3);
  const std::string q = to_qasm(c, {});
  EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
}

TEST(Qasm, EmitsFixedGates) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.swap(0, 1);
  const std::string q = to_qasm(c, {});
  EXPECT_NE(q.find("h q[0];"), std::string::npos);
  EXPECT_NE(q.find("cx q[0],q[1];"), std::string::npos);
  EXPECT_NE(q.find("swap q[0],q[1];"), std::string::npos);
}

TEST(Qasm, ResolvesTrainableAngles) {
  Circuit c(1);
  c.ry(0, c.new_param());
  const std::vector<Real> params = {1.25};
  const std::string q = to_qasm(c, params);
  EXPECT_NE(q.find("ry(1.25) q[0];"), std::string::npos);
}

TEST(Qasm, EmitsU3WithThreeAngles) {
  Circuit c(1);
  c.u3(0, 0.5, 1.0, 1.5);
  const std::string q = to_qasm(c, {});
  EXPECT_NE(q.find("u3(0.5,1,1.5) q[0];"), std::string::npos);
}

TEST(Qasm, LineCountMatchesOps) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const std::string q = to_qasm(c, {});
  const auto lines = std::count(q.begin(), q.end(), '\n');
  EXPECT_EQ(lines, 3 + 2);  // header(2) + qreg + 2 ops
}

/// One circuit exercising every GateKind the builder can emit (kI has no
/// builder; it is covered separately by the parser's skip rule).
Circuit every_gate_circuit() {
  Circuit c(3);
  c.x(0);
  c.y(1);
  c.z(2);
  c.h(0);
  c.s(1);
  c.sdg(2);
  c.t(0);
  c.tdg(1);
  c.rx(0, 0.25);
  c.ry(1, -0.5);
  c.rz(2, 1.75);
  c.phase(0, 0.4);
  c.u3(1, 0.3, -0.2, 0.9);
  c.cx(0, 1);
  c.cz(1, 2);
  c.cry(0, 2, 1.2);
  c.cu3(2, 0, -0.7, 0.1, 0.6);
  c.swap(1, 2);
  return c;
}

TEST(Qasm, EmitsControlledRotationsAndPreambleDefs) {
  const Circuit c = every_gate_circuit();
  const std::string q = to_qasm(c, {});
  // cry, p, and swap are not in the spec's qelib1.inc; the export must
  // define them.
  EXPECT_NE(q.find("gate p(lambda) q"), std::string::npos);
  EXPECT_NE(q.find("gate cry(theta) a,b"), std::string::npos);
  EXPECT_NE(q.find("gate swap a,b"), std::string::npos);
  EXPECT_NE(q.find("cry(1.2) q[0],q[2];"), std::string::npos);
  EXPECT_NE(q.find("cu3(-0.7,0.1,0.6) q[2],q[0];"), std::string::npos);
  EXPECT_NE(q.find("swap q[1],q[2];"), std::string::npos);
}

TEST(Qasm, NoPreambleDefsWhenUnused) {
  Circuit c(1);
  c.h(0);
  const std::string q = to_qasm(c, {});
  EXPECT_EQ(q.find("gate "), std::string::npos);
}

TEST(Qasm, RoundTripReproducesExportString) {
  const Circuit c = every_gate_circuit();
  const std::string q1 = to_qasm(c, {});
  const Circuit parsed = from_qasm(q1);
  EXPECT_EQ(parsed.num_qubits(), c.num_qubits());
  EXPECT_EQ(parsed.num_ops(), c.num_ops());
  EXPECT_EQ(to_qasm(parsed, {}), q1);
}

TEST(Qasm, RoundTripPreservesSemantics) {
  const Circuit c = every_gate_circuit();
  const Circuit parsed = from_qasm(to_qasm(c, {}));
  StateVector a(3), b(3);
  run_circuit(c, {}, a);
  run_circuit(parsed, {}, b);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
}

TEST(Qasm, RoundTripResolvesTrainableAnglesToLiterals) {
  Circuit c(2);
  c.ry(0, c.new_param());
  c.cu3(0, 1, c.new_params(3));
  const std::vector<Real> params = {0.8, 0.1, -0.2, 0.3};
  const Circuit parsed = from_qasm(to_qasm(c, params));
  EXPECT_EQ(parsed.num_params(), 0u);
  StateVector a(2), b(2);
  run_circuit(c, params, a);
  run_circuit(parsed, {}, b);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
}

TEST(Qasm, ParserSkipsCommentsAndMeasure) {
  const std::string q =
      "OPENQASM 2.0;\n"
      "include \"qelib1.inc\";\n"
      "// a comment\n"
      "qreg q[2];\n"
      "creg m[2];\n"
      "h q[0];\n"
      "cx q[0],q[1];\n"
      "measure q[0] -> m[0];\n";
  const Circuit c = from_qasm(q);
  EXPECT_EQ(c.num_ops(), 2u);
  EXPECT_EQ(c.ops()[0].kind, GateKind::kH);
  EXPECT_EQ(c.ops()[1].kind, GateKind::kCX);
}

TEST(Qasm, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)from_qasm("qreg q[2];\n"), std::invalid_argument);
  EXPECT_THROW((void)from_qasm("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];\n"),
               std::invalid_argument);
  EXPECT_THROW((void)from_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[3];\n"),
               std::invalid_argument);
  EXPECT_THROW((void)from_qasm("OPENQASM 2.0;\nh q[0];\n"),
               std::invalid_argument);
  // Negative / fractional qubit indices and register sizes must be
  // rejected before any float-to-unsigned cast.
  EXPECT_THROW((void)from_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[-1];\n"),
               std::invalid_argument);
  EXPECT_THROW((void)from_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[0.5];\n"),
               std::invalid_argument);
  EXPECT_THROW((void)from_qasm("OPENQASM 2.0;\nqreg q[-2];\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace qugeo::qsim
