// QASM export: header, gate mnemonics, resolved parameters.
#include <gtest/gtest.h>

#include "qsim/qasm.h"

namespace qugeo::qsim {
namespace {

TEST(Qasm, EmitsHeaderAndRegister) {
  Circuit c(3);
  const std::string q = to_qasm(c, {});
  EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
}

TEST(Qasm, EmitsFixedGates) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.swap(0, 1);
  const std::string q = to_qasm(c, {});
  EXPECT_NE(q.find("h q[0];"), std::string::npos);
  EXPECT_NE(q.find("cx q[0],q[1];"), std::string::npos);
  EXPECT_NE(q.find("swap q[0],q[1];"), std::string::npos);
}

TEST(Qasm, ResolvesTrainableAngles) {
  Circuit c(1);
  c.ry(0, c.new_param());
  const std::vector<Real> params = {1.25};
  const std::string q = to_qasm(c, params);
  EXPECT_NE(q.find("ry(1.25) q[0];"), std::string::npos);
}

TEST(Qasm, EmitsU3WithThreeAngles) {
  Circuit c(1);
  c.u3(0, 0.5, 1.0, 1.5);
  const std::string q = to_qasm(c, {});
  EXPECT_NE(q.find("u3(0.5,1,1.5) q[0];"), std::string::npos);
}

TEST(Qasm, LineCountMatchesOps) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const std::string q = to_qasm(c, {});
  const auto lines = std::count(q.begin(), q.end(), '\n');
  EXPECT_EQ(lines, 3 + 2);  // header(2) + qreg + 2 ops
}

}  // namespace
}  // namespace qugeo::qsim
