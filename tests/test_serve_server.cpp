// ModelServer: request/response round trip against direct predict, size-
// vs deadline-triggered flushes, explicit backpressure, drop accounting,
// graceful shutdown drain, and fault injection on the serve.enqueue /
// serve.dispatch sites.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "core/model.h"
#include "serve/server.h"

namespace qugeo::serve {
namespace {

using namespace std::chrono_literals;

data::ScaledSample random_sample(std::size_t wave_size, std::size_t vel_size,
                                 Rng& rng) {
  data::ScaledSample s;
  s.waveform.resize(wave_size);
  s.velocity.resize(vel_size);
  rng.fill_uniform(s.waveform, -1, 1);
  rng.fill_uniform(s.velocity, 0, 1);
  return s;
}

core::ModelConfig small_config() {
  core::ModelConfig mc;
  mc.group_data_qubits = {3};
  mc.ansatz.blocks = 2;
  mc.decoder = core::DecoderKind::kLayer;
  mc.vel_rows = 3;
  mc.vel_cols = 2;
  return mc;
}

std::vector<data::ScaledSample> make_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<data::ScaledSample> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) samples.push_back(random_sample(8, 6, rng));
  return samples;
}

/// Once the server has quiesced (shutdown() returned), no request may be
/// unaccounted for: everything submitted is completed, failed, or counted
/// as an explicit rejection.
void expect_settled_accounting(const ServerStats& s) {
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.submitted, s.completed + s.failed + s.rejected_overload +
                             s.rejected_shutdown);
}

/// Spin until `pred()` holds (the dispatcher runs on its own thread), with
/// a generous bound so a wedged server fails the test instead of hanging.
template <typename Pred>
void wait_for(Pred&& pred) {
  for (int i = 0; i < 10000 && !pred(); ++i)
    std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(pred());
}

/// Scoped env var with save/restore (CI legs pin QUGEO_* globally).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_old_)
      ::setenv(name_.c_str(), old_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(Serve, RoundTripMatchesDirectPredict) {
  Rng rng(11);
  const core::QuGeoModel model(small_config(), rng);
  const auto samples = make_samples(8, 12);
  std::vector<const data::ScaledSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);
  const auto direct = model.predict(ptrs);

  ServeConfig sc;
  sc.max_batch = samples.size();  // one size-triggered flush of the lot,
  sc.deadline = 10s;              // never the deadline: the single batch
  sc.queue_capacity = 64;         // sees the same chunk-stream indices as
                                  // the direct call, so results match
                                  // exactly even under sampled readout
                                  // (QUGEO_SHOTS CI leg).
  ModelServer server(model, sc);
  std::vector<std::future<PredictResult>> futures;
  for (const auto& s : samples) futures.push_back(server.submit(s));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    PredictResult r = futures[i].get();
    ASSERT_EQ(r.status, RequestStatus::kOk);
    EXPECT_EQ(r.prediction, direct[i]) << "sample " << i;
  }
  server.shutdown();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, samples.size());
  EXPECT_EQ(s.batches_dispatched, 1u);
  EXPECT_EQ(s.flush_size, 1u);
  expect_settled_accounting(s);
}

TEST(Serve, DeadlineFlushesShortBatch) {
  Rng rng(13);
  const core::QuGeoModel model(small_config(), rng);
  const auto samples = make_samples(3, 14);

  ServeConfig sc;
  sc.max_batch = 100;  // never reached: every flush is deadline-driven
  sc.deadline = 1ms;
  sc.queue_capacity = 128;
  ModelServer server(model, sc);
  std::vector<std::future<PredictResult>> futures;
  for (const auto& s : samples) futures.push_back(server.submit(s));
  for (auto& f : futures) {
    PredictResult r = f.get();
    ASSERT_EQ(r.status, RequestStatus::kOk);
    EXPECT_EQ(r.prediction.size(), 6u);
  }
  server.shutdown();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.flush_size, 0u);
  EXPECT_GE(s.flush_deadline, 1u);
  expect_settled_accounting(s);
}

TEST(Serve, SizeFlushFiresBeforeDeadline) {
  Rng rng(15);
  const core::QuGeoModel model(small_config(), rng);
  const auto samples = make_samples(4, 16);

  ServeConfig sc;
  sc.max_batch = 2;
  sc.deadline = 10s;  // any flush before shutdown must be size-triggered
  sc.queue_capacity = 64;
  ModelServer server(model, sc);
  std::vector<std::future<PredictResult>> futures;
  for (const auto& s : samples) futures.push_back(server.submit(s));
  for (auto& f : futures) ASSERT_EQ(f.get().status, RequestStatus::kOk);
  server.shutdown();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.batches_dispatched, 2u);
  EXPECT_EQ(s.flush_size, 2u);
  EXPECT_EQ(s.flush_deadline, 0u);
  expect_settled_accounting(s);
}

TEST(Serve, BackpressureRejectsInsteadOfBlocking) {
  Rng rng(17);
  const core::QuGeoModel model(small_config(), rng);
  const auto samples = make_samples(6, 18);

  // Wedge the dispatcher inside its first batch: the first dispatch
  // attempt throws a transient fault, and the retry hook blocks until the
  // test releases it. Meanwhile the queue fills to full_threshold and the
  // next submit must be rejected immediately, not block.
  std::atomic<bool> release{false};
  ServeConfig sc;
  sc.max_batch = 1;
  sc.deadline = std::chrono::microseconds{0};  // flush each request alone
  sc.queue_capacity = 8;
  sc.full_threshold = 3;
  sc.retry.max_attempts = 2;
  sc.retry.on_retry = [&](std::size_t, std::chrono::milliseconds) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  };
  fault::FaultScope wedge("serve.dispatch", 1, 1);

  ModelServer server(model, sc);
  std::vector<std::future<PredictResult>> futures;
  futures.push_back(server.submit(samples[0]));
  // Dispatcher pops samples[0] and blocks in the retry hook.
  wait_for([&] { return server.stats().in_flight == 1; });
  for (int i = 1; i <= 3; ++i) futures.push_back(server.submit(samples[i]));
  EXPECT_EQ(server.stats().queue_depth, 3u);

  // Queue is at full_threshold: this must resolve NOW as kOverloaded.
  std::future<PredictResult> rejected = server.submit(samples[4]);
  ASSERT_EQ(rejected.wait_for(0s), std::future_status::ready);
  PredictResult r = rejected.get();
  EXPECT_EQ(r.status, RequestStatus::kOverloaded);
  EXPECT_NE(r.error.find("queue full"), std::string::npos);

  release.store(true);
  for (auto& f : futures) EXPECT_EQ(f.get().status, RequestStatus::kOk);
  server.shutdown();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, 5u);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.rejected_overload, 1u);
  EXPECT_EQ(s.max_queue_depth, 3u);
  expect_settled_accounting(s);
}

TEST(Serve, GracefulShutdownDrainsQueue) {
  Rng rng(19);
  const core::QuGeoModel model(small_config(), rng);
  const auto samples = make_samples(3, 20);

  ServeConfig sc;
  sc.max_batch = 4;   // never fills
  sc.deadline = 10s;  // never expires: only the drain can flush
  sc.queue_capacity = 64;
  ModelServer server(model, sc);
  std::vector<std::future<PredictResult>> futures;
  for (const auto& s : samples) futures.push_back(server.submit(s));
  server.shutdown();
  for (auto& f : futures) {
    PredictResult r = f.get();
    EXPECT_EQ(r.status, RequestStatus::kOk);
  }

  // Post-shutdown submits resolve immediately as kShutdown.
  std::future<PredictResult> late = server.submit(samples[0]);
  ASSERT_EQ(late.wait_for(0s), std::future_status::ready);
  EXPECT_EQ(late.get().status, RequestStatus::kShutdown);

  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 3u);
  EXPECT_GE(s.flush_drain, 1u);
  EXPECT_EQ(s.rejected_shutdown, 1u);
  expect_settled_accounting(s);
}

TEST(Serve, EnqueueFaultFailsOneRequestVisibly) {
  Rng rng(21);
  const core::QuGeoModel model(small_config(), rng);
  const auto samples = make_samples(2, 22);

  ServeConfig sc;
  sc.max_batch = 1;
  sc.deadline = std::chrono::microseconds{0};
  ModelServer server(model, sc);
  fault::FaultScope scope("serve.enqueue", 1);
  std::future<PredictResult> faulted = server.submit(samples[0]);
  PredictResult r = faulted.get();
  EXPECT_EQ(r.status, RequestStatus::kFailed);
  EXPECT_NE(r.error.find("enqueue fault"), std::string::npos);
  // The server keeps serving after the intake fault.
  EXPECT_EQ(server.submit(samples[1]).get().status, RequestStatus::kOk);
  server.shutdown();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 1u);
  expect_settled_accounting(s);
}

TEST(Serve, DispatchFaultRetriesTransparently) {
  Rng rng(23);
  const core::QuGeoModel model(small_config(), rng);
  const auto samples = make_samples(1, 24);

  ServeConfig sc;
  sc.max_batch = 1;
  sc.deadline = std::chrono::microseconds{0};
  sc.retry.on_retry = [](std::size_t, std::chrono::milliseconds) {};
  fault::FaultScope scope("serve.dispatch", 1, 1);  // first attempt only
  ModelServer server(model, sc);
  PredictResult r = server.submit(samples[0]).get();
  EXPECT_EQ(r.status, RequestStatus::kOk);
  EXPECT_GE(scope.hits(), 2u);  // the failed attempt plus the retry
  server.shutdown();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.failed, 0u);
  expect_settled_accounting(s);
}

TEST(Serve, DispatchRetryExhaustionDegradesGracefully) {
  Rng rng(25);
  const core::QuGeoModel model(small_config(), rng);
  const auto samples = make_samples(2, 26);
  fault::clear_degradation_events();

  ServeConfig sc;
  sc.max_batch = 2;
  sc.deadline = 10s;
  sc.retry.max_attempts = 2;
  sc.retry.on_retry = [](std::size_t, std::chrono::milliseconds) {};
  ModelServer server(model, sc);
  std::vector<std::future<PredictResult>> futures;
  {
    fault::FaultScope scope("serve.dispatch", 1, 0);  // every attempt fails
    for (const auto& s : samples) futures.push_back(server.submit(s));
    for (auto& f : futures) {
      PredictResult r = f.get();
      EXPECT_EQ(r.status, RequestStatus::kFailed);
      EXPECT_NE(r.error.find("giving up"), std::string::npos);
    }
  }
  server.shutdown();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.failed, 2u);
  EXPECT_EQ(s.completed, 0u);
  expect_settled_accounting(s);

  const auto events = fault::degradation_events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().component, "serve");
  EXPECT_NE(events.back().detail.find("batch of 2"), std::string::npos);
}

TEST(Serve, ConcurrentProducersAllComplete) {
  Rng rng(27);
  const core::QuGeoModel model(small_config(), rng);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 25;
  const auto samples = make_samples(kThreads * kPerThread, 28);

  ServeConfig sc;
  sc.max_batch = 8;
  sc.deadline = 200us;
  sc.queue_capacity = 512;
  ModelServer server(model, sc);
  std::vector<std::vector<std::future<PredictResult>>> futures(kThreads);
  {
    std::vector<std::thread> producers;
    for (std::size_t t = 0; t < kThreads; ++t)
      producers.emplace_back([&, t] {
        for (std::size_t i = 0; i < kPerThread; ++i)
          futures[t].push_back(server.submit(samples[t * kPerThread + i]));
      });
    for (auto& p : producers) p.join();
  }
  for (auto& per_thread : futures)
    for (auto& f : per_thread) EXPECT_EQ(f.get().status, RequestStatus::kOk);
  server.shutdown();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, kThreads * kPerThread);
  EXPECT_EQ(s.completed, kThreads * kPerThread);
  expect_settled_accounting(s);

  // Every resolved request left a latency observation.
  std::uint64_t latency_total = 0;
  for (const std::uint64_t c : s.latency_us_buckets) latency_total += c;
  EXPECT_EQ(latency_total, s.completed + s.failed);
  EXPECT_LE(s.latency_quantile_us(0.5), s.latency_quantile_us(0.99));
}

TEST(Serve, EnvOverridesApplyAndRejectMalformedValues) {
  Rng rng(29);
  const core::QuGeoModel model(small_config(), rng);
  {
    EnvGuard batch("QUGEO_SERVE_BATCH", "7");
    EnvGuard deadline("QUGEO_SERVE_DEADLINE_US", "1234");
    ModelServer server(model, ServeConfig{});
    EXPECT_EQ(server.config().max_batch, 7u);
    EXPECT_EQ(server.config().deadline, std::chrono::microseconds{1234});
  }
  {
    EnvGuard batch("QUGEO_SERVE_BATCH", "abc");
    EXPECT_THROW(ModelServer(model, ServeConfig{}), std::invalid_argument);
  }
  {
    EnvGuard batch("QUGEO_SERVE_BATCH", "0");
    EXPECT_THROW(ModelServer(model, ServeConfig{}), std::invalid_argument);
  }
  {
    EnvGuard deadline("QUGEO_SERVE_DEADLINE_US", "-10");
    EXPECT_THROW(ModelServer(model, ServeConfig{}), std::invalid_argument);
  }
}

TEST(Serve, HistogramQuantileInterpolates) {
  std::array<std::uint64_t, kServeHistogramBuckets> buckets{};
  EXPECT_EQ(histogram_quantile(buckets, 0.5), 0.0);  // empty -> 0
  buckets[3] = 100;                                  // values in [4, 8)
  EXPECT_GE(histogram_quantile(buckets, 0.5), 4.0);
  EXPECT_LE(histogram_quantile(buckets, 0.5), 8.0);
  buckets[5] = 100;  // values in [16, 32)
  EXPECT_LE(histogram_quantile(buckets, 0.25), 8.0);
  EXPECT_GE(histogram_quantile(buckets, 0.99), 16.0);
}

}  // namespace
}  // namespace qugeo::serve
