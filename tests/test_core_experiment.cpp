// Experiment helpers and the InversionNet-lite reference model.
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace qugeo::core {
namespace {

data::ExperimentData synthetic_corpus(std::size_t n, Rng& rng) {
  data::ExperimentData d;
  d.qdfw.samples.resize(n);
  for (auto& s : d.qdfw.samples) {
    s.waveform.resize(d.qdfw.waveform_size());
    rng.fill_uniform(s.waveform, -1, 1);
    s.velocity.resize(d.qdfw.velocity_size());
    for (std::size_t r = 0; r < 8; ++r) {
      Real m = 0;
      for (std::size_t k = 0; k < 16; ++k) m += std::abs(s.waveform[r * 16 + k]);
      for (std::size_t c = 0; c < 8; ++c) s.velocity[r * 8 + c] = m / 16.0;
    }
  }
  d.dsample = d.qdcnn = d.qdfw;
  d.train_count = n * 3 / 4;
  return d;
}

TEST(InversionNetRef, HasManyMoreParamsThanMatchedBaselines) {
  Rng rng(1);
  ClassicalConfig matched;
  ClassicalConfig reference = matched;
  reference.inversion_net_reference = true;
  const ClassicalFwiNet small(matched, rng);
  const ClassicalFwiNet big(reference, rng);
  EXPECT_GT(big.param_count(), 10 * small.param_count());
  EXPECT_GT(big.param_count(), 10000u);
}

TEST(InversionNetRef, TrainsViaExperimentRunner) {
  Rng rng(2);
  const data::ExperimentData d = synthetic_corpus(16, rng);
  TrainConfig tc;
  tc.epochs = 15;
  tc.initial_lr = 0.005;
  const ExperimentResult r = run_classical_experiment(
      d, "Q-D-FW", DecoderKind::kPixel, tc, 42, true);
  EXPECT_EQ(r.model_name, "INet-ref");
  EXPECT_LT(r.train.curve.back().train_loss, r.train.curve.front().train_loss);
}

TEST(InversionNetRef, OutperformsMatchedCnnOnLearnableTask) {
  // More capacity on the same synthetic task must not do worse on train
  // loss (it bounds the classical headroom in Table 2's extension row).
  Rng rng(3);
  const data::ExperimentData d = synthetic_corpus(24, rng);
  TrainConfig tc;
  tc.epochs = 25;
  tc.initial_lr = 0.005;
  const auto small =
      run_classical_experiment(d, "Q-D-FW", DecoderKind::kPixel, tc, 42, false);
  const auto big =
      run_classical_experiment(d, "Q-D-FW", DecoderKind::kPixel, tc, 42, true);
  EXPECT_LT(big.train.curve.back().train_loss,
            small.train.curve.back().train_loss * 1.5);
}

TEST(ExperimentSpec, VqcRunnerHonorsBlocks) {
  Rng rng(4);
  const data::ExperimentData d = synthetic_corpus(8, rng);
  TrainConfig tc;
  tc.epochs = 2;
  ExperimentSpec spec;
  spec.blocks = 3;
  const ExperimentResult r = run_vqc_experiment(d, spec, tc);
  EXPECT_EQ(r.param_count, 3u * 48u);
}

TEST(ExperimentSpec, QuBatchRunnerTrains) {
  Rng rng(5);
  const data::ExperimentData d = synthetic_corpus(8, rng);
  TrainConfig tc;
  tc.epochs = 3;
  ExperimentSpec spec;
  spec.blocks = 2;
  spec.batch_log2 = 1;
  const ExperimentResult r = run_vqc_experiment(d, spec, tc);
  EXPECT_EQ(r.train.curve.size(), 3u);
}

}  // namespace
}  // namespace qugeo::core
