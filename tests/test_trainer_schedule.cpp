// Trainer gradient-accumulation variants and schedule interaction.
#include <gtest/gtest.h>

#include "core/trainer.h"

namespace qugeo::core {
namespace {

data::ScaledDataset tiny_task(std::size_t n, Rng& rng) {
  data::ScaledDataset ds;
  ds.nsrc = 1;
  ds.nt = 1;
  ds.nrec = 8;
  ds.vel_rows = 3;
  ds.vel_cols = 2;
  ds.samples.resize(n);
  for (auto& s : ds.samples) {
    s.waveform.resize(8);
    rng.fill_uniform(s.waveform, -1, 1);
    s.velocity.resize(6);
    for (std::size_t r = 0; r < 3; ++r) {
      const Real v = std::abs(s.waveform[r]) ;
      for (std::size_t c = 0; c < 2; ++c) s.velocity[r * 2 + c] = v;
    }
  }
  return ds;
}

ModelConfig tiny_model() {
  ModelConfig mc;
  mc.group_data_qubits = {3};
  mc.ansatz.blocks = 2;
  mc.decoder = DecoderKind::kLayer;
  mc.vel_rows = 3;
  mc.vel_cols = 2;
  return mc;
}

class ChunksPerStep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunksPerStep, AllAccumulationGranularitiesLearn) {
  Rng drng(1);
  data::ScaledDataset ds = tiny_task(20, drng);
  const data::SplitView split = data::split_dataset(20, 16);
  Rng init(2);
  QuGeoModel model(tiny_model(), init);
  TrainConfig tc;
  tc.epochs = 25;
  tc.initial_lr = 0.05;
  tc.chunks_per_step = GetParam();
  const TrainResult r = train_model(model, ds, split, tc);
  EXPECT_LT(r.curve.back().train_loss, r.curve.front().train_loss)
      << "chunks_per_step=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Granularities, ChunksPerStep,
                         ::testing::Values(0, 1, 4, 16, 1000));

TEST(TrainerSchedule, FullBatchIsOneStepPerEpoch) {
  // With chunks_per_step = 0 the number of Adam steps equals epochs; the
  // trajectory must be independent of the shuffle order (mean gradient over
  // the whole set).
  Rng drng(3);
  data::ScaledDataset ds = tiny_task(12, drng);
  const data::SplitView split = data::split_dataset(12, 12);
  TrainConfig a, b;
  a.epochs = b.epochs = 4;
  a.chunks_per_step = b.chunks_per_step = 0;
  a.shuffle_seed = 111;
  b.shuffle_seed = 222;  // different order, same mean gradient

  Rng i1(7), i2(7);
  QuGeoModel m1(tiny_model(), i1);
  QuGeoModel m2(tiny_model(), i2);
  const TrainResult r1 = train_model(m1, ds, split, a);
  const TrainResult r2 = train_model(m2, ds, split, b);
  for (std::size_t e = 0; e < 4; ++e)
    EXPECT_NEAR(r1.curve[e].train_loss, r2.curve[e].train_loss, 1e-9);
}

TEST(TrainerSchedule, EvalEveryEpochProducesFullCurve) {
  Rng drng(4);
  data::ScaledDataset ds = tiny_task(8, drng);
  const data::SplitView split = data::split_dataset(8, 6);
  Rng init(5);
  QuGeoModel model(tiny_model(), init);
  TrainConfig tc;
  tc.epochs = 7;
  const TrainResult r = train_model(model, ds, split, tc);
  ASSERT_EQ(r.curve.size(), 7u);
  for (const EpochRecord& rec : r.curve) {
    EXPECT_GE(rec.test_ssim, -1.0);
    EXPECT_LE(rec.test_ssim, 1.0);
    EXPECT_GE(rec.test_mse, 0.0);
  }
}

TEST(TrainerSchedule, ZeroEpochsYieldsEmptyCurve) {
  Rng drng(6);
  data::ScaledDataset ds = tiny_task(8, drng);
  const data::SplitView split = data::split_dataset(8, 6);
  Rng init(7);
  QuGeoModel model(tiny_model(), init);
  TrainConfig tc;
  tc.epochs = 0;
  const TrainResult r = train_model(model, ds, split, tc);
  EXPECT_TRUE(r.curve.empty());
  EXPECT_EQ(r.final_ssim, 0.0);
}

}  // namespace
}  // namespace qugeo::core
