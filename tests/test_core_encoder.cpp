// ST-Encoder: faithful amplitude injection, grouping by source, QuBatch
// concatenation semantics, synthesized prep circuits.
#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "core/encoder.h"
#include "qsim/executor.h"

namespace qugeo::core {
namespace {

std::vector<Real> ramp(std::size_t n, Real start = 1.0) {
  std::vector<Real> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = start + static_cast<Real>(i);
  return v;
}

TEST(StEncoder, SingleSampleAmplitudes) {
  const QubitLayout lay({3}, 0);
  const StEncoder enc(lay);
  std::vector<Real> w = ramp(8);
  const qsim::StateVector psi = enc.encode_single(w);
  normalize_l2(w);
  for (Index k = 0; k < 8; ++k)
    EXPECT_NEAR(psi.amplitude(k).real(), w[k], 1e-12);
  EXPECT_NEAR(psi.norm_sq(), 1.0, 1e-12);
}

TEST(StEncoder, RejectsWrongSampleSize) {
  const QubitLayout lay({3}, 0);
  const StEncoder enc(lay);
  const std::vector<Real> bad = ramp(7);
  EXPECT_THROW((void)enc.encode_single(bad), std::invalid_argument);
}

TEST(StEncoder, RejectsWrongBatchCount) {
  const QubitLayout lay({3}, 1);  // expects 2 samples
  const StEncoder enc(lay);
  const std::vector<Real> w = ramp(8);
  const std::vector<Real>* one[] = {&w};
  EXPECT_THROW((void)enc.encode(one), std::invalid_argument);
}

TEST(StEncoder, GroupsSplitContiguously) {
  // Two groups of 4 values; group data must land in the right registers.
  const QubitLayout lay({2, 2}, 0);
  const StEncoder enc(lay);
  const std::vector<Real> w = {1, 0, 0, 0, /*group1:*/ 0, 1, 0, 0};
  const qsim::StateVector psi = enc.encode_single(w);
  // group0 -> |00> on qubits 0-1; group1 -> |01> meaning qubit2=1.
  EXPECT_NEAR(psi.probability(0b0100), 1.0, 1e-12);
}

TEST(StEncoder, BatchConcatenationOrder) {
  // Batch of 2 on a 2-value register: amplitudes = [s0, s1] / ||.||.
  const QubitLayout lay({1}, 1);
  const StEncoder enc(lay);
  const std::vector<Real> s0 = {3, 0};
  const std::vector<Real> s1 = {0, 4};
  const std::vector<Real>* batch[] = {&s0, &s1};
  const qsim::StateVector psi = enc.encode(batch);
  EXPECT_NEAR(psi.amplitude(0).real(), 0.6, 1e-12);  // 3/5
  EXPECT_NEAR(psi.amplitude(3).real(), 0.8, 1e-12);  // 4/5, block 1 offset 2
}

TEST(StEncoder, JointNormalizationPreservesRelativeScale) {
  // The paper: batching lowers precision but keeps relative relationships.
  const QubitLayout lay({2}, 1);
  const StEncoder enc(lay);
  const std::vector<Real> s0 = {2, 0, 0, 0};
  const std::vector<Real> s1 = {0, 0, 0, 6};
  const std::vector<Real>* batch[] = {&s0, &s1};
  const qsim::StateVector psi = enc.encode(batch);
  // Ratio of amplitudes must match the raw data ratio 6/2 = 3.
  EXPECT_NEAR(psi.amplitude(7).real() / psi.amplitude(0).real(), 3.0, 1e-12);
}

TEST(StEncoder, NormalizedViewMatchesState) {
  const QubitLayout lay({3}, 0);
  const StEncoder enc(lay);
  const std::vector<Real> w = ramp(8, -3.0);
  const std::vector<Real>* batch[] = {&w};
  const auto view = enc.normalized_view(batch);
  const qsim::StateVector psi = enc.encode(batch);
  ASSERT_EQ(view.size(), 8u);
  for (Index k = 0; k < 8; ++k)
    EXPECT_NEAR(view[k], psi.amplitude(k).real(), 1e-12);
}

TEST(StEncoder, PrepCircuitReproducesDirectInjection) {
  const QubitLayout lay({3}, 0);
  const StEncoder enc(lay);
  const std::vector<Real> w = {0.3, -0.1, 0.7, 0.2, -0.5, 0.9, 0.05, -0.4};
  const std::vector<Real>* batch[] = {&w};
  const qsim::StateVector direct = enc.encode(batch);

  const qsim::Circuit prep = enc.prep_circuit(batch);
  qsim::StateVector synth(lay.total_qubits());
  qsim::run_circuit(prep, {}, synth);
  EXPECT_NEAR(synth.fidelity(direct), 1.0, 1e-10);
}

TEST(StEncoder, PrepCircuitGroupedAndBatched) {
  const QubitLayout lay({2, 2}, 1);  // 2 groups + 1 batch qubit each = 6 qubits
  const StEncoder enc(lay);
  const std::vector<Real> s0 = {0.4, 0.1, -0.3, 0.8, 0.2, 0.2, 0.5, -0.1};
  const std::vector<Real> s1 = {0.9, -0.2, 0.1, 0.3, -0.6, 0.4, 0.2, 0.7};
  const std::vector<Real>* batch[] = {&s0, &s1};
  const qsim::StateVector direct = enc.encode(batch);
  const qsim::Circuit prep = enc.prep_circuit(batch);
  EXPECT_EQ(prep.num_qubits(), 6u);
  qsim::StateVector synth(6);
  qsim::run_circuit(prep, {}, synth);
  EXPECT_NEAR(synth.fidelity(direct), 1.0, 1e-10);
}

TEST(StEncoder, EncoderDepthGrowsLinearlyWithBatch) {
  // Sec. 3.3.3: per-group encoder length grows with log(B) qubits, i.e. the
  // gate count doubles per batch doubling (linear in state dimension).
  const std::vector<Real> base = ramp(8);
  std::vector<std::size_t> ops;
  for (Index blog : {0u, 1u, 2u}) {
    const QubitLayout lay({3}, blog);
    const StEncoder enc(lay);
    std::vector<const std::vector<Real>*> batch(lay.batch_size(), &base);
    ops.push_back(enc.prep_circuit(batch).num_ops());
  }
  EXPECT_LE(ops[1], 2 * ops[0] + 4);
  EXPECT_LE(ops[2], 2 * ops[1] + 4);
}

}  // namespace
}  // namespace qugeo::core
