// Cotangent builders: each must equal the numerical derivative of its
// observable with respect to the state amplitudes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "qsim/encoding.h"
#include "qsim/observables.h"

namespace qugeo::qsim {
namespace {

StateVector random_state(Index qubits, Rng& rng) {
  StateVector psi(qubits);
  std::vector<Real> data(psi.dim());
  rng.fill_uniform(data, -1, 1);
  encode_amplitudes(data, psi);
  return psi;
}

TEST(Observables, ProbabilityCotangentForm) {
  Rng rng(3);
  const StateVector psi = random_state(3, rng);
  std::vector<Real> g(psi.dim());
  rng.fill_uniform(g, -2, 2);
  const auto cot = cotangent_from_probability_grads(psi, g);
  for (Index k = 0; k < psi.dim(); ++k) {
    const Complex expected = g[k] * psi.amplitude(k);
    EXPECT_NEAR(std::abs(cot[k] - expected), 0, 1e-14);
  }
}

TEST(Observables, MarginalCotangentGathersBits) {
  Rng rng(4);
  const StateVector psi = random_state(3, rng);
  const std::vector<Index> qubits = {2, 0};  // out bit0 = qubit2, bit1 = qubit0
  std::vector<Real> g(4);
  rng.fill_uniform(g, -1, 1);
  const auto cot = cotangent_from_marginal_grads(psi, qubits, g);
  for (Index k = 0; k < psi.dim(); ++k) {
    Index out = 0;
    if (k & 4) out |= 1;  // qubit 2
    if (k & 1) out |= 2;  // qubit 0
    EXPECT_NEAR(std::abs(cot[k] - g[out] * psi.amplitude(k)), 0, 1e-14);
  }
}

TEST(Observables, ZCotangentSigns) {
  Rng rng(5);
  const StateVector psi = random_state(2, rng);
  const std::vector<Index> qubits = {0, 1};
  const std::vector<Real> g = {0.7, -0.3};
  const auto cot = cotangent_from_z_grads(psi, qubits, g);
  // lambda_k = (sum_q s_{k,q} g_q) psi_k.
  const Real w[4] = {0.7 - 0.3, -0.7 - 0.3, 0.7 + 0.3, -0.7 + 0.3};
  for (Index k = 0; k < 4; ++k)
    EXPECT_NEAR(std::abs(cot[k] - w[k] * psi.amplitude(k)), 0, 1e-14);
}

TEST(Observables, ZStringParity) {
  StateVector psi(2);  // |00>
  const std::vector<Index> both = {0, 1};
  EXPECT_NEAR(expect_z_string(psi, both), 1.0, 1e-14);
  psi.apply_1q(gate_matrix(GateKind::kX, {}), 0);  // |01>
  EXPECT_NEAR(expect_z_string(psi, both), -1.0, 1e-14);
  psi.apply_1q(gate_matrix(GateKind::kX, {}), 1);  // |11>
  EXPECT_NEAR(expect_z_string(psi, both), 1.0, 1e-14);
}

TEST(Observables, ZStringMatchesSingleQubitExpectation) {
  Rng rng(6);
  const StateVector psi = random_state(3, rng);
  for (Index q = 0; q < 3; ++q) {
    const std::vector<Index> one = {q};
    EXPECT_NEAR(expect_z_string(psi, one), psi.expect_z(q), 1e-12);
  }
}

TEST(Observables, SizeValidation) {
  StateVector psi(2);
  std::vector<Real> bad(3);
  EXPECT_THROW((void)cotangent_from_probability_grads(psi, bad),
               std::invalid_argument);
  const std::vector<Index> qubits = {0};
  EXPECT_THROW((void)cotangent_from_marginal_grads(psi, qubits, bad),
               std::invalid_argument);
  EXPECT_THROW((void)cotangent_from_z_grads(psi, qubits, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace qugeo::qsim
