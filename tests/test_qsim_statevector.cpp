// StateVector semantics: gate application against known small-system
// results, marginals, expectations, sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "qsim/gate.h"
#include "qsim/statevector.h"

namespace qugeo::qsim {
namespace {

TEST(StateVector, InitializesToZeroState) {
  StateVector psi(3);
  EXPECT_EQ(psi.dim(), 8u);
  EXPECT_NEAR(psi.probability(0), 1.0, 1e-14);
  EXPECT_NEAR(psi.norm_sq(), 1.0, 1e-14);
}

TEST(StateVector, XFlipsQubit) {
  StateVector psi(2);
  psi.apply_1q(gate_matrix(GateKind::kX, {}), 0);
  EXPECT_NEAR(psi.probability(1), 1.0, 1e-14);
  psi.apply_1q(gate_matrix(GateKind::kX, {}), 1);
  EXPECT_NEAR(psi.probability(3), 1.0, 1e-14);
}

TEST(StateVector, HadamardCreatesUniformSuperposition) {
  StateVector psi(3);
  const Mat2 h = gate_matrix(GateKind::kH, {});
  for (Index q = 0; q < 3; ++q) psi.apply_1q(h, q);
  for (Index k = 0; k < 8; ++k) EXPECT_NEAR(psi.probability(k), 0.125, 1e-12);
}

TEST(StateVector, BellStateViaHAndCX) {
  StateVector psi(2);
  psi.apply_1q(gate_matrix(GateKind::kH, {}), 0);
  psi.apply_controlled_1q(gate_matrix(GateKind::kX, {}), 0, 1);
  EXPECT_NEAR(psi.probability(0), 0.5, 1e-12);
  EXPECT_NEAR(psi.probability(3), 0.5, 1e-12);
  EXPECT_NEAR(psi.probability(1), 0.0, 1e-12);
  EXPECT_NEAR(psi.probability(2), 0.0, 1e-12);
}

TEST(StateVector, ControlledGateIgnoresControlZero) {
  StateVector psi(2);  // |00>
  psi.apply_controlled_1q(gate_matrix(GateKind::kX, {}), 0, 1);
  EXPECT_NEAR(psi.probability(0), 1.0, 1e-14);  // unchanged
}

TEST(StateVector, SwapExchangesBasisStates) {
  StateVector psi(2);
  psi.apply_1q(gate_matrix(GateKind::kX, {}), 0);  // |01> (qubit0 = 1)
  psi.apply_swap(0, 1);
  EXPECT_NEAR(psi.probability(2), 1.0, 1e-14);  // |10>
}

TEST(StateVector, SwapIsSelfInverse) {
  StateVector psi(3);
  psi.apply_1q(gate_matrix(GateKind::kH, {}), 0);
  psi.apply_1q(gate_matrix(GateKind::kRY, std::array<Real, 1>{0.7}), 2);
  const StateVector before = psi;
  psi.apply_swap(0, 2);
  psi.apply_swap(0, 2);
  EXPECT_NEAR(psi.fidelity(before), 1.0, 1e-12);
}

TEST(StateVector, ExpectZSigns) {
  StateVector psi(2);
  EXPECT_NEAR(psi.expect_z(0), 1.0, 1e-14);
  psi.apply_1q(gate_matrix(GateKind::kX, {}), 0);
  EXPECT_NEAR(psi.expect_z(0), -1.0, 1e-14);
  EXPECT_NEAR(psi.expect_z(1), 1.0, 1e-14);
}

TEST(StateVector, ExpectZAfterRY) {
  // RY(theta)|0> -> <Z> = cos(theta).
  for (Real theta : {0.0, 0.4, 1.2, 2.8}) {
    StateVector psi(1);
    psi.apply_1q(gate_matrix(GateKind::kRY, std::array<Real, 1>{theta}), 0);
    EXPECT_NEAR(psi.expect_z(0), std::cos(theta), 1e-12) << theta;
  }
}

TEST(StateVector, MarginalProbabilities) {
  StateVector psi(3);
  psi.apply_1q(gate_matrix(GateKind::kH, {}), 0);
  psi.apply_1q(gate_matrix(GateKind::kX, {}), 2);
  const Index qubits[] = {2};
  const auto m = psi.marginal_probabilities(qubits);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_NEAR(m[0], 0.0, 1e-12);
  EXPECT_NEAR(m[1], 1.0, 1e-12);
}

TEST(StateVector, MarginalOrderingFollowsQubitList) {
  StateVector psi(2);
  psi.apply_1q(gate_matrix(GateKind::kX, {}), 0);  // |01>
  const Index fwd[] = {0, 1};
  const Index rev[] = {1, 0};
  EXPECT_NEAR(psi.marginal_probabilities(fwd)[1], 1.0, 1e-12);
  EXPECT_NEAR(psi.marginal_probabilities(rev)[2], 1.0, 1e-12);
}

TEST(StateVector, SetAmplitudesRoundTrip) {
  StateVector psi(2);
  const std::vector<Real> amps = {0.5, 0.5, 0.5, 0.5};
  psi.set_amplitudes_real(amps);
  EXPECT_NEAR(psi.norm_sq(), 1.0, 1e-12);
  for (Index k = 0; k < 4; ++k) EXPECT_NEAR(psi.probability(k), 0.25, 1e-12);
}

TEST(StateVector, SetAmplitudesRejectsWrongSize) {
  StateVector psi(2);
  const std::vector<Real> amps = {1.0, 0.0};
  EXPECT_THROW(psi.set_amplitudes_real(amps), std::invalid_argument);
}

TEST(StateVector, SamplingMatchesBornRule) {
  StateVector psi(1);
  psi.apply_1q(gate_matrix(GateKind::kRY, std::array<Real, 1>{Real(kPi / 3)}), 0);
  const Real p1 = psi.probability(1);
  Rng rng(99);
  const auto samples = psi.sample(rng, 20000);
  std::size_t ones = 0;
  for (Index s : samples) ones += s;
  EXPECT_NEAR(static_cast<Real>(ones) / 20000.0, p1, 0.02);
}

TEST(StateVector, FidelityOfOrthogonalStates) {
  StateVector a(1), b(1);
  b.apply_1q(gate_matrix(GateKind::kX, {}), 0);
  EXPECT_NEAR(a.fidelity(b), 0.0, 1e-14);
  EXPECT_NEAR(a.fidelity(a), 1.0, 1e-14);
}

TEST(StateVector, UnitarityPreservedOverRandomCircuit) {
  StateVector psi(4);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Real params[] = {rng.uniform(-3, 3), rng.uniform(-3, 3),
                           rng.uniform(-3, 3)};
    const auto q = static_cast<Index>(rng.uniform_int(0, 3));
    psi.apply_1q(gate_matrix(GateKind::kU3, params), q);
    const auto c = static_cast<Index>(rng.uniform_int(0, 3));
    if (c != q) psi.apply_controlled_1q(gate_matrix(GateKind::kU3, params), c, q);
  }
  EXPECT_NEAR(psi.norm_sq(), 1.0, 1e-10);
}

TEST(StateVector, RejectsTooManyQubits) {
  EXPECT_THROW(StateVector psi(29), std::invalid_argument);
}

}  // namespace
}  // namespace qugeo::qsim
