// Kernel-equivalence suite: every specialized fast path the executor can
// dispatch to (diagonal, anti-diagonal, branch-free controlled, SWAP
// half-space) must agree with the generic dense 2x2 application on random
// states — the specialized kernels are optimizations, never semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/rng.h"
#include "qsim/executor.h"
#include "qsim/observables.h"

namespace qugeo::qsim {
namespace {

constexpr Real kTol = 1e-12;

std::vector<Complex> random_amplitudes(Index dim, Rng& rng) {
  std::vector<Complex> amps(dim);
  Real norm = 0;
  for (Complex& a : amps) {
    a = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    norm += std::norm(a);
  }
  norm = std::sqrt(norm);
  for (Complex& a : amps) a /= norm;
  return amps;
}

// Reference implementations: the textbook dense loops the seed shipped
// with, kept verbatim so the fast paths are checked against known-good
// semantics rather than against themselves.

void ref_apply_1q(std::vector<Complex>& amps, const Mat2& u, Index q) {
  const Index stride = Index{1} << q;
  for (Index base = 0; base < amps.size(); base += stride * 2) {
    for (Index off = 0; off < stride; ++off) {
      const Index i0 = base + off;
      const Index i1 = i0 + stride;
      const Complex a0 = amps[i0];
      const Complex a1 = amps[i1];
      amps[i0] = u(0, 0) * a0 + u(0, 1) * a1;
      amps[i1] = u(1, 0) * a0 + u(1, 1) * a1;
    }
  }
}

void ref_apply_controlled_1q(std::vector<Complex>& amps, const Mat2& u,
                             Index control, Index target) {
  const Index cmask = Index{1} << control;
  const Index stride = Index{1} << target;
  for (Index base = 0; base < amps.size(); base += stride * 2) {
    for (Index off = 0; off < stride; ++off) {
      const Index i0 = base + off;
      if (!(i0 & cmask)) continue;
      const Index i1 = i0 + stride;
      const Complex a0 = amps[i0];
      const Complex a1 = amps[i1];
      amps[i0] = u(0, 0) * a0 + u(0, 1) * a1;
      amps[i1] = u(1, 0) * a0 + u(1, 1) * a1;
    }
  }
}

void ref_apply_swap(std::vector<Complex>& amps, Index a, Index b) {
  const Index ma = Index{1} << a;
  const Index mb = Index{1} << b;
  for (Index k = 0; k < amps.size(); ++k)
    if ((k & ma) && !(k & mb)) std::swap(amps[k], amps[(k & ~ma) | mb]);
}

/// Apply `op` to a copy of `amps` via the reference loops.
std::vector<Complex> ref_apply_op(const Op& op, std::span<const Real> params,
                                  std::vector<Complex> amps, bool inverse) {
  if (op.kind == GateKind::kSWAP) {
    ref_apply_swap(amps, op.qubits[0], op.qubits[1]);
    return amps;
  }
  const auto vals = Circuit::resolve_params(op, params);
  Mat2 u = gate_matrix(op.kind, vals);
  if (inverse) u = dagger(u);
  if (gate_is_controlled_1q(op.kind))
    ref_apply_controlled_1q(amps, u, op.qubits[0], op.qubits[1]);
  else
    ref_apply_1q(amps, u, op.qubits[0]);
  return amps;
}

void expect_amps_near(std::span<const Complex> got, std::span<const Complex> want,
                      const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (Index k = 0; k < got.size(); ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), kTol) << what << " amp " << k;
    EXPECT_NEAR(got[k].imag(), want[k].imag(), kTol) << what << " amp " << k;
  }
}

const GateKind kAllKinds[] = {
    GateKind::kI,   GateKind::kX,     GateKind::kY,   GateKind::kZ,
    GateKind::kH,   GateKind::kS,     GateKind::kSdg, GateKind::kT,
    GateKind::kTdg, GateKind::kRX,    GateKind::kRY,  GateKind::kRZ,
    GateKind::kPhase, GateKind::kU3,  GateKind::kCX,  GateKind::kCZ,
    GateKind::kCRY, GateKind::kCU3,   GateKind::kSWAP};

Op random_op(GateKind kind, Index num_qubits, Rng& rng) {
  Op op;
  op.kind = kind;
  op.qubits[0] = static_cast<Index>(
      rng.uniform_int(0, static_cast<std::int64_t>(num_qubits) - 1));
  if (gate_qubit_count(kind) == 2) {
    do {
      op.qubits[1] = static_cast<Index>(
          rng.uniform_int(0, static_cast<std::int64_t>(num_qubits) - 1));
    } while (op.qubits[1] == op.qubits[0]);
  }
  for (int s = 0; s < gate_param_count(kind); ++s)
    op.literals[static_cast<std::size_t>(s)] = rng.uniform(-3, 3);
  return op;
}

TEST(KernelEquivalence, EveryKindMatchesDenseReference) {
  Rng rng(11);
  for (Index nq : {2u, 3u, 5u, 7u}) {
    for (GateKind kind : kAllKinds) {
      for (int trial = 0; trial < 4; ++trial) {
        const Op op = random_op(kind, nq, rng);
        const auto amps = random_amplitudes(Index{1} << nq, rng);
        StateVector psi(nq);
        psi.set_amplitudes(amps);
        apply_op(op, {}, psi);
        const auto want = ref_apply_op(op, {}, amps, /*inverse=*/false);
        expect_amps_near(psi.amplitudes(), want, gate_name(kind).data());
      }
    }
  }
}

TEST(KernelEquivalence, InverseMatchesDenseReference) {
  Rng rng(12);
  for (Index nq : {2u, 4u, 6u}) {
    for (GateKind kind : kAllKinds) {
      const Op op = random_op(kind, nq, rng);
      const auto amps = random_amplitudes(Index{1} << nq, rng);
      StateVector psi(nq);
      psi.set_amplitudes(amps);
      apply_op_inverse(op, {}, psi);
      const auto want = ref_apply_op(op, {}, amps, /*inverse=*/true);
      expect_amps_near(psi.amplitudes(), want, gate_name(kind).data());
    }
  }
}

TEST(KernelEquivalence, InverseUndoesForward) {
  Rng rng(13);
  for (GateKind kind : kAllKinds) {
    const Index nq = 5;
    const Op op = random_op(kind, nq, rng);
    const auto amps = random_amplitudes(Index{1} << nq, rng);
    StateVector psi(nq);
    psi.set_amplitudes(amps);
    apply_op(op, {}, psi);
    apply_op_inverse(op, {}, psi);
    expect_amps_near(psi.amplitudes(), amps, gate_name(kind).data());
  }
}

TEST(KernelEquivalence, DirectKernelsAgainstReference) {
  // The specialized entry points themselves (not via apply_op dispatch),
  // including the non-unit diagonal/anti-diagonal branches.
  Rng rng(14);
  const Index nq = 6;
  const auto amps = random_amplitudes(Index{1} << nq, rng);
  const Complex d0{0.6, -0.8}, d1{0.28, 0.96};
  const Complex a01{0.0, -1.0}, a10{0.0, 1.0};

  {
    Mat2 u{};
    u(0, 0) = d0;
    u(1, 1) = d1;
    StateVector psi(nq);
    psi.set_amplitudes(amps);
    psi.apply_diag_1q(d0, d1, 3);
    auto want = amps;
    ref_apply_1q(want, u, 3);
    expect_amps_near(psi.amplitudes(), want, "diag");

    StateVector cpsi(nq);
    cpsi.set_amplitudes(amps);
    cpsi.apply_controlled_diag_1q(d0, d1, 5, 1);
    auto cwant = amps;
    ref_apply_controlled_1q(cwant, u, 5, 1);
    expect_amps_near(cpsi.amplitudes(), cwant, "cdiag");
  }
  {
    Mat2 u{};
    u(0, 1) = a01;
    u(1, 0) = a10;
    StateVector psi(nq);
    psi.set_amplitudes(amps);
    psi.apply_antidiag_1q(a01, a10, 2);
    auto want = amps;
    ref_apply_1q(want, u, 2);
    expect_amps_near(psi.amplitudes(), want, "antidiag");

    StateVector cpsi(nq);
    cpsi.set_amplitudes(amps);
    cpsi.apply_controlled_antidiag_1q(a01, a10, 0, 4);
    auto cwant = amps;
    ref_apply_controlled_1q(cwant, u, 0, 4);
    expect_amps_near(cpsi.amplitudes(), cwant, "cantidiag");
  }
}

TEST(KernelEquivalence, SwapMatchesReferenceAllQubitPairs) {
  Rng rng(15);
  const Index nq = 5;
  for (Index a = 0; a < nq; ++a)
    for (Index b = 0; b < nq; ++b) {
      if (a == b) continue;
      const auto amps = random_amplitudes(Index{1} << nq, rng);
      StateVector psi(nq);
      psi.set_amplitudes(amps);
      psi.apply_swap(a, b);
      auto want = amps;
      ref_apply_swap(want, a, b);
      expect_amps_near(psi.amplitudes(), want, "swap");
    }
}

TEST(KernelEquivalence, AdjointGradientsMatchParameterShiftOnFastPathCircuit) {
  // A circuit that exercises every specialized dispatch class with
  // trainable angles where the parameter-shift rule applies.
  Rng rng(16);
  const Index nq = 4;
  Circuit c(nq);
  c.h(0);
  c.h(1);
  c.h(2);
  c.h(3);
  c.rz(0, c.new_param());
  c.z(1);
  c.s(2);
  c.t(3);
  c.cz(0, 2);
  c.x(1);
  c.cx(3, 1);
  c.ry(2, c.new_param());
  c.rx(3, c.new_param());
  c.cry(1, 3, c.new_param());
  c.swap(0, 3);
  c.rz(2, c.new_param());

  std::vector<Real> params(c.num_params());
  rng.fill_uniform(params, -2, 2);

  std::vector<Real> weights(Index{1} << nq);
  rng.fill_uniform(weights, -1, 1);
  const auto loss = [&](const StateVector& psi) {
    Real l = 0;
    for (Index k = 0; k < psi.dim(); ++k) l += weights[k] * psi.probability(k);
    return l;
  };

  StateVector psi_in(nq);
  StateVector psi_out = psi_in;
  run_circuit(c, params, psi_out);
  const auto cot = cotangent_from_probability_grads(psi_out, weights);
  const auto adj = adjoint_backward(c, params, psi_out, cot);
  const auto shift = parameter_shift_gradient(c, params, psi_in, loss);

  ASSERT_EQ(adj.param_grads.size(), shift.size());
  for (std::size_t i = 0; i < shift.size(); ++i)
    EXPECT_NEAR(adj.param_grads[i], shift[i], 1e-9) << "param " << i;
}

}  // namespace
}  // namespace qugeo::qsim
