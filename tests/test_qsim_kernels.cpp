// Kernel-equivalence suite: every specialized fast path the executor can
// dispatch to (diagonal, anti-diagonal, branch-free controlled, SWAP
// half-space) must agree with the generic dense 2x2 application on random
// states — the specialized kernels are optimizations, never semantics.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>
#include <utility>
#include <vector>

#include "common/cpu_features.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "qsim/batched_statevector.h"
#include "qsim/executor.h"
#include "qsim/observables.h"
#include "qsim/simd_kernels.h"

namespace qugeo::qsim {
namespace {

constexpr Real kTol = 1e-12;

std::vector<Complex> random_amplitudes(Index dim, Rng& rng) {
  std::vector<Complex> amps(dim);
  Real norm = 0;
  for (Complex& a : amps) {
    a = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    norm += std::norm(a);
  }
  norm = std::sqrt(norm);
  for (Complex& a : amps) a /= norm;
  return amps;
}

// Reference implementations: the textbook dense loops the seed shipped
// with, kept verbatim so the fast paths are checked against known-good
// semantics rather than against themselves.

void ref_apply_1q(std::vector<Complex>& amps, const Mat2& u, Index q) {
  const Index stride = Index{1} << q;
  for (Index base = 0; base < amps.size(); base += stride * 2) {
    for (Index off = 0; off < stride; ++off) {
      const Index i0 = base + off;
      const Index i1 = i0 + stride;
      const Complex a0 = amps[i0];
      const Complex a1 = amps[i1];
      amps[i0] = u(0, 0) * a0 + u(0, 1) * a1;
      amps[i1] = u(1, 0) * a0 + u(1, 1) * a1;
    }
  }
}

void ref_apply_controlled_1q(std::vector<Complex>& amps, const Mat2& u,
                             Index control, Index target) {
  const Index cmask = Index{1} << control;
  const Index stride = Index{1} << target;
  for (Index base = 0; base < amps.size(); base += stride * 2) {
    for (Index off = 0; off < stride; ++off) {
      const Index i0 = base + off;
      if (!(i0 & cmask)) continue;
      const Index i1 = i0 + stride;
      const Complex a0 = amps[i0];
      const Complex a1 = amps[i1];
      amps[i0] = u(0, 0) * a0 + u(0, 1) * a1;
      amps[i1] = u(1, 0) * a0 + u(1, 1) * a1;
    }
  }
}

void ref_apply_swap(std::vector<Complex>& amps, Index a, Index b) {
  const Index ma = Index{1} << a;
  const Index mb = Index{1} << b;
  for (Index k = 0; k < amps.size(); ++k)
    if ((k & ma) && !(k & mb)) std::swap(amps[k], amps[(k & ~ma) | mb]);
}

/// Apply `op` to a copy of `amps` via the reference loops.
std::vector<Complex> ref_apply_op(const Op& op, std::span<const Real> params,
                                  std::vector<Complex> amps, bool inverse) {
  if (op.kind == GateKind::kSWAP) {
    ref_apply_swap(amps, op.qubits[0], op.qubits[1]);
    return amps;
  }
  const auto vals = Circuit::resolve_params(op, params);
  Mat2 u = gate_matrix(op.kind, vals);
  if (inverse) u = dagger(u);
  if (gate_is_controlled_1q(op.kind))
    ref_apply_controlled_1q(amps, u, op.qubits[0], op.qubits[1]);
  else
    ref_apply_1q(amps, u, op.qubits[0]);
  return amps;
}

void expect_amps_near(std::span<const Complex> got, std::span<const Complex> want,
                      const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (Index k = 0; k < got.size(); ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), kTol) << what << " amp " << k;
    EXPECT_NEAR(got[k].imag(), want[k].imag(), kTol) << what << " amp " << k;
  }
}

const GateKind kAllKinds[] = {
    GateKind::kI,   GateKind::kX,     GateKind::kY,   GateKind::kZ,
    GateKind::kH,   GateKind::kS,     GateKind::kSdg, GateKind::kT,
    GateKind::kTdg, GateKind::kRX,    GateKind::kRY,  GateKind::kRZ,
    GateKind::kPhase, GateKind::kU3,  GateKind::kCX,  GateKind::kCZ,
    GateKind::kCRY, GateKind::kCU3,   GateKind::kSWAP};

Op random_op(GateKind kind, Index num_qubits, Rng& rng) {
  Op op;
  op.kind = kind;
  op.qubits[0] = static_cast<Index>(
      rng.uniform_int(0, static_cast<std::int64_t>(num_qubits) - 1));
  if (gate_qubit_count(kind) == 2) {
    do {
      op.qubits[1] = static_cast<Index>(
          rng.uniform_int(0, static_cast<std::int64_t>(num_qubits) - 1));
    } while (op.qubits[1] == op.qubits[0]);
  }
  for (int s = 0; s < gate_param_count(kind); ++s)
    op.literals[static_cast<std::size_t>(s)] = rng.uniform(-3, 3);
  return op;
}

TEST(KernelEquivalence, EveryKindMatchesDenseReference) {
  Rng rng(11);
  for (Index nq : {2u, 3u, 5u, 7u}) {
    for (GateKind kind : kAllKinds) {
      for (int trial = 0; trial < 4; ++trial) {
        const Op op = random_op(kind, nq, rng);
        const auto amps = random_amplitudes(Index{1} << nq, rng);
        StateVector psi(nq);
        psi.set_amplitudes(amps);
        apply_op(op, {}, psi);
        const auto want = ref_apply_op(op, {}, amps, /*inverse=*/false);
        expect_amps_near(psi.amplitudes(), want, gate_name(kind).data());
      }
    }
  }
}

TEST(KernelEquivalence, InverseMatchesDenseReference) {
  Rng rng(12);
  for (Index nq : {2u, 4u, 6u}) {
    for (GateKind kind : kAllKinds) {
      const Op op = random_op(kind, nq, rng);
      const auto amps = random_amplitudes(Index{1} << nq, rng);
      StateVector psi(nq);
      psi.set_amplitudes(amps);
      apply_op_inverse(op, {}, psi);
      const auto want = ref_apply_op(op, {}, amps, /*inverse=*/true);
      expect_amps_near(psi.amplitudes(), want, gate_name(kind).data());
    }
  }
}

TEST(KernelEquivalence, InverseUndoesForward) {
  Rng rng(13);
  for (GateKind kind : kAllKinds) {
    const Index nq = 5;
    const Op op = random_op(kind, nq, rng);
    const auto amps = random_amplitudes(Index{1} << nq, rng);
    StateVector psi(nq);
    psi.set_amplitudes(amps);
    apply_op(op, {}, psi);
    apply_op_inverse(op, {}, psi);
    expect_amps_near(psi.amplitudes(), amps, gate_name(kind).data());
  }
}

TEST(KernelEquivalence, DirectKernelsAgainstReference) {
  // The specialized entry points themselves (not via apply_op dispatch),
  // including the non-unit diagonal/anti-diagonal branches.
  Rng rng(14);
  const Index nq = 6;
  const auto amps = random_amplitudes(Index{1} << nq, rng);
  const Complex d0{0.6, -0.8}, d1{0.28, 0.96};
  const Complex a01{0.0, -1.0}, a10{0.0, 1.0};

  {
    Mat2 u{};
    u(0, 0) = d0;
    u(1, 1) = d1;
    StateVector psi(nq);
    psi.set_amplitudes(amps);
    psi.apply_diag_1q(d0, d1, 3);
    auto want = amps;
    ref_apply_1q(want, u, 3);
    expect_amps_near(psi.amplitudes(), want, "diag");

    StateVector cpsi(nq);
    cpsi.set_amplitudes(amps);
    cpsi.apply_controlled_diag_1q(d0, d1, 5, 1);
    auto cwant = amps;
    ref_apply_controlled_1q(cwant, u, 5, 1);
    expect_amps_near(cpsi.amplitudes(), cwant, "cdiag");
  }
  {
    Mat2 u{};
    u(0, 1) = a01;
    u(1, 0) = a10;
    StateVector psi(nq);
    psi.set_amplitudes(amps);
    psi.apply_antidiag_1q(a01, a10, 2);
    auto want = amps;
    ref_apply_1q(want, u, 2);
    expect_amps_near(psi.amplitudes(), want, "antidiag");

    StateVector cpsi(nq);
    cpsi.set_amplitudes(amps);
    cpsi.apply_controlled_antidiag_1q(a01, a10, 0, 4);
    auto cwant = amps;
    ref_apply_controlled_1q(cwant, u, 0, 4);
    expect_amps_near(cpsi.amplitudes(), cwant, "cantidiag");
  }
}

TEST(KernelEquivalence, SwapMatchesReferenceAllQubitPairs) {
  Rng rng(15);
  const Index nq = 5;
  for (Index a = 0; a < nq; ++a)
    for (Index b = 0; b < nq; ++b) {
      if (a == b) continue;
      const auto amps = random_amplitudes(Index{1} << nq, rng);
      StateVector psi(nq);
      psi.set_amplitudes(amps);
      psi.apply_swap(a, b);
      auto want = amps;
      ref_apply_swap(want, a, b);
      expect_amps_near(psi.amplitudes(), want, "swap");
    }
}

TEST(KernelEquivalence, AdjointGradientsMatchParameterShiftOnFastPathCircuit) {
  // A circuit that exercises every specialized dispatch class with
  // trainable angles where the parameter-shift rule applies.
  Rng rng(16);
  const Index nq = 4;
  Circuit c(nq);
  c.h(0);
  c.h(1);
  c.h(2);
  c.h(3);
  c.rz(0, c.new_param());
  c.z(1);
  c.s(2);
  c.t(3);
  c.cz(0, 2);
  c.x(1);
  c.cx(3, 1);
  c.ry(2, c.new_param());
  c.rx(3, c.new_param());
  c.cry(1, 3, c.new_param());
  c.swap(0, 3);
  c.rz(2, c.new_param());

  std::vector<Real> params(c.num_params());
  rng.fill_uniform(params, -2, 2);

  std::vector<Real> weights(Index{1} << nq);
  rng.fill_uniform(weights, -1, 1);
  const auto loss = [&](const StateVector& psi) {
    Real l = 0;
    for (Index k = 0; k < psi.dim(); ++k) l += weights[k] * psi.probability(k);
    return l;
  };

  StateVector psi_in(nq);
  StateVector psi_out = psi_in;
  run_circuit(c, params, psi_out);
  const auto cot = cotangent_from_probability_grads(psi_out, weights);
  const auto adj = adjoint_backward(c, params, psi_out, cot);
  const auto shift = parameter_shift_gradient(c, params, psi_in, loss);

  ASSERT_EQ(adj.param_grads.size(), shift.size());
  for (std::size_t i = 0; i < shift.size(); ++i)
    EXPECT_NEAR(adj.param_grads[i], shift[i], 1e-9) << "param " << i;
}

// --- SIMD layer: the QUGEO_SIMD=scalar escape hatch and the AVX2 kernels.
//
// The scalar dispatch path must reproduce the pre-SIMD kernels BIT-EXACTLY
// (the bodies are the unchanged cmul formulas; the baseline TU cannot emit
// FMA, so re-deriving the same formulas here yields identical doubles).
// The AVX2 kernels may contract into FMA and are pinned to <= 1e-12 per
// amplitude component against scalar.

/// The exact scalar apply_1q formula from statevector.cpp, re-derived.
void formula_apply_1q(std::vector<Complex>& amps, const Mat2& u, Index q) {
  const Index stride = Index{1} << q;
  const Complex u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  for (Index base = 0; base < amps.size(); base += stride * 2) {
    for (Index off = 0; off < stride; ++off) {
      const Index i0 = base + off;
      const Index i1 = i0 + stride;
      const Complex a0 = amps[i0];
      const Complex a1 = amps[i1];
      amps[i0] = cmul(u00, a0) + cmul(u01, a1);
      amps[i1] = cmul(u10, a0) + cmul(u11, a1);
    }
  }
}

/// The exact scalar apply_matrix2q formula (pair order and left-to-right
/// four-term sums) from statevector.cpp, re-derived.
void formula_apply_matrix2q(std::vector<Complex>& amps, const Mat4& u,
                            Index q0, Index q1) {
  const Index m0 = Index{1} << q0;
  const Index m1 = Index{1} << q1;
  const Index mlo = q0 < q1 ? m0 : m1;
  const Index mhi = q0 < q1 ? m1 : m0;
  const std::array<Complex, 16> um = u.m;
  for (Index base = 0; base < amps.size(); base += 2 * mhi) {
    for (Index mid = base; mid < base + mhi; mid += 2 * mlo) {
      for (Index i0 = mid; i0 < mid + mlo; ++i0) {
        const Index i1 = i0 | m0;
        const Index i2 = i0 | m1;
        const Index i3 = i1 | m1;
        const Complex a0 = amps[i0];
        const Complex a1 = amps[i1];
        const Complex a2 = amps[i2];
        const Complex a3 = amps[i3];
        amps[i0] = cmul(um[0], a0) + cmul(um[1], a1) + cmul(um[2], a2) +
                   cmul(um[3], a3);
        amps[i1] = cmul(um[4], a0) + cmul(um[5], a1) + cmul(um[6], a2) +
                   cmul(um[7], a3);
        amps[i2] = cmul(um[8], a0) + cmul(um[9], a1) + cmul(um[10], a2) +
                   cmul(um[11], a3);
        amps[i3] = cmul(um[12], a0) + cmul(um[13], a1) + cmul(um[14], a2) +
                   cmul(um[15], a3);
      }
    }
  }
}

void expect_amps_bitwise(std::span<const Complex> got,
                         std::span<const Complex> want, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (Index k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].real(), want[k].real()) << what << " amp " << k;
    EXPECT_EQ(got[k].imag(), want[k].imag()) << what << " amp " << k;
  }
}

Mat2 random_mat2(Rng& rng) {
  return u3_matrix(rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3));
}

Mat4 random_mat4(Rng& rng) {
  const Mat2 a = random_mat2(rng);
  const Mat2 b = random_mat2(rng);
  Mat4 m{};
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      m(r, c) = a(r / 2, c % 2) * b(r % 2, c / 2);
  return m;
}

TEST(SimdEquivalence, ScalarModeIsBitExactReferenceFormula) {
  // QUGEO_SIMD=scalar must reproduce the pre-SIMD results bit-for-bit —
  // the documented reproducibility escape hatch.
  const simd::ScopedSimdMode scoped(simd::SimdMode::kScalar);
  ASSERT_EQ(simd::active_level(), simd::SimdLevel::kScalar);
  Rng rng(31);
  const Index nq = 6;
  for (int trial = 0; trial < 4; ++trial) {
    const auto amps = random_amplitudes(Index{1} << nq, rng);
    const Mat2 u = random_mat2(rng);
    const auto q = static_cast<Index>(rng.uniform_int(0, nq - 1));
    StateVector psi(nq);
    psi.set_amplitudes(amps);
    psi.apply_1q(u, q);
    auto want = amps;
    formula_apply_1q(want, u, q);
    expect_amps_bitwise(psi.amplitudes(), want, "scalar 1q");

    const Mat4 u4 = random_mat4(rng);
    const auto q1 = static_cast<Index>((q + 1 + rng.uniform_int(0, nq - 2)) %
                                       static_cast<std::int64_t>(nq));
    StateVector psi2(nq);
    psi2.set_amplitudes(amps);
    psi2.apply_matrix2q(u4, q, q1);
    auto want2 = amps;
    formula_apply_matrix2q(want2, u4, q, q1);
    expect_amps_bitwise(psi2.amplitudes(), want2, "scalar dense 2q");
  }
}

TEST(SimdEquivalence, Apply1QAvx2MatchesScalar) {
  if (!simd::cpu_supports_avx2())
    GTEST_SKIP() << "AVX2+FMA not supported on this CPU";
  Rng rng(32);
  const Index nq = 7;
  for (Index q = 0; q < nq; ++q) {
    const auto amps = random_amplitudes(Index{1} << nq, rng);
    const Mat2 u = random_mat2(rng);
    auto got = amps;
    apply_1q_avx2(got.data(), got.size(), u, q);
    auto want = amps;
    formula_apply_1q(want, u, q);
    expect_amps_near(got, want, "apply_1q_avx2");
  }
}

TEST(SimdEquivalence, ApplyControlled1QAvx2MatchesScalar) {
  if (!simd::cpu_supports_avx2())
    GTEST_SKIP() << "AVX2+FMA not supported on this CPU";
  Rng rng(33);
  const Index nq = 6;
  for (Index control = 0; control < nq; ++control)
    for (Index target = 0; target < nq; ++target) {
      if (control == target) continue;
      const auto amps = random_amplitudes(Index{1} << nq, rng);
      const Mat2 u = random_mat2(rng);
      auto got = amps;
      apply_controlled_1q_avx2(got.data(), got.size(), u, control, target);
      auto want = amps;
      ref_apply_controlled_1q(want, u, control, target);
      expect_amps_near(got, want, "apply_controlled_1q_avx2");
    }
}

TEST(SimdEquivalence, ApplyMatrix2QAvx2MatchesScalar) {
  if (!simd::cpu_supports_avx2())
    GTEST_SKIP() << "AVX2+FMA not supported on this CPU";
  Rng rng(34);
  const Index nq = 6;
  for (Index q0 = 0; q0 < nq; ++q0)
    for (Index q1 = 0; q1 < nq; ++q1) {
      if (q0 == q1) continue;
      const auto amps = random_amplitudes(Index{1} << nq, rng);
      const Mat4 u = random_mat4(rng);
      auto got = amps;
      apply_matrix2q_avx2(got.data(), got.size(), u, q0, q1);
      auto want = amps;
      formula_apply_matrix2q(want, u, q0, q1);
      expect_amps_near(got, want, "apply_matrix2q_avx2");
    }
}

TEST(SimdEquivalence, ApplyBlockDiag2QAvx2MatchesScalar) {
  if (!simd::cpu_supports_avx2())
    GTEST_SKIP() << "AVX2+FMA not supported on this CPU";
  Rng rng(36);
  const Index nq = 6;
  for (Index control = 0; control < nq; ++control)
    for (Index target = 0; target < nq; ++target) {
      if (control == target) continue;
      const auto amps = random_amplitudes(Index{1} << nq, rng);
      // Random blocks, plus each identity-block skip path on its own.
      const Mat2 identity = u3_matrix(0, 0, 0);
      const std::array<std::pair<Mat2, Mat2>, 3> cases = {
          std::pair<Mat2, Mat2>{random_mat2(rng), random_mat2(rng)},
          std::pair<Mat2, Mat2>{identity, random_mat2(rng)},
          std::pair<Mat2, Mat2>{random_mat2(rng), identity}};
      for (const auto& [u0, u1] : cases) {
        auto got = amps;
        apply_block_diag_2q_avx2(got.data(), got.size(), u0, u1, control,
                                 target);
        StateVector want(nq);
        {
          const simd::ScopedSimdMode scoped(simd::SimdMode::kScalar);
          want.set_amplitudes(amps);
          want.apply_block_diag_2q(u0, u1, control, target);
        }
        expect_amps_near(got, want.amplitudes(), "apply_block_diag_2q_avx2");
      }
    }
}

TEST(SimdEquivalence, BatchedApply1QAvx2MatchesScalar) {
  if (!simd::cpu_supports_avx2())
    GTEST_SKIP() << "AVX2+FMA not supported on this CPU";
  Rng rng(35);
  const Index nq = 5;
  // Odd lane count exercises the vector tail of the lane loop.
  const std::size_t lanes = 5;
  BatchedStateVector batch(nq, lanes);
  std::vector<std::vector<Complex>> per_lane(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    per_lane[l] = random_amplitudes(batch.dim(), rng);
    batch.set_lane(l, per_lane[l]);
  }
  for (Index q = 0; q < nq; ++q) {
    const Mat2 u = random_mat2(rng);
    batched_apply_1q_avx2(batch.re_data(), batch.im_data(), batch.dim(),
                          batch.lanes(), u, q);
    for (std::size_t l = 0; l < lanes; ++l) {
      formula_apply_1q(per_lane[l], u, q);
      const StateVector got = batch.lane_state(l);
      expect_amps_near(got.amplitudes(), per_lane[l], "batched_apply_1q_avx2");
    }
  }
}

TEST(SimdEquivalence, Avx2DispatchMatchesScalarOnFullAnsatzRun) {
  // End-to-end: the same circuit under forced AVX2 vs forced scalar
  // dispatch agrees to kTol per amplitude.
  if (!simd::cpu_supports_avx2())
    GTEST_SKIP() << "AVX2+FMA not supported on this CPU";
  Rng rng(36);
  const Index nq = 6;
  Circuit c(nq);
  const auto p = c.new_params(4);
  for (Index q = 0; q < nq; ++q) c.h(q);
  c.rz(0, ParamRef{p.id});
  c.ry(1, ParamRef{p.id + 1});
  c.cu3(0, 2, 0.4, -0.8, 1.1);
  c.cry(1, 3, ParamRef{p.id + 2});
  c.swap(2, 4);
  c.cx(3, 5);
  c.rx(5, ParamRef{p.id + 3});
  std::vector<Real> params(c.num_params());
  rng.fill_uniform(params, -2, 2);

  StateVector scalar_psi(nq);
  {
    const simd::ScopedSimdMode scoped(simd::SimdMode::kScalar);
    run_circuit(c, params, scalar_psi);
  }
  StateVector avx2_psi(nq);
  {
    const simd::ScopedSimdMode scoped(simd::SimdMode::kAvx2);
    run_circuit(c, params, avx2_psi);
  }
  expect_amps_near(avx2_psi.amplitudes(), scalar_psi.amplitudes(),
                   "avx2 vs scalar ansatz");
}

}  // namespace
}  // namespace qugeo::qsim
