// The adjoint differentiation engine is the load-bearing piece of the
// training pipeline; it is validated here against numerical finite
// differences and the parameter-shift rule on several circuit shapes and
// loss forms.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "qsim/encoding.h"
#include "qsim/executor.h"
#include "qsim/observables.h"

namespace qugeo::qsim {
namespace {

/// Loss = sum_k w_k * p_k for fixed weights (covers both decoders' math).
struct WeightedProbLoss {
  std::vector<Real> weights;

  Real operator()(const StateVector& psi) const {
    Real loss = 0;
    for (Index k = 0; k < psi.dim(); ++k)
      loss += weights[k] * psi.probability(k);
    return loss;
  }

  std::vector<Complex> cotangent(const StateVector& psi) const {
    return cotangent_from_probability_grads(psi, weights);
  }
};

std::vector<Real> finite_diff_grads(const Circuit& c,
                                    std::span<const Real> params,
                                    const StateVector& psi_in,
                                    const WeightedProbLoss& loss) {
  std::vector<Real> grads(c.num_params());
  std::vector<Real> p(params.begin(), params.end());
  const Real eps = 1e-6;
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = params[i] + eps;
    StateVector plus = psi_in;
    run_circuit(c, p, plus);
    p[i] = params[i] - eps;
    StateVector minus = psi_in;
    run_circuit(c, p, minus);
    p[i] = params[i];
    grads[i] = (loss(plus) - loss(minus)) / (2 * eps);
  }
  return grads;
}

WeightedProbLoss make_loss(Index dim, Rng& rng) {
  WeightedProbLoss loss;
  loss.weights.resize(dim);
  rng.fill_uniform(loss.weights, -1, 1);
  return loss;
}

StateVector random_input(Index qubits, Rng& rng) {
  StateVector psi(qubits);
  std::vector<Real> data(psi.dim());
  rng.fill_uniform(data, -1, 1);
  encode_amplitudes(data, psi);
  return psi;
}

TEST(Executor, RunsEmptyCircuit) {
  Circuit c(2);
  StateVector psi(2);
  run_circuit(c, {}, psi);
  EXPECT_NEAR(psi.probability(0), 1.0, 1e-14);
}

TEST(Executor, RejectsQubitMismatch) {
  Circuit c(3);
  StateVector psi(2);
  EXPECT_THROW(run_circuit(c, {}, psi), std::invalid_argument);
}

TEST(Executor, RejectsShortParamTable) {
  Circuit c(1);
  c.rx(0, c.new_param());
  StateVector psi(1);
  EXPECT_THROW(run_circuit(c, {}, psi), std::invalid_argument);
}

TEST(Executor, InverseUndoesCircuit) {
  Circuit c(3);
  const auto p = c.new_params(6);
  c.u3(0, p);
  c.cx(0, 1);
  c.cu3(1, 2, ParamRef{p.id + 3});
  c.swap(0, 2);
  c.h(1);
  const std::vector<Real> params = {0.3, -0.8, 1.4, 0.9, 0.2, -1.1};

  Rng rng(3);
  StateVector psi = random_input(3, rng);
  const StateVector original = psi;
  run_circuit(c, params, psi);
  const auto ops = c.ops();
  for (std::size_t i = ops.size(); i-- > 0;) apply_op_inverse(ops[i], params, psi);
  EXPECT_NEAR(psi.fidelity(original), 1.0, 1e-12);
}

TEST(AdjointBackward, SingleRYAnalytic) {
  // loss = <Z> = cos(theta): dloss/dtheta = -sin(theta).
  Circuit c(1);
  c.ry(0, c.new_param());
  const Real theta = 0.83;
  const std::vector<Real> params = {theta};

  StateVector psi(1);
  run_circuit(c, params, psi);
  WeightedProbLoss loss{{1.0, -1.0}};  // <Z> as weighted probabilities
  const auto adj = adjoint_backward(c, params, psi, loss.cotangent(psi));
  ASSERT_EQ(adj.param_grads.size(), 1u);
  EXPECT_NEAR(adj.param_grads[0], -std::sin(theta), 1e-10);
}

class AdjointVsFiniteDiff : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdjointVsFiniteDiff, RandomU3CU3Circuit) {
  Rng rng(GetParam());
  const Index qubits = 3 + static_cast<Index>(GetParam() % 2);
  Circuit c(qubits);
  for (int block = 0; block < 3; ++block) {
    for (Index q = 0; q < qubits; ++q) c.u3(q, c.new_params(3));
    for (Index q = 0; q < qubits; ++q)
      c.cu3(q, (q + 1) % qubits, c.new_params(3));
  }
  std::vector<Real> params(c.num_params());
  rng.fill_uniform(params, -1.5, 1.5);

  const StateVector psi_in = random_input(qubits, rng);
  const WeightedProbLoss loss = make_loss(psi_in.dim(), rng);

  StateVector psi = psi_in;
  run_circuit(c, params, psi);
  const auto adj = adjoint_backward(c, params, psi, loss.cotangent(psi));
  const auto fd = finite_diff_grads(c, params, psi_in, loss);

  ASSERT_EQ(adj.param_grads.size(), fd.size());
  for (std::size_t i = 0; i < fd.size(); ++i)
    EXPECT_NEAR(adj.param_grads[i], fd[i], 1e-6) << "param " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdjointVsFiniteDiff,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(AdjointBackward, MixedFixedAndTrainableGates) {
  Rng rng(7);
  Circuit c(3);
  c.h(0);
  c.rx(1, 0.7);  // literal angle: must NOT receive a gradient slot
  c.ry(0, c.new_param());
  c.cx(0, 2);
  c.cry(2, 1, c.new_param());
  c.swap(1, 2);
  c.u3(2, c.new_params(3));
  std::vector<Real> params(c.num_params());
  rng.fill_uniform(params, -1, 1);

  const StateVector psi_in = random_input(3, rng);
  const WeightedProbLoss loss = make_loss(8, rng);

  StateVector psi = psi_in;
  run_circuit(c, params, psi);
  const auto adj = adjoint_backward(c, params, psi, loss.cotangent(psi));
  const auto fd = finite_diff_grads(c, params, psi_in, loss);
  for (std::size_t i = 0; i < fd.size(); ++i)
    EXPECT_NEAR(adj.param_grads[i], fd[i], 1e-6);
}

TEST(AdjointBackward, AgreesWithParameterShift) {
  // Parameter shift is exact for RX/RY/RZ/CRY generators.
  Rng rng(11);
  Circuit c(2);
  c.ry(0, c.new_param());
  c.rx(1, c.new_param());
  c.cry(0, 1, c.new_param());
  c.rz(0, c.new_param());
  std::vector<Real> params(c.num_params());
  rng.fill_uniform(params, -2, 2);

  const StateVector psi_in = random_input(2, rng);
  const WeightedProbLoss loss = make_loss(4, rng);

  StateVector psi = psi_in;
  run_circuit(c, params, psi);
  const auto adj = adjoint_backward(c, params, psi, loss.cotangent(psi));
  const auto ps = parameter_shift_gradient(
      c, params, psi_in, [&](const StateVector& s) { return loss(s); });
  for (std::size_t i = 0; i < ps.size(); ++i)
    EXPECT_NEAR(adj.param_grads[i], ps[i], 1e-9);
}

TEST(AdjointBackward, InputCotangentChainsThroughPriorLayer) {
  // Split a circuit in two; the input cotangent of the back half must act
  // as the output cotangent of the front half.
  Rng rng(13);
  Circuit front(2), back(2);
  front.ry(0, front.new_param());
  front.cx(0, 1);
  back.ry(1, back.new_param());
  back.cu3(1, 0, back.new_params(3));
  std::vector<Real> pf(front.num_params()), pb(back.num_params());
  rng.fill_uniform(pf, -1, 1);
  rng.fill_uniform(pb, -1, 1);

  const StateVector psi0 = random_input(2, rng);
  StateVector mid = psi0;
  run_circuit(front, pf, mid);
  StateVector out = mid;
  run_circuit(back, pb, out);

  const WeightedProbLoss loss = make_loss(4, rng);
  const auto adj_back = adjoint_backward(back, pb, out, loss.cotangent(out));
  const auto adj_front =
      adjoint_backward(front, pf, mid, adj_back.input_cotangent);

  // Compare front grads to finite differences through the FULL pipeline.
  const Real eps = 1e-6;
  for (std::size_t i = 0; i < pf.size(); ++i) {
    auto probe = [&](Real delta) {
      std::vector<Real> p = pf;
      p[i] += delta;
      StateVector s = psi0;
      run_circuit(front, p, s);
      run_circuit(back, pb, s);
      return loss(s);
    };
    const Real fd = (probe(eps) - probe(-eps)) / (2 * eps);
    EXPECT_NEAR(adj_front.param_grads[i], fd, 1e-6);
  }
}

}  // namespace
}  // namespace qugeo::qsim
