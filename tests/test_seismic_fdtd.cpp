// FDTD solver physics: CFL bounds, kinematics (first-arrival travel time),
// absorbing boundaries, reciprocity, stencil-order consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/cpu_features.h"
#include "seismic/fdtd.h"
#include "seismic/fdtd_simd.h"

namespace qugeo::seismic {
namespace {

FdtdConfig stable_config(const VelocityModel& m, std::size_t nt, int order = 4) {
  FdtdConfig cfg;
  cfg.space_order = order;
  cfg.dt = 0.8 * max_stable_dt(m, order);
  cfg.nt = nt;
  return cfg;
}

/// First sample index where |trace| exceeds `frac` of its maximum.
std::size_t first_arrival(const ShotGather& g, std::size_t rec, Real frac = 0.2) {
  Real peak = 0;
  for (std::size_t t = 0; t < g.nt(); ++t)
    peak = std::max(peak, std::abs(g.at(t, rec)));
  for (std::size_t t = 0; t < g.nt(); ++t)
    if (std::abs(g.at(t, rec)) > frac * peak) return t;
  return g.nt();
}

TEST(Fdtd, MaxStableDtOrdering) {
  const VelocityModel m(Grid2D{32, 32, 10, 10}, 3000.0);
  // Higher-order stencils have tighter stability bounds.
  EXPECT_GT(max_stable_dt(m, 2), max_stable_dt(m, 4));
  EXPECT_GT(max_stable_dt(m, 4), max_stable_dt(m, 8));
}

TEST(Fdtd, RejectsUnstableDt) {
  const VelocityModel m(Grid2D{16, 16, 10, 10}, 3000.0);
  FdtdConfig cfg;
  cfg.dt = 2 * max_stable_dt(m, cfg.space_order);
  cfg.nt = 10;
  const RickerWavelet w(15.0);
  const ReceiverLine rec = make_receiver_line(16, 4);
  EXPECT_THROW((void)simulate_shot(m, {0, 8}, w, rec, cfg), std::invalid_argument);
}

TEST(Fdtd, RejectsBadStencilOrder) {
  const VelocityModel m(Grid2D{8, 8, 10, 10}, 2000.0);
  EXPECT_THROW((void)max_stable_dt(m, 6), std::invalid_argument);
}

TEST(Fdtd, RejectsSourceOutsideGrid) {
  const VelocityModel m(Grid2D{8, 8, 10, 10}, 2000.0);
  const FdtdConfig cfg = stable_config(m, 5);
  const RickerWavelet w(15.0);
  const ReceiverLine rec = make_receiver_line(8, 2);
  EXPECT_THROW((void)simulate_shot(m, {9, 0}, w, rec, cfg), std::invalid_argument);
}

TEST(Fdtd, WaveArrivesAtPhysicalTime) {
  // Homogeneous 2 km/s medium; source and receiver 300 m apart on the
  // surface -> direct arrival near t = d/c = 0.15 s (wavelet delay added).
  const Real c = 2000.0;
  const VelocityModel m(Grid2D{60, 60, 10, 10}, c);
  FdtdConfig cfg = stable_config(m, 400);
  const RickerWavelet w(15.0);
  ReceiverLine rec;
  rec.iz = 0;
  rec.ix = {40};  // 300 m from the source at ix=10
  const ShotGather g = simulate_shot(m, {0, 10}, w, rec, cfg);

  const Real t_arr = static_cast<Real>(first_arrival(g, 0)) * cfg.dt;
  const Real t_expected = 300.0 / c + w.delay();
  EXPECT_NEAR(t_arr, t_expected, 0.05);
}

TEST(Fdtd, FasterMediumArrivesEarlier) {
  const VelocityModel slow(Grid2D{50, 50, 10, 10}, 1600.0);
  const VelocityModel fast(Grid2D{50, 50, 10, 10}, 4000.0);
  const RickerWavelet w(15.0);
  ReceiverLine rec;
  rec.iz = 0;
  rec.ix = {40};
  // One shared clock, set by the tighter (fast-medium) stability bound.
  FdtdConfig cfg_fast = stable_config(fast, 900);
  FdtdConfig cfg_slow = cfg_fast;
  const ShotGather gs = simulate_shot(slow, {0, 5}, w, rec, cfg_slow);
  const ShotGather gf = simulate_shot(fast, {0, 5}, w, rec, cfg_fast);
  EXPECT_LT(first_arrival(gf, 0), first_arrival(gs, 0));
}

TEST(Fdtd, SpongeAbsorbsBoundaryEnergy) {
  // After the wave leaves a small domain, residual energy with the Cerjan
  // sponge must be a small fraction of the in-flight energy, and orders of
  // magnitude below a run with reflecting (no-sponge) boundaries.
  const VelocityModel m(Grid2D{40, 40, 10, 10}, 3000.0);
  const RickerWavelet w(15.0);
  auto energy = [](const std::vector<Real>& f) {
    Real e = 0;
    for (Real v : f) e += v * v;
    return e;
  };

  FdtdConfig absorbing = stable_config(m, 1200);
  absorbing.sponge_width = 20;
  const auto fa = simulate_wavefield(m, {20, 20}, w, absorbing, {150, 1199});
  ASSERT_EQ(fa.size(), 2u);
  EXPECT_LT(energy(fa[1]), 2e-2 * energy(fa[0]));

  FdtdConfig reflecting = absorbing;
  reflecting.sponge_width = 0;
  const auto fr = simulate_wavefield(m, {20, 20}, w, reflecting, {1199});
  ASSERT_EQ(fr.size(), 1u);
  EXPECT_LT(energy(fa[1]), 1e-2 * energy(fr[0]));
}

TEST(Fdtd, FreeSurfaceKeepsTopRowZero) {
  const VelocityModel m(Grid2D{30, 30, 10, 10}, 2500.0);
  FdtdConfig cfg = stable_config(m, 150);
  cfg.free_surface_top = true;
  const RickerWavelet w(15.0);
  const auto frames = simulate_wavefield(m, {15, 15}, w, cfg, {140});
  ASSERT_EQ(frames.size(), 1u);
  for (std::size_t ix = 0; ix < 30; ++ix)
    EXPECT_NEAR(frames[0][ix], 0.0, 1e-20);
}

TEST(Fdtd, ReciprocityOfSourceAndReceiver) {
  // Swapping source and receiver locations in a constant-density acoustic
  // medium yields (numerically) the same trace.
  Rng rng(77);
  FlatVelConfig vcfg;
  vcfg.nz = 40;
  vcfg.nx = 40;
  const VelocityModel m = generate_flatvel(vcfg, rng);
  FdtdConfig cfg = stable_config(m, 300);
  const RickerWavelet w(12.0);

  ReceiverLine rec_b;
  rec_b.iz = 0;
  rec_b.ix = {30};
  const ShotGather ab = simulate_shot(m, {0, 8}, w, rec_b, cfg);
  ReceiverLine rec_a;
  rec_a.iz = 0;
  rec_a.ix = {8};
  const ShotGather ba = simulate_shot(m, {0, 30}, w, rec_a, cfg);

  Real peak = 0;
  for (std::size_t t = 0; t < ab.nt(); ++t)
    peak = std::max(peak, std::abs(ab.at(t, 0)));
  for (std::size_t t = 0; t < ab.nt(); ++t)
    EXPECT_NEAR(ab.at(t, 0), ba.at(t, 0), 0.05 * peak);
}

TEST(Fdtd, HigherOrderAgreesWithSecondOrder) {
  // On a smooth problem the 2nd- and 8th-order solutions should agree to a
  // few percent at moderate resolution.
  const VelocityModel m(Grid2D{50, 50, 10, 10}, 2000.0);
  const RickerWavelet w(10.0);
  ReceiverLine rec;
  rec.iz = 0;
  rec.ix = {35};
  FdtdConfig cfg2 = stable_config(m, 600, 2);
  FdtdConfig cfg8 = stable_config(m, 600, 8);
  cfg8.dt = cfg2.dt = 0.8 * max_stable_dt(m, 8);
  const ShotGather g2 = simulate_shot(m, {0, 15}, w, rec, cfg2);
  const ShotGather g8 = simulate_shot(m, {0, 15}, w, rec, cfg8);

  Real peak = 0, err = 0;
  for (std::size_t t = 0; t < g2.nt(); ++t) {
    peak = std::max(peak, std::abs(g8.at(t, 0)));
    err = std::max(err, std::abs(g2.at(t, 0) - g8.at(t, 0)));
  }
  EXPECT_LT(err, 0.15 * peak);
}

TEST(Fdtd, FdtdRowAvx2MatchesScalarRow) {
  // The AVX2 row kernel against the scalar sweep's exact formula, for every
  // supported halo, on an interior width that exercises the vector tail.
  if (!simd::cpu_supports_avx2())
    GTEST_SKIP() << "AVX2+FMA not supported on this CPU";
  Rng rng(91);
  const Real inv_dz2 = 1.0 / (10.0 * 10.0);
  const Real inv_dx2 = 1.0 / (12.0 * 12.0);
  const Real dt2 = 1e-3 * 1e-3;
  for (std::size_t halo : {1u, 2u, 4u}) {
    const std::size_t nx = 37;
    const std::size_t stride = nx + 2 * halo;
    std::vector<Real> pc((2 * halo + 1) * stride);
    std::vector<Real> pp(nx), pn_avx2(nx), pn_ref(nx), cc(nx);
    std::vector<Real> stc(halo + 1);
    for (Real& v : pc) v = rng.uniform(-1, 1);
    for (Real& v : pp) v = rng.uniform(-1, 1);
    for (Real& v : cc) v = rng.uniform(1e6, 2e7);  // c^2 range
    for (Real& v : stc) v = rng.uniform(-3, 3);
    const Real* pc_row = pc.data() + halo * stride + halo;

    fdtd_row_avx2(halo, stc.data(), pc_row, pp.data(), pn_avx2.data(),
                  cc.data(), nx, stride, inv_dz2, inv_dx2, dt2);

    for (std::size_t ix = 0; ix < nx; ++ix) {
      const Real* p = pc_row + ix;
      Real lap = stc[0] * p[0] * (inv_dz2 + inv_dx2);
      for (std::size_t k = 1; k <= halo; ++k) {
        const auto kk = static_cast<std::ptrdiff_t>(k);
        const auto ks = static_cast<std::ptrdiff_t>(k * stride);
        lap += stc[k] *
               ((p[kk] + p[-kk]) * inv_dx2 + (p[ks] + p[-ks]) * inv_dz2);
      }
      pn_ref[ix] = 2 * p[0] - pp[ix] + cc[ix] * dt2 * lap;
    }

    for (std::size_t ix = 0; ix < nx; ++ix) {
      const Real scale = std::max(std::abs(pn_ref[ix]), Real(1));
      EXPECT_NEAR(pn_avx2[ix], pn_ref[ix], 1e-12 * scale)
          << "halo " << halo << " cell " << ix;
    }
  }
}

TEST(Fdtd, SimdScalarAndAvx2ShotsAgree) {
  // End-to-end: the same shot simulated under forced scalar and forced AVX2
  // dispatch produces (numerically) the same gather at every order.
  if (!simd::cpu_supports_avx2())
    GTEST_SKIP() << "AVX2+FMA not supported on this CPU";
  const VelocityModel m(Grid2D{40, 40, 10, 10}, 2500.0);
  const RickerWavelet w(15.0);
  const ReceiverLine rec = make_receiver_line(40, 8);
  for (int order : {2, 4, 8}) {
    const FdtdConfig cfg = stable_config(m, 200, order);
    ShotGather gs = [&] {
      const simd::ScopedSimdMode scoped(simd::SimdMode::kScalar);
      return simulate_shot(m, {0, 20}, w, rec, cfg);
    }();
    ShotGather ga = [&] {
      const simd::ScopedSimdMode scoped(simd::SimdMode::kAvx2);
      return simulate_shot(m, {0, 20}, w, rec, cfg);
    }();
    Real peak = 0;
    for (std::size_t t = 0; t < gs.nt(); ++t)
      for (std::size_t r = 0; r < gs.nrec(); ++r)
        peak = std::max(peak, std::abs(gs.at(t, r)));
    for (std::size_t t = 0; t < gs.nt(); ++t)
      for (std::size_t r = 0; r < gs.nrec(); ++r)
        EXPECT_NEAR(ga.at(t, r), gs.at(t, r), 1e-9 * peak)
            << "order " << order << " t " << t << " rec " << r;
  }
}

TEST(Fdtd, RecordDecimation) {
  const VelocityModel m(Grid2D{20, 20, 10, 10}, 2000.0);
  FdtdConfig cfg = stable_config(m, 100);
  cfg.record_every = 10;
  const RickerWavelet w(15.0);
  const ShotGather g = simulate_shot(m, {0, 10}, w, make_receiver_line(20, 5), cfg);
  EXPECT_EQ(g.nt(), 10u);
  EXPECT_EQ(g.nrec(), 5u);
}

}  // namespace
}  // namespace qugeo::seismic
