// RNG: determinism, distribution sanity, permutation validity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace qugeo {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const Real u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndRange) {
  Rng rng(8);
  Real sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(-2, 4);
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 100000;
  Real sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const Real x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<Real>(hits) / n, 0.3, 0.02);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(13);
  const auto p = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (std::size_t v : p) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng rng(14);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(15);
  Rng child = parent.split();
  Rng parent2(15);
  Rng child2 = parent2.split();
  // Splitting is deterministic...
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
  // ...and the child's stream does not replay the parent's.
  Rng parent3(15);
  Rng child3 = parent3.split();
  bool differ = false;
  for (int i = 0; i < 10; ++i)
    differ |= (parent3.next_u64() != child3.next_u64());
  EXPECT_TRUE(differ);
}

TEST(Rng, FillHelpers) {
  Rng rng(16);
  std::vector<Real> u(100), n(100);
  rng.fill_uniform(u, 2, 3);
  rng.fill_normal(n, 10, 0.1);
  for (Real x : u) {
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
  Real mean = 0;
  for (Real x : n) mean += x;
  EXPECT_NEAR(mean / 100, 10.0, 0.1);
}

}  // namespace
}  // namespace qugeo
