// ShotBackend conformance: convergence of the empirical distribution to
// the wrapped backend's exact probabilities (binomial 4-sigma bound),
// bit-identical sampling for any thread count, exact pass-through at
// shots = 0, readout-error inversion, and factory/env plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "common/parallel.h"
#include "common/rng.h"
#include "qsim/backend.h"
#include "qsim/encoding.h"
#include "qsim/shots.h"

namespace qugeo::qsim {
namespace {

Circuit spread_circuit(Index qubits) {
  // Entangled, non-uniform distribution with mass on every basis state.
  Circuit c(qubits);
  for (Index q = 0; q < qubits; ++q) c.ry(q, 0.4 + 0.3 * static_cast<Real>(q));
  for (Index q = 0; q + 1 < qubits; ++q) c.cx(q, q + 1);
  for (Index q = 0; q < qubits; ++q) c.ry(q, 0.9 - 0.2 * static_cast<Real>(q));
  return c;
}

TEST(ShotBackend, ConvergesToExactProbabilitiesWithin4SigmaBinomial) {
  const Circuit c = spread_circuit(4);
  ExecutionConfig cfg;
  StatevectorBackend sv(cfg);
  sv.run(c, {});
  const auto exact = sv.probabilities();

  const std::size_t shots = 262144;
  cfg.shots = shots;
  cfg.seed = 31337;
  const auto backend = make_backend(cfg, 4);
  backend->run(c, {});
  const auto sampled = backend->probabilities();

  ASSERT_EQ(sampled.size(), exact.size());
  Real total = 0;
  for (std::size_t k = 0; k < exact.size(); ++k) {
    // Each bin count is Binomial(shots, p_k); 4 standard deviations plus a
    // hair of slack for p_k itself being a rounded double.
    const Real sigma =
        std::sqrt(exact[k] * (1 - exact[k]) / static_cast<Real>(shots));
    EXPECT_NEAR(sampled[k], exact[k], 4 * sigma + 1e-9) << "basis state " << k;
    total += sampled[k];
  }
  EXPECT_NEAR(total, 1.0, 1e-12);  // empirical distribution normalizes
}

TEST(ShotBackend, BitIdenticalAcrossThreadCounts) {
  const Circuit c = spread_circuit(3);
  ExecutionConfig cfg;
  cfg.shots = 5000;
  cfg.seed = 99;
  cfg.noise.readout_error = 0.05;  // exercise the per-shot flip draws too

  set_num_threads(1);
  const auto b1 = make_backend(cfg, 3);
  b1->run(c, {});
  const auto p1 = b1->probabilities();
  set_num_threads(4);
  const auto b4 = make_backend(cfg, 3);
  b4->run(c, {});
  const auto p4 = b4->probabilities();
  set_num_threads(0);

  ASSERT_EQ(p1.size(), p4.size());
  for (std::size_t k = 0; k < p1.size(); ++k) EXPECT_EQ(p1[k], p4[k]);
}

TEST(ShotBackend, ZeroShotsIsExactlyTheWrappedBackend) {
  const Circuit c = spread_circuit(3);
  ExecutionConfig cfg;
  StatevectorBackend sv(cfg);
  sv.run(c, {});

  cfg.backend = BackendKind::kShot;  // shots stays 0: exact pass-through
  const auto backend = make_backend(cfg, 3);
  EXPECT_EQ(backend->kind(), BackendKind::kShot);
  backend->run(c, {});

  const auto p_sv = sv.probabilities();
  const auto p_shot = backend->probabilities();
  ASSERT_EQ(p_sv.size(), p_shot.size());
  for (std::size_t k = 0; k < p_sv.size(); ++k) EXPECT_EQ(p_sv[k], p_shot[k]);

  const std::vector<Index> qubits = {0, 1, 2};
  const auto z_sv = sv.expect_z(qubits);
  const auto z_shot = backend->expect_z(qubits);
  for (std::size_t i = 0; i < qubits.size(); ++i) EXPECT_EQ(z_sv[i], z_shot[i]);
}

TEST(ShotBackend, ZeroShotsAppliesReadoutErrorExactly) {
  // With no shot budget the wrapper still owns the readout error and must
  // realize it exactly (the confusion matrix / infinite-shot limit), not
  // silently drop it: <Z> contracts by exactly (1 - 2e).
  const Circuit c = spread_circuit(3);
  ExecutionConfig cfg;
  StatevectorBackend sv(cfg);
  sv.run(c, {});
  const std::vector<Index> qubits = {0, 1, 2};
  const auto z_exact = sv.expect_z(qubits);

  const Real e = 0.07;
  cfg.backend = BackendKind::kShot;  // shots stays 0
  cfg.noise.readout_error = e;
  const auto backend = make_backend(cfg, 3);
  backend->run(c, {});
  const auto z = backend->expect_z(qubits);
  for (std::size_t i = 0; i < qubits.size(); ++i)
    EXPECT_NEAR(z[i], (1 - 2 * e) * z_exact[i], 1e-12) << "qubit " << i;
  Real total = 0;
  for (const Real p : backend->probabilities()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ShotBackend, SampledEstimatesAreDeterministicForAFixedSeed) {
  const Circuit c = spread_circuit(3);
  ExecutionConfig cfg;
  cfg.shots = 2048;
  cfg.seed = 7;
  const auto a = make_backend(cfg, 3);
  const auto b = make_backend(cfg, 3);
  a->run(c, {});
  b->run(c, {});
  const auto pa = a->probabilities();
  const auto pb = b->probabilities();
  for (std::size_t k = 0; k < pa.size(); ++k) EXPECT_EQ(pa[k], pb[k]);

  cfg.seed = 8;
  const auto other = make_backend(cfg, 3);
  other->run(c, {});
  const auto po = other->probabilities();
  bool any_diff = false;
  for (std::size_t k = 0; k < pa.size(); ++k) any_diff |= (pa[k] != po[k]);
  EXPECT_TRUE(any_diff);
}

TEST(ShotBackend, ReadoutErrorInversionRoundTrip) {
  // <Z> under a bit-flip readout error e contracts by (1 - 2e); dividing
  // the measured estimate by that factor must recover the noiseless
  // expectation within the (inflated) shot tolerance — the standard
  // readout-mitigation identity the deployment scenario relies on.
  const Circuit c = spread_circuit(3);
  ExecutionConfig cfg;
  StatevectorBackend sv(cfg);
  sv.run(c, {});
  const std::vector<Index> qubits = {0, 1, 2};
  const auto z_exact = sv.expect_z(qubits);

  const Real e = 0.08;
  const std::size_t shots = 200000;
  cfg.shots = shots;
  cfg.seed = 2718;
  cfg.noise.readout_error = e;
  const auto noisy = make_backend(cfg, 3);
  noisy->run(c, {});
  const auto z_meas = noisy->expect_z(qubits);

  const Real tol = 4.0 / ((1 - 2 * e) * std::sqrt(static_cast<Real>(shots)));
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    // Uncorrected estimates must show the contraction...
    EXPECT_NEAR(z_meas[i], (1 - 2 * e) * z_exact[i], (1 - 2 * e) * tol);
    // ...and the inversion must land back on the exact value.
    EXPECT_NEAR(z_meas[i] / (1 - 2 * e), z_exact[i], tol) << "qubit " << i;
  }
}

TEST(ShotBackend, WrapsEveryInnerBackendKind) {
  const Circuit c = spread_circuit(3);
  ExecutionConfig exact_cfg;
  exact_cfg.backend = BackendKind::kDensityMatrix;
  exact_cfg.noise.gate_error_prob = 0.02;
  DensityMatrixBackend dm(exact_cfg);
  dm.run(c, {});
  const auto p_channel = dm.probabilities();
  StatevectorBackend sv{ExecutionConfig{}};
  sv.run(c, {});
  const auto p_noiseless = sv.probabilities();

  for (const BackendKind kind :
       {BackendKind::kStatevector, BackendKind::kDensityMatrix,
        BackendKind::kTrajectory}) {
    ExecutionConfig cfg = exact_cfg;
    cfg.backend = kind;
    if (kind == BackendKind::kStatevector) cfg.noise.gate_error_prob = 0;
    cfg.trajectories = 2000;
    cfg.shots = 100000;
    cfg.seed = 424242;
    const auto backend = make_backend(cfg, 3);
    ASSERT_EQ(backend->kind(), BackendKind::kShot);
    EXPECT_EQ(static_cast<const ShotBackend&>(*backend).inner().kind(), kind);
    backend->run(c, {});
    const auto p = backend->probabilities();
    // Noisy inners converge to the exact channel, the noiseless
    // statevector inner to the noiseless distribution; both within the
    // combined shot + trajectory tolerance.
    const auto& ref =
        kind == BackendKind::kStatevector ? p_noiseless : p_channel;
    for (std::size_t k = 0; k < p.size(); ++k)
      EXPECT_NEAR(p[k], ref[k], 0.05) << backend_name(kind) << " state " << k;
  }
}

TEST(ShotBackend, PrepareResetsToGroundState) {
  ExecutionConfig cfg;
  cfg.shots = 64;
  cfg.seed = 5;
  const auto backend = make_backend(cfg, 3);
  backend->prepare(3);
  EXPECT_EQ(backend->num_qubits(), 3u);
  const auto probs = backend->probabilities();
  ASSERT_EQ(probs.size(), 8u);
  // Sampling a deterministic distribution is exact for any budget.
  EXPECT_EQ(probs[0], 1.0);
  const std::vector<Index> qubits = {0, 1, 2};
  for (const Real z : backend->expect_z(qubits)) EXPECT_EQ(z, 1.0);
}

TEST(ShotBackend, FactoryWrapsOnPositiveShots) {
  ExecutionConfig cfg;
  cfg.shots = 16;
  EXPECT_EQ(make_backend(cfg, 4)->kind(), BackendKind::kShot);
  cfg.backend = BackendKind::kTrajectory;
  EXPECT_EQ(make_backend(cfg, 4)->kind(), BackendKind::kShot);
  cfg.shots = 0;
  EXPECT_EQ(make_backend(cfg, 4)->kind(), BackendKind::kTrajectory);
  cfg.backend = BackendKind::kShot;  // named request, default inner
  const auto named = make_backend(cfg, 4);
  EXPECT_EQ(named->kind(), BackendKind::kShot);
  EXPECT_EQ(static_cast<const ShotBackend&>(*named).inner().kind(),
            BackendKind::kStatevector);
}

TEST(ShotBackend, RefusesToWrapAnotherShotBackend) {
  ExecutionConfig cfg;
  cfg.shots = 16;
  EXPECT_THROW(
      (void)ShotBackend(cfg, std::make_unique<ShotBackend>(
                                 cfg, std::make_unique<StatevectorBackend>(cfg))),
      std::invalid_argument);
}

TEST(ShotBackend, EnvOverridesAreApplied) {
  ::setenv("QUGEO_SHOTS", "4096", 1);
  ::setenv("QUGEO_READOUT_P", "0.03", 1);
  const ExecutionConfig cfg = apply_env_overrides(ExecutionConfig{});
  ::unsetenv("QUGEO_SHOTS");
  ::unsetenv("QUGEO_READOUT_P");
  EXPECT_EQ(cfg.shots, 4096u);
  EXPECT_NEAR(cfg.noise.readout_error, 0.03, 1e-15);

  ::setenv("QUGEO_SHOTS", "-3", 1);
  EXPECT_THROW((void)apply_env_overrides(ExecutionConfig{}),
               std::invalid_argument);
  ::setenv("QUGEO_SHOTS", "0", 1);  // 0 = exact readout, explicitly allowed
  EXPECT_EQ(apply_env_overrides(ExecutionConfig{}).shots, 0u);
  ::unsetenv("QUGEO_SHOTS");
}

}  // namespace
}  // namespace qugeo::qsim
