// Two-qubit run fusion and the compiled-circuit cache.
//
// Pins: (1) the apply_matrix2q / apply_2q kernels against per-gate
// execution, (2) exhaustive GateKind-pair equivalence of fuse_two_qubit_runs
// on the statevector AND density paths (1e-10, global phase modulo), (3)
// run-boundary semantics (trainable gates, overlapping pairs, trailing 1q
// gates), (4) the noisy-path bypass — backends with gate noise execute the
// ORIGINAL op stream, keeping one noise insertion point per gate — and (5)
// CompiledCircuitCache compile/hit accounting, including cache-hit reuse
// across QuBatch chunks and repeated QuGeoModel::predict calls.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/rng.h"
#include "core/model.h"
#include "qsim/backend.h"
#include "qsim/compile_cache.h"
#include "qsim/density_matrix.h"
#include "qsim/encoding.h"
#include "qsim/executor.h"
#include "qsim/optimizer.h"

namespace qugeo::qsim {
namespace {

StateVector random_state(Index qubits, Rng& rng) {
  StateVector psi(qubits);
  std::vector<Real> data(psi.dim());
  rng.fill_uniform(data, -1, 1);
  encode_amplitudes(data, psi);
  return psi;
}

/// Fused and unfused execution agree up to global phase on a random state.
void expect_equivalent(const Circuit& a, const Circuit& b,
                       std::span<const Real> params, std::uint64_t seed) {
  Rng rng(seed);
  StateVector sa = random_state(a.num_qubits(), rng);
  StateVector sb = sa;
  run_circuit(a, params, sa);
  run_circuit(b, params, sb);
  EXPECT_NEAR(sa.fidelity(sb), 1.0, 1e-10);
}

/// As expect_equivalent, but on the exact mixed-state path.
void expect_density_equivalent(const Circuit& a, const Circuit& b,
                               std::span<const Real> params,
                               std::uint64_t seed) {
  Rng rng(seed);
  const StateVector psi = random_state(a.num_qubits(), rng);
  DensityMatrix ra = DensityMatrix::from_state(psi);
  DensityMatrix rb = DensityMatrix::from_state(psi);
  run_circuit_density(a, params, ra, NoiseModel{});
  run_circuit_density(b, params, rb, NoiseModel{});
  const auto pa = ra.probabilities();
  const auto pb = rb.probabilities();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t k = 0; k < pa.size(); ++k) EXPECT_NEAR(pa[k], pb[k], 1e-10);
}

// ---------------------------------------------------------------- kernels --

TEST(Matrix2QKernel, Cu3RunFactorsIntoControlGatePlusBlockDiagonal) {
  // H(control), RY(target), CU3, CU3 factors as P = D * (C (x) I): one U3
  // from the control factor plus one block-diagonal kFusedCtl2Q, in both
  // operand orders.
  for (const bool flip : {false, true}) {
    Circuit c(3);
    const Index a = flip ? 2 : 0;
    const Index b = flip ? 0 : 2;
    c.h(a);
    c.ry(b, 0.7);
    c.cu3(a, b, 0.3, -1.1, 0.4);
    c.cu3(a, b, -0.9, 0.2, 1.3);
    Fuse2QStats stats;
    const Circuit fused = fuse_two_qubit_runs(c, &stats);
    ASSERT_EQ(fused.num_ops(), 2u);
    EXPECT_EQ(fused.ops()[0].kind, GateKind::kU3);
    EXPECT_EQ(fused.ops()[0].qubits[0], a);
    ASSERT_EQ(fused.ops()[1].kind, GateKind::kFusedCtl2Q);
    EXPECT_EQ(fused.ops()[1].qubits[0], a);  // control operand first
    EXPECT_EQ(stats.fused_runs, 1u);
    EXPECT_EQ(stats.ctl_runs, 1u);
    EXPECT_EQ(stats.absorbed_ops, 4u);
    expect_equivalent(c, fused, {}, flip ? 11 : 10);
    expect_density_equivalent(c, fused, {}, flip ? 13 : 12);
  }
}

TEST(Matrix2QKernel, SwapRunStaysDense) {
  // A SWAP inside the run has no block-diagonal form: the product must be
  // emitted as one dense kFused2Q and still match per-gate execution.
  Circuit c(2);
  c.h(0);
  c.ry(1, 0.7);
  c.cu3(0, 1, 0.3, -1.1, 0.4);
  c.swap(0, 1);
  c.cx(0, 1);
  Fuse2QStats stats;
  const Circuit fused = fuse_two_qubit_runs(c, &stats);
  ASSERT_EQ(fused.num_ops(), 1u);
  EXPECT_EQ(fused.ops()[0].kind, GateKind::kFused2Q);
  EXPECT_EQ(stats.dense_runs, 1u);
  EXPECT_EQ(stats.absorbed_ops, 5u);
  expect_equivalent(c, fused, {}, 14);
  expect_density_equivalent(c, fused, {}, 15);
}

TEST(Matrix2QKernel, DensityPathMatchesStatevectorOnPureStates) {
  Circuit c(3);
  c.h(0);
  c.t(1);
  c.cx(0, 1);
  c.swap(1, 0);
  c.cz(0, 2);
  const Circuit fused = canonicalize_for_backend(c);
  ASSERT_LT(fused.num_ops(), c.num_ops());

  Rng rng(42);
  const StateVector psi0 = random_state(3, rng);
  StateVector sv = psi0;
  run_circuit(fused, {}, sv);
  DensityMatrix rho = DensityMatrix::from_state(psi0);
  run_circuit_density(fused, {}, rho, NoiseModel{});
  const auto pd = rho.probabilities();
  for (Index k = 0; k < sv.dim(); ++k)
    EXPECT_NEAR(pd[k], sv.probability(k), 1e-10);
}

TEST(Matrix2QKernel, AdjointBackwardRewindsFusedBlocks) {
  // Fused blocks of both kinds around one trainable RY: gradients must
  // match the unfused circuit's (fused blocks carry no parameters, only
  // state).
  Circuit c(2);
  const ParamRef p = c.new_param();
  c.h(0);
  c.cx(0, 1);
  c.t(1);
  c.cx(0, 1);   // -> U3(0) + kFusedCtl2Q
  c.ry(0, p);
  c.swap(0, 1);
  c.t(0);
  c.swap(0, 1);  // -> dense kFused2Q
  const Circuit fused = canonicalize_for_backend(c);
  ASSERT_LT(fused.num_ops(), c.num_ops());

  const std::vector<Real> params = {0.6};
  const auto grad_of = [&params](const Circuit& circ) {
    StateVector psi(2);
    run_circuit(circ, params, psi);
    const std::vector<Complex> cot(psi.dim(), Complex{0.25, -0.1});
    const AdjointResult adj = adjoint_backward(circ, params, psi, cot);
    EXPECT_EQ(adj.param_grads.size(), 1u);
    return adj.param_grads[0];
  };
  EXPECT_NEAR(grad_of(fused), grad_of(c), 1e-10);
}

// ------------------------------------------------------------ fusion pass --

/// Append one literal two-qubit gate of the given kind on (a, b).
void push_2q(Circuit& c, GateKind kind, Index a, Index b, Real angle) {
  switch (kind) {
    case GateKind::kCX: c.cx(a, b); break;
    case GateKind::kCZ: c.cz(a, b); break;
    case GateKind::kSWAP: c.swap(a, b); break;
    case GateKind::kCRY: c.cry(a, b, angle); break;
    case GateKind::kCU3: c.cu3(a, b, angle, angle * 0.5, -angle); break;
    default: FAIL() << "not a two-qubit literal kind";
  }
}

TEST(FuseTwoQubitRuns, ExhaustiveGateKindPairEquivalence) {
  // Every ordered pair of literal two-qubit kinds, on aligned and crossed
  // operand orientations, with literal 1q gates interleaved on the pair:
  // fused == unfused on the statevector and the exact density path.
  const GateKind kinds[] = {GateKind::kCX, GateKind::kCZ, GateKind::kSWAP,
                            GateKind::kCRY, GateKind::kCU3};
  std::uint64_t seed = 1000;
  for (const GateKind k1 : kinds) {
    for (const GateKind k2 : kinds) {
      for (const bool crossed : {false, true}) {
        Circuit c(3);
        c.h(0);                                    // absorbed into the run
        push_2q(c, k1, 0, 1, 0.8);
        c.t(1);                                    // interleaved, absorbed
        c.rx(0, -0.4);                             // interleaved, absorbed
        c.ry(2, 0.9);                              // spectator qubit
        push_2q(c, k2, crossed ? 1 : 0, crossed ? 0 : 1, -1.3);
        Fuse2QStats stats;
        const Circuit fused = fuse_two_qubit_runs(c, &stats);
        EXPECT_EQ(stats.fused_runs, 1u);
        EXPECT_EQ(stats.absorbed_ops, 5u);
        // The rx(0) after the first two-qubit gate breaks every
        // block-diagonal factorization, so all pairs emit one dense block
        // (+ the spectator ry).
        EXPECT_EQ(stats.dense_runs, 1u);
        EXPECT_EQ(fused.num_ops(), 2u);
        expect_equivalent(c, fused, {}, seed);
        expect_density_equivalent(c, fused, {}, seed + 1);
        seed += 2;
      }
    }
  }
}

TEST(FuseTwoQubitRuns, TrailingOneQubitGatesAreNotAbsorbed) {
  // 1q gates after the last same-pair gate have no two-qubit successor;
  // they must re-emit verbatim. The CX CX run itself multiplies to the
  // identity and vanishes outright.
  Circuit c(2);
  c.cx(0, 1);
  c.cx(0, 1);
  c.h(0);
  Fuse2QStats stats;
  const Circuit fused = fuse_two_qubit_runs(c, &stats);
  ASSERT_EQ(fused.num_ops(), 1u);
  EXPECT_EQ(fused.ops()[0].kind, GateKind::kH);
  EXPECT_EQ(stats.collapsed_runs, 1u);
  expect_equivalent(c, fused, {}, 30);
}

TEST(FuseTwoQubitRuns, OverlappingPairEndsTheRun) {
  // CX(0,1) CX(1,2) share qubit 1 but are different pairs: no fusion.
  Circuit c(3);
  c.cx(0, 1);
  c.cx(1, 2);
  Fuse2QStats stats;
  const Circuit fused = fuse_two_qubit_runs(c, &stats);
  EXPECT_EQ(stats.fused_runs, 0u);
  EXPECT_EQ(fused.num_ops(), 2u);
  expect_equivalent(c, fused, {}, 31);
}

TEST(FuseTwoQubitRuns, ChainHandsPendingGatesToTheNextPair) {
  // The 1q gate between two overlapping pairs belongs to the second run.
  // Both CX CX products vanish; the buffered H survives as the second
  // run's control factor, so the whole stream reduces to one 1q gate.
  Circuit c(3);
  c.cx(0, 1);
  c.cx(0, 1);
  c.h(1);
  c.cx(1, 2);
  c.cx(1, 2);
  Fuse2QStats stats;
  const Circuit fused = fuse_two_qubit_runs(c, &stats);
  EXPECT_EQ(stats.fused_runs, 2u);
  EXPECT_EQ(stats.collapsed_runs, 2u);
  EXPECT_EQ(stats.absorbed_ops, 5u);
  ASSERT_EQ(fused.num_ops(), 1u);
  EXPECT_EQ(fused.ops()[0].qubits[0], 1u);
  expect_equivalent(c, fused, {}, 32);
  expect_density_equivalent(c, fused, {}, 33);
}

TEST(FuseTwoQubitRuns, TrainableGatesEndRuns) {
  Circuit c(2);
  const ParamRef p = c.new_param();
  c.cx(0, 1);
  c.ry(0, p);  // trainable: splits the two CX into separate runs
  c.cx(0, 1);
  const Circuit fused = fuse_two_qubit_runs(c);
  EXPECT_EQ(fused.num_ops(), 3u);
  EXPECT_EQ(fused.num_params(), 1u);
  const std::vector<Real> params = {0.9};
  expect_equivalent(c, fused, params, 34);
}

TEST(FuseTwoQubitRuns, NoFusableRunsPassesThroughVerbatim) {
  Circuit c(3);
  c.cx(0, 1);
  c.cx(1, 2);
  c.cx(2, 0);
  const Circuit fused = fuse_two_qubit_runs(c);
  ASSERT_EQ(fused.num_ops(), c.num_ops());
  for (std::size_t i = 0; i < c.num_ops(); ++i) {
    EXPECT_EQ(fused.ops()[i].kind, c.ops()[i].kind);
    EXPECT_EQ(fused.ops()[i].qubits, c.ops()[i].qubits);
  }
  EXPECT_FALSE(has_fusable_two_qubit_runs(c));
}

TEST(FuseTwoQubitRuns, CanonicalizeIsIdempotent) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.t(1);
  c.cx(0, 1);
  c.swap(1, 2);
  c.swap(2, 1);
  const Circuit once = canonicalize_for_backend(c);
  const Circuit twice = canonicalize_for_backend(once);
  EXPECT_EQ(twice.num_ops(), once.num_ops());
  expect_equivalent(once, twice, {}, 35);
  expect_equivalent(c, once, {}, 36);
}

TEST(FuseTwoQubitRuns, RandomCircuitsStayEquivalentThroughCanonicalize) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Circuit c(4);
    for (int g = 0; g < 50; ++g) {
      const auto q = static_cast<Index>(rng.uniform_int(0, 3));
      const auto r = static_cast<Index>(rng.uniform_int(0, 3));
      switch (rng.uniform_int(0, 7)) {
        case 0: c.h(q); break;
        case 1: c.rx(q, rng.uniform(-3, 3)); break;
        case 2: c.t(q); break;
        case 3: if (q != r) c.cx(q, r); break;
        case 4: if (q != r) c.cz(q, r); break;
        case 5: if (q != r) c.swap(q, r); break;
        case 6: if (q != r) c.cu3(q, r, rng.uniform(-2, 2), rng.uniform(-2, 2),
                                  rng.uniform(-2, 2)); break;
        default: c.u3(q, rng.uniform(-2, 2), rng.uniform(-2, 2),
                      rng.uniform(-2, 2)); break;
      }
    }
    const Circuit canon = canonicalize_for_backend(c);
    EXPECT_LE(canon.num_ops(), c.num_ops());
    expect_equivalent(c, canon, {}, 300 + static_cast<std::uint64_t>(trial));
  }
}

TEST(BindParameters, FreezesTrainableAnglesIntoLiterals) {
  Circuit c(2);
  const ParamRef p = c.new_params(6);
  c.u3(0, p);
  c.cu3(0, 1, ParamRef{p.id + 3});
  std::vector<Real> params = {0.1, -0.2, 0.3, 0.4, -0.5, 0.6};
  const Circuit frozen = bind_parameters(c, params);
  EXPECT_EQ(frozen.num_params(), 0u);
  EXPECT_EQ(frozen.num_ops(), c.num_ops());
  expect_equivalent(c, frozen, params, 40);
  // Frozen, the U3+CU3 structure fuses (the trainable original cannot).
  EXPECT_FALSE(has_fusable_two_qubit_runs(c));
  EXPECT_TRUE(has_fusable_two_qubit_runs(frozen));
  expect_equivalent(c, canonicalize_for_backend(frozen), params, 41);
}

// ------------------------------------------------------- noisy-path bypass --

TEST(NoisyPathBypass, DensityBackendWithGateNoiseRunsOriginalStream) {
  // A fusable circuit under a depolarizing channel: the backend must keep
  // k per-gate noise insertion points, i.e. match the ORIGINAL op stream
  // executed noisily — and differ from noisy execution of the fused form.
  Circuit c(2);
  c.rx(0, 0.7);
  c.cx(0, 1);
  c.ry(1, 0.4);
  c.cry(0, 1, 0.6);
  c.rx(0, -1.1);
  c.cu3(0, 1, 0.5, 0.2, -0.3);
  ASSERT_TRUE(has_fusable_two_qubit_runs(c));

  NoiseModel noise;
  noise.gate_error_prob = 0.05;

  ExecutionConfig cfg;
  cfg.backend = BackendKind::kDensityMatrix;
  cfg.noise = noise;
  const auto backend = make_backend(cfg, 2);
  backend->run(c, {});
  const auto via_backend = backend->probabilities();

  DensityMatrix original(2);
  run_circuit_density(c, {}, original, noise);
  const auto expected = original.probabilities();

  DensityMatrix fused_rho(2);
  run_circuit_density(canonicalize_for_backend(c), {}, fused_rho, noise);
  const auto fused_noisy = fused_rho.probabilities();

  Real diff_fused = 0;
  for (Index k = 0; k < 4; ++k) {
    EXPECT_NEAR(via_backend[k], expected[k], 1e-12);
    diff_fused += std::abs(fused_noisy[k] - expected[k]);
  }
  // Fewer insertion points => measurably less decoherence; the bypass is
  // load-bearing, not cosmetic.
  EXPECT_GT(diff_fused, 1e-4);
}

TEST(NoisyPathBypass, ReadoutOnlyNoiseMayStillFuse) {
  // The readout channel's single insertion point (end of circuit) survives
  // fusion: fused-with-readout must equal original-with-readout exactly.
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.cx(0, 1);

  NoiseModel noise;
  noise.readout_error = 0.03;

  ExecutionConfig cfg;
  cfg.backend = BackendKind::kDensityMatrix;
  cfg.noise = noise;
  const auto fused_backend = make_backend(cfg, 2);
  fused_backend->run(c, {});

  cfg.fusion = false;
  const auto verbatim_backend = make_backend(cfg, 2);
  verbatim_backend->run(c, {});

  const auto pf = fused_backend->probabilities();
  const auto pv = verbatim_backend->probabilities();
  for (Index k = 0; k < 4; ++k) EXPECT_NEAR(pf[k], pv[k], 1e-12);
}

// --------------------------------------------------- compiled-circuit cache --

TEST(CompiledCircuitCache, CompilesOncePerStructureAndBackendKind) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.cx(0, 1);

  auto cache = std::make_shared<CompiledCircuitCache>();
  ExecutionConfig cfg;
  cfg.compile_cache = cache;

  // Eight "chunks": fresh backend per chunk, one compile, seven hits.
  std::vector<Real> first;
  for (int chunk = 0; chunk < 8; ++chunk) {
    const auto backend = make_backend(cfg, 2);
    backend->run(c, {});
    if (chunk == 0)
      first = backend->probabilities();
    else
      EXPECT_EQ(backend->probabilities(), first);
  }
  EXPECT_EQ(cache->compile_count(), 1u);
  EXPECT_EQ(cache->hit_count(), 7u);

  // A different backend kind is a different key (per the cache contract).
  cfg.backend = BackendKind::kDensityMatrix;
  const auto density = make_backend(cfg, 2);
  density->run(c, {});
  EXPECT_EQ(cache->compile_count(), 2u);

  // A structurally identical but distinct Circuit object hits.
  Circuit c2(2);
  c2.h(0);
  c2.cx(0, 1);
  c2.cx(0, 1);
  cfg.backend = BackendKind::kStatevector;
  const auto backend = make_backend(cfg, 2);
  backend->run(c2, {});
  EXPECT_EQ(cache->compile_count(), 2u);
}

TEST(CompiledCircuitCache, IdentityCircuitsAreMemoizedAsNull) {
  // An unfusable circuit gets a (null) entry: later runs skip the probes
  // and execute the original by reference.
  Circuit c(2);
  const ParamRef p = c.new_param();
  c.ry(0, p);
  c.cx(0, 1);

  auto cache = std::make_shared<CompiledCircuitCache>();
  EXPECT_EQ(cache->canonical(c, BackendKind::kStatevector), nullptr);
  EXPECT_EQ(cache->canonical(c, BackendKind::kStatevector), nullptr);
  EXPECT_EQ(cache->compile_count(), 1u);
  EXPECT_EQ(cache->hit_count(), 1u);
}

TEST(CompiledCircuitCache, FusionOffBypassesTheCache) {
  Circuit c(2);
  c.h(0);
  c.h(0);

  auto cache = std::make_shared<CompiledCircuitCache>();
  ExecutionConfig cfg;
  cfg.fusion = false;
  cfg.compile_cache = cache;
  const auto backend = make_backend(cfg, 2);
  backend->run(c, {});
  EXPECT_EQ(cache->compile_count(), 0u);
  EXPECT_EQ(cache->hit_count(), 0u);
}

TEST(ExecutionConfigEnv, QugeoFusionOverride) {
  const char* prev = std::getenv("QUGEO_FUSION");
  const std::string saved = prev ? prev : "";
  ASSERT_EQ(setenv("QUGEO_FUSION", "off", 1), 0);
  EXPECT_FALSE(apply_env_overrides(ExecutionConfig{}).fusion);
  ASSERT_EQ(setenv("QUGEO_FUSION", "on", 1), 0);
  EXPECT_TRUE(apply_env_overrides(ExecutionConfig{}).fusion);
  ASSERT_EQ(setenv("QUGEO_FUSION", "sideways", 1), 0);
  EXPECT_THROW((void)apply_env_overrides(ExecutionConfig{}),
               std::invalid_argument);
  if (prev)
    ASSERT_EQ(setenv("QUGEO_FUSION", saved.c_str(), 1), 0);
  else
    ASSERT_EQ(unsetenv("QUGEO_FUSION"), 0);
}

}  // namespace
}  // namespace qugeo::qsim

// --------------------------------------------- model-level cache-hit probe --

namespace qugeo::core {
namespace {

data::ScaledSample random_sample(std::size_t wave_size, std::size_t vel_size,
                                 Rng& rng) {
  data::ScaledSample s;
  s.waveform.resize(wave_size);
  s.velocity.resize(vel_size);
  rng.fill_uniform(s.waveform, -1, 1);
  rng.fill_uniform(s.velocity, 0, 1);
  return s;
}

/// Clears the QUGEO_* execution overrides for the test's lifetime (this
/// probe pins exact compile/hit counts, which the CI env-smoke legs —
/// QUGEO_BACKEND=density, QUGEO_SHOTS=4096, QUGEO_FUSION=off,
/// QUGEO_BATCH=8 (fewer, wider chunks) — would legitimately change) and
/// restores them on destruction.
class ExecEnvGuard {
 public:
  ExecEnvGuard() {
    for (const char* name : kVars) {
      const char* v = std::getenv(name);
      saved_.emplace_back(v ? std::optional<std::string>(v) : std::nullopt);
      unsetenv(name);
    }
  }
  ~ExecEnvGuard() {
    for (std::size_t i = 0; i < kVars.size(); ++i) {
      if (saved_[i])
        setenv(kVars[i], saved_[i]->c_str(), 1);
      else
        unsetenv(kVars[i]);
    }
  }

 private:
  static constexpr std::array<const char*, 9> kVars = {
      "QUGEO_BACKEND",      "QUGEO_NOISE_P", "QUGEO_NOISE_CHANNEL",
      "QUGEO_READOUT_P",    "QUGEO_SHOTS",   "QUGEO_TRAJECTORIES",
      "QUGEO_FUSION",       "QUGEO_SIMD",    "QUGEO_BATCH"};
  std::vector<std::optional<std::string>> saved_;
};

TEST(ModelCompileCache, RepeatedPredictCallsCanonicalizeExactlyOnce) {
  const ExecEnvGuard env_guard;
  ModelConfig mc;
  mc.group_data_qubits = {3};
  mc.ansatz.blocks = 2;
  mc.decoder = DecoderKind::kLayer;
  mc.vel_rows = 3;
  mc.vel_cols = 2;
  Rng rng(7);
  QuGeoModel model(mc, rng);

  std::vector<data::ScaledSample> samples;
  for (int i = 0; i < 6; ++i) samples.push_back(random_sample(8, 6, rng));
  std::vector<const data::ScaledSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);

  // 6 samples at batch size 1 = 6 QuBatch chunks per call; two predict
  // calls = 12 executions. The structure is canonicalized exactly once —
  // every later chunk is a cache hit, whether or not fusion changes the
  // (all-trainable, hence identity) ansatz.
  const auto first = model.predict(ptrs);
  const auto second = model.predict(ptrs);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], second[i]);
  EXPECT_EQ(model.compile_cache()->compile_count(), 1u);
  EXPECT_EQ(model.compile_cache()->hit_count(), 11u);

  // predict_with through a different backend kind compiles one more entry,
  // then hits for its remaining chunks.
  qsim::ExecutionConfig exec = model.execution_config();
  exec.backend = qsim::BackendKind::kDensityMatrix;
  (void)model.predict_with(ptrs, exec);
  EXPECT_EQ(model.compile_cache()->compile_count(), 2u);
  EXPECT_EQ(model.compile_cache()->hit_count(), 16u);
}

}  // namespace
}  // namespace qugeo::core
