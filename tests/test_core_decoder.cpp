// Decoders: readout semantics and gradient correctness (finite differences
// through the full probability pathway).
#include <gtest/gtest.h>

#include <cmath>

#include "core/decoder.h"
#include "core/encoder.h"
#include "qsim/executor.h"

namespace qugeo::core {
namespace {

qsim::StateVector state_from(const QubitLayout& lay, std::vector<Real> amps) {
  qsim::StateVector psi(lay.total_qubits());
  Real n = 0;
  for (Real a : amps) n += a * a;
  for (Real& a : amps) a /= std::sqrt(n);
  psi.set_amplitudes_real(amps);
  return psi;
}

TEST(LayerDecoder, ReadsZPerRow) {
  // 2-qubit layout, 2x2 map: rows read qubits 0 and 1.
  const QubitLayout lay({2}, 0);
  const LayerDecoder dec(lay, {0, 1}, 2, 2);
  // |00> : both Z = +1 -> v = 1.
  qsim::StateVector psi(2);
  const DecodeResult r = dec.decode(psi);
  ASSERT_EQ(r.predictions.size(), 1u);
  for (Real v : r.predictions[0]) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(LayerDecoder, BroadcastsRowValue) {
  const QubitLayout lay({2}, 0);
  const LayerDecoder dec(lay, {0, 1}, 2, 2);
  // qubit0 = |1>, qubit1 = |0> -> row0 v=0, row1 v=1.
  qsim::StateVector psi = state_from(lay, {0, 1, 0, 0});
  const DecodeResult r = dec.decode(psi);
  EXPECT_NEAR(r.predictions[0][0], 0.0, 1e-12);
  EXPECT_NEAR(r.predictions[0][1], 0.0, 1e-12);
  EXPECT_NEAR(r.predictions[0][2], 1.0, 1e-12);
  EXPECT_NEAR(r.predictions[0][3], 1.0, 1e-12);
}

TEST(PixelDecoder, ReadsScaledSqrtProbabilities) {
  const QubitLayout lay({2}, 0);
  const PixelDecoder dec(lay, {0, 1}, 2, 2, /*initial_scale=*/2.0);
  qsim::StateVector psi = state_from(lay, {1, 1, 1, 1});
  const DecodeResult r = dec.decode(psi);
  for (Real v : r.predictions[0]) EXPECT_NEAR(v, 2.0 * 0.5, 1e-12);
}

TEST(PixelDecoder, ScaleParamIsTrainable) {
  const QubitLayout lay({2}, 0);
  PixelDecoder dec(lay, {0, 1}, 2, 2);
  EXPECT_EQ(dec.num_classical_params(), 1u);
  dec.set_classical_param(0, 3.5);
  EXPECT_EQ(dec.classical_param(0), 3.5);
}

TEST(Decoders, QubitCountValidation) {
  const QubitLayout lay({3}, 0);
  EXPECT_THROW(PixelDecoder(lay, {0, 1}, 4, 4), std::invalid_argument);
  EXPECT_THROW(LayerDecoder(lay, {0, 1}, 3, 2), std::invalid_argument);
}

TEST(Factory, BuildsBothKinds) {
  const QubitLayout lay({8}, 0);
  EXPECT_EQ(make_decoder(DecoderKind::kPixel, lay, 8, 8)->kind(),
            DecoderKind::kPixel);
  EXPECT_EQ(make_decoder(DecoderKind::kLayer, lay, 8, 8)->kind(),
            DecoderKind::kLayer);
}

TEST(QuBatch, BlocksDecodeIndependently) {
  // Batch of 2 with distinct per-block data: each block's prediction must
  // match the unbatched decode of that sample alone.
  const QubitLayout batched({2}, 1);
  const QubitLayout plain({2}, 0);
  const LayerDecoder dec_b(batched, {0, 1}, 2, 2);
  const LayerDecoder dec_p(plain, {0, 1}, 2, 2);

  const std::vector<Real> s0 = {0.9, 0.1, 0.3, 0.2};
  const std::vector<Real> s1 = {0.2, 0.7, 0.1, 0.6};
  std::vector<Real> joint;
  joint.insert(joint.end(), s0.begin(), s0.end());
  joint.insert(joint.end(), s1.begin(), s1.end());
  const qsim::StateVector psi_joint = state_from(batched, joint);
  const DecodeResult rb = dec_b.decode(psi_joint);

  for (int b = 0; b < 2; ++b) {
    const qsim::StateVector psi_one = state_from(plain, b == 0 ? s0 : s1);
    const DecodeResult rp = dec_p.decode(psi_one);
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_NEAR(rb.predictions[static_cast<std::size_t>(b)][k],
                  rp.predictions[0][k], 1e-10)
          << "block " << b << " pixel " << k;
  }
}

/// Finite-difference check of probability_grads: perturb raw amplitudes,
/// renormalize... instead we perturb the probability vector directly by
/// checking d(prediction)/dp against the returned adjoint map applied to a
/// random upstream gradient (vector-Jacobian product check).
template <typename DecT>
void vjp_check(const QubitLayout& lay, const DecT& dec,
               const qsim::StateVector& psi) {
  Rng rng(55);
  const DecodeResult fwd = dec.decode(psi);

  std::vector<std::vector<Real>> pred_grads(fwd.predictions.size());
  for (std::size_t b = 0; b < pred_grads.size(); ++b) {
    pred_grads[b].resize(fwd.predictions[b].size());
    rng.fill_uniform(pred_grads[b], -1, 1);
  }
  const std::vector<Real> dp = dec.probability_grads(fwd, pred_grads);

  // Loss(p) = sum_b g_b . pred_b(p). Perturb probabilities along random
  // directions that keep sum p = const within blocks irrelevant (the
  // conditional readout renormalizes, so arbitrary directions are fine).
  auto loss_of_probs = [&](const std::vector<Real>& probs) {
    qsim::StateVector tmp(lay.total_qubits());
    std::vector<Real> amps(probs.size());
    for (std::size_t k = 0; k < probs.size(); ++k)
      amps[k] = std::sqrt(std::max(probs[k], Real(0)));
    tmp.set_amplitudes_real(amps);
    const DecodeResult r = dec.decode(tmp);
    Real loss = 0;
    for (std::size_t b = 0; b < pred_grads.size(); ++b)
      for (std::size_t k = 0; k < pred_grads[b].size(); ++k)
        loss += pred_grads[b][k] * r.predictions[b][k];
    return loss;
  };

  const std::vector<Real> p0 = psi.probabilities();
  const Real eps = 1e-7;
  for (std::size_t k = 0; k < p0.size(); ++k) {
    if (p0[k] < 1e-4) continue;  // avoid the sqrt kink at p = 0
    std::vector<Real> plus = p0, minus = p0;
    plus[k] += eps;
    minus[k] -= eps;
    const Real fd = (loss_of_probs(plus) - loss_of_probs(minus)) / (2 * eps);
    EXPECT_NEAR(dp[k], fd, 2e-4) << "probability index " << k;
  }
}

TEST(LayerDecoder, GradientVjpMatchesFiniteDifference) {
  const QubitLayout lay({3}, 0);
  const LayerDecoder dec(lay, {0, 1, 2}, 3, 2);
  Rng rng(9);
  std::vector<Real> amps(8);
  rng.fill_uniform(amps, 0.2, 1.0);
  vjp_check(lay, dec, state_from(lay, amps));
}

TEST(LayerDecoder, GradientVjpBatched) {
  const QubitLayout lay({2}, 1);
  const LayerDecoder dec(lay, {0, 1}, 2, 2);
  Rng rng(10);
  std::vector<Real> amps(8);
  rng.fill_uniform(amps, 0.2, 1.0);
  vjp_check(lay, dec, state_from(lay, amps));
}

TEST(PixelDecoder, GradientVjpMatchesFiniteDifference) {
  const QubitLayout lay({3}, 0);
  const PixelDecoder dec(lay, {0, 1}, 2, 2, 1.7);
  Rng rng(11);
  std::vector<Real> amps(8);
  rng.fill_uniform(amps, 0.2, 1.0);
  vjp_check(lay, dec, state_from(lay, amps));
}

TEST(PixelDecoder, GradientVjpBatched) {
  const QubitLayout lay({2}, 1);
  const PixelDecoder dec(lay, {0, 1}, 2, 2, 0.8);
  Rng rng(12);
  std::vector<Real> amps(8);
  rng.fill_uniform(amps, 0.2, 1.0);
  vjp_check(lay, dec, state_from(lay, amps));
}

TEST(PixelDecoder, ScaleGradient) {
  const QubitLayout lay({2}, 0);
  PixelDecoder dec(lay, {0, 1}, 2, 2, 1.3);
  Rng rng(13);
  std::vector<Real> amps(4);
  rng.fill_uniform(amps, 0.2, 1.0);
  const qsim::StateVector psi = state_from(lay, amps);
  const DecodeResult fwd = dec.decode(psi);

  std::vector<std::vector<Real>> pg(1);
  pg[0].resize(4);
  rng.fill_uniform(pg[0], -1, 1);
  const auto cg = dec.classical_grads(fwd, pg);
  ASSERT_EQ(cg.size(), 1u);

  auto loss_at_scale = [&](Real s) {
    PixelDecoder d2(lay, {0, 1}, 2, 2, s);
    const DecodeResult r = d2.decode(psi);
    Real loss = 0;
    for (std::size_t k = 0; k < 4; ++k) loss += pg[0][k] * r.predictions[0][k];
    return loss;
  };
  const Real eps = 1e-6;
  const Real fd = (loss_at_scale(1.3 + eps) - loss_at_scale(1.3 - eps)) / (2 * eps);
  EXPECT_NEAR(cg[0], fd, 1e-6);
}

}  // namespace
}  // namespace qugeo::core
