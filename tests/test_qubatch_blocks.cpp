// QuBatch block semantics at larger batch sizes and with grouped encoders —
// the structural invariants behind Table 1 and Figure 4(d)/(e).
#include <gtest/gtest.h>

#include "core/ansatz.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "qsim/executor.h"

namespace qugeo::core {
namespace {

std::vector<std::vector<Real>> random_samples(std::size_t n, std::size_t size,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Real>> out(n, std::vector<Real>(size));
  for (auto& s : out) rng.fill_uniform(s, -1, 1);
  return out;
}

/// Decode each sample alone on the unbatched layout.
std::vector<std::vector<Real>> solo_predictions(
    const std::vector<std::vector<Real>>& samples,
    std::span<const Real> params, std::size_t data_qubits, std::size_t rows,
    std::size_t cols) {
  const QubitLayout plain({data_qubits}, 0);
  AnsatzConfig acfg;
  acfg.blocks = 2;
  const qsim::Circuit c = build_qugeo_ansatz(plain, acfg);
  const StEncoder enc(plain);
  const LayerDecoder dec(plain, plain.data_qubits(), rows, cols);
  std::vector<std::vector<Real>> out;
  for (const auto& s : samples) {
    qsim::StateVector psi = enc.encode_single(s);
    qsim::run_circuit(c, params, psi);
    out.push_back(dec.decode(psi).predictions[0]);
  }
  return out;
}

class BatchSize : public ::testing::TestWithParam<Index> {};

TEST_P(BatchSize, EveryBlockMatchesSoloRun) {
  const Index blog = GetParam();
  const std::size_t data_qubits = 3, rows = 3, cols = 2;
  const QubitLayout lay({data_qubits}, blog);
  AnsatzConfig acfg;
  acfg.blocks = 2;
  const qsim::Circuit c = build_qugeo_ansatz(lay, acfg);
  std::vector<Real> params(c.num_params());
  Rng rng(100 + blog);
  rng.fill_uniform(params, -1.5, 1.5);

  const auto samples = random_samples(lay.batch_size(), 8, 200 + blog);
  const auto solo = solo_predictions(samples, params, data_qubits, rows, cols);

  const StEncoder enc(lay);
  const LayerDecoder dec(lay, {0, 1, 2}, rows, cols);
  std::vector<const std::vector<Real>*> batch;
  for (const auto& s : samples) batch.push_back(&s);
  qsim::StateVector psi = enc.encode(batch);
  qsim::run_circuit(c, params, psi);
  const DecodeResult r = dec.decode(psi);

  ASSERT_EQ(r.predictions.size(), lay.batch_size());
  for (std::size_t b = 0; b < lay.batch_size(); ++b)
    for (std::size_t k = 0; k < rows * cols; ++k)
      EXPECT_NEAR(r.predictions[b][k], solo[b][k], 1e-9)
          << "block " << b << " pixel " << k;
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatchSize,
                         ::testing::Values(Index{1}, Index{2}, Index{3}));

TEST(QuBatchBlocks, BlockProbabilitiesTrackSampleEnergies) {
  // The joint normalization assigns each block a probability proportional
  // to its sample's squared norm.
  const QubitLayout lay({2}, 1);
  const StEncoder enc(lay);
  const std::vector<Real> weak = {0.1, 0.1, 0.1, 0.1};   // ||.||^2 = 0.04
  const std::vector<Real> strong = {1, 1, 1, 1};         // ||.||^2 = 4
  const std::vector<Real>* batch[] = {&weak, &strong};
  const qsim::StateVector psi = enc.encode(batch);
  const LayerDecoder dec(lay, {0, 1}, 2, 2);
  const DecodeResult r = dec.decode(psi);
  EXPECT_NEAR(r.block_prob[0], 0.04 / 4.04, 1e-12);
  EXPECT_NEAR(r.block_prob[1], 4.0 / 4.04, 1e-12);
}

TEST(QuBatchBlocks, GroupedBatchDiagonalBlocksOnly) {
  // 2 groups + 1 batch qubit each: only basis states whose two batch bits
  // agree contribute to decoded blocks; cross terms are excluded.
  const QubitLayout lay({1, 1}, 1);
  Real mass = 0;
  for (Index k = 0; k < (Index{1} << lay.total_qubits()); ++k)
    if (lay.block_of(k) == QubitLayout::kInvalidBlock) ++mass;
  EXPECT_EQ(mass, 8);  // half of the 16 basis states are off-diagonal
}

TEST(QuBatchBlocks, PixelDecoderBatchedBlocksMatchSolo) {
  const QubitLayout lay({3}, 1);
  AnsatzConfig acfg;
  acfg.blocks = 2;
  const qsim::Circuit c = build_qugeo_ansatz(lay, acfg);
  std::vector<Real> params(c.num_params());
  Rng rng(42);
  rng.fill_uniform(params, -1, 1);
  const auto samples = random_samples(2, 8, 43);

  const QubitLayout plain({3}, 0);
  const qsim::Circuit cp = build_qugeo_ansatz(plain, acfg);
  const StEncoder enc_p(plain);
  const PixelDecoder dec_p(plain, {0, 1}, 2, 2, 1.5);
  std::vector<std::vector<Real>> solo;
  for (const auto& s : samples) {
    qsim::StateVector psi = enc_p.encode_single(s);
    qsim::run_circuit(cp, params, psi);
    solo.push_back(dec_p.decode(psi).predictions[0]);
  }

  const StEncoder enc(lay);
  const PixelDecoder dec(lay, {0, 1}, 2, 2, 1.5);
  std::vector<const std::vector<Real>*> batch = {&samples[0], &samples[1]};
  qsim::StateVector psi = enc.encode(batch);
  qsim::run_circuit(c, params, psi);
  const DecodeResult r = dec.decode(psi);
  for (std::size_t b = 0; b < 2; ++b)
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_NEAR(r.predictions[b][k], solo[b][k], 1e-9);
}

}  // namespace
}  // namespace qugeo::core
