// Differential gradient-conformance suite for the GradientPlan training
// path (qsim/gradient_plan.h).
//
// A seeded random circuit corpus — every trainable GateKind, literal runs
// interleaved between the trainable slots, both 2q orientations — is
// differentiated four independent ways and the answers are required to
// agree:
//   * fused adjoint (the GradientPlan form) vs unfused adjoint: bitwise
//     when the plan is the identity, <= 1e-10 otherwise (the fused
//     segments' global phase rides on both |psi> and <lambda| and cancels
//     in the 2 Re <lambda|dU|psi> contraction);
//   * central finite differences of the loss, to 1e-6;
//   * the parameter-shift rule, for shift-eligible corpora (RX/RY/RZ/CRY).
// CI re-runs this binary under QUGEO_GRAD_FUSION=off, QUGEO_SIMD=scalar,
// QUGEO_SIMD=avx2 and QUGEO_THREADS=4 legs, and under TSan (the shared
// plan-cache test below exercises the concurrent build path).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "qsim/backend.h"
#include "qsim/circuit.h"
#include "qsim/compile_cache.h"
#include "qsim/executor.h"
#include "qsim/gradient_plan.h"
#include "qsim/observables.h"
#include "qsim/optimizer.h"
#include "qsim/statevector.h"

namespace qugeo::qsim {
namespace {

StateVector random_state(Index num_qubits, Rng& rng) {
  StateVector psi(num_qubits);
  Real norm2 = 0;
  for (Complex& a : psi.amplitudes_mut()) {
    a = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    norm2 += std::norm(a);
  }
  const Real inv = Real(1) / std::sqrt(norm2);
  for (Complex& a : psi.amplitudes_mut()) a *= inv;
  return psi;
}

/// A literal run on a guaranteed-fusable pattern plus random filler gates
/// (1q and 2q, both operand orders), never touching the parameter table.
void add_literal_run(Circuit& c, Rng& rng, std::size_t len) {
  const Index nq = c.num_qubits();
  const auto q1 = [&] { return static_cast<Index>(rng.uniform_int(0, nq - 1)); };
  // Two adjacent 1q literals on one qubit make the run fusable regardless
  // of what the random filler below lands on.
  const Index base = q1();
  c.h(base);
  c.t(base);
  for (std::size_t i = 0; i < len; ++i) {
    const Index a = q1();
    Index b = static_cast<Index>(rng.uniform_int(0, nq - 2));
    if (b >= a) ++b;
    switch (rng.uniform_int(0, 7)) {
      case 0: c.h(a); break;
      case 1: c.rz(a, rng.uniform(-2, 2)); break;
      case 2: c.rx(a, rng.uniform(-2, 2)); break;
      case 3: c.s(a); break;
      case 4: c.cx(a, b); break;   // both orientations: (a, b) is a random
      case 5: c.cz(b, a); break;   // ordered pair, so low->high and
      case 6: c.swap(a, b); break; // high->low controls both occur
      default: c.cry(a, b, rng.uniform(-2, 2)); break;
    }
  }
}

/// Append trainable slot #i; i % 6 cycles through every trainable
/// GateKind, and the 2q gates alternate control-low / control-high.
void add_trainable(Circuit& c, std::size_t i, Rng& rng,
                   std::set<GateKind>* kinds_seen) {
  const Index nq = c.num_qubits();
  const Index q = static_cast<Index>(rng.uniform_int(0, nq - 1));
  Index q2 = static_cast<Index>(rng.uniform_int(0, nq - 2));
  if (q2 >= q) ++q2;
  const Index lo = std::min(q, q2);
  const Index hi = std::max(q, q2);
  const Index ctl = (i % 2 == 0) ? lo : hi;
  const Index tgt = (i % 2 == 0) ? hi : lo;
  switch (i % 6) {
    case 0: c.rx(q, c.new_param()); kinds_seen->insert(GateKind::kRX); break;
    case 1: c.ry(q, c.new_param()); kinds_seen->insert(GateKind::kRY); break;
    case 2: c.rz(q, c.new_param()); kinds_seen->insert(GateKind::kRZ); break;
    case 3: c.u3(q, c.new_params(3)); kinds_seen->insert(GateKind::kU3); break;
    case 4:
      c.cry(ctl, tgt, c.new_param());
      kinds_seen->insert(GateKind::kCRY);
      break;
    default:
      c.cu3(ctl, tgt, c.new_params(3));
      kinds_seen->insert(GateKind::kCU3);
      break;
  }
}

/// Corpus circuit `seed`: literal prefix, `slots` trainable gates with a
/// literal run after each, literal suffix included.
Circuit corpus_circuit(Index num_qubits, std::uint64_t seed, std::size_t slots,
                       std::set<GateKind>* kinds_seen) {
  Rng rng(seed * 7919 + 13);
  Circuit c(num_qubits);
  add_literal_run(c, rng, 3);
  for (std::size_t i = 0; i < slots; ++i) {
    add_trainable(c, i, rng, kinds_seen);
    add_literal_run(c, rng, static_cast<std::size_t>(rng.uniform_int(1, 4)));
  }
  return c;
}

/// A literal run of strictly DIAGONAL gates (they merge under the
/// optimizer's diagonal-run fusion and commute with every computational-
/// basis projector).
void add_diagonal_run(Circuit& c, Rng& rng, std::size_t len) {
  const Index nq = c.num_qubits();
  for (std::size_t i = 0; i < len; ++i) {
    const Index a = static_cast<Index>(rng.uniform_int(0, nq - 1));
    Index b = static_cast<Index>(rng.uniform_int(0, nq - 2));
    if (b >= a) ++b;
    switch (rng.uniform_int(0, 4)) {
      case 0: c.rz(a, rng.uniform(-2, 2)); break;
      case 1: c.z(a); break;
      case 2: c.s(a); break;
      case 3: c.t(a); break;
      default: c.cz(a, b); break;
    }
  }
}

/// Shift-rule-eligible corpus: trainable gates restricted to RX/RY/RZ/CRY
/// (generator eigenvalues +-1/2), literal runs interleaved. The two-term
/// pi/2 shift is exact for a CONTROLLED rotation only when everything
/// downstream of it is block-diagonal in its control qubit — a diagonal
/// observable (the probability-weight loss) never couples the control
/// subspaces, but an arbitrary suffix would — so the CRY slots sit at the
/// end with diagonal-only literal runs after them, in both orientations
/// (control-low targets 1 from 0; control-high targets 1 from 2, which
/// never touches the first CRY's control).
Circuit shift_corpus_circuit(Index num_qubits, std::uint64_t seed,
                             std::size_t slots) {
  Rng rng(seed * 104729 + 5);
  Circuit c(num_qubits);
  add_literal_run(c, rng, 2);
  for (std::size_t i = 0; i < slots; ++i) {
    const Index q = static_cast<Index>(rng.uniform_int(0, num_qubits - 1));
    switch (i % 3) {
      case 0: c.rx(q, c.new_param()); break;
      case 1: c.ry(q, c.new_param()); break;
      default: c.rz(q, c.new_param()); break;
    }
    add_literal_run(c, rng, 2);
  }
  c.cry(0, 1, c.new_param());
  add_diagonal_run(c, rng, 3);
  c.cry(2, 1, c.new_param());
  add_diagonal_run(c, rng, 3);
  return c;
}

std::vector<Real> random_params(std::size_t n, Rng& rng) {
  std::vector<Real> p(n);
  rng.fill_uniform(p, -1.5, 1.5);
  return p;
}

/// Linear probability loss L = sum_k g_k p_k with fixed random weights —
/// the simplest loss whose cotangent the adjoint entry point consumes
/// (lambda_k = g_k psi_k) and whose value any forward pass can evaluate.
std::vector<Real> random_weights(Index num_qubits, Rng& rng) {
  std::vector<Real> g(std::size_t{1} << num_qubits);
  rng.fill_uniform(g, -1, 1);
  return g;
}

Real linear_loss(const StateVector& psi, const std::vector<Real>& g) {
  const std::vector<Real> p = psi.probabilities();
  Real loss = 0;
  for (std::size_t k = 0; k < p.size(); ++k) loss += g[k] * p[k];
  return loss;
}

AdjointResult adjoint_of(const Circuit& circuit, std::span<const Real> params,
                         const StateVector& psi_in, const std::vector<Real>& g) {
  StateVector psi = psi_in;
  run_circuit(circuit, params, psi);
  const std::vector<Complex> cot = cotangent_from_probability_grads(psi, g);
  return adjoint_backward(circuit, params, std::move(psi), cot);
}

constexpr std::uint64_t kCorpusSeeds = 12;

TEST(GradientConformance, CorpusCoversEveryTrainableGateKind) {
  std::set<GateKind> kinds;
  for (std::uint64_t seed = 0; seed < kCorpusSeeds; ++seed)
    (void)corpus_circuit(3, seed, 7, &kinds);
  EXPECT_EQ(kinds, (std::set<GateKind>{GateKind::kRX, GateKind::kRY,
                                       GateKind::kRZ, GateKind::kU3,
                                       GateKind::kCRY, GateKind::kCU3}));
}

TEST(GradientConformance, FusedAdjointMatchesUnfusedAdjoint) {
  for (std::uint64_t seed = 0; seed < kCorpusSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::set<GateKind> kinds;
    const Index nq = 3 + static_cast<Index>(seed % 2);
    const Circuit c = corpus_circuit(nq, seed, 7, &kinds);
    const GradientPlan plan = GradientPlan::build(c);
    ASSERT_TRUE(plan.fused());  // the corpus always has literal runs
    EXPECT_LT(plan.stats().plan_ops, plan.stats().source_ops);
    EXPECT_GT(plan.stats().trainable_ops, 0u);

    Rng rng(seed + 0xc0ffee);
    const std::vector<Real> params = random_params(c.num_params(), rng);
    const StateVector psi_in = random_state(nq, rng);
    const std::vector<Real> g = random_weights(nq, rng);

    const AdjointResult unfused = adjoint_of(c, params, psi_in, g);
    const AdjointResult fused =
        adjoint_of(plan.execution_form(c), params, psi_in, g);

    ASSERT_EQ(fused.param_grads.size(), unfused.param_grads.size());
    for (std::size_t p = 0; p < unfused.param_grads.size(); ++p)
      EXPECT_NEAR(fused.param_grads[p], unfused.param_grads[p], 1e-10)
          << "param " << p;
    // The fused segments' phase cancels in the input cotangent too:
    // lambda_in = U_f^dag (g o psi_f) = e^{-i phi} U^dag e^{i phi}(g o psi).
    ASSERT_EQ(fused.input_cotangent.size(), unfused.input_cotangent.size());
    for (std::size_t k = 0; k < unfused.input_cotangent.size(); ++k) {
      EXPECT_NEAR(fused.input_cotangent[k].real(),
                  unfused.input_cotangent[k].real(), 1e-10);
      EXPECT_NEAR(fused.input_cotangent[k].imag(),
                  unfused.input_cotangent[k].imag(), 1e-10);
    }
  }
}

TEST(GradientConformance, PlanIsIdentityForAllTrainableCircuits) {
  // The QuGeoVQC ansatz shape: every angle trainable, nothing to fuse. The
  // plan must hand back the ORIGINAL circuit by reference, keeping the
  // default training path bit-identical to the pre-plan loop.
  Circuit c(3);
  for (Index q = 0; q < 3; ++q) c.u3(q, c.new_params(3));
  c.cu3(0, 1, c.new_params(3));
  c.cry(1, 2, c.new_param());
  const GradientPlan plan = GradientPlan::build(c);
  EXPECT_FALSE(plan.fused());
  EXPECT_EQ(&plan.execution_form(c), &c);
  EXPECT_EQ(plan.stats().plan_ops, plan.stats().source_ops);
  EXPECT_EQ(plan.stats().fused_ops, 0u);
}

TEST(GradientConformance, AdjointMatchesCentralFiniteDifference) {
  const Real h = 1e-5;
  for (std::uint64_t seed = 0; seed < kCorpusSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::set<GateKind> kinds;
    const Circuit c = corpus_circuit(3, seed, 6, &kinds);
    const GradientPlan plan = GradientPlan::build(c);

    Rng rng(seed + 0xfd);
    std::vector<Real> params = random_params(c.num_params(), rng);
    const StateVector psi_in = random_state(3, rng);
    const std::vector<Real> g = random_weights(3, rng);

    const AdjointResult adj =
        adjoint_of(plan.execution_form(c), params, psi_in, g);
    for (std::size_t p = 0; p < c.num_params(); ++p) {
      const Real saved = params[p];
      params[p] = saved + h;
      StateVector plus = psi_in;
      run_circuit(c, params, plus);
      params[p] = saved - h;
      StateVector minus = psi_in;
      run_circuit(c, params, minus);
      params[p] = saved;
      const Real fd = (linear_loss(plus, g) - linear_loss(minus, g)) / (2 * h);
      EXPECT_NEAR(adj.param_grads[p], fd, 1e-6) << "param " << p;
    }
  }
}

TEST(GradientConformance, AdjointMatchesParameterShiftOnEligibleGates) {
  for (std::uint64_t seed = 0; seed < kCorpusSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Circuit c = shift_corpus_circuit(3, seed, 6);
    const GradientPlan plan = GradientPlan::build(c);
    ASSERT_TRUE(plan.fused());

    Rng rng(seed + 0x51f7);
    const std::vector<Real> params = random_params(c.num_params(), rng);
    const StateVector psi_in = random_state(3, rng);
    const std::vector<Real> g = random_weights(3, rng);

    const AdjointResult adj =
        adjoint_of(plan.execution_form(c), params, psi_in, g);
    const std::vector<Real> shift = parameter_shift_gradient(
        c, params, psi_in,
        [&](const StateVector& psi) { return linear_loss(psi, g); });
    ASSERT_EQ(shift.size(), adj.param_grads.size());
    // Both rules are exact for these generators; the tolerance only covers
    // accumulated kernel rounding.
    for (std::size_t p = 0; p < shift.size(); ++p)
      EXPECT_NEAR(adj.param_grads[p], shift[p], 1e-9) << "param " << p;
  }
}

TEST(GradientConformance, EnvKnobParsesStrictly) {
  ASSERT_EQ(setenv("QUGEO_GRAD_FUSION", "off", 1), 0);
  EXPECT_FALSE(apply_env_overrides({}).grad_fusion);
  ASSERT_EQ(setenv("QUGEO_GRAD_FUSION", "on", 1), 0);
  EXPECT_TRUE(apply_env_overrides({}).grad_fusion);
  ASSERT_EQ(setenv("QUGEO_GRAD_FUSION", "sideways", 1), 0);
  EXPECT_THROW((void)apply_env_overrides({}), std::invalid_argument);
  ASSERT_EQ(unsetenv("QUGEO_GRAD_FUSION"), 0);
  ExecutionConfig def;
  EXPECT_TRUE(def.grad_fusion);
}

TEST(GradientConformance, SharedPlanCacheBuildsOnceUnderConcurrency) {
  // The trainer's chunk fan-out hits CompiledCircuitCache::gradient_plan
  // from every pool worker at once; the plan must build exactly once and
  // every caller must see the same object. This test runs under TSan in CI.
  std::set<GateKind> kinds;
  const Circuit c = corpus_circuit(4, 3, 7, &kinds);
  CompiledCircuitCache cache;
  constexpr std::size_t kCallers = 16;
  std::vector<std::shared_ptr<const GradientPlan>> plans(kCallers);
  std::vector<std::vector<Real>> grads(kCallers);
  Rng rng(99);
  const std::vector<Real> params = random_params(c.num_params(), rng);
  const StateVector psi_in = random_state(4, rng);
  const std::vector<Real> g = random_weights(4, rng);
  parallel_for(0, kCallers, [&](std::size_t i) {
    plans[i] = cache.gradient_plan(c);
    grads[i] =
        adjoint_of(plans[i]->execution_form(c), params, psi_in, g).param_grads;
  });
  EXPECT_EQ(cache.plan_compile_count(), 1u);
  EXPECT_EQ(cache.plan_hit_count(), kCallers - 1);
  for (std::size_t i = 1; i < kCallers; ++i) {
    EXPECT_EQ(plans[i], plans[0]);
    EXPECT_EQ(grads[i], grads[0]);  // same plan, same kernels: bitwise
  }
  // Forward counters stay untouched: plan accounting is separate.
  EXPECT_EQ(cache.compile_count(), 0u);
  EXPECT_EQ(cache.hit_count(), 0u);
}

}  // namespace
}  // namespace qugeo::qsim
