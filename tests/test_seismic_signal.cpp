// Trace signal processing: spectra, the 15 vs 8 Hz wavelet distinction,
// bandpass behaviour, AGC equalization.
#include <gtest/gtest.h>

#include <cmath>

#include "seismic/signal.h"
#include "seismic/wavelet.h"

namespace qugeo::seismic {
namespace {

std::vector<Real> tone(Real freq, Real dt, std::size_t n) {
  std::vector<Real> x(n);
  for (std::size_t t = 0; t < n; ++t)
    x[t] = std::sin(2 * kPi * freq * static_cast<Real>(t) * dt);
  return x;
}

TEST(Spectrum, PureToneDominantFrequency) {
  const Real dt = 1e-3;
  const auto x = tone(25.0, dt, 1000);
  EXPECT_NEAR(dominant_frequency(x, dt), 25.0, 1.1);
}

TEST(Spectrum, RickerDominantFrequencyTracksPeak) {
  // The Ricker spectral peak sits at the nominal peak frequency; verify for
  // both wavelets QuGeoData uses.
  const Real dt = 1e-3;
  for (Real f : {15.0, 8.0}) {
    const RickerWavelet w(f);
    const auto trace = w.sample(1024, dt);
    EXPECT_NEAR(dominant_frequency(trace, dt), f, 0.25 * f) << f;
  }
}

TEST(Spectrum, LowerWaveletShiftsSpectrumDown) {
  const Real dt = 1e-3;
  const auto f15 = dominant_frequency(RickerWavelet(15.0).sample(1024, dt), dt);
  const auto f8 = dominant_frequency(RickerWavelet(8.0).sample(1024, dt), dt);
  EXPECT_LT(f8, f15);
}

TEST(Spectrum, EmptyTrace) {
  EXPECT_TRUE(magnitude_spectrum({}).empty());
}

TEST(Bandpass, PassesInBandTone) {
  // Low corners need a long filter: 301 taps spans ~6 periods of 20 Hz.
  const Real dt = 1e-3;
  const auto x = tone(20.0, dt, 600);
  const auto y = bandpass(x, dt, 10.0, 30.0, 301);
  // Compare mid-trace energy (edges are truncated).
  Real ex = 0, ey = 0;
  for (std::size_t t = 100; t < 500; ++t) {
    ex += x[t] * x[t];
    ey += y[t] * y[t];
  }
  EXPECT_GT(ey, 0.5 * ex);
}

TEST(Bandpass, RejectsOutOfBandTone) {
  const Real dt = 1e-3;
  const auto x = tone(120.0, dt, 600);
  const auto y = bandpass(x, dt, 10.0, 30.0, 63);
  Real ex = 0, ey = 0;
  for (std::size_t t = 100; t < 500; ++t) {
    ex += x[t] * x[t];
    ey += y[t] * y[t];
  }
  EXPECT_LT(ey, 0.05 * ex);
}

TEST(Bandpass, SeparatesMixedTones) {
  const Real dt = 1e-3;
  const auto in_band = tone(20.0, dt, 800);
  const auto out_band = tone(150.0, dt, 800);
  std::vector<Real> mixed(800);
  for (std::size_t t = 0; t < 800; ++t) mixed[t] = in_band[t] + out_band[t];
  const auto y = bandpass(mixed, dt, 10.0, 40.0, 63);
  EXPECT_NEAR(dominant_frequency(y, dt), 20.0, 2.0);
}

TEST(Bandpass, Validation) {
  const std::vector<Real> x(100, 0.0);
  EXPECT_THROW((void)bandpass(x, 1e-3, 10, 30, 30), std::invalid_argument);
  EXPECT_THROW((void)bandpass(x, 1e-3, 30, 10), std::invalid_argument);
  EXPECT_THROW((void)bandpass(x, 1e-3, 10, 900), std::invalid_argument);
}

TEST(Agc, EqualizesAmplitudeEnvelope) {
  // A decaying tone: after AGC the late samples should be comparable in
  // magnitude to the early ones.
  const Real dt = 1e-3;
  std::vector<Real> x = tone(20.0, dt, 1000);
  for (std::size_t t = 0; t < x.size(); ++t)
    x[t] *= std::exp(-static_cast<Real>(t) * 0.005);
  const auto y = agc(x, 101);

  auto window_peak = [&](const std::vector<Real>& v, std::size_t lo, std::size_t hi) {
    Real p = 0;
    for (std::size_t t = lo; t < hi; ++t) p = std::max(p, std::abs(v[t]));
    return p;
  };
  const Real early_ratio = window_peak(x, 100, 200) / window_peak(x, 800, 900);
  const Real agc_ratio = window_peak(y, 100, 200) / window_peak(y, 800, 900);
  EXPECT_GT(early_ratio, 10.0);  // raw decay is strong
  EXPECT_LT(agc_ratio, 3.0);     // AGC flattens it
}

TEST(Agc, Validation) {
  const std::vector<Real> x(10, 1.0);
  EXPECT_THROW((void)agc(x, 0), std::invalid_argument);
  EXPECT_THROW((void)agc(x, 4), std::invalid_argument);
}

TEST(Agc, ZeroTraceStaysFinite) {
  const std::vector<Real> x(50, 0.0);
  const auto y = agc(x, 11);
  for (Real v : y) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace qugeo::seismic
