// Algebraic gate identities, verified end-to-end on the simulator — a
// property-style sweep that guards the gate library and the state-vector
// kernels simultaneously.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "qsim/encoding.h"
#include "qsim/executor.h"

namespace qugeo::qsim {
namespace {

StateVector random_state(Index qubits, std::uint64_t seed) {
  Rng rng(seed);
  StateVector psi(qubits);
  std::vector<Real> data(psi.dim());
  rng.fill_uniform(data, -1, 1);
  encode_amplitudes(data, psi);
  return psi;
}

/// Two circuits are equal as channels if they agree on a random state.
void expect_same_action(const Circuit& a, const Circuit& b, std::uint64_t seed) {
  StateVector sa = random_state(a.num_qubits(), seed);
  StateVector sb = sa;
  run_circuit(a, {}, sa);
  run_circuit(b, {}, sb);
  EXPECT_NEAR(sa.fidelity(sb), 1.0, 1e-12);
}

TEST(GateIdentity, HZHEqualsX) {
  Circuit lhs(1), rhs(1);
  lhs.h(0);
  lhs.z(0);
  lhs.h(0);
  rhs.x(0);
  expect_same_action(lhs, rhs, 1);
}

TEST(GateIdentity, HXHEqualsZ) {
  Circuit lhs(1), rhs(1);
  lhs.h(0);
  lhs.x(0);
  lhs.h(0);
  rhs.z(0);
  expect_same_action(lhs, rhs, 2);
}

TEST(GateIdentity, SSEqualsZ) {
  Circuit lhs(1), rhs(1);
  lhs.s(0);
  lhs.s(0);
  rhs.z(0);
  expect_same_action(lhs, rhs, 3);
}

TEST(GateIdentity, TTEqualsS) {
  Circuit lhs(1), rhs(1);
  lhs.t(0);
  lhs.t(0);
  rhs.s(0);
  expect_same_action(lhs, rhs, 4);
}

TEST(GateIdentity, SdgUndoesS) {
  Circuit lhs(1), rhs(1);
  lhs.s(0);
  lhs.sdg(0);
  expect_same_action(lhs, rhs, 5);
}

TEST(GateIdentity, SwapEqualsThreeCnots) {
  Circuit lhs(2), rhs(2);
  lhs.swap(0, 1);
  rhs.cx(0, 1);
  rhs.cx(1, 0);
  rhs.cx(0, 1);
  expect_same_action(lhs, rhs, 6);
}

TEST(GateIdentity, CZIsSymmetric) {
  Circuit lhs(2), rhs(2);
  lhs.cz(0, 1);
  rhs.cz(1, 0);
  expect_same_action(lhs, rhs, 7);
}

TEST(GateIdentity, CZFromHadamardConjugatedCX) {
  Circuit lhs(2), rhs(2);
  lhs.cz(0, 1);
  rhs.h(1);
  rhs.cx(0, 1);
  rhs.h(1);
  expect_same_action(lhs, rhs, 8);
}

class RotationComposition : public ::testing::TestWithParam<Real> {};

TEST_P(RotationComposition, AnglesAddForEachAxis) {
  const Real a = GetParam();
  const Real b = 0.77;
  for (auto axis : {GateKind::kRX, GateKind::kRY, GateKind::kRZ}) {
    Circuit lhs(1), rhs(1);
    auto add = [&](Circuit& c, Real angle) {
      switch (axis) {
        case GateKind::kRX: c.rx(0, angle); break;
        case GateKind::kRY: c.ry(0, angle); break;
        default: c.rz(0, angle); break;
      }
    };
    add(lhs, a);
    add(lhs, b);
    add(rhs, a + b);
    expect_same_action(lhs, rhs, 10 + static_cast<std::uint64_t>(axis));
  }
}

INSTANTIATE_TEST_SUITE_P(Angles, RotationComposition,
                         ::testing::Values(-2.1, -0.5, 0.0, 0.9, 3.3));

TEST(GateIdentity, U3CoversRY) {
  // u3(theta, 0, 0) == ry(theta).
  Circuit lhs(1), rhs(1);
  lhs.u3(0, 1.234, 0.0, 0.0);
  rhs.ry(0, 1.234);
  expect_same_action(lhs, rhs, 20);
}

TEST(GateIdentity, ControlledGateOnControlZeroSubspace) {
  // Starting from |00> and never touching qubit 0, the control stays |0>
  // and CU3 must act as the identity.
  Circuit lhs(2), rhs(2);
  lhs.ry(1, 0.6);
  rhs.ry(1, 0.6);
  lhs.cu3(0, 1, 1.1, 0.2, -0.7);
  StateVector sa(2), sb(2);
  run_circuit(lhs, {}, sa);
  run_circuit(rhs, {}, sb);
  EXPECT_NEAR(sa.fidelity(sb), 1.0, 1e-12);
}

TEST(GateIdentity, EntanglementMonotoneSanity) {
  // H + CX produce maximal 2-qubit entanglement: the reduced marginal of a
  // Bell pair is uniform.
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  StateVector psi(2);
  run_circuit(c, {}, psi);
  const Index qubits[] = {0};
  const auto m = psi.marginal_probabilities(qubits);
  EXPECT_NEAR(m[0], 0.5, 1e-12);
  EXPECT_NEAR(m[1], 0.5, 1e-12);
}

}  // namespace
}  // namespace qugeo::qsim
