// Circuit IR: parameter allocation, op validation, composition, depth.
#include <gtest/gtest.h>

#include "qsim/circuit.h"

namespace qugeo::qsim {
namespace {

TEST(Circuit, AllocatesSequentialParams) {
  Circuit c(2);
  const ParamRef a = c.new_param();
  const ParamRef b = c.new_params(3);
  const ParamRef d = c.new_param();
  EXPECT_EQ(a.id, 0u);
  EXPECT_EQ(b.id, 1u);
  EXPECT_EQ(d.id, 4u);
  EXPECT_EQ(c.num_params(), 5u);
}

TEST(Circuit, RejectsOutOfRangeQubit) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), std::out_of_range);
  EXPECT_THROW(c.cx(0, 5), std::out_of_range);
}

TEST(Circuit, RejectsIdenticalOperands) {
  Circuit c(3);
  EXPECT_THROW(c.cx(1, 1), std::invalid_argument);
  EXPECT_THROW(c.swap(2, 2), std::invalid_argument);
}

TEST(Circuit, RejectsUnallocatedParamRef) {
  Circuit c(1);
  EXPECT_THROW(c.rx(0, ParamRef{0}), std::out_of_range);
  EXPECT_THROW(c.u3(0, ParamRef{0}), std::out_of_range);
}

TEST(Circuit, U3ConsumesThreeSlots) {
  Circuit c(1);
  const ParamRef p = c.new_params(3);
  c.u3(0, p);
  const Op& op = c.ops()[0];
  EXPECT_EQ(op.param_ids[0], 0u);
  EXPECT_EQ(op.param_ids[1], 1u);
  EXPECT_EQ(op.param_ids[2], 2u);
}

TEST(Circuit, LiteralAnglesDontAllocate) {
  Circuit c(2);
  c.rx(0, 0.5);
  c.cu3(0, 1, 0.1, 0.2, 0.3);
  EXPECT_EQ(c.num_params(), 0u);
  const auto vals = Circuit::resolve_params(c.ops()[1], {});
  EXPECT_EQ(vals[0], 0.1);
  EXPECT_EQ(vals[2], 0.3);
}

TEST(Circuit, ResolveMixesLiteralsAndTable) {
  Circuit c(1);
  const ParamRef p = c.new_param();
  c.ry(0, p);
  c.ry(0, 2.5);
  const std::vector<Real> table = {7.0};
  EXPECT_EQ(Circuit::resolve_params(c.ops()[0], table)[0], 7.0);
  EXPECT_EQ(Circuit::resolve_params(c.ops()[1], table)[0], 2.5);
}

TEST(Circuit, AppendShiftsParameterIds) {
  Circuit a(2), b(2);
  a.ry(0, a.new_param());
  b.ry(1, b.new_param());
  b.u3(0, b.new_params(3));
  const std::uint32_t offset = a.append(b);
  EXPECT_EQ(offset, 1u);
  EXPECT_EQ(a.num_params(), 5u);
  EXPECT_EQ(a.ops()[1].param_ids[0], 1u);
  EXPECT_EQ(a.ops()[2].param_ids[0], 2u);
}

TEST(Circuit, AppendRejectsWiderCircuit) {
  Circuit a(2), b(3);
  EXPECT_THROW(a.append(b), std::invalid_argument);
}

TEST(Circuit, DepthOfParallelGates) {
  Circuit c(4);
  c.h(0);
  c.h(1);
  c.h(2);
  c.h(3);
  EXPECT_EQ(c.depth(), 1u);
  c.cx(0, 1);
  c.cx(2, 3);
  EXPECT_EQ(c.depth(), 2u);
  c.cx(1, 2);
  EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, TwoQubitOpCount) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.swap(1, 2);
  c.ry(2, 0.1);
  EXPECT_EQ(c.two_qubit_op_count(), 2u);
}

TEST(Circuit, EmptyCircuitHasZeroDepth) {
  Circuit c(5);
  EXPECT_EQ(c.depth(), 0u);
  EXPECT_EQ(c.num_ops(), 0u);
}

}  // namespace
}  // namespace qugeo::qsim
